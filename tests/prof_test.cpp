// Tests for wb::prof — the deterministic profiling & tracing subsystem:
// ring-buffer semantics, span aggregation invariants, exporter golden
// output, and the two cross-layer contracts: (1) tracing never changes
// any virtual-time metric, and (2) attribution is complete (per-function
// self cost sums to the run's total cost_ps) with tier-up and GC events
// landing exactly where the cost model puts them.
#include <gtest/gtest.h>

#include <string>

#include "benchmarks/registry.h"
#include "core/study.h"
#include "env/env.h"
#include "js/engine.h"
#include "prof/export.h"
#include "prof/prof.h"
#include "prof/profile.h"
#include "wasm/builder.h"

namespace wb {
namespace {

// ---------------------------------------------------------------- tracer

TEST(Tracer, RingKeepsNewestOnOverflow) {
  prof::Tracer t(8);
  std::vector<uint32_t> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(t.intern("e" + std::to_string(i)));
  for (int i = 0; i < 12; ++i) {
    t.instant(prof::Cat::WasmFunc, ids[i], static_cast<uint64_t>(i) * 10);
  }
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.capacity(), 8u);
  EXPECT_EQ(t.stats().emitted, 12u);
  EXPECT_EQ(t.stats().dropped, 4u);
  const auto events = t.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest four were overwritten; the survivors are e4..e11 in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(t.name(events[i].name), "e" + std::to_string(i + 4));
    EXPECT_EQ(events[i].t_ps, (i + 4) * 10);
  }
}

TEST(Tracer, ClearDropsEventsKeepsNames) {
  prof::Tracer t(4);
  const uint32_t id = t.intern("x");
  t.instant(prof::Cat::Page, id, 1);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.intern("x"), id);  // interner unaffected
}

TEST(Tracer, InternDeduplicates) {
  prof::Tracer t;
  EXPECT_EQ(t.intern("f"), t.intern("f"));
  EXPECT_NE(t.intern("f"), t.intern("g"));
}

// --------------------------------------------------------------- profile

TEST(Profile, NestedSpansSplitSelfAndTotal) {
  prof::Tracer t;
  const uint32_t a = t.intern("a");
  const uint32_t b = t.intern("b");
  t.begin(prof::Cat::WasmFunc, a, 0);
  t.begin(prof::Cat::WasmFunc, b, 10);
  t.end(prof::Cat::WasmFunc, b, 30);
  t.end(prof::Cat::WasmFunc, a, 100);

  const prof::Profile p = prof::build_profile(t, prof::kWasmTrack);
  ASSERT_EQ(p.functions.size(), 2u);
  EXPECT_EQ(p.functions[0].name, "a");  // sorted by self desc
  EXPECT_EQ(p.functions[0].self_ps, 80u);
  EXPECT_EQ(p.functions[0].total_ps, 100u);
  EXPECT_EQ(p.functions[1].name, "b");
  EXPECT_EQ(p.functions[1].self_ps, 20u);
  EXPECT_EQ(p.functions[1].total_ps, 20u);
  EXPECT_EQ(p.span_total_ps, 100u);

  // Call tree: a -> b.
  ASSERT_EQ(p.root.children.size(), 1u);
  EXPECT_EQ(p.root.children[0].name, "a");
  ASSERT_EQ(p.root.children[0].children.size(), 1u);
  EXPECT_EQ(p.root.children[0].children[0].name, "b");
}

TEST(Profile, RecursionCountsTotalOncePerOutermostActivation) {
  prof::Tracer t;
  const uint32_t f = t.intern("f");
  t.begin(prof::Cat::JsFunc, f, 0);
  t.begin(prof::Cat::JsFunc, f, 10);
  t.end(prof::Cat::JsFunc, f, 20);
  t.end(prof::Cat::JsFunc, f, 50);

  const prof::Profile p = prof::build_profile(t, prof::kWasmTrack);
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_EQ(p.functions[0].calls, 2u);
  EXPECT_EQ(p.functions[0].self_ps, 50u);   // inner 10 + outer 40
  EXPECT_EQ(p.functions[0].total_ps, 50u);  // not 60: inner activation nested
  EXPECT_EQ(p.span_total_ps, 50u);
}

TEST(Profile, SurvivesRingOverflowArtifacts) {
  // An End whose Begin was overwritten arrives on an empty stack and is
  // ignored; a Begin never closed is auto-closed at the last timestamp.
  prof::Tracer t;
  const uint32_t lost = t.intern("lost");
  const uint32_t open = t.intern("open");
  t.end(prof::Cat::WasmFunc, lost, 5);
  t.begin(prof::Cat::WasmFunc, open, 10);
  t.instant(prof::Cat::MemoryGrow, t.intern("memory.grow"), 40);

  const prof::Profile p = prof::build_profile(t, prof::kWasmTrack);
  EXPECT_EQ(p.unmatched_ends, 1u);
  EXPECT_EQ(p.unclosed_begins, 1u);
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_EQ(p.functions[0].name, "open");
  EXPECT_EQ(p.functions[0].self_ps, 30u);  // closed at t=40
  EXPECT_EQ(p.memory_grow_events, 1u);
}

TEST(Profile, TracksAreIndependent) {
  prof::Tracer t;
  const uint32_t w = t.intern("w");
  const uint32_t j = t.intern("j");
  t.set_track(prof::kWasmTrack);
  t.begin(prof::Cat::WasmFunc, w, 0);
  t.end(prof::Cat::WasmFunc, w, 10);
  t.set_track(prof::kJsTrack);
  t.begin(prof::Cat::JsFunc, j, 0);
  t.end(prof::Cat::JsFunc, j, 25);

  EXPECT_EQ(prof::build_profile(t, prof::kWasmTrack).span_total_ps, 10u);
  EXPECT_EQ(prof::build_profile(t, prof::kJsTrack).span_total_ps, 25u);
}

// -------------------------------------------------------------- exporters

prof::Tracer golden_trace() {
  prof::Tracer t(16);
  const uint32_t a = t.intern("alpha");
  const uint32_t b = t.intern("beta \"q\"");
  t.begin(prof::Cat::WasmFunc, a, 0);
  t.instant(prof::Cat::TierUp, a, 1'500'000, 42);
  t.begin(prof::Cat::WasmFunc, b, 2'000'000);
  t.end(prof::Cat::WasmFunc, b, 3'000'000);
  t.end(prof::Cat::WasmFunc, a, 5'000'000);
  return t;
}

TEST(Exporters, ChromeTraceGolden) {
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"wasmbench\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"wasm-vm\"}},\n"
      "{\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":0.000000,\"cat\":\"wasm\","
      "\"name\":\"alpha\"},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":1.500000,\"cat\":\"tierup\","
      "\"name\":\"alpha\",\"s\":\"t\",\"args\":{\"value\":42}},\n"
      "{\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":2.000000,\"cat\":\"wasm\","
      "\"name\":\"beta \\\"q\\\"\"},\n"
      "{\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":3.000000,\"cat\":\"wasm\","
      "\"name\":\"beta \\\"q\\\"\"},\n"
      "{\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":5.000000,\"cat\":\"wasm\","
      "\"name\":\"alpha\"}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(prof::chrome_trace_json(golden_trace()), expected);
}

TEST(Exporters, FoldedStacksGolden) {
  const std::string expected =
      "alpha 4000000\n"
      "alpha;beta \"q\" 1000000\n";
  EXPECT_EQ(prof::folded_stacks(golden_trace(), prof::kWasmTrack), expected);
}

// ----------------------------------------------- VM-level event placement

wasm::Module hot_loop_module(int n) {
  wasm::ModuleBuilder mb;
  auto f = mb.define(wasm::FuncType{{}, {wasm::ValType::I32}}, "main");
  const uint32_t i = f.add_local(wasm::ValType::I32);
  const uint32_t acc = f.add_local(wasm::ValType::I32);
  f.block().loop();
  f.local_get(i).i32(n).op(wasm::Opcode::I32GeS).br_if(1);
  f.local_get(acc).local_get(i).op(wasm::Opcode::I32Add).local_set(acc);
  f.local_get(i).i32(1).op(wasm::Opcode::I32Add).local_set(i);
  f.br(0);
  f.end().end();
  f.local_get(acc);
  f.finish("main");
  return mb.take();
}

TEST(ProfIntegration, TierUpEventsAppearExactlyWhenStatsSayso) {
  const wasm::Module module = hot_loop_module(200);

  // Hot config: the loop's back-edges cross the threshold mid-run.
  {
    wasm::Instance inst(module, {});
    wasm::TierPolicy tiers;
    tiers.tierup_threshold = 50;
    inst.set_tier_policy(tiers);
    prof::Tracer tracer;
    inst.set_tracer(&tracer);
    ASSERT_EQ(inst.invoke("main", {}).trap, wasm::Trap::None);
    const prof::Profile p = prof::build_profile(tracer, prof::kWasmTrack);
    EXPECT_GT(inst.stats().tierups, 0u);
    EXPECT_EQ(p.tierup_events, inst.stats().tierups);
  }

  // Cold config: optimizing tier disabled — zero tierups, zero events.
  {
    wasm::Instance inst(module, {});
    wasm::TierPolicy tiers;
    tiers.tierup_threshold = 50;
    tiers.optimizing_enabled = false;
    inst.set_tier_policy(tiers);
    prof::Tracer tracer;
    inst.set_tracer(&tracer);
    ASSERT_EQ(inst.invoke("main", {}).trap, wasm::Trap::None);
    const prof::Profile p = prof::build_profile(tracer, prof::kWasmTrack);
    EXPECT_EQ(inst.stats().tierups, 0u);
    EXPECT_EQ(p.tierup_events, 0u);
  }
}

TEST(ProfIntegration, TracingDoesNotChangeWasmStats) {
  const wasm::Module module = hot_loop_module(500);
  wasm::Instance plain(module, {});
  ASSERT_EQ(plain.invoke("main", {}).trap, wasm::Trap::None);

  wasm::Instance traced(module, {});
  prof::Tracer tracer;
  traced.set_tracer(&tracer);
  ASSERT_EQ(traced.invoke("main", {}).trap, wasm::Trap::None);

  EXPECT_EQ(plain.stats().cost_ps, traced.stats().cost_ps);
  EXPECT_EQ(plain.stats().ops_executed, traced.stats().ops_executed);
  EXPECT_EQ(plain.stats().calls, traced.stats().calls);
  EXPECT_EQ(plain.stats().tierups, traced.stats().tierups);
  EXPECT_GT(tracer.size(), 0u);
}

TEST(ProfIntegration, GcPauseEventsMatchCollections) {
  const std::string source =
      "function main() {"
      "  var a; "
      "  for (var i = 0; i < 3000; i++) { a = [i, i + 1, i + 2]; }"
      "  return 1;"
      "}";
  std::string error;
  const auto code = js::compile_script(source, error);
  ASSERT_TRUE(code) << error;

  js::Heap heap(16 << 10);  // tiny threshold: force several collections
  js::Vm vm(*code, heap);
  prof::Tracer tracer;
  vm.set_tracer(&tracer);
  ASSERT_TRUE(vm.run_top_level().ok);
  ASSERT_TRUE(vm.call_function("main", {}).ok);

  const prof::Profile p = prof::build_profile(tracer, prof::kWasmTrack);
  EXPECT_GT(heap.stats().collections, 1u);
  EXPECT_EQ(p.gc_events, heap.stats().collections);
}

// --------------------------------------------- page-level (env) contracts

TEST(ProfIntegration, PageMetricsIdenticalWithTracingOnAndOff) {
  const core::BenchSource* bench = benchmarks::find_benchmark("gemm");
  ASSERT_NE(bench, nullptr);
  const core::BuildResult build =
      core::build(*bench, core::InputSize::XS, ir::OptLevel::O2);
  ASSERT_TRUE(build.ok) << build.error;
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);

  env::RunOptions off;
  const env::PageMetrics wasm_off = browser.run_wasm(build.wasm, off);
  const env::PageMetrics js_off = browser.run_js(build.js_source, off);
  ASSERT_TRUE(wasm_off.ok && js_off.ok);

  prof::Tracer tracer;
  env::RunOptions on;
  on.tracer = &tracer;
  const env::PageMetrics wasm_on = browser.run_wasm(build.wasm, on);
  const env::PageMetrics js_on = browser.run_js(build.js_source, on);
  ASSERT_TRUE(wasm_on.ok && js_on.ok);

  EXPECT_EQ(wasm_off.cost_ps, wasm_on.cost_ps);
  EXPECT_EQ(wasm_off.ops, wasm_on.ops);
  EXPECT_EQ(wasm_off.memory_bytes, wasm_on.memory_bytes);
  EXPECT_EQ(wasm_off.result, wasm_on.result);
  EXPECT_EQ(wasm_off.boundary_crossings, wasm_on.boundary_crossings);
  EXPECT_EQ(js_off.cost_ps, js_on.cost_ps);
  EXPECT_EQ(js_off.ops, js_on.ops);
  EXPECT_EQ(js_off.memory_bytes, js_on.memory_bytes);
  EXPECT_EQ(js_off.result, js_on.result);
  EXPECT_GT(tracer.size(), 0u);
}

TEST(ProfIntegration, SelfCostSumsToReportedCost) {
  const core::BenchSource* bench = benchmarks::find_benchmark("gemm");
  ASSERT_NE(bench, nullptr);
  const core::BuildResult build =
      core::build(*bench, core::InputSize::XS, ir::OptLevel::O2);
  ASSERT_TRUE(build.ok) << build.error;
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);

  prof::Tracer tracer;
  env::RunOptions options;
  options.tracer = &tracer;
  const env::PageMetrics wasm = browser.run_wasm(build.wasm, options);
  const env::PageMetrics js = browser.run_js(build.js_source, options);
  ASSERT_TRUE(wasm.ok && js.ok);
  ASSERT_EQ(tracer.stats().dropped, 0u);

  for (const auto& [track, metrics] :
       {std::pair{prof::kWasmTrack, wasm}, std::pair{prof::kJsTrack, js}}) {
    const prof::Profile p = prof::build_profile(tracer, track);
    uint64_t self_sum = 0;
    for (const auto& f : p.functions) self_sum += f.self_ps;
    EXPECT_EQ(p.span_total_ps, metrics.cost_ps);
    EXPECT_EQ(self_sum, metrics.cost_ps);
    EXPECT_EQ(p.unmatched_ends, 0u);
    EXPECT_EQ(p.unclosed_begins, 0u);
  }
}

TEST(ProfIntegration, MeasurePipesTracerThroughRunOptions) {
  const core::BenchSource* bench = benchmarks::find_benchmark("gemm");
  ASSERT_NE(bench, nullptr);
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);

  prof::Tracer tracer;
  env::RunOptions options;
  options.tracer = &tracer;
  const core::Measurement m =
      core::measure(*bench, core::InputSize::XS, ir::OptLevel::O2, browser, options);
  ASSERT_TRUE(m.wasm.ok && m.js.ok);
  // Both VMs of the cell landed in one tracer, on their own tracks.
  EXPECT_GT(prof::build_profile(tracer, prof::kWasmTrack).span_total_ps, 0u);
  EXPECT_GT(prof::build_profile(tracer, prof::kJsTrack).span_total_ps, 0u);
}

}  // namespace
}  // namespace wb
