// The tentpole guarantee of the parallel study runner: running the corpus
// with --jobs=4 produces bit-identical metrics — and therefore
// byte-identical printed tables — to the serial run. Every cell owns its
// VMs and virtual clock, so the schedule must not be observable.
#include "common.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace wb;
using namespace wb::bench;

namespace {

void expect_metrics_identical(const env::PageMetrics& a, const env::PageMetrics& b,
                              const std::string& what) {
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.result, b.result) << what;
  EXPECT_EQ(a.cost_ps, b.cost_ps) << what;
  // time_ms is derived from cost_ps; require bit equality, not closeness.
  EXPECT_EQ(a.time_ms, b.time_ms) << what;
  EXPECT_EQ(a.memory_bytes, b.memory_bytes) << what;
  EXPECT_EQ(a.code_size, b.code_size) << what;
  EXPECT_EQ(a.ops, b.ops) << what;
  EXPECT_EQ(a.boundary_crossings, b.boundary_crossings) << what;
}

/// Renders rows the way bench binaries do, so identical strings mean
/// byte-identical table output.
std::string render_rows(const std::vector<Row>& rows) {
  support::TextTable table("corpus");
  table.set_header({"Benchmark", "Suite", "JS ms", "Wasm ms", "x86 ms", "Wasm KB",
                    "JS KB", "Wasm mem KB", "JS mem KB"});
  for (const auto& r : rows) {
    table.add_row({r.name, r.suite, support::fmt(r.js.time_ms, 3),
                   support::fmt(r.wasm.time_ms, 3), support::fmt(r.native.time_ms, 3),
                   support::fmt_kb(static_cast<double>(r.wasm.code_size)),
                   support::fmt_kb(static_cast<double>(r.js.code_size)),
                   support::fmt_kb(static_cast<double>(r.wasm.memory_bytes)),
                   support::fmt_kb(static_cast<double>(r.js.memory_bytes))});
  }
  return table.render();
}

TEST(CorpusParallel, ParallelRunIsBitIdenticalToSerial) {
  const env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);

  const CorpusResult serial = run_corpus_checked(
      core::InputSize::XS, ir::OptLevel::O2, chrome, {}, /*with_native=*/true,
      /*native_fast_math_costs=*/false, /*jobs=*/1);
  const CorpusResult parallel = run_corpus_checked(
      core::InputSize::XS, ir::OptLevel::O2, chrome, {}, /*with_native=*/true,
      /*native_fast_math_costs=*/false, /*jobs=*/4);

  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  ASSERT_EQ(serial.rows.size(), benchmarks::all_benchmarks().size());

  for (size_t i = 0; i < serial.rows.size(); ++i) {
    const Row& s = serial.rows[i];
    const Row& p = parallel.rows[i];
    EXPECT_EQ(s.name, p.name) << "row order changed at " << i;
    EXPECT_EQ(s.suite, p.suite);
    expect_metrics_identical(s.wasm, p.wasm, s.name + " wasm");
    expect_metrics_identical(s.js, p.js, s.name + " js");
    EXPECT_EQ(s.native.ok, p.native.ok) << s.name;
    EXPECT_EQ(s.native.result, p.native.result) << s.name;
    EXPECT_EQ(s.native.time_ms, p.native.time_ms) << s.name;
    EXPECT_EQ(s.native.code_size, p.native.code_size) << s.name;
    EXPECT_EQ(s.native.memory_bytes, p.native.memory_bytes) << s.name;
    EXPECT_EQ(s.wasm_sha256, p.wasm_sha256) << s.name;
    EXPECT_EQ(s.js_sha256, p.js_sha256) << s.name;
    EXPECT_EQ(s.wasm_sha256.size(), 64u);
    EXPECT_EQ(s.js_sha256.size(), 64u);
  }

  // Identical metrics in identical order ⇒ identical printed bytes.
  EXPECT_EQ(render_rows(serial.rows), render_rows(parallel.rows));
}

TEST(CorpusParallel, JobsResolutionPrefersExplicitSetting) {
  set_jobs(3);
  EXPECT_EQ(effective_jobs(), 3);
  set_jobs(0);  // back to WB_JOBS / hardware
  EXPECT_GE(effective_jobs(), 1);
}

TEST(CorpusParallel, ParseCommonFlagsReadsJobs) {
  std::string arg0 = "bench";
  std::string arg1 = "--jobs=5";
  char* argv[] = {arg0.data(), arg1.data(), nullptr};
  parse_common_flags(2, argv);
  EXPECT_EQ(effective_jobs(), 5);
  set_jobs(0);
}

}  // namespace
