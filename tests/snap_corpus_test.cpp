// Whole-corpus snapshot/resume gate (slow tier): for every benchmark at
// XS/-O2, snapshot a post-__init instance, round-trip it through the
// canonical `.wbsnap` codec, exact-resume it into a fresh instance, and
// require the continuation (main) to match a fresh uninterrupted run on
// every observable — trap, result bits, the full ExecStats, and the
// attribution counters — on all three Wasm execution tiers (classic,
// quickened, quickened+JIT). This is the corpus-scale twin of
// snap_test.cpp and the guarantee behind `wb_study --snapshot`.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "backend/wasm_backend.h"
#include "benchmarks/registry.h"
#include "core/study.h"
#include "snap/snap.h"
#include "wasm/interp.h"

namespace wb {
namespace {

struct Outcome {
  wasm::Trap init_trap = wasm::Trap::None;
  wasm::InvokeResult main_result;
  wasm::ExecStats stats;
  wasm::AttrStats attr;
};

enum class Engine { Classic, Quickened, Jit };

void configure(wasm::Instance& inst, Engine engine) {
  inst.set_quicken(engine != Engine::Classic);
  inst.set_jit(engine == Engine::Jit);
  wasm::CostTable baseline;
  baseline.fill(140);
  wasm::CostTable optimizing;
  optimizing.fill(55);
  inst.set_cost_tables(baseline, optimizing);
  wasm::TierPolicy policy;
  policy.tierup_threshold = 500;
  inst.set_tier_policy(policy);
  inst.set_grow_cost(2'000);
  inst.set_fuel(200'000'000);
}

Outcome fresh_run(const backend::WasmArtifact& artifact, Engine engine) {
  wasm::Instance inst(artifact.module, backend::make_import_bindings(artifact));
  configure(inst, engine);
  Outcome out;
  out.init_trap = inst.invoke("__init", {}).trap;
  if (out.init_trap == wasm::Trap::None) {
    out.main_result = inst.invoke("main", {});
  }
  out.stats = inst.stats();
  out.attr = inst.attr_stats();
  return out;
}

Outcome resumed_run(const backend::WasmArtifact& artifact, Engine engine,
                    const std::string& name) {
  Outcome out;

  wasm::Instance warm(artifact.module, backend::make_import_bindings(artifact));
  configure(warm, engine);
  out.init_trap = warm.invoke("__init", {}).trap;
  if (out.init_trap != wasm::Trap::None) return out;

  const snap::WasmSnapshot snapshot = snap::snapshot_wasm(warm, name);
  std::string error;
  const auto parsed = snap::parse_wasm(snap::serialize(snapshot), error);
  EXPECT_TRUE(parsed) << name << ": " << error;
  if (!parsed) return out;
  EXPECT_EQ(parsed->sha256, snapshot.sha256);

  wasm::Instance inst(artifact.module, backend::make_import_bindings(artifact));
  configure(inst, engine);
  EXPECT_TRUE(snap::resume_wasm(inst, *parsed, snap::Resume::Exact)) << name;
  out.main_result = inst.invoke("main", {});
  out.stats = inst.stats();
  out.attr = inst.attr_stats();
  return out;
}

class SnapCorpus : public testing::TestWithParam<const core::BenchSource*> {};

TEST_P(SnapCorpus, ResumedContinuationMatchesFreshRun) {
  const core::BenchSource& bench = *GetParam();
  const core::BuildResult build =
      core::build(bench, core::InputSize::XS, ir::OptLevel::O2);
  ASSERT_TRUE(build.ok) << bench.name << ": " << build.error;
  for (const Engine engine : {Engine::Classic, Engine::Quickened, Engine::Jit}) {
    SCOPED_TRACE(std::string(bench.name) + " engine=" +
                 std::to_string(static_cast<int>(engine)));
    const Outcome fresh = fresh_run(build.wasm, engine);
    const Outcome resumed = resumed_run(build.wasm, engine, bench.name);
    ASSERT_EQ(fresh.init_trap, resumed.init_trap);
    if (fresh.init_trap != wasm::Trap::None) continue;
    EXPECT_EQ(fresh.main_result.trap, resumed.main_result.trap);
    if (fresh.main_result.ok() && resumed.main_result.ok()) {
      EXPECT_EQ(fresh.main_result.value.bits, resumed.main_result.value.bits);
    }
    EXPECT_EQ(fresh.stats.ops_executed, resumed.stats.ops_executed);
    EXPECT_EQ(fresh.stats.cost_ps, resumed.stats.cost_ps);
    EXPECT_EQ(fresh.stats.arith_counts, resumed.stats.arith_counts);
    EXPECT_EQ(fresh.stats.calls, resumed.stats.calls);
    EXPECT_EQ(fresh.stats.host_calls, resumed.stats.host_calls);
    EXPECT_EQ(fresh.stats.memory_grows, resumed.stats.memory_grows);
    EXPECT_EQ(fresh.stats.tierups, resumed.stats.tierups);
    EXPECT_EQ(fresh.attr.class_counts, resumed.attr.class_counts);
    EXPECT_EQ(fresh.attr.direct_ps, resumed.attr.direct_ps);
  }
}

std::vector<const core::BenchSource*> all() {
  std::vector<const core::BenchSource*> out;
  for (const auto& b : benchmarks::all_benchmarks()) out.push_back(&b);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Corpus, SnapCorpus, testing::ValuesIn(all()),
                         [](const testing::TestParamInfo<const core::BenchSource*>& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wb
