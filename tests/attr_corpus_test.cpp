// Corpus-wide attribution exactness (slow tier).
//
// For every benchmark in the corpus, on both VMs, under both forced tier
// configurations (baseline-only and optimizing-only) and the default
// tiering, the per-cause lanes of PageMetrics::attr_ps must sum to
// cost_ps bit-exactly. This is the acceptance bar for wb::attr: the
// decomposition is a partition of the virtual clock, never an estimate.
#include <gtest/gtest.h>

#include "attr/attr.h"
#include "benchmarks/registry.h"
#include "core/study.h"
#include "env/env.h"
#include "js/quicken.h"
#include "wasm/quicken.h"

namespace wb {
namespace {

class AttrCorpus : public ::testing::TestWithParam<const core::BenchSource*> {};

TEST_P(AttrCorpus, LanesSumToCostPsOnBothVmsAndTiers) {
  const core::BenchSource& bench = *GetParam();
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);

  struct Config {
    const char* name;
    env::RunOptions options;
  };
  Config configs[3];
  configs[0].name = "default";
  configs[1].name = "baseline-only";
  configs[1].options.wasm_tiers = env::RunOptions::WasmTiers::BaselineOnly;
  configs[1].options.js_jit_enabled = false;
  configs[2].name = "optimizing-only";
  configs[2].options.wasm_tiers = env::RunOptions::WasmTiers::OptimizingOnly;

  for (const Config& config : configs) {
    const core::Measurement m = core::measure(bench, core::InputSize::XS,
                                              ir::OptLevel::O2, browser, config.options);
    ASSERT_TRUE(m.wasm.ok) << config.name << ": " << m.wasm.error;
    ASSERT_TRUE(m.js.ok) << config.name << ": " << m.js.error;
    EXPECT_EQ(attr::total(m.wasm.attr_ps), m.wasm.cost_ps) << config.name;
    EXPECT_EQ(attr::total(m.js.attr_ps), m.js.cost_ps) << config.name;
  }
}

TEST_P(AttrCorpus, QuickenedAndClassicAttributionsAreBitIdentical) {
  const core::BenchSource& bench = *GetParam();
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  wasm::set_quicken_default(true);
  js::set_quicken_default(true);
  const core::Measurement quick =
      core::measure(bench, core::InputSize::XS, ir::OptLevel::O2, browser);
  wasm::set_quicken_default(false);
  js::set_quicken_default(false);
  const core::Measurement classic =
      core::measure(bench, core::InputSize::XS, ir::OptLevel::O2, browser);
  wasm::set_quicken_default(true);
  js::set_quicken_default(true);
  ASSERT_TRUE(quick.wasm.ok && quick.js.ok && classic.wasm.ok && classic.js.ok);
  EXPECT_EQ(quick.wasm.attr_ps, classic.wasm.attr_ps);
  EXPECT_EQ(quick.js.attr_ps, classic.js.attr_ps);
  EXPECT_EQ(attr::total(quick.wasm.attr_ps), quick.wasm.cost_ps);
  EXPECT_EQ(attr::total(quick.js.attr_ps), quick.js.cost_ps);
}

std::vector<const core::BenchSource*> all_pointers() {
  std::vector<const core::BenchSource*> out;
  for (const core::BenchSource& b : benchmarks::all_benchmarks()) out.push_back(&b);
  return out;
}

INSTANTIATE_TEST_SUITE_P(All41, AttrCorpus, ::testing::ValuesIn(all_pointers()),
                         [](const auto& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wb
