// Pass tests: each optimization does its job, and — the load-bearing
// property — every pipeline preserves program semantics.
#include <gtest/gtest.h>

#include "ir/exec.h"
#include "ir/passes.h"
#include "minic/minic.h"

namespace wb::ir {
namespace {

Module compile_c(const std::string& source) {
  std::string error;
  auto m = minic::compile(source, {}, error);
  EXPECT_TRUE(m.has_value()) << error;
  return m ? std::move(*m) : Module{};
}

int32_t run_i32(Module& m, const char* name = "main") {
  Executor exec(m);
  const ExecResult r = exec.run(name);
  EXPECT_TRUE(r.ok) << r.error;
  return r.as_i32();
}

size_t module_nodes(const Module& m) {
  // Re-use the text dump as a cheap structural size proxy.
  return to_text(m).size();
}

TEST(Passes, ConstFoldCollapsesArithmetic) {
  Module m = compile_c("int main(void) { return (2 + 3) * 4 - 6 / 2; }");
  pass_constfold(m);
  // Body should be a single `return 17`.
  const Function& main_fn = m.functions[0];
  ASSERT_EQ(main_fn.body.size(), 1u);
  ASSERT_EQ(main_fn.body[0]->kind, Stmt::Kind::Return);
  EXPECT_EQ(main_fn.body[0]->e0->kind, Expr::Kind::Const);
  EXPECT_EQ(static_cast<int32_t>(main_fn.body[0]->e0->imm), 17);
}

TEST(Passes, ConstFoldKeepsDivByZero) {
  Module m = compile_c("int main(void) { int z = 0; return 5 / (z * 0); }");
  pass_constfold(m);
  pass_constfold(m);
  Executor exec(m);
  EXPECT_FALSE(exec.run("main").ok);  // still traps, not folded away
}

TEST(Passes, ConstFoldIdentities) {
  Module m = compile_c(
      "int f(int x) { return (x + 0) * 1 + (x * 0); } int main(void) { return f(9); }");
  pass_constfold(m);
  EXPECT_EQ(run_i32(m), 9);
  // x+0 -> x, x*1 -> x, x*0 -> 0, 0+... folds: body should mention no Mul.
  const std::string text = to_text(m.functions[0]);
  EXPECT_EQ(text.find("mul"), std::string::npos) << text;
}

TEST(Passes, DceRemovesDeadAssigns) {
  Module m = compile_c(R"(
    int main(void) {
      int dead1 = 5;
      int dead2 = dead1 * 3;
      int live = 7;
      return live;
    }
  )");
  const size_t before = module_nodes(m);
  pass_dce(m);
  EXPECT_LT(module_nodes(m), before);
  EXPECT_EQ(run_i32(m), 7);
  const std::string text = to_text(m.functions[0]);
  EXPECT_EQ(text.find("5"), std::string::npos) << text;
}

TEST(Passes, GlobalOptRemovesUnreferencedGlobals) {
  Module m = compile_c(R"(
    int unused_global[100];
    int used = 3;
    int main(void) { return used; }
  )");
  ASSERT_EQ(m.globals.size(), 2u);
  pass_globalopt(m);
  ASSERT_EQ(m.globals.size(), 1u);
  EXPECT_EQ(m.globals[0].name, "used");
  EXPECT_EQ(run_i32(m), 3);
}

TEST(Passes, InlineSmallExprFunction) {
  Module m = compile_c(R"(
    int sq(int x) { return x * x; }
    int main(void) { return sq(7) + sq(2); }
  )");
  pass_inline(m, 48);
  // No Call nodes should remain in main.
  const std::string text = to_text(m.functions[m.find_function("main") < 0
                                                   ? 0
                                                   : static_cast<size_t>(m.find_function("main"))]);
  EXPECT_EQ(text.find("call"), std::string::npos) << text;
  pass_constfold(m);
  EXPECT_EQ(run_i32(m), 53);
}

TEST(Passes, InlineVoidStatementFunction) {
  Module m = compile_c(R"(
    int acc;
    void bump(int d) { acc = acc + d; }
    int main(void) { acc = 0; bump(3); bump(4); return acc; }
  )");
  pass_inline(m, 48);
  const int mi = m.find_function("main");
  ASSERT_GE(mi, 0);
  const std::string text = to_text(m.functions[static_cast<size_t>(mi)]);
  EXPECT_EQ(text.find("call"), std::string::npos) << text;
  EXPECT_EQ(run_i32(m), 7);
}

TEST(Passes, InlineRespectsThreshold) {
  Module m = compile_c(R"(
    int big(int x) { return x * x + x * 2 + x * 3 + x * 4 + x * 5 + x * 6 + x * 7; }
    int main(void) { return big(1); }
  )");
  pass_inline(m, 4);
  const int mi = m.find_function("main");
  const std::string text = to_text(m.functions[static_cast<size_t>(mi)]);
  EXPECT_NE(text.find("call"), std::string::npos);
  EXPECT_EQ(run_i32(m), 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST(Passes, LicmHoistsInvariantWork) {
  Module m = compile_c(R"(
    double out[64];
    int main(void) {
      double a = 3.0;
      double b = 4.0;
      int i;
      for (i = 0; i < 64; i++) {
        out[i] = (a * a + b * b) * (a + b + 1.0);
      }
      return (int)out[63];
    }
  )");
  Module reference = compile_c(to_text(m).empty() ? "" : "");
  (void)reference;
  Executor before_exec(m);
  const uint64_t ops_before = [&] {
    before_exec.run("main");
    return before_exec.stats().ops;
  }();
  pass_licm(m);
  Executor after_exec(m);
  const ExecResult r = after_exec.run("main");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.as_i32(), 200);
  EXPECT_LT(after_exec.stats().ops, ops_before);
}

TEST(Passes, VectorizeMarksLoopsAndPreservesSemantics) {
  Module m = compile_c(R"(
    int data[100];
    int main(void) {
      int i;
      for (i = 0; i < 97; i = i + 1) data[i] = i * 2;
      int s = 0;
      for (i = 0; i < 97; i = i + 1) s += data[i];
      return s;
    }
  )");
  const int32_t expect = run_i32(m);
  Module plain = compile_c(
      "int data[100]; int main(void) { int i; for (i = 0; i < 97; i = i + 1) "
      "data[i] = i * 2; int s = 0; for (i = 0; i < 97; i = i + 1) s += data[i]; "
      "return s; }");
  pass_vectorize(m, 2);
  EXPECT_EQ(run_i32(m), expect);

  // Both counted loops are stamped with 2 lanes.
  int vec_loops = 0;
  for (const auto& s : m.functions[0].body) {
    if (s->kind == Stmt::Kind::While && s->vec == 2) ++vec_loops;
  }
  EXPECT_EQ(vec_loops, 2);

  // The native cost model amortizes lanes: vectorized runs cheaper.
  Executor vec_exec(m), plain_exec(plain);
  vec_exec.run("main");
  plain_exec.run("main");
  EXPECT_LT(vec_exec.stats().cost_ps, plain_exec.stats().cost_ps);
}

TEST(Passes, UnrollSkipsLoopsWithBreak) {
  Module m = compile_c(R"(
    int main(void) {
      int s = 0;
      int i;
      for (i = 0; i < 100; i = i + 1) {
        if (i == 50) break;
        s += i;
      }
      return s;
    }
  )");
  const std::string before = to_text(m.functions[0]);
  pass_vectorize(m, 4);
  EXPECT_EQ(to_text(m.functions[0]), before);  // untouched
  EXPECT_EQ(run_i32(m), 1225);
}

TEST(Passes, FastMathTurnsDivIntoMul) {
  Module m = compile_c(R"(
    double xs[16];
    int main(void) {
      int i;
      for (i = 0; i < 16; i++) xs[i] = i;
      double s = 0.0;
      for (i = 0; i < 16; i++) s += xs[i] / 4.0;
      return (int)s;
    }
  )");
  pass_fastmath(m);
  const std::string text = to_text(m.functions[0]);
  EXPECT_EQ(text.find("div_s.f64"), std::string::npos) << text;
  EXPECT_EQ(run_i32(m), 30);
}

TEST(Passes, IpConstPropSubstitutesUniformConstants) {
  Module m = compile_c(R"(
    double scale(double x, double f) { return x / f; }
    double acc;
    int main(void) {
      acc = scale(10.0, 2.0) + scale(20.0, 2.0);
      return (int)acc;
    }
  )");
  pass_ipconstprop(m);
  const int si = m.find_function("scale");
  ASSERT_GE(si, 0);
  const std::string text = to_text(m.functions[static_cast<size_t>(si)]);
  // Param %1 (f) replaced by the constant 2 in the body; x varies so %0
  // stays a parameter read.
  EXPECT_NE(text.find("div_s.f64 %0 2"), std::string::npos) << text;
  EXPECT_EQ(run_i32(m), 15);
}

TEST(Passes, DeadGlobalStoreElimination) {
  Module m = compile_c(R"(
    int result[50];
    int used[50];
    int main(void) {
      int i;
      for (i = 0; i < 50; i++) {
        used[i] = i;
        result[i] = i * 3;
      }
      int s = 0;
      for (i = 0; i < 50; i++) s += used[i];
      return s;
    }
  )");
  pass_dead_global_stores(m);
  const std::string text = to_text(m.functions[0]);
  // Exactly one store remains in the first loop (to `used`).
  size_t stores = 0;
  for (size_t at = text.find("store"); at != std::string::npos;
       at = text.find("store", at + 1)) {
    ++stores;
  }
  EXPECT_EQ(stores, 1u);
  EXPECT_EQ(run_i32(m), 49 * 50 / 2);
  pass_remove_unused_globals(m);
  EXPECT_EQ(m.globals.size(), 1u);
}

// ------------------------------------------------- semantic preservation

struct LevelCase {
  OptLevel level;
};

class PipelinePreservesSemantics : public testing::TestWithParam<OptLevel> {};

TEST_P(PipelinePreservesSemantics, OnRepresentativePrograms) {
  const std::vector<std::string> programs = {
      // Matrix multiply with unrollable loops + invariant work.
      R"(
        #define N 12
        double A[N][N]; double B[N][N]; double C[N][N];
        int main(void) {
          int i, j, k;
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++) {
              A[i][j] = (double)(i * j % 7) / 3.0;
              B[i][j] = (double)(i + j) / 5.0;
              C[i][j] = 0.0;
            }
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              for (k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
          double s = 0.0;
          for (i = 0; i < N; i++) for (j = 0; j < N; j++) s += C[i][j];
          return (int)(s * 100.0);
        }
      )",
      // Integer kernel with switch, continue, break, helpers.
      R"(
        int mem[64];
        int classify(int x) {
          switch (x % 4) {
            case 0: return 1;
            case 1: return 2;
            default: return 3;
          }
        }
        int twice(int x) { return x * 2; }
        int main(void) {
          int i;
          for (i = 0; i < 64; i++) {
            if (i % 5 == 0) continue;
            if (i == 60) break;
            mem[i] = classify(i) + twice(i);
          }
          int s = 0;
          for (i = 0; i < 64; i++) s ^= mem[i] * (i + 1);
          return s;
        }
      )",
      // Float-heavy with intrinsics and div-by-const (fast-math territory).
      R"(
        double data[40];
        double helper(double x, double f) { return x / f + sqrt(fabs(x)); }
        int main(void) {
          int i;
          for (i = 0; i < 40; i++) data[i] = helper((double)(i - 20), 8.0);
          double s = 0.0;
          for (i = 0; i < 40; i++) s += data[i] / 2.0;
          return (int)(s * 10.0);
        }
      )",
      // Unsigned + byte arrays + recursion.
      R"(
        unsigned char bytes[32];
        unsigned hash(unsigned h, unsigned c) { return (h * 31 + c) & 0xffffff; }
        int fib(int n) { if (n < 3) return 1; return fib(n - 1) + fib(n - 2); }
        int main(void) {
          int i;
          for (i = 0; i < 32; i++) bytes[i] = (i * 37 + 11);
          unsigned h = 5381;
          for (i = 0; i < 32; i++) h = hash(h, bytes[i]);
          return (int)(h & 0x7fffffff) + fib(10);
        }
      )",
  };

  for (const auto& src : programs) {
    Module base = compile_c(src);
    const int32_t expect = run_i32(base);
    Module opt = compile_c(src);
    run_pipeline(opt, GetParam());
    Executor exec(opt);
    const ExecResult r = exec.run("main");
    ASSERT_TRUE(r.ok) << to_string(GetParam()) << ": " << r.error;
    EXPECT_EQ(r.as_i32(), expect) << "level " << to_string(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, PipelinePreservesSemantics,
                         testing::Values(OptLevel::O0, OptLevel::O1, OptLevel::O2,
                                         OptLevel::O3, OptLevel::Ofast, OptLevel::Os,
                                         OptLevel::Oz),
                         [](const testing::TestParamInfo<OptLevel>& info) {
                           return to_string(info.param);
                         });

TEST(Pipeline, OptimizationReducesExecutedOps) {
  const std::string src = R"(
    #define N 24
    double A[N][N]; double x[N]; double y[N];
    double alpha(void) { return 1.5; }
    int main(void) {
      int i, j;
      for (i = 0; i < N; i++) {
        x[i] = (double)i / 3.0;
        for (j = 0; j < N; j++) A[i][j] = (double)(i + j) / 7.0;
      }
      for (i = 0; i < N; i++) {
        double acc = 0.0;
        for (j = 0; j < N; j++) acc += A[i][j] * x[j] * alpha();
        y[i] = acc;
      }
      double s = 0.0;
      for (i = 0; i < N; i++) s += y[i];
      return (int)s;
    }
  )";
  Module o0 = compile_c(src);
  Module o2 = compile_c(src);
  run_pipeline(o2, OptLevel::O2);
  Executor e0(o0), e2(o2);
  const int32_t r0 = e0.run("main").as_i32();
  const int32_t r2 = e2.run("main").as_i32();
  EXPECT_EQ(r0, r2);
  EXPECT_LT(e2.stats().cost_ps, e0.stats().cost_ps);
}

TEST(Pipeline, ReportsPassesAndFastMath) {
  Module m = compile_c("int main(void) { return 0; }");
  const PipelineInfo o2 = run_pipeline(m, OptLevel::O2);
  EXPECT_FALSE(o2.fast_math);
  bool has_vectorize = false;
  for (const auto& p : o2.passes_run) has_vectorize |= p == "vectorize-loops";
  EXPECT_TRUE(has_vectorize);

  Module m2 = compile_c("int main(void) { return 0; }");
  const PipelineInfo oz = run_pipeline(m2, OptLevel::Oz);
  for (const auto& p : oz.passes_run) {
    EXPECT_NE(p, "vectorize-loops");
    EXPECT_NE(p, "inline");
  }
  Module m3 = compile_c("int main(void) { return 0; }");
  EXPECT_TRUE(run_pipeline(m3, OptLevel::Ofast).fast_math);
}

}  // namespace
}  // namespace wb::ir
