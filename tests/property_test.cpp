// Property-based tests (seeded sweeps via TEST_P):
//  1. The Wasm binary decoder never crashes or mis-accepts on mutated
//     bytes: every decode either fails cleanly or yields a module that
//     re-validates.
//  2. Randomly generated mini-C programs compute the same checksum on all
//     targets at every optimization level (the compiler's semantics hold
//     on inputs nobody hand-picked).
//  3. GC stress: random allocation/retention patterns never lose
//     reachable data across collections.
#include <gtest/gtest.h>

#include <sstream>

#include "backend/js_backend.h"
#include "backend/native_backend.h"
#include "backend/wasm_backend.h"
#include "ir/exec.h"
#include "ir/passes.h"
#include "js/engine.h"
#include "js/interp.h"
#include "minic/minic.h"
#include "support/rng.h"
#include "wasm/codec.h"
#include "wasm/interp.h"
#include "wasm/validator.h"

namespace wb {
namespace {

// ----------------------------------------------------- decoder fuzzing

class DecoderMutation : public testing::TestWithParam<uint64_t> {};

TEST_P(DecoderMutation, NeverCrashesOrMisaccepts) {
  // Base module: a mid-sized real benchmark binary.
  static const std::vector<uint8_t> base = [] {
    const char* src = R"(
      unsigned char data[64];
      int helper(int x) { return x * 3 + 1; }
      int main(void) {
        int i;
        int s = 0;
        for (i = 0; i < 64; i++) {
          data[i] = helper(i);
          s += data[i];
        }
        return s;
      }
    )";
    std::string error;
    auto m = minic::compile(src, {}, error);
    auto artifact = backend::compile_to_wasm(std::move(*m), {});
    return artifact.binary;
  }();

  support::Rng rng(GetParam());
  std::vector<uint8_t> bytes = base;
  // 1-8 random byte mutations (flips, truncations, insertions).
  const int mutations = 1 + static_cast<int>(rng.next_below(8));
  for (int i = 0; i < mutations; ++i) {
    switch (rng.next_below(3)) {
      case 0:
        bytes[rng.next_below(bytes.size())] = static_cast<uint8_t>(rng.next_u64());
        break;
      case 1:
        bytes.resize(8 + rng.next_below(bytes.size()));
        break;
      case 2:
        bytes.insert(bytes.begin() + static_cast<long>(rng.next_below(bytes.size())),
                     static_cast<uint8_t>(rng.next_u64()));
        break;
    }
  }

  std::string error;
  const auto decoded = wasm::decode(bytes, &error);
  if (!decoded) {
    EXPECT_FALSE(error.empty());
    return;
  }
  // If it decodes, validation must either reject it or the module must be
  // safely executable (bounded fuel, any trap acceptable).
  if (wasm::validate(*decoded)) return;  // rejected: fine
  if (decoded->memory && decoded->memory->min_pages > 1024) {
    return;  // a mutated limits field may demand gigabytes; skip executing
  }
  wasm::Instance inst(*decoded, std::vector<wasm::HostFn>(decoded->imports.size(),
                                                          [](std::span<const wasm::Value>,
                                                             wasm::Value*) {
                                                            return wasm::Trap::None;
                                                          }));
  inst.set_fuel(100'000);
  (void)inst.invoke("main", {});  // must not crash; result irrelevant
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderMutation, testing::Range<uint64_t>(1, 65));

// ------------------------------------------- random-program differential

/// Generates a random (but always-terminating, trap-free) mini-C program.
std::string random_program(uint64_t seed) {
  support::Rng rng(seed);
  std::ostringstream out;
  const int nglobals = 2 + static_cast<int>(rng.next_below(3));
  const int array_len = 16 + static_cast<int>(rng.next_below(48));
  for (int g = 0; g < nglobals; ++g) {
    out << (g % 2 ? "double" : "int") << " g" << g << "[" << array_len << "];\n";
  }
  out << "int main(void) {\n  int i; int j;\n  double acc = 0.0;\n  int s = 0;\n";
  // Init loops.
  for (int g = 0; g < nglobals; ++g) {
    out << "  for (i = 0; i < " << array_len << "; i++) g" << g << "[i] = ";
    if (g % 2) {
      out << "(double)(i * " << (1 + rng.next_below(9)) << " % "
          << (2 + rng.next_below(13)) << ") / " << (2 + rng.next_below(7)) << ".0;\n";
    } else {
      out << "(int)(i * " << (1 + rng.next_below(9)) << ") % "
          << (2 + rng.next_below(13)) << ";\n";
    }
  }
  // A couple of compute loops with random safe expressions.
  const int nloops = 1 + static_cast<int>(rng.next_below(3));
  for (int l = 0; l < nloops; ++l) {
    const int ig = 2 * static_cast<int>(rng.next_below((nglobals + 1) / 2));
    const int dg = 2 * static_cast<int>(rng.next_below(nglobals / 2)) + 1;
    out << "  for (i = 1; i < " << array_len - 1 << "; i++) {\n";
    switch (rng.next_below(4)) {
      case 0:
        out << "    g" << dg << "[i] = g" << dg << "[i - 1] * 0.5 + (double)g" << ig
            << "[i] / 3.0;\n";
        break;
      case 1:
        out << "    g" << ig << "[i] = (g" << ig << "[i] << 1) ^ (g" << ig
            << "[i + 1] & 255);\n";
        break;
      case 2:
        out << "    if (g" << ig << "[i] % " << (2 + rng.next_below(5)) << " == 0) g"
            << dg << "[i] += 1.5; else g" << dg << "[i] -= 0.25;\n";
        break;
      case 3:
        out << "    for (j = 0; j < 3; j++) g" << dg << "[i] += g" << dg
            << "[i - 1] * 0.125;\n";
        break;
    }
    out << "  }\n";
  }
  out << "  for (i = 0; i < " << array_len << "; i++) {\n";
  out << "    acc += g1[i] - floor(g1[i] / 100.0) * 100.0;\n";
  out << "    s = (s + g0[i] * (i + 1)) % 1000000;\n";
  out << "  }\n";
  out << "  return s + (int)acc;\n}\n";
  return out.str();
}

class RandomProgramDifferential : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramDifferential, AllTargetsAllLevelsAgree) {
  const std::string src = random_program(GetParam());
  std::string error;

  auto compile_at = [&](ir::OptLevel level, bool& fast_math) -> ir::Module {
    auto m = minic::compile(src, {}, error);
    EXPECT_TRUE(m.has_value()) << error << "\n" << src;
    const ir::PipelineInfo info = ir::run_pipeline(*m, level);
    fast_math = info.fast_math;
    return std::move(*m);
  };

  bool fm = false;
  ir::Module ref = compile_at(ir::OptLevel::O0, fm);
  ir::Executor ref_exec(ref);
  ref_exec.set_fuel(50'000'000);
  const ir::ExecResult ref_result = ref_exec.run("main");
  ASSERT_TRUE(ref_result.ok) << ref_result.error << "\n" << src;

  for (ir::OptLevel level : {ir::OptLevel::O2, ir::OptLevel::Ofast, ir::OptLevel::Oz}) {
    bool fast_math = false;
    // Native.
    {
      ir::Module m = compile_at(level, fast_math);
      backend::NativeArtifact native = backend::compile_to_native(std::move(m));
      ir::Executor exec(native.module);
      exec.set_fuel(50'000'000);
      const ir::ExecResult r = exec.run("main");
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.as_i32(), ref_result.as_i32()) << "native " << to_string(level);
    }
    // Wasm.
    {
      ir::Module m = compile_at(level, fast_math);
      backend::WasmOptions opts;
      opts.fast_math = fast_math;
      const backend::WasmArtifact artifact = backend::compile_to_wasm(std::move(m), opts);
      ASSERT_TRUE(artifact.ok()) << artifact.error;
      wasm::Instance inst(artifact.module, backend::make_import_bindings(artifact));
      inst.set_fuel(50'000'000);
      ASSERT_TRUE(inst.invoke("__init", {}).ok());
      const wasm::InvokeResult r = inst.invoke("main", {});
      ASSERT_TRUE(r.ok()) << wasm::to_string(r.trap);
      EXPECT_EQ(r.value.as_i32(), ref_result.as_i32()) << "wasm " << to_string(level);
    }
    // JS.
    {
      ir::Module m = compile_at(level, fast_math);
      backend::JsOptions opts;
      opts.fast_math = fast_math;
      const backend::JsArtifact artifact = backend::compile_to_js(std::move(m), opts);
      ASSERT_TRUE(artifact.ok()) << artifact.error;
      auto code = js::compile_script(artifact.source, error);
      ASSERT_TRUE(code.has_value()) << error;
      js::Heap heap;
      js::Vm vm(*code, heap);
      vm.set_fuel(50'000'000);
      ASSERT_TRUE(vm.run_top_level().ok);
      const js::Vm::Result r = vm.call_function("main", {});
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(js::to_int32(r.value.num()), ref_result.as_i32()) << "js " << to_string(level);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramDifferential,
                         testing::Range<uint64_t>(1, 33));

// ------------------------------------------------------------ GC stress

class GcStress : public testing::TestWithParam<uint64_t> {};

TEST_P(GcStress, ReachableValuesSurviveRandomChurn) {
  support::Rng rng(GetParam());
  // Build a JS program that fills a retained structure while churning
  // garbage, with a checksum we can predict in C++.
  const int keep = 50 + static_cast<int>(rng.next_below(100));
  const int churn = 500 + static_cast<int>(rng.next_below(2000));
  const int mod = 3 + static_cast<int>(rng.next_below(17));
  std::ostringstream src;
  src << "var retained = [];\n"
      << "function main() {\n"
      << "  var cs = 0;\n"
      << "  for (var i = 0; i < " << churn << "; i++) {\n"
      << "    var junk = [i, i * 2, 'x' + i, {v: i}];\n"
      << "    if (i % " << mod << " == 0 && retained.length < " << keep << ")\n"
      << "      retained.push({key: i, data: [i, i + 1]});\n"
      << "    cs = (cs + junk[1]) | 0;\n"
      << "  }\n"
      << "  for (i = 0; i < retained.length; i++)\n"
      << "    cs = (cs + retained[i].key + retained[i].data[1]) | 0;\n"
      << "  return cs;\n"
      << "}\n";

  // Expected checksum computed independently.
  int64_t cs = 0;
  int kept = 0;
  std::vector<int> keys;
  for (int i = 0; i < churn; ++i) {
    if (i % mod == 0 && kept < keep) {
      keys.push_back(i);
      ++kept;
    }
    cs = static_cast<int32_t>(cs + i * 2);
  }
  for (int k : keys) cs = static_cast<int32_t>(cs + k + (k + 1));

  std::string error;
  auto code = js::compile_script(src.str(), error);
  ASSERT_TRUE(code.has_value()) << error;
  // Tiny GC threshold: collections happen constantly.
  js::Heap heap(4 << 10);
  js::Vm vm(*code, heap);
  vm.set_fuel(50'000'000);
  ASSERT_TRUE(vm.run_top_level().ok);
  const js::Vm::Result r = vm.call_function("main", {});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(js::to_int32(r.value.num()), static_cast<int32_t>(cs));
  EXPECT_GT(heap.stats().collections, 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcStress, testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace wb
