#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

using wb::support::ThreadPool;
using wb::support::parallel_for;

namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.submit([] {});
  pool.wait_idle();
  pool.wait_idle();
}

TEST(ThreadPool, TasksCanSubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([i] {
      if (i % 2 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WorkIsStolenAcrossWorkers) {
  // All tasks land on worker 0's deque via round-robin over 1 submit
  // each... instead, verify that many short tasks complete even when one
  // worker is pinned by a long task (requires stealing or distribution).
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  pool.submit([&release] {
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  for (int i = 0; i < 64; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  // The 64 short tasks must finish while the long task still blocks.
  while (done.load(std::memory_order_relaxed) < 64) std::this_thread::yield();
  release.store(true, std::memory_order_release);
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 4u, 9u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), jobs, [&hits](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelFor, SerialFallbackRunsInOrder) {
  std::vector<size_t> order;
  parallel_for(10, 1, [&order](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, ResultsMatchSerialBaseline) {
  // The contract run_corpus relies on: per-index outputs are identical
  // regardless of the number of jobs.
  const auto compute = [](size_t i) {
    uint64_t x = i * 0x9e3779b97f4a7c15ull + 1;
    for (int r = 0; r < 1000; ++r) x ^= x << 13, x ^= x >> 7, x ^= x << 17;
    return x;
  };
  std::vector<uint64_t> serial(100), parallel(100);
  parallel_for(serial.size(), 1, [&](size_t i) { serial[i] = compute(i); });
  parallel_for(parallel.size(), 4, [&](size_t i) { parallel[i] = compute(i); });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, ZeroAndOneElement) {
  int calls = 0;
  parallel_for(0, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
