// GC and tiering behaviour of the JS engine: the mechanisms behind the
// paper's memory findings (JS stays flat because the collector reclaims)
// and JIT findings (hot code tiers up; cold code does not).
#include <gtest/gtest.h>

#include "js/engine.h"
#include "js/interp.h"

namespace wb::js {
namespace {

struct Session {
  explicit Session(const std::string& source, size_t gc_threshold = 64 << 10)
      : heap(gc_threshold) {
    std::string error;
    auto compiled = compile_script(source, error);
    EXPECT_TRUE(compiled.has_value()) << error;
    code = std::move(*compiled);
    vm = std::make_unique<Vm>(code, heap);
    vm->set_fuel(100'000'000);
  }

  Heap heap;
  ScriptCode code;
  std::unique_ptr<Vm> vm;
};

TEST(JsGc, GarbageIsCollected) {
  // Allocates ~2000 short-lived arrays; with a 64 KiB threshold the
  // collector must run and live bytes must stay far below total allocation.
  Session s(R"(
    function main() {
      var keep = 0;
      for (var i = 0; i < 2000; i++) {
        var tmp = [i, i + 1, i + 2, i * 2, i * 3, i * 4, i * 5, i * 6];
        keep += tmp[0];
      }
      return keep;
    }
  )");
  ASSERT_TRUE(s.vm->run_top_level().ok);
  auto result = s.vm->call_function("main", {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(s.heap.stats().collections, 0u);
  EXPECT_GT(s.heap.stats().objects_freed, 1000u);
  s.heap.collect();
  EXPECT_LT(s.heap.stats().live_bytes, 64u << 10);
}

TEST(JsGc, ReachableObjectsSurvive) {
  Session s(R"(
    var retained = [];
    function main() {
      for (var i = 0; i < 500; i++) retained.push([i, i, i, i]);
      return retained.length;
    }
  )");
  ASSERT_TRUE(s.vm->run_top_level().ok);
  auto result = s.vm->call_function("main", {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_DOUBLE_EQ(result.value.num(), 500);
  s.heap.collect();
  // All 500 arrays (plus the outer one) must still be reachable.
  auto check = s.vm->call_function("main", {});
  ASSERT_TRUE(check.ok);
  EXPECT_DOUBLE_EQ(check.value.num(), 1000);
}

TEST(JsGc, TypedArrayBackingIsExternal) {
  Session s(R"(
    var big = new Float64Array(100000);
    function main() { big[99999] = 1; return big.length; }
  )");
  ASSERT_TRUE(s.vm->run_top_level().ok);
  ASSERT_TRUE(s.vm->call_function("main", {}).ok);
  s.heap.collect();
  // 800 KB live in the backing store, but the GC-heap (DevTools-style)
  // metric stays small — this is the paper's flat-JS-memory mechanism.
  EXPECT_GE(s.heap.stats().external_bytes, 800'000u);
  EXPECT_LT(s.heap.stats().live_bytes, 8u << 10);
}

TEST(JsGc, BoxedMatricesCountTowardHeap) {
  Session s(R"(
    var m = [];
    for (var i = 0; i < 100; i++) {
      m.push([]);
      for (var j = 0; j < 100; j++) m[i].push(i + j);
    }
    function main() { return m[99][99]; }
  )");
  ASSERT_TRUE(s.vm->run_top_level().ok);
  s.heap.collect();
  // 10k boxed values ≈ at least 160 KB on the GC heap: the hand-written
  // (math.js-style) representation is visibly heavier than typed arrays.
  EXPECT_GT(s.heap.stats().live_bytes, 100u << 10);
}

TEST(JsGc, StringConstantsArePinned) {
  Session s(R"(
    function main() {
      var s = "";
      for (var i = 0; i < 200; i++) s = "x" + "y";
      return s.length;
    }
  )");
  ASSERT_TRUE(s.vm->run_top_level().ok);
  auto result = s.vm->call_function("main", {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_DOUBLE_EQ(result.value.num(), 2);
}

// ------------------------------------------------------------- tiering

JsCostTable flat_table(uint64_t v) {
  JsCostTable t;
  t.fill(v);
  return t;
}

TEST(JsTiering, HotFunctionTiersUp) {
  Session s(R"(
    function work(n) {
      var acc = 0;
      for (var i = 0; i < n; i++) acc += i;
      return acc;
    }
    function main() { return work(100000); }
  )");
  s.vm->set_cost_tables(flat_table(2500), flat_table(100));
  JsTierPolicy policy;
  policy.tierup_threshold = 100;
  policy.tierup_cost_per_instr = 0;
  s.vm->set_tier_policy(policy);
  ASSERT_TRUE(s.vm->run_top_level().ok);
  auto result = s.vm->call_function("main", {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GE(s.vm->stats().tierups, 1u);
  // Nearly all ops ran at the optimized tier.
  const auto& st = s.vm->stats();
  EXPECT_LT(st.cost_ps, st.ops_executed * 200);
}

TEST(JsTiering, JitDisabledStaysBaseline) {
  Session s(R"(
    function work(n) {
      var acc = 0;
      for (var i = 0; i < n; i++) acc += i;
      return acc;
    }
    function main() { return work(50000); }
  )");
  s.vm->set_cost_tables(flat_table(2500), flat_table(100));
  JsTierPolicy policy;
  policy.jit_enabled = false;
  policy.tierup_threshold = 100;
  s.vm->set_tier_policy(policy);
  ASSERT_TRUE(s.vm->run_top_level().ok);
  ASSERT_TRUE(s.vm->call_function("main", {}).ok);
  EXPECT_EQ(s.vm->stats().tierups, 0u);
  const auto& st = s.vm->stats();
  EXPECT_GT(st.cost_ps, st.ops_executed * 2000);
}

TEST(JsTiering, ColdCodeDoesNotTierUp) {
  Session s(R"(
    function tiny() { return 1; }
    function main() { return tiny(); }
  )");
  JsTierPolicy policy;
  policy.tierup_threshold = 10000;
  s.vm->set_tier_policy(policy);
  ASSERT_TRUE(s.vm->run_top_level().ok);
  ASSERT_TRUE(s.vm->call_function("main", {}).ok);
  EXPECT_EQ(s.vm->stats().tierups, 0u);
}

TEST(JsTiering, ArithCountersTrack) {
  Session s(R"(
    function main() {
      var x = 0;
      for (var i = 0; i < 10; i++) {
        x = (x + i) * 2;
        x = x % 1000;
        x = x << 1;
        x = x & 255;
        x = x | 1;
      }
      return x;
    }
  )");
  ASSERT_TRUE(s.vm->run_top_level().ok);
  ASSERT_TRUE(s.vm->call_function("main", {}).ok);
  const auto& counts = s.vm->stats().arith_counts;
  EXPECT_GE(counts[static_cast<size_t>(JsArithCat::Mul)], 10u);
  EXPECT_GE(counts[static_cast<size_t>(JsArithCat::Rem)], 10u);
  EXPECT_GE(counts[static_cast<size_t>(JsArithCat::Shift)], 10u);
  EXPECT_GE(counts[static_cast<size_t>(JsArithCat::And)], 10u);
  EXPECT_GE(counts[static_cast<size_t>(JsArithCat::Or)], 10u);
}

TEST(JsTiering, FuelLimitStopsRunaway) {
  Session s("function main() { while (true) {} }");
  s.vm->set_fuel(10000);
  ASSERT_TRUE(s.vm->run_top_level().ok);
  auto result = s.vm->call_function("main", {});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("fuel"), std::string::npos);
}

}  // namespace
}  // namespace wb::js
