// Differential tests: every program must compute the same checksum on all
// three targets (native IR evaluation, the Wasm VM, the JS engine) at
// every optimization level and with both toolchain personalities. This is
// the load-bearing correctness net for the whole compiler + both VMs.
#include <gtest/gtest.h>

#include "backend/js_backend.h"
#include "backend/native_backend.h"
#include "backend/wasm_backend.h"
#include "ir/exec.h"
#include "ir/passes.h"
#include "js/engine.h"
#include "js/interp.h"
#include "minic/minic.h"
#include "wasm/interp.h"

namespace wb {
namespace {

const std::vector<std::pair<const char*, const char*>>& corpus() {
  static const std::vector<std::pair<const char*, const char*>> programs = {
      {"gemm_like", R"(
        #define N 10
        double A[N][N]; double B[N][N]; double C[N][N];
        int main(void) {
          int i, j, k;
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++) {
              A[i][j] = (double)((i * j + 3) % 11) / 4.0;
              B[i][j] = (double)(i - j) / 3.0;
              C[i][j] = 0.0;
            }
          for (i = 0; i < N; i++)
            for (j = 0; j < N; j++)
              for (k = 0; k < N; k++)
                C[i][j] += 1.5 * A[i][k] * B[k][j];
          double s = 0.0;
          for (i = 0; i < N; i++) for (j = 0; j < N; j++) s += C[i][j];
          return (int)(s * 100.0);
        }
      )"},
      {"int_kernel", R"(
        int mem[80];
        int classify(int x) {
          switch (x & 3) {
            case 0: return 1;
            case 1: return 2;
            case 2: return 5;
            default: return 7;
          }
        }
        int main(void) {
          int i;
          for (i = 0; i < 80; i++) {
            if (i % 7 == 3) continue;
            if (i == 77) break;
            mem[i] = classify(i) * i - (i << 2) + (i % 5);
          }
          int s = 0;
          for (i = 0; i < 80; i++) s ^= mem[i] * (i + 1);
          return s;
        }
      )"},
      {"unsigned_hash", R"(
        unsigned char data[64];
        unsigned mix(unsigned h, unsigned c) {
          h = h ^ c;
          h = h * 16777619;
          return h;
        }
        int main(void) {
          int i;
          for (i = 0; i < 64; i++) data[i] = (i * 131 + 7);
          unsigned h = 2166136261;
          for (i = 0; i < 64; i++) h = mix(h, data[i]);
          h = h ^ (h >> 16);
          return (int)(h & 0x7fffffff);
        }
      )"},
      {"float_intrinsics", R"(
        double xs[50];
        double score(double v, double base) {
          return sqrt(fabs(v)) + pow(base, 2.0) + sin(v) * cos(v);
        }
        int main(void) {
          int i;
          for (i = 0; i < 50; i++) xs[i] = score((double)(i - 25) / 3.0, 1.5);
          double s = 0.0;
          for (i = 0; i < 50; i++) s += xs[i] / 8.0;
          return (int)(s * 1000.0);
        }
      )"},
      {"dynamic_arrays", R"(
        #define N 900
        double big[N];
        double out[N];
        int main(void) {
          int i;
          for (i = 0; i < N; i++) big[i] = (double)(i % 13) * 0.5;
          for (i = 1; i < N - 1; i++) out[i] = (big[i - 1] + big[i] + big[i + 1]) / 3.0;
          double s = 0.0;
          for (i = 0; i < N; i++) s += out[i];
          return (int)s;
        }
      )"},
      {"dead_global_pattern", R"(
        int result[50];
        int live[50];
        int main(void) {
          int i;
          for (i = 0; i < 50; i++) {
            live[i] = i * 3 + 1;
            result[i] = live[i] * 2;
          }
          int s = 0;
          for (i = 0; i < 50; i++) s += live[i];
          return s;
        }
      )"},
      {"recursion_and_calls", R"(
        int depth_sum(int n) {
          if (n <= 0) return 0;
          return n + depth_sum(n - 1);
        }
        double scale(double x, double f) { return x / f; }
        int main(void) {
          double acc = scale(100.0, 4.0) + scale(50.0, 4.0);
          return depth_sum(40) + (int)acc;
        }
      )"},
      {"stencil_unrollable", R"(
        #define N 120
        double a[N]; double b[N];
        int main(void) {
          int i; int t;
          for (i = 0; i < N; i = i + 1) a[i] = (double)i / 7.0;
          for (t = 0; t < 5; t = t + 1) {
            for (i = 1; i < N - 1; i = i + 1)
              b[i] = 0.33333 * (a[i - 1] + a[i] + a[i + 1]);
            for (i = 1; i < N - 1; i = i + 1)
              a[i] = 0.33333 * (b[i - 1] + b[i] + b[i + 1]);
          }
          double s = 0.0;
          for (i = 0; i < N; i = i + 1) s += a[i];
          return (int)(s * 10.0);
        }
      )"},
  };
  return programs;
}

ir::Module compile_at(const char* src, ir::OptLevel level, bool& fast_math) {
  std::string error;
  auto m = minic::compile(src, {}, error);
  EXPECT_TRUE(m.has_value()) << error;
  const ir::PipelineInfo info = ir::run_pipeline(*m, level);
  fast_math = info.fast_math;
  return std::move(*m);
}

int32_t run_native(ir::Module m, bool& ok, std::string& error) {
  backend::NativeArtifact native = backend::compile_to_native(std::move(m));
  ir::Executor exec(native.module);
  const ir::ExecResult r = exec.run("main");
  ok = r.ok;
  error = r.error;
  return r.as_i32();
}

int32_t run_wasm(ir::Module m, bool fast_math, backend::Toolchain tc, bool& ok,
                 std::string& error) {
  backend::WasmOptions opts;
  opts.toolchain = tc;
  opts.fast_math = fast_math;
  const backend::WasmArtifact artifact = backend::compile_to_wasm(std::move(m), opts);
  if (!artifact.ok()) {
    ok = false;
    error = artifact.error;
    return 0;
  }
  wasm::Instance inst(artifact.module, backend::make_import_bindings(artifact));
  inst.set_fuel(500'000'000);
  const wasm::InvokeResult init = inst.invoke("__init", {});
  if (!init.ok()) {
    ok = false;
    error = std::string("__init trapped: ") + wasm::to_string(init.trap);
    return 0;
  }
  const wasm::InvokeResult r = inst.invoke("main", {});
  ok = r.ok();
  if (!r.ok()) error = std::string("main trapped: ") + wasm::to_string(r.trap);
  return r.value.as_i32();
}

int32_t run_js(ir::Module m, bool fast_math, bool& ok, std::string& error) {
  backend::JsOptions opts;
  opts.fast_math = fast_math;
  const backend::JsArtifact artifact = backend::compile_to_js(std::move(m), opts);
  if (!artifact.ok()) {
    ok = false;
    error = artifact.error;
    return 0;
  }
  auto code = js::compile_script(artifact.source, error);
  if (!code) {
    ok = false;
    error = "js compile: " + error + "\n--- source ---\n" + artifact.source;
    return 0;
  }
  js::Heap heap;
  js::Vm vm(*code, heap);
  vm.set_fuel(500'000'000);
  const js::Vm::Result top = vm.run_top_level();
  if (!top.ok) {
    ok = false;
    error = "js top-level: " + top.error;
    return 0;
  }
  const js::Vm::Result r = vm.call_function("main", {});
  ok = r.ok;
  if (!r.ok) {
    error = "js main: " + r.error;
    return 0;
  }
  if (!r.value.is_number()) {
    ok = false;
    error = "js main returned non-number";
    return 0;
  }
  return js::to_int32(r.value.num());
}

struct DiffParam {
  size_t program;
  ir::OptLevel level;
};

class BackendDifferential : public testing::TestWithParam<DiffParam> {};

TEST_P(BackendDifferential, AllTargetsAgree) {
  const auto& [name, src] = corpus()[GetParam().program];
  const ir::OptLevel level = GetParam().level;

  // Reference: unoptimized native.
  bool fm0 = false;
  bool ok = false;
  std::string error;
  const int32_t expect = run_native(compile_at(src, ir::OptLevel::O0, fm0), ok, error);
  ASSERT_TRUE(ok) << name << " O0 native: " << error;

  bool fast_math = false;
  {
    ir::Module m = compile_at(src, level, fast_math);
    const int32_t got = run_native(std::move(m), ok, error);
    ASSERT_TRUE(ok) << name << " native: " << error;
    EXPECT_EQ(got, expect) << name << " native at " << to_string(level);
  }
  for (backend::Toolchain tc : {backend::Toolchain::Cheerp, backend::Toolchain::Emscripten}) {
    ir::Module m = compile_at(src, level, fast_math);
    const int32_t got = run_wasm(std::move(m), fast_math, tc, ok, error);
    ASSERT_TRUE(ok) << name << " wasm/" << to_string(tc) << ": " << error;
    EXPECT_EQ(got, expect)
        << name << " wasm/" << to_string(tc) << " at " << to_string(level);
  }
  {
    ir::Module m = compile_at(src, level, fast_math);
    const int32_t got = run_js(std::move(m), fast_math, ok, error);
    ASSERT_TRUE(ok) << name << " js: " << error;
    EXPECT_EQ(got, expect) << name << " js at " << to_string(level);
  }
}

std::vector<DiffParam> all_params() {
  std::vector<DiffParam> params;
  for (size_t p = 0; p < corpus().size(); ++p) {
    for (ir::OptLevel level :
         {ir::OptLevel::O0, ir::OptLevel::O1, ir::OptLevel::O2, ir::OptLevel::O3,
          ir::OptLevel::Ofast, ir::OptLevel::Os, ir::OptLevel::Oz}) {
      params.push_back({p, level});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Corpus, BackendDifferential, testing::ValuesIn(all_params()),
                         [](const testing::TestParamInfo<DiffParam>& info) {
                           return std::string(corpus()[info.param.program].first) + "_" +
                                  to_string(info.param.level);
                         });

// ------------------------------------------------ backend-specific shape

TEST(WasmBackend, CheerpUsesSmallPagesEmscriptenLarge) {
  const char* src = R"(
    #define N 40000
    double big[N];
    int main(void) {
      big[N - 1] = 2.5;
      return (int)big[N - 1];
    }
  )";
  std::string error;
  auto m1 = minic::compile(src, {}, error);
  auto m2 = minic::compile(src, {}, error);
  ASSERT_TRUE(m1 && m2) << error;

  backend::WasmOptions cheerp;
  cheerp.toolchain = backend::Toolchain::Cheerp;
  const auto a1 = backend::compile_to_wasm(std::move(*m1), cheerp);
  ASSERT_TRUE(a1.ok()) << a1.error;
  backend::WasmOptions emcc;
  emcc.toolchain = backend::Toolchain::Emscripten;
  const auto a2 = backend::compile_to_wasm(std::move(*m2), emcc);
  ASSERT_TRUE(a2.ok()) << a2.error;

  // Emscripten starts with its 16 MiB floor; Cheerp starts tight.
  EXPECT_GE(a2.initial_pages, 256u);
  EXPECT_LT(a1.initial_pages, 8u);

  wasm::Instance i1(a1.module, backend::make_import_bindings(a1));
  wasm::Instance i2(a2.module, backend::make_import_bindings(a2));
  ASSERT_TRUE(i1.invoke("__init", {}).ok());
  ASSERT_TRUE(i2.invoke("__init", {}).ok());
  ASSERT_TRUE(i1.invoke("main", {}).ok());
  ASSERT_TRUE(i2.invoke("main", {}).ok());
  // Cheerp grows many times (64 KiB quanta for a 320 KB array);
  // Emscripten grows rarely if at all.
  EXPECT_GE(i1.stats().memory_grows, 3u);
  EXPECT_LE(i2.stats().memory_grows, 1u);
  // ... and uses less memory overall.
  EXPECT_LT(i1.memory()->peak_bytes(), i2.memory()->peak_bytes());
}

TEST(WasmBackend, FastMathKeepsDeadGlobalStores) {
  const char* src = R"(
    double result[64];
    double live[64];
    int main(void) {
      int i;
      for (i = 0; i < 64; i++) {
        live[i] = (double)i / 2.0;
        result[i] = live[i] * 3.0;
      }
      double s = 0.0;
      for (i = 0; i < 64; i++) s += live[i];
      return (int)s;
    }
  )";
  std::string error;
  auto m1 = minic::compile(src, {}, error);
  auto m2 = minic::compile(src, {}, error);
  ASSERT_TRUE(m1 && m2) << error;

  backend::WasmOptions normal;
  const auto without_bug = backend::compile_to_wasm(std::move(*m1), normal);
  backend::WasmOptions ofast;
  ofast.fast_math = true;
  const auto with_bug = backend::compile_to_wasm(std::move(*m2), ofast);
  ASSERT_TRUE(without_bug.ok() && with_bug.ok());

  // The buggy (fast-math) binary keeps the dead stores: larger and slower.
  EXPECT_GT(with_bug.binary.size(), without_bug.binary.size());

  wasm::Instance good(without_bug.module, {});
  wasm::Instance bad(with_bug.module, {});
  ASSERT_TRUE(good.invoke("__init", {}).ok());
  ASSERT_TRUE(bad.invoke("__init", {}).ok());
  const auto r1 = good.invoke("main", {});
  const auto r2 = bad.invoke("main", {});
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value.as_i32(), r2.value.as_i32());
  EXPECT_GT(bad.stats().ops_executed, good.stats().ops_executed);
}

TEST(WasmBackend, IntegralF64ConstantsUseConvertTrick) {
  const char* src = R"(
    double x;
    int main(void) { x = 3.0; return (int)x; }
  )";
  std::string error;
  auto m = minic::compile(src, {}, error);
  ASSERT_TRUE(m.has_value()) << error;
  const auto artifact = backend::compile_to_wasm(std::move(*m), {});
  ASSERT_TRUE(artifact.ok()) << artifact.error;
  bool saw_convert = false;
  for (const auto& fn : artifact.module.functions) {
    for (const auto& ins : fn.body) {
      if (ins.op == wasm::Opcode::F64ConvertI32S) saw_convert = true;
      // No raw f64.const 3.0 should appear.
      if (ins.op == wasm::Opcode::F64Const) {
        EXPECT_NE(ins.fval, 3.0);
      }
    }
  }
  EXPECT_TRUE(saw_convert);
}

TEST(JsBackend, EmitsAsmJsIdioms) {
  const char* src = R"(
    int nums[16];
    double vals[16];
    unsigned u;
    int main(void) {
      int i;
      for (i = 0; i < 16; i++) {
        nums[i] = i * 3;
        vals[i] = (double)i / 2.0;
      }
      u = 0x80000000;
      u = u >> 4;
      int s = 0;
      for (i = 0; i < 16; i++) s += nums[i] + (int)vals[i];
      return s;
    }
  )";
  std::string error;
  auto m = minic::compile(src, {}, error);
  ASSERT_TRUE(m.has_value()) << error;
  const auto artifact = backend::compile_to_js(std::move(*m), {});
  ASSERT_TRUE(artifact.ok()) << artifact.error;
  const std::string& js = artifact.source;
  EXPECT_NE(js.find("new Int32Array(16)"), std::string::npos);
  EXPECT_NE(js.find("new Float64Array(16)"), std::string::npos);
  EXPECT_NE(js.find("| 0"), std::string::npos);      // int coercion
  EXPECT_NE(js.find(">>>"), std::string::npos);      // unsigned shift
  EXPECT_NE(js.find("Math.imul"), std::string::npos);
  EXPECT_NE(js.find(">> 2"), std::string::npos);     // scaled i32 index
  EXPECT_NE(js.find(">> 3"), std::string::npos);     // scaled f64 index
}

TEST(NativeBackend, CodeSizeTracksInstructionCount) {
  const char* small_src = "int main(void) { return 1; }";
  const char* large_src = R"(
    double a[64];
    int main(void) {
      int i;
      for (i = 0; i < 64; i++) a[i] = (double)i * 2.0 + 1.0;
      double s = 0.0;
      for (i = 0; i < 64; i++) s += a[i];
      return (int)s;
    }
  )";
  std::string error;
  auto small = minic::compile(small_src, {}, error);
  auto large = minic::compile(large_src, {}, error);
  ASSERT_TRUE(small && large) << error;
  EXPECT_GT(backend::compile_to_native(std::move(*large)).code_size,
            backend::compile_to_native(std::move(*small)).code_size + 100);
}

}  // namespace
}  // namespace wb
