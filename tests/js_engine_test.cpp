#include <gtest/gtest.h>

#include <cmath>

#include "js/engine.h"
#include "js/interp.h"

namespace wb::js {
namespace {

/// Compiles and runs `source`, then calls main() if it exists, returning
/// its numeric result.
struct RunOutcome {
  bool ok = true;
  std::string error;
  double number = std::nan("");
  JsValue value;
};

RunOutcome run_js(const std::string& source, Heap* heap_out = nullptr,
                  Vm** vm_out = nullptr) {
  static thread_local std::unique_ptr<Heap> heap;
  static thread_local std::unique_ptr<Vm> vm;
  static thread_local std::optional<ScriptCode> code;

  RunOutcome out;
  std::string error;
  code = compile_script(source, error);
  if (!code) {
    out.ok = false;
    out.error = error;
    return out;
  }
  vm.reset();  // ~Vm touches the heap; destroy it before replacing the heap
  heap = std::make_unique<Heap>(256 << 10);
  vm = std::make_unique<Vm>(*code, *heap);
  vm->set_fuel(50'000'000);
  auto top = vm->run_top_level();
  if (!top.ok) {
    out.ok = false;
    out.error = top.error;
    return out;
  }
  out.value = top.value;
  auto main_result = vm->call_function("main", {});
  if (main_result.ok) {
    out.value = main_result.value;
    if (main_result.value.is_number()) out.number = main_result.value.num();
  } else if (!vm->get_global("main").is_undefined()) {
    out.ok = false;
    out.error = main_result.error;
  }
  if (heap_out) *heap_out = Heap(0);  // unused; see dedicated GC tests
  if (vm_out) *vm_out = vm.get();
  return out;
}

double eval_num(const std::string& body) {
  const RunOutcome out = run_js("function main() { " + body + " }");
  EXPECT_TRUE(out.ok) << out.error << " in: " << body;
  return out.number;
}

// -------------------------------------------------------------- basics

TEST(JsEngine, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(eval_num("return 2 + 3 * 4;"), 14);
  EXPECT_DOUBLE_EQ(eval_num("return (2 + 3) * 4;"), 20);
  EXPECT_DOUBLE_EQ(eval_num("return 7 % 3;"), 1);
  EXPECT_DOUBLE_EQ(eval_num("return 1 / 4;"), 0.25);
  EXPECT_DOUBLE_EQ(eval_num("return -3 + +\"4\";"), 1);
  EXPECT_DOUBLE_EQ(eval_num("return 2 - 3 - 4;"), -5);  // left assoc
}

TEST(JsEngine, NumberSemanticsAreDouble) {
  EXPECT_DOUBLE_EQ(eval_num("return 0.1 + 0.2;"), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(eval_num("return 1e15 + 1;"), 1e15 + 1);
  EXPECT_TRUE(std::isnan(eval_num("return 0 / 0;")));
}

TEST(JsEngine, BitwiseOpsUseToInt32) {
  EXPECT_DOUBLE_EQ(eval_num("return (4294967296 + 5) | 0;"), 5);   // 2^32 wraps
  EXPECT_DOUBLE_EQ(eval_num("return -1 >>> 0;"), 4294967295.0);
  EXPECT_DOUBLE_EQ(eval_num("return -8 >> 1;"), -4);
  EXPECT_DOUBLE_EQ(eval_num("return 1 << 33;"), 2);  // shift count masked
  EXPECT_DOUBLE_EQ(eval_num("return 3.7 | 0;"), 3);
  EXPECT_DOUBLE_EQ(eval_num("return -3.7 | 0;"), -3);  // trunc toward zero
  EXPECT_DOUBLE_EQ(eval_num("return ~5;"), -6);
  EXPECT_DOUBLE_EQ(eval_num("return (0xff & 0x0f) ^ 0xf0;"), 0xff);
}

TEST(JsEngine, ComparisonsAndEquality) {
  EXPECT_DOUBLE_EQ(eval_num("return 1 < 2 ? 10 : 20;"), 10);
  EXPECT_DOUBLE_EQ(eval_num("return 'abc' === 'abc' ? 1 : 0;"), 1);
  EXPECT_DOUBLE_EQ(eval_num("return 'abc' < 'abd' ? 1 : 0;"), 1);
  EXPECT_DOUBLE_EQ(eval_num("return null == undefined ? 1 : 0;"), 1);
  EXPECT_DOUBLE_EQ(eval_num("return null === undefined ? 1 : 0;"), 0);
  EXPECT_DOUBLE_EQ(eval_num("return '5' == 5 ? 1 : 0;"), 1);
  EXPECT_DOUBLE_EQ(eval_num("return NaN == NaN ? 1 : 0;"), 0);
}

TEST(JsEngine, LogicalShortCircuit) {
  EXPECT_DOUBLE_EQ(eval_num("var x = 0; (x = 1) || (x = 2); return x;"), 1);
  EXPECT_DOUBLE_EQ(eval_num("var x = 0; (x = 0) || (x = 2); return x;"), 2);
  EXPECT_DOUBLE_EQ(eval_num("return 0 && undefinedGlobal;"), 0);
  EXPECT_DOUBLE_EQ(eval_num("return 5 && 7;"), 7);
  EXPECT_DOUBLE_EQ(eval_num("return 0 || 7;"), 7);
}

TEST(JsEngine, StringConcatAndLength) {
  EXPECT_DOUBLE_EQ(eval_num("var s = 'ab' + 'cd'; return s.length;"), 4);
  EXPECT_DOUBLE_EQ(eval_num("return ('x' + 1 + 2).length;"), 3);  // "x12"
  EXPECT_DOUBLE_EQ(eval_num("return 'hello'.charCodeAt(1);"), 101);
  EXPECT_DOUBLE_EQ(eval_num("return 'hello'.indexOf('llo');"), 2);
  EXPECT_DOUBLE_EQ(eval_num("return 'hello'.substring(1, 3).length;"), 2);
}

// ----------------------------------------------------------- statements

TEST(JsEngine, WhileLoop) {
  EXPECT_DOUBLE_EQ(eval_num("var i = 0, s = 0; while (i < 10) { s += i; i++; } return s;"), 45);
}

TEST(JsEngine, ForLoopWithBreakContinue) {
  EXPECT_DOUBLE_EQ(
      eval_num("var s = 0; for (var i = 0; i < 100; i++) { if (i % 2 === 0) continue; "
               "if (i > 10) break; s += i; } return s;"),
      1 + 3 + 5 + 7 + 9);
}

TEST(JsEngine, DoWhileRunsAtLeastOnce) {
  EXPECT_DOUBLE_EQ(eval_num("var n = 0; do { n++; } while (false); return n;"), 1);
}

TEST(JsEngine, NestedLoops) {
  EXPECT_DOUBLE_EQ(
      eval_num("var s = 0; for (var i = 0; i < 5; i++) for (var j = 0; j < 5; j++) "
               "s += i * j; return s;"),
      100);
}

TEST(JsEngine, UpdateExpressions) {
  EXPECT_DOUBLE_EQ(eval_num("var i = 5; var a = i++; return a * 100 + i;"), 506);
  EXPECT_DOUBLE_EQ(eval_num("var i = 5; var a = ++i; return a * 100 + i;"), 606);
  EXPECT_DOUBLE_EQ(eval_num("var i = 5; i--; --i; return i;"), 3);
}

TEST(JsEngine, CompoundAssignments) {
  EXPECT_DOUBLE_EQ(eval_num("var x = 10; x += 5; x -= 3; x *= 2; x /= 4; return x;"), 6);
  EXPECT_DOUBLE_EQ(eval_num("var x = 0xff; x &= 0x0f; x |= 0x30; x ^= 0x01; return x;"), 0x3e);
  EXPECT_DOUBLE_EQ(eval_num("var x = 1; x <<= 4; x >>= 1; return x;"), 8);
  EXPECT_DOUBLE_EQ(eval_num("var a = [1, 2, 3]; a[1] += 10; return a[1];"), 12);
}

// ------------------------------------------------------------ functions

TEST(JsEngine, FunctionCallsAndRecursion) {
  const std::string src = R"(
    function fib(n) {
      if (n < 3) return 1;
      return fib(n - 1) + fib(n - 2);
    }
    function main() { return fib(15); }
  )";
  EXPECT_DOUBLE_EQ(run_js(src).number, 610);
}

TEST(JsEngine, MutualRecursion) {
  const std::string src = R"(
    function isEven(n) { if (n === 0) return 1; return isOdd(n - 1); }
    function isOdd(n) { if (n === 0) return 0; return isEven(n - 1); }
    function main() { return isEven(10) * 10 + isOdd(7); }
  )";
  EXPECT_DOUBLE_EQ(run_js(src).number, 11);
}

TEST(JsEngine, MissingArgumentsAreUndefined) {
  EXPECT_DOUBLE_EQ(
      run_js("function f(a, b) { if (b === undefined) return 1; return 0; } "
             "function main() { return f(5); }")
          .number,
      1);
}

TEST(JsEngine, TopLevelStatementsRunBeforeMain) {
  const std::string src = R"(
    var table = [];
    for (var i = 0; i < 8; i++) table.push(i * i);
    function main() { return table[3]; }
  )";
  EXPECT_DOUBLE_EQ(run_js(src).number, 9);
}

TEST(JsEngine, StackOverflowIsAnError) {
  const RunOutcome out = run_js("function f() { return f(); } function main() { return f(); }");
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("call stack"), std::string::npos);
}

// ----------------------------------------------------- arrays & objects

TEST(JsEngine, ArrayLiteralAndIndexing) {
  EXPECT_DOUBLE_EQ(eval_num("var a = [10, 20, 30]; return a[0] + a[2];"), 40);
  EXPECT_DOUBLE_EQ(eval_num("var a = [1]; a[5] = 7; return a.length;"), 6);
  EXPECT_DOUBLE_EQ(eval_num("var a = []; a.push(4); a.push(5); return a.pop() + a.length;"), 6);
  EXPECT_DOUBLE_EQ(eval_num("var a = [3, 1, 4]; return a.indexOf(4);"), 2);
}

TEST(JsEngine, ArrayOfArrays) {
  EXPECT_DOUBLE_EQ(
      eval_num("var m = []; for (var i = 0; i < 3; i++) { m.push([]); "
               "for (var j = 0; j < 3; j++) m[i].push(i * 3 + j); } return m[2][1];"),
      7);
}

TEST(JsEngine, ObjectLiteralsAndProps) {
  EXPECT_DOUBLE_EQ(eval_num("var o = {x: 3, y: 4}; return o.x * o.y;"), 12);
  EXPECT_DOUBLE_EQ(eval_num("var o = {}; o.count = 5; o.count += 2; return o.count;"), 7);
  EXPECT_DOUBLE_EQ(eval_num("var o = {a: 1}; return o.missing === undefined ? 1 : 0;"), 1);
}

TEST(JsEngine, TypedArrays) {
  EXPECT_DOUBLE_EQ(
      eval_num("var a = new Float64Array(8); a[3] = 2.5; return a[3] + a[0] + a.length;"), 10.5);
  EXPECT_DOUBLE_EQ(eval_num("var a = new Int32Array(4); a[0] = 3.9; return a[0];"), 3);
  EXPECT_DOUBLE_EQ(eval_num("var a = new Uint8Array(4); a[0] = 260; return a[0];"), 4);
  EXPECT_DOUBLE_EQ(eval_num("var a = new Int32Array(4); a[9] = 7; return a[9] === undefined ? 1 : 0;"), 1);
}

TEST(JsEngine, NewArrayN) {
  EXPECT_DOUBLE_EQ(eval_num("var a = new Array(10); return a.length;"), 10);
}

// -------------------------------------------------------------- builtins

TEST(JsEngine, MathBuiltins) {
  EXPECT_DOUBLE_EQ(eval_num("return Math.floor(3.7);"), 3);
  EXPECT_DOUBLE_EQ(eval_num("return Math.ceil(3.1);"), 4);
  EXPECT_DOUBLE_EQ(eval_num("return Math.sqrt(81);"), 9);
  EXPECT_DOUBLE_EQ(eval_num("return Math.abs(-4);"), 4);
  EXPECT_DOUBLE_EQ(eval_num("return Math.min(3, 1, 2);"), 1);
  EXPECT_DOUBLE_EQ(eval_num("return Math.max(3, 1, 2);"), 3);
  EXPECT_DOUBLE_EQ(eval_num("return Math.pow(2, 10);"), 1024);
}

TEST(JsEngine, PerformanceNowAdvancesWithWork) {
  const std::string src = R"(
    function main() {
      var t0 = performance.now();
      var s = 0;
      for (var i = 0; i < 100000; i++) s += i;
      var t1 = performance.now();
      return t1 > t0 ? 1 : 0;
    }
  )";
  EXPECT_DOUBLE_EQ(run_js(src).number, 1);
}

TEST(JsEngine, CryptoDigestIsSha256) {
  // sha256("") begins with 0xe3, 0xb0.
  const std::string src = R"(
    function main() {
      var empty = new Uint8Array(0);
      var d = crypto.digest(empty);
      return d[0] * 1000 + d[1];
    }
  )";
  EXPECT_DOUBLE_EQ(run_js(src).number, 0xe3 * 1000 + 0xb0);
}

TEST(JsEngine, StringFromCharCode) {
  EXPECT_DOUBLE_EQ(eval_num("var s = String.fromCharCode(104, 105); return s.charCodeAt(0);"),
                   104);
}

// ----------------------------------------------------------------- errors

TEST(JsEngine, SyntaxErrorsReported) {
  const RunOutcome out = run_js("function main( { return 1; }");
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.error.empty());
}

TEST(JsEngine, CallingNonFunctionFails) {
  const RunOutcome out = run_js("function main() { var x = 5; return x(); }");
  EXPECT_FALSE(out.ok);
}

TEST(JsEngine, UnknownMethodFails) {
  const RunOutcome out = run_js("function main() { var a = [1]; return a.frobnicate(); }");
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("frobnicate"), std::string::npos);
}

}  // namespace
}  // namespace wb::js
