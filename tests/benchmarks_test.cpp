// Whole-corpus integration tests: each of the 41 benchmarks must compile
// and produce the same checksum on every target at every size tested.
#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "core/study.h"
#include "ir/exec.h"
#include "js/engine.h"
#include "wasm/interp.h"

namespace wb::benchmarks {
namespace {

class BenchmarkCorpus : public testing::TestWithParam<const core::BenchSource*> {};

int32_t native_result(const core::BuildResult& b, bool& ok, std::string& error) {
  const core::NativeMetrics m = core::run_native(b);
  ok = m.ok;
  error = m.error;
  return m.result;
}

TEST_P(BenchmarkCorpus, AllTargetsAgreeAtM) {
  const core::BenchSource& bench = *GetParam();

  const core::BuildResult o0 = core::build(bench, core::InputSize::M, ir::OptLevel::O0);
  ASSERT_TRUE(o0.ok) << o0.error;
  bool ok = false;
  std::string error;
  const int32_t expect = native_result(o0, ok, error);
  ASSERT_TRUE(ok) << bench.name << ": " << error;

  const core::BuildResult o2 = core::build(bench, core::InputSize::M, ir::OptLevel::O2);
  ASSERT_TRUE(o2.ok) << o2.error;

  // Native O2.
  EXPECT_EQ(native_result(o2, ok, error), expect) << bench.name << " native O2";
  ASSERT_TRUE(ok) << error;

  // Wasm O2.
  {
    wasm::Instance inst(o2.wasm.module, backend::make_import_bindings(o2.wasm));
    inst.set_fuel(2'000'000'000);
    ASSERT_TRUE(inst.invoke("__init", {}).ok()) << bench.name;
    const wasm::InvokeResult r = inst.invoke("main", {});
    ASSERT_TRUE(r.ok()) << bench.name << " wasm trap: " << wasm::to_string(r.trap);
    EXPECT_EQ(r.value.as_i32(), expect) << bench.name << " wasm O2";
  }

  // JS O2.
  {
    std::string js_error;
    auto code = js::compile_script(o2.js_source, js_error);
    ASSERT_TRUE(code.has_value()) << bench.name << ": " << js_error;
    js::Heap heap;
    js::Vm vm(*code, heap);
    vm.set_fuel(2'000'000'000);
    ASSERT_TRUE(vm.run_top_level().ok) << bench.name;
    const js::Vm::Result r = vm.call_function("main", {});
    ASSERT_TRUE(r.ok) << bench.name << " js: " << r.error;
    EXPECT_EQ(js::to_int32(r.value.num()), expect) << bench.name << " js O2";
  }
}

TEST_P(BenchmarkCorpus, SizesAreMonotonicInWork) {
  const core::BenchSource& bench = *GetParam();
  uint64_t prev_ops = 0;
  for (core::InputSize size : {core::InputSize::XS, core::InputSize::M, core::InputSize::XL}) {
    const core::BuildResult b = core::build(bench, size, ir::OptLevel::O1);
    ASSERT_TRUE(b.ok) << b.error;
    ir::Executor exec(b.native.module);
    exec.set_fuel(2'000'000'000);
    const ir::ExecResult r = exec.run("main");
    ASSERT_TRUE(r.ok) << bench.name << " at " << to_string(size) << ": " << r.error;
    EXPECT_GT(exec.stats().ops, prev_ops)
        << bench.name << ": larger input must do more work (" << to_string(size) << ")";
    prev_ops = exec.stats().ops;
  }
}

INSTANTIATE_TEST_SUITE_P(All41, BenchmarkCorpus, testing::ValuesIn([] {
                           std::vector<const core::BenchSource*> ptrs;
                           for (const auto& b : all_benchmarks()) ptrs.push_back(&b);
                           return ptrs;
                         }()),
                         [](const testing::TestParamInfo<const core::BenchSource*>& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(BenchmarkRegistry, Has41InPaperOrder) {
  const auto& all = all_benchmarks();
  ASSERT_EQ(all.size(), 41u);
  EXPECT_EQ(all.front().name, "covariance");
  EXPECT_EQ(all[29].name, "seidel-2d");
  EXPECT_EQ(all[30].name, "ADPCM");
  EXPECT_EQ(all.back().name, "SHA");
  EXPECT_EQ(polybench().size(), 30u);
  EXPECT_EQ(chstone().size(), 11u);
  EXPECT_NE(find_benchmark("gemm"), nullptr);
  EXPECT_EQ(find_benchmark("nope"), nullptr);
}

}  // namespace
}  // namespace wb::benchmarks
