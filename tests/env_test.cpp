// Environment-model tests: deterministic measurements and the paper's
// headline environment shapes (kept loose enough to survive cost-model
// re-calibration; exact table values live in the bench binaries).
#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "core/study.h"

namespace wb::env {
namespace {

const core::BenchSource& bench(const char* name) {
  const core::BenchSource* b = benchmarks::find_benchmark(name);
  EXPECT_NE(b, nullptr) << name;
  return *b;
}

core::BuildResult build_m(const char* name, ir::OptLevel level = ir::OptLevel::O2) {
  core::BuildResult b = core::build(bench(name), core::InputSize::M, level);
  EXPECT_TRUE(b.ok) << b.error;
  return b;
}

TEST(Env, MeasurementsAreDeterministic) {
  const core::BuildResult b = build_m("gemm");
  BrowserEnv chrome(Browser::Chrome, Platform::Desktop);
  const PageMetrics w1 = chrome.run_wasm(b.wasm);
  const PageMetrics w2 = chrome.run_wasm(b.wasm);
  EXPECT_EQ(w1.time_ms, w2.time_ms);
  EXPECT_EQ(w1.memory_bytes, w2.memory_bytes);
  const PageMetrics j1 = chrome.run_js(b.js_source);
  const PageMetrics j2 = chrome.run_js(b.js_source);
  EXPECT_EQ(j1.time_ms, j2.time_ms);
  EXPECT_EQ(j1.result, w1.result);
}

TEST(Env, JitOffHurtsJsNotWasm) {
  const core::BuildResult b = build_m("jacobi-2d");
  BrowserEnv chrome(Browser::Chrome, Platform::Desktop);
  RunOptions jit_off;
  jit_off.js_jit_enabled = false;
  jit_off.wasm_tiers = RunOptions::WasmTiers::BaselineOnly;

  const double js_on = chrome.run_js(b.js_source).time_ms;
  const double js_off = chrome.run_js(b.js_source, jit_off).time_ms;
  const double wasm_on = chrome.run_wasm(b.wasm).time_ms;
  const double wasm_off = chrome.run_wasm(b.wasm, jit_off).time_ms;

  EXPECT_GT(js_off / js_on, 5.0) << "JS must speed up dramatically with JIT";
  EXPECT_LT(wasm_off / wasm_on, 1.6) << "Wasm barely changes without its top tier";
}

TEST(Env, InputSizeCrossoverOnChrome) {
  // Paper Table 3: Wasm dominates at XS; the gap shrinks monotonically.
  BrowserEnv chrome(Browser::Chrome, Platform::Desktop);
  const core::Measurement xs = core::measure(bench("gemm"), core::InputSize::XS,
                                             ir::OptLevel::O2, chrome);
  const core::Measurement xl = core::measure(bench("gemm"), core::InputSize::XL,
                                             ir::OptLevel::O2, chrome);
  ASSERT_TRUE(xs.wasm.ok && xs.js.ok && xl.wasm.ok && xl.js.ok);
  const double xs_ratio = xs.js.time_ms / xs.wasm.time_ms;
  const double xl_ratio = xl.js.time_ms / xl.wasm.time_ms;
  EXPECT_GT(xs_ratio, 3.0);
  EXPECT_LT(xl_ratio, xs_ratio / 2);
}

TEST(Env, FirefoxInvertsSmallInputs) {
  // Paper Table 5: on Firefox, JS wins at XS.
  BrowserEnv firefox(Browser::Firefox, Platform::Desktop);
  const core::Measurement xs = core::measure(bench("gemm"), core::InputSize::XS,
                                             ir::OptLevel::O2, firefox);
  ASSERT_TRUE(xs.wasm.ok && xs.js.ok);
  EXPECT_LT(xs.js.time_ms, xs.wasm.time_ms);
}

TEST(Env, WasmMemoryGrowsJsStaysFlat) {
  BrowserEnv chrome(Browser::Chrome, Platform::Desktop);
  const core::Measurement m = core::measure(bench("gemm"), core::InputSize::M,
                                            ir::OptLevel::O2, chrome);
  const core::Measurement xl = core::measure(bench("gemm"), core::InputSize::XL,
                                             ir::OptLevel::O2, chrome);
  ASSERT_TRUE(m.wasm.ok && xl.wasm.ok);
  // Wasm: linear memory balloons (paper: 100 MB at XL).
  EXPECT_GT(xl.wasm.memory_bytes, m.wasm.memory_bytes * 10);
  EXPECT_GT(xl.wasm.memory_bytes, 50u << 20);
  // JS: DevTools heap metric stays within a few percent.
  const double js_growth = static_cast<double>(xl.js.memory_bytes) /
                           static_cast<double>(m.js.memory_bytes);
  EXPECT_LT(js_growth, 1.1);
  // And Wasm holds a multiple of JS at every size (paper: 3-6x).
  EXPECT_GT(m.wasm.memory_bytes, m.js.memory_bytes * 2);
}

TEST(Env, FirefoxWasmFasterThanChromeOnDesktop) {
  const core::BuildResult b = build_m("fdtd-2d");
  BrowserEnv chrome(Browser::Chrome, Platform::Desktop);
  BrowserEnv firefox(Browser::Firefox, Platform::Desktop);
  const double chrome_ms = chrome.run_wasm(b.wasm).time_ms;
  const double firefox_ms = firefox.run_wasm(b.wasm).time_ms;
  EXPECT_LT(firefox_ms, chrome_ms);  // paper: 0.61x
}

TEST(Env, MobileIsSlowerAndReordersBrowsers) {
  const core::BuildResult b = build_m("fdtd-2d");
  BrowserEnv desk_ff(Browser::Firefox, Platform::Desktop);
  BrowserEnv mob_ff(Browser::Firefox, Platform::Mobile);
  BrowserEnv mob_chrome(Browser::Chrome, Platform::Mobile);
  EXPECT_GT(mob_ff.run_wasm(b.wasm).time_ms, desk_ff.run_wasm(b.wasm).time_ms * 2);
  // Paper: mobile Firefox runs Wasm slower than mobile Chrome (1.48x).
  EXPECT_GT(mob_ff.run_wasm(b.wasm).time_ms, mob_chrome.run_wasm(b.wasm).time_ms);
}

TEST(Env, ContextSwitchFirefoxIsCheapest) {
  BrowserEnv chrome(Browser::Chrome, Platform::Desktop);
  BrowserEnv firefox(Browser::Firefox, Platform::Desktop);
  BrowserEnv edge(Browser::Edge, Platform::Desktop);
  EXPECT_LT(firefox.context_switch_ns(), 0.3 * chrome.context_switch_ns());
  EXPECT_GE(edge.context_switch_ns(), chrome.context_switch_ns());
}

TEST(Env, BoundaryCrossingsAreCounted) {
  // float_intrinsics-style kernel imports libm shims -> host calls.
  const core::BuildResult b = build_m("deriche");
  BrowserEnv chrome(Browser::Chrome, Platform::Desktop);
  const PageMetrics m = chrome.run_wasm(b.wasm);
  ASSERT_TRUE(m.ok);
  EXPECT_GE(m.boundary_crossings, 2u);  // at least __init + main
}

TEST(Env, EmscriptenFasterButFatter) {
  const core::BuildResult cheerp_build =
      core::build(bench("gemm"), core::InputSize::XL, ir::OptLevel::O2,
                  backend::Toolchain::Cheerp);
  const core::BuildResult emcc_build =
      core::build(bench("gemm"), core::InputSize::XL, ir::OptLevel::O2,
                  backend::Toolchain::Emscripten);
  ASSERT_TRUE(cheerp_build.ok && emcc_build.ok);
  BrowserEnv chrome(Browser::Chrome, Platform::Desktop);
  RunOptions cheerp_opts;
  RunOptions emcc_opts;
  emcc_opts.toolchain = backend::Toolchain::Emscripten;
  const PageMetrics c = chrome.run_wasm(cheerp_build.wasm, cheerp_opts);
  const PageMetrics e = chrome.run_wasm(emcc_build.wasm, emcc_opts);
  ASSERT_TRUE(c.ok && e.ok);
  EXPECT_EQ(c.result, e.result);
  EXPECT_LT(e.time_ms, c.time_ms);          // paper: 2.70x faster
  EXPECT_GT(e.memory_bytes, c.memory_bytes);  // paper: 6.02x more memory
}

TEST(Env, OptimizingOnlyBeatsDefaultSlightly) {
  const core::BuildResult b = build_m("gemm");
  BrowserEnv chrome(Browser::Chrome, Platform::Desktop);
  RunOptions optimizing;
  optimizing.wasm_tiers = RunOptions::WasmTiers::OptimizingOnly;
  const double def = chrome.run_wasm(b.wasm).time_ms;
  const double opt_only = chrome.run_wasm(b.wasm, optimizing).time_ms;
  // Paper Table 7: default ~0.88-0.93x the speed of optimizing-only.
  EXPECT_LT(opt_only, def);
  EXPECT_GT(opt_only, def * 0.6);
}

}  // namespace
}  // namespace wb::env
