// WAT printer golden tests: the paper presents its evidence as WAT
// snippets (Figs. 4/7/8), so the printer's output shape matters.
#include <gtest/gtest.h>

#include "backend/wasm_backend.h"
#include "ir/passes.h"
#include "minic/minic.h"
#include "wasm/builder.h"
#include "wasm/codec.h"
#include "wasm/wat.h"

namespace wb::wasm {
namespace {

TEST(Wat, FibonacciLooksLikePaperFigure4) {
  // The paper's Fig. 4 example program.
  const char* src = R"(
    int fib(int i) {
      if (i < 3)
        return 1;
      return fib(i - 1) + fib(i - 2);
    }
    int main(void) { return fib(6); }
  )";
  std::string error;
  auto m = minic::compile(src, {}, error);
  ASSERT_TRUE(m.has_value()) << error;
  const auto artifact = backend::compile_to_wasm(std::move(*m), {});
  ASSERT_TRUE(artifact.ok()) << artifact.error;
  const std::string wat = to_wat(artifact.module);

  EXPECT_NE(wat.find("(module"), std::string::npos);
  EXPECT_NE(wat.find("(param i32)"), std::string::npos);
  EXPECT_NE(wat.find("(result i32)"), std::string::npos);
  EXPECT_NE(wat.find("local.get"), std::string::npos);
  EXPECT_NE(wat.find("i32.lt_s"), std::string::npos);  // i < 3
  EXPECT_NE(wat.find("call $f"), std::string::npos);   // recursion
  EXPECT_NE(wat.find("i32.sub"), std::string::npos);   // i - 1 / i - 2
  EXPECT_NE(wat.find("(export \"main\""), std::string::npos);
}

TEST(Wat, Figure8ConstantMaterializationVisible) {
  // The Fig. 8 pattern: an f64 constant emitted as i32.const + convert.
  const char* src = R"(
    double data[16];
    int main(void) {
      int i;
      for (i = 0; i < 16; i++) data[i] = (double)i / 3.0;
      double s = 0.0;
      for (i = 0; i < 16; i++) s += data[i];
      return (int)s;
    }
  )";
  std::string error;
  auto m = minic::compile(src, {}, error);
  ASSERT_TRUE(m.has_value()) << error;
  ir::run_pipeline(*m, ir::OptLevel::O2);
  const auto artifact = backend::compile_to_wasm(std::move(*m), {});
  ASSERT_TRUE(artifact.ok()) << artifact.error;
  const std::string wat = to_wat(artifact.module);
  // "i32.const 3" followed (next line) by the convert, as in Fig. 8(a).
  const size_t at = wat.find("i32.const 3\n");
  ASSERT_NE(at, std::string::npos) << wat;
  EXPECT_NE(wat.find("f64.convert_i32_s", at), std::string::npos);
}

TEST(Wat, ControlStructureIndentation) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{ValType::I32}, {ValType::I32}}, "demo");
  f.block().loop();
  f.local_get(0).op(Opcode::I32Eqz).br_if(1);
  f.local_get(0).i32(1).op(Opcode::I32Sub).local_set(0);
  f.br(0);
  f.end().end();
  f.local_get(0);
  f.finish("demo");
  const std::string wat = to_wat(mb.module());
  // Loop body is indented deeper than the loop header.
  const size_t block_at = wat.find("    block");
  const size_t loop_at = wat.find("      loop");
  const size_t body_at = wat.find("        local.get 0");
  EXPECT_NE(block_at, std::string::npos) << wat;
  EXPECT_NE(loop_at, std::string::npos) << wat;
  EXPECT_NE(body_at, std::string::npos) << wat;
  EXPECT_LT(block_at, loop_at);
  EXPECT_LT(loop_at, body_at);
}

TEST(Wat, RoundTripThroughBinaryPreservesText) {
  // encode -> decode -> print must equal print of the original.
  const char* src = "int main(void) { int s = 0; int i; "
                    "for (i = 0; i < 10; i++) s += i; return s; }";
  std::string error;
  auto m = minic::compile(src, {}, error);
  const auto artifact = backend::compile_to_wasm(std::move(*m), {});
  ASSERT_TRUE(artifact.ok());
  const auto decoded = decode(artifact.binary);
  ASSERT_TRUE(decoded.has_value());
  // Debug names are not serialized; compare structure-only prints by
  // stripping name comments.
  auto strip = [](std::string s) {
    std::string out;
    bool in_comment = false;
    for (size_t i = 0; i < s.size(); ++i) {
      if (!in_comment && s.compare(i, 3, " (;") == 0) in_comment = true;
      if (!in_comment) out += s[i];
      if (in_comment && s.compare(i, 2, ";)") == 0) {
        in_comment = false;
        ++i;
      }
    }
    return out;
  };
  EXPECT_EQ(strip(to_wat(artifact.module)), strip(to_wat(*decoded)));
}

}  // namespace
}  // namespace wb::wasm
