#include <gtest/gtest.h>

#include <cmath>

#include "wasm/builder.h"
#include "wasm/interp.h"
#include "wasm/validator.h"

namespace wb::wasm {
namespace {

using VT = ValType;

/// Builds a single-function module computing `body` over `type`, validates
/// it, instantiates, and invokes with `args`.
class ExecHelper {
 public:
  ModuleBuilder mb;

  InvokeResult run(std::span<const Value> args = {}) {
    module_ = mb.take();
    const auto err = validate(module_);
    EXPECT_FALSE(err.has_value()) << (err ? err->message : "");
    instance_ = std::make_unique<Instance>(module_, host_fns_);
    instance_->set_fuel(100'000'000);
    return instance_->invoke("main", args);
  }

  std::vector<HostFn> host_fns_;
  Instance& instance() { return *instance_; }

 private:
  Module module_;
  std::unique_ptr<Instance> instance_;
};

// ------------------------------------------------------------ arithmetic

struct BinOpCase {
  Opcode op;
  int64_t lhs, rhs, expect;
  bool is64;
};

class I32BinOpTest : public testing::TestWithParam<BinOpCase> {};

TEST_P(I32BinOpTest, Computes) {
  const BinOpCase& c = GetParam();
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {c.is64 ? VT::I64 : VT::I32}});
  if (c.is64) {
    f.i64(c.lhs).i64(c.rhs).op(c.op);
  } else {
    f.i32(static_cast<int32_t>(c.lhs)).i32(static_cast<int32_t>(c.rhs)).op(c.op);
  }
  f.finish("main");
  const InvokeResult r = h.run();
  ASSERT_TRUE(r.ok()) << to_string(r.trap);
  if (c.is64) {
    EXPECT_EQ(r.value.as_i64(), c.expect);
  } else {
    EXPECT_EQ(r.value.as_i32(), static_cast<int32_t>(c.expect));
  }
}

INSTANTIATE_TEST_SUITE_P(
    IntOps, I32BinOpTest,
    testing::Values(
        BinOpCase{Opcode::I32Add, 2, 3, 5, false},
        BinOpCase{Opcode::I32Sub, 2, 3, -1, false},
        BinOpCase{Opcode::I32Mul, -4, 3, -12, false},
        BinOpCase{Opcode::I32DivS, -7, 2, -3, false},
        BinOpCase{Opcode::I32DivU, -1, 2, 0x7fffffff, false},
        BinOpCase{Opcode::I32RemS, -7, 2, -1, false},
        BinOpCase{Opcode::I32RemU, 7, 3, 1, false},
        BinOpCase{Opcode::I32And, 0b1100, 0b1010, 0b1000, false},
        BinOpCase{Opcode::I32Or, 0b1100, 0b1010, 0b1110, false},
        BinOpCase{Opcode::I32Xor, 0b1100, 0b1010, 0b0110, false},
        BinOpCase{Opcode::I32Shl, 1, 35, 8, false},  // shift count masked
        BinOpCase{Opcode::I32ShrS, -8, 1, -4, false},
        BinOpCase{Opcode::I32ShrU, -8, 1, 0x7ffffffc, false},
        BinOpCase{Opcode::I32Rotl, 0x80000001, 1, 3, false},
        BinOpCase{Opcode::I32Rotr, 3, 1, int64_t{0x80000001}, false},
        BinOpCase{Opcode::I32Eq, 4, 4, 1, false},
        BinOpCase{Opcode::I32LtS, -1, 0, 1, false},
        BinOpCase{Opcode::I32LtU, -1, 0, 0, false},
        BinOpCase{Opcode::I64Add, INT64_MAX, 1, INT64_MIN, true},
        BinOpCase{Opcode::I64Mul, 1ll << 40, 1 << 10, 1ll << 50, true},
        BinOpCase{Opcode::I64DivS, -9, 2, -4, true},
        BinOpCase{Opcode::I64Shl, 1, 63, INT64_MIN, true},
        BinOpCase{Opcode::I64Rotl, INT64_MIN | 1, 1, 3, true}));

TEST(WasmInterp, DivideByZeroTraps) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(1).i32(0).op(Opcode::I32DivS).finish("main");
  EXPECT_EQ(h.run().trap, Trap::IntegerDivideByZero);
}

TEST(WasmInterp, DivOverflowTraps) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(INT32_MIN).i32(-1).op(Opcode::I32DivS).finish("main");
  EXPECT_EQ(h.run().trap, Trap::IntegerOverflow);
}

TEST(WasmInterp, RemIntMinByMinusOneIsZero) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(INT32_MIN).i32(-1).op(Opcode::I32RemS).finish("main");
  const InvokeResult r = h.run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.as_i32(), 0);
}

TEST(WasmInterp, UnaryIntOps) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  // clz(0x00ffffff)=8; ctz(8)=3 -> 8+3=11; popcnt(0xf0)=4 -> 11*4 = 44
  f.i32(0x00ffffff).op(Opcode::I32Clz);
  f.i32(8).op(Opcode::I32Ctz);
  f.op(Opcode::I32Add);
  f.i32(0xf0).op(Opcode::I32Popcnt);
  f.op(Opcode::I32Mul);
  f.finish("main");
  const InvokeResult r = h.run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.as_i32(), 44);
}

TEST(WasmInterp, ClzCtzOfZero) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(0).op(Opcode::I32Clz).i32(0).op(Opcode::I32Ctz).op(Opcode::I32Add);
  f.finish("main");
  EXPECT_EQ(h.run().value.as_i32(), 64);
}

// ------------------------------------------------------------- floats

TEST(WasmInterp, FloatArithmetic) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::F64}});
  f.f64(1.5).f64(2.25).op(Opcode::F64Add);
  f.f64(2.0).op(Opcode::F64Mul);
  f.f64(0.5).op(Opcode::F64Sub);
  f.f64(7.0).op(Opcode::F64Div);
  f.finish("main");
  const InvokeResult r = h.run();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value.as_f64(), 1.0);
}

TEST(WasmInterp, FloatMinMaxNaN) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::F64}});
  f.f64(1.0).f64(std::nan("")).op(Opcode::F64Min).finish("main");
  const InvokeResult r = h.run();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isnan(r.value.as_f64()));
}

TEST(WasmInterp, FloatMinNegativeZero) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::F64}});
  f.f64(0.0).f64(-0.0).op(Opcode::F64Min).finish("main");
  const InvokeResult r = h.run();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::signbit(r.value.as_f64()));
}

TEST(WasmInterp, NearestRoundsToEven) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::F64}});
  f.f64(2.5).op(Opcode::F64Nearest).f64(3.5).op(Opcode::F64Nearest).op(Opcode::F64Add);
  f.finish("main");
  EXPECT_DOUBLE_EQ(h.run().value.as_f64(), 6.0);  // 2 + 4
}

TEST(WasmInterp, SqrtAndCompare) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.f64(9.0).op(Opcode::F64Sqrt).f64(3.0).op(Opcode::F64Eq).finish("main");
  EXPECT_EQ(h.run().value.as_i32(), 1);
}

// --------------------------------------------------------- conversions

TEST(WasmInterp, IntFloatConversions) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.f64(-3.99).op(Opcode::I32TruncF64S);  // -3
  f.i32(1).op(Opcode::I32Add);            // -2
  f.finish("main");
  EXPECT_EQ(h.run().value.as_i32(), -2);
}

TEST(WasmInterp, TruncNaNTraps) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.f64(std::nan("")).op(Opcode::I32TruncF64S).finish("main");
  EXPECT_EQ(h.run().trap, Trap::InvalidConversion);
}

TEST(WasmInterp, TruncOutOfRangeTraps) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.f64(3e10).op(Opcode::I32TruncF64S).finish("main");
  EXPECT_EQ(h.run().trap, Trap::InvalidConversion);
}

TEST(WasmInterp, ExtendAndWrap) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I64}});
  f.i32(-1).op(Opcode::I64ExtendI32U);  // 0xffffffff
  f.finish("main");
  EXPECT_EQ(h.run().value.as_i64(), 0xffffffffll);
}

TEST(WasmInterp, Reinterpret) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I64}});
  f.f64(1.0).op(Opcode::I64ReinterpretF64).finish("main");
  EXPECT_EQ(h.run().value.as_u64(), 0x3ff0000000000000ull);
}

TEST(WasmInterp, ConvertI32ToF64) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::F64}});
  f.i32(-7).op(Opcode::F64ConvertI32S).finish("main");
  EXPECT_DOUBLE_EQ(h.run().value.as_f64(), -7.0);
}

// -------------------------------------------------------------- control

TEST(WasmInterp, LoopSumsOneToTen) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{VT::I32}, {VT::I32}});
  const uint32_t acc = f.add_local(VT::I32);
  f.block().loop();
  f.local_get(0).op(Opcode::I32Eqz).br_if(1);
  f.local_get(acc).local_get(0).op(Opcode::I32Add).local_set(acc);
  f.local_get(0).i32(1).op(Opcode::I32Sub).local_set(0);
  f.br(0);
  f.end().end();
  f.local_get(acc);
  f.finish("main");
  const Value arg = Value::from_i32(10);
  EXPECT_EQ(h.run({&arg, 1}).value.as_i32(), 55);
}

TEST(WasmInterp, IfElseBothBranches) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.local_get(0).if_(static_cast<uint32_t>(VT::I32));
  f.i32(100);
  f.else_();
  f.i32(200);
  f.end();
  f.finish("main");
  const Value t = Value::from_i32(1);
  const Value z = Value::from_i32(0);
  EXPECT_EQ(h.run({&t, 1}).value.as_i32(), 100);
  ExecHelper h2;
  auto g = h2.mb.define(FuncType{{VT::I32}, {VT::I32}});
  g.local_get(0).if_(static_cast<uint32_t>(VT::I32));
  g.i32(100);
  g.else_();
  g.i32(200);
  g.end();
  g.finish("main");
  EXPECT_EQ(h2.run({&z, 1}).value.as_i32(), 200);
}

TEST(WasmInterp, IfWithoutElseSkips) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{VT::I32}, {VT::I32}});
  const uint32_t r = f.add_local(VT::I32);
  f.i32(1).local_set(r);
  f.local_get(0).if_();
  f.i32(42).local_set(r);
  f.end();
  f.local_get(r);
  f.finish("main");
  const Value z = Value::from_i32(0);
  EXPECT_EQ(h.run({&z, 1}).value.as_i32(), 1);
}

TEST(WasmInterp, BrTableSelectsTarget) {
  auto build = [](ExecHelper& h) {
    auto f = h.mb.define(FuncType{{VT::I32}, {VT::I32}});
    f.block().block().block();
    f.local_get(0).br_table({0, 1, 2});
    f.end();
    f.i32(10).op(Opcode::Return);
    f.end();
    f.i32(20).op(Opcode::Return);
    f.end();
    f.i32(30);
    f.finish("main");
  };
  for (const auto& [input, expect] : std::vector<std::pair<int, int>>{
           {0, 10}, {1, 20}, {2, 30}, {7, 30} /* default clamps */}) {
    ExecHelper h;
    build(h);
    const Value v = Value::from_i32(input);
    EXPECT_EQ(h.run({&v, 1}).value.as_i32(), expect) << input;
  }
}

TEST(WasmInterp, SelectPicksOperand) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.i32(111).i32(222).local_get(0).op(Opcode::Select).finish("main");
  const Value t = Value::from_i32(5);
  EXPECT_EQ(h.run({&t, 1}).value.as_i32(), 111);
}

TEST(WasmInterp, NestedBlocksBranchOverValues) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.block(static_cast<uint32_t>(VT::I32));
  f.i32(7).br(0);
  f.end();
  f.i32(1).op(Opcode::I32Add);
  f.finish("main");
  EXPECT_EQ(h.run().value.as_i32(), 8);
}

TEST(WasmInterp, UnreachableTraps) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {}});
  f.op(Opcode::Unreachable).finish("main");
  EXPECT_EQ(h.run().trap, Trap::Unreachable);
}

// ---------------------------------------------------------------- calls

TEST(WasmInterp, RecursiveFib) {
  ExecHelper h;
  const FuncType sig{{VT::I32}, {VT::I32}};
  auto f = h.mb.define(sig, "fib");
  f.local_get(0).i32(3).op(Opcode::I32LtS).if_(static_cast<uint32_t>(VT::I32));
  f.i32(1);
  f.else_();
  f.local_get(0).i32(1).op(Opcode::I32Sub).call(f.index());
  f.local_get(0).i32(2).op(Opcode::I32Sub).call(f.index());
  f.op(Opcode::I32Add);
  f.end();
  f.finish("main");
  const Value v = Value::from_i32(10);
  EXPECT_EQ(h.run({&v, 1}).value.as_i32(), 55);
}

TEST(WasmInterp, CallIndirectDispatches) {
  ExecHelper h;
  const FuncType sig{{VT::I32}, {VT::I32}};
  auto dbl = h.mb.define(sig, "dbl");
  dbl.local_get(0).i32(2).op(Opcode::I32Mul).finish();
  auto sq = h.mb.define(sig, "sq");
  sq.local_get(0).local_get(0).op(Opcode::I32Mul).finish();
  auto f = h.mb.define(FuncType{{VT::I32, VT::I32}, {VT::I32}});
  f.local_get(1);  // argument to callee
  f.local_get(0);  // table slot
  f.op(Opcode::CallIndirect, h.mb.module().intern_type(sig));
  f.finish("main");
  h.mb.module().table_size = 2;
  h.mb.module().elems.push_back(ElemSegment{0, {dbl.index(), sq.index()}});
  Value args[2] = {Value::from_i32(1), Value::from_i32(5)};
  EXPECT_EQ(h.run(args).value.as_i32(), 25);
}

TEST(WasmInterp, CallIndirectNullEntryTraps) {
  ExecHelper h;
  const FuncType sig{{}, {VT::I32}};
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(1).op(Opcode::CallIndirect, h.mb.module().intern_type(sig));
  f.finish("main");
  h.mb.module().table_size = 2;
  EXPECT_EQ(h.run().trap, Trap::UndefinedElement);
}

TEST(WasmInterp, DeepRecursionTraps) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.local_get(0).i32(1).op(Opcode::I32Add).call(f.index());
  f.finish("main");
  const Value v = Value::from_i32(0);
  EXPECT_EQ(h.run({&v, 1}).trap, Trap::CallStackExhausted);
}

// --------------------------------------------------------------- memory

TEST(WasmInterp, MemoryStoreLoadRoundTrip) {
  ExecHelper h;
  h.mb.set_memory(1);
  auto f = h.mb.define(FuncType{{}, {VT::F64}});
  f.i32(128).f64(3.5).store(Opcode::F64Store);
  f.i32(128).load(Opcode::F64Load);
  f.finish("main");
  EXPECT_DOUBLE_EQ(h.run().value.as_f64(), 3.5);
}

TEST(WasmInterp, SubWordAccessors) {
  ExecHelper h;
  h.mb.set_memory(1);
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(0).i32(-1).store(Opcode::I32Store8);
  f.i32(0).load(Opcode::I32Load8U);   // 255
  f.i32(0).load(Opcode::I32Load8S);   // -1
  f.op(Opcode::I32Add);               // 254
  f.finish("main");
  EXPECT_EQ(h.run().value.as_i32(), 254);
}

TEST(WasmInterp, StaticOffsetApplies) {
  ExecHelper h;
  h.mb.set_memory(1);
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(100).i32(77).store(Opcode::I32Store, /*offset=*/24);
  f.i32(124).load(Opcode::I32Load);
  f.finish("main");
  EXPECT_EQ(h.run().value.as_i32(), 77);
}

TEST(WasmInterp, OutOfBoundsLoadTraps) {
  ExecHelper h;
  h.mb.set_memory(1);
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(65534).load(Opcode::I32Load);
  f.finish("main");
  EXPECT_EQ(h.run().trap, Trap::MemoryOutOfBounds);
}

TEST(WasmInterp, OffsetOverflowDoesNotWrap) {
  ExecHelper h;
  h.mb.set_memory(1);
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(-4).load(Opcode::I32Load, /*offset=*/8);  // effective 2^32+4
  f.finish("main");
  EXPECT_EQ(h.run().trap, Trap::MemoryOutOfBounds);
}

TEST(WasmInterp, MemoryGrowSemantics) {
  ExecHelper h;
  h.mb.set_memory(1, 3);
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(1).op(Opcode::MemoryGrow);  // old size: 1
  f.op(Opcode::MemorySize);         // now 2
  f.op(Opcode::I32Mul);             // 2
  f.i32(5).op(Opcode::MemoryGrow);  // exceeds max -> -1
  f.op(Opcode::I32Add);             // 1
  f.finish("main");
  const InvokeResult r = h.run();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.as_i32(), 1);
  EXPECT_EQ(h.instance().memory()->size_pages(), 2u);
  EXPECT_EQ(h.instance().stats().memory_grows, 2u);
  EXPECT_EQ(h.instance().memory()->peak_bytes(), 2u * 65536);
}

TEST(WasmInterp, DataSegmentsInitializeMemory) {
  ExecHelper h;
  h.mb.set_memory(1);
  h.mb.add_data(16, {0x78, 0x56, 0x34, 0x12});
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(16).load(Opcode::I32Load);
  f.finish("main");
  EXPECT_EQ(h.run().value.as_i32(), 0x12345678);
}

// -------------------------------------------------------------- globals

TEST(WasmInterp, GlobalReadWrite) {
  ExecHelper h;
  h.mb.add_global(VT::I32, true, Value::from_i32(10));
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.global_get(0).i32(5).op(Opcode::I32Add).global_set(0);
  f.global_get(0);
  f.finish("main");
  EXPECT_EQ(h.run().value.as_i32(), 15);
}

// ---------------------------------------------------------- host calls

TEST(WasmInterp, HostFunctionRoundTrip) {
  ExecHelper h;
  int host_calls = 0;
  h.host_fns_.push_back([&host_calls](std::span<const Value> args, Value* result) {
    ++host_calls;
    *result = Value::from_i32(args[0].as_i32() * 10);
    return Trap::None;
  });
  const uint32_t imp = h.mb.add_import("env", "times10", FuncType{{VT::I32}, {VT::I32}});
  auto f = h.mb.define(FuncType{{}, {VT::I32}});
  f.i32(4).call(imp).finish("main");
  EXPECT_EQ(h.run().value.as_i32(), 40);
  EXPECT_EQ(host_calls, 1);
  EXPECT_EQ(h.instance().stats().host_calls, 1u);
}

TEST(WasmInterp, HostErrorPropagates) {
  ExecHelper h;
  h.host_fns_.push_back([](std::span<const Value>, Value*) { return Trap::HostError; });
  const uint32_t imp = h.mb.add_import("env", "boom", FuncType{{}, {}});
  auto f = h.mb.define(FuncType{{}, {}});
  f.call(imp).finish("main");
  EXPECT_EQ(h.run().trap, Trap::HostError);
}

// ------------------------------------------------- metering & tiering

TEST(WasmInterp, FuelExhaustionTraps) {
  ExecHelper h;
  auto f = h.mb.define(FuncType{{}, {}});
  f.loop();
  f.br(0);
  f.end();
  f.finish("main");
  Module m = h.mb.take();
  ASSERT_FALSE(validate(m).has_value());
  Instance inst(m, {});
  inst.set_fuel(10'000);
  EXPECT_EQ(inst.invoke("main", {}).trap, Trap::FuelExhausted);
  EXPECT_GE(inst.stats().ops_executed, 10'000u);
}

Module hot_loop_module() {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{VT::I32}, {VT::I32}});
  const uint32_t acc = f.add_local(VT::I32);
  f.block().loop();
  f.local_get(0).op(Opcode::I32Eqz).br_if(1);
  f.local_get(acc).i32(3).op(Opcode::I32Add).local_set(acc);
  f.local_get(0).i32(1).op(Opcode::I32Sub).local_set(0);
  f.br(0);
  f.end().end();
  f.local_get(acc);
  f.finish("main");
  return mb.take();
}

TEST(WasmInterp, CostAccountingFlatTable) {
  const Module m = hot_loop_module();
  Instance inst(m, {});
  CostTable flat;
  flat.fill(7);
  inst.set_cost_tables(flat, flat);
  TierPolicy policy;
  policy.optimizing_enabled = false;  // keep a single tier
  inst.set_tier_policy(policy);
  const Value v = Value::from_i32(100);
  ASSERT_TRUE(inst.invoke("main", {&v, 1}).ok());
  EXPECT_EQ(inst.stats().cost_ps, inst.stats().ops_executed * 7);
}

TEST(WasmInterp, TierUpHappensOnHotLoop) {
  const Module m = hot_loop_module();
  Instance inst(m, {});
  CostTable slow, fast;
  slow.fill(100);
  fast.fill(10);
  inst.set_cost_tables(slow, fast);
  TierPolicy policy;
  policy.tierup_threshold = 50;
  policy.tierup_cost_per_instr = 0;
  inst.set_tier_policy(policy);
  const Value v = Value::from_i32(10'000);
  ASSERT_TRUE(inst.invoke("main", {&v, 1}).ok());
  EXPECT_EQ(inst.stats().tierups, 1u);
  EXPECT_EQ(inst.function_tier(0), Tier::Optimizing);
  // Most iterations ran at the fast tier.
  EXPECT_LT(inst.stats().cost_ps, inst.stats().ops_executed * 30);
}

TEST(WasmInterp, NoTierUpWhenOptimizingDisabled) {
  const Module m = hot_loop_module();
  Instance inst(m, {});
  TierPolicy policy;
  policy.optimizing_enabled = false;
  policy.tierup_threshold = 10;
  inst.set_tier_policy(policy);
  const Value v = Value::from_i32(1000);
  ASSERT_TRUE(inst.invoke("main", {&v, 1}).ok());
  EXPECT_EQ(inst.stats().tierups, 0u);
  EXPECT_EQ(inst.function_tier(0), Tier::Baseline);
}

TEST(WasmInterp, OptimizingOnlyStartsAtTopTier) {
  const Module m = hot_loop_module();
  Instance inst(m, {});
  TierPolicy policy;
  policy.baseline_enabled = false;
  inst.set_tier_policy(policy);
  EXPECT_EQ(inst.function_tier(0), Tier::Optimizing);
}

TEST(WasmInterp, ArithCountersTrackCategories) {
  const Module m = hot_loop_module();
  Instance inst(m, {});
  const Value v = Value::from_i32(50);
  ASSERT_TRUE(inst.invoke("main", {&v, 1}).ok());
  const auto& counts = inst.stats().arith_counts;
  // 1 add + 1 sub per iteration = 100 Add-category ops for 50 iterations.
  EXPECT_EQ(counts[static_cast<size_t>(ArithCat::Add)], 100u);
  EXPECT_EQ(counts[static_cast<size_t>(ArithCat::Mul)], 0u);
}

TEST(WasmInterp, GrowCostCharged) {
  ModuleBuilder mb;
  mb.set_memory(1);
  auto f = mb.define(FuncType{{}, {}});
  f.i32(1).op(Opcode::MemoryGrow).op(Opcode::Drop).finish("main");
  const Module m = mb.take();
  Instance inst(m, {});
  CostTable flat;
  flat.fill(0);
  inst.set_cost_tables(flat, flat);
  inst.set_grow_cost(12345);
  ASSERT_TRUE(inst.invoke("main", {}).ok());
  EXPECT_EQ(inst.stats().cost_ps, 12345u);
}

TEST(WasmInterp, InvokeUnknownExportFails) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {}});
  f.finish("main");
  const Module m = mb.take();
  Instance inst(m, {});
  EXPECT_EQ(inst.invoke("nope", {}).trap, Trap::HostError);
}

}  // namespace
}  // namespace wb::wasm
