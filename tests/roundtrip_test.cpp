// Encoder/decoder roundtrip gate: for every corpus benchmark at every
// optimization level, the encoded Wasm binary must decode back to a module
// that re-encodes to the exact same bytes. This pins the encoder to a
// canonical form (minimal LEBs, merged locals runs) and is the structural
// oracle the fuzzer relies on (see src/fuzz/harness.cpp).
#include <gtest/gtest.h>

#include "backend/wasm_backend.h"
#include "benchmarks/registry.h"
#include "core/study.h"
#include "ir/passes.h"
#include "minic/minic.h"
#include "wasm/codec.h"

namespace wb {
namespace {

constexpr ir::OptLevel kLevels[] = {ir::OptLevel::O0, ir::OptLevel::O1,
                                    ir::OptLevel::O2, ir::OptLevel::O3,
                                    ir::OptLevel::Ofast, ir::OptLevel::Os,
                                    ir::OptLevel::Oz};

class Roundtrip : public testing::TestWithParam<const core::BenchSource*> {};

TEST_P(Roundtrip, EncodeDecodeReencodeIsByteIdentical) {
  const core::BenchSource& bench = *GetParam();
  for (const ir::OptLevel level : kLevels) {
    minic::CompileOptions copts;
    copts.defines = bench.defines_for(core::InputSize::XS);
    std::string error;
    auto m = minic::compile(bench.source, copts, error);
    ASSERT_TRUE(m.has_value()) << bench.name << ": " << error;
    const ir::PipelineInfo info = ir::run_pipeline(*m, level);

    backend::WasmOptions wopts;
    wopts.fast_math = info.fast_math;
    const backend::WasmArtifact artifact =
        backend::compile_to_wasm(std::move(*m), wopts);
    ASSERT_TRUE(artifact.ok()) << bench.name << ": " << artifact.error;

    std::string derr;
    const auto decoded = wasm::decode(artifact.binary, &derr);
    ASSERT_TRUE(decoded.has_value())
        << bench.name << " at " << to_string(level) << ": " << derr;
    const std::vector<uint8_t> reencoded = wasm::encode(*decoded);
    ASSERT_EQ(reencoded, artifact.binary) << bench.name << " at " << to_string(level);
  }
}

std::vector<const core::BenchSource*> all() {
  std::vector<const core::BenchSource*> out;
  for (const auto& b : benchmarks::all_benchmarks()) out.push_back(&b);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Corpus, Roundtrip, testing::ValuesIn(all()),
                         [](const testing::TestParamInfo<const core::BenchSource*>& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wb
