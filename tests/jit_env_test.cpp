// WB_NO_JIT environment-variable latch. jit_default() reads the variable
// once per process (a function-local static, mirroring WB_NO_QUICKEN), so
// this test lives in its own binary where the variable can be set before
// anything touches the latch: a file-scope constructor runs before main()
// and therefore before gtest or any Instance.
#include <gtest/gtest.h>

#include <cstdlib>

#include "wasm/builder.h"
#include "wasm/interp.h"
#include "wasm/jit/jit.h"
#include "wasm/validator.h"

namespace {
struct EnvSetter {
  EnvSetter() { setenv("WB_NO_JIT", "1", 1); }
} g_env;
}  // namespace

namespace wb::wasm {
namespace {

TEST(WasmJitEnv, NoJitEnvForcesDefaultOff) {
  EXPECT_FALSE(jit::jit_default());
  // set_jit_default cannot override the env latch.
  jit::set_jit_default(true);
  EXPECT_FALSE(jit::jit_default());
}

TEST(WasmJitEnv, InstanceFollowsLatchAndStillRunsCorrectly) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {ValType::I32}});
  f.add_local(ValType::I32);
  f.add_local(ValType::I32);
  f.i32(100).local_set(0);
  f.block();
  f.loop();
  f.local_get(0).i32(0).op(Opcode::I32LeS).br_if(1);
  f.local_get(1).local_get(0).op(Opcode::I32Add).local_set(1);
  f.local_get(0).i32(-1).op(Opcode::I32Add).local_set(0);
  f.br(0);
  f.end();
  f.end();
  f.local_get(1);
  f.finish("main");
  Module m = mb.take();
  ASSERT_FALSE(validate(m).has_value());

  Instance inst(m, {});
  EXPECT_FALSE(inst.jit_enabled());
  TierPolicy p;
  p.baseline_enabled = false;
  inst.set_tier_policy(p);
  const InvokeResult r = inst.invoke("main", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.as_i32(), 100 * 101 / 2);
  EXPECT_EQ(inst.jit_compiled_functions(), 0u);
}

}  // namespace
}  // namespace wb::wasm
