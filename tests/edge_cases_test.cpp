// Cross-cutting edge cases gathered while building the study — each one
// guards a behaviour an earlier draft got wrong or nearly got wrong.
#include <gtest/gtest.h>

#include "core/study.h"
#include "ir/exec.h"
#include "js/engine.h"
#include "js/interp.h"
#include "minic/minic.h"

namespace wb {
namespace {

// ------------------------------------------------------------- mini-C

int32_t run_c(const std::string& src) {
  std::string error;
  auto m = minic::compile(src, {}, error);
  EXPECT_TRUE(m.has_value()) << error;
  if (!m) return 0;
  ir::Executor exec(*m);
  const ir::ExecResult r = exec.run("main");
  EXPECT_TRUE(r.ok) << r.error;
  return r.as_i32();
}

TEST(EdgeCases, BlockScopedShadowing) {
  EXPECT_EQ(run_c(R"(
    int main(void) {
      int x = 1;
      {
        int x = 10;
        x += 5;
      }
      return x;
    }
  )"), 1);
}

TEST(EdgeCases, ForInitScopeDoesNotLeak) {
  EXPECT_EQ(run_c(R"(
    int main(void) {
      int i = 100;
      for (int i = 0; i < 3; i++) { }
      return i;
    }
  )"), 100);
}

TEST(EdgeCases, SwitchInsideLoopBreaksBindCorrectly) {
  // The switch's breaks must not exit the loop.
  EXPECT_EQ(run_c(R"(
    int main(void) {
      int s = 0;
      int i;
      for (i = 0; i < 6; i++) {
        switch (i & 1) {
          case 0: s += 1; break;
          default: s += 10; break;
        }
      }
      return s;
    }
  )"), 33);
}

TEST(EdgeCases, NestedTernary) {
  EXPECT_EQ(run_c("int main(void) { int x = 5; return x > 3 ? (x > 4 ? 44 : 33) : 11; }"),
            44);
}

TEST(EdgeCases, UnsignedCompareAtBoundary) {
  EXPECT_EQ(run_c(R"(
    int main(void) {
      unsigned lo = 1;
      unsigned hi = 0x80000000;
      int a = lo < hi ? 1 : 0;       /* unsigned compare: true */
      int b = (int)lo < (int)hi ? 1 : 0;  /* signed: hi is negative */
      return a * 10 + b;
    }
  )"), 10);
}

TEST(EdgeCases, CharArithmeticWrapsInLoops) {
  EXPECT_EQ(run_c(R"(
    int main(void) {
      unsigned char c = 0;
      int i;
      for (i = 0; i < 300; i++) c++;
      return c;
    }
  )"), 300 - 256);
}

TEST(EdgeCases, WhileFalseBodyNeverRuns) {
  EXPECT_EQ(run_c("int main(void) { int x = 7; while (0) x = 0; return x; }"), 7);
}

TEST(EdgeCases, EmptyForIsInfiniteUntilBreak) {
  EXPECT_EQ(run_c(R"(
    int main(void) {
      int n = 0;
      for (;;) {
        n++;
        if (n == 12) break;
      }
      return n;
    }
  )"), 12);
}

TEST(EdgeCases, HexAndSuffixedLiterals) {
  EXPECT_EQ(run_c("int main(void) { unsigned a = 0xFFu; return (int)(a + 1UL); }"), 256);
}

TEST(EdgeCases, DeepExpressionNesting) {
  // Parser recursion depth on a realistic chain.
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  EXPECT_EQ(run_c("int main(void) { return " + expr + "; }"), 201);
}

// ---------------------------------------------------------------- JS

double run_js_main(const std::string& src) {
  std::string error;
  auto code = js::compile_script(src, error);
  EXPECT_TRUE(code.has_value()) << error;
  js::Heap heap;
  js::Vm vm(*code, heap);
  vm.set_fuel(20'000'000);
  EXPECT_TRUE(vm.run_top_level().ok);
  auto r = vm.call_function("main", {});
  EXPECT_TRUE(r.ok) << r.error;
  return r.value.num();
}

TEST(EdgeCases, JsNegativeZeroDistinctUnderDivision) {
  EXPECT_DOUBLE_EQ(run_js_main("function main() { return 1 / -0.0 < 0 ? 1 : 0; }"), 1);
}

TEST(EdgeCases, JsShiftBeyond31Masks) {
  EXPECT_DOUBLE_EQ(run_js_main("function main() { return 1 << 32; }"), 1);
  EXPECT_DOUBLE_EQ(run_js_main("function main() { return 2 >>> 33; }"), 1);
}

TEST(EdgeCases, JsStringNumericContextCoercion) {
  EXPECT_DOUBLE_EQ(run_js_main("function main() { return '21' * 2; }"), 42);
  EXPECT_DOUBLE_EQ(run_js_main("function main() { return ('1' + 1).length; }"), 2);
}

TEST(EdgeCases, JsArrayGrowthViaIndexAssignment) {
  EXPECT_DOUBLE_EQ(run_js_main(R"(
    function main() {
      var a = [];
      a[9] = 5;
      var undef_count = 0;
      for (var i = 0; i < a.length; i++)
        if (a[i] === undefined) undef_count++;
      return a.length * 100 + undef_count;
    }
  )"), 1009);
}

TEST(EdgeCases, JsFunctionsAsObjectProperties) {
  EXPECT_DOUBLE_EQ(run_js_main(R"(
    function double_it(x) { return x * 2; }
    var ops = {apply: double_it};
    function main() { return ops.apply(21); }
  )"), 42);
}

TEST(EdgeCases, JsTypedArrayAliasesDoNotExist) {
  // Two typed arrays are independent buffers (no shared ArrayBuffer in
  // this engine — documented).
  EXPECT_DOUBLE_EQ(run_js_main(R"(
    function main() {
      var a = new Int32Array(4);
      var b = new Int32Array(4);
      a[0] = 7;
      return b[0];
    }
  )"), 0);
}

TEST(EdgeCases, JsDoWhileWithComplexExit) {
  EXPECT_DOUBLE_EQ(run_js_main(R"(
    function main() {
      var n = 0;
      var seen = 0;
      do {
        n++;
        if (n % 2 == 0) continue;
        seen++;
      } while (n < 9);
      return n * 10 + seen;
    }
  )"), 95);
}

// --------------------------------------------------- study-level edges

TEST(EdgeCases, BuildRejectsUnknownBenchGracefully) {
  core::BenchSource bogus;
  bogus.name = "bogus";
  bogus.source = "int main(void) { return missing_function(); }";
  const core::BuildResult b = core::build(bogus, core::InputSize::M, ir::OptLevel::O2);
  EXPECT_FALSE(b.ok);
  EXPECT_NE(b.error.find("bogus"), std::string::npos);
}

TEST(EdgeCases, MeasureFlagsChecksumDivergence) {
  // measure() cross-checks wasm-vs-js checksums; a healthy benchmark
  // must pass the internal comparison.
  core::BenchSource ok_bench;
  ok_bench.name = "tiny";
  ok_bench.source = "int main(void) { return 41 + 1; }";
  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  const core::Measurement m =
      core::measure(ok_bench, core::InputSize::M, ir::OptLevel::O2, chrome);
  ASSERT_TRUE(m.wasm.ok && m.js.ok) << m.wasm.error << m.js.error;
  EXPECT_EQ(m.wasm.result, 42);
  EXPECT_EQ(m.js.result, 42);
}

}  // namespace
}  // namespace wb
