// Quickened-vs-classic JS engine identity (tier1): NaN-boxed value unit
// tests, white-box checks that the quickener fuses exactly the grams it
// promises (and refuses to swallow branch targets), dual-runner identity
// on heap/GC/IC-heavy programs, and a per-fuel-value exhaustion sweep
// that walks the trap boundary across every fused instruction.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "js/engine.h"
#include "js/interp.h"
#include "js/quicken.h"

namespace wb::js {
namespace {

// ------------------------------------------------------------ NaN boxing

TEST(JsValueBox, IsEightBytesAndRoundTrips) {
  static_assert(sizeof(JsValue) == 8);
  EXPECT_TRUE(JsValue::undefined().is_undefined());
  EXPECT_TRUE(JsValue::null().is_null());
  EXPECT_TRUE(JsValue::boolean_value(true).boolean());
  EXPECT_FALSE(JsValue::boolean_value(false).boolean());
  EXPECT_DOUBLE_EQ(JsValue::number(3.25).num(), 3.25);
  EXPECT_DOUBLE_EQ(JsValue::number(-0.0).num(), -0.0);
  EXPECT_TRUE(std::signbit(JsValue::number(-0.0).num()));
  EXPECT_EQ(JsValue::object(42).ref(), 42u);
  EXPECT_EQ(JsValue::object(kNullRef).ref(), kNullRef);
}

TEST(JsValueBox, TagsAreDisjoint) {
  EXPECT_EQ(JsValue::undefined().tag(), JsValue::Tag::Undefined);
  EXPECT_EQ(JsValue::null().tag(), JsValue::Tag::Null);
  EXPECT_EQ(JsValue::boolean_value(false).tag(), JsValue::Tag::Bool);
  EXPECT_EQ(JsValue::number(0).tag(), JsValue::Tag::Number);
  EXPECT_EQ(JsValue::object(0).tag(), JsValue::Tag::Object);
  EXPECT_FALSE(JsValue::object(0).is_number());
  EXPECT_FALSE(JsValue::number(0).is_object());
}

TEST(JsValueBox, NansStayNumbers) {
  // Any NaN — canonical, payload-carrying, or negative — must read back
  // as a number, never alias a boxed tag.
  const JsValue canon = JsValue::number(std::nan(""));
  EXPECT_TRUE(canon.is_number());
  EXPECT_TRUE(std::isnan(canon.num()));
  const JsValue neg = JsValue::number(-std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(neg.is_number());
  EXPECT_TRUE(std::isnan(neg.num()));
  const JsValue inf = JsValue::number(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(inf.is_number());
  EXPECT_TRUE(std::isinf(inf.num()));
}

// ------------------------------------------------- white-box translation

ScriptCode make_script(std::vector<JsInstr> code, std::vector<double> consts,
                       std::vector<std::string> names = {}) {
  ScriptCode sc;
  FunctionProto p;
  p.name = "f";
  p.nparams = 0;
  p.nlocals = 8;
  p.code = std::move(code);
  p.num_consts = std::move(consts);
  sc.protos.push_back(std::move(p));
  sc.names = std::move(names);
  return sc;
}

TEST(JsQuickenTranslate, FusesLocalLocalBinopStore) {
  const ScriptCode sc = make_script({{JsOp::LoadLocal, 0},
                                     {JsOp::LoadLocal, 1},
                                     {JsOp::Add},
                                     {JsOp::StoreLocal, 2}},
                                    {});
  uint32_t slots = 0;
  const QJsFunc qf = quicken(sc, 0, slots);
  ASSERT_EQ(qf.code.size(), 2u);  // fused gram + sentinel
  EXPECT_EQ(qf.code[0].op, QJsOp::FGetGetSet_Add);
  EXPECT_EQ(qf.code[0].a, 0u);
  EXPECT_EQ(qf.code[0].b, 1u);
  EXPECT_EQ(qf.code[0].c, 2u);
  EXPECT_EQ(qf.code[0].nops, 4u);
  EXPECT_EQ(qf.code[1].op, QJsOp::FuncReturn);
  EXPECT_EQ(qf.code[1].nops, 0u);
}

TEST(JsQuickenTranslate, FusesLocalConstCompareBranch) {
  const ScriptCode sc = make_script({{JsOp::LoadLocal, 0},
                                     {JsOp::ConstNum, 0},
                                     {JsOp::Lt},
                                     {JsOp::JumpIfFalse, 0}},
                                    {10.0});
  uint32_t slots = 0;
  const QJsFunc qf = quicken(sc, 0, slots);
  ASSERT_EQ(qf.code.size(), 2u);
  EXPECT_EQ(qf.code[0].op, QJsOp::FGetConstCmpJf);
  EXPECT_EQ(qf.code[0].a, 0u);
  EXPECT_DOUBLE_EQ(qf.code[0].val, 10.0);
  EXPECT_EQ(qf.code[0].c, static_cast<uint32_t>(JsOp::Lt));
  EXPECT_EQ(qf.code[0].d, 0u);  // branch target resolved to group start
  EXPECT_EQ(qf.code[0].nops, 4u);
}

TEST(JsQuickenTranslate, BranchTargetBlocksInteriorFusion) {
  // Jump lands on pc 1 — inside what would otherwise be a 4-gram. The
  // quickener must fall back to singles so the target stays addressable.
  const ScriptCode sc = make_script({{JsOp::LoadLocal, 0},
                                     {JsOp::LoadLocal, 1},
                                     {JsOp::Add},
                                     {JsOp::StoreLocal, 2},
                                     {JsOp::Jump, 1}},
                                    {});
  uint32_t slots = 0;
  const QJsFunc qf = quicken(sc, 0, slots);
  ASSERT_GE(qf.code.size(), 5u);
  EXPECT_EQ(qf.code[0].op, QJsOp::LoadLocal);
  EXPECT_EQ(qf.code[1].op, QJsOp::LoadLocal);
  EXPECT_EQ(qf.code[2].op, QJsOp::Add);
  EXPECT_EQ(qf.code[3].op, QJsOp::StoreLocal);
  EXPECT_EQ(qf.code[4].op, QJsOp::Jump);
  EXPECT_EQ(qf.code[4].a, 1u);  // resolved to the LoadLocal-1 instruction
  EXPECT_TRUE(qf.code[4].flags & kQJsFlagBackEdge);
}

TEST(JsQuickenTranslate, ChargeSideTablesCoverEveryClassicOp) {
  const ScriptCode sc = make_script({{JsOp::ConstNum, 0},
                                     {JsOp::StoreLocal, 0},
                                     {JsOp::LoadLocal, 0},
                                     {JsOp::ConstNum, 1},
                                     {JsOp::Mul},
                                     {JsOp::StoreLocal, 1},
                                     {JsOp::SetIndex},
                                     {JsOp::Pop},
                                     {JsOp::ReturnUndef}},
                                    {2.0, 3.0});
  uint32_t slots = 0;
  const QJsFunc qf = quicken(sc, 0, slots);
  uint64_t nops = 0;
  for (const QJsInstr& q : qf.code) {
    nops += q.nops;
    // Every instruction's packed category lanes must sum to exactly 4.
    uint64_t lanes = 0;
    for (size_t i = 0; i < 8; ++i) lanes += (q.cat_packed >> (8 * i)) & 0xff;
    EXPECT_EQ(lanes, 4u);
  }
  EXPECT_EQ(nops, sc.protos[0].code.size());
  EXPECT_EQ(qf.code[0].op, QJsOp::FConstSet);
  EXPECT_EQ(qf.code[1].op, QJsOp::FGetConstSet_Mul);
  EXPECT_EQ(qf.code[2].op, QJsOp::FSetIdxPop);
  EXPECT_EQ(qf.code[3].op, QJsOp::ReturnUndef);
}

TEST(JsQuickenTranslate, PropSitesGetDistinctCacheSlots) {
  const ScriptCode sc = make_script({{JsOp::GetProp, 0},
                                     {JsOp::GetProp, 0},
                                     {JsOp::SetProp, 0},
                                     {JsOp::CallMethod, 0, 0}},
                                    {}, {"x"});
  uint32_t slots = 5;  // pre-advanced: slots continue across protos
  const QJsFunc qf = quicken(sc, 0, slots);
  EXPECT_EQ(qf.code[0].b, 5u);
  EXPECT_EQ(qf.code[1].b, 6u);
  EXPECT_EQ(qf.code[2].b, 7u);
  EXPECT_EQ(qf.code[3].c, 8u);
  EXPECT_EQ(slots, 9u);
}

// ----------------------------------------------------- dual-runner gates

struct RunOutcome {
  bool ok = false;
  std::string error;
  double value = 0;
  bool value_is_number = false;
  JsExecStats stats;
  GcStats gc;
};

RunOutcome run_source(const std::string& source, bool quicken_on, uint64_t fuel,
                      size_t gc_threshold = 4 << 20) {
  std::string error;
  auto code = compile_script(source, error);
  EXPECT_TRUE(code.has_value()) << error;
  RunOutcome out;
  if (!code) return out;
  Heap heap(gc_threshold);
  Vm vm(*code, heap);
  vm.set_quicken(quicken_on);
  vm.set_fuel(fuel);
  auto top = vm.run_top_level();
  if (!top.ok) {
    out.ok = false;
    out.error = top.error;
  } else {
    auto r = vm.call_function("main", {});
    out.ok = r.ok;
    out.error = r.error;
    out.value_is_number = r.ok && r.value.is_number();
    if (out.value_is_number) out.value = r.value.num();
  }
  out.stats = vm.stats();
  out.gc = heap.stats();
  return out;
}

void expect_identical(const RunOutcome& classic, const RunOutcome& quick,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(classic.ok, quick.ok);
  EXPECT_EQ(classic.error, quick.error);
  EXPECT_EQ(classic.value_is_number, quick.value_is_number);
  if (classic.value_is_number && quick.value_is_number) {
    // Bit compare so -0.0 vs 0.0 and NaN payloads cannot slip through.
    EXPECT_EQ(JsValue::number(classic.value).bits, JsValue::number(quick.value).bits);
  }
  EXPECT_EQ(classic.stats.ops_executed, quick.stats.ops_executed);
  EXPECT_EQ(classic.stats.cost_ps, quick.stats.cost_ps);
  EXPECT_EQ(classic.stats.arith_counts, quick.stats.arith_counts);
  EXPECT_EQ(classic.stats.tierups, quick.stats.tierups);
  EXPECT_EQ(classic.stats.host_calls, quick.stats.host_calls);
  EXPECT_EQ(classic.gc.collections, quick.gc.collections);
  EXPECT_EQ(classic.gc.objects_allocated, quick.gc.objects_allocated);
  EXPECT_EQ(classic.gc.objects_freed, quick.gc.objects_freed);
  EXPECT_EQ(classic.gc.live_bytes, quick.gc.live_bytes);
  EXPECT_EQ(classic.gc.peak_live_bytes, quick.gc.peak_live_bytes);
  EXPECT_EQ(classic.gc.peak_external_bytes, quick.gc.peak_external_bytes);
}

void expect_both_engines_identical(const std::string& source,
                                   uint64_t fuel = 100'000'000,
                                   size_t gc_threshold = 4 << 20) {
  const RunOutcome classic = run_source(source, false, fuel, gc_threshold);
  const RunOutcome quick = run_source(source, true, fuel, gc_threshold);
  expect_identical(classic, quick, "fuel=" + std::to_string(fuel));
}

TEST(JsQuicken, HotLoopIdentical) {
  expect_both_engines_identical(R"(
    function main() {
      var acc = 0;
      for (var i = 0; i < 5000; i++) acc = (acc + i * 3) | 0;
      return acc;
    }
  )");
}

TEST(JsQuicken, StringConcatInFusedAddIdentical) {
  // The fused Add's slow path allocates; GC counts must still match with
  // a tight threshold forcing collections mid-loop.
  expect_both_engines_identical(R"(
    function main() {
      var n = 0;
      for (var i = 0; i < 400; i++) {
        var a = "ab";
        var b = "cd";
        var c = a + b;
        n += c.length;
      }
      return n;
    }
  )",
                                100'000'000, 16 << 10);
}

TEST(JsQuicken, TypedAndBoxedIndexingIdentical) {
  expect_both_engines_identical(R"(
    var ta = new Int32Array(64);
    var boxed = [0, 0, 0, 0];
    function main() {
      var sum = 0;
      for (var i = 0; i < 1000; i++) {
        ta[i & 63] = i;
        boxed[i & 3] = i * 2;
        sum = (sum + ta[i & 63] + boxed[i & 3]) | 0;
      }
      return sum;
    }
  )");
}

TEST(JsQuicken, TierUpTimingIdentical) {
  // Enough iterations to cross the tier-up threshold on back-edges; the
  // tier switch must land on the same dispatch in both engines.
  expect_both_engines_identical(R"(
    function hot(x) {
      var s = 0;
      for (var i = 0; i < 40; i++) s = (s + x * i) | 0;
      return s;
    }
    function main() {
      var acc = 0;
      for (var j = 0; j < 1500; j++) acc = (acc + hot(j)) | 0;
      return acc;
    }
  )");
}

TEST(JsQuicken, GcHeavyObjectChurnIdentical) {
  expect_both_engines_identical(R"(
    function main() {
      var keep = 0;
      for (var i = 0; i < 3000; i++) {
        var o = { a: i, b: i * 2, c: [i, i + 1, i + 2] };
        o.d = o.a + o.b;
        keep = (keep + o.d) | 0;
      }
      return keep;
    }
  )",
                                100'000'000, 32 << 10);
}

TEST(JsQuicken, TrapsIdentical) {
  // Runtime failures must carry the same message from both engines.
  for (const char* src : {
           "function main() { var x = 1; return x.foo; }",
           "function main() { var a = [1]; a[-1] = 2; return 0; }",
           "function main() { return main(); }",  // depth exhaustion
       }) {
    expect_both_engines_identical(src);
  }
}

// ------------------------------------------------------- inline caches

TEST(JsQuicken, MonomorphicPropertyAccessIdentical) {
  expect_both_engines_identical(R"(
    var obj = { x: 1, y: 2, z: 3 };
    function main() {
      var s = 0;
      for (var i = 0; i < 2000; i++) s = (s + obj.z) | 0;
      return s;
    }
  )");
}

TEST(JsQuicken, PolymorphicBeyondCacheCapacityIdentical) {
  // Six shapes through one access site: exceeds the 4-way cache, forcing
  // round-robin eviction; results must be unchanged.
  expect_both_engines_identical(R"(
    function get(o) { return o.v; }
    function main() {
      var shapes = [
        { v: 1 }, { a: 0, v: 2 }, { a: 0, b: 0, v: 3 },
        { a: 0, b: 0, c: 0, v: 4 }, { a: 0, b: 0, c: 0, d: 0, v: 5 },
        { a: 0, b: 0, c: 0, d: 0, e: 0, v: 6 }
      ];
      var s = 0;
      for (var i = 0; i < 600; i++) s = (s + get(shapes[i % 6])) | 0;
      return s;
    }
  )");
}

TEST(JsQuicken, ShapeChangeInvalidatesCachedSlot) {
  // The same site reads o.v before and after appending properties; a
  // stale cached slot would return the wrong property's value.
  expect_both_engines_identical(R"(
    function get(o) { return o.v; }
    function main() {
      var o = { v: 7 };
      var before = 0;
      for (var i = 0; i < 50; i++) before += get(o);
      o.w = 100;
      o.v = 9;
      var after = 0;
      for (var j = 0; j < 50; j++) after += get(o);
      return before * 1000 + after;
    }
  )");
}

TEST(JsQuicken, RecycledRefsDoNotAliasStaleCacheEntries) {
  // A tight GC threshold forces collections; freed slots are recycled by
  // the free list, so the same ObjRef passes through one access site
  // holding different objects. The serial check must catch every reuse.
  expect_both_engines_identical(R"(
    function get(o) { return o.k; }
    function main() {
      var s = 0;
      for (var i = 0; i < 2000; i++) {
        var o = { k: i, pad: [i, i, i, i, i, i, i, i] };
        s = (s + get(o)) | 0;
      }
      return s;
    }
  )",
                                100'000'000, 8 << 10);
}

// -------------------------------------------------------- fuel sweeping

TEST(JsQuicken, FuelExhaustionSweepAcrossFusedBoundaries) {
  // Walks the trap boundary through every dispatch of a program that
  // exercises each hazard class: fused indexed stores, fused adds that
  // may concatenate, compare-and-branch fusions, calls, and allocation.
  const std::string source = R"(
    var ta = new Int32Array(8);
    var boxed = [0, 0, 0];
    function main() {
      var s = "x";
      var t = "y";
      var u = s + t;
      var acc = 0;
      for (var i = 0; i < 12; i++) {
        ta[i & 7] = i;
        boxed[i % 3] = i * 2;
        acc = (acc + i) | 0;
      }
      return acc + u.length + boxed[0] + ta[1];
    }
  )";
  for (uint64_t fuel = 0; fuel <= 420; ++fuel) {
    const RunOutcome classic = run_source(source, false, fuel);
    const RunOutcome quick = run_source(source, true, fuel);
    expect_identical(classic, quick, "fuel=" + std::to_string(fuel));
    if (classic.ok && quick.ok) break;  // sweep done: program completed
  }
}

TEST(JsQuicken, FuelSweepOverFailingIndexedStore) {
  // The fused SetIndex+Pop's failure path (negative index) at every fuel
  // value: the trap must preempt the Pop charge exactly as in classic.
  const std::string source = R"(
    function main() {
      var a = [1, 2, 3];
      var j = 0 - 1;
      a[j] = 5;
      return a[0];
    }
  )";
  for (uint64_t fuel = 0; fuel <= 60; ++fuel) {
    const RunOutcome classic = run_source(source, false, fuel);
    const RunOutcome quick = run_source(source, true, fuel);
    expect_identical(classic, quick, "fuel=" + std::to_string(fuel));
  }
}

}  // namespace
}  // namespace wb::js
