// Whole-corpus JS quickening gate (slow tier): every hand-written JS
// benchmark (paper Table 9) and every compiled benchmark's generated JS
// must produce the same result and bit-identical JsExecStats and GC
// statistics on the quickened threaded engine as on the classic switch
// loop — and the recorded boundary event stream (wb::replay: every
// intercepted builtin call's arg/result bits, in order) must be
// byte-identical too, which is strictly stronger than the host_calls
// counter agreeing. The JS-side twin of quicken_corpus_test.cpp and the
// CI-side twin of the fuzz harness's js-quicken oracle.
#include <gtest/gtest.h>

#include <string>

#include "benchmarks/registry.h"
#include "core/study.h"
#include "js/engine.h"
#include "js/interp.h"
#include "replay/record.h"

namespace wb {
namespace {

struct RunOutcome {
  bool ok = false;
  std::string error;
  uint64_t value_bits = 0;
  js::JsExecStats stats;
  js::GcStats gc;
  replay::Trace boundary;  ///< recorded boundary event stream
};

RunOutcome run_engine(const js::ScriptCode& code, bool quicken) {
  js::Heap heap;
  js::Vm vm(code, heap);
  vm.set_quicken(quicken);
  vm.set_fuel(2'000'000'000);
  RunOutcome out;
  replay::TraceRecorder recorder(out.boundary);
  vm.set_recorder(&recorder);
  auto top = vm.run_top_level();
  if (!top.ok) {
    out.error = top.error;
  } else {
    auto r = vm.call_function("main", {});
    out.ok = r.ok;
    out.error = r.error;
    if (r.ok) out.value_bits = r.value.bits;
  }
  out.stats = vm.stats();
  out.gc = heap.stats();
  return out;
}

void expect_engines_identical(const std::string& js_source, const std::string& what) {
  SCOPED_TRACE(what);
  std::string error;
  auto code = js::compile_script(js_source, error);
  ASSERT_TRUE(code.has_value()) << error;
  const RunOutcome classic = run_engine(*code, false);
  const RunOutcome quick = run_engine(*code, true);
  EXPECT_EQ(classic.ok, quick.ok);
  EXPECT_EQ(classic.error, quick.error);
  EXPECT_EQ(classic.value_bits, quick.value_bits);
  EXPECT_EQ(classic.stats.ops_executed, quick.stats.ops_executed);
  EXPECT_EQ(classic.stats.cost_ps, quick.stats.cost_ps);
  EXPECT_EQ(classic.stats.arith_counts, quick.stats.arith_counts);
  EXPECT_EQ(classic.stats.tierups, quick.stats.tierups);
  EXPECT_EQ(classic.stats.host_calls, quick.stats.host_calls);
  EXPECT_EQ(classic.gc.collections, quick.gc.collections);
  EXPECT_EQ(classic.gc.objects_allocated, quick.gc.objects_allocated);
  EXPECT_EQ(classic.gc.objects_freed, quick.gc.objects_freed);
  EXPECT_EQ(classic.gc.live_bytes, quick.gc.live_bytes);
  EXPECT_EQ(classic.gc.peak_live_bytes, quick.gc.peak_live_bytes);
  EXPECT_EQ(classic.gc.peak_external_bytes, quick.gc.peak_external_bytes);
  // The boundary streams must agree event-for-event, bits-for-bits.
  EXPECT_EQ(classic.boundary.events, quick.boundary.events);
}

class ManualJsQuicken : public testing::TestWithParam<const benchmarks::ManualJs*> {};

TEST_P(ManualJsQuicken, QuickenedMatchesClassicBitForBit) {
  expect_engines_identical(GetParam()->source, GetParam()->name);
}

INSTANTIATE_TEST_SUITE_P(Corpus, ManualJsQuicken, testing::ValuesIn([] {
                           std::vector<const benchmarks::ManualJs*> ptrs;
                           for (const auto& m : benchmarks::manual_js_benchmarks()) {
                             ptrs.push_back(&m);
                           }
                           return ptrs;
                         }()),
                         [](const testing::TestParamInfo<const benchmarks::ManualJs*>& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

class CompiledJsQuicken : public testing::TestWithParam<const core::BenchSource*> {};

TEST_P(CompiledJsQuicken, QuickenedMatchesClassicBitForBit) {
  const core::BenchSource& bench = *GetParam();
  const core::BuildResult build =
      core::build(bench, core::InputSize::XS, ir::OptLevel::O2);
  ASSERT_TRUE(build.ok) << bench.name << ": " << build.error;
  expect_engines_identical(build.js_source, bench.name);
}

INSTANTIATE_TEST_SUITE_P(Corpus, CompiledJsQuicken, testing::ValuesIn([] {
                           std::vector<const core::BenchSource*> out;
                           for (const auto& b : benchmarks::all_benchmarks()) {
                             out.push_back(&b);
                           }
                           return out;
                         }()),
                         [](const testing::TestParamInfo<const core::BenchSource*>& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wb
