#include "support/json.h"

#include <gtest/gtest.h>

namespace json = wb::support::json;

namespace {

json::Value parse_ok(const std::string& text) {
  std::string error;
  auto v = json::parse(text, error);
  EXPECT_TRUE(v.has_value()) << error;
  return v.value_or(json::Value());
}

std::string parse_error(const std::string& text) {
  std::string error;
  auto v = json::parse(text, error);
  EXPECT_FALSE(v.has_value()) << "unexpectedly parsed: " << text;
  return error;
}

TEST(Json, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_EQ(parse_ok("true").as_bool(), true);
  EXPECT_EQ(parse_ok("false").as_bool(), false);
  EXPECT_EQ(parse_ok("42").as_int(), 42);
  EXPECT_EQ(parse_ok("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_ok("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_ok("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse_ok("\"hi\\n\\\"there\\\"\"").as_string(), "hi\n\"there\"");
}

TEST(Json, Int64RoundTripsExactly) {
  // cost_ps values must never pass through a double.
  const int64_t big = 9007199254740993;  // 2^53 + 1, not representable as double
  const json::Value v = parse_ok(std::to_string(big));
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), big);
  EXPECT_EQ(v.dump(), std::to_string(big));
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  const json::Value v = parse_ok(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v.is_object());
  const json::Object& o = v.as_object();
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
  EXPECT_EQ(v.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, FindAndNesting) {
  const json::Value v =
      parse_ok(R"({"cells": [{"name": "gemm", "cost_ps": 123}], "n": 1})");
  const json::Value* cells = v.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_TRUE(cells->is_array());
  ASSERT_EQ(cells->as_array().size(), 1u);
  const json::Value& cell = cells->as_array()[0];
  ASSERT_NE(cell.find("cost_ps"), nullptr);
  EXPECT_EQ(cell.find("cost_ps")->as_int(), 123);
  EXPECT_EQ(cell.find("absent"), nullptr);
}

TEST(Json, DumpPrettyRoundTrips) {
  json::Object inner;
  inner.emplace_back("cost_ps", int64_t{981273123});
  inner.emplace_back("sha256", "abc123");
  json::Object root;
  root.emplace_back("schema_version", 1);
  root.emplace_back("cells", json::Array{json::Value(std::move(inner))});
  const json::Value doc{std::move(root)};

  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const json::Value again = parse_ok(pretty);
  EXPECT_EQ(again.dump(), doc.dump());
  EXPECT_EQ(again.dump(2), pretty);
}

TEST(Json, StringEscapes) {
  const json::Value v = parse_ok(R"("tab\tnl\nuA")");
  EXPECT_EQ(v.as_string(), "tab\tnl\nuA");
  // Control characters are re-escaped on dump.
  EXPECT_EQ(json::Value(std::string("a\x01""b")).dump(), R"("a\u0001b")");
}

TEST(Json, Errors) {
  EXPECT_NE(parse_error("{"), "");
  EXPECT_NE(parse_error("[1,]"), "");
  EXPECT_NE(parse_error("\"unterminated"), "");
  EXPECT_NE(parse_error("12 34"), "");
  EXPECT_NE(parse_error("{\"a\":1,\"a\":2}"), "");  // duplicate keys rejected
  EXPECT_NE(parse_error(""), "");
  EXPECT_NE(parse_error("nul"), "");
}

}  // namespace
