// Whole-corpus JIT gate (slow tier): every benchmark at -O0 and -O2 must
// produce the same trap/result and bit-identical virtual metrics
// (cost_ps, ops_executed, arith_counts, calls, host_calls, memory_grows,
// tierups) with the copy-and-patch JIT as on the classic loop and the
// quickened loop without it, on both the baseline-pinned and
// optimizing-pinned tiers — and the recorded boundary event stream
// (wb::replay) must be byte-identical too. This is the corpus-scale
// version of jit_test.cpp and the CI-side twin of the fuzz harness's jit
// oracle.
#include <gtest/gtest.h>

#include "backend/wasm_backend.h"
#include "benchmarks/registry.h"
#include "core/study.h"
#include "replay/record.h"
#include "wasm/interp.h"

namespace wb {
namespace {

struct RunOutcome {
  wasm::Trap init_trap = wasm::Trap::None;
  wasm::InvokeResult main_result;
  wasm::ExecStats stats;
  size_t jit_compiled = 0;
  replay::Trace boundary;  ///< recorded boundary event stream
};

enum class Engine { Classic, Quickened, Jit };

RunOutcome run_engine(const backend::WasmArtifact& artifact, bool optimizing,
                      Engine engine) {
  wasm::Instance inst(artifact.module, backend::make_import_bindings(artifact));
  inst.set_quicken(engine != Engine::Classic);
  inst.set_jit(engine == Engine::Jit);
  wasm::TierPolicy policy;
  policy.baseline_enabled = !optimizing;
  policy.optimizing_enabled = optimizing;
  inst.set_tier_policy(policy);
  inst.set_fuel(200'000'000);
  RunOutcome out;
  replay::TraceRecorder recorder(out.boundary);
  inst.set_recorder(&recorder);
  out.init_trap = inst.invoke("__init", {}).trap;
  if (out.init_trap == wasm::Trap::None) {
    out.main_result = inst.invoke("main", {});
  }
  out.stats = inst.stats();
  out.jit_compiled = inst.jit_compiled_functions();
  return out;
}

void expect_same(const RunOutcome& ref, const RunOutcome& got) {
  EXPECT_EQ(ref.init_trap, got.init_trap);
  EXPECT_EQ(ref.main_result.trap, got.main_result.trap);
  if (ref.main_result.ok() && got.main_result.ok()) {
    EXPECT_EQ(ref.main_result.value.bits, got.main_result.value.bits);
  }
  EXPECT_EQ(ref.stats.ops_executed, got.stats.ops_executed);
  EXPECT_EQ(ref.stats.cost_ps, got.stats.cost_ps);
  EXPECT_EQ(ref.stats.arith_counts, got.stats.arith_counts);
  EXPECT_EQ(ref.stats.calls, got.stats.calls);
  EXPECT_EQ(ref.stats.host_calls, got.stats.host_calls);
  EXPECT_EQ(ref.stats.memory_grows, got.stats.memory_grows);
  EXPECT_EQ(ref.stats.tierups, got.stats.tierups);
  // The boundary streams must agree event-for-event, bits-for-bits.
  EXPECT_EQ(ref.boundary.events, got.boundary.events);
}

class JitCorpus : public testing::TestWithParam<const core::BenchSource*> {};

TEST_P(JitCorpus, JitMatchesClassicAndQuickenedBitForBit) {
  const core::BenchSource& bench = *GetParam();
  size_t jit_compiled_total = 0;
  for (const ir::OptLevel level : {ir::OptLevel::O0, ir::OptLevel::O2}) {
    const core::BuildResult build =
        core::build(bench, core::InputSize::XS, level);
    ASSERT_TRUE(build.ok) << bench.name << ": " << build.error;
    for (const bool optimizing : {false, true}) {
      SCOPED_TRACE(std::string(bench.name) + " at " + to_string(level) +
                   (optimizing ? " optimizing" : " baseline"));
      const RunOutcome classic = run_engine(build.wasm, optimizing, Engine::Classic);
      const RunOutcome quick = run_engine(build.wasm, optimizing, Engine::Quickened);
      const RunOutcome jit = run_engine(build.wasm, optimizing, Engine::Jit);
      expect_same(classic, quick);
      expect_same(classic, jit);
      jit_compiled_total += jit.jit_compiled;
    }
  }
  // Not every benchmark has a JIT-eligible leaf, but the corpus-wide run
  // must exercise compiled code somewhere; asserting per-benchmark would
  // over-fit, so the smoke signal here is merely "counter is wired".
  (void)jit_compiled_total;
}

std::vector<const core::BenchSource*> all() {
  std::vector<const core::BenchSource*> out;
  for (const auto& b : benchmarks::all_benchmarks()) out.push_back(&b);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Corpus, JitCorpus, testing::ValuesIn(all()),
                         [](const testing::TestParamInfo<const core::BenchSource*>& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wb
