// wb::attr unit + white-box tests (tier1).
//
// The contract under test (DESIGN.md §13):
//  1. Splitting any cost across causes is exact: the lanes of
//     split_*_class(cls, c) sum to exactly c, for every class and any c.
//  2. End-to-end, PageMetrics::attr_ps sums to PageMetrics::cost_ps
//     bit-exactly, and the VM-side counters reproduce cost_ps through
//     counted_cost_ps, on both VMs and both engines (classic/quickened).
//  3. Toggling report-level attribution on/off changes no observable:
//     the VMs count unconditionally, decomposition is pure arithmetic.
//  4. White-box: a bounds-check-heavy kernel attributes real time to
//     Cause::BoundsCheck in both VMs.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>

#include "attr/attr.h"
#include "backend/wasm_backend.h"
#include "benchmarks/registry.h"
#include "core/study.h"
#include "env/env.h"
#include "js/engine.h"
#include "js/quicken.h"
#include "wasm/quicken.h"

namespace wb {
namespace {

/// Restores the process-wide toggles a test flips.
struct GlobalGuard {
  ~GlobalGuard() {
    attr::set_enabled(true);
    wasm::set_quicken_default(true);
    js::set_quicken_default(true);
  }
};

const core::BenchSource& bench(const char* name) {
  const core::BenchSource* b = benchmarks::find_benchmark(name);
  EXPECT_NE(b, nullptr) << name;
  return *b;
}

// ------------------------------------------------------------ split units

TEST(AttrSplit, CauseNamesAreSchemaOrder) {
  // goldens/attr.json keys on these names in this order; changing either
  // is a schema change and must bump wb_attr's kSchemaVersion.
  const std::array<const char*, attr::kCauseCount> expected = {
      "useful",      "dispatch", "bounds_check", "locals_traffic", "call_overhead",
      "memory_growth", "tier_compile", "startup", "gc_pause", "ic_miss"};
  for (size_t i = 0; i < attr::kCauseCount; ++i) {
    EXPECT_STREQ(attr::to_string(static_cast<attr::Cause>(i)), expected[i]);
  }
}

TEST(AttrSplit, WasmClassSplitsAreExact) {
  const uint64_t costs[] = {0, 1, 2, 3, 7, 130, 999, 1000, 1001, 12345, 3'000'000'007ull};
  for (size_t cls = 0; cls < wasm::kOpClassCount; ++cls) {
    for (const uint64_t c : costs) {
      const attr::CauseVec v =
          attr::split_wasm_class(static_cast<wasm::OpClass>(cls), c);
      EXPECT_EQ(attr::total(v), c) << "class " << cls << " cost " << c;
    }
  }
}

TEST(AttrSplit, JsClassSplitsAreExact) {
  const uint64_t costs[] = {0, 1, 2, 3, 7, 90, 999, 1000, 1001, 12345, 3'000'000'007ull};
  for (size_t cls = 0; cls < js::kJsOpClassCount; ++cls) {
    for (const uint64_t c : costs) {
      const attr::CauseVec v = attr::split_js_class(static_cast<js::JsOpClass>(cls), c);
      EXPECT_EQ(attr::total(v), c) << "class " << cls << " cost " << c;
    }
  }
}

TEST(AttrSplit, DecomposeMatchesCountedCost) {
  // Synthetic counters: decompose must reproduce the counter-side total.
  wasm::AttrStats a;
  std::array<wasm::CostTable, 2> tables{};
  for (size_t t = 0; t < 2; ++t) {
    for (size_t c = 0; c < wasm::kOpClassCount; ++c) {
      a.class_counts[t][c] = 7 * t + 3 * c + 1;
      tables[t][c] = 100 + 13 * c + 7 * t;
    }
  }
  a.add_direct(attr::Cause::Startup, 123456);
  a.add_direct(attr::Cause::MemoryGrowth, 789);
  const attr::CauseVec v = attr::decompose_wasm(a, tables);
  EXPECT_EQ(attr::total(v), attr::counted_cost_ps(a, tables));
}

// --------------------------------------------------------- VM-direct sums

TEST(AttrVm, JsCountersReproduceCostPsBothEngines) {
  GlobalGuard guard;
  const core::BuildResult b =
      core::build(bench("gemm"), core::InputSize::XS, ir::OptLevel::O2);
  ASSERT_TRUE(b.ok) << b.error;
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  for (const bool quick : {false, true}) {
    js::set_quicken_default(quick);
    std::string error;
    auto code = js::compile_script(b.js_source, error);
    ASSERT_TRUE(code) << error;
    js::Heap heap(4 << 20);
    js::Vm vm(*code, heap);
    vm.set_cost_tables(browser.js_tier_costs(false), browser.js_tier_costs(true));
    vm.set_fuel(4'000'000'000ull);
    ASSERT_TRUE(vm.run_top_level().ok);
    ASSERT_TRUE(vm.call_function("main", {}).ok);
    EXPECT_EQ(attr::counted_cost_ps(vm.attr_stats(), vm.cost_tables()),
              vm.stats().cost_ps)
        << "quicken=" << quick;
    EXPECT_EQ(attr::total(attr::decompose_js(vm.attr_stats(), vm.cost_tables())),
              vm.stats().cost_ps)
        << "quicken=" << quick;
  }
}

TEST(AttrVm, WasmCountersReproduceCostPsBothEngines) {
  GlobalGuard guard;
  const core::BuildResult b =
      core::build(bench("gemm"), core::InputSize::XS, ir::OptLevel::O2);
  ASSERT_TRUE(b.ok) << b.error;
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  for (const bool quick : {false, true}) {
    wasm::set_quicken_default(quick);
    uint64_t boundary_calls = 0;
    wasm::Instance inst(b.wasm.module,
                        backend::make_import_bindings(b.wasm, &boundary_calls));
    inst.set_cost_tables(browser.wasm_tier_costs(false, {}),
                         browser.wasm_tier_costs(true, {}));
    inst.set_fuel(4'000'000'000ull);
    ASSERT_TRUE(inst.invoke("__init", {}).ok());
    ASSERT_TRUE(inst.invoke("main", {}).ok());
    EXPECT_EQ(attr::counted_cost_ps(inst.attr_stats(), inst.cost_tables()),
              inst.stats().cost_ps)
        << "quicken=" << quick;
    EXPECT_EQ(attr::total(attr::decompose_wasm(inst.attr_stats(), inst.cost_tables())),
              inst.stats().cost_ps)
        << "quicken=" << quick;
  }
}

// -------------------------------------------------------------- end-to-end

TEST(AttrEnv, LanesSumToCostPs) {
  GlobalGuard guard;
  const env::BrowserEnv browser(env::Browser::Firefox, env::Platform::Desktop);
  const core::Measurement m = core::measure(bench("atax"), core::InputSize::XS,
                                            ir::OptLevel::O2, browser);
  ASSERT_TRUE(m.wasm.ok) << m.wasm.error;
  ASSERT_TRUE(m.js.ok) << m.js.error;
  EXPECT_EQ(attr::total(m.wasm.attr_ps), m.wasm.cost_ps);
  EXPECT_EQ(attr::total(m.js.attr_ps), m.js.cost_ps);
}

TEST(AttrEnv, TogglingAttributionChangesNoObservable) {
  GlobalGuard guard;
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  for (const bool quick : {false, true}) {
    wasm::set_quicken_default(quick);
    js::set_quicken_default(quick);
    attr::set_enabled(true);
    const core::Measurement on = core::measure(bench("mvt"), core::InputSize::XS,
                                               ir::OptLevel::O2, browser);
    attr::set_enabled(false);
    const core::Measurement off = core::measure(bench("mvt"), core::InputSize::XS,
                                                ir::OptLevel::O2, browser);
    attr::set_enabled(true);
    ASSERT_TRUE(on.wasm.ok && on.js.ok && off.wasm.ok && off.js.ok);
    // Every virtual observable is bit-identical with attribution on/off.
    EXPECT_EQ(on.wasm.cost_ps, off.wasm.cost_ps) << "quicken=" << quick;
    EXPECT_EQ(on.wasm.ops, off.wasm.ops) << "quicken=" << quick;
    EXPECT_EQ(on.wasm.memory_bytes, off.wasm.memory_bytes) << "quicken=" << quick;
    EXPECT_EQ(on.wasm.result, off.wasm.result) << "quicken=" << quick;
    EXPECT_EQ(on.js.cost_ps, off.js.cost_ps) << "quicken=" << quick;
    EXPECT_EQ(on.js.ops, off.js.ops) << "quicken=" << quick;
    EXPECT_EQ(on.js.memory_bytes, off.js.memory_bytes) << "quicken=" << quick;
    EXPECT_EQ(on.js.result, off.js.result) << "quicken=" << quick;
    // On: lanes sum to cost_ps. Off: the report-level vector stays empty.
    EXPECT_EQ(attr::total(on.wasm.attr_ps), on.wasm.cost_ps) << "quicken=" << quick;
    EXPECT_EQ(attr::total(off.wasm.attr_ps), 0u) << "quicken=" << quick;
    EXPECT_EQ(attr::total(off.js.attr_ps), 0u) << "quicken=" << quick;
  }
}

TEST(AttrEnv, QuickenedAndClassicAttributionsAreBitIdentical) {
  GlobalGuard guard;
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  wasm::set_quicken_default(true);
  js::set_quicken_default(true);
  const core::Measurement q = core::measure(bench("bicg"), core::InputSize::XS,
                                            ir::OptLevel::O2, browser);
  wasm::set_quicken_default(false);
  js::set_quicken_default(false);
  const core::Measurement c = core::measure(bench("bicg"), core::InputSize::XS,
                                            ir::OptLevel::O2, browser);
  ASSERT_TRUE(q.wasm.ok && q.js.ok && c.wasm.ok && c.js.ok);
  EXPECT_EQ(q.wasm.attr_ps, c.wasm.attr_ps);
  EXPECT_EQ(q.js.attr_ps, c.js.attr_ps);
}

TEST(AttrEnv, BoundsHeavyKernelChargesTheGuardCause) {
  GlobalGuard guard;
  // gemm is array traffic end to end: every load/store carries the
  // explicit guard lane, so BoundsCheck must attribute real time in both
  // VMs (the Wasm Load/Store split and the JS Index split).
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  const core::Measurement m = core::measure(bench("gemm"), core::InputSize::XS,
                                            ir::OptLevel::O2, browser);
  ASSERT_TRUE(m.wasm.ok && m.js.ok);
  const auto lane = [](const attr::CauseVec& v, attr::Cause c) {
    return v[static_cast<size_t>(c)];
  };
  EXPECT_GT(lane(m.wasm.attr_ps, attr::Cause::BoundsCheck), 0u);
  EXPECT_GT(lane(m.wasm.attr_ps, attr::Cause::Dispatch), 0u);
  EXPECT_GT(lane(m.wasm.attr_ps, attr::Cause::LocalsTraffic), 0u);
  EXPECT_GT(lane(m.wasm.attr_ps, attr::Cause::Useful), 0u);
  EXPECT_GT(lane(m.wasm.attr_ps, attr::Cause::Startup), 0u);
  EXPECT_GT(lane(m.js.attr_ps, attr::Cause::BoundsCheck), 0u);
  EXPECT_GT(lane(m.js.attr_ps, attr::Cause::Useful), 0u);
  // The useful residual dominates dispatch-class overheads on a compute
  // kernel — the decomposition is a breakdown, not noise.
  EXPECT_GT(lane(m.wasm.attr_ps, attr::Cause::Useful),
            lane(m.wasm.attr_ps, attr::Cause::BoundsCheck));
}

}  // namespace
}  // namespace wb
