// The hand-written JS benchmarks (paper Table 9) must agree with their
// compiled counterparts' checksums at M input (except SHA (W3C), which
// intentionally computes a different hash through the WebCrypto API).
#include <gtest/gtest.h>

#include "benchmarks/registry.h"
#include "core/study.h"
#include "ir/exec.h"
#include "js/engine.h"

namespace wb::benchmarks {
namespace {

int32_t run_manual(const ManualJs& m, bool& ok, std::string& error) {
  auto code = js::compile_script(m.source, error);
  if (!code) {
    ok = false;
    return 0;
  }
  js::Heap heap;
  js::Vm vm(*code, heap);
  vm.set_fuel(2'000'000'000);
  auto top = vm.run_top_level();
  if (!top.ok) {
    ok = false;
    error = top.error;
    return 0;
  }
  auto r = vm.call_function("main", {});
  ok = r.ok;
  error = r.error;
  return r.ok && r.value.is_number() ? js::to_int32(r.value.num()) : 0;
}

class ManualJsCorpus : public testing::TestWithParam<const ManualJs*> {};

TEST_P(ManualJsCorpus, RunsAndMatchesCompiledChecksum) {
  const ManualJs& m = *GetParam();
  bool ok = true;
  std::string error;
  const int32_t manual_result = run_manual(m, ok, error);
  ASSERT_TRUE(ok) << m.name << ": " << error;

  if (m.name == "SHA (W3C)") {
    // Different algorithm (SHA-256 via WebCrypto); just require it ran.
    EXPECT_NE(manual_result, 0);
    return;
  }

  const core::BenchSource* bench = find_benchmark(m.bench_name);
  ASSERT_NE(bench, nullptr) << m.bench_name;
  const core::BuildResult b = core::build(*bench, core::InputSize::M, ir::OptLevel::O2);
  ASSERT_TRUE(b.ok) << b.error;
  const core::NativeMetrics native = core::run_native(b);
  ASSERT_TRUE(native.ok) << native.error;
  EXPECT_EQ(manual_result, native.result) << m.name << " vs compiled " << m.bench_name;
}

INSTANTIATE_TEST_SUITE_P(All, ManualJsCorpus, testing::ValuesIn([] {
                           std::vector<const ManualJs*> ptrs;
                           for (const auto& m : manual_js_benchmarks()) ptrs.push_back(&m);
                           return ptrs;
                         }()),
                         [](const testing::TestParamInfo<const ManualJs*>& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(ManualJsRegistry, HasElevenTableNineRows) {
  EXPECT_EQ(manual_js_benchmarks().size(), 11u);
  size_t library_rows = 0;
  for (const auto& m : manual_js_benchmarks()) library_rows += m.library_style;
  EXPECT_EQ(library_rows, 2u);  // math.js + jsSHA
}

}  // namespace
}  // namespace wb::benchmarks
