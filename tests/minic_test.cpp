// Frontend tests: compile mini-C snippets to IR and execute them with the
// reference executor, checking C semantics end to end.
#include <gtest/gtest.h>

#include "ir/exec.h"
#include "minic/minic.h"

namespace wb::minic {
namespace {

ir::Module compile_or_die(const std::string& source, CompileOptions opts = {}) {
  std::string error;
  auto m = compile(source, opts, error);
  EXPECT_TRUE(m.has_value()) << error << "\nsource:\n" << source;
  return m ? std::move(*m) : ir::Module{};
}

int32_t run_main_i32(const std::string& source, CompileOptions opts = {}) {
  ir::Module m = compile_or_die(source, std::move(opts));
  ir::Executor exec(m);
  const ir::ExecResult r = exec.run("main");
  EXPECT_TRUE(r.ok) << r.error;
  return r.as_i32();
}

int32_t eval_body(const std::string& body) {
  return run_main_i32("int main(void) { " + body + " }");
}

TEST(MiniC, ArithmeticAndPrecedence) {
  EXPECT_EQ(eval_body("return 2 + 3 * 4;"), 14);
  EXPECT_EQ(eval_body("return (2 + 3) * 4;"), 20);
  EXPECT_EQ(eval_body("return 17 / 5;"), 3);
  EXPECT_EQ(eval_body("return -17 / 5;"), -3);  // C truncates toward zero
  EXPECT_EQ(eval_body("return -17 % 5;"), -2);
  EXPECT_EQ(eval_body("return 1 << 10;"), 1024);
  EXPECT_EQ(eval_body("return -16 >> 2;"), -4);
}

TEST(MiniC, UnsignedSemantics) {
  EXPECT_EQ(eval_body("unsigned x = 0; x = x - 1; return x > 100 ? 1 : 0;"), 1);
  EXPECT_EQ(eval_body("unsigned x = 0xffffffff; return (int)(x >> 28);"), 15);
  EXPECT_EQ(eval_body("int x = -16; unsigned u = x; return (int)(u >> 28);"), 15);
  // Unsigned division differs from signed.
  EXPECT_EQ(eval_body("unsigned a = 0x80000000; return (int)(a / 2);"), 0x40000000);
}

TEST(MiniC, DoubleArithmetic) {
  EXPECT_EQ(eval_body("double x = 0.5; double y = 0.25; return (int)((x + y) * 4.0);"), 3);
  EXPECT_EQ(eval_body("double x = 7.0; return (int)(x / 2.0 * 2.0);"), 7);
  // (1.0/3.0)*3000.0 rounds to exactly 1000.0 in IEEE double.
  EXPECT_EQ(eval_body("return (int)(1.0 / 3.0 * 3000.0);"), 1000);
  EXPECT_EQ(eval_body("return (int)(10.0 / 4.0);"), 2);  // trunc toward zero
  EXPECT_EQ(eval_body("int i = 3; double d = i; return (int)(d * 1.5);"), 4);
}

TEST(MiniC, CharIsByteRange) {
  EXPECT_EQ(eval_body("unsigned char c = 250; c = c + 10; return c;"), 4);
  EXPECT_EQ(eval_body("unsigned char c = 0; c--; return c;"), 255);
}

TEST(MiniC, ComparisonChains) {
  EXPECT_EQ(eval_body("return (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) + (3 == 3) + (3 != 3);"),
            4);
}

TEST(MiniC, LogicalShortCircuit) {
  const std::string src = R"(
    int calls;
    int bump(void) { calls = calls + 1; return 1; }
    int main(void) {
      calls = 0;
      int a = 0 && bump();
      int b = 1 || bump();
      int c = 1 && bump();
      return calls * 100 + a * 10 + b + c;
    }
  )";
  EXPECT_EQ(run_main_i32(src), 102);
}

TEST(MiniC, TernarySelectsAndEvaluatesLazily) {
  const std::string src = R"(
    int calls;
    int bump(int v) { calls = calls + 1; return v; }
    int main(void) {
      calls = 0;
      int x = 1 ? bump(10) : bump(20);
      return x * 10 + calls;
    }
  )";
  EXPECT_EQ(run_main_i32(src), 101);
}

TEST(MiniC, ControlFlow) {
  EXPECT_EQ(eval_body("int s = 0; int i; for (i = 1; i <= 10; i++) s += i; return s;"), 55);
  EXPECT_EQ(eval_body("int s = 0; int i = 10; while (i) { s += i; i--; } return s;"), 55);
  EXPECT_EQ(eval_body("int n = 0; do { n++; } while (0); return n;"), 1);
  EXPECT_EQ(eval_body(
      "int s = 0; for (int i = 0; i < 100; i++) { if (i >= 10) break; s += i; } return s;"),
      45);
}

TEST(MiniC, ContinueInForReachesUpdate) {
  EXPECT_EQ(eval_body("int s = 0; for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; } "
                      "return s;"),
            20);
}

TEST(MiniC, BreakInsideForWithContinue) {
  EXPECT_EQ(eval_body("int s = 0; for (int i = 0; i < 100; i++) { if (i == 7) break; "
                      "if (i % 2) continue; s += i; } return s;"),
            2 + 4 + 6);
}

TEST(MiniC, NestedLoops) {
  EXPECT_EQ(eval_body("int s = 0; for (int i = 0; i < 5; i++) for (int j = 0; j < 5; j++) "
                      "s += i * j; return s;"),
            100);
}

TEST(MiniC, SwitchStatement) {
  const std::string src = R"(
    int pick(int x) {
      switch (x) {
        case 0: return 10;
        case 1:
        case 2: return 20;
        case 3: { int y = 30; return y; }
        default: return 99;
      }
    }
    int main(void) {
      return pick(0) + pick(1) + pick(2) + pick(3) * 10 + pick(7);
    }
  )";
  EXPECT_EQ(run_main_i32(src), 10 + 20 + 20 + 300 + 99);
}

TEST(MiniC, SwitchWithBreaks) {
  const std::string src = R"(
    int main(void) {
      int r = 0;
      int i;
      for (i = 0; i < 4; i++) {
        switch (i) {
          case 0: r += 1; break;
          case 1: r += 10; break;
          default: r += 100; break;
        }
      }
      return r;
    }
  )";
  EXPECT_EQ(run_main_i32(src), 211);
}

TEST(MiniC, GlobalsAndArrays) {
  const std::string src = R"(
    int counter = 5;
    double table[4] = {1.5, 2.5, 3.5, 4.5};
    int grid[3][3];
    int main(void) {
      counter += 2;
      int i, j;
      for (i = 0; i < 3; i++)
        for (j = 0; j < 3; j++)
          grid[i][j] = i * 3 + j;
      double s = 0.0;
      for (i = 0; i < 4; i++) s += table[i];
      return counter * 1000 + grid[2][1] * 10 + (int)s;
    }
  )";
  EXPECT_EQ(run_main_i32(src), 7000 + 70 + 12);
}

TEST(MiniC, LocalArraysWork) {
  const std::string src = R"(
    int main(void) {
      int tmp[8];
      int i;
      for (i = 0; i < 8; i++) tmp[i] = i * i;
      int s = 0;
      for (i = 0; i < 8; i++) s += tmp[i];
      return s;
    }
  )";
  EXPECT_EQ(run_main_i32(src), 140);
}

TEST(MiniC, ByteArrays) {
  const std::string src = R"(
    unsigned char buf[16];
    int main(void) {
      int i;
      for (i = 0; i < 16; i++) buf[i] = i * 20;
      int s = 0;
      for (i = 0; i < 16; i++) s += buf[i];
      return s;
    }
  )";
  int expect = 0;
  for (int i = 0; i < 16; i++) expect += (i * 20) & 0xff;
  EXPECT_EQ(run_main_i32(src), expect);
}

TEST(MiniC, FunctionsAndRecursion) {
  const std::string src = R"(
    int fib(int n) {
      if (n < 3) return 1;
      return fib(n - 1) + fib(n - 2);
    }
    int main(void) { return fib(12); }
  )";
  EXPECT_EQ(run_main_i32(src), 144);
}

TEST(MiniC, PrototypesAllowForwardCalls) {
  const std::string src = R"(
    int helper(int x);
    int main(void) { return helper(4); }
    int helper(int x) { return x * x; }
  )";
  EXPECT_EQ(run_main_i32(src), 16);
}

TEST(MiniC, MathIntrinsics) {
  EXPECT_EQ(eval_body("return (int)sqrt(144.0);"), 12);
  EXPECT_EQ(eval_body("return (int)fabs(-3.5 * 2.0);"), 7);
  EXPECT_EQ(eval_body("return (int)pow(2.0, 10.0);"), 1024);
  EXPECT_EQ(eval_body("return (int)floor(3.9) + (int)ceil(3.1);"), 7);
  EXPECT_EQ(eval_body("double e = exp(1.0); return (int)(e * 1000.0);"), 2718);
}

TEST(MiniC, DefinesSelectSizes) {
  const std::string src = R"(
    #define N 8
    int a[N];
    int main(void) {
      int i;
      for (i = 0; i < N; i++) a[i] = i;
      return a[N - 1];
    }
  )";
  EXPECT_EQ(run_main_i32(src), 7);
  CompileOptions opts;
  opts.defines.emplace_back("N", "16");
  EXPECT_EQ(run_main_i32(src, opts), 15);
}

TEST(MiniC, DefineExpressionsFold) {
  const std::string src = R"(
    #define M 6
    #define N (M * 2)
    int a[N];
    int main(void) { return N + M; }
  )";
  EXPECT_EQ(run_main_i32(src), 18);
}

TEST(MiniC, CompoundAssignOnArrayElement) {
  EXPECT_EQ(eval_body("int a[4]; a[2] = 10; a[2] += 5; a[2] *= 2; return a[2];"), 30);
}

TEST(MiniC, IncDecValueSemantics) {
  EXPECT_EQ(eval_body("int i = 5; int a = i++; return a * 100 + i;"), 506);
  EXPECT_EQ(eval_body("int i = 5; int a = ++i; return a * 100 + i;"), 606);
  EXPECT_EQ(eval_body("int i = 5; int a = i--; return a * 100 + i;"), 504);
}

TEST(MiniC, ComplexLoopConditionsReevaluate) {
  // Regression: short-circuit/ternary conditions lower to statements that
  // must run every iteration, not once before the loop.
  EXPECT_EQ(eval_body("int i = 0; int n = 0; while (i < 20 && n < 5) { n++; i += 2; } "
                      "return i * 100 + n;"),
            1005);
  EXPECT_EQ(eval_body("int i = 10; int hits = 0; while (i > 0 || hits == 0) { i--; "
                      "if (i == 0) hits = 1; } return i * 10 + hits;"),
            1);
  EXPECT_EQ(eval_body("int i = 0; int s = 0; do { s += i; i++; } while (i < 5 && s < 6); "
                      "return i * 100 + s;"),
            406);
  EXPECT_EQ(eval_body("int s = 0; int j = 8; for (int i = 0; i < 10 && j > 3; i++) "
                      "{ s += i; j--; } return s * 10 + j;"),
            103);
  EXPECT_EQ(eval_body("int x = 3; int c = 0; while (x > 0 ? 1 : 0) { x--; c++; } "
                      "return c;"),
            3);
  // Continue inside a complex-condition loop still re-checks it.
  EXPECT_EQ(eval_body("int i = 0; int s = 0; int cap = 50; "
                      "for (i = 0; i < 10 && s < 50; i++) { if (i % 2) continue; s += i * 10; } "
                      "return i * 1000 + s + cap - 50;"),
            5 * 1000 + 60);
  // do-while with complex condition and continue.
  EXPECT_EQ(eval_body("int i = 0; int s = 0; do { i++; if (i % 3 == 0) continue; s += i; } "
                      "while (i < 8 && s < 100); return i * 100 + s;"),
            827);
}

TEST(MiniC, CommaOperatorInFor) {
  EXPECT_EQ(eval_body("int s = 0; int i, j; for (i = 0, j = 10; i < j; i++, j--) s++; "
                      "return s;"),
            5);
}

TEST(MiniC, LargeUninitializedArraysAreDynamic) {
  const std::string src = R"(
    double big[1000];
    int small_init[2] = {1, 2};
    int main(void) { big[999] = 1.0; return small_init[1]; }
  )";
  ir::Module m = compile_or_die(src);
  ASSERT_EQ(m.globals.size(), 2u);
  EXPECT_TRUE(m.globals[0].dynamic_alloc);
  EXPECT_FALSE(m.globals[1].dynamic_alloc);
  ir::Executor exec(m);
  EXPECT_EQ(exec.run("main").as_i32(), 2);
}

TEST(MiniC, DivisionByZeroIsAnError) {
  ir::Module m = compile_or_die("int main(void) { int z = 0; return 5 / z; }");
  ir::Executor exec(m);
  const ir::ExecResult r = exec.run("main");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("division"), std::string::npos);
}

// --------------------------------------------------------- diagnostics

void expect_error(const std::string& source, const std::string& fragment) {
  std::string error;
  const auto m = compile(source, {}, error);
  EXPECT_FALSE(m.has_value()) << "expected failure: " << fragment;
  EXPECT_NE(error.find(fragment), std::string::npos) << "got: " << error;
}

TEST(MiniCDiagnostics, RejectsOutOfSubsetConstructs) {
  expect_error("long x;", "outside the mini-C subset");
  expect_error("float f(void) { return 0; }", "outside the mini-C subset");
  expect_error("int main(void) { undeclared = 3; return 0; }", "undeclared");
  expect_error("int main(void) { return missing(); }", "undeclared function");
  expect_error("int a[4]; int main(void) { return a; }", "fully indexed");
  expect_error("int f(int x); int main(void) { return f(1); }", "never defined");
  expect_error("int main(void) { return 1; } int main(void) { return 2; }",
               "redefinition");
  expect_error("#include <stdio.h>\nint main(void){return 0;}", "unsupported preprocessor");
  expect_error("int main(void) { switch (1) { case 1: return 1; case 2: { int i = 0; "
               "i++; } case 3: return 3; } return 0; }",
               "fallthrough");
}

TEST(MiniCDiagnostics, TypeErrors) {
  expect_error("int main(void) { double d = 1.0; return d % 2.0; }", "integer operands");
  expect_error("int main(void) { double d = 1.0; return ~d; }", "integer operand");
  expect_error("void v(void) { return 3; }", "void function");
}

}  // namespace
}  // namespace wb::minic
