// Corpus-level replay gates (slow):
//  - every corpus workload records cleanly and replays bit-exactly
//    (exact PageMetrics agreement, the ISSUE's acceptance bar);
//  - recording is jobs-invariant: --jobs=1 and --jobs=4 produce
//    byte-identical serialized traces in the same (name-sorted) order;
//  - parse(serialize(t)) round-trips every corpus trace;
//  - at least one real-world analog reduces >= 2x in event count with
//    the exact oracle intact.
#include <gtest/gtest.h>

#include "replay/corpus.h"
#include "replay/reduce.h"
#include "replay/replay.h"

namespace wb {
namespace {

const replay::CorpusResult& corpus() {
  static const replay::CorpusResult result = [] {
    const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
    return replay::record_corpus(browser, 4);
  }();
  return result;
}

TEST(ReplayCorpus, AllWorkloadsRecord) {
  for (const auto& f : corpus().failures) {
    ADD_FAILURE() << f.name << ": " << f.error;
  }
  // 12 real-world (3 analogs x 2 impls x experiments) + 11 manual JS
  // benchmarks + the importing compiled kernels (deriche is the only
  // -O2/XS artifact with a libm import boundary).
  EXPECT_EQ(corpus().traces.size(), 24u);
}

TEST(ReplayCorpus, EveryTraceReplaysBitExact) {
  for (const replay::Trace& trace : corpus().traces) {
    const replay::ReplayResult r = replay::verify(trace);
    EXPECT_TRUE(r.ok) << trace.name << ": " << r.error;
  }
}

TEST(ReplayCorpus, EveryTraceRoundTripsThroughBytes) {
  for (const replay::Trace& trace : corpus().traces) {
    const std::vector<uint8_t> bytes = replay::serialize(trace);
    std::string error;
    const auto parsed = replay::parse(bytes, error);
    ASSERT_TRUE(parsed) << trace.name << ": " << error;
    EXPECT_EQ(replay::serialize(*parsed), bytes) << trace.name;
  }
}

TEST(ReplayCorpus, RecordingIsJobsInvariant) {
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  const replay::CorpusResult serial = replay::record_corpus(browser, 1);
  ASSERT_EQ(serial.traces.size(), corpus().traces.size());
  for (size_t i = 0; i < serial.traces.size(); ++i) {
    EXPECT_EQ(serial.traces[i].name, corpus().traces[i].name);
    EXPECT_EQ(replay::serialize(serial.traces[i]),
              replay::serialize(corpus().traces[i]))
        << serial.traces[i].name;
  }
}

TEST(ReplayCorpus, LongJsDivReducesTwofold) {
  const replay::Trace* target = nullptr;
  for (const replay::Trace& trace : corpus().traces) {
    if (trace.name == "longjs-div-js") target = &trace;
  }
  ASSERT_NE(target, nullptr);
  const replay::ReduceResult r = replay::reduce_trace(*target);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(r.events_before, 2 * r.events_after);
  EXPECT_TRUE(replay::verify(r.reduced).ok);
}

}  // namespace
}  // namespace wb
