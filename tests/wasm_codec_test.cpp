#include <gtest/gtest.h>

#include <cmath>

#include "wasm/builder.h"
#include "wasm/codec.h"
#include "wasm/validator.h"
#include "wasm/wat.h"

namespace wb::wasm {
namespace {

using VT = ValType;

Module sample_module() {
  ModuleBuilder mb;
  const FuncType host_type{{VT::I32}, {}};
  const uint32_t log = mb.add_import("env", "log", host_type);
  mb.set_memory(2, 16);
  mb.add_global(VT::I32, true, Value::from_i32(7));
  mb.add_global(VT::F64, false, Value::from_f64(2.5));
  mb.add_data(64, {1, 2, 3, 4, 5});

  // add(a, b) = a + b, also logs a.
  auto f = mb.define(FuncType{{VT::I32, VT::I32}, {VT::I32}}, "add");
  f.local_get(0).call(log);
  f.local_get(0).local_get(1).op(Opcode::I32Add);
  f.finish("add");

  // loop-sum(n): uses block/loop/br_if and a local.
  auto g = mb.define(FuncType{{VT::I32}, {VT::I32}}, "sum");
  const uint32_t acc = g.add_local(VT::I32);
  g.block();
  g.loop();
  g.local_get(0).op(Opcode::I32Eqz).br_if(1);
  g.local_get(acc).local_get(0).op(Opcode::I32Add).local_set(acc);
  g.local_get(0).i32(1).op(Opcode::I32Sub).local_set(0);
  g.br(0);
  g.end();
  g.end();
  g.local_get(acc);
  g.finish("sum");

  // br_table user.
  auto h = mb.define(FuncType{{VT::I32}, {VT::I32}}, "pick");
  h.block().block().block();
  h.local_get(0).br_table({0, 1, 2});
  h.end();
  h.i32(10);
  h.op(Opcode::Return);
  h.end();
  h.i32(20);
  h.op(Opcode::Return);
  h.end();
  h.i32(30);
  h.finish("pick");

  mb.export_memory("memory");
  return mb.take();
}

TEST(WasmCodec, EncodesMagicAndVersion) {
  const Module m = sample_module();
  const std::vector<uint8_t> bytes = encode(m);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], 0x00);
  EXPECT_EQ(bytes[1], 'a');
  EXPECT_EQ(bytes[2], 's');
  EXPECT_EQ(bytes[3], 'm');
  EXPECT_EQ(bytes[4], 1);
}

TEST(WasmCodec, SampleModuleValidates) {
  const Module m = sample_module();
  const auto err = validate(m);
  EXPECT_FALSE(err.has_value()) << (err ? err->message : "");
}

TEST(WasmCodec, RoundTripPreservesStructure) {
  const Module m = sample_module();
  const std::vector<uint8_t> bytes = encode(m);
  std::string error;
  const auto decoded = decode(bytes, &error);
  ASSERT_TRUE(decoded.has_value()) << error;

  EXPECT_EQ(decoded->types.size(), m.types.size());
  EXPECT_EQ(decoded->imports.size(), m.imports.size());
  EXPECT_EQ(decoded->functions.size(), m.functions.size());
  EXPECT_EQ(decoded->globals.size(), m.globals.size());
  ASSERT_TRUE(decoded->memory.has_value());
  EXPECT_EQ(decoded->memory->min_pages, 2u);
  EXPECT_EQ(decoded->memory->max_pages, 16u);
  EXPECT_EQ(decoded->exports.size(), m.exports.size());
  EXPECT_EQ(decoded->data.size(), 1u);
  EXPECT_EQ(decoded->data[0].offset, 64u);
  EXPECT_EQ(decoded->data[0].bytes, (std::vector<uint8_t>{1, 2, 3, 4, 5}));

  for (size_t i = 0; i < m.functions.size(); ++i) {
    EXPECT_EQ(decoded->functions[i].body.size(), m.functions[i].body.size()) << i;
    EXPECT_EQ(decoded->functions[i].locals, m.functions[i].locals) << i;
  }
  EXPECT_EQ(decoded->globals[0].init.as_i32(), 7);
  EXPECT_DOUBLE_EQ(decoded->globals[1].init.as_f64(), 2.5);
}

TEST(WasmCodec, RoundTripIsByteStable) {
  const Module m = sample_module();
  const std::vector<uint8_t> once = encode(m);
  const auto decoded = decode(once);
  ASSERT_TRUE(decoded.has_value());
  const std::vector<uint8_t> twice = encode(*decoded);
  EXPECT_EQ(once, twice);
}

TEST(WasmCodec, DecodedModuleValidates) {
  const auto decoded = decode(encode(sample_module()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(validate(*decoded).has_value());
}

TEST(WasmCodec, RejectsBadMagic) {
  std::vector<uint8_t> bytes = encode(sample_module());
  bytes[1] = 'x';
  std::string error;
  EXPECT_FALSE(decode(bytes, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(WasmCodec, RejectsTruncatedInput) {
  std::vector<uint8_t> bytes = encode(sample_module());
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{9}}) {
    std::vector<uint8_t> cut_bytes(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode(cut_bytes).has_value()) << "cut at " << cut;
  }
}

TEST(WasmCodec, RejectsUnknownOpcode) {
  std::vector<uint8_t> bytes = encode(sample_module());
  // 0xd0 (ref.null, unsupported) somewhere in the code section:
  // corrupting the first i32.add (0x6a) suffices.
  for (auto& b : bytes) {
    if (b == 0x6a) {
      b = 0xd0;
      break;
    }
  }
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(WasmCodec, SignedImmediatesSurviveRoundTrip) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.i32(-1).finish("m1");
  auto g = mb.define(FuncType{{}, {VT::I64}});
  g.i64(INT64_MIN).finish("big");
  auto h = mb.define(FuncType{{}, {VT::F64}});
  h.f64(-0.0).finish("nz");
  const Module m = mb.take();
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->functions[0].body[0].ival, -1);
  EXPECT_EQ(decoded->functions[1].body[0].ival, INT64_MIN);
  EXPECT_TRUE(std::signbit(decoded->functions[2].body[0].fval));
}

TEST(WasmCodec, WatPrinterMentionsStructure) {
  const Module m = sample_module();
  const std::string wat = to_wat(m);
  EXPECT_NE(wat.find("(module"), std::string::npos);
  EXPECT_NE(wat.find("(import \"env\" \"log\""), std::string::npos);
  EXPECT_NE(wat.find("i32.add"), std::string::npos);
  EXPECT_NE(wat.find("br_table"), std::string::npos);
  EXPECT_NE(wat.find("(export \"sum\""), std::string::npos);
  EXPECT_NE(wat.find("(memory 2 16)"), std::string::npos);
}

TEST(WasmCodec, CodeSizeGrowsWithBody) {
  ModuleBuilder small;
  auto f = small.define(FuncType{{}, {VT::I32}});
  f.i32(1).finish("f");
  ModuleBuilder large;
  auto g = large.define(FuncType{{}, {VT::I32}});
  g.i32(1);
  for (int i = 0; i < 100; ++i) g.i32(1).op(Opcode::I32Add);
  g.finish("f");
  EXPECT_GT(encode(large.take()).size(), encode(small.take()).size() + 100);
}

}  // namespace
}  // namespace wb::wasm
