// wb::fleet tests: deterministic module-cache behaviour, the device
// population draw, and the tentpole guarantee — the fleet report is
// byte-identical across --jobs=1 / --jobs=8 and repeated runs of one
// seed, and a nonzero cache capacity measurably shifts the warm-vs-cold
// startup curve vs --cache-mb=0.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fleet/cache.h"
#include "fleet/device.h"
#include "fleet/fleet.h"

namespace wb::fleet {
namespace {

namespace json = support::json;

// ------------------------------------------------------------ ModuleCache

TEST(ModuleCache, MissThenHit) {
  ModuleCache cache(1 << 20);
  EXPECT_FALSE(cache.access("a|Chrome|Desktop", 1000));
  EXPECT_TRUE(cache.access("a|Chrome|Desktop", 1000));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes_in_use(), 1000u);
}

TEST(ModuleCache, KeyIncludesTarget) {
  ModuleCache cache(1 << 20);
  EXPECT_FALSE(cache.access("sha|Chrome|Desktop", 100));
  // Same content address, different compile target: still cold.
  EXPECT_FALSE(cache.access("sha|Firefox|Desktop", 100));
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(ModuleCache, LruEviction) {
  ModuleCache cache(300);
  EXPECT_FALSE(cache.access("a", 100));
  EXPECT_FALSE(cache.access("b", 100));
  EXPECT_FALSE(cache.access("c", 100));
  // Touch "a" so "b" is the LRU victim when "d" needs room.
  EXPECT_TRUE(cache.access("a", 100));
  EXPECT_FALSE(cache.access("d", 100));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.access("a", 100));
  EXPECT_TRUE(cache.access("c", 100));
  EXPECT_FALSE(cache.access("b", 100));  // evicted -> cold again
}

TEST(ModuleCache, ZeroCapacityNeverCaches) {
  ModuleCache cache(0);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(cache.access("a", 10));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().uncacheable, 3u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ModuleCache, OversizedEntryBypasses) {
  ModuleCache cache(100);
  EXPECT_FALSE(cache.access("small", 60));
  EXPECT_FALSE(cache.access("huge", 200));
  EXPECT_EQ(cache.stats().uncacheable, 1u);
  // The bypass must not evict what does fit.
  EXPECT_TRUE(cache.access("small", 60));
}

// ------------------------------------------------------------ build_fleet

TEST(DeviceFleet, DeterministicAndInRange) {
  support::Rng rng(99);
  const auto a = build_fleet(500, rng);
  const auto b = build_fleet(500, support::Rng(99));
  ASSERT_EQ(a.size(), 500u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cpu_permille, b[i].cpu_permille);
    EXPECT_EQ(a[i].net_ps_per_byte, b[i].net_ps_per_byte);
    EXPECT_EQ(a[i].browser, b[i].browser);
    EXPECT_EQ(a[i].platform, b[i].platform);
    EXPECT_GE(a[i].cpu_permille, 1000u);
    EXPECT_LE(a[i].cpu_permille, 6000u);
    EXPECT_GE(a[i].net_ps_per_byte, 160'000u);
  }
  // All six (browser, platform) combinations should appear in a population
  // this size.
  bool seen[3][2] = {};
  for (const Device& d : a) {
    seen[static_cast<size_t>(d.browser)][static_cast<size_t>(d.platform)] = true;
  }
  for (size_t x = 0; x < 3; ++x) {
    for (size_t y = 0; y < 2; ++y) EXPECT_TRUE(seen[x][y]) << x << "," << y;
  }
}

// ------------------------------------------------------------- run_fleet

FleetConfig small_config() {
  FleetConfig c;
  c.sessions = 3000;
  c.devices = 64;
  c.seed = 7;
  c.cache_mb = 4;
  c.sizes = {core::InputSize::XS};
  c.level = ir::OptLevel::O2;
  c.mean_interarrival_us = 200;
  c.max_benchmarks = 6;  // shrink the measurement grid; tier-1 speed
  return c;
}

int64_t get_int(const json::Value& doc, const char* a, const char* b,
                const char* c = nullptr) {
  const json::Value* v = doc.find(a);
  EXPECT_NE(v, nullptr) << a;
  v = v->find(b);
  EXPECT_NE(v, nullptr) << a << "." << b;
  if (c) {
    v = v->find(c);
    EXPECT_NE(v, nullptr) << a << "." << b << "." << c;
  }
  return v->as_int();
}

TEST(Fleet, JobsInvarianceByteIdentical) {
  FleetConfig c1 = small_config();
  c1.jobs = 1;
  FleetConfig c8 = small_config();
  c8.jobs = 8;
  const FleetReport r1 = run_fleet(c1);
  const FleetReport r8 = run_fleet(c8);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r8.ok) << r8.error;
  EXPECT_EQ(r1.doc.dump(2), r8.doc.dump(2));
  EXPECT_EQ(r1.digest, r8.digest);
}

TEST(Fleet, RepeatedRunsSameSeedIdentical) {
  const FleetConfig c = small_config();
  const FleetReport a = run_fleet(c);
  const FleetReport b = run_fleet(c);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.doc.dump(2), b.doc.dump(2));
  EXPECT_EQ(a.digest, b.digest);
}

TEST(Fleet, SeedChangesReport) {
  FleetConfig c = small_config();
  const FleetReport a = run_fleet(c);
  c.seed = 8;
  const FleetReport b = run_fleet(c);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_NE(a.digest, b.digest);
}

TEST(Fleet, ReportShape) {
  const FleetReport r = run_fleet(small_config());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(get_int(r.doc, "config", "sessions"), 3000);
  EXPECT_EQ(get_int(r.doc, "overall", "sessions"), 3000);
  const json::Value* cells = r.doc.find("cells");
  ASSERT_NE(cells, nullptr);
  int64_t total = 0;
  for (const json::Value& cell : cells->as_array()) {
    total += cell.find("sessions")->as_int();
    // Percentiles are ordered within every cell.
    const json::Value* lat = cell.find("latency_ps");
    ASSERT_NE(lat, nullptr);
    EXPECT_LE(lat->find("p50")->as_int(), lat->find("p95")->as_int());
    EXPECT_LE(lat->find("p95")->as_int(), lat->find("p99")->as_int());
  }
  EXPECT_EQ(total, 3000);
  // 6 benchmarks x 1 size in the modules table.
  EXPECT_EQ(r.doc.find("modules")->as_array().size(), 6u);
  EXPECT_FALSE(r.tables.empty());
  EXPECT_EQ(r.digest.size(), 64u);
}

TEST(Fleet, CacheShiftsWarmVsColdCurve) {
  FleetConfig cached = small_config();
  FleetConfig cold = small_config();
  cold.cache_mb = 0;
  const FleetReport with_cache = run_fleet(cached);
  const FleetReport no_cache = run_fleet(cold);
  ASSERT_TRUE(with_cache.ok) << with_cache.error;
  ASSERT_TRUE(no_cache.ok) << no_cache.error;

  // The shared cache must actually hit (6 modules x 3000 sessions), and
  // with --cache-mb=0 every load is a cold compile.
  EXPECT_GT(get_int(with_cache.doc, "cache", "hits"), 0);
  EXPECT_GT(get_int(with_cache.doc, "cache", "hit_rate_permille"), 0);
  EXPECT_EQ(get_int(no_cache.doc, "cache", "hits"), 0);
  EXPECT_EQ(get_int(no_cache.doc, "overall", "warm_sessions"), 0);

  // Warm startup is measurably cheaper than cold startup...
  EXPECT_LT(get_int(with_cache.doc, "overall", "startup_warm_ps", "p50"),
            get_int(with_cache.doc, "overall", "startup_cold_ps", "p50"));
  // ...so the whole-fleet latency distribution shifts down vs all-cold.
  EXPECT_LT(get_int(with_cache.doc, "overall", "latency_ps", "mean"),
            get_int(no_cache.doc, "overall", "latency_ps", "mean"));
  EXPECT_LE(get_int(with_cache.doc, "overall", "latency_ps", "p50"),
            get_int(no_cache.doc, "overall", "latency_ps", "p50"));
}

TEST(Fleet, ConfigRoundTripsThroughReport) {
  FleetConfig c = small_config();
  c.sizes = {core::InputSize::XS, core::InputSize::S};
  const FleetReport r = run_fleet(c);
  ASSERT_TRUE(r.ok) << r.error;
  FleetConfig parsed;
  std::string error;
  ASSERT_TRUE(config_from_json(*r.doc.find("config"), parsed, error)) << error;
  EXPECT_EQ(parsed.sessions, c.sessions);
  EXPECT_EQ(parsed.devices, c.devices);
  EXPECT_EQ(parsed.seed, c.seed);
  EXPECT_EQ(parsed.cache_mb, c.cache_mb);
  EXPECT_EQ(parsed.level, c.level);
  EXPECT_EQ(parsed.sizes, c.sizes);
  EXPECT_EQ(parsed.mean_interarrival_us, c.mean_interarrival_us);
  EXPECT_EQ(parsed.max_benchmarks, c.max_benchmarks);

  // A replay of the parsed config reproduces the report byte-for-byte —
  // the mechanism --check relies on.
  parsed.jobs = 2;
  const FleetReport replay = run_fleet(parsed);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.digest, r.digest);
}

TEST(Fleet, BadConfigRejected) {
  FleetConfig c = small_config();
  c.sessions = 0;
  EXPECT_FALSE(run_fleet(c).ok);
  FleetConfig parsed;
  std::string error;
  json::Object incomplete;
  incomplete.emplace_back("sessions", 10);
  EXPECT_FALSE(config_from_json(json::Value(std::move(incomplete)), parsed, error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace wb::fleet
