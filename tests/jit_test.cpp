// JIT-vs-quickened-vs-classic identity tests (hand-built modules). The JIT
// invariant (jit/jit.h) is that every virtual observable — trap, result
// bits, every ExecStats field, fuel accounting, tier-up timing, and the
// post-trap memory/global state — is bit-identical whether a hot function
// runs native code, the quickened loop, or the classic loop. These tests
// pin that down on modules chosen to exercise each stencil family, every
// trap kind from inside compiled code, and every fuel boundary across
// basic blocks; the whole-corpus version lives in jit_corpus_test.cpp
// (slow) and the WB_NO_JIT env latch in jit_env_test.cpp (the latch is
// per-process, so it needs its own binary).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>
#include <vector>

#include "wasm/builder.h"
#include "wasm/interp.h"
#include "wasm/jit/cache.h"
#include "wasm/jit/jit.h"
#include "wasm/jit/stencil.h"
#include "wasm/quicken.h"
#include "wasm/validator.h"

namespace wb::wasm {
namespace {

using VT = ValType;

TierPolicy optimizing_only() {
  TierPolicy p;
  p.baseline_enabled = false;
  return p;
}

/// Runs the same module three ways — classic, quickened (JIT off), and
/// quickened with the JIT — under identical settings, capturing the full
/// observable world of each run for comparison.
class TriRunner {
 public:
  ModuleBuilder mb;
  std::vector<HostFn> host_fns;
  std::optional<TierPolicy> policy;
  /// jit_compiled_functions() observed on the JIT engine after the run.
  size_t jit_compiled = 0;

  void take_and_validate() {
    module_ = mb.take();
    const auto err = validate(module_);
    ASSERT_FALSE(err.has_value()) << (err ? err->message : "");
  }

  struct Outcome {
    InvokeResult result;
    ExecStats stats;
    Tier tier0 = Tier::Baseline;
    std::vector<uint8_t> memory;
    std::vector<uint64_t> globals;
  };

  void run(std::span<const Value> args = {}, uint64_t fuel = 100'000'000,
           int invokes = 1) {
    for (int engine = 0; engine < 3; ++engine) {
      Instance inst(module_, host_fns);
      inst.set_quicken(engine > 0);
      inst.set_jit(engine == 2);
      if (policy) inst.set_tier_policy(*policy);
      inst.set_fuel(fuel);
      Outcome& out = outcomes_[engine];
      for (int i = 0; i < invokes; ++i) out.result = inst.invoke("main", args);
      out.stats = inst.stats();
      out.tier0 = inst.function_tier(0);
      if (LinearMemory* mem = inst.memory()) {
        out.memory.assign(mem->bytes().begin(), mem->bytes().end());
      }
      for (uint32_t g = 0; g < module_.globals.size(); ++g) {
        out.globals.push_back(inst.global(g).bits);
      }
      if (engine == 2) jit_compiled = inst.jit_compiled_functions();
    }
  }

  /// Asserts all three runs observed exactly the same world.
  void expect_identical(const std::string& what) {
    for (int e = 1; e < 3; ++e) {
      const std::string who = what + (e == 1 ? " [quickened]" : " [jit]");
      const Outcome& ref = outcomes_[0];
      const Outcome& got = outcomes_[e];
      EXPECT_EQ(ref.result.trap, got.result.trap) << who;
      if (ref.result.ok() && got.result.ok()) {
        EXPECT_EQ(ref.result.value.bits, got.result.value.bits) << who;
      }
      EXPECT_EQ(ref.stats.ops_executed, got.stats.ops_executed) << who;
      EXPECT_EQ(ref.stats.cost_ps, got.stats.cost_ps) << who;
      EXPECT_EQ(ref.stats.arith_counts, got.stats.arith_counts) << who;
      EXPECT_EQ(ref.stats.calls, got.stats.calls) << who;
      EXPECT_EQ(ref.stats.host_calls, got.stats.host_calls) << who;
      EXPECT_EQ(ref.stats.memory_grows, got.stats.memory_grows) << who;
      EXPECT_EQ(ref.stats.tierups, got.stats.tierups) << who;
      EXPECT_EQ(ref.tier0, got.tier0) << who;
      EXPECT_EQ(ref.memory, got.memory) << who;
      EXPECT_EQ(ref.globals, got.globals) << who;
    }
  }

  const Outcome& classic() const { return outcomes_[0]; }
  const Outcome& jit() const { return outcomes_[2]; }
  const Module& module() const { return module_; }

 private:
  Module module_;
  Outcome outcomes_[3];
};

/// The bench-style hot loop: counts down from `n`, accumulating the sum.
/// Exercises FCmpBrIf, FGetGetSet, FGetConstSet, FConstSet, and Br.
void build_hot_loop(ModuleBuilder& mb, int32_t n) {
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.add_local(VT::I32);  // local 0: i
  f.add_local(VT::I32);  // local 1: acc
  f.i32(n).local_set(0);
  f.i32(0).local_set(1);
  f.block();
  f.loop();
  f.local_get(0).i32(0).op(Opcode::I32LeS).br_if(1);
  f.local_get(1).local_get(0).op(Opcode::I32Add).local_set(1);
  f.local_get(0).i32(-1).op(Opcode::I32Add).local_set(0);
  f.br(0);
  f.end();
  f.end();
  f.local_get(1);
  f.finish("main");
}

TEST(WasmJit, HotLoopIdentical) {
  TriRunner d;
  build_hot_loop(d.mb, 1000);
  d.policy = optimizing_only();
  d.take_and_validate();
  d.run();
  d.expect_identical("hot loop");
  ASSERT_TRUE(d.jit().result.ok());
  EXPECT_EQ(d.jit().result.value.as_i32(), 1000 * 1001 / 2);
  // On JIT-capable hosts the loop must actually have been compiled —
  // otherwise the ≥2x dispatch win silently evaporates while every
  // identity assertion keeps passing.
  if (jit::available()) { EXPECT_EQ(d.jit_compiled, 1u); }
}

TEST(WasmJit, TierUpThenJitIdentical) {
  // main calls a leaf repeatedly; the leaf crosses the tier-up threshold
  // mid-run, so later entries hit the JIT while earlier ones interpreted.
  // Tier-up timing (the one-off compile charge and the tierups counter)
  // must land identically in all three engines. main itself contains
  // Call, so it is JIT-ineligible and always runs quickened — the mixed
  // module exercises the per-function fallback.
  TriRunner d;
  auto leaf = d.mb.define(FuncType{{VT::I32}, {VT::I32}});
  leaf.local_get(0).i32(3).op(Opcode::I32Mul).i32(7).op(Opcode::I32Add);
  const uint32_t leaf_idx = leaf.finish();
  auto f = d.mb.define(FuncType{{}, {VT::I32}});
  f.add_local(VT::I32);  // i
  f.add_local(VT::I32);  // acc
  f.i32(40).local_set(0);
  f.block();
  f.loop();
  f.local_get(0).i32(0).op(Opcode::I32LeS).br_if(1);
  f.local_get(1).local_get(0).call(leaf_idx).op(Opcode::I32Add).local_set(1);
  f.local_get(0).i32(-1).op(Opcode::I32Add).local_set(0);
  f.br(0);
  f.end();
  f.end();
  f.local_get(1);
  f.finish("main");
  TierPolicy p;
  p.tierup_threshold = 10;  // the leaf tiers up on its 10th entry
  d.policy = p;
  d.take_and_validate();
  d.run();
  d.expect_identical("tier-up mid-run");
  // Both functions cross the threshold: the leaf via entries, main via its
  // own loop back-edges. Only the leaf is JIT-eligible.
  EXPECT_EQ(d.jit().stats.tierups, 2u);
  if (jit::available()) { EXPECT_EQ(d.jit_compiled, 1u); }
}

TEST(WasmJit, FuelSweepHotLoop) {
  // Every fuel boundary of the hot loop: the trap point may fall on any
  // QInstr of any basic block, including mid-fused-op (where quickened
  // charges the affordable constituent prefix of the boundary QInstr but
  // never executes it). Post-trap locals are invisible, but stats and the
  // trap kind must match exactly at every single fuel value.
  ModuleBuilder ref_mb;
  build_hot_loop(ref_mb, 8);
  Module ref_module = ref_mb.take();
  ASSERT_FALSE(validate(ref_module).has_value());
  Instance ref(ref_module, {});
  ref.set_quicken(false);
  ref.set_tier_policy(optimizing_only());
  ASSERT_TRUE(ref.invoke("main", {}).ok());
  const uint64_t total_ops = ref.stats().ops_executed;
  ASSERT_GT(total_ops, 20u);

  for (uint64_t fuel = 0; fuel <= total_ops + 1; ++fuel) {
    TriRunner d;
    build_hot_loop(d.mb, 8);
    d.policy = optimizing_only();
    d.take_and_validate();
    d.run({}, fuel);
    d.expect_identical("fuel=" + std::to_string(fuel));
    if (fuel < total_ops) {
      EXPECT_EQ(d.jit().result.trap, Trap::FuelExhausted) << fuel;
      EXPECT_EQ(d.jit().stats.ops_executed, fuel) << fuel;
    } else {
      EXPECT_TRUE(d.jit().result.ok()) << fuel;
    }
  }
}

/// A loop that stores to linear memory each iteration, so the post-trap
/// memory state distinguishes "charged but not executed" from "executed".
void build_store_loop(ModuleBuilder& mb, int32_t n) {
  mb.set_memory(1);
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.add_local(VT::I32);  // i
  f.i32(0).local_set(0);
  f.block();
  f.loop();
  f.local_get(0).i32(n).op(Opcode::I32GeS).br_if(1);
  // mem[8 + 4*i] = i * 2
  f.local_get(0).i32(2).op(Opcode::I32Shl);
  f.local_get(0).i32(1).op(Opcode::I32Shl);
  f.store(Opcode::I32Store, 8);
  f.local_get(0).i32(1).op(Opcode::I32Add).local_set(0);
  f.br(0);
  f.end();
  f.end();
  f.local_get(0);
  f.finish("main");
}

TEST(WasmJit, FuelSweepStoreLoopMemoryState) {
  ModuleBuilder ref_mb;
  build_store_loop(ref_mb, 6);
  Module ref_module = ref_mb.take();
  ASSERT_FALSE(validate(ref_module).has_value());
  Instance ref(ref_module, {});
  ref.set_quicken(false);
  ref.set_tier_policy(optimizing_only());
  ASSERT_TRUE(ref.invoke("main", {}).ok());
  const uint64_t total_ops = ref.stats().ops_executed;

  for (uint64_t fuel = 0; fuel <= total_ops + 1; ++fuel) {
    TriRunner d;
    build_store_loop(d.mb, 6);
    d.policy = optimizing_only();
    d.take_and_validate();
    d.run({}, fuel);
    d.expect_identical("store-loop fuel=" + std::to_string(fuel));
  }
}

TEST(WasmJit, LoadsStoresAllWidths) {
  TriRunner d;
  d.mb.set_memory(1);
  auto f = d.mb.define(FuncType{{}, {VT::I64}});
  f.add_local(VT::I64);
  f.i32(0).i64(-2).store(Opcode::I64Store, 16);
  f.i32(0).i32(-3).store(Opcode::I32Store, 32);
  f.i32(0).i32(0xabcd).store(Opcode::I32Store16, 40);
  f.i32(0).i32(0x80).store(Opcode::I32Store8, 48);
  f.i32(16).load(Opcode::I64Load);
  f.i32(32).load(Opcode::I32Load).op(Opcode::I64ExtendI32S).op(Opcode::I64Add);
  f.i32(40).load(Opcode::I32Load16U).op(Opcode::I64ExtendI32U).op(Opcode::I64Add);
  f.i32(40).load(Opcode::I32Load16S).op(Opcode::I64ExtendI32S).op(Opcode::I64Add);
  f.i32(48).load(Opcode::I32Load8S).op(Opcode::I64ExtendI32S).op(Opcode::I64Add);
  f.i32(48).load(Opcode::I32Load8U).op(Opcode::I64ExtendI32U).op(Opcode::I64Add);
  f.op(Opcode::MemorySize).op(Opcode::I64ExtendI32S).op(Opcode::I64Add);
  f.finish("main");
  d.policy = optimizing_only();
  d.take_and_validate();
  d.run();
  d.expect_identical("loads/stores");
  ASSERT_TRUE(d.jit().result.ok());
  if (jit::available()) { EXPECT_EQ(d.jit_compiled, 1u); }
}

TEST(WasmJit, FloatMathIdentical) {
  TriRunner d;
  auto f = d.mb.define(FuncType{{VT::F64}, {VT::F64}});
  f.local_get(0).f64(2.5).op(Opcode::F64Mul);
  f.f64(0.125).op(Opcode::F64Add);
  f.f64(3.0).op(Opcode::F64Div);
  f.op(Opcode::F64Sqrt);
  f.op(Opcode::F64Neg).op(Opcode::F64Abs);
  f.local_get(0).op(Opcode::F64Sub);
  f.op(Opcode::F32DemoteF64).op(Opcode::F64PromoteF32);
  // Feed an f32 pipeline too, then compare and convert back.
  f.f32(1.5f).f32(0.25f).op(Opcode::F32Add).f32(2.0f).op(Opcode::F32Mul);
  f.op(Opcode::F32Sqrt).op(Opcode::F64PromoteF32).op(Opcode::F64Add);
  f.finish("main");
  d.policy = optimizing_only();
  d.take_and_validate();
  const Value arg = Value::from_f64(7.75);
  d.run({&arg, 1});
  d.expect_identical("float math");
  ASSERT_TRUE(d.jit().result.ok());
  if (jit::available()) { EXPECT_EQ(d.jit_compiled, 1u); }
}

TEST(WasmJit, FloatCompareNaNIdentical) {
  // NaN comparison semantics must survive the SSE lowering (cmpsd + mask):
  // every ordered compare with a NaN operand is false except Ne.
  for (const Opcode cmp : {Opcode::F64Eq, Opcode::F64Ne, Opcode::F64Lt,
                           Opcode::F64Gt, Opcode::F64Le, Opcode::F64Ge}) {
    TriRunner d;
    auto f = d.mb.define(FuncType{{VT::F64, VT::F64}, {VT::I32}});
    f.local_get(0).local_get(1).op(cmp);
    f.finish("main");
    d.policy = optimizing_only();
    d.take_and_validate();
    const Value args[2] = {Value::from_f64(std::nan("")), Value::from_f64(1.0)};
    d.run(args);
    d.expect_identical("NaN compare");
  }
}

TEST(WasmJit, IntOpsAndConversionsIdentical) {
  TriRunner d;
  auto f = d.mb.define(FuncType{{VT::I64}, {VT::I64}});
  f.local_get(0).i64(13).op(Opcode::I64Rotl);
  f.i64(7).op(Opcode::I64Rotr);
  f.op(Opcode::I32WrapI64).i32(5).op(Opcode::I32Rotl);
  f.i32(0).op(Opcode::I32Eqz).op(Opcode::I32Sub);
  f.op(Opcode::I64ExtendI32U);
  f.local_get(0).i64(63).op(Opcode::I64And).op(Opcode::I64Shl);
  f.local_get(0).op(Opcode::I64Xor);
  // Select on a computed condition.
  f.i64(111).local_get(0).i64(0).op(Opcode::I64Ne).op(Opcode::Select);
  // Signed/unsigned div+rem on known-safe operands.
  f.i64(1000).op(Opcode::I64Add).i64(37).op(Opcode::I64DivS);
  f.i64(11).op(Opcode::I64RemU);
  // int->float conversion and a float compare back to i32 (the reverse
  // float->int truncations are deliberately JIT-ineligible).
  f.op(Opcode::I32WrapI64).op(Opcode::F64ConvertI32S);
  f.f64(100.0).op(Opcode::F64Lt).op(Opcode::I64ExtendI32U);
  f.finish("main");
  d.policy = optimizing_only();
  d.take_and_validate();
  const Value arg = Value::from_i64(0x123456789abcdef0ll);
  d.run({&arg, 1});
  d.expect_identical("int ops");
  ASSERT_TRUE(d.jit().result.ok());
  if (jit::available()) { EXPECT_EQ(d.jit_compiled, 1u); }
}

TEST(WasmJit, GlobalsIdentical) {
  TriRunner d;
  d.mb.add_global(VT::I64, true, Value::from_i64(5));
  d.mb.add_global(VT::I64, true, Value::from_i64(0));
  auto f = d.mb.define(FuncType{{}, {VT::I64}});
  f.add_local(VT::I32);
  f.i32(10).local_set(0);
  f.block();
  f.loop();
  f.local_get(0).i32(0).op(Opcode::I32LeS).br_if(1);
  f.op(Opcode::GlobalGet, 1).op(Opcode::GlobalGet, 0).op(Opcode::I64Add);
  f.op(Opcode::GlobalSet, 1);
  f.op(Opcode::GlobalGet, 0).i64(1).op(Opcode::I64Add).op(Opcode::GlobalSet, 0);
  f.local_get(0).i32(-1).op(Opcode::I32Add).local_set(0);
  f.br(0);
  f.end();
  f.end();
  f.op(Opcode::GlobalGet, 1);
  f.finish("main");
  d.policy = optimizing_only();
  d.take_and_validate();
  d.run();
  d.expect_identical("globals");
  ASSERT_TRUE(d.jit().result.ok());
}

TEST(WasmJit, DivTrapsIdentical) {
  // Each divide trap must fire from inside compiled code with the exact
  // charge state the quickened loop leaves: the trapping QInstr is fully
  // charged (the trap happens mid-execute), preceding same-block QInstrs
  // are charged, following ones are not.
  struct Case {
    Opcode op;
    int64_t a, b;
    bool i64;
  };
  const Case cases[] = {
      {Opcode::I32DivS, 7, 0, false},  {Opcode::I32DivU, 7, 0, false},
      {Opcode::I32RemS, 7, 0, false},  {Opcode::I32RemU, 7, 0, false},
      {Opcode::I32DivS, INT32_MIN, -1, false},
      {Opcode::I32RemS, INT32_MIN, -1, false},  // no trap: result 0
      {Opcode::I64DivS, 7, 0, true},   {Opcode::I64DivU, 7, 0, true},
      {Opcode::I64RemS, 7, 0, true},   {Opcode::I64RemU, 7, 0, true},
      {Opcode::I64DivS, INT64_MIN, -1, true},
      {Opcode::I64RemS, INT64_MIN, -1, true},  // no trap: result 0
  };
  for (const Case& c : cases) {
    TriRunner d;
    const VT vt = c.i64 ? VT::I64 : VT::I32;
    auto f = d.mb.define(FuncType{{vt, vt}, {vt}});
    // A couple of straightline ops before the div so a partial-trap
    // unwind has a prefix to charge.
    if (c.i64) {
      f.local_get(0).i64(0).op(Opcode::I64Add);
      f.local_get(1).op(c.op);
    } else {
      f.local_get(0).i32(0).op(Opcode::I32Add);
      f.local_get(1).op(c.op);
    }
    f.finish("main");
    d.policy = optimizing_only();
    d.take_and_validate();
    Value args[2];
    if (c.i64) {
      args[0] = Value::from_i64(c.a);
      args[1] = Value::from_i64(c.b);
    } else {
      args[0] = Value::from_i32(static_cast<int32_t>(c.a));
      args[1] = Value::from_i32(static_cast<int32_t>(c.b));
    }
    d.run(args);
    d.expect_identical("div trap");
  }
}

TEST(WasmJit, OobTrapIdentical) {
  // An out-of-bounds store mid-loop: the partial-trap helper must charge
  // the preceding block prefix and the trapping store itself, and leave
  // the stores already executed visible in memory.
  // Addresses stride 16KiB from 0, so iteration 4 crosses the one-page
  // memory: limit 3 completes cleanly, limit 8 traps mid-loop.
  for (const uint32_t limit : {3u, 8u}) {
    TriRunner d;
    d.mb.set_memory(1);
    auto f = d.mb.define(FuncType{{}, {VT::I32}});
    f.add_local(VT::I32);
    f.i32(0).local_set(0);
    f.block();
    f.loop();
    f.local_get(0).i32(static_cast<int32_t>(limit)).op(Opcode::I32GeU).br_if(1);
    f.local_get(0).i32(16384).op(Opcode::I32Mul);
    f.local_get(0).store(Opcode::I32Store);
    f.local_get(0).i32(1).op(Opcode::I32Add).local_set(0);
    f.br(0);
    f.end();
    f.end();
    f.local_get(0);
    f.finish("main");
    d.policy = optimizing_only();
    d.take_and_validate();
    d.run();
    d.expect_identical("oob limit=" + std::to_string(limit));
    EXPECT_EQ(d.jit().result.trap,
              limit <= 4 ? Trap::None : Trap::MemoryOutOfBounds);
  }
}

TEST(WasmJit, UnreachableTrapIdentical) {
  TriRunner d;
  auto f = d.mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.local_get(0).if_();
  f.op(Opcode::Unreachable);
  f.end();
  f.i32(42);
  f.finish("main");
  d.policy = optimizing_only();
  d.take_and_validate();
  for (const int32_t cond : {0, 1}) {
    const Value arg = Value::from_i32(cond);
    d.run({&arg, 1});
    d.expect_identical(cond ? "unreachable taken" : "unreachable skipped");
    EXPECT_EQ(d.jit().result.trap,
              cond ? Trap::Unreachable : Trap::None);
  }
}

TEST(WasmJit, IneligibleOpsFallBackPerFunction) {
  // memory.grow is not JIT-eligible (it can move the memory base under
  // the compiled code): the function must transparently stay on quickened
  // dispatch with identical observables, and nothing must be compiled.
  TriRunner d;
  d.mb.set_memory(1, 4);
  auto f = d.mb.define(FuncType{{}, {VT::I32}});
  f.i32(2).op(Opcode::MemoryGrow);
  f.op(Opcode::MemorySize).op(Opcode::I32Add);
  f.finish("main");
  d.policy = optimizing_only();
  d.take_and_validate();
  d.run();
  d.expect_identical("memory.grow fallback");
  EXPECT_EQ(d.jit_compiled, 0u);
}

TEST(WasmJit, JitRequiresQuicken) {
  ModuleBuilder mb;
  build_hot_loop(mb, 4);
  Module m = mb.take();
  ASSERT_FALSE(validate(m).has_value());
  Instance inst(m, {});
  inst.set_quicken(false);
  inst.set_jit(true);  // must refuse: the JIT lowers QCode
  EXPECT_FALSE(inst.jit_enabled());
  ASSERT_TRUE(inst.invoke("main", {}).ok());
  // And disabling quicken afterwards drags the JIT down with it.
  Instance inst2(m, {});
  inst2.set_quicken(true);
  inst2.set_jit(true);
  inst2.set_quicken(false);
  EXPECT_FALSE(inst2.jit_enabled());
}

TEST(WasmJit, ProcessDefaultToggle) {
  ModuleBuilder mb;
  build_hot_loop(mb, 4);
  Module m = mb.take();
  ASSERT_FALSE(validate(m).has_value());
  jit::set_jit_default(false);
  {
    Instance inst(m, {});
    EXPECT_FALSE(inst.jit_enabled());
    ASSERT_TRUE(inst.invoke("main", {}).ok());
  }
  jit::set_jit_default(true);
  {
    Instance inst(m, {});
    EXPECT_EQ(inst.jit_enabled(), inst.quicken_enabled() && jit::available());
  }
}

TEST(WasmJit, CostTableChangeRecompiles) {
  // The charge side table is priced from the optimizing cost row at
  // compile time; changing the tables must invalidate compiled code, and
  // the recompiled function must charge from the new prices.
  TriRunner d;
  build_hot_loop(d.mb, 50);
  d.policy = optimizing_only();
  d.take_and_validate();

  CostTable expensive;
  expensive.fill(700);
  ExecStats got[3];
  for (int engine = 0; engine < 3; ++engine) {
    Instance inst(d.module(), {});
    inst.set_quicken(engine > 0);
    inst.set_jit(engine == 2);
    inst.set_tier_policy(optimizing_only());
    ASSERT_TRUE(inst.invoke("main", {}).ok());  // compiled under default prices
    inst.set_cost_tables(expensive, expensive);
    ASSERT_TRUE(inst.invoke("main", {}).ok());
    got[engine] = inst.stats();
  }
  EXPECT_EQ(got[0].cost_ps, got[1].cost_ps);
  EXPECT_EQ(got[0].cost_ps, got[2].cost_ps);
  EXPECT_EQ(got[0].ops_executed, got[2].ops_executed);
}

// ---------------------------------------------------------------------------
// White-box: the stencil table itself.

TEST(WasmJitStencil, TableShape) {
  const jit::StencilTable& t = jit::stencils();
  // Straightline ops the compiler depends on must exist.
  EXPECT_TRUE(t.ops[static_cast<size_t>(QOp::Const)].valid);
  EXPECT_TRUE(t.ops[static_cast<size_t>(QOp::LocalGet)].valid);
  EXPECT_TRUE(t.ops[static_cast<size_t>(QOp::I32Add)].valid);
  EXPECT_TRUE(t.ops[static_cast<size_t>(QOp::I64DivS)].valid);
  EXPECT_TRUE(t.ops[static_cast<size_t>(QOp::F64Sqrt)].valid);
  EXPECT_TRUE(t.ops[static_cast<size_t>(QOp::FGetGetSet_I32Add)].valid);
  EXPECT_TRUE(t.ops[static_cast<size_t>(QOp::FGetConstSet_F64Mul)].valid);
  EXPECT_TRUE(t.ops[static_cast<size_t>(QOp::FGetLoadI32)].valid);
  // Ops the JIT must NOT claim to support (calls re-enter the
  // interpreter; memory.grow moves the base; no stencil was written for
  // the iclass/fclass unaries or the checked float->int truncations).
  EXPECT_FALSE(t.ops[static_cast<size_t>(QOp::Call)].valid);
  EXPECT_FALSE(t.ops[static_cast<size_t>(QOp::CallIndirect)].valid);
  EXPECT_FALSE(t.ops[static_cast<size_t>(QOp::BrTable)].valid);
  EXPECT_FALSE(t.ops[static_cast<size_t>(QOp::MemoryGrow)].valid);
  EXPECT_FALSE(t.ops[static_cast<size_t>(QOp::I32Clz)].valid);
  EXPECT_FALSE(t.ops[static_cast<size_t>(QOp::F64Floor)].valid);
  EXPECT_FALSE(t.ops[static_cast<size_t>(QOp::I32TruncF64S)].valid);
  // All branch shapes exist.
  for (int v = 0; v < jit::kBranchVariants; ++v) {
    EXPECT_TRUE(t.br[v].valid) << v;
    EXPECT_TRUE(t.br_if[v].valid) << v;
    for (int c = 0; c < 10; ++c) EXPECT_TRUE(t.cmp_br[c][v].valid) << c;
  }
  EXPECT_TRUE(t.ret[0].valid);
  EXPECT_TRUE(t.ret[1].valid);
  // Every branch stencil ends with a rel32 branch hole; every valid
  // stencil's holes lie inside its bytes.
  const auto holes_in_bounds = [](const jit::Stencil& s) {
    for (const jit::Hole& h : s.holes) {
      if (h.offset + 4 > s.bytes.size()) return false;
    }
    return true;
  };
  for (const jit::Stencil& s : t.ops) {
    if (s.valid) { EXPECT_TRUE(holes_in_bounds(s)); }
  }
  for (int v = 0; v < jit::kBranchVariants; ++v) {
    ASSERT_FALSE(t.br[v].holes.empty());
    EXPECT_EQ(t.br[v].holes.back().kind, jit::HoleKind::BranchA);
  }
}

TEST(WasmJitStencil, PatchImmediate) {
  QInstr q;
  q.a = 3;
  q.b = 0x1234;
  q.c = 7;
  q.val = Value::from_i64(0x1122334455667788ll);
  uint8_t buf[16] = {};
  jit::patch_immediate(buf, jit::Hole{2, jit::HoleKind::ImmB}, q);
  EXPECT_EQ(buf[2], 0x34);
  EXPECT_EQ(buf[3], 0x12);
  EXPECT_EQ(buf[4], 0x00);
  jit::patch_immediate(buf, jit::Hole{0, jit::HoleKind::DispA}, q);
  uint32_t disp = 0;
  std::memcpy(&disp, buf, 4);
  EXPECT_EQ(disp, 8u * 3u);  // slot -> byte offset
  jit::patch_immediate(buf, jit::Hole{8, jit::HoleKind::Val64}, q);
  uint64_t val = 0;
  std::memcpy(&val, buf + 8, 8);
  EXPECT_EQ(val, 0x1122334455667788ull);
  jit::patch_immediate(buf, jit::Hole{0, jit::HoleKind::DispB8}, q);
  std::memcpy(&disp, buf, 4);
  EXPECT_EQ(disp, 8u * 0x1234u + 8u);
}

TEST(WasmJitStencil, CompiledCodeContainsPatchedImmediate) {
  // White-box: compile a tiny function and check the constant's bits
  // actually appear in the emitted code (i.e. the Val64 hole was patched,
  // not left as the stencil's placeholder).
  if (!jit::available()) GTEST_SKIP() << "no executable memory on this host";
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {VT::I64}});
  f.i64(0x5a5a1234cafef00dll).i64(1).op(Opcode::I64Add);
  f.finish("main");
  Module m = mb.take();
  ASSERT_FALSE(validate(m).has_value());
  const QFunc qf = quicken(m, 0);
  jit::CodeCache cache;
  CostTable costs;
  costs.fill(100);
  auto cf = jit::compile(qf, 0, 1, costs, cache);
  ASSERT_NE(cf, nullptr);
  const std::span<const uint8_t> code = cf->code();
  const uint64_t needle = 0x5a5a1234cafef00dull;
  bool found = false;
  for (size_t i = 0; i + 8 <= code.size(); ++i) {
    uint64_t w;
    std::memcpy(&w, code.data() + i, 8);
    if (w == needle) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
  // And it runs: result, ops and charge table all line up.
  jit::JitContext ctx;
  ctx.fuel = UINT64_MAX;
  std::vector<uint64_t> stack(16), block_exec(cf->blocks().size());
  ctx.stack_base = stack.data();
  ctx.block_exec = block_exec.data();
  ctx.fn = cf.get();
  ctx.opt_costs = costs.data();
  cf->run(ctx);
  EXPECT_EQ(ctx.trap, 0u);
  EXPECT_EQ(ctx.result_bits, needle + 1);
  // Two consts + add + the body's End (merged as a charged ChargeOnly);
  // only the FuncReturn sentinel charges nothing.
  EXPECT_EQ(ctx.ops, 4u);
}

TEST(WasmJitCache, InstallsExecutableCode) {
  if (!jit::available()) GTEST_SKIP() << "no executable memory on this host";
  jit::CodeCache cache;
  // x86-64: mov eax, 0x2a; ret
  const uint8_t stub[] = {0xb8, 0x2a, 0x00, 0x00, 0x00, 0xc3};
  const uint8_t* p = cache.install(stub, sizeof(stub));
  ASSERT_NE(p, nullptr);
  using Fn = int (*)();
  EXPECT_EQ(reinterpret_cast<Fn>(const_cast<uint8_t*>(p))(), 42);
}

}  // namespace
}  // namespace wb::wasm
