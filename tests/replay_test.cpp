// wb::replay unit gates (tier1):
//  - trace serialize/parse round-trips byte-identically; the decoder
//    rejects corrupt inputs (magic, version, truncation, trailing bytes);
//  - attaching a recorder changes no observable (the neutrality contract
//    record-replay correctness rests on);
//  - a recorded trace replays bit-exactly, standalone, for both VMs;
//  - recording is deterministic (two recordings serialize identically);
//  - the reducer shrinks while preserving the exact-footer oracle, its
//    output events are a subsequence of the input's, and tampering with
//    a canned response is detected;
//  - re-pricing in the recording environment reproduces the footer, and
//    in a different environment produces a (different) clean replay;
//  - fuzz::reduce_indices minimizes monotone predicates exactly.
#include <gtest/gtest.h>

#include "backend/wasm_backend.h"
#include "fuzz/reduce.h"
#include "ir/passes.h"
#include "minic/minic.h"
#include "replay/corpus.h"
#include "replay/record.h"
#include "replay/reduce.h"
#include "replay/replay.h"
#include "replay/trace.h"

namespace wb {
namespace {

// A small mini-C program whose -O2 artifact imports libm host functions
// (pow/exp are host imports; sqrt and friends are native opcodes).
constexpr const char* kImportingC = R"(
double vals[8];
int main(void) {
  int i;
  double s = 0.0;
  double x = 1.5;
  for (i = 0; i < 8; i++) {
    vals[i] = pow(x, 2.0) + exp(x * 0.125);
    s = s + vals[i];
    x = x + 0.25;
  }
  return (int)s;
}
)";

// Math.imul over i % 5: 100 builtin calls, only 5 distinct memo keys —
// the shape the dedup stage is built for.
constexpr const char* kDupJs = R"(
function main() {
  var s = 0;
  for (var i = 0; i < 100; i++) {
    s = (s + Math.imul((i % 5) + 1, 2654435761) + Math.floor((i % 10) / 3)) | 0;
  }
  return s;
}
)";

backend::WasmArtifact compile_importing() {
  std::string error;
  auto m = minic::compile(kImportingC, {}, error);
  EXPECT_TRUE(m) << error;
  const ir::PipelineInfo info = ir::run_pipeline(*m, ir::OptLevel::O2);
  backend::WasmOptions opts;
  opts.fast_math = info.fast_math;
  backend::WasmArtifact artifact = backend::compile_to_wasm(std::move(*m), opts);
  EXPECT_TRUE(artifact.ok()) << artifact.error;
  EXPECT_FALSE(artifact.imports.empty());
  return artifact;
}

void expect_metrics_equal(const env::PageMetrics& a, const env::PageMetrics& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.cost_ps, b.cost_ps);
  EXPECT_EQ(a.memory_bytes, b.memory_bytes);
  EXPECT_EQ(a.code_size, b.code_size);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.boundary_crossings, b.boundary_crossings);
  EXPECT_EQ(a.attr_ps, b.attr_ps);
}

TEST(ReplayTrace, SerializeParseRoundTrip) {
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  std::string error;
  const auto trace = replay::record_js("dup-js", kDupJs, browser, {}, error);
  ASSERT_TRUE(trace) << error;
  ASSERT_FALSE(trace->events.empty());

  const std::vector<uint8_t> bytes = replay::serialize(*trace);
  const auto parsed = replay::parse(bytes, error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(replay::serialize(*parsed), bytes);
  EXPECT_EQ(replay::digest_hex(*parsed), replay::digest_hex(*trace));
  EXPECT_EQ(parsed->name, trace->name);
  EXPECT_EQ(parsed->events.size(), trace->events.size());
  EXPECT_EQ(parsed->footer, trace->footer);
}

TEST(ReplayTrace, ParseRejectsCorruptInputs) {
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  std::string error;
  const auto trace = replay::record_js("dup-js", kDupJs, browser, {}, error);
  ASSERT_TRUE(trace) << error;
  std::vector<uint8_t> bytes = replay::serialize(*trace);

  {
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xff;  // magic
    EXPECT_FALSE(replay::parse(bad, error));
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[4] = 0x7f;  // version
    EXPECT_FALSE(replay::parse(bad, error));
  }
  {
    std::vector<uint8_t> bad(bytes.begin(), bytes.begin() + bytes.size() / 2);
    EXPECT_FALSE(replay::parse(bad, error));
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad.push_back(0);  // trailing byte
    EXPECT_FALSE(replay::parse(bad, error));
  }
  EXPECT_FALSE(replay::parse({}, error));
}

TEST(ReplayRecord, RecorderIsObservableNeutralWasm) {
  const env::BrowserEnv browser(env::Browser::Firefox, env::Platform::Desktop);
  const backend::WasmArtifact artifact = compile_importing();

  const env::PageMetrics plain = browser.run_wasm(artifact, {});
  replay::Trace trace;
  replay::TraceRecorder recorder(trace);
  env::RunOptions options;
  options.recorder = &recorder;
  const env::PageMetrics recorded = browser.run_wasm(artifact, options);

  ASSERT_TRUE(plain.ok);
  expect_metrics_equal(plain, recorded);
  EXPECT_FALSE(trace.events.empty());
}

TEST(ReplayRecord, RecorderIsObservableNeutralJs) {
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Mobile);
  const env::PageMetrics plain = browser.run_js(kDupJs, {});
  replay::Trace trace;
  replay::TraceRecorder recorder(trace);
  env::RunOptions options;
  options.recorder = &recorder;
  const env::PageMetrics recorded = browser.run_js(kDupJs, options);

  ASSERT_TRUE(plain.ok);
  expect_metrics_equal(plain, recorded);
}

TEST(ReplayRecord, RecordingIsDeterministic) {
  const env::BrowserEnv browser(env::Browser::Edge, env::Platform::Desktop);
  const backend::WasmArtifact artifact = compile_importing();
  std::string error;
  const auto a = replay::record_wasm("imp", artifact, browser, {}, error);
  const auto b = replay::record_wasm("imp", artifact, browser, {}, error);
  ASSERT_TRUE(a) << error;
  ASSERT_TRUE(b) << error;
  EXPECT_EQ(replay::serialize(*a), replay::serialize(*b));
}

TEST(ReplayReplay, WasmTraceReplaysBitExact) {
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  const backend::WasmArtifact artifact = compile_importing();
  std::string error;
  const auto trace = replay::record_wasm("imp", artifact, browser, {}, error);
  ASSERT_TRUE(trace) << error;
  EXPECT_GT(replay::count_events(*trace, replay::EventKind::HostCall), 0u);

  const replay::ReplayResult r = replay::verify(*trace);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ReplayReplay, JsTraceReplaysBitExact) {
  const env::BrowserEnv browser(env::Browser::Firefox, env::Platform::Mobile);
  std::string error;
  const auto trace = replay::record_js("dup-js", kDupJs, browser, {}, error);
  ASSERT_TRUE(trace) << error;
  EXPECT_GT(replay::count_events(*trace, replay::EventKind::BuiltinCall), 0u);

  const replay::ReplayResult r = replay::verify(*trace);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ReplayReplay, NoJitConfigurationReplays) {
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  env::RunOptions options;
  options.js_jit_enabled = false;
  std::string error;
  const auto trace = replay::record_js("dup-nojit", kDupJs, browser, options, error);
  ASSERT_TRUE(trace) << error;
  EXPECT_FALSE(trace->config.optimizing_enabled);
  const replay::ReplayResult r = replay::verify(*trace);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ReplayReduce, DedupShrinksAndStaysExact) {
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  std::string error;
  const auto trace = replay::record_js("dup-js", kDupJs, browser, {}, error);
  ASSERT_TRUE(trace) << error;

  const replay::ReduceResult r = replay::reduce_trace(*trace);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.ddmin_ran);
  EXPECT_GE(r.events_before, 2 * r.events_after);  // 100 imul calls, 5 keys
  EXPECT_LT(r.bytes_after, r.bytes_before);
  EXPECT_TRUE(replay::verify(r.reduced).ok);

  // The reduced event log is a subsequence of the original's.
  size_t pos = 0;
  for (const replay::Event& e : r.reduced.events) {
    while (pos < trace->events.size() && !(trace->events[pos] == e)) ++pos;
    ASSERT_LT(pos, trace->events.size());
    ++pos;
  }
}

TEST(ReplayReduce, TamperedCannedResponseIsDetected) {
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  std::string error;
  const auto trace = replay::record_js("dup-js", kDupJs, browser, {}, error);
  ASSERT_TRUE(trace) << error;

  const replay::ReduceResult reduced = replay::reduce_trace(*trace);
  ASSERT_TRUE(reduced.ok) << reduced.error;
  replay::Trace tampered = reduced.reduced;
  for (replay::Event& e : tampered.events) {
    if (e.kind == replay::EventKind::BuiltinCall) {
      e.result ^= 1;
      break;
    }
  }
  EXPECT_FALSE(replay::verify(tampered).ok);
}

TEST(ReplayReplay, RepriceInRecordingEnvMatchesFooter) {
  const env::BrowserEnv browser(env::Browser::Chrome, env::Platform::Desktop);
  const backend::WasmArtifact artifact = compile_importing();
  std::string error;
  const auto trace = replay::record_wasm("imp", artifact, browser, {}, error);
  ASSERT_TRUE(trace) << error;

  const replay::ReplayResult same = replay::replay_in_env(*trace, browser);
  ASSERT_TRUE(same.ok) << same.error;
  EXPECT_EQ(same.metrics.cost_ps, trace->footer.cost_ps);
  EXPECT_EQ(same.metrics.result, trace->footer.result);
  EXPECT_EQ(same.metrics.memory_bytes, trace->footer.memory_bytes);

  const env::BrowserEnv other(env::Browser::Firefox, env::Platform::Desktop);
  const replay::ReplayResult repriced = replay::replay_in_env(*trace, other);
  ASSERT_TRUE(repriced.ok) << repriced.error;
  EXPECT_EQ(repriced.metrics.result, trace->footer.result);
  EXPECT_NE(repriced.metrics.cost_ps, trace->footer.cost_ps);
}

TEST(ReduceIndices, MinimizesMonotonePredicate) {
  // Oracle: candidate must contain indices 3 and 7.
  const auto still_ok = [](const std::vector<size_t>& kept) {
    bool has3 = false, has7 = false;
    for (const size_t i : kept) {
      if (i == 3) has3 = true;
      if (i == 7) has7 = true;
    }
    return has3 && has7;
  };
  const std::vector<size_t> kept = fuzz::reduce_indices(10, still_ok);
  EXPECT_EQ(kept, (std::vector<size_t>{3, 7}));

  // Always-true predicate: everything is removable.
  EXPECT_TRUE(
      fuzz::reduce_indices(6, [](const std::vector<size_t>&) { return true; })
          .empty());
  // Never-true predicate: nothing is removable.
  EXPECT_EQ(
      fuzz::reduce_indices(4, [](const std::vector<size_t>&) { return false; })
          .size(),
      4u);
}

}  // namespace
}  // namespace wb
