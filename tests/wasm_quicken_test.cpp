// Quickened-vs-classic identity tests (hand-built modules). The quickening
// invariant (quicken.h) is that every observable — trap, result bits, and
// every ExecStats field including fuel accounting and tier-up timing — is
// bit-identical to the classic one-Instr-at-a-time loop. These tests pin
// that down on modules chosen to exercise each superinstruction pattern,
// each trap inside a fused region, and every fuel boundary of a fused
// body; the whole-corpus version lives in quicken_corpus_test.cpp (slow).
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "wasm/builder.h"
#include "wasm/interp.h"
#include "wasm/quicken.h"
#include "wasm/validator.h"

namespace wb::wasm {
namespace {

using VT = ValType;

/// Runs the same module twice — classic and quickened — under identical
/// settings and exposes both outcomes for comparison.
class DualRunner {
 public:
  ModuleBuilder mb;
  std::vector<HostFn> host_fns;
  std::optional<TierPolicy> policy;
  uint64_t grow_cost = 0;

  void take_and_validate() {
    module_ = mb.take();
    const auto err = validate(module_);
    ASSERT_FALSE(err.has_value()) << (err ? err->message : "");
  }

  void run(std::span<const Value> args = {}, uint64_t fuel = 100'000'000) {
    for (const bool quicken : {false, true}) {
      Instance inst(module_, host_fns);
      inst.set_quicken(quicken);
      EXPECT_EQ(inst.quicken_enabled(), quicken);
      if (policy) inst.set_tier_policy(*policy);
      if (grow_cost) inst.set_grow_cost(grow_cost);
      inst.set_fuel(fuel);
      auto& out = quicken ? quick_ : classic_;
      out.result = inst.invoke("main", args);
      out.stats = inst.stats();
      out.tier0 = inst.function_tier(0);
    }
  }

  /// Asserts both runs observed exactly the same world.
  void expect_identical(const char* what) {
    EXPECT_EQ(classic_.result.trap, quick_.result.trap) << what;
    if (classic_.result.ok() && quick_.result.ok()) {
      EXPECT_EQ(classic_.result.value.bits, quick_.result.value.bits) << what;
    }
    EXPECT_EQ(classic_.stats.ops_executed, quick_.stats.ops_executed) << what;
    EXPECT_EQ(classic_.stats.cost_ps, quick_.stats.cost_ps) << what;
    EXPECT_EQ(classic_.stats.arith_counts, quick_.stats.arith_counts) << what;
    EXPECT_EQ(classic_.stats.calls, quick_.stats.calls) << what;
    EXPECT_EQ(classic_.stats.host_calls, quick_.stats.host_calls) << what;
    EXPECT_EQ(classic_.stats.memory_grows, quick_.stats.memory_grows) << what;
    EXPECT_EQ(classic_.stats.tierups, quick_.stats.tierups) << what;
    EXPECT_EQ(classic_.tier0, quick_.tier0) << what;
  }

  struct Outcome {
    InvokeResult result;
    ExecStats stats;
    Tier tier0 = Tier::Baseline;
  };
  const Outcome& classic() const { return classic_; }
  const Outcome& quick() const { return quick_; }
  const Module& module() const { return module_; }

 private:
  Module module_;
  Outcome classic_, quick_;
};

/// The bench-style hot loop: local 0 counts down from `n`, local 1
/// accumulates. Its body hits every fusion pattern the translator knows:
/// local.get+const+cmp feeding br_if (FCmpBrIf), local.get+local.get+add
/// (FGetGet), local.get+const+add (FGetConst), and const+local.set
/// (FConstSet).
void build_hot_loop(ModuleBuilder& mb, int32_t n) {
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.add_local(VT::I32);  // local 0: i
  f.add_local(VT::I32);  // local 1: acc
  f.i32(n).local_set(0);
  f.i32(0).local_set(1);
  f.block();
  f.loop();
  f.local_get(0).i32(0).op(Opcode::I32LeS).br_if(1);  // FCmpBrIf exit
  f.local_get(1).local_get(0).op(Opcode::I32Add).local_set(1);  // FGetGet
  f.local_get(0).i32(-1).op(Opcode::I32Add).local_set(0);       // FGetConst
  f.br(0);
  f.end();
  f.end();
  f.local_get(1);
  f.finish("main");
}

TEST(WasmQuicken, HotLoopIdentical) {
  DualRunner d;
  build_hot_loop(d.mb, 1000);
  d.take_and_validate();
  d.run();
  d.expect_identical("hot loop");
  ASSERT_TRUE(d.quick().result.ok());
  EXPECT_EQ(d.quick().result.value.as_i32(), 1000 * 1001 / 2);
}

// White-box: the translated hot loop must actually contain the fused
// superinstructions (otherwise the ≥2x dispatch win silently evaporates
// while every black-box identity test keeps passing).
TEST(WasmQuicken, TranslationFusesHotLoop) {
  ModuleBuilder mb;
  build_hot_loop(mb, 10);
  Module m = mb.take();
  ASSERT_FALSE(validate(m).has_value());
  const QFunc qf = quicken(m, 0);
  int get_const_cmp = 0, get_get_add_set = 0, get_const_add_set = 0,
      const_set = 0;
  for (const QInstr& q : qf.code) {
    switch (q.qop()) {
      // The loop exit test local.get+const+i32.le_s wins the trigram
      // priority over the cmp+br_if bigram.
      case QOp::FGetConst_I32LeS: ++get_const_cmp; break;
      // Both loop-body statements are acc = a + b shapes: the 4-gram
      // (trigram + trailing local.set) wins over the bare trigram.
      case QOp::FGetGetSet_I32Add: ++get_get_add_set; break;
      case QOp::FGetConstSet_I32Add: ++get_const_add_set; break;
      case QOp::FConstSet: ++const_set; break;
      default: break;
    }
  }
  EXPECT_EQ(get_const_cmp, 1);
  EXPECT_EQ(get_get_add_set, 1);
  EXPECT_EQ(get_const_add_set, 1);
  EXPECT_EQ(const_set, 2);  // the two loop-variable initializers
  // Every fused QInstr must charge for all of its constituents; the sum of
  // merged-op counts must equal the classic loop's executed-Instr universe
  // (the whole body; the FuncReturn sentinel itself charges nothing).
  ASSERT_FALSE(qf.code.empty());
  EXPECT_EQ(qf.code.back().qop(), QOp::FuncReturn);
  EXPECT_EQ(qf.code.back().nops, 0);
  uint64_t total_nops = 0;
  for (const QInstr& q : qf.code) total_nops += q.nops;
  EXPECT_EQ(total_nops, m.functions[0].body.size());
}

// A compare whose operands do NOT come from the get/get or get/const
// patterns still fuses with a following br_if (FCmpBrIf), and branches
// identically both ways.
TEST(WasmQuicken, CmpBrIfFusionIdentical) {
  DualRunner d;
  auto f = d.mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.block();
  f.local_get(0).op(Opcode::I32Popcnt).i32(2).op(Opcode::I32GtS).br_if(0);
  f.i32(7).op(Opcode::Return);
  f.end();
  f.i32(42);
  f.finish("main");
  d.take_and_validate();
  const QFunc qf = quicken(d.module(), 0);
  int cmp_br_if = 0;
  for (const QInstr& q : qf.code) cmp_br_if += q.qop() == QOp::FCmpBrIf;
  EXPECT_EQ(cmp_br_if, 1);
  for (const int32_t x : {7, 1}) {  // popcnt 3 -> taken; popcnt 1 -> not
    const Value arg = Value::from_i32(x);
    d.run({&arg, 1});
    SCOPED_TRACE("x=" + std::to_string(x));
    d.expect_identical("cmp+br_if");
    ASSERT_TRUE(d.quick().result.ok());
    EXPECT_EQ(d.quick().result.value.as_i32(), x == 7 ? 42 : 7);
  }
}

// The paper-facing invariant at its sharpest: for EVERY fuel value, the
// quickened engine traps (or not) exactly where the classic one does, with
// identical partial metrics — even when the boundary lands in the middle
// of a fused superinstruction.
TEST(WasmQuicken, FuelSweepPreservesExhaustionPoint) {
  DualRunner d;
  build_hot_loop(d.mb, 6);
  d.take_and_validate();
  // 6 iterations of a ~13-op body: 130 covers startup, all iterations, and
  // the clean-exit tail, so every charging boundary is crossed once.
  for (uint64_t fuel = 0; fuel <= 130; ++fuel) {
    d.run({}, fuel);
    SCOPED_TRACE("fuel=" + std::to_string(fuel));
    d.expect_identical("fuel sweep");
    if (!d.classic().result.ok()) {
      EXPECT_EQ(d.classic().result.trap, Trap::FuelExhausted);
    }
  }
}

TEST(WasmQuicken, DivideByZeroInsideFusedRegion) {
  DualRunner d;
  auto f = d.mb.define(FuncType{{VT::I32}, {VT::I32}});
  // local.get+local.get feeds the (unfused) div; trap state must match.
  f.local_get(0).local_get(0).op(Opcode::I32Add);
  f.i32(0).op(Opcode::I32DivS);
  f.finish("main");
  d.take_and_validate();
  const Value arg = Value::from_i32(7);
  d.run({&arg, 1});
  d.expect_identical("div by zero");
  EXPECT_EQ(d.quick().result.trap, Trap::IntegerDivideByZero);
}

TEST(WasmQuicken, OutOfBoundsFusedGetLoad) {
  DualRunner d;
  d.mb.set_memory(1);
  auto f = d.mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.local_get(0).load(Opcode::I32Load);  // FGetLoadI32
  f.finish("main");
  d.take_and_validate();
  for (const int32_t addr : {0, 65532, 65533, -4}) {
    const Value arg = Value::from_i32(addr);
    d.run({&arg, 1});
    SCOPED_TRACE("addr=" + std::to_string(addr));
    d.expect_identical("fused get+load");
  }
}

TEST(WasmQuicken, UnreachableIdentical) {
  DualRunner d;
  auto f = d.mb.define(FuncType{{}, {VT::I32}});
  f.i32(1).if_(kVoidBlockType).op(Opcode::Unreachable).end();
  f.i32(3);
  f.finish("main");
  d.take_and_validate();
  d.run();
  d.expect_identical("unreachable");
  EXPECT_EQ(d.quick().result.trap, Trap::Unreachable);
}

TEST(WasmQuicken, IfElseAndBrTableIdentical) {
  DualRunner d;
  auto f = d.mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.add_local(VT::I32);
  f.block();      // depth 2 -> result 30
  f.block();      // depth 1 -> result 20
  f.block();      // depth 0 -> result 10
  f.local_get(0).br_table({0, 1, 2});
  f.end();
  f.i32(10).local_set(1).br(1);
  f.end();
  f.i32(20).local_set(1).br(0);
  f.end();
  f.local_get(1).i32(0).op(Opcode::I32Eq).if_(kVoidBlockType);
  f.i32(30).local_set(1);
  f.else_();
  f.local_get(1).i32(1).op(Opcode::I32Add).local_set(1);
  f.end();
  f.local_get(1);
  f.finish("main");
  d.take_and_validate();
  const int32_t expected[] = {11, 21, 30, 30};  // default clamps to last
  for (int32_t sel = 0; sel < 4; ++sel) {
    const Value arg = Value::from_i32(sel);
    d.run({&arg, 1});
    SCOPED_TRACE("selector=" + std::to_string(sel));
    d.expect_identical("br_table");
    ASSERT_TRUE(d.quick().result.ok());
    EXPECT_EQ(d.quick().result.value.as_i32(), expected[sel]);
  }
}

TEST(WasmQuicken, CallsHostImportsAndEarlyReturn) {
  DualRunner d;
  const uint32_t imp =
      d.mb.add_import("env", "twice", FuncType{{VT::I32}, {VT::I32}});
  d.host_fns.push_back([](std::span<const Value> args, Value* result) {
    *result = Value::from_i32(args[0].as_i32() * 2);
    return Trap::None;
  });
  // callee(x): if (x > 10) return 100; return twice(x);
  auto callee = d.mb.define(FuncType{{VT::I32}, {VT::I32}});
  callee.local_get(0).i32(10).op(Opcode::I32GtS).if_(kVoidBlockType);
  callee.i32(100).op(Opcode::Return);
  callee.end();
  callee.local_get(0).call(imp);
  callee.finish();
  auto f = d.mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.local_get(0).call(callee.index());
  f.finish("main");
  d.take_and_validate();
  for (const int32_t x : {3, 11}) {
    const Value arg = Value::from_i32(x);
    d.run({&arg, 1});
    SCOPED_TRACE("x=" + std::to_string(x));
    d.expect_identical("calls");
    ASSERT_TRUE(d.quick().result.ok());
    EXPECT_EQ(d.quick().result.value.as_i32(), x > 10 ? 100 : 2 * x);
  }
}

// Tier-up hotness is counted on function entries and loop back-edges; the
// quickened loop must hit the threshold at the same op, pay the same
// one-time compile cost, and switch cost tables at the same instant.
TEST(WasmQuicken, TierUpTimingIdentical) {
  DualRunner d;
  build_hot_loop(d.mb, 200);
  d.take_and_validate();
  TierPolicy policy;
  policy.tierup_threshold = 16;
  policy.tierup_cost_per_instr = 55;
  d.policy = policy;
  d.run();
  d.expect_identical("tier-up");
  EXPECT_EQ(d.quick().stats.tierups, 1u);
  EXPECT_EQ(d.quick().tier0, Tier::Optimizing);
}

TEST(WasmQuicken, MemoryGrowAndGlobalsIdentical) {
  DualRunner d;
  d.mb.set_memory(1, 4);
  const uint32_t g = d.mb.add_global(VT::I32, true, Value::from_i32(5));
  d.grow_cost = 777;
  auto f = d.mb.define(FuncType{{}, {VT::I32}});
  f.i32(2).op(Opcode::MemoryGrow);  // old size: 1
  f.op(Opcode::MemorySize);         // 3
  f.op(Opcode::I32Mul);
  f.global_get(g).op(Opcode::I32Add);
  f.global_set(g);
  f.global_get(g);
  f.finish("main");
  d.take_and_validate();
  d.run();
  d.expect_identical("memory.grow");
  ASSERT_TRUE(d.quick().result.ok());
  EXPECT_EQ(d.quick().result.value.as_i32(), 1 * 3 + 5);
  EXPECT_EQ(d.quick().stats.memory_grows, 1u);
}

TEST(WasmQuicken, FloatFusionIdentical) {
  DualRunner d;
  auto f = d.mb.define(FuncType{{VT::F64, VT::F64}, {VT::F64}});
  f.local_get(0).local_get(1).op(Opcode::F64Mul);   // FGetGet_F64Mul
  f.local_get(0).f64(0.5).op(Opcode::F64Add);       // FGetConst_F64Add
  f.op(Opcode::F64Sub);
  f.op(Opcode::F64Sqrt);
  f.finish("main");
  d.take_and_validate();
  const Value args[] = {Value::from_f64(3.25), Value::from_f64(8.0)};
  d.run(args);
  d.expect_identical("float fusion");
  ASSERT_TRUE(d.quick().result.ok());
  EXPECT_DOUBLE_EQ(d.quick().result.value.as_f64(), std::sqrt(3.25 * 8.0 - 3.75));
}

}  // namespace
}  // namespace wb::wasm
