// Whole-corpus quickening gate (slow tier): every benchmark at -O0 and
// -O2 must produce the same trap/result and bit-identical virtual metrics
// (cost_ps, ops_executed, arith_counts, calls, host_calls, memory_grows,
// tierups) on the quickened engine as on the classic loop, on both the
// baseline-pinned and optimizing-pinned tiers — and the recorded boundary
// event stream (wb::replay: every host call's arg/result bits, every
// memory.grow, in order) must be byte-identical too, which is strictly
// stronger than the host_calls counter agreeing. This is the corpus-scale
// version of wasm_quicken_test.cpp and the CI-side twin of the fuzz
// harness's quicken oracle.
#include <gtest/gtest.h>

#include "backend/wasm_backend.h"
#include "benchmarks/registry.h"
#include "core/study.h"
#include "replay/record.h"
#include "wasm/interp.h"

namespace wb {
namespace {

struct RunOutcome {
  wasm::Trap init_trap = wasm::Trap::None;
  wasm::InvokeResult main_result;
  wasm::ExecStats stats;
  replay::Trace boundary;  ///< recorded boundary event stream
};

RunOutcome run_engine(const backend::WasmArtifact& artifact, bool optimizing,
                      bool quicken) {
  wasm::Instance inst(artifact.module, backend::make_import_bindings(artifact));
  inst.set_quicken(quicken);
  wasm::TierPolicy policy;
  policy.baseline_enabled = !optimizing;
  policy.optimizing_enabled = optimizing;
  inst.set_tier_policy(policy);
  inst.set_fuel(200'000'000);
  RunOutcome out;
  replay::TraceRecorder recorder(out.boundary);
  inst.set_recorder(&recorder);
  out.init_trap = inst.invoke("__init", {}).trap;
  if (out.init_trap == wasm::Trap::None) {
    out.main_result = inst.invoke("main", {});
  }
  out.stats = inst.stats();
  return out;
}

class QuickenCorpus : public testing::TestWithParam<const core::BenchSource*> {};

TEST_P(QuickenCorpus, QuickenedMatchesClassicBitForBit) {
  const core::BenchSource& bench = *GetParam();
  for (const ir::OptLevel level : {ir::OptLevel::O0, ir::OptLevel::O2}) {
    const core::BuildResult build =
        core::build(bench, core::InputSize::XS, level);
    ASSERT_TRUE(build.ok) << bench.name << ": " << build.error;
    for (const bool optimizing : {false, true}) {
      SCOPED_TRACE(std::string(bench.name) + " at " + to_string(level) +
                   (optimizing ? " optimizing" : " baseline"));
      const RunOutcome classic = run_engine(build.wasm, optimizing, false);
      const RunOutcome quick = run_engine(build.wasm, optimizing, true);
      EXPECT_EQ(classic.init_trap, quick.init_trap);
      EXPECT_EQ(classic.main_result.trap, quick.main_result.trap);
      if (classic.main_result.ok() && quick.main_result.ok()) {
        EXPECT_EQ(classic.main_result.value.bits, quick.main_result.value.bits);
      }
      EXPECT_EQ(classic.stats.ops_executed, quick.stats.ops_executed);
      EXPECT_EQ(classic.stats.cost_ps, quick.stats.cost_ps);
      EXPECT_EQ(classic.stats.arith_counts, quick.stats.arith_counts);
      EXPECT_EQ(classic.stats.calls, quick.stats.calls);
      EXPECT_EQ(classic.stats.host_calls, quick.stats.host_calls);
      EXPECT_EQ(classic.stats.memory_grows, quick.stats.memory_grows);
      EXPECT_EQ(classic.stats.tierups, quick.stats.tierups);
      // The boundary streams must agree event-for-event, bits-for-bits.
      EXPECT_EQ(classic.boundary.events, quick.boundary.events);
    }
  }
}

std::vector<const core::BenchSource*> all() {
  std::vector<const core::BenchSource*> out;
  for (const auto& b : benchmarks::all_benchmarks()) out.push_back(&b);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Corpus, QuickenCorpus, testing::ValuesIn(all()),
                         [](const testing::TestParamInfo<const core::BenchSource*>& info) {
                           std::string name = info.param->name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wb
