#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "support/leb128.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace wb::support {
namespace {

// ---------------------------------------------------------------- LEB128

TEST(Leb128, UnsignedKnownEncodings) {
  std::vector<uint8_t> out;
  write_uleb128(out, 0);
  EXPECT_EQ(out, (std::vector<uint8_t>{0x00}));
  out.clear();
  write_uleb128(out, 624485);
  EXPECT_EQ(out, (std::vector<uint8_t>{0xe5, 0x8e, 0x26}));
}

TEST(Leb128, SignedKnownEncodings) {
  std::vector<uint8_t> out;
  write_sleb128(out, -123456);
  EXPECT_EQ(out, (std::vector<uint8_t>{0xc0, 0xbb, 0x78}));
  out.clear();
  write_sleb128(out, 0);
  EXPECT_EQ(out, (std::vector<uint8_t>{0x00}));
  out.clear();
  write_sleb128(out, -1);
  EXPECT_EQ(out, (std::vector<uint8_t>{0x7f}));
  out.clear();
  write_sleb128(out, 64);  // needs the extra byte to keep the sign clear
  EXPECT_EQ(out, (std::vector<uint8_t>{0xc0, 0x00}));
}

TEST(Leb128, UnsignedRoundTripSweep) {
  Rng rng(42);
  std::vector<uint64_t> samples = {0,
                                   1,
                                   127,
                                   128,
                                   16383,
                                   16384,
                                   std::numeric_limits<uint32_t>::max(),
                                   std::numeric_limits<uint64_t>::max()};
  for (int i = 0; i < 500; ++i) samples.push_back(rng.next_u64());
  for (uint64_t v : samples) {
    std::vector<uint8_t> out;
    write_uleb128(out, v);
    auto r = read_uleb128(out);
    ASSERT_TRUE(r.has_value()) << v;
    EXPECT_EQ(r->value, v);
    EXPECT_EQ(r->size, out.size());
  }
}

TEST(Leb128, SignedRoundTripSweep) {
  Rng rng(43);
  std::vector<int64_t> samples = {0,
                                  -1,
                                  1,
                                  63,
                                  64,
                                  -64,
                                  -65,
                                  std::numeric_limits<int32_t>::min(),
                                  std::numeric_limits<int32_t>::max(),
                                  std::numeric_limits<int64_t>::min(),
                                  std::numeric_limits<int64_t>::max()};
  for (int i = 0; i < 500; ++i) samples.push_back(static_cast<int64_t>(rng.next_u64()));
  for (int64_t v : samples) {
    std::vector<uint8_t> out;
    write_sleb128(out, v);
    auto r = read_sleb128(out);
    ASSERT_TRUE(r.has_value()) << v;
    EXPECT_EQ(r->value, v);
    EXPECT_EQ(r->size, out.size());
  }
}

TEST(Leb128, TruncatedInputFails) {
  std::vector<uint8_t> out;
  write_uleb128(out, 624485);
  out.pop_back();
  EXPECT_FALSE(read_uleb128(out).has_value());
  EXPECT_FALSE(read_sleb128(out).has_value());
  EXPECT_FALSE(read_uleb128({}).has_value());
}

TEST(Leb128, OverlongInputFails) {
  // 11 continuation bytes exceed 64 bits.
  std::vector<uint8_t> bytes(11, 0x80);
  bytes.push_back(0x01);
  EXPECT_FALSE(read_uleb128(bytes).has_value());
}

// ---------------------------------------------------------------- Stats

TEST(Stats, GeomeanBasics) {
  std::vector<double> xs = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
  EXPECT_EQ(geomean({}), 0.0);
  std::vector<double> ones(17, 1.0);
  EXPECT_NEAR(geomean(ones), 1.0, 1e-12);
}

TEST(Stats, MeanBasics) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, FiveNumberSummaryOddCount) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  const FiveNumber s = five_number_summary(xs);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.max, 5);
}

TEST(Stats, FiveNumberSummaryInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4};
  const FiveNumber s = five_number_summary(xs);
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(Stats, FiveNumberSummarySingleAndEmpty) {
  std::vector<double> one = {7};
  const FiveNumber s = five_number_summary(one);
  EXPECT_DOUBLE_EQ(s.min, 7);
  EXPECT_DOUBLE_EQ(s.median, 7);
  EXPECT_DOUBLE_EQ(s.max, 7);
  const FiveNumber e = five_number_summary({});
  EXPECT_DOUBLE_EQ(e.median, 0);
}

TEST(Stats, ClassifyRatiosMatchesPaperConvention) {
  // Variant faster on two benchmarks (2x, 8x), slower on one (4x slowdown).
  std::vector<double> variant = {1.0, 1.0, 4.0};
  std::vector<double> baseline = {2.0, 8.0, 1.0};
  const RatioStats r = classify_ratios(variant, baseline);
  EXPECT_EQ(r.speedup_count, 2u);
  EXPECT_DOUBLE_EQ(r.speedup_gmean, 4.0);  // gmean(2, 8)
  EXPECT_EQ(r.slowdown_count, 1u);
  EXPECT_DOUBLE_EQ(r.slowdown_gmean, 4.0);
  // gmean(2, 8, 1/4) = (2*8*0.25)^(1/3) = 4^(1/3)
  EXPECT_TRUE(r.all_gmean_is_speedup);
  EXPECT_NEAR(r.all_gmean, std::pow(4.0, 1.0 / 3.0), 1e-12);
}

TEST(Stats, ClassifyRatiosOverallSlowdown) {
  std::vector<double> variant = {4.0, 4.0};
  std::vector<double> baseline = {1.0, 1.0};
  const RatioStats r = classify_ratios(variant, baseline);
  EXPECT_FALSE(r.all_gmean_is_speedup);
  EXPECT_DOUBLE_EQ(r.all_gmean, 4.0);
}

// ---------------------------------------------------------------- Table

TEST(Table, RendersAlignedColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  TextTable t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(0.875, 2), "0.88x");
  EXPECT_EQ(fmt_kb(2048.0, 1), "2.0");
}

// ---------------------------------------------------------------- RNG

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedValues) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(99), b(99);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
  // The parents were advanced identically too.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitStreamsDoNotCorrelateWithParent) {
  Rng parent(2024);
  Rng child1 = parent.split();
  Rng child2 = parent.split();

  // Draw from a copy of the parent's continuing stream: no value may
  // coincide position-wise with either child's stream, and the two
  // children must not coincide with each other.
  constexpr int kN = 4096;
  std::vector<uint64_t> p(kN), c1(kN), c2(kN);
  for (int i = 0; i < kN; ++i) {
    p[i] = parent.next_u64();
    c1[i] = child1.next_u64();
    c2[i] = child2.next_u64();
  }
  int collisions = 0;
  for (int i = 0; i < kN; ++i) {
    collisions += (p[i] == c1[i]) + (p[i] == c2[i]) + (c1[i] == c2[i]);
  }
  EXPECT_EQ(collisions, 0);

  // Crude independence check: XOR of position-wise pairs should look like
  // random 64-bit words (about half the bits set on average). A lagged
  // copy or additive shift of the parent stream would fail this hard.
  auto mean_popcount_xor = [](const std::vector<uint64_t>& x,
                              const std::vector<uint64_t>& y) {
    uint64_t total = 0;
    for (size_t i = 0; i < x.size(); ++i) {
      total += static_cast<uint64_t>(std::popcount(x[i] ^ y[i]));
    }
    return static_cast<double>(total) / static_cast<double>(x.size());
  };
  EXPECT_NEAR(mean_popcount_xor(p, c1), 32.0, 1.0);
  EXPECT_NEAR(mean_popcount_xor(p, c2), 32.0, 1.0);
  EXPECT_NEAR(mean_popcount_xor(c1, c2), 32.0, 1.0);
}

// ------------------------------------------------- Rng distributions

TEST(Rng, ExponentialMatchesMeanAndIsDeterministic) {
  Rng rng(11);
  double sum = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 2.0, 0.05);

  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.exponential(3.5), b.exponential(3.5));
}

TEST(Rng, ParetoRespectsMinimumAndTailMean) {
  Rng rng(12);
  double sum = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.pareto(3.0, 1.0);
    ASSERT_GE(x, 1.0);
    sum += x;
  }
  // E[Pareto(alpha, xm)] = alpha * xm / (alpha - 1) = 1.5.
  EXPECT_NEAR(sum / kDraws, 1.5, 0.05);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(13);
  const double weights[] = {1.0, 2.0, 7.0};
  int counts[3] = {0, 0, 0};
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.7, 0.015);
}

TEST(Rng, WeightedIndexEdgeCases) {
  Rng rng(14);
  const double single[] = {5.0};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.weighted_index(single), 0u);
  const double zeros_around[] = {0.0, 5.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_index(zeros_around), 1u);
  EXPECT_EQ(rng.weighted_index(std::span<const double>{}), 0u);
}

// ------------------------------------------------- StreamingQuantiles

TEST(StreamingQuantiles, ExactModeMatchesSortedVector) {
  Rng rng(21);
  StreamingQuantiles q;
  std::vector<double> all;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.next_double() * 1000.0;
    q.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(q.count(), all.size());
  EXPECT_EQ(q.min(), all.front());
  EXPECT_EQ(q.max(), all.back());
  for (const double p : {0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(q.quantile(p), quantile_sorted(all, p)) << p;
  }
  const FiveNumber direct = five_number_summary(all);
  const FiveNumber streamed = q.five_number();
  EXPECT_EQ(streamed.q1, direct.q1);
  EXPECT_EQ(streamed.median, direct.median);
  EXPECT_EQ(streamed.q3, direct.q3);
}

TEST(StreamingQuantiles, InterleavesAddsAndQueries) {
  StreamingQuantiles q;
  q.add(10.0);
  EXPECT_EQ(q.quantile(0.5), 10.0);
  q.add(20.0);
  EXPECT_EQ(q.quantile(0.5), 15.0);  // resorted after the new sample
  q.add(30.0);
  EXPECT_EQ(q.quantile(0.5), 20.0);
  EXPECT_EQ(q.mean(), 20.0);
  EXPECT_EQ(q.count(), 3u);
}

TEST(StreamingQuantiles, EmptySummaryIsZeros) {
  const StreamingQuantiles q;
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.min(), 0.0);
  EXPECT_EQ(q.max(), 0.0);
  EXPECT_EQ(q.mean(), 0.0);
  EXPECT_EQ(q.quantile(0.5), 0.0);
}

TEST(StreamingQuantiles, ReservoirBoundsMemoryDeterministically) {
  StreamingQuantiles a(/*reservoir_capacity=*/256, /*seed=*/5);
  StreamingQuantiles b(/*reservoir_capacity=*/256, /*seed=*/5);
  Rng rng(22);
  double true_min = 1e300, true_max = -1e300;
  for (int i = 0; i < 50'000; ++i) {
    const double x = rng.next_double();
    a.add(x);
    b.add(x);
    true_min = std::min(true_min, x);
    true_max = std::max(true_max, x);
  }
  EXPECT_EQ(a.samples().size(), 256u);
  EXPECT_EQ(a.count(), 50'000u);
  // min/max/mean cover every sample even though the reservoir is bounded.
  EXPECT_EQ(a.min(), true_min);
  EXPECT_EQ(a.max(), true_max);
  EXPECT_NEAR(a.mean(), 0.5, 0.01);
  // Same seed, same stream -> identical reservoir and quantiles.
  EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
  // A uniform reservoir of 256 still estimates the median decently.
  EXPECT_NEAR(a.quantile(0.5), 0.5, 0.1);
}

}  // namespace
}  // namespace wb::support
