// Real-world application analogs (Tables 10 & 12): correctness and the
// paper's headline mechanisms.
#include <gtest/gtest.h>

#include "benchmarks/realworld.h"

namespace wb::benchmarks {
namespace {

const std::vector<RealWorldRow>& rows() {
  static const std::vector<RealWorldRow> all = [] {
    env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
    return run_real_world_apps(chrome);
  }();
  return all;
}

TEST(RealWorld, AllSixExperimentsRun) {
  ASSERT_EQ(rows().size(), 6u);
  for (const auto& row : rows()) {
    EXPECT_TRUE(row.ok) << row.benchmark << "/" << row.experiment << ": " << row.error;
    EXPECT_GT(row.wasm_ms, 0) << row.benchmark;
    EXPECT_GT(row.js_ms, 0) << row.benchmark;
  }
}

TEST(RealWorld, LongJsWasmWinsOnSixtyFourBitOps) {
  // Paper Table 10 rows 1-3: ratios 0.730 / 0.520 / 0.578 (< 1).
  for (size_t i = 0; i < 3; ++i) {
    const RealWorldRow& row = rows()[i];
    ASSERT_TRUE(row.ok);
    EXPECT_EQ(row.benchmark, "Long.js");
    EXPECT_LT(row.ratio(), 1.0) << row.experiment;
  }
}

TEST(RealWorld, HyphenationIsNearParity) {
  // Paper: 0.938 / 0.960 — the scanning-bound workload where Wasm's edge
  // vanishes. We accept parity within a factor ~1.5 either way.
  for (size_t i = 3; i < 5; ++i) {
    const RealWorldRow& row = rows()[i];
    ASSERT_TRUE(row.ok);
    EXPECT_EQ(row.benchmark, "Hyphenopoly.js");
    EXPECT_GT(row.ratio(), 0.6) << row.experiment;
    EXPECT_LT(row.ratio(), 1.6) << row.experiment;
  }
}

TEST(RealWorld, FfmpegParallelWasmWinsBig) {
  // Paper: 0.275 thanks to 4 WebWorkers vs single-threaded JS.
  const RealWorldRow& row = rows()[5];
  ASSERT_TRUE(row.ok);
  EXPECT_EQ(row.benchmark, "FFmpeg");
  EXPECT_LT(row.ratio(), 0.45);
}

TEST(RealWorld, Table12CountsShowJsInstructionBlowup) {
  const auto counts = longjs_operation_counts();
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& row : counts) {
    uint64_t js_total = 0, wasm_total = 0;
    for (uint64_t v : row.js_counts) js_total += v;
    for (uint64_t v : row.wasm_counts) wasm_total += v;
    // Paper Table 12: JS executes ~5-10x more arithmetic than Wasm.
    EXPECT_GT(js_total, wasm_total * 4) << row.op;
    // Wasm uses exactly one 64-bit op per iteration (10k total).
    const size_t op_index = row.op == "Multiplication" ? 1 : row.op == "Division" ? 2 : 3;
    EXPECT_EQ(row.wasm_counts[op_index], 10'000u) << row.op;
  }
  // JS does its work in 16-bit limbs: multiplication uses ~10 limb
  // multiplies per operation.
  EXPECT_GE(counts[0].js_counts[1], 90'000u);
  // ... and the JS division path leans on float division (paper: 160k).
  EXPECT_GT(counts[1].js_counts[2], 10'000u);
}

}  // namespace
}  // namespace wb::benchmarks
