// wb::snap unit gate (tier1): snapshot -> resume -> snapshot byte
// identity, resume-vs-fresh observable identity per fuel value across
// tier boundaries, zero-page elision, strict `.wbsnap` parsing, the
// WarmStart restore-cost charge, and the generational JS GC's
// compatibility contract (MarkSweep observables untouched, Generational
// identical results with modeled pauses charged). The corpus-scale twin
// is snap_corpus_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "js/engine.h"
#include "js/heap.h"
#include "js/interp.h"
#include "snap/snap.h"
#include "wasm/builder.h"
#include "wasm/interp.h"

namespace wb {
namespace {

// ------------------------------------------------------------------ wasm

// 4 pages of memory, a mutable global, an "init" that marks pages 0 and 3
// (pages 1-2 stay all-zero for the elision check), and a "main(n)" whose
// loop of loads + adds is long enough to cross a small tier-up threshold.
wasm::Module test_module() {
  wasm::ModuleBuilder mb;
  mb.set_memory(4, 4);
  const uint32_t g = mb.add_global(wasm::ValType::I32, true, wasm::Value::from_i32(0));

  auto init = mb.define(wasm::FuncType{{}, {}}, "init");
  const uint32_t i = init.add_local(wasm::ValType::I32);
  init.block().loop();
  init.local_get(i).i32(1024).op(wasm::Opcode::I32GeS).br_if(1);
  init.local_get(i).local_get(i).store(wasm::Opcode::I32Store, 0, 2);
  init.local_get(i).i32(4).op(wasm::Opcode::I32Add).local_set(i);
  init.br(0);
  init.end().end();
  init.i32(3 * 65536).i32(0x5eed).store(wasm::Opcode::I32Store, 0, 2);
  init.i32(7).global_set(g);
  init.finish("init");

  auto main = mb.define(wasm::FuncType{{wasm::ValType::I32}, {wasm::ValType::I32}},
                        "main");
  const uint32_t j = main.add_local(wasm::ValType::I32);
  const uint32_t acc = main.add_local(wasm::ValType::I32);
  main.block().loop();
  main.local_get(j).local_get(0).op(wasm::Opcode::I32GeS).br_if(1);
  main.local_get(acc)
      .local_get(j)
      .i32(1020)
      .op(wasm::Opcode::I32And)
      .load(wasm::Opcode::I32Load, 0, 2)
      .op(wasm::Opcode::I32Add)
      .local_set(acc);
  main.local_get(j).i32(1).op(wasm::Opcode::I32Add).local_set(j);
  main.br(0);
  main.end().end();
  main.local_get(acc).global_get(g).op(wasm::Opcode::I32Add);
  main.finish("main");
  return mb.take();
}

// The configuration every instance in these tests gets; restore must run
// after this (set_cost_tables resets JIT slots).
void configure(wasm::Instance& inst) {
  wasm::CostTable baseline;
  baseline.fill(150);
  wasm::CostTable optimizing;
  optimizing.fill(60);
  inst.set_cost_tables(baseline, optimizing);
  wasm::TierPolicy policy;
  policy.tierup_threshold = 64;  // "main" with n >= 64 crosses mid-invoke
  policy.tierup_cost_per_instr = 400;
  inst.set_tier_policy(policy);
  inst.set_grow_cost(1'000);
}

// The instance holds a reference to its module, so tests share one
// static instance of it.
const wasm::Module& the_module() {
  static const wasm::Module module = test_module();
  return module;
}

snap::WasmSnapshot warmed_snapshot() {
  wasm::Instance inst(the_module(), {});
  configure(inst);
  EXPECT_EQ(inst.invoke("init", {}).trap, wasm::Trap::None);
  return snap::snapshot_wasm(inst, "unit");
}

TEST(SnapWasm, RoundTripByteIdentity) {
  const wasm::Module& module = the_module();
  wasm::Instance inst(module, {});
  configure(inst);
  ASSERT_EQ(inst.invoke("init", {}).trap, wasm::Trap::None);
  const snap::WasmSnapshot first = snap::snapshot_wasm(inst, "unit");
  const std::vector<uint8_t> bytes = snap::serialize(first);
  EXPECT_EQ(first.bytes, bytes.size());
  EXPECT_EQ(first.sha256, snap::digest_hex(first));

  std::string error;
  const auto parsed = snap::parse_wasm(bytes, error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->sha256, first.sha256);

  wasm::Instance resumed(module, {});
  configure(resumed);
  ASSERT_TRUE(snap::resume_wasm(resumed, *parsed, snap::Resume::Exact));
  const snap::WasmSnapshot second = snap::snapshot_wasm(resumed, "unit");
  EXPECT_EQ(serialize(second), bytes);
  EXPECT_EQ(second.sha256, first.sha256);
}

// Per fuel value, a fresh run (init + main under that fuel) and an
// exact-resumed run must agree on every observable — including fuel
// values that stop main before, across, and after the tier-up boundary.
TEST(SnapWasm, ResumeMatchesFreshPerFuelAcrossTiers) {
  const wasm::Module& module = the_module();
  const std::vector<wasm::Value> args = {wasm::Value::from_i32(500)};
  for (const uint64_t fuel :
       {uint64_t{10}, uint64_t{200}, uint64_t{800}, uint64_t{3000}, UINT64_MAX}) {
    SCOPED_TRACE("fuel=" + std::to_string(fuel));

    wasm::Instance fresh(module, {});
    configure(fresh);
    ASSERT_EQ(fresh.invoke("init", {}).trap, wasm::Trap::None);
    fresh.set_fuel(fuel);
    const wasm::InvokeResult want = fresh.invoke("main", args);

    wasm::Instance warm(module, {});
    configure(warm);
    ASSERT_EQ(warm.invoke("init", {}).trap, wasm::Trap::None);
    const snap::WasmSnapshot snapshot = snap::snapshot_wasm(warm, "unit");
    std::string error;
    const auto parsed = snap::parse_wasm(snap::serialize(snapshot), error);
    ASSERT_TRUE(parsed) << error;

    wasm::Instance resumed(module, {});
    configure(resumed);
    ASSERT_TRUE(snap::resume_wasm(resumed, *parsed, snap::Resume::Exact));
    resumed.set_fuel(fuel);
    const wasm::InvokeResult got = resumed.invoke("main", args);

    EXPECT_EQ(want.trap, got.trap);
    if (want.ok() && got.ok()) {
      EXPECT_EQ(want.value.bits, got.value.bits);
    }
    EXPECT_EQ(fresh.stats().ops_executed, resumed.stats().ops_executed);
    EXPECT_EQ(fresh.stats().cost_ps, resumed.stats().cost_ps);
    EXPECT_EQ(fresh.stats().arith_counts, resumed.stats().arith_counts);
    EXPECT_EQ(fresh.stats().calls, resumed.stats().calls);
    EXPECT_EQ(fresh.stats().host_calls, resumed.stats().host_calls);
    EXPECT_EQ(fresh.stats().memory_grows, resumed.stats().memory_grows);
    EXPECT_EQ(fresh.stats().tierups, resumed.stats().tierups);
    EXPECT_EQ(fresh.attr_stats().class_counts, resumed.attr_stats().class_counts);
    EXPECT_EQ(fresh.attr_stats().direct_ps, resumed.attr_stats().direct_ps);
  }
}

// Pages 1 and 2 are all-zero after init; the canonical encoding must not
// carry them (4 pages = 256 KiB of memory, but only 2 live pages).
TEST(SnapWasm, ZeroPagesAreElided) {
  const snap::WasmSnapshot snapshot = warmed_snapshot();
  EXPECT_EQ(snapshot.state.memory_bytes.size(), 4u * 65536u);
  EXPECT_LT(snapshot.bytes, 3u * 65536u);
  EXPECT_GT(snapshot.bytes, 2u * 65536u);  // both live pages are present
}

TEST(SnapWasm, ParseIsStrict) {
  const snap::WasmSnapshot snapshot = warmed_snapshot();
  const std::vector<uint8_t> bytes = snap::serialize(snapshot);
  std::string error;

  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(snap::parse_wasm(bad_magic, error));

  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 7);
  EXPECT_FALSE(snap::parse_wasm(truncated, error));

  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(snap::parse_wasm(trailing, error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  // A Wasm snapshot is not a JS snapshot (the kind byte is checked).
  EXPECT_FALSE(snap::parse_js(bytes, error));

  EXPECT_FALSE(snap::parse_wasm(std::vector<uint8_t>{}, error));
}

// WarmStart restores state but not the clock: the only charge on the
// resumed instance is the modeled bytes-proportional restore cost,
// attributed to Startup — and execution then proceeds from warmed state.
TEST(SnapWasm, WarmStartChargesModeledRestoreCost) {
  const wasm::Module& module = the_module();
  wasm::Instance warm(module, {});
  configure(warm);
  ASSERT_EQ(warm.invoke("init", {}).trap, wasm::Trap::None);
  const snap::WasmSnapshot snapshot = snap::snapshot_wasm(warm, "unit");

  wasm::Instance resumed(module, {});
  configure(resumed);
  ASSERT_TRUE(snap::resume_wasm(resumed, snapshot, snap::Resume::WarmStart));
  EXPECT_EQ(resumed.stats().cost_ps, snap::restore_cost_ps(snapshot.bytes));
  EXPECT_EQ(resumed.stats().ops_executed, 0u);
  const auto& direct = resumed.attr_stats().direct_ps;
  EXPECT_EQ(direct[static_cast<size_t>(attr::Cause::Startup)],
            snap::restore_cost_ps(snapshot.bytes));

  // The warmed memory and globals are live: main sees init's stores.
  const std::vector<wasm::Value> args = {wasm::Value::from_i32(8)};
  const wasm::InvokeResult fresh_main = warm.invoke("main", args);
  const wasm::InvokeResult resumed_main = resumed.invoke("main", args);
  ASSERT_TRUE(fresh_main.ok());
  ASSERT_TRUE(resumed_main.ok());
  EXPECT_EQ(fresh_main.value.bits, resumed_main.value.bits);
}

TEST(SnapWasm, ResumeRejectsShapeMismatch) {
  const wasm::Module& module = the_module();
  snap::WasmSnapshot snapshot = warmed_snapshot();
  snapshot.state.globals.push_back(wasm::Value::from_i32(1));
  wasm::Instance resumed(module, {});
  configure(resumed);
  EXPECT_FALSE(snap::resume_wasm(resumed, snapshot, snap::Resume::Exact));
}

TEST(SnapDefault, LatchToggles) {
  ASSERT_TRUE(snap::snap_default());
  snap::set_snap_default(false);
  EXPECT_FALSE(snap::snap_default());
  snap::set_snap_default(true);
  EXPECT_TRUE(snap::snap_default());
}

// -------------------------------------------------------------------- js

// Exercises strings, arrays, object shapes, and enough allocation churn
// to give the snapshot a non-trivial heap image.
constexpr const char* kJsSource = R"(
  var table = [];
  for (var i = 0; i < 64; i++) {
    table[i] = { key: i, name: "obj" + i, data: [i, i * 2, i * 3] };
  }
  function main() {
    var acc = 0;
    for (var i = 0; i < 64; i++) {
      var o = table[i & 63];
      acc = (acc + o.key + o.data[2]) | 0;
    }
    return acc;
  }
)";

TEST(SnapJs, RoundTripByteIdentity) {
  std::string error;
  const auto code = js::compile_script(kJsSource, error);
  ASSERT_TRUE(code) << error;
  js::Heap heap(256 << 10);
  js::Vm vm(*code, heap);
  ASSERT_TRUE(vm.run_top_level().ok);
  const snap::JsSnapshot first = snap::snapshot_js(vm, "unit");
  const std::vector<uint8_t> bytes = snap::serialize(first);
  EXPECT_EQ(first.bytes, bytes.size());
  EXPECT_EQ(first.sha256, snap::digest_hex(first));

  const auto parsed = snap::parse_js(bytes, error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->sha256, first.sha256);
  EXPECT_FALSE(snap::parse_wasm(bytes, error));  // kind byte again

  js::Heap resumed_heap(256 << 10);
  js::Vm resumed(*code, resumed_heap);
  ASSERT_TRUE(snap::resume_js(resumed, *parsed, snap::Resume::Exact));
  const snap::JsSnapshot second = snap::snapshot_js(resumed, "unit");
  EXPECT_EQ(serialize(second), bytes);
  EXPECT_EQ(second.sha256, first.sha256);
}

TEST(SnapJs, ResumeMatchesFresh) {
  std::string error;
  const auto code = js::compile_script(kJsSource, error);
  ASSERT_TRUE(code) << error;

  js::Heap fresh_heap(256 << 10);
  js::Vm fresh(*code, fresh_heap);
  ASSERT_TRUE(fresh.run_top_level().ok);
  const js::Vm::Result want = fresh.call_function("main", {});
  ASSERT_TRUE(want.ok) << want.error;

  js::Heap warm_heap(256 << 10);
  js::Vm warm(*code, warm_heap);
  ASSERT_TRUE(warm.run_top_level().ok);
  const snap::JsSnapshot snapshot = snap::snapshot_js(warm, "unit");
  const auto parsed = snap::parse_js(snap::serialize(snapshot), error);
  ASSERT_TRUE(parsed) << error;

  js::Heap resumed_heap(256 << 10);
  js::Vm resumed(*code, resumed_heap);
  ASSERT_TRUE(snap::resume_js(resumed, *parsed, snap::Resume::Exact));
  const js::Vm::Result got = resumed.call_function("main", {});
  ASSERT_TRUE(got.ok) << got.error;

  EXPECT_EQ(want.value.bits, got.value.bits);
  EXPECT_EQ(fresh.stats().ops_executed, resumed.stats().ops_executed);
  EXPECT_EQ(fresh.stats().cost_ps, resumed.stats().cost_ps);
  EXPECT_EQ(fresh.stats().tierups, resumed.stats().tierups);
  EXPECT_EQ(fresh.stats().host_calls, resumed.stats().host_calls);
  EXPECT_EQ(fresh.stats().arith_counts, resumed.stats().arith_counts);
  EXPECT_EQ(fresh_heap.stats().live_bytes, resumed_heap.stats().live_bytes);
  EXPECT_EQ(fresh_heap.stats().collections, resumed_heap.stats().collections);
}

// Allocation churn under a small threshold: generational mode must
// produce the same result while taking minor collections and charging
// modeled pause time; MarkSweep mode must keep its observables exactly
// as before (zero minor collections, no GcPause lane).
constexpr const char* kChurnSource = R"(
  var keep = [];
  function main() {
    var acc = 0;
    for (var i = 0; i < 4000; i++) {
      var o = { v: i, pad: [i, i + 1, i + 2, i + 3] };
      if ((i & 63) === 0) keep[keep.length] = o;  // survivors get promoted
      acc = (acc + o.v) | 0;
    }
    return acc;
  }
)";

TEST(SnapGenerationalGc, SameResultsMinorPausesCharged) {
  std::string error;
  const auto code = js::compile_script(kChurnSource, error);
  ASSERT_TRUE(code) << error;

  js::Heap ms_heap(32 << 10);
  js::Vm ms(*code, ms_heap);
  ASSERT_TRUE(ms.run_top_level().ok);
  const js::Vm::Result ms_result = ms.call_function("main", {});
  ASSERT_TRUE(ms_result.ok) << ms_result.error;
  EXPECT_EQ(ms_heap.minor_collections(), 0u);
  EXPECT_EQ(ms.attr_stats().direct_ps[static_cast<size_t>(attr::Cause::GcPause)],
            0u);

  js::Heap gen_heap(32 << 10);
  js::Vm gen(*code, gen_heap);
  gen.set_gc_mode(js::GcMode::Generational);
  ASSERT_TRUE(gen.run_top_level().ok);
  const js::Vm::Result gen_result = gen.call_function("main", {});
  ASSERT_TRUE(gen_result.ok) << gen_result.error;

  // Identical semantics, different (explicitly modeled) cost.
  EXPECT_EQ(ms_result.value.bits, gen_result.value.bits);
  EXPECT_GT(gen_heap.minor_collections(), 0u);
  const uint64_t pause_ps =
      gen.attr_stats().direct_ps[static_cast<size_t>(attr::Cause::GcPause)];
  EXPECT_GT(pause_ps, 0u);
  EXPECT_EQ(gen.stats().cost_ps, ms.stats().cost_ps + pause_ps);
}

// Old-to-young pointers created after a minor collection must be found
// through the remembered set: survivors promoted early hold references
// to objects allocated much later, and every read must still see them.
TEST(SnapGenerationalGc, RememberedSetKeepsCrossGenerationEdges) {
  constexpr const char* source = R"(
    var old_one = { slot: null, tag: "old" };
    function main() {
      var acc = 0;
      for (var i = 0; i < 3000; i++) {
        old_one.slot = { v: i, pad: [i, i, i, i] };  // old -> young edge
        var filler = { waste: [i, i + 1] };
        acc = (acc + old_one.slot.v + filler.waste[0]) | 0;
      }
      return acc;
    }
  )";
  std::string error;
  const auto code = js::compile_script(source, error);
  ASSERT_TRUE(code) << error;

  js::Heap ms_heap(32 << 10);
  js::Vm ms(*code, ms_heap);
  ASSERT_TRUE(ms.run_top_level().ok);
  const js::Vm::Result want = ms.call_function("main", {});
  ASSERT_TRUE(want.ok) << want.error;

  js::Heap gen_heap(32 << 10);
  js::Vm gen(*code, gen_heap);
  gen.set_gc_mode(js::GcMode::Generational);
  ASSERT_TRUE(gen.run_top_level().ok);
  const js::Vm::Result got = gen.call_function("main", {});
  ASSERT_TRUE(got.ok) << got.error;

  EXPECT_EQ(want.value.bits, got.value.bits);
  EXPECT_GT(gen_heap.minor_collections(), 0u);
}

}  // namespace
}  // namespace wb
