#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/codec.h"
#include "wasm/validator.h"

namespace wb::wasm {
namespace {

using VT = ValType;

testing::AssertionResult is_valid(const Module& m) {
  const auto err = validate(m);
  if (!err) return testing::AssertionSuccess();
  return testing::AssertionFailure() << err->message << " (func " << err->func_index << ")";
}

testing::AssertionResult is_invalid(const Module& m, const std::string& fragment = "") {
  const auto err = validate(m);
  if (!err) return testing::AssertionFailure() << "expected validation failure";
  if (!fragment.empty() && err->message.find(fragment) == std::string::npos) {
    return testing::AssertionFailure()
           << "error \"" << err->message << "\" does not mention \"" << fragment << "\"";
  }
  return testing::AssertionSuccess();
}

TEST(WasmValidator, AcceptsSimpleAdd) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{VT::I32, VT::I32}, {VT::I32}});
  f.local_get(0).local_get(1).op(Opcode::I32Add).finish("add");
  EXPECT_TRUE(is_valid(mb.take()));
}

TEST(WasmValidator, RejectsOperandTypeMismatch) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{VT::F64, VT::F64}, {VT::I32}});
  f.local_get(0).local_get(1).op(Opcode::I32Add).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "type mismatch"));
}

TEST(WasmValidator, RejectsStackUnderflow) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.op(Opcode::I32Add).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "underflow"));
}

TEST(WasmValidator, RejectsWrongResultType) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.f64(1.0).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "type mismatch"));
}

TEST(WasmValidator, RejectsLeftoverValues) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {}});
  f.i32(1).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take()));
}

TEST(WasmValidator, RejectsBranchDepthOutOfRange) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {}});
  f.br(5).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "depth"));
}

TEST(WasmValidator, RejectsBadLocalIndex) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.local_get(3).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "local index"));
}

TEST(WasmValidator, RejectsAssignToImmutableGlobal) {
  ModuleBuilder mb;
  mb.add_global(VT::I32, false, Value::from_i32(1));
  auto f = mb.define(FuncType{{}, {}});
  f.i32(2).global_set(0).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "immutable"));
}

TEST(WasmValidator, AcceptsMutableGlobal) {
  ModuleBuilder mb;
  mb.add_global(VT::I32, true, Value::from_i32(1));
  auto f = mb.define(FuncType{{}, {}});
  f.i32(2).global_set(0).finish("ok");
  EXPECT_TRUE(is_valid(mb.take()));
}

TEST(WasmValidator, RejectsMemoryAccessWithoutMemory) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.i32(0).load(Opcode::I32Load).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "memory"));
}

TEST(WasmValidator, RejectsOveralignedAccess) {
  ModuleBuilder mb;
  mb.set_memory(1);
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.i32(0).load(Opcode::I32Load, 0, /*align=*/3).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "alignment"));
}

TEST(WasmValidator, RejectsIfWithResultButNoElse) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.local_get(0).if_(static_cast<uint32_t>(VT::I32));
  f.i32(1);
  f.end();
  f.finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "else"));
}

TEST(WasmValidator, AcceptsIfElseWithResult) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{VT::I32}, {VT::I32}});
  f.local_get(0).if_(static_cast<uint32_t>(VT::I32));
  f.i32(1);
  f.else_();
  f.i32(2);
  f.end();
  f.finish("ok");
  EXPECT_TRUE(is_valid(mb.take()));
}

TEST(WasmValidator, RejectsSelectTypeMismatch) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.i32(1).f64(2.0).i32(0).op(Opcode::Select).op(Opcode::Drop).i32(0).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "select"));
}

TEST(WasmValidator, RejectsCallArgMismatch) {
  ModuleBuilder mb;
  auto callee = mb.define(FuncType{{VT::F64}, {VT::F64}});
  callee.local_get(0).finish("id");
  auto f = mb.define(FuncType{{}, {VT::F64}});
  f.i32(1).call(callee.index()).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "type mismatch"));
}

TEST(WasmValidator, RejectsCallIndexOutOfRange) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {}});
  f.call(99).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "call index"));
}

TEST(WasmValidator, AcceptsLoopWithBackEdge) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{VT::I32}, {VT::I32}});
  const uint32_t acc = f.add_local(VT::I32);
  f.block().loop();
  f.local_get(0).op(Opcode::I32Eqz).br_if(1);
  f.local_get(acc).local_get(0).op(Opcode::I32Add).local_set(acc);
  f.local_get(0).i32(1).op(Opcode::I32Sub).local_set(0);
  f.br(0);
  f.end().end();
  f.local_get(acc);
  f.finish("sum");
  EXPECT_TRUE(is_valid(mb.take()));
}

TEST(WasmValidator, UnreachableCodeIsPolymorphic) {
  // After `unreachable`, arbitrary instructions type-check.
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.op(Opcode::Unreachable);
  f.op(Opcode::I32Add);  // would underflow if reachable
  f.finish("ok");
  EXPECT_TRUE(is_valid(mb.take()));
}

TEST(WasmValidator, BrMakesRestUnreachable) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.block(static_cast<uint32_t>(VT::I32));
  f.i32(42).br(0);
  f.op(Opcode::I32Add);  // unreachable, polymorphic (would underflow if live)
  f.end();
  f.finish("ok");
  EXPECT_TRUE(is_valid(mb.take()));
}

TEST(WasmValidator, RejectsDataSegmentPastInitialMemory) {
  ModuleBuilder mb;
  mb.set_memory(1);
  mb.add_data(65536 - 2, {1, 2, 3, 4});
  auto f = mb.define(FuncType{{}, {}});
  f.finish("f");
  EXPECT_TRUE(is_invalid(mb.take(), "data segment"));
}

TEST(WasmValidator, RejectsExportOutOfRange) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {}});
  f.finish("f");
  Module m = mb.take();
  m.exports.push_back(Export{"ghost", ExportKind::Func, 42});
  EXPECT_TRUE(is_invalid(m, "export"));
}

TEST(WasmValidator, RejectsReturnTypeMismatchViaReturn) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {VT::I32}});
  f.f32(1.0f).op(Opcode::Return).finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "type mismatch"));
}

// ------------------------------------------------------- diagnostics

TEST(WasmValidator, DiagnosticsCarryFunctionInstructionAndByteOffset) {
  ModuleBuilder mb;
  auto good = mb.define(FuncType{{}, {VT::I32}}, "good");
  good.i32(1).finish("good");
  auto bad = mb.define(FuncType{{VT::F64, VT::F64}, {VT::I32}}, "bad");
  bad.local_get(0).local_get(1).op(Opcode::I32Add).finish("bad");
  const Module m = mb.take();

  const auto err = validate(m);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->func_index, 1u);
  EXPECT_EQ(err->instr_index, 2u);  // the i32.add
  // Encoded body layout: 1 byte of locals prefix (zero runs), then two
  // 2-byte local.gets — the offending opcode sits at offset 5.
  EXPECT_EQ(err->byte_offset, 5u);
  EXPECT_EQ(err->byte_offset, encoded_instr_offset(m, m.functions[1], 2));
  EXPECT_NE(err->message.find("func #1"), std::string::npos);
  EXPECT_NE(err->message.find("$bad"), std::string::npos);
  EXPECT_NE(err->message.find("instr #2"), std::string::npos);
  EXPECT_NE(err->message.find("i32.add"), std::string::npos);
  EXPECT_NE(err->message.find("offset 5"), std::string::npos);
}

TEST(WasmValidator, DiagnosticsAccountForLocalsPrefix) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {}}, "locals");
  f.add_local(VT::I32);
  f.add_local(VT::I32);
  f.add_local(VT::F64);
  f.f64(0.5).local_set(0);  // f64 into an i32 local
  f.finish("locals");
  const Module m = mb.take();

  const auto err = validate(m);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->instr_index, 1u);  // the local.set
  // Locals prefix: 1 (run count) + 2x2 (two runs) = 5 bytes, then the
  // 9-byte f64.const — the local.set opcode is at offset 14.
  EXPECT_EQ(err->byte_offset, 14u);
  EXPECT_EQ(err->byte_offset, encoded_instr_offset(m, m.functions[0], 1));
}

TEST(WasmValidator, ModuleLevelErrorsHaveNoInstructionLocation) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{}, {}});
  f.finish("f");
  Module m = mb.take();
  m.exports.push_back(Export{"ghost", ExportKind::Func, 42});
  const auto err = validate(m);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->func_index, UINT32_MAX);
  EXPECT_EQ(err->instr_index, UINT32_MAX);
  EXPECT_EQ(err->byte_offset, 0u);
}

TEST(WasmValidator, BrTableDepthsMustAgree) {
  ModuleBuilder mb;
  auto f = mb.define(FuncType{{VT::I32}, {VT::I32}});
  // Outer block yields i32, inner block yields nothing: arity mismatch.
  f.block(static_cast<uint32_t>(VT::I32));
  f.block();
  f.i32(1).local_get(0).br_table({0, 1});
  f.end();
  f.op(Opcode::Drop);
  f.i32(2);
  f.end();
  f.finish("bad");
  EXPECT_TRUE(is_invalid(mb.take(), "br_table"));
}

}  // namespace
}  // namespace wb::wasm
