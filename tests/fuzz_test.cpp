// wb::fuzz subsystem tests: generator determinism and well-formedness,
// clean-tree differential agreement, digest jobs-invariance, the planted-
// bug mutation test of the harness itself, the greedy reducer, and the
// byte-mutation oracle.
#include <gtest/gtest.h>

#include "backend/wasm_backend.h"
#include "fuzz/fuzz.h"
#include "fuzz/gen.h"
#include "fuzz/harness.h"
#include "fuzz/reduce.h"
#include "ir/passes.h"
#include "minic/minic.h"

namespace wb::fuzz {
namespace {

TEST(FuzzGen, SameSeedSameProgram) {
  for (uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(generate_program(seed), generate_program(seed));
  }
  EXPECT_NE(generate_program(1), generate_program(2));
}

TEST(FuzzGen, GeneratedProgramsCompile) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const std::string source = generate_program(seed);
    std::string error;
    const auto m = minic::compile(source, {}, error);
    EXPECT_TRUE(m.has_value()) << "seed " << seed << ": " << error << "\n" << source;
  }
}

TEST(FuzzHarness, CleanTreeHasNoDivergence) {
  FuzzOptions options;
  options.runs = 20;
  options.seed = 123;
  options.mutation_every = 10;
  const FuzzSummary summary = run_fuzz(options);
  EXPECT_TRUE(summary.ok()) << summary.report();
  EXPECT_EQ(summary.divergent, 0u);
  EXPECT_EQ(summary.mutation_cases, 2u);
}

TEST(FuzzHarness, DigestIsJobsInvariant) {
  FuzzOptions serial;
  serial.runs = 12;
  serial.seed = 9;
  serial.jobs = 1;
  FuzzOptions parallel = serial;
  parallel.jobs = 4;
  const FuzzSummary a = run_fuzz(serial);
  const FuzzSummary b = run_fuzz(parallel);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.report(), b.report());
}

TEST(FuzzHarness, PlantedBackendBugIsCaughtAndMinimized) {
  FuzzOptions options;
  options.runs = 2;
  options.seed = 42;
  options.mutation_every = 0;
  options.harness.plant_wasm_bug = true;
  const FuzzSummary summary = run_fuzz(options);
  ASSERT_EQ(summary.divergent, 2u) << summary.report();
  ASSERT_FALSE(summary.reproducers.empty());
  for (const auto& repro : summary.reproducers) {
    // The divergence is against the Wasm VM (that's where the bug went).
    EXPECT_NE(repro.brief.find("wasm"), std::string::npos) << repro.brief;
    // The minimized program still reproduces under the same harness...
    const CaseResult again = replay_source(repro.source, options.harness);
    EXPECT_FALSE(again.ok()) << repro.source;
    // ...and is no larger than the generated original.
    EXPECT_LE(repro.source.size(), generate_program(repro.case_seed).size());
  }
}

TEST(FuzzHarness, PlantedBugVanishesWithoutTheHook) {
  // The same seeds are clean when nothing is planted: the divergences in
  // the previous test came from the planted bug, not the tree.
  FuzzOptions options;
  options.runs = 2;
  options.seed = 42;
  options.mutation_every = 0;
  const FuzzSummary summary = run_fuzz(options);
  EXPECT_TRUE(summary.ok()) << summary.report();
}

TEST(FuzzReduce, RemovesIrrelevantLines) {
  const std::string source = "alpha\nbeta\nKEEP me\ngamma\ndelta\nepsilon\n";
  const auto still_fails = [](const std::string& candidate) {
    return candidate.find("KEEP") != std::string::npos;
  };
  EXPECT_EQ(reduce_source(source, still_fails), "KEEP me\n");
}

TEST(FuzzReduce, ReturnsInputWhenNothingRemovable) {
  const std::string source = "a\nb\n";
  const auto still_fails = [](const std::string& candidate) {
    return candidate == "a\nb\n";
  };
  EXPECT_EQ(reduce_source(source, still_fails), source);
}

TEST(FuzzMutation, EveryCorruptedModuleIsRejectedOrSandboxed) {
  std::string error;
  auto m = minic::compile(generate_program(5), {}, error);
  ASSERT_TRUE(m.has_value()) << error;
  ir::run_pipeline(*m, ir::OptLevel::O2);
  const backend::WasmArtifact artifact = backend::compile_to_wasm(std::move(*m), {});
  ASSERT_TRUE(artifact.ok()) << artifact.error;

  const MutationOutcome outcome = run_mutation_oracle(artifact.binary, 7, 64);
  EXPECT_TRUE(outcome.ok()) << outcome.error;
  EXPECT_EQ(outcome.decode_rejected + outcome.validate_rejected + outcome.executed +
                outcome.skipped,
            64);
  // Single-point corruptions overwhelmingly fail structural checks.
  EXPECT_GT(outcome.decode_rejected + outcome.validate_rejected, 0);
  // Deterministic in (binary, seed, count).
  const MutationOutcome again = run_mutation_oracle(artifact.binary, 7, 64);
  EXPECT_EQ(again.decode_rejected, outcome.decode_rejected);
  EXPECT_EQ(again.validate_rejected, outcome.validate_rejected);
  EXPECT_EQ(again.executed, outcome.executed);
}

}  // namespace
}  // namespace wb::fuzz
