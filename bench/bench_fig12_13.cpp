// Figures 12 & 13: per-benchmark execution time (Fig 12) and memory usage
// (Fig 13) of Wasm and JS in all six deployment settings, -O2, M input.
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Figures 12 & 13", "per-benchmark series across six deployment settings");

  struct Setting {
    const char* label;
    env::Browser browser;
    env::Platform platform;
  };
  const Setting settings[] = {
      {"chrome-desktop", env::Browser::Chrome, env::Platform::Desktop},
      {"firefox-desktop", env::Browser::Firefox, env::Platform::Desktop},
      {"edge-desktop", env::Browser::Edge, env::Platform::Desktop},
      {"chrome-mobile", env::Browser::Chrome, env::Platform::Mobile},
      {"firefox-mobile", env::Browser::Firefox, env::Platform::Mobile},
      {"edge-mobile", env::Browser::Edge, env::Platform::Mobile},
  };

  support::TextTable table("Fig 12/13 series");
  table.set_header(
      {"setting", "benchmark", "wasm_ms", "js_ms", "wasm_mem_kb", "js_mem_kb"});
  for (const Setting& s : settings) {
    env::BrowserEnv browser(s.browser, s.platform);
    const auto rows = run_corpus(core::InputSize::M, ir::OptLevel::O2, browser);
    for (const auto& r : rows) {
      table.add_row({s.label, r.name, support::fmt(r.wasm.time_ms, 3),
                     support::fmt(r.js.time_ms, 3),
                     support::fmt_kb(static_cast<double>(r.wasm.memory_bytes)),
                     support::fmt_kb(static_cast<double>(r.js.memory_bytes))});
    }
  }
  std::printf("%s\n", table.render_csv().c_str());
  return 0;
}
