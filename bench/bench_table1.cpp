// Table 1: benchmark statistics — the 41 subject programs with their
// suite, core line counts (cLOC: kernel lines, excluding the shared
// measurement harness, as the paper counts), and descriptions.
#include <sstream>

#include "common.h"

using namespace wb;
using namespace wb::bench;

int main() {
  print_header("Table 1", "benchmark statistics (the 41 subject programs)");

  support::TextTable table("Table 1");
  table.set_header({"Suite", "Benchmark", "cLOC", "Description"});
  std::string last_suite;
  for (const auto& b : benchmarks::all_benchmarks()) {
    if (b.suite != last_suite && !last_suite.empty()) table.add_rule();
    last_suite = b.suite;
    // Count non-empty kernel lines, excluding the cs_add/cs_result harness.
    size_t cloc = 0;
    bool in_line = false;
    size_t harness_lines = 0;
    std::istringstream in(b.source);
    std::string line;
    while (std::getline(in, line)) {
      const bool empty = line.find_first_not_of(" \t") == std::string::npos;
      if (empty) continue;
      ++cloc;
      if (line.find("__cs") != std::string::npos || line.find("cs_add") == 0 ||
          line.find("int cs_result") == 0) {
        ++harness_lines;
      }
    }
    (void)in_line;
    cloc -= std::min(cloc, harness_lines);
    table.add_row({b.suite, b.name, std::to_string(cloc), b.description});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(Paper Table 1 counts the original C sources, 146-1804 cLOC; ours are\n");
  std::printf(" the mini-C rewrites of the same kernels.)\n");
  return 0;
}
