// Sec. 4.5 context-switch microbenchmark: the cost of one JS<->Wasm call
// crossing per desktop browser. The paper found Firefox spends only 0.13x
// of Chrome's time after its 2018 call-path optimization.
#include "common.h"
#include "wasm/builder.h"
#include "wasm/codec.h"

using namespace wb;
using namespace wb::bench;

namespace {

/// A module whose main() calls an imported JS function `n` times — the
/// standard boundary-crossing microbenchmark.
backend::WasmArtifact crossing_module(int n) {
  wasm::ModuleBuilder mb;
  const uint32_t tick =
      mb.add_import("env", "sin", wasm::FuncType{{wasm::ValType::F64}, {wasm::ValType::F64}});
  auto init = mb.define(wasm::FuncType{{}, {}}, "__init");
  init.finish("__init");
  auto f = mb.define(wasm::FuncType{{}, {wasm::ValType::I32}}, "main");
  const uint32_t i = f.add_local(wasm::ValType::I32);
  const uint32_t acc = f.add_local(wasm::ValType::F64);
  f.block().loop();
  f.local_get(i).i32(n).op(wasm::Opcode::I32GeS).br_if(1);
  f.local_get(acc).f64(0.5).call(tick).op(wasm::Opcode::F64Add).local_set(acc);
  f.local_get(i).i32(1).op(wasm::Opcode::I32Add).local_set(i);
  f.br(0);
  f.end().end();
  f.local_get(acc).op(wasm::Opcode::I32TruncF64S);
  f.finish("main");
  backend::WasmArtifact artifact;
  artifact.module = mb.take();
  artifact.binary = wasm::encode(artifact.module);
  artifact.imports = {ir::Intrinsic::Sin};
  return artifact;
}

}  // namespace

int main() {
  print_header("Sec 4.5", "JS<->Wasm context-switch cost per browser");

  constexpr int kCalls = 100'000;
  const backend::WasmArtifact with_calls = crossing_module(kCalls);
  const backend::WasmArtifact without_calls = crossing_module(0);

  support::TextTable table("Context switch microbenchmark");
  table.set_header({"browser", "per-crossing (ns)", "vs Chrome"});
  double chrome_ns = 0;
  for (env::Browser b : {env::Browser::Chrome, env::Browser::Firefox, env::Browser::Edge}) {
    env::BrowserEnv browser(b, env::Platform::Desktop);
    const env::PageMetrics m1 = browser.run_wasm(with_calls);
    const env::PageMetrics m0 = browser.run_wasm(without_calls);
    if (!m1.ok || !m0.ok) {
      std::fprintf(stderr, "FATAL: %s%s\n", m1.error.c_str(), m0.error.c_str());
      return 1;
    }
    const double ns = (m1.time_ms - m0.time_ms) * 1e6 / kCalls;
    if (b == env::Browser::Chrome) chrome_ns = ns;
    table.add_row({env::to_string(b), support::fmt(ns, 1),
                   support::fmt_ratio(ns / chrome_ns)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(Paper: Firefox needs only 0.13x of Chrome's context-switch time.)\n");
  return 0;
}
