// Figure 5: per-benchmark execution time (top row) and code size (second
// row) of WebAssembly and JavaScript with -O1, -Ofast, -Oz, relative to
// -O2, on desktop Chrome with the default (M) input.
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Figure 5", "per-benchmark opt-level ratios vs -O2 (Wasm & JS)");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  const auto o1 = run_corpus(core::InputSize::M, ir::OptLevel::O1, chrome);
  const auto o2 = run_corpus(core::InputSize::M, ir::OptLevel::O2, chrome);
  const auto ofast = run_corpus(core::InputSize::M, ir::OptLevel::Ofast, chrome);
  const auto oz = run_corpus(core::InputSize::M, ir::OptLevel::Oz, chrome);

  const auto series = [&](const char* title, auto get) {
    support::TextTable table(title);
    table.set_header({"benchmark", "O1/O2", "Ofast/O2", "Oz/O2"});
    for (size_t i = 0; i < o2.size(); ++i) {
      table.add_row({o2[i].name, support::fmt(get(o1[i]) / get(o2[i]), 3),
                     support::fmt(get(ofast[i]) / get(o2[i]), 3),
                     support::fmt(get(oz[i]) / get(o2[i]), 3)});
    }
    std::printf("%s\n", table.render().c_str());
  };

  series("Fig 5 (row 1a): WASM execution time vs -O2",
         [](const Row& r) { return r.wasm.time_ms; });
  series("Fig 5 (row 1b): JS execution time vs -O2",
         [](const Row& r) { return r.js.time_ms; });
  series("Fig 5 (row 2a): WASM code size vs -O2",
         [](const Row& r) { return static_cast<double>(r.wasm.code_size); });
  series("Fig 5 (row 2b): JS code size vs -O2",
         [](const Row& r) { return static_cast<double>(r.js.code_size); });
  return 0;
}
