// Table 7: WebAssembly performance with the three compiler-tier settings
// — default (both tiers), basic-only (LiftOff/Baseline), optimizing-only
// (TurboFan/Ion) — on Chrome and Firefox (paper Sec. 4.4.2). Numbers are
// the execution-speed ratio of the default setting to each single-tier
// setting (default_time is the denominator of speed, so ratio =
// single_tier_time / default_time... inverted to match the paper:
// ratio = speed(default)/speed(single) = time(single)/time(default)).
#include "common.h"

using namespace wb;
using namespace wb::bench;

namespace {

struct TierData {
  std::vector<Row> def, basic, optimizing;
};

TierData run_browser(const env::BrowserEnv& browser) {
  env::RunOptions def;
  env::RunOptions basic;
  basic.wasm_tiers = env::RunOptions::WasmTiers::BaselineOnly;
  env::RunOptions optimizing;
  optimizing.wasm_tiers = env::RunOptions::WasmTiers::OptimizingOnly;
  TierData d;
  d.def = run_corpus(core::InputSize::M, ir::OptLevel::O2, browser, def);
  d.basic = run_corpus(core::InputSize::M, ir::OptLevel::O2, browser, basic);
  d.optimizing = run_corpus(core::InputSize::M, ir::OptLevel::O2, browser, optimizing);
  return d;
}

std::vector<double> suite_ratio(const std::vector<Row>& variant,
                                const std::vector<Row>& def, const std::string& suite) {
  std::vector<double> out;
  for (size_t i = 0; i < def.size(); ++i) {
    if (!suite.empty() && def[i].suite != suite) continue;
    out.push_back(variant[i].wasm.time_ms / def[i].wasm.time_ms);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Table 7", "Wasm tier configurations: Chrome vs Firefox");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  env::BrowserEnv firefox(env::Browser::Firefox, env::Platform::Desktop);
  const TierData c = run_browser(chrome);
  const TierData f = run_browser(firefox);

  support::TextTable table(
      "Table 7: execution speed ratio of default setting to single-tier settings");
  table.set_header({"Benchmark", "Metric", "LiftOff", "Baseline", "TurboFan", "Ion"});
  const auto add_rows = [&](const char* name, const std::string& suite) {
    table.add_row({name, "Geo. mean",
                   support::fmt_ratio(support::geomean(suite_ratio(c.basic, c.def, suite))),
                   support::fmt_ratio(support::geomean(suite_ratio(f.basic, f.def, suite))),
                   support::fmt_ratio(support::geomean(suite_ratio(c.optimizing, c.def, suite))),
                   support::fmt_ratio(support::geomean(suite_ratio(f.optimizing, f.def, suite)))});
    table.add_row({name, "Average",
                   support::fmt_ratio(support::mean(suite_ratio(c.basic, c.def, suite))),
                   support::fmt_ratio(support::mean(suite_ratio(f.basic, f.def, suite))),
                   support::fmt_ratio(support::mean(suite_ratio(c.optimizing, c.def, suite))),
                   support::fmt_ratio(support::mean(suite_ratio(f.optimizing, f.def, suite)))});
    table.add_rule();
  };
  add_rows("PolyBenchC", "PolyBenchC");
  add_rows("CHStone", "CHStone");
  add_rows("Overall", "");

  std::printf("%s\n", table.render().c_str());
  std::printf("(Columns LiftOff/Baseline: basic compiler only — paper ~1.09-1.16x,\n");
  std::printf(" i.e. slightly slower than default. Columns TurboFan/Ion: optimizing\n");
  std::printf(" only — paper ~0.91-0.95x, slightly faster than default.)\n");
  return 0;
}
