// Table 12 (Appendix D): arithmetic operations executed by the Long.js
// programs in JS and Wasm, from the VMs' instruction-category counters.
#include "benchmarks/realworld.h"
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main() {
  print_header("Table 12", "Long.js arithmetic operation counts (10,000 iterations)");

  support::TextTable table("Table 12");
  table.set_header({"Benchmark", "JS/WASM", "ADD", "MUL", "DIV", "REM", "SHIFT", "AND",
                    "OR", "Total"});
  const auto counts = benchmarks::longjs_operation_counts();
  for (const auto& row : counts) {
    uint64_t js_total = 0, wasm_total = 0;
    std::vector<std::string> js_row = {row.op, "JS"};
    std::vector<std::string> wasm_row = {row.op, "WASM"};
    for (size_t c = 0; c < 7; ++c) {
      js_row.push_back(std::to_string(row.js_counts[c]));
      wasm_row.push_back(std::to_string(row.wasm_counts[c]));
      js_total += row.js_counts[c];
      wasm_total += row.wasm_counts[c];
    }
    js_row.push_back(std::to_string(js_total));
    wasm_row.push_back(std::to_string(wasm_total));
    table.add_row(std::move(js_row));
    table.add_row(std::move(wasm_row));
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(Paper: JS multiplication executes 510k arithmetic ops vs 60k for\n");
  std::printf(" Wasm — 16-bit limb arithmetic vs native i64; same shape here.)\n");
  return 0;
}
