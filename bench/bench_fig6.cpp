// Figure 6: per-benchmark execution time and code size of x86 code with
// -O1, -Ofast, -Oz relative to -O2 (the control experiment showing the
// counter-intuitive Wasm results are not intended compiler behaviour).
#include "common.h"

using namespace wb;
using namespace wb::bench;

namespace {

struct NativeRun {
  std::string name;
  double time_ms;
  double code_size;
};

std::vector<NativeRun> run_native_level(ir::OptLevel level) {
  std::vector<NativeRun> out;
  for (const auto& bench : benchmarks::all_benchmarks()) {
    const core::BuildResult b = core::build(bench, core::InputSize::M, level);
    if (!b.ok) {
      std::fprintf(stderr, "FATAL: %s\n", b.error.c_str());
      std::exit(1);
    }
    const core::NativeMetrics m =
        core::run_native(b, /*fast_math_costs=*/level == ir::OptLevel::Ofast);
    if (!m.ok) {
      std::fprintf(stderr, "FATAL: %s native: %s\n", bench.name.c_str(), m.error.c_str());
      std::exit(1);
    }
    out.push_back({bench.name, m.time_ms, static_cast<double>(m.code_size)});
  }
  return out;
}

}  // namespace

int main() {
  print_header("Figure 6", "per-benchmark x86 opt-level ratios vs -O2");

  const auto o1 = run_native_level(ir::OptLevel::O1);
  const auto o2 = run_native_level(ir::OptLevel::O2);
  const auto ofast = run_native_level(ir::OptLevel::Ofast);
  const auto oz = run_native_level(ir::OptLevel::Oz);

  support::TextTable time_table("Fig 6 (top): x86 execution time vs -O2");
  time_table.set_header({"benchmark", "O1/O2", "Ofast/O2", "Oz/O2"});
  support::TextTable size_table("Fig 6 (bottom): x86 code size vs -O2");
  size_table.set_header({"benchmark", "O1/O2", "Ofast/O2", "Oz/O2"});
  for (size_t i = 0; i < o2.size(); ++i) {
    time_table.add_row({o2[i].name, support::fmt(o1[i].time_ms / o2[i].time_ms, 3),
                        support::fmt(ofast[i].time_ms / o2[i].time_ms, 3),
                        support::fmt(oz[i].time_ms / o2[i].time_ms, 3)});
    size_table.add_row({o2[i].name, support::fmt(o1[i].code_size / o2[i].code_size, 3),
                        support::fmt(ofast[i].code_size / o2[i].code_size, 3),
                        support::fmt(oz[i].code_size / o2[i].code_size, 3)});
  }
  std::printf("%s\n", time_table.render().c_str());
  std::printf("%s\n", size_table.render().c_str());

  std::vector<double> t1, t2, tf, tz;
  for (size_t i = 0; i < o2.size(); ++i) {
    t1.push_back(o1[i].time_ms / o2[i].time_ms);
    tf.push_back(ofast[i].time_ms / o2[i].time_ms);
    tz.push_back(oz[i].time_ms / o2[i].time_ms);
  }
  std::printf("geomeans: O1/O2 %s  Ofast/O2 %s  Oz/O2 %s (paper: 1.36x, 0.97x, 1.22x)\n",
              support::fmt_ratio(support::geomean(t1)).c_str(),
              support::fmt_ratio(support::geomean(tf)).c_str(),
              support::fmt_ratio(support::geomean(tz)).c_str());
  return 0;
}
