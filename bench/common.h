// Shared helpers for the bench binaries. Every binary regenerates one
// paper table or figure and prints the same rows/series the paper reports
// (deterministic: identical output on every run).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "core/study.h"
#include "support/stats.h"
#include "support/table.h"

namespace wb::bench {

/// One benchmark's metrics on both web targets (and optionally native).
struct Row {
  std::string name;
  std::string suite;
  env::PageMetrics wasm;
  env::PageMetrics js;
  core::NativeMetrics native;
  std::string wasm_sha256;  ///< hex SHA-256 of the encoded Wasm binary
  std::string js_sha256;    ///< hex SHA-256 of the generated JS source
};

/// One cell that failed, with the serial runner's exact message text.
struct CellFailure {
  std::string benchmark;
  std::string error;
};

/// run_corpus_checked's outcome: rows for every benchmark (corpus order;
/// failed cells carry ok=false metrics) plus the failures, if any.
struct CorpusResult {
  std::vector<Row> rows;
  std::vector<CellFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs all 41 benchmarks at (size, level) in `browser`, `jobs` cells at a
/// time (0 = effective_jobs()). Each cell is self-contained — own VM, own
/// heap, own virtual clock — so the schedule cannot change any metric:
/// rows are bit-identical to a jobs=1 run. Never aborts; failures are
/// reported per cell and the rest of the corpus still runs.
CorpusResult run_corpus_checked(core::InputSize size, ir::OptLevel level,
                                const env::BrowserEnv& browser,
                                const env::RunOptions& options = {},
                                bool with_native = false,
                                bool native_fast_math_costs = false,
                                int jobs = 0);

/// run_corpus_checked, but aborts the process with the first failure's
/// message — bench output must never silently drop a benchmark.
std::vector<Row> run_corpus(core::InputSize size, ir::OptLevel level,
                            const env::BrowserEnv& browser,
                            const env::RunOptions& options = {},
                            bool with_native = false,
                            bool native_fast_math_costs = false);

/// Corpus concurrency. Priority: set_jobs() (the --jobs=N flag) >
/// WB_JOBS env var > hardware concurrency. Always >= 1.
int effective_jobs();
void set_jobs(int jobs);

/// Parses the shared bench flags (currently --jobs=N) out of argv and
/// applies them; aborts on a malformed value. Unknown arguments are left
/// for the binary's own parsing.
void parse_common_flags(int argc, char** argv);

/// Extracts a metric column from rows.
std::vector<double> wasm_times(const std::vector<Row>& rows);
std::vector<double> js_times(const std::vector<Row>& rows);
std::vector<double> native_times(const std::vector<Row>& rows);
std::vector<double> wasm_sizes(const std::vector<Row>& rows);
std::vector<double> js_sizes(const std::vector<Row>& rows);
std::vector<double> native_sizes(const std::vector<Row>& rows);
std::vector<double> wasm_memories(const std::vector<Row>& rows);
std::vector<double> js_memories(const std::vector<Row>& rows);

/// Elementwise ratios a[i] / b[i].
std::vector<double> ratios(const std::vector<double>& a, const std::vector<double>& b);

/// Prints the standard bench header (paper reference + determinism note).
void print_header(const std::string& id, const std::string& what);

}  // namespace wb::bench
