// Shared helpers for the bench binaries. Every binary regenerates one
// paper table or figure and prints the same rows/series the paper reports
// (deterministic: identical output on every run).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "benchmarks/registry.h"
#include "core/study.h"
#include "support/stats.h"
#include "support/table.h"

namespace wb::bench {

/// One benchmark's metrics on both web targets (and optionally native).
struct Row {
  std::string name;
  std::string suite;
  env::PageMetrics wasm;
  env::PageMetrics js;
  core::NativeMetrics native;
};

/// Runs all 41 benchmarks at (size, level) in `browser`. Aborts the
/// process with a message if any run fails — bench output must never
/// silently drop a benchmark.
std::vector<Row> run_corpus(core::InputSize size, ir::OptLevel level,
                            const env::BrowserEnv& browser,
                            const env::RunOptions& options = {},
                            bool with_native = false,
                            bool native_fast_math_costs = false);

/// Extracts a metric column from rows.
std::vector<double> wasm_times(const std::vector<Row>& rows);
std::vector<double> js_times(const std::vector<Row>& rows);
std::vector<double> native_times(const std::vector<Row>& rows);
std::vector<double> wasm_sizes(const std::vector<Row>& rows);
std::vector<double> js_sizes(const std::vector<Row>& rows);
std::vector<double> native_sizes(const std::vector<Row>& rows);
std::vector<double> wasm_memories(const std::vector<Row>& rows);
std::vector<double> js_memories(const std::vector<Row>& rows);

/// Elementwise ratios a[i] / b[i].
std::vector<double> ratios(const std::vector<double>& a, const std::vector<double>& b);

/// Prints the standard bench header (paper reference + determinism note).
void print_header(const std::string& id, const std::string& what);

}  // namespace wb::bench
