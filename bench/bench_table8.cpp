// Table 8: execution time and memory statistics of JS and Wasm across the
// six deployment settings (Chrome/Firefox/Edge x desktop/mobile), plus
// the Sec. 4.5 relative-ratio summary.
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Table 8", "browsers & platforms: arithmetic averages at -O2, M input");

  struct Setting {
    env::Browser browser;
    env::Platform platform;
    std::vector<Row> rows;
  };
  std::vector<Setting> settings = {
      {env::Browser::Chrome, env::Platform::Desktop, {}},
      {env::Browser::Firefox, env::Platform::Desktop, {}},
      {env::Browser::Edge, env::Platform::Desktop, {}},
      {env::Browser::Chrome, env::Platform::Mobile, {}},
      {env::Browser::Firefox, env::Platform::Mobile, {}},
      {env::Browser::Edge, env::Platform::Mobile, {}},
  };
  for (auto& s : settings) {
    env::BrowserEnv browser(s.browser, s.platform);
    s.rows = run_corpus(core::InputSize::M, ir::OptLevel::O2, browser);
  }

  support::TextTable table("Table 8: averages per deployment setting");
  table.set_header({"", "Chrome", "Firefox", "Edge", "m.Chrome", "m.Firefox", "m.Edge"});
  const auto metric_row = [&](const char* label, auto get) {
    std::vector<std::string> row = {label};
    for (const auto& s : settings) {
      std::vector<double> xs;
      for (const auto& r : s.rows) xs.push_back(get(r));
      row.push_back(support::fmt(support::mean(xs), 2));
    }
    table.add_row(std::move(row));
  };
  metric_row("JS Exec. Time (ms)", [](const Row& r) { return r.js.time_ms; });
  metric_row("WASM Exec. Time (ms)", [](const Row& r) { return r.wasm.time_ms; });
  metric_row("JS Memory (KB)",
             [](const Row& r) { return static_cast<double>(r.js.memory_bytes) / 1024; });
  metric_row("WASM Memory (KB)",
             [](const Row& r) { return static_cast<double>(r.wasm.memory_bytes) / 1024; });
  std::printf("%s\n", table.render().c_str());

  // Sec. 4.5 ratios vs Chrome on the same platform.
  const auto gmean_time = [&](size_t idx, bool js) {
    std::vector<double> xs;
    for (const auto& r : settings[idx].rows) xs.push_back(js ? r.js.time_ms : r.wasm.time_ms);
    return support::geomean(xs);
  };
  std::printf("Relative execution time vs Chrome (geomean; paper values in parens):\n");
  std::printf("  Desktop WASM: Firefox %s (0.61x)  Edge %s (1.28x)\n",
              support::fmt_ratio(gmean_time(1, false) / gmean_time(0, false)).c_str(),
              support::fmt_ratio(gmean_time(2, false) / gmean_time(0, false)).c_str());
  std::printf("  Desktop JS  : Firefox %s (1.06x)  Edge %s (1.40x)\n",
              support::fmt_ratio(gmean_time(1, true) / gmean_time(0, true)).c_str(),
              support::fmt_ratio(gmean_time(2, true) / gmean_time(0, true)).c_str());
  std::printf("  Mobile  WASM: Firefox %s (1.48x)  Edge %s (0.83x)\n",
              support::fmt_ratio(gmean_time(4, false) / gmean_time(3, false)).c_str(),
              support::fmt_ratio(gmean_time(5, false) / gmean_time(3, false)).c_str());
  std::printf("  Mobile  JS  : Firefox %s (0.67x)  Edge %s (0.81x)\n",
              support::fmt_ratio(gmean_time(4, true) / gmean_time(3, true)).c_str(),
              support::fmt_ratio(gmean_time(5, true) / gmean_time(3, true)).c_str());

  // Wasm-vs-JS memory multiple per setting (paper: 3.2-6.2x).
  std::printf("\nWASM/JS memory multiple per setting:\n  ");
  for (const auto& s : settings) {
    std::vector<double> wm, jm;
    for (const auto& r : s.rows) {
      wm.push_back(static_cast<double>(r.wasm.memory_bytes));
      jm.push_back(static_cast<double>(r.js.memory_bytes));
    }
    std::printf("%s/%s %.2fx  ", env::to_string(s.browser), env::to_string(s.platform),
                support::mean(wm) / support::mean(jm));
  }
  std::printf("\n");
  return 0;
}
