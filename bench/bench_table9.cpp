// Table 9: manually-written JavaScript vs Cheerp-generated JavaScript vs
// WebAssembly — execution time and memory (paper Sec. 4.6.1).
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main() {
  print_header("Table 9", "manual JS vs Cheerp JS vs Wasm (desktop Chrome, M input)");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);

  support::TextTable table("Table 9");
  table.set_header({"Benchmark", "LOC", "Manual ms", "Cheerp ms", "WASM ms",
                    "Manual KB", "Cheerp KB", "WASM KB"});

  for (const auto& manual : benchmarks::manual_js_benchmarks()) {
    const core::BenchSource* bench = benchmarks::find_benchmark(manual.bench_name);
    if (!bench) {
      std::fprintf(stderr, "FATAL: no compiled benchmark %s\n", manual.bench_name.c_str());
      return 1;
    }
    const core::BuildResult build =
        core::build(*bench, core::InputSize::M, ir::OptLevel::O2);
    if (!build.ok) {
      std::fprintf(stderr, "FATAL: %s\n", build.error.c_str());
      return 1;
    }
    const env::PageMetrics manual_m = chrome.run_js(manual.source);
    const env::PageMetrics cheerp_m = chrome.run_js(build.js_source);
    const env::PageMetrics wasm_m = chrome.run_wasm(build.wasm);
    if (!manual_m.ok || !cheerp_m.ok || !wasm_m.ok) {
      std::fprintf(stderr, "FATAL: %s failed: %s%s%s\n", manual.name.c_str(),
                   manual_m.error.c_str(), cheerp_m.error.c_str(), wasm_m.error.c_str());
      return 1;
    }
    size_t loc = 1;
    for (char c : manual.source) loc += c == '\n';
    table.add_row({manual.name, std::to_string(loc), support::fmt(manual_m.time_ms, 3),
                   support::fmt(cheerp_m.time_ms, 3), support::fmt(wasm_m.time_ms, 3),
                   support::fmt_kb(static_cast<double>(manual_m.memory_bytes), 0),
                   support::fmt_kb(static_cast<double>(cheerp_m.memory_bytes), 0),
                   support::fmt_kb(static_cast<double>(wasm_m.memory_bytes), 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(Paper observations: most manual rows are slower than Cheerp's JS;\n");
  std::printf(" AES and SHA (W3C) are the exceptions; hand-written PolyBench rows\n");
  std::printf(" use boxed arrays and so hold several MB of GC heap.)\n");
  return 0;
}
