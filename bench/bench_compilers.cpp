// Sec. 4.2.2: Cheerp vs Emscripten — Emscripten-compiled Wasm runs faster
// (paper: 2.70x geomean) but uses more memory (6.02x geomean) because of
// its 16 MiB memory quantum vs Cheerp's 64 KiB pages.
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Sec 4.2.2", "Cheerp vs Emscripten (desktop Chrome, -O2, M input)");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  env::RunOptions cheerp;
  cheerp.toolchain = backend::Toolchain::Cheerp;
  env::RunOptions emcc;
  emcc.toolchain = backend::Toolchain::Emscripten;

  const auto c_rows = run_corpus(core::InputSize::M, ir::OptLevel::O2, chrome, cheerp);
  const auto e_rows = run_corpus(core::InputSize::M, ir::OptLevel::O2, chrome, emcc);

  support::TextTable table("Per-benchmark: Cheerp vs Emscripten (Wasm)");
  table.set_header({"benchmark", "cheerp_ms", "emcc_ms", "speed c/e", "cheerp_KB",
                    "emcc_KB", "mem e/c"});
  std::vector<double> speed, memr;
  for (size_t i = 0; i < c_rows.size(); ++i) {
    const double s = c_rows[i].wasm.time_ms / e_rows[i].wasm.time_ms;
    const double m = static_cast<double>(e_rows[i].wasm.memory_bytes) /
                     static_cast<double>(c_rows[i].wasm.memory_bytes);
    speed.push_back(s);
    memr.push_back(m);
    table.add_row({c_rows[i].name, support::fmt(c_rows[i].wasm.time_ms, 3),
                   support::fmt(e_rows[i].wasm.time_ms, 3), support::fmt(s, 2),
                   support::fmt_kb(static_cast<double>(c_rows[i].wasm.memory_bytes), 0),
                   support::fmt_kb(static_cast<double>(e_rows[i].wasm.memory_bytes), 0),
                   support::fmt(m, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Geomeans: Emscripten is %s faster and uses %s more memory\n",
              support::fmt_ratio(support::geomean(speed)).c_str(),
              support::fmt_ratio(support::geomean(memr)).c_str());
  std::printf("(Paper: 2.70x faster, 6.02x more memory.)\n");
  return 0;
}
