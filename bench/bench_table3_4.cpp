// Tables 3 & 4: Chrome execution-time statistics and average memory usage
// across the five input sizes (paper Sec. 4.3.1, summarizing Fig. 9).
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Tables 3 & 4", "Chrome: Wasm vs JS across input sizes XS..XL");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);

  support::TextTable t3("Table 3: Chrome execution time statistics");
  t3.set_header({"Input Size", "SD #", "SD gmean", "SU #", "SU gmean", "All gmean"});
  support::TextTable t4("Table 4: Chrome average memory usage (KB)");
  t4.set_header({"Input Size", "JavaScript", "WebAssembly"});

  for (core::InputSize size : core::kAllSizes) {
    const auto rows = run_corpus(size, ir::OptLevel::O2, chrome);
    // Paper convention: SD/SU describe *WebAssembly* relative to JS.
    const support::RatioStats stats =
        support::classify_ratios(wasm_times(rows), js_times(rows));
    t3.add_row({core::to_string(size), std::to_string(stats.slowdown_count),
                support::fmt_ratio(stats.slowdown_gmean) + " v",
                std::to_string(stats.speedup_count),
                support::fmt_ratio(stats.speedup_gmean) + " ^",
                support::fmt_ratio(stats.all_gmean) +
                    (stats.all_gmean_is_speedup ? " ^" : " v")});
    t4.add_row({core::to_string(size),
                support::fmt_kb(support::mean(js_memories(rows))),
                support::fmt_kb(support::mean(wasm_memories(rows)))});
  }
  std::printf("%s\n", t3.render().c_str());
  std::printf("(SD = Wasm slower than JS, SU = Wasm faster; ^ = Wasm wins overall.\n");
  std::printf(" Paper: XS 1/40 26.99x^ ... M 18/23 2.30x^ ... XL 18/23 1.58x^)\n\n");
  std::printf("%s\n", t4.render().c_str());
  std::printf("(Paper: JS flat ~880 KB at every size; Wasm grows to ~100 MB at XL.)\n");
  return 0;
}
