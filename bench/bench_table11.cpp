// Table 11 (Appendix A): the Chrome parameters used per experiment and
// what each maps to in this reproduction's environment model.
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main() {
  print_header("Table 11", "Google Chrome parameters per experiment section");

  support::TextTable table("Table 11");
  table.set_header({"Section", "Figures/Tables", "Paper parameter", "Reproduction knob"});
  table.add_row({"Sec 4.2", "Fig 5, 6 / Table 2", "chrome.exe -incognito",
                 "fresh BrowserEnv per run (no cache state exists)"});
  table.add_row({"Sec 4.3", "Fig 9 / Tables 3-6", "chrome.exe -incognito",
                 "fresh BrowserEnv per run"});
  table.add_row({"Sec 4.4", "Fig 10 / Table 7", "default (LiftOff+TurboFan)",
                 "RunOptions::WasmTiers::Default"});
  table.add_row({"Sec 4.4", "Fig 10", "--js-flags=\"--no-opt\"",
                 "RunOptions::js_jit_enabled = false"});
  table.add_row({"Sec 4.4", "Fig 10 / Table 7", "--liftoff --no-wasm-tier-up",
                 "RunOptions::WasmTiers::BaselineOnly"});
  table.add_row({"Sec 4.4", "Table 7", "--no-liftoff --no-wasm-tier-up",
                 "RunOptions::WasmTiers::OptimizingOnly"});
  table.add_row({"Sec 4.5", "Fig 11, 12 / Table 8", "chrome.exe -incognito",
                 "BrowserEnv(browser, platform) per setting"});
  table.add_row({"Sec 4.6", "Table 9, 10, 11", "chrome.exe -incognito",
                 "fresh BrowserEnv per run"});
  std::printf("%s\n", table.render().c_str());

  // And the concrete profile constants those knobs resolve to.
  std::printf("Resolved desktop-Chrome profile constants:\n");
  const env::Profile p = env::profile_for(env::Browser::Chrome, env::Platform::Desktop);
  std::printf("  js parse cost       %llu ps/byte\n",
              static_cast<unsigned long long>(p.js_parse_cost_per_byte));
  std::printf("  js tier-up at       %llu hotness ticks (x%.0f interpreter penalty)\n",
              static_cast<unsigned long long>(p.js_tierup_threshold),
              p.js_baseline_multiplier);
  std::printf("  wasm decode cost    %llu ps/byte, instantiate %.3f ms\n",
              static_cast<unsigned long long>(p.wasm_decode_cost_per_byte),
              static_cast<double>(p.wasm_instantiate_overhead_ps) / 1e9);
  std::printf("  wasm tier-up at     %llu hotness ticks (x%.2f baseline penalty)\n",
              static_cast<unsigned long long>(p.wasm_tierup_threshold),
              p.wasm_baseline_multiplier);
  std::printf("  JS<->Wasm crossing  %.1f ns\n",
              static_cast<double>(p.boundary_cost_ps) / 1000.0);
  return 0;
}
