// Figure 10: performance improvement with JIT optimization — execution
// time without JIT divided by execution time with JIT, for JS and Wasm,
// split into PolyBenchC and CHStone (paper Sec. 4.4.1). A value of 20
// means the program runs 20x faster with the JIT.
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Figure 10", "speedup from JIT (JIT-off time / JIT-on time)");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  env::RunOptions jit_on;
  env::RunOptions jit_off;
  jit_off.js_jit_enabled = false;  // --no-opt
  jit_off.wasm_tiers = env::RunOptions::WasmTiers::BaselineOnly;  // --liftoff

  const auto on = run_corpus(core::InputSize::M, ir::OptLevel::O2, chrome, jit_on);
  const auto off = run_corpus(core::InputSize::M, ir::OptLevel::O2, chrome, jit_off);

  const auto emit = [&](const char* title, const std::string& suite, bool js) {
    support::TextTable table(title);
    table.set_header({"benchmark", "speedup_with_jit"});
    std::vector<double> speedups;
    for (size_t i = 0; i < on.size(); ++i) {
      if (on[i].suite != suite) continue;
      const double with_jit = js ? on[i].js.time_ms : on[i].wasm.time_ms;
      const double without = js ? off[i].js.time_ms : off[i].wasm.time_ms;
      const double s = without / with_jit;
      speedups.push_back(s);
      table.add_row({on[i].name, support::fmt(s, 2)});
    }
    table.add_rule();
    table.add_row({"geo.mean", support::fmt(support::geomean(speedups), 2)});
    table.add_row({"average", support::fmt(support::mean(speedups), 2)});
    std::printf("%s\n", table.render().c_str());
  };

  emit("Fig 10(a): JS, PolyBenchC", "PolyBenchC", true);
  emit("Fig 10(b): JS, CHStone", "CHStone", true);
  emit("Fig 10(c): WASM, PolyBenchC", "PolyBenchC", false);
  emit("Fig 10(d): WASM, CHStone", "CHStone", false);
  std::printf("(Paper: JS speeds up ~10-40x with JIT, CHStone less than PolyBench;\n");
  std::printf(" Wasm improvement ratios stay near 1.)\n");
  return 0;
}
