// Tables 5 & 6: the same input-size sweep on Firefox, where the trend
// inverts (paper Sec. 4.3.2): JS wins at small inputs, Wasm at large.
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Tables 5 & 6", "Firefox: Wasm vs JS across input sizes XS..XL");

  env::BrowserEnv firefox(env::Browser::Firefox, env::Platform::Desktop);

  support::TextTable t5("Table 5: Firefox execution time statistics");
  t5.set_header({"Input Size", "SD #", "SD gmean", "SU #", "SU gmean", "All gmean"});
  support::TextTable t6("Table 6: Firefox average memory usage (KB)");
  t6.set_header({"Input Size", "JavaScript", "WebAssembly"});

  for (core::InputSize size : core::kAllSizes) {
    const auto rows = run_corpus(size, ir::OptLevel::O2, firefox);
    const support::RatioStats stats =
        support::classify_ratios(wasm_times(rows), js_times(rows));
    t5.add_row({core::to_string(size), std::to_string(stats.slowdown_count),
                support::fmt_ratio(stats.slowdown_gmean) + " v",
                std::to_string(stats.speedup_count),
                support::fmt_ratio(stats.speedup_gmean) + " ^",
                support::fmt_ratio(stats.all_gmean) +
                    (stats.all_gmean_is_speedup ? " ^" : " v")});
    t6.add_row({core::to_string(size),
                support::fmt_kb(support::mean(js_memories(rows))),
                support::fmt_kb(support::mean(wasm_memories(rows)))});
  }
  std::printf("%s\n", t5.render().c_str());
  std::printf("(Paper: XS 33/8 3.05x v ... M 16/25 1.08x^ ... XL 6/35 1.67x^ —\n");
  std::printf(" the opposite of Chrome at small inputs.)\n\n");
  std::printf("%s\n", t6.render().c_str());
  std::printf("(Paper: Firefox JS ~510 KB flat; Wasm grows to ~104 MB at XL.)\n");
  return 0;
}
