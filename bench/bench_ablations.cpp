// Ablations: how much each modeled Wasm-backend mechanism contributes to
// the paper's counter-intuitive optimization results (DESIGN.md Sec. 5).
// For each mechanism we re-lower the -O2/-Ofast build with the mechanism
// disabled and report the Wasm execution-time delta.
#include "common.h"
#include "minic/minic.h"

using namespace wb;
using namespace wb::bench;

namespace {

double wasm_gmean_time(ir::OptLevel level, const backend::WasmOptions& base_opts,
                       const env::BrowserEnv& browser) {
  std::vector<double> times;
  for (const auto& bench : benchmarks::all_benchmarks()) {
    minic::CompileOptions copts;
    copts.defines = bench.defines_for(core::InputSize::M);
    std::string error;
    auto m = minic::compile(bench.source, copts, error);
    if (!m) {
      std::fprintf(stderr, "FATAL: %s\n", error.c_str());
      std::exit(1);
    }
    const ir::PipelineInfo info = ir::run_pipeline(*m, level);
    backend::WasmOptions opts = base_opts;
    opts.fast_math = info.fast_math;
    const backend::WasmArtifact artifact = backend::compile_to_wasm(std::move(*m), opts);
    if (!artifact.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", artifact.error.c_str());
      std::exit(1);
    }
    const env::PageMetrics pm = browser.run_wasm(artifact);
    if (!pm.ok) {
      std::fprintf(stderr, "FATAL: %s: %s\n", bench.name.c_str(), pm.error.c_str());
      std::exit(1);
    }
    times.push_back(pm.time_ms);
  }
  return support::geomean(times);
}

}  // namespace

int main() {
  print_header("Ablations", "contribution of each modeled Wasm-backend mechanism");

  // minic include needed above.
  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);

  backend::WasmOptions faithful;
  backend::WasmOptions no_trick = faithful;
  no_trick.const_convert_trick = false;
  backend::WasmOptions no_scalarize = faithful;
  no_scalarize.scalarize_vector_ops = false;

  support::TextTable table("Wasm -O2 geomean time (M input, desktop Chrome)");
  table.set_header({"configuration", "gmean ms", "vs faithful"});
  const double base = wasm_gmean_time(ir::OptLevel::O2, faithful, chrome);
  const double without_trick = wasm_gmean_time(ir::OptLevel::O2, no_trick, chrome);
  const double without_scalarize = wasm_gmean_time(ir::OptLevel::O2, no_scalarize, chrome);
  table.add_row({"faithful (Cheerp behaviour)", support::fmt(base, 4), "1.00x"});
  table.add_row({"- f64-const convert trick (Fig 8)", support::fmt(without_trick, 4),
                 support::fmt_ratio(without_trick / base)});
  table.add_row({"- vector-op scalarization (Fig 5)", support::fmt(without_scalarize, 4),
                 support::fmt_ratio(without_scalarize / base)});
  std::printf("%s\n", table.render().c_str());

  // The fast-math DGSE bug is level-gated; measure its effect on -Ofast
  // via the artifact's own knob: compare Ofast as-is vs DGSE force-run.
  std::vector<double> with_bug, without_bug;
  double worst_ratio = 0;
  std::string worst_name;
  for (const auto& bench : benchmarks::all_benchmarks()) {
    minic::CompileOptions copts;
    copts.defines = bench.defines_for(core::InputSize::M);
    std::string error;
    auto m1 = minic::compile(bench.source, copts, error);
    auto m2 = minic::compile(bench.source, copts, error);
    ir::run_pipeline(*m1, ir::OptLevel::Ofast);
    ir::run_pipeline(*m2, ir::OptLevel::Ofast);
    backend::WasmOptions buggy;
    buggy.fast_math = true;  // DGSE skipped: the replicated bug
    backend::WasmOptions fixed;
    fixed.fast_math = false;  // "fixed compiler": DGSE runs anyway
    const auto a1 = backend::compile_to_wasm(std::move(*m1), buggy);
    const auto a2 = backend::compile_to_wasm(std::move(*m2), fixed);
    const double t1 = chrome.run_wasm(a1).time_ms;
    const double t2 = chrome.run_wasm(a2).time_ms;
    with_bug.push_back(t1);
    without_bug.push_back(t2);
    if (t1 / t2 > worst_ratio) {
      worst_ratio = t1 / t2;
      worst_name = bench.name;
    }
  }
  std::printf("Fast-math DGSE bug at -Ofast: buggy/fixed gmean = %s; worst-hit\n"
              "benchmark %s at %s (paper Fig. 7: ADPCM 1.50x)\n",
              support::fmt_ratio(support::geomean(with_bug) /
                                 support::geomean(without_bug))
                  .c_str(),
              worst_name.c_str(), support::fmt_ratio(worst_ratio).c_str());

  // ---- the paper's future-work direction, implemented -----------------
  // "These findings call for ... compiler optimization techniques
  // [tailored] to WebAssembly." A Wasm-tailored configuration: the -Oz
  // pipeline (no vectorization to scalarize) with the f64-const
  // re-materialization trick turned off.
  backend::WasmOptions tailored;
  tailored.const_convert_trick = false;
  const double oz_stock = wasm_gmean_time(ir::OptLevel::Oz, faithful, chrome);
  const double oz_tailored = wasm_gmean_time(ir::OptLevel::Oz, tailored, chrome);
  std::printf("\n\"-Owasm\" (tailored) vs stock levels, Wasm gmean time:\n");
  std::printf("  stock -O2      %8.4f ms (1.00x)\n", base);
  std::printf("  stock -Oz      %8.4f ms (%s)\n", oz_stock,
              support::fmt_ratio(oz_stock / base).c_str());
  std::printf("  tailored -Owasm%8.4f ms (%s)  <- future-work pipeline\n", oz_tailored,
              support::fmt_ratio(oz_tailored / base).c_str());
  return 0;
}
