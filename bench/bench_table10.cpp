// Table 10: real-world applications — Long.js, Hyphenopoly.js, FFmpeg —
// Wasm vs JS execution time and their ratio (paper Sec. 4.6.2).
#include "benchmarks/realworld.h"
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main() {
  print_header("Table 10", "real-world applications: Wasm vs JS");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  const auto rows = benchmarks::run_real_world_apps(chrome);

  support::TextTable table("Table 10");
  table.set_header({"Benchmark", "Experiment", "Input", "WA Time (ms)", "JS Time (ms)", "Ratio"});
  for (const auto& row : rows) {
    if (!row.ok) {
      std::fprintf(stderr, "FATAL: %s/%s: %s\n", row.benchmark.c_str(),
                   row.experiment.c_str(), row.error.c_str());
      return 1;
    }
    table.add_row({row.benchmark, row.experiment, row.input,
                   support::fmt(row.wasm_ms, 3), support::fmt(row.js_ms, 3),
                   support::fmt(row.ratio(), 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(Paper ratios: Long.js 0.730/0.520/0.578 — Wasm wins on 64-bit int\n");
  std::printf(" arithmetic; Hyphenopoly 0.938/0.960 — near parity on scanning-bound\n");
  std::printf(" work; FFmpeg 0.275 — WebWorker parallelism.)\n");
  return 0;
}
