// Figure 11 (Appendix B): five-number summaries (box plots) of execution
// time, code size, and memory ratios of JS, WASM, and x86 across the
// optimization levels, relative to -O2.
#include "common.h"

using namespace wb;
using namespace wb::bench;

namespace {

void print_summary(support::TextTable& table, const std::string& label,
                   const std::vector<double>& ratios_vec) {
  const support::FiveNumber s = support::five_number_summary(ratios_vec);
  table.add_row({label, support::fmt(s.min, 2), support::fmt(s.q1, 2),
                 support::fmt(s.median, 2), support::fmt(s.q3, 2),
                 support::fmt(s.max, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Figure 11", "five-number summaries of opt-level ratios vs -O2");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  struct LevelData {
    ir::OptLevel level;
    std::vector<Row> rows;
  };
  std::vector<LevelData> levels = {{ir::OptLevel::O1, {}},
                                   {ir::OptLevel::O2, {}},
                                   {ir::OptLevel::Ofast, {}},
                                   {ir::OptLevel::Oz, {}}};
  for (auto& l : levels) {
    l.rows = run_corpus(core::InputSize::M, l.level, chrome, {}, /*with_native=*/true,
                        l.level == ir::OptLevel::Ofast);
  }
  const std::vector<Row>& base = levels[1].rows;

  support::TextTable table("Fig 11: min / Q1 / median / Q3 / max of per-benchmark ratios");
  table.set_header({"series", "min", "Q1", "median", "Q3", "max"});
  for (const auto& l : levels) {
    if (l.level == ir::OptLevel::O2) continue;
    const std::string suffix = std::string(ir::to_string(l.level)) + "/O2";
    print_summary(table, "JS Time " + suffix, ratios(js_times(l.rows), js_times(base)));
    print_summary(table, "WASM Time " + suffix,
                  ratios(wasm_times(l.rows), wasm_times(base)));
    print_summary(table, "x86 Time " + suffix,
                  ratios(native_times(l.rows), native_times(base)));
    print_summary(table, "JS CS " + suffix, ratios(js_sizes(l.rows), js_sizes(base)));
    print_summary(table, "WASM CS " + suffix, ratios(wasm_sizes(l.rows), wasm_sizes(base)));
    print_summary(table, "x86 CS " + suffix,
                  ratios(native_sizes(l.rows), native_sizes(base)));
    print_summary(table, "JS Mem " + suffix,
                  ratios(js_memories(l.rows), js_memories(base)));
    print_summary(table, "WASM Mem " + suffix,
                  ratios(wasm_memories(l.rows), wasm_memories(base)));
    table.add_rule();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(Paper: x86 time medians for O1/O2 and Oz/O2 sit above 1 — 1.29 and\n");
  std::printf(" 1.16 — while JS/WASM medians hug 1; size/memory boxes are flat.)\n");
  return 0;
}
