// Figure 9: per-benchmark execution time and memory usage of Wasm and JS
// across the five input sizes, on desktop Chrome at -O2 (the full series
// behind Tables 3 & 4). Printed as CSV-like rows, one per benchmark/size.
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Figure 9", "time+memory series per benchmark across XS..XL (Chrome)");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);

  support::TextTable table("Fig 9 series (time in ms, memory in KB)");
  table.set_header({"benchmark", "size", "wasm_ms", "js_ms", "wasm_mem_kb", "js_mem_kb"});
  for (core::InputSize size : core::kAllSizes) {
    const auto rows = run_corpus(size, ir::OptLevel::O2, chrome);
    for (const auto& r : rows) {
      table.add_row({r.name, core::to_string(size), support::fmt(r.wasm.time_ms, 3),
                     support::fmt(r.js.time_ms, 3),
                     support::fmt_kb(static_cast<double>(r.wasm.memory_bytes)),
                     support::fmt_kb(static_cast<double>(r.js.memory_bytes))});
    }
  }
  std::printf("%s\n", table.render_csv().c_str());
  std::printf("(Paper Fig. 9: per-benchmark curves; JS memory lines are flat while\n");
  std::printf(" Wasm memory climbs with input; Wasm leads at XS, JS catches up at M+.)\n");
  return 0;
}
