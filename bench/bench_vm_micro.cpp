// Microbenchmarks (google-benchmark): real-time throughput of the two
// virtual machines and the compiler pipeline. These measure the
// reproduction's own substrate speed (host ops/sec), not virtual time.
#include <benchmark/benchmark.h>

#include "benchmarks/registry.h"
#include "core/study.h"
#include "js/engine.h"
#include "wasm/builder.h"
#include "wasm/codec.h"
#include "wasm/interp.h"

namespace {

using namespace wb;

wasm::Module hot_loop_module(int n) {
  wasm::ModuleBuilder mb;
  auto f = mb.define(wasm::FuncType{{}, {wasm::ValType::I32}}, "main");
  const uint32_t i = f.add_local(wasm::ValType::I32);
  const uint32_t acc = f.add_local(wasm::ValType::I32);
  f.block().loop();
  f.local_get(i).i32(n).op(wasm::Opcode::I32GeS).br_if(1);
  f.local_get(acc).local_get(i).op(wasm::Opcode::I32Add).local_set(acc);
  f.local_get(i).i32(1).op(wasm::Opcode::I32Add).local_set(i);
  f.br(0);
  f.end().end();
  f.local_get(acc);
  f.finish("main");
  return mb.take();
}

// The classic one-Instr-at-a-time loop: the baseline the quickened engine
// is measured against (and the family the CI bench-smoke gate tracks).
void BM_WasmInterpreterHotLoop(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    wasm::Instance inst(module, {});
    inst.set_quicken(false);
    const wasm::InvokeResult r = inst.invoke("main", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 9);
}
BENCHMARK(BM_WasmInterpreterHotLoop)->Arg(10'000)->Arg(100'000);

// Same workload on the quickened engine, instantiation (and therefore
// translation) inside the timed region — the shape wb_study actually runs.
void BM_WasmQuickenedHotLoop(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    wasm::Instance inst(module, {});
    inst.set_quicken(true);
    const wasm::InvokeResult r = inst.invoke("main", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 9);
}
BENCHMARK(BM_WasmQuickenedHotLoop)->Arg(10'000)->Arg(100'000);

// Dispatch-only: one long-lived instance re-invoked, so instantiation and
// quickening translation are outside the timed region. Isolates the pure
// inner-loop dispatch cost of each engine.
void BM_WasmDispatchClassic(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(100'000);
  wasm::Instance inst(module, {});
  inst.set_quicken(false);
  for (auto _ : state) {
    const wasm::InvokeResult r = inst.invoke("main", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 9);
}
BENCHMARK(BM_WasmDispatchClassic);

void BM_WasmDispatchQuickened(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(100'000);
  wasm::Instance inst(module, {});
  inst.set_quicken(true);
  for (auto _ : state) {
    const wasm::InvokeResult r = inst.invoke("main", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 9);
}
BENCHMARK(BM_WasmDispatchQuickened);

void BM_JsInterpreterHotLoop(benchmark::State& state) {
  const std::string source =
      "function main() { var acc = 0; for (var i = 0; i < " +
      std::to_string(state.range(0)) + "; i++) acc = (acc + i) | 0; return acc; }";
  std::string error;
  const auto code = js::compile_script(source, error);
  for (auto _ : state) {
    js::Heap heap;
    js::Vm vm(*code, heap);
    (void)vm.run_top_level();
    const js::Vm::Result r = vm.call_function("main", {});
    benchmark::DoNotOptimize(r.value.num);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_JsInterpreterHotLoop)->Arg(10'000)->Arg(100'000);

void BM_CompilePipeline(benchmark::State& state) {
  const core::BenchSource* bench = benchmarks::find_benchmark("gemm");
  for (auto _ : state) {
    const core::BuildResult b =
        core::build(*bench, core::InputSize::M, ir::OptLevel::O2);
    benchmark::DoNotOptimize(b.wasm.binary.size());
  }
}
BENCHMARK(BM_CompilePipeline);

void BM_WasmEncodeDecode(benchmark::State& state) {
  const core::BenchSource* bench = benchmarks::find_benchmark("AES");
  const core::BuildResult b = core::build(*bench, core::InputSize::M, ir::OptLevel::O2);
  for (auto _ : state) {
    const auto bytes = wasm::encode(b.wasm.module);
    auto decoded = wasm::decode(bytes);
    benchmark::DoNotOptimize(decoded->functions.size());
  }
}
BENCHMARK(BM_WasmEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
