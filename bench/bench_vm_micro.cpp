// Microbenchmarks (google-benchmark): real-time throughput of the two
// virtual machines and the compiler pipeline. These measure the
// reproduction's own substrate speed (host ops/sec), not virtual time.
#include <benchmark/benchmark.h>

#include "benchmarks/registry.h"
#include "core/study.h"
#include "js/engine.h"
#include "snap/snap.h"
#include "wasm/builder.h"
#include "wasm/codec.h"
#include "wasm/interp.h"
#include "wasm/jit/cache.h"
#include "wasm/jit/jit.h"

namespace {

using namespace wb;

wasm::Module hot_loop_module(int n) {
  wasm::ModuleBuilder mb;
  auto f = mb.define(wasm::FuncType{{}, {wasm::ValType::I32}}, "main");
  const uint32_t i = f.add_local(wasm::ValType::I32);
  const uint32_t acc = f.add_local(wasm::ValType::I32);
  f.block().loop();
  f.local_get(i).i32(n).op(wasm::Opcode::I32GeS).br_if(1);
  f.local_get(acc).local_get(i).op(wasm::Opcode::I32Add).local_set(acc);
  f.local_get(i).i32(1).op(wasm::Opcode::I32Add).local_set(i);
  f.br(0);
  f.end().end();
  f.local_get(acc);
  f.finish("main");
  return mb.take();
}

// The classic one-Instr-at-a-time loop: the baseline the quickened engine
// is measured against (and the family the CI bench-smoke gate tracks).
void BM_WasmInterpreterHotLoop(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    wasm::Instance inst(module, {});
    inst.set_quicken(false);
    const wasm::InvokeResult r = inst.invoke("main", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 9);
}
BENCHMARK(BM_WasmInterpreterHotLoop)->Arg(10'000)->Arg(100'000);

// Same workload on the quickened engine, instantiation (and therefore
// translation) inside the timed region — the shape wb_study actually runs.
void BM_WasmQuickenedHotLoop(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    wasm::Instance inst(module, {});
    inst.set_quicken(true);
    inst.set_jit(false);  // measure quickened dispatch, not the JIT
    const wasm::InvokeResult r = inst.invoke("main", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 9);
}
BENCHMARK(BM_WasmQuickenedHotLoop)->Arg(10'000)->Arg(100'000);

// Dispatch-only: one long-lived instance re-invoked, so instantiation and
// quickening translation are outside the timed region. Isolates the pure
// inner-loop dispatch cost of each engine.
void BM_WasmDispatchClassic(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(100'000);
  wasm::Instance inst(module, {});
  inst.set_quicken(false);
  for (auto _ : state) {
    const wasm::InvokeResult r = inst.invoke("main", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 9);
}
BENCHMARK(BM_WasmDispatchClassic);

void BM_WasmDispatchQuickened(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(100'000);
  wasm::Instance inst(module, {});
  inst.set_quicken(true);
  inst.set_jit(false);  // long-lived: would tier up and JIT otherwise
  for (auto _ : state) {
    const wasm::InvokeResult r = inst.invoke("main", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 9);
}
BENCHMARK(BM_WasmDispatchQuickened);

// The third tier: the same long-lived dispatch-only shape with the
// copy-and-patch JIT. Pinned to the optimizing tier so the warm-up invoke
// compiles the loop and every timed invoke runs native code. The CI
// bench-smoke gate demands jit/quickened >= 2x on this pair.
void BM_WasmJitHotLoop(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(100'000);
  wasm::Instance inst(module, {});
  inst.set_quicken(true);
  inst.set_jit(true);
  wasm::TierPolicy policy;
  policy.baseline_enabled = false;
  inst.set_tier_policy(policy);
  (void)inst.invoke("main", {});  // warm-up: JIT-compiles the function
  for (auto _ : state) {
    const wasm::InvokeResult r = inst.invoke("main", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 9);
}
BENCHMARK(BM_WasmJitHotLoop);

// One-time cost of stitching stencils for the hot-loop body (compile
// only; the code cache and eligibility scan are inside the timed region).
void BM_WasmJitCompile(benchmark::State& state) {
  const wasm::Module module = hot_loop_module(100'000);
  const wasm::QFunc qf = wasm::quicken(module, 0);
  std::array<uint64_t, wasm::kOpClassCount> costs{};
  costs.fill(100);
  size_t compiled = 0;
  for (auto _ : state) {
    wasm::jit::CodeCache cache;
    auto cf = wasm::jit::compile(qf, 2, 1, costs, cache);
    compiled += cf != nullptr;
    benchmark::DoNotOptimize(cf);
  }
  if (wasm::jit::available() &&
      compiled != static_cast<size_t>(state.iterations())) {
    state.SkipWithError("hot loop failed to compile");
  }
}
BENCHMARK(BM_WasmJitCompile);

void BM_JsInterpreterHotLoop(benchmark::State& state) {
  const std::string source =
      "function main() { var acc = 0; for (var i = 0; i < " +
      std::to_string(state.range(0)) + "; i++) acc = (acc + i) | 0; return acc; }";
  std::string error;
  const auto code = js::compile_script(source, error);
  for (auto _ : state) {
    js::Heap heap;
    js::Vm vm(*code, heap);
    (void)vm.run_top_level();
    const js::Vm::Result r = vm.call_function("main", {});
    benchmark::DoNotOptimize(r.value.num());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_JsInterpreterHotLoop)->Arg(10'000)->Arg(100'000);

// JS dispatch-only pair: one long-lived heap+VM re-invoked so quickening
// translation and string-constant setup stay outside the timed region.
// The CI bench-smoke gate demands quickened/classic >= 2x on this pair.
void BM_JsDispatchClassic(benchmark::State& state) {
  const std::string source =
      "function main() { var acc = 0; for (var i = 0; i < 100000; i++) "
      "acc = (acc + i) | 0; return acc; }";
  std::string error;
  const auto code = js::compile_script(source, error);
  js::Heap heap;
  js::Vm vm(*code, heap);
  vm.set_quicken(false);
  vm.set_sample_memory_at_exit(false);
  (void)vm.run_top_level();
  for (auto _ : state) {
    const js::Vm::Result r = vm.call_function("main", {});
    benchmark::DoNotOptimize(r.value.num());
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 8);
}
BENCHMARK(BM_JsDispatchClassic);

void BM_JsDispatchQuickened(benchmark::State& state) {
  const std::string source =
      "function main() { var acc = 0; for (var i = 0; i < 100000; i++) "
      "acc = (acc + i) | 0; return acc; }";
  std::string error;
  const auto code = js::compile_script(source, error);
  js::Heap heap;
  js::Vm vm(*code, heap);
  vm.set_quicken(true);
  vm.set_sample_memory_at_exit(false);
  (void)vm.run_top_level();
  for (auto _ : state) {
    const js::Vm::Result r = vm.call_function("main", {});
    benchmark::DoNotOptimize(r.value.num());
  }
  state.SetItemsProcessed(state.iterations() * 100'000 * 8);
}
BENCHMARK(BM_JsDispatchQuickened);

// Property-access microbenches: a monomorphic site (one shape, inline
// cache hits after the first pass) vs a polymorphic one cycling four
// shapes through the same site (cache at capacity).
void BM_JsPropertyAccessMono(benchmark::State& state) {
  const std::string source = R"(
    var o = { a: 1, b: 2, c: 3, d: 4, v: 5 };
    function main() {
      var s = 0;
      for (var i = 0; i < 100000; i++) s = (s + o.v) | 0;
      return s;
    }
  )";
  std::string error;
  const auto code = js::compile_script(source, error);
  js::Heap heap;
  js::Vm vm(*code, heap);
  vm.set_sample_memory_at_exit(false);
  (void)vm.run_top_level();
  for (auto _ : state) {
    const js::Vm::Result r = vm.call_function("main", {});
    benchmark::DoNotOptimize(r.value.num());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_JsPropertyAccessMono);

void BM_JsPropertyAccessPoly(benchmark::State& state) {
  const std::string source = R"(
    var os = [
      { v: 1 }, { a: 0, v: 2 }, { a: 0, b: 0, v: 3 }, { a: 0, b: 0, c: 0, v: 4 }
    ];
    function main() {
      var s = 0;
      for (var i = 0; i < 100000; i++) s = (s + os[i & 3].v) | 0;
      return s;
    }
  )";
  std::string error;
  const auto code = js::compile_script(source, error);
  js::Heap heap;
  js::Vm vm(*code, heap);
  vm.set_sample_memory_at_exit(false);
  (void)vm.run_top_level();
  for (auto _ : state) {
    const js::Vm::Result r = vm.call_function("main", {});
    benchmark::DoNotOptimize(r.value.num());
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_JsPropertyAccessPoly);

// A module whose init pass touches every one of its 16 linear-memory
// pages (so zero-page elision keeps them all): the workload behind the
// cold-vs-restore startup pair.
wasm::Module warm_init_module() {
  constexpr int kPages = 16;
  wasm::ModuleBuilder mb;
  mb.set_memory(kPages, kPages);
  auto f = mb.define(wasm::FuncType{{}, {wasm::ValType::I32}}, "init");
  const uint32_t i = f.add_local(wasm::ValType::I32);
  f.block().loop();
  f.local_get(i).i32(kPages * 65536).op(wasm::Opcode::I32GeS).br_if(1);
  f.local_get(i).local_get(i).store(wasm::Opcode::I32Store, 0, 2);
  f.local_get(i).i32(16).op(wasm::Opcode::I32Add).local_set(i);
  f.br(0);
  f.end().end();
  f.local_get(i);
  f.finish("init");
  return mb.take();
}

// Cold start: construct the instance and interpret the warm-up pass, the
// work `wb_study --snapshot` / `wb_fleet --snapshot` skip. Paired with
// BM_SnapshotRestore below; the CI bench-smoke gate demands restore >=5x.
void BM_ColdInstantiate(benchmark::State& state) {
  const wasm::Module module = warm_init_module();
  for (auto _ : state) {
    wasm::Instance inst(module, {});
    const wasm::InvokeResult r = inst.invoke("init", {});
    benchmark::DoNotOptimize(r.value.bits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdInstantiate);

// Warm start: construct the instance and restore the post-init wb::snap
// snapshot (memcpy-class work) instead of re-running the warm-up pass.
void BM_SnapshotRestore(benchmark::State& state) {
  const wasm::Module module = warm_init_module();
  wasm::Instance warm(module, {});
  (void)warm.invoke("init", {});
  const snap::WasmSnapshot snapshot = snap::snapshot_wasm(warm, "bench");
  for (auto _ : state) {
    wasm::Instance inst(module, {});
    const bool ok = snap::resume_wasm(inst, snapshot, snap::Resume::WarmStart);
    benchmark::DoNotOptimize(ok);
    if (!ok) state.SkipWithError("snapshot restore failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotRestore);

void BM_CompilePipeline(benchmark::State& state) {
  const core::BenchSource* bench = benchmarks::find_benchmark("gemm");
  for (auto _ : state) {
    const core::BuildResult b =
        core::build(*bench, core::InputSize::M, ir::OptLevel::O2);
    benchmark::DoNotOptimize(b.wasm.binary.size());
  }
}
BENCHMARK(BM_CompilePipeline);

void BM_WasmEncodeDecode(benchmark::State& state) {
  const core::BenchSource* bench = benchmarks::find_benchmark("AES");
  const core::BuildResult b = core::build(*bench, core::InputSize::M, ir::OptLevel::O2);
  for (auto _ : state) {
    const auto bytes = wasm::encode(b.wasm.module);
    auto decoded = wasm::decode(bytes);
    benchmark::DoNotOptimize(decoded->functions.size());
  }
}
BENCHMARK(BM_WasmEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
