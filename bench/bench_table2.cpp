// Table 2: geometric means of compiler-optimization results — execution
// time, code size, and memory for O1/Ofast/Oz relative to the O2
// baseline, for the JS target, the Wasm target, and x86 (paper Sec. 4.2.1).
#include "common.h"

using namespace wb;
using namespace wb::bench;

int main(int argc, char** argv) {
  wb::bench::parse_common_flags(argc, argv);
  print_header("Table 2", "geomeans of compiler optimization results (vs -O2)");

  env::BrowserEnv chrome(env::Browser::Chrome, env::Platform::Desktop);
  const core::InputSize size = core::InputSize::M;

  struct LevelData {
    ir::OptLevel level;
    std::vector<Row> rows;
  };
  std::vector<LevelData> levels = {{ir::OptLevel::O1, {}},
                                   {ir::OptLevel::O2, {}},
                                   {ir::OptLevel::Ofast, {}},
                                   {ir::OptLevel::Oz, {}}};
  for (auto& l : levels) {
    l.rows = run_corpus(size, l.level, chrome, {}, /*with_native=*/true,
                        /*native_fast_math_costs=*/l.level == ir::OptLevel::Ofast);
  }
  const std::vector<Row>& base = levels[1].rows;

  support::TextTable table("Table 2: geomeans vs -O2 (values < 1 mean faster/smaller)");
  table.set_header({"Metrics", "Targets", "JS", "WASM", "x86"});

  const auto add_metric = [&](const char* metric,
                              std::vector<double> (*js_col)(const std::vector<Row>&),
                              std::vector<double> (*wasm_col)(const std::vector<Row>&),
                              std::vector<double> (*x86_col)(const std::vector<Row>&)) {
    for (const auto& l : levels) {
      if (l.level == ir::OptLevel::O2) continue;
      std::vector<std::string> row;
      row.push_back(metric);
      row.push_back(std::string(ir::to_string(l.level)) + "/O2");
      row.push_back(support::fmt_ratio(
          support::geomean(ratios(js_col(l.rows), js_col(base)))));
      row.push_back(support::fmt_ratio(
          support::geomean(ratios(wasm_col(l.rows), wasm_col(base)))));
      if (x86_col) {
        row.push_back(support::fmt_ratio(
            support::geomean(ratios(x86_col(l.rows), x86_col(base)))));
      } else {
        row.push_back("-");
      }
      table.add_row(std::move(row));
    }
    table.add_rule();
  };

  add_metric("Exec. Time", js_times, wasm_times, native_times);
  add_metric("Code Size", js_sizes, wasm_sizes, native_sizes);
  add_metric("Memory", js_memories, wasm_memories, nullptr);

  std::printf("%s\n", table.render().c_str());

  // The paper's annotations: * Ofast unexpectedly slower than O1/Oz for
  // Wasm/JS; # Oz unexpectedly the fastest.
  const double wasm_o1 = support::geomean(ratios(wasm_times(levels[0].rows), wasm_times(base)));
  const double wasm_ofast =
      support::geomean(ratios(wasm_times(levels[2].rows), wasm_times(base)));
  const double wasm_oz = support::geomean(ratios(wasm_times(levels[3].rows), wasm_times(base)));
  const double x86_ofast =
      support::geomean(ratios(native_times(levels[2].rows), native_times(base)));
  const double x86_o1 = support::geomean(ratios(native_times(levels[0].rows), native_times(base)));
  std::printf("Counter-intuitive checks (paper Sec. 4.2.1):\n");
  std::printf("  WASM: Ofast (%0.2fx) slower than O1 (%0.2fx) and Oz (%0.2fx): %s\n",
              wasm_ofast, wasm_o1, wasm_oz,
              wasm_ofast > wasm_o1 && wasm_ofast > wasm_oz ? "REPRODUCED" : "not observed");
  std::printf("  WASM: Oz is the fastest level: %s\n",
              wasm_oz < wasm_o1 && wasm_oz < wasm_ofast ? "REPRODUCED" : "not observed");
  std::printf("  x86: expected ordering holds (Ofast %0.2fx fastest, O1 %0.2fx slowest): %s\n",
              x86_ofast, x86_o1,
              x86_ofast < 1.0 && x86_o1 > 1.0 ? "REPRODUCED" : "not observed");

  // Per-level winner counts (the "no silver bullet" observation).
  std::printf("\nFastest Wasm binary per benchmark (paper: no single flag wins):\n");
  size_t wins[4] = {0, 0, 0, 0};
  for (size_t b = 0; b < base.size(); ++b) {
    size_t best = 0;
    for (size_t l = 1; l < levels.size(); ++l) {
      if (levels[l].rows[b].wasm.time_ms < levels[best].rows[b].wasm.time_ms) best = l;
    }
    ++wins[best];
  }
  for (size_t l = 0; l < levels.size(); ++l) {
    std::printf("  %-6s fastest for %zu of 41 benchmarks\n",
                ir::to_string(levels[l].level), wins[l]);
  }
  return 0;
}
