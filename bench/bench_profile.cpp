// bench_profile — produce a deterministic profile for one or more
// (benchmark x size x level x browser) cells: a Chrome trace_event JSON
// (load it in chrome://tracing or https://ui.perfetto.dev), folded-stack
// files for flamegraph.pl, and a terminal bottom-up table per VM.
//
// This is the reproduction's analog of the paper's DevTools-based data
// collection (Sec. 3.3): it shows *where* virtual time goes — functions,
// tier-ups, memory.grow traffic, GC pauses, JS<->Wasm crossings — not
// just the total. It also self-checks the profiler's two contracts:
//  1. attribution is complete: per-function self costs sum to the run's
//     total cost_ps, and
//  2. observation is free: metrics are bit-identical with tracing off.
//
// Usage:
//   bench_profile [bench ...] [--size=S] [--level=O2] [--browser=Chrome]
//                 [--mobile] [--outdir=profiles]
// Default benches: gemm (PolyBenchC) and AES (CHStone).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "prof/export.h"
#include "prof/prof.h"
#include "prof/profile.h"
#include "support/json.h"

namespace {

using namespace wb;

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "FATAL: %s\n", msg.c_str());
  std::exit(1);
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) die("cannot write " + path.string());
  out << content;
}

void check(bool cond, const std::string& what) {
  if (!cond) die("self-check failed: " + what);
}

/// Identical-metrics check: tracing must not move any number DevTools
/// would report.
void check_metrics_equal(const env::PageMetrics& off, const env::PageMetrics& on,
                         const std::string& what) {
  check(off.cost_ps == on.cost_ps, what + ": cost_ps changed under tracing");
  check(off.ops == on.ops, what + ": ops changed under tracing");
  check(off.memory_bytes == on.memory_bytes, what + ": memory changed under tracing");
  check(off.result == on.result, what + ": result changed under tracing");
  check(off.boundary_crossings == on.boundary_crossings,
        what + ": crossings changed under tracing");
}

uint64_t self_sum(const prof::Profile& p) {
  uint64_t sum = 0;
  for (const auto& f : p.functions) sum += f.self_ps;
  return sum;
}

void report(const char* vm, const prof::Profile& p, uint64_t cost_ps) {
  std::printf("\n[%s] span total %.3f ms == reported %.3f ms; "
              "%" PRIu64 " tier-ups, %" PRIu64 " grows, %" PRIu64 " GC pauses, "
              "%" PRIu64 " host calls\n",
              vm, static_cast<double>(p.span_total_ps) / 1e9,
              static_cast<double>(cost_ps) / 1e9, p.tierup_events,
              p.memory_grow_events, p.gc_events, p.host_call_events);
  std::printf("%s", prof::format_profile(p, 12).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  core::InputSize size = core::InputSize::S;
  ir::OptLevel level = ir::OptLevel::O2;
  env::Browser browser = env::Browser::Chrome;
  env::Platform platform = env::Platform::Desktop;
  std::filesystem::path outdir = "profiles";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--size=", 0) == 0) {
      const std::string v = value("--size=");
      bool found = false;
      for (const core::InputSize s : core::kAllSizes) {
        if (v == core::to_string(s)) { size = s; found = true; }
      }
      if (!found) die("unknown size: " + v);
    } else if (arg.rfind("--level=", 0) == 0) {
      const std::string v = value("--level=");
      bool found = false;
      for (const ir::OptLevel l : {ir::OptLevel::O0, ir::OptLevel::O1, ir::OptLevel::O2,
                                   ir::OptLevel::O3, ir::OptLevel::Ofast,
                                   ir::OptLevel::Os, ir::OptLevel::Oz}) {
        if (v == ir::to_string(l)) { level = l; found = true; }
      }
      if (!found) die("unknown level: " + v);
    } else if (arg.rfind("--browser=", 0) == 0) {
      const std::string v = value("--browser=");
      if (v == "Chrome") browser = env::Browser::Chrome;
      else if (v == "Firefox") browser = env::Browser::Firefox;
      else if (v == "Edge") browser = env::Browser::Edge;
      else die("unknown browser: " + v);
    } else if (arg == "--mobile") {
      platform = env::Platform::Mobile;
    } else if (arg.rfind("--outdir=", 0) == 0) {
      outdir = value("--outdir=");
    } else if (arg.rfind("--", 0) == 0) {
      die("unknown flag: " + arg + " (see header comment for usage)");
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) names = {"gemm", "AES"};

  bench::print_header("bench_profile",
                      "per-function profiles & traces (paper Sec. 3.3 analog)");
  std::filesystem::create_directories(outdir);
  const env::BrowserEnv browser_env(browser, platform);

  for (const std::string& name : names) {
    const core::BenchSource* bench = benchmarks::find_benchmark(name);
    if (!bench) die("no such benchmark: " + name);
    const core::BuildResult build = core::build(*bench, size, level);
    if (!build.ok) die(build.error);

    std::printf("\n=== %s (%s) @ %s %s %s/%s ===\n", bench->name.c_str(),
                bench->suite.c_str(), core::to_string(size), ir::to_string(level),
                env::to_string(browser), env::to_string(platform));

    // Pass 1 — untraced baseline (also sizes the ring: every function
    // call is at most one begin + one end + one tier-up instant).
    env::RunOptions options;
    const env::PageMetrics wasm_off = browser_env.run_wasm(build.wasm, options);
    const env::PageMetrics js_off = browser_env.run_js(build.js_source, options);
    if (!wasm_off.ok) die(name + " wasm: " + wasm_off.error);
    if (!js_off.ok) die(name + " js: " + js_off.error);

    // Pass 2 — traced. Determinism makes the two passes byte-identical
    // in every metric; bench aborts if not.
    prof::Tracer tracer(1u << 22);
    options.tracer = &tracer;
    const env::PageMetrics wasm_on = browser_env.run_wasm(build.wasm, options);
    const env::PageMetrics js_on = browser_env.run_js(build.js_source, options);
    check_metrics_equal(wasm_off, wasm_on, name + " wasm");
    check_metrics_equal(js_off, js_on, name + " js");

    const prof::Profile wasm_profile = prof::build_profile(tracer, prof::kWasmTrack);
    const prof::Profile js_profile = prof::build_profile(tracer, prof::kJsTrack);
    if (tracer.stats().dropped == 0) {
      // Attribution completeness only holds on a lossless trace.
      check(wasm_profile.span_total_ps == wasm_on.cost_ps,
            name + " wasm: span total != cost_ps");
      check(self_sum(wasm_profile) == wasm_on.cost_ps,
            name + " wasm: self-cost sum != cost_ps");
      check(js_profile.span_total_ps == js_on.cost_ps,
            name + " js: span total != cost_ps");
      check(self_sum(js_profile) == js_on.cost_ps,
            name + " js: self-cost sum != cost_ps");
    } else {
      std::printf("note: ring dropped %" PRIu64 " events; profile covers the tail\n",
                  tracer.stats().dropped);
    }

    report("wasm-vm", wasm_profile, wasm_on.cost_ps);
    report("js-vm", js_profile, js_on.cost_ps);

    // Emitted traces must stay loadable by chrome://tracing — parse the
    // JSON before writing so a malformed trace fails the run (and the
    // profile_smoke ctest) instead of a later manual load.
    const std::string trace = prof::chrome_trace_json(tracer);
    std::string json_error;
    if (!support::json::parse(trace, json_error)) {
      die(name + ": emitted trace is not valid JSON: " + json_error);
    }
    write_file(outdir / (name + ".trace.json"), trace);
    write_file(outdir / (name + ".wasm.folded"),
               prof::folded_stacks(wasm_profile));
    write_file(outdir / (name + ".js.folded"), prof::folded_stacks(js_profile));
    std::printf("\nwrote %s/%s.trace.json (+ .wasm.folded, .js.folded); "
                "%zu events, %" PRIu64 " dropped\n",
                outdir.string().c_str(), name.c_str(), tracer.size(),
                tracer.stats().dropped);
  }
  return 0;
}
