#include "common.h"

#include <cstdlib>
#include <cstring>
#include <span>

#include "support/sha256.h"
#include "support/thread_pool.h"

namespace wb::bench {

namespace {

int g_jobs = 0;  ///< 0 = not set; fall back to WB_JOBS / hardware

std::string format_int(int32_t v) { return std::to_string(v); }

/// Runs one corpus cell. Returns the empty string on success, otherwise
/// the message run_corpus has always printed after "FATAL: ".
std::string run_cell(const core::BenchSource& bench, core::InputSize size,
                     ir::OptLevel level, const env::BrowserEnv& browser,
                     const env::RunOptions& options, bool with_native,
                     bool native_fast_math_costs, Row& row) {
  row.name = bench.name;
  row.suite = bench.suite;
  const core::BuildResult build = core::build(bench, size, level, options.toolchain);
  if (!build.ok) {
    return "build failed: " + build.error;
  }
  row.wasm_sha256 = support::sha256_hex(build.wasm.binary);
  row.js_sha256 = support::sha256_hex(std::span(
      reinterpret_cast<const uint8_t*>(build.js_source.data()), build.js_source.size()));
  row.wasm = browser.run_wasm(build.wasm, options);
  row.js = browser.run_js(build.js_source, options);
  if (!row.wasm.ok || !row.js.ok) {
    return bench.name + " failed: " + row.wasm.error + row.js.error;
  }
  if (row.wasm.result != row.js.result) {
    return bench.name + " checksum mismatch (wasm " + format_int(row.wasm.result) +
           ", js " + format_int(row.js.result) + ")";
  }
  if (with_native) {
    row.native = core::run_native(build, native_fast_math_costs);
    if (!row.native.ok) {
      return bench.name + " native failed: " + row.native.error;
    }
  }
  return {};
}

}  // namespace

int effective_jobs() {
  if (g_jobs > 0) return g_jobs;
  if (const char* env = std::getenv("WB_JOBS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return static_cast<int>(support::hardware_jobs());
}

void set_jobs(int jobs) { g_jobs = jobs > 0 ? jobs : 0; }

void parse_common_flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      const int v = std::atoi(argv[i] + 7);
      if (v <= 0) {
        std::fprintf(stderr, "FATAL: bad --jobs value: %s\n", argv[i] + 7);
        std::exit(2);
      }
      set_jobs(v);
    }
  }
}

CorpusResult run_corpus_checked(core::InputSize size, ir::OptLevel level,
                                const env::BrowserEnv& browser,
                                const env::RunOptions& options, bool with_native,
                                bool native_fast_math_costs, int jobs) {
  const auto& benches = benchmarks::all_benchmarks();
  const size_t n = benches.size();
  if (jobs <= 0) jobs = effective_jobs();

  CorpusResult out;
  out.rows.resize(n);
  std::vector<std::string> errors(n);
  // Cells share nothing (each builds its own artifacts and instantiates
  // its own VMs on a fresh virtual clock), so any schedule produces the
  // same bits; only the rows vector is indexed concurrently, and each
  // cell writes only rows[i]/errors[i].
  support::parallel_for(n, static_cast<unsigned>(jobs), [&](size_t i) {
    errors[i] = run_cell(benches[i], size, level, browser, options, with_native,
                         native_fast_math_costs, out.rows[i]);
  });
  for (size_t i = 0; i < n; ++i) {
    if (!errors[i].empty()) out.failures.push_back({benches[i].name, errors[i]});
  }
  return out;
}

std::vector<Row> run_corpus(core::InputSize size, ir::OptLevel level,
                            const env::BrowserEnv& browser,
                            const env::RunOptions& options, bool with_native,
                            bool native_fast_math_costs) {
  CorpusResult result = run_corpus_checked(size, level, browser, options, with_native,
                                           native_fast_math_costs);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", result.failures.front().error.c_str());
    std::exit(1);
  }
  return std::move(result.rows);
}

namespace {
template <typename F>
std::vector<double> column(const std::vector<Row>& rows, F get) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(get(r));
  return out;
}
}  // namespace

std::vector<double> wasm_times(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return r.wasm.time_ms; });
}
std::vector<double> js_times(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return r.js.time_ms; });
}
std::vector<double> native_times(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return r.native.time_ms; });
}
std::vector<double> wasm_sizes(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.wasm.code_size); });
}
std::vector<double> js_sizes(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.js.code_size); });
}
std::vector<double> native_sizes(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.native.code_size); });
}
std::vector<double> wasm_memories(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.wasm.memory_bytes); });
}
std::vector<double> js_memories(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.js.memory_bytes); });
}

std::vector<double> ratios(const std::vector<double>& a, const std::vector<double>& b) {
  std::vector<double> out;
  out.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) out.push_back(a[i] / b[i]);
  return out;
}

void print_header(const std::string& id, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("(deterministic virtual-clock measurements; see EXPERIMENTS.md\n");
  std::printf(" for paper-vs-reproduction comparison)\n");
  std::printf("================================================================\n");
}

}  // namespace wb::bench
