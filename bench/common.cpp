#include "common.h"

#include <cstdlib>

namespace wb::bench {

std::vector<Row> run_corpus(core::InputSize size, ir::OptLevel level,
                            const env::BrowserEnv& browser,
                            const env::RunOptions& options, bool with_native,
                            bool native_fast_math_costs) {
  std::vector<Row> rows;
  for (const auto& bench : benchmarks::all_benchmarks()) {
    Row row;
    row.name = bench.name;
    row.suite = bench.suite;
    const core::BuildResult build = core::build(bench, size, level, options.toolchain);
    if (!build.ok) {
      std::fprintf(stderr, "FATAL: build failed: %s\n", build.error.c_str());
      std::exit(1);
    }
    row.wasm = browser.run_wasm(build.wasm, options);
    row.js = browser.run_js(build.js_source, options);
    if (!row.wasm.ok || !row.js.ok) {
      std::fprintf(stderr, "FATAL: %s failed: %s%s\n", bench.name.c_str(),
                   row.wasm.error.c_str(), row.js.error.c_str());
      std::exit(1);
    }
    if (row.wasm.result != row.js.result) {
      std::fprintf(stderr, "FATAL: %s checksum mismatch (wasm %d, js %d)\n",
                   bench.name.c_str(), row.wasm.result, row.js.result);
      std::exit(1);
    }
    if (with_native) {
      row.native = core::run_native(build, native_fast_math_costs);
      if (!row.native.ok) {
        std::fprintf(stderr, "FATAL: %s native failed: %s\n", bench.name.c_str(),
                     row.native.error.c_str());
        std::exit(1);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {
template <typename F>
std::vector<double> column(const std::vector<Row>& rows, F get) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(get(r));
  return out;
}
}  // namespace

std::vector<double> wasm_times(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return r.wasm.time_ms; });
}
std::vector<double> js_times(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return r.js.time_ms; });
}
std::vector<double> native_times(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return r.native.time_ms; });
}
std::vector<double> wasm_sizes(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.wasm.code_size); });
}
std::vector<double> js_sizes(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.js.code_size); });
}
std::vector<double> native_sizes(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.native.code_size); });
}
std::vector<double> wasm_memories(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.wasm.memory_bytes); });
}
std::vector<double> js_memories(const std::vector<Row>& rows) {
  return column(rows, [](const Row& r) { return static_cast<double>(r.js.memory_bytes); });
}

std::vector<double> ratios(const std::vector<double>& a, const std::vector<double>& b) {
  std::vector<double> out;
  out.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) out.push_back(a[i] / b[i]);
  return out;
}

void print_header(const std::string& id, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("(deterministic virtual-clock measurements; see EXPERIMENTS.md\n");
  std::printf(" for paper-vs-reproduction comparison)\n");
  std::printf("================================================================\n");
}

}  // namespace wb::bench
