# Empty compiler generated dependencies file for bench_table12.
# This may be replaced when dependencies are built.
