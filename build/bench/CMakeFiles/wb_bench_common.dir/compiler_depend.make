# Empty compiler generated dependencies file for wb_bench_common.
# This may be replaced when dependencies are built.
