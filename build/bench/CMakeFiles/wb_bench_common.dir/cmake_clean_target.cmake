file(REMOVE_RECURSE
  "libwb_bench_common.a"
)
