file(REMOVE_RECURSE
  "CMakeFiles/wb_bench_common.dir/common.cpp.o"
  "CMakeFiles/wb_bench_common.dir/common.cpp.o.d"
  "libwb_bench_common.a"
  "libwb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
