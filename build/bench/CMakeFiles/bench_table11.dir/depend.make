# Empty dependencies file for bench_table11.
# This may be replaced when dependencies are built.
