file(REMOVE_RECURSE
  "CMakeFiles/bench_table11.dir/bench_table11.cpp.o"
  "CMakeFiles/bench_table11.dir/bench_table11.cpp.o.d"
  "bench_table11"
  "bench_table11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
