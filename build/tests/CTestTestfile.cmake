# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_test[1]_include.cmake")
include("/root/repo/build/tests/js_test[1]_include.cmake")
include("/root/repo/build/tests/minic_test[1]_include.cmake")
include("/root/repo/build/tests/backend_test[1]_include.cmake")
include("/root/repo/build/tests/benchmarks_test[1]_include.cmake")
include("/root/repo/build/tests/manualjs_test[1]_include.cmake")
include("/root/repo/build/tests/realworld_test[1]_include.cmake")
include("/root/repo/build/tests/env_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/wat_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
