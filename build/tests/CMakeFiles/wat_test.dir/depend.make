# Empty dependencies file for wat_test.
# This may be replaced when dependencies are built.
