file(REMOVE_RECURSE
  "CMakeFiles/wat_test.dir/wat_test.cpp.o"
  "CMakeFiles/wat_test.dir/wat_test.cpp.o.d"
  "wat_test"
  "wat_test.pdb"
  "wat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
