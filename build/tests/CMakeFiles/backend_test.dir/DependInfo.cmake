
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/backend_diff_test.cpp" "tests/CMakeFiles/backend_test.dir/backend_diff_test.cpp.o" "gcc" "tests/CMakeFiles/backend_test.dir/backend_diff_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backend/CMakeFiles/wb_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/wb_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/wb_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/js/CMakeFiles/wb_js.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/wb_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
