file(REMOVE_RECURSE
  "CMakeFiles/wasm_test.dir/wasm_codec_test.cpp.o"
  "CMakeFiles/wasm_test.dir/wasm_codec_test.cpp.o.d"
  "CMakeFiles/wasm_test.dir/wasm_interp_test.cpp.o"
  "CMakeFiles/wasm_test.dir/wasm_interp_test.cpp.o.d"
  "CMakeFiles/wasm_test.dir/wasm_validator_test.cpp.o"
  "CMakeFiles/wasm_test.dir/wasm_validator_test.cpp.o.d"
  "wasm_test"
  "wasm_test.pdb"
  "wasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
