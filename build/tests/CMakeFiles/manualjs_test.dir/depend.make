# Empty dependencies file for manualjs_test.
# This may be replaced when dependencies are built.
