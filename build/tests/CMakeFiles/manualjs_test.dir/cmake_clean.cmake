file(REMOVE_RECURSE
  "CMakeFiles/manualjs_test.dir/manualjs_test.cpp.o"
  "CMakeFiles/manualjs_test.dir/manualjs_test.cpp.o.d"
  "manualjs_test"
  "manualjs_test.pdb"
  "manualjs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manualjs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
