# Empty dependencies file for realworld_test.
# This may be replaced when dependencies are built.
