file(REMOVE_RECURSE
  "CMakeFiles/realworld_test.dir/realworld_test.cpp.o"
  "CMakeFiles/realworld_test.dir/realworld_test.cpp.o.d"
  "realworld_test"
  "realworld_test.pdb"
  "realworld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realworld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
