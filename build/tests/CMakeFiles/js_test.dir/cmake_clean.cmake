file(REMOVE_RECURSE
  "CMakeFiles/js_test.dir/js_engine_test.cpp.o"
  "CMakeFiles/js_test.dir/js_engine_test.cpp.o.d"
  "CMakeFiles/js_test.dir/js_gc_test.cpp.o"
  "CMakeFiles/js_test.dir/js_gc_test.cpp.o.d"
  "js_test"
  "js_test.pdb"
  "js_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/js_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
