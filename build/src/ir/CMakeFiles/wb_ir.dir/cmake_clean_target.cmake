file(REMOVE_RECURSE
  "libwb_ir.a"
)
