# Empty compiler generated dependencies file for wb_ir.
# This may be replaced when dependencies are built.
