file(REMOVE_RECURSE
  "CMakeFiles/wb_ir.dir/exec.cpp.o"
  "CMakeFiles/wb_ir.dir/exec.cpp.o.d"
  "CMakeFiles/wb_ir.dir/ir.cpp.o"
  "CMakeFiles/wb_ir.dir/ir.cpp.o.d"
  "CMakeFiles/wb_ir.dir/passes.cpp.o"
  "CMakeFiles/wb_ir.dir/passes.cpp.o.d"
  "libwb_ir.a"
  "libwb_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
