file(REMOVE_RECURSE
  "libwb_backend.a"
)
