# Empty compiler generated dependencies file for wb_backend.
# This may be replaced when dependencies are built.
