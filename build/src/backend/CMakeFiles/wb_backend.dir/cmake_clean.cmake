file(REMOVE_RECURSE
  "CMakeFiles/wb_backend.dir/js_backend.cpp.o"
  "CMakeFiles/wb_backend.dir/js_backend.cpp.o.d"
  "CMakeFiles/wb_backend.dir/native_backend.cpp.o"
  "CMakeFiles/wb_backend.dir/native_backend.cpp.o.d"
  "CMakeFiles/wb_backend.dir/wasm_backend.cpp.o"
  "CMakeFiles/wb_backend.dir/wasm_backend.cpp.o.d"
  "libwb_backend.a"
  "libwb_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
