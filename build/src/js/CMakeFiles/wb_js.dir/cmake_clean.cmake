file(REMOVE_RECURSE
  "CMakeFiles/wb_js.dir/compiler.cpp.o"
  "CMakeFiles/wb_js.dir/compiler.cpp.o.d"
  "CMakeFiles/wb_js.dir/engine.cpp.o"
  "CMakeFiles/wb_js.dir/engine.cpp.o.d"
  "CMakeFiles/wb_js.dir/heap.cpp.o"
  "CMakeFiles/wb_js.dir/heap.cpp.o.d"
  "CMakeFiles/wb_js.dir/interp.cpp.o"
  "CMakeFiles/wb_js.dir/interp.cpp.o.d"
  "CMakeFiles/wb_js.dir/lexer.cpp.o"
  "CMakeFiles/wb_js.dir/lexer.cpp.o.d"
  "CMakeFiles/wb_js.dir/parser.cpp.o"
  "CMakeFiles/wb_js.dir/parser.cpp.o.d"
  "libwb_js.a"
  "libwb_js.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_js.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
