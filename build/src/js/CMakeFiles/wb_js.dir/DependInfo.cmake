
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/js/compiler.cpp" "src/js/CMakeFiles/wb_js.dir/compiler.cpp.o" "gcc" "src/js/CMakeFiles/wb_js.dir/compiler.cpp.o.d"
  "/root/repo/src/js/engine.cpp" "src/js/CMakeFiles/wb_js.dir/engine.cpp.o" "gcc" "src/js/CMakeFiles/wb_js.dir/engine.cpp.o.d"
  "/root/repo/src/js/heap.cpp" "src/js/CMakeFiles/wb_js.dir/heap.cpp.o" "gcc" "src/js/CMakeFiles/wb_js.dir/heap.cpp.o.d"
  "/root/repo/src/js/interp.cpp" "src/js/CMakeFiles/wb_js.dir/interp.cpp.o" "gcc" "src/js/CMakeFiles/wb_js.dir/interp.cpp.o.d"
  "/root/repo/src/js/lexer.cpp" "src/js/CMakeFiles/wb_js.dir/lexer.cpp.o" "gcc" "src/js/CMakeFiles/wb_js.dir/lexer.cpp.o.d"
  "/root/repo/src/js/parser.cpp" "src/js/CMakeFiles/wb_js.dir/parser.cpp.o" "gcc" "src/js/CMakeFiles/wb_js.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
