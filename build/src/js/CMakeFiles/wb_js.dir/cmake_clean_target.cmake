file(REMOVE_RECURSE
  "libwb_js.a"
)
