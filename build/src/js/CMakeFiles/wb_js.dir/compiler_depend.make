# Empty compiler generated dependencies file for wb_js.
# This may be replaced when dependencies are built.
