
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wasm/decoder.cpp" "src/wasm/CMakeFiles/wb_wasm.dir/decoder.cpp.o" "gcc" "src/wasm/CMakeFiles/wb_wasm.dir/decoder.cpp.o.d"
  "/root/repo/src/wasm/encoder.cpp" "src/wasm/CMakeFiles/wb_wasm.dir/encoder.cpp.o" "gcc" "src/wasm/CMakeFiles/wb_wasm.dir/encoder.cpp.o.d"
  "/root/repo/src/wasm/interp.cpp" "src/wasm/CMakeFiles/wb_wasm.dir/interp.cpp.o" "gcc" "src/wasm/CMakeFiles/wb_wasm.dir/interp.cpp.o.d"
  "/root/repo/src/wasm/opcode.cpp" "src/wasm/CMakeFiles/wb_wasm.dir/opcode.cpp.o" "gcc" "src/wasm/CMakeFiles/wb_wasm.dir/opcode.cpp.o.d"
  "/root/repo/src/wasm/validator.cpp" "src/wasm/CMakeFiles/wb_wasm.dir/validator.cpp.o" "gcc" "src/wasm/CMakeFiles/wb_wasm.dir/validator.cpp.o.d"
  "/root/repo/src/wasm/wat.cpp" "src/wasm/CMakeFiles/wb_wasm.dir/wat.cpp.o" "gcc" "src/wasm/CMakeFiles/wb_wasm.dir/wat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
