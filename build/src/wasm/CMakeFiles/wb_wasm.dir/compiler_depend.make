# Empty compiler generated dependencies file for wb_wasm.
# This may be replaced when dependencies are built.
