file(REMOVE_RECURSE
  "libwb_wasm.a"
)
