file(REMOVE_RECURSE
  "CMakeFiles/wb_wasm.dir/decoder.cpp.o"
  "CMakeFiles/wb_wasm.dir/decoder.cpp.o.d"
  "CMakeFiles/wb_wasm.dir/encoder.cpp.o"
  "CMakeFiles/wb_wasm.dir/encoder.cpp.o.d"
  "CMakeFiles/wb_wasm.dir/interp.cpp.o"
  "CMakeFiles/wb_wasm.dir/interp.cpp.o.d"
  "CMakeFiles/wb_wasm.dir/opcode.cpp.o"
  "CMakeFiles/wb_wasm.dir/opcode.cpp.o.d"
  "CMakeFiles/wb_wasm.dir/validator.cpp.o"
  "CMakeFiles/wb_wasm.dir/validator.cpp.o.d"
  "CMakeFiles/wb_wasm.dir/wat.cpp.o"
  "CMakeFiles/wb_wasm.dir/wat.cpp.o.d"
  "libwb_wasm.a"
  "libwb_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
