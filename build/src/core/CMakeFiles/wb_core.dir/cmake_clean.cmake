file(REMOVE_RECURSE
  "CMakeFiles/wb_core.dir/study.cpp.o"
  "CMakeFiles/wb_core.dir/study.cpp.o.d"
  "libwb_core.a"
  "libwb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
