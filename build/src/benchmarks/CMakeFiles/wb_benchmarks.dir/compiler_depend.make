# Empty compiler generated dependencies file for wb_benchmarks.
# This may be replaced when dependencies are built.
