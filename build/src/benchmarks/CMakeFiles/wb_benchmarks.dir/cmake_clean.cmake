file(REMOVE_RECURSE
  "CMakeFiles/wb_benchmarks.dir/chstone.cpp.o"
  "CMakeFiles/wb_benchmarks.dir/chstone.cpp.o.d"
  "CMakeFiles/wb_benchmarks.dir/manualjs.cpp.o"
  "CMakeFiles/wb_benchmarks.dir/manualjs.cpp.o.d"
  "CMakeFiles/wb_benchmarks.dir/polybench.cpp.o"
  "CMakeFiles/wb_benchmarks.dir/polybench.cpp.o.d"
  "CMakeFiles/wb_benchmarks.dir/realworld.cpp.o"
  "CMakeFiles/wb_benchmarks.dir/realworld.cpp.o.d"
  "CMakeFiles/wb_benchmarks.dir/registry.cpp.o"
  "CMakeFiles/wb_benchmarks.dir/registry.cpp.o.d"
  "libwb_benchmarks.a"
  "libwb_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
