file(REMOVE_RECURSE
  "libwb_benchmarks.a"
)
