# Empty compiler generated dependencies file for wb_minic.
# This may be replaced when dependencies are built.
