file(REMOVE_RECURSE
  "libwb_minic.a"
)
