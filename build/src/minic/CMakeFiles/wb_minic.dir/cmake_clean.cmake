file(REMOVE_RECURSE
  "CMakeFiles/wb_minic.dir/minic.cpp.o"
  "CMakeFiles/wb_minic.dir/minic.cpp.o.d"
  "libwb_minic.a"
  "libwb_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
