file(REMOVE_RECURSE
  "libwb_support.a"
)
