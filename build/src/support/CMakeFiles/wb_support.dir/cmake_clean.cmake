file(REMOVE_RECURSE
  "CMakeFiles/wb_support.dir/leb128.cpp.o"
  "CMakeFiles/wb_support.dir/leb128.cpp.o.d"
  "CMakeFiles/wb_support.dir/sha256.cpp.o"
  "CMakeFiles/wb_support.dir/sha256.cpp.o.d"
  "CMakeFiles/wb_support.dir/stats.cpp.o"
  "CMakeFiles/wb_support.dir/stats.cpp.o.d"
  "CMakeFiles/wb_support.dir/table.cpp.o"
  "CMakeFiles/wb_support.dir/table.cpp.o.d"
  "libwb_support.a"
  "libwb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
