# Empty dependencies file for wb_support.
# This may be replaced when dependencies are built.
