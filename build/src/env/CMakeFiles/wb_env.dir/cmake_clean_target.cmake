file(REMOVE_RECURSE
  "libwb_env.a"
)
