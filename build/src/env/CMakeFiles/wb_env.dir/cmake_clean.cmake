file(REMOVE_RECURSE
  "CMakeFiles/wb_env.dir/env.cpp.o"
  "CMakeFiles/wb_env.dir/env.cpp.o.d"
  "libwb_env.a"
  "libwb_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wb_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
