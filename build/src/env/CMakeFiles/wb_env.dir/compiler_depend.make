# Empty compiler generated dependencies file for wb_env.
# This may be replaced when dependencies are built.
