file(REMOVE_RECURSE
  "CMakeFiles/compare_opt_levels.dir/compare_opt_levels.cpp.o"
  "CMakeFiles/compare_opt_levels.dir/compare_opt_levels.cpp.o.d"
  "compare_opt_levels"
  "compare_opt_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_opt_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
