# Empty compiler generated dependencies file for compare_opt_levels.
# This may be replaced when dependencies are built.
