# Empty dependencies file for browser_shootout.
# This may be replaced when dependencies are built.
