file(REMOVE_RECURSE
  "CMakeFiles/browser_shootout.dir/browser_shootout.cpp.o"
  "CMakeFiles/browser_shootout.dir/browser_shootout.cpp.o.d"
  "browser_shootout"
  "browser_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
