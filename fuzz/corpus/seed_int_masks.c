/* Regression seed: masked indexing, guarded division, xor checksum. */
int g0[16];
int g1[32];
int main(void) {
  int i0; int t0; int cs = 0;
  for (i0 = 0; i0 < 16; i0++) g0[i0] = (i0 * 7 + 3) % 251;
  for (i0 = 0; i0 < 32; i0++) g1[i0] = (i0 * 11 + 5) % 251;
  for (i0 = 0; i0 < 32; i0++) {
    t0 = g1[(i0 + 3) & 31] / (1 + (g0[i0 & 15] & 15));
    g1[i0 & 31] ^= t0 * 3 - (t0 >> 2);
  }
  for (i0 = 0; i0 < 16; i0++) cs = cs ^ (g0[i0] * (i0 + 1));
  for (i0 = 0; i0 < 32; i0++) cs = cs ^ (g1[i0] * (i0 + 1));
  return cs % 1000003;
}
