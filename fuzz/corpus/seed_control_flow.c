/* Regression seed: switch, continue/break in for, nested if/else. */
int g0[64];
int main(void) {
  int i0; int t0; int cs = 0;
  for (i0 = 0; i0 < 64; i0++) g0[i0] = (i0 * 13 + 9) % 251;
  for (i0 = 0; i0 < 64; i0++) {
    if (i0 == 50) break;
    if ((i0 & 3) == 1) continue;
    switch (g0[i0] & 3) {
      case 0:
        g0[i0] += i0;
        break;
      case 1:
        g0[(i0 + 1) & 63] ^= 7;
        break;
      case 2:
        if (g0[i0] > 100) {
          g0[i0] -= 31;
        } else {
          g0[i0] += 17;
        }
        break;
      default:
        t0 = g0[i0] % (1 + (i0 & 15));
        g0[i0] = t0 * 5;
        break;
    }
  }
  for (i0 = 0; i0 < 64; i0++) cs = cs ^ (g0[i0] * (i0 + 1));
  return cs % 1000003;
}
