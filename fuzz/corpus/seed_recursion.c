/* Regression seed: bounded recursion and helper calls. */
int g0[32];
int h0(int n) {
  if (n <= 0) return 1;
  return ((n & 7) + 5 * h0(n - 1)) % 9973;
}
int h1(int a, int b) {
  return ((a ^ b) + (a / (1 + (b & 15)))) * 3;
}
int main(void) {
  int i0; int cs = 0;
  for (i0 = 0; i0 < 32; i0++) g0[i0] = (i0 * 9 + 1) % 251;
  for (i0 = 0; i0 < 32; i0++) {
    g0[i0] = g0[i0] + h0(i0 & 15) - h1(g0[i0], i0);
  }
  for (i0 = 0; i0 < 32; i0++) cs = cs ^ (g0[i0] * (i0 + 1));
  return cs % 1000003;
}
