/* Regression seed: bounded while/do-while, ternary, shifts, mixed types. */
int g0[16];
double g1[16];
int main(void) {
  int i0; int w0; int w1; int t0; int cs = 0; double fs = 0.0;
  for (i0 = 0; i0 < 16; i0++) g0[i0] = (i0 * 3 + 2) % 251;
  for (i0 = 0; i0 < 16; i0++) g1[i0] = (double)(i0 * 7 % 97) / 5.0;
  w0 = 0;
  while (w0 < 9) {
    t0 = (g0[w0 & 15] > 64) ? (g0[w0 & 15] >> 2) : (g0[w0 & 15] << 1);
    g0[(w0 * 5) & 15] ^= t0;
    w0 = w0 + 1;
  }
  w1 = 0;
  do {
    double v = g1[w1 & 15] * 1.5 - (double)((g0[w1 & 15]) & 255);
    g1[w1 & 15] = (v) - floor((v) / 256.0) * 256.0;
    w1 = w1 + 1;
  } while (w1 < 7);
  for (i0 = 0; i0 < 16; i0++) cs = cs ^ (g0[i0] * (i0 + 1));
  for (i0 = 0; i0 < 16; i0++) fs += g1[i0] - floor(g1[i0] / 100.0) * 100.0;
  return (cs % 1000003) + (int)(fs * 8.0);
}
