/* Regression seed: the floor-mod wrap idiom plus range-guarded libm. */
double g0[16];
double g1[8];
int main(void) {
  int i0; double fs = 0.0;
  for (i0 = 0; i0 < 16; i0++) g0[i0] = (double)(i0 * 5 % 97) / 4.0;
  for (i0 = 0; i0 < 8; i0++) g1[i0] = (double)(i0 * 3 % 97) / 3.0;
  for (i0 = 0; i0 < 16; i0++) {
    double v = sqrt(fabs(g0[i0])) + sin(g1[i0 & 7]) * cos(g0[i0]) +
               pow(sin(g0[i0]) + 2.0, 2.0) + exp(cos(g1[i0 & 7])) +
               log(1.0 + fabs(g0[i0]));
    g0[i0] = (v) - floor((v) / 256.0) * 256.0;
  }
  for (i0 = 0; i0 < 16; i0++) fs += g0[i0] - floor(g0[i0] / 100.0) * 100.0;
  for (i0 = 0; i0 < 8; i0++) fs += g1[i0] - floor(g1[i0] / 100.0) * 100.0;
  return (int)(fs * 8.0);
}
