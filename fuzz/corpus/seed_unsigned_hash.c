/* Regression seed: unsigned FNV mix over an unsigned char array. */
unsigned char g0[64];
unsigned uh;
int main(void) {
  int i0; int cs = 0;
  for (i0 = 0; i0 < 64; i0++) g0[i0] = (i0 * 131 + 7) % 251;
  uh = 2166136261;
  for (i0 = 0; i0 < 64; i0++) uh = (uh ^ (unsigned)g0[i0]) * 16777619;
  uh = uh ^ (uh >> 13);
  cs = cs ^ (int)(uh & 0x7fffffff);
  for (i0 = 0; i0 < 64; i0++) cs = cs ^ (g0[i0] * (i0 + 1));
  return cs % 1000003;
}
