#include "js/interp.h"

#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "prof/prof.h"
#include "replay/boundary.h"
#include "support/sha256.h"

namespace wb::js {

JsArithCat js_arith_cat(JsOp op) {
  switch (op) {
    case JsOp::Add:
    case JsOp::Sub:
      return JsArithCat::Add;
    case JsOp::Mul:
      return JsArithCat::Mul;
    case JsOp::Div:
      return JsArithCat::Div;
    case JsOp::Mod:
      return JsArithCat::Rem;
    case JsOp::Shl:
    case JsOp::ShrS:
    case JsOp::ShrU:
      return JsArithCat::Shift;
    case JsOp::BitAnd:
      return JsArithCat::And;
    case JsOp::BitOr:
    case JsOp::BitXor:
      return JsArithCat::Or;
    default:
      return JsArithCat::None;
  }
}

namespace {

enum BuiltinId : uint32_t {
  kMathFloor,
  kMathCeil,
  kMathSqrt,
  kMathAbs,
  kMathMin,
  kMathMax,
  kMathPow,
  kMathExp,
  kMathLog,
  kMathSin,
  kMathCos,
  kMathRound,
  kMathTrunc,
  kMathImul,
  kPerfNow,
  kConsoleLog,
  kCryptoDigest,
  kStringFromCharCode,
};

constexpr uint64_t kNativeDigestCostPerByte = 60;  // ps; WebCrypto runs native code
constexpr size_t kMaxJsCallDepth = 2000;

double to_number_str(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const double d = std::strtod(s.c_str(), &end);
  while (end && *end != '\0' && std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (!end || *end != '\0') return std::nan("");
  return d;
}

bool truthy(const Heap& heap, JsValue v) {
  switch (v.tag()) {
    case JsValue::Tag::Undefined:
    case JsValue::Tag::Null:
      return false;
    case JsValue::Tag::Bool:
      return v.boolean();
    case JsValue::Tag::Number:
      return v.num() != 0 && !std::isnan(v.num());
    case JsValue::Tag::Object: {
      const GcObject& o = heap.get(v.ref());
      if (o.kind == ObjKind::String) return !o.str().empty();
      return true;
    }
  }
  return false;
}

}  // namespace

Vm::Vm(const ScriptCode& code, Heap& heap) : code_(code), heap_(heap) {
  globals_.resize(code.names.size());
  func_state_.resize(code.protos.size());
  cost_tables_[0].fill(100);
  cost_tables_[1].fill(100);

  str_const_refs_.reserve(code.str_consts.size());
  for (const auto& s : code.str_consts) {
    const ObjRef r = heap_.alloc_string(s);
    heap_.pin(r);
    str_const_refs_.push_back(r);
  }

  heap_.set_root_scanner([this](const std::function<void(JsValue)>& visit) {
    for (JsValue v : stack_) visit(v);
    for (JsValue v : locals_) visit(v);
    for (JsValue v : globals_) visit(v);
  });

  install_builtins();
  set_quicken(quicken_default());
}

Vm::~Vm() { heap_.set_root_scanner(nullptr); }

void Vm::set_cost_tables(const JsCostTable& baseline, const JsCostTable& optimized) {
  cost_tables_[0] = baseline;
  cost_tables_[1] = optimized;
}

void Vm::set_tier_policy(const JsTierPolicy& policy) { tier_policy_ = policy; }

void Vm::set_quicken(bool enabled) {
  quicken_enabled_ = enabled;
  if (enabled && qfuncs_.empty()) {
    uint32_t cache_slots = 0;
    qfuncs_.reserve(code_.protos.size());
    for (uint32_t i = 0; i < code_.protos.size(); ++i) {
      qfuncs_.push_back(quicken(code_, i, cache_slots));
    }
    prop_caches_.assign(cache_slots, PropCache{});
  }
}

void Vm::set_gc_mode(GcMode mode) {
  heap_.set_gc_mode(mode);
  if (mode == GcMode::Generational) {
    heap_.set_pause_hook([this](bool major, size_t scanned_bytes) {
      charge((major ? kMajorGcBasePs : kMinorGcBasePs) +
                 kGcPausePerBytePs * static_cast<uint64_t>(scanned_bytes),
             attr::Cause::GcPause);
    });
  } else {
    heap_.set_pause_hook(nullptr);
  }
}

Vm::SnapshotState Vm::capture_snapshot() const {
  SnapshotState s;
  s.globals_bits.reserve(globals_.size());
  for (const JsValue v : globals_) s.globals_bits.push_back(v.bits);
  s.str_const_refs = str_const_refs_;
  s.funcs.reserve(func_state_.size());
  for (const FuncState& f : func_state_) {
    s.funcs.push_back({f.tier, f.hotness});
  }
  s.prop_caches = prop_caches_;
  s.stats = stats_;
  s.attr = attr_;
  s.heap = heap_.capture_image();
  return s;
}

bool Vm::restore_snapshot(const SnapshotState& s, bool with_stats) {
  if (s.globals_bits.size() != globals_.size()) return false;
  if (s.str_const_refs.size() != str_const_refs_.size()) return false;
  if (s.funcs.size() != func_state_.size()) return false;
  if (!heap_.restore_image(s.heap, with_stats)) return false;
  for (size_t i = 0; i < globals_.size(); ++i) {
    JsValue v;
    v.bits = s.globals_bits[i];
    globals_[i] = v;
  }
  str_const_refs_ = s.str_const_refs;
  for (size_t i = 0; i < func_state_.size(); ++i) {
    func_state_[i].tier = s.funcs[i].tier;
    func_state_[i].hotness = s.funcs[i].hotness;
  }
  // ICs are host-side only; restore them when the cache pools line up
  // (the quickened engine on both sides), ignore them otherwise.
  if (s.prop_caches.size() == prop_caches_.size()) prop_caches_ = s.prop_caches;
  if (with_stats) {
    stats_ = s.stats;
    attr_ = s.attr;
  }
  return true;
}

int32_t Vm::find_name(std::string_view name) const {
  for (uint32_t i = 0; i < code_.names.size(); ++i) {
    if (code_.names[i] == name) return static_cast<int32_t>(i);
  }
  return -1;
}

void Vm::set_global(std::string_view name, JsValue value) {
  const int32_t id = find_name(name);
  if (id >= 0) globals_[static_cast<size_t>(id)] = value;
}

JsValue Vm::get_global(std::string_view name) const {
  const int32_t id = find_name(name);
  return id >= 0 ? globals_[static_cast<size_t>(id)] : JsValue::undefined();
}

ObjRef Vm::make_string(std::string s) { return heap_.alloc_string(std::move(s)); }

void Vm::fail(std::string message) {
  if (ok_) {
    ok_ = false;
    error_ = std::move(message);
  }
}

void Vm::install_builtins() {
  auto add_builtin_prop = [&](ObjRef obj, std::string_view prop, uint32_t builtin) {
    const int32_t id = find_name(prop);
    if (id < 0) return;
    const ObjRef fn = heap_.alloc_builtin(builtin);
    heap_.pin(fn);
    heap_.get(obj).props().push_back(Prop{static_cast<uint32_t>(id), JsValue::object(fn)});
  };
  auto make_namespace = [&](std::string_view name) -> ObjRef {
    const ObjRef obj = heap_.alloc_object();
    heap_.pin(obj);
    set_global(name, JsValue::object(obj));
    return obj;
  };

  if (find_name("Math") >= 0) {
    const ObjRef math = make_namespace("Math");
    add_builtin_prop(math, "floor", kMathFloor);
    add_builtin_prop(math, "ceil", kMathCeil);
    add_builtin_prop(math, "sqrt", kMathSqrt);
    add_builtin_prop(math, "abs", kMathAbs);
    add_builtin_prop(math, "min", kMathMin);
    add_builtin_prop(math, "max", kMathMax);
    add_builtin_prop(math, "pow", kMathPow);
    add_builtin_prop(math, "exp", kMathExp);
    add_builtin_prop(math, "log", kMathLog);
    add_builtin_prop(math, "sin", kMathSin);
    add_builtin_prop(math, "cos", kMathCos);
    add_builtin_prop(math, "round", kMathRound);
    add_builtin_prop(math, "trunc", kMathTrunc);
    add_builtin_prop(math, "imul", kMathImul);
    const int32_t pi = find_name("PI");
    if (pi >= 0) {
      heap_.get(math).props().push_back(
          Prop{static_cast<uint32_t>(pi), JsValue::number(M_PI)});
    }
  }
  if (find_name("performance") >= 0) {
    add_builtin_prop(make_namespace("performance"), "now", kPerfNow);
  }
  if (find_name("console") >= 0) {
    add_builtin_prop(make_namespace("console"), "log", kConsoleLog);
  }
  if (find_name("crypto") >= 0) {
    add_builtin_prop(make_namespace("crypto"), "digest", kCryptoDigest);
  }
  if (find_name("String") >= 0) {
    add_builtin_prop(make_namespace("String"), "fromCharCode", kStringFromCharCode);
  }
}

std::string Vm::to_display_string(JsValue v) const {
  switch (v.tag()) {
    case JsValue::Tag::Undefined:
      return "undefined";
    case JsValue::Tag::Null:
      return "null";
    case JsValue::Tag::Bool:
      return v.boolean() ? "true" : "false";
    case JsValue::Tag::Number: {
      if (std::isnan(v.num())) return "NaN";
      char buf[32];
      if (v.num() == std::trunc(v.num()) && std::abs(v.num()) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", v.num());
      } else {
        std::snprintf(buf, sizeof buf, "%g", v.num());
      }
      return buf;
    }
    case JsValue::Tag::Object: {
      const GcObject& o = heap_.get(v.ref());
      switch (o.kind) {
        case ObjKind::String:
          return o.str();
        case ObjKind::Array:
          return "[Array]";
        case ObjKind::Object:
          return "[Object]";
        case ObjKind::Function:
        case ObjKind::Builtin:
          return "[Function]";
        default:
          return "[TypedArray]";
      }
    }
  }
  return "";
}

Vm::Result Vm::run_top_level() {
  for (uint32_t i = 1; i < code_.protos.size(); ++i) {
    const int32_t id = find_name(code_.protos[i].name);
    if (id >= 0) {
      const ObjRef fn = heap_.alloc_function(i);
      heap_.pin(fn);
      globals_[static_cast<size_t>(id)] = JsValue::object(fn);
    }
  }
  return run(0, {});
}

Vm::Result Vm::call_function(std::string_view name, std::span<const JsValue> args) {
  const JsValue fn = get_global(name);
  if (!fn.is_object() || heap_.get(fn.ref()).kind != ObjKind::Function) {
    return {false, "no such function: " + std::string(name), {}};
  }
  return run(heap_.get(fn.ref()).fn_index(), args);
}

void Vm::set_tracer(prof::Tracer* tracer) {
  tracer_ = tracer;
  if (!tracer) return;
  proto_trace_names_.clear();
  proto_trace_names_.reserve(code_.protos.size());
  for (size_t i = 0; i < code_.protos.size(); ++i) {
    const std::string& name = code_.protos[i].name;
    proto_trace_names_.push_back(tracer->intern(
        i == 0 ? "(top-level)" : name.empty() ? "fn" + std::to_string(i) : name));
  }
  gc_trace_name_ = tracer->intern("gc:mark-sweep");
}

void Vm::maybe_tier_up(uint32_t proto_index, uint64_t now_ps) {
  FuncState& state = func_state_[proto_index];
  if (state.tier == 1) return;
  ++state.hotness;
  if (!tier_policy_.jit_enabled) return;
  if (state.hotness < tier_policy_.tierup_threshold) return;
  state.tier = 1;
  ++stats_.tierups;
  const uint64_t compile_ps =
      tier_policy_.tierup_cost_per_instr * code_.protos[proto_index].code.size();
  stats_.cost_ps += compile_ps;
  attr_.add_direct(attr::Cause::TierCompile, compile_ps);
  if (tracer_) {
    tracer_->instant(prof::Cat::TierUp, proto_trace_names_[proto_index],
                     now_ps + compile_ps, compile_ps);
  }
}

// ---------------------------------------------------------------- builtins

double Vm::arg_number(JsValue v) const {
  if (v.is_number()) return v.num();
  if (v.is_bool()) return v.boolean() ? 1 : 0;
  if (v.is_null()) return 0;
  if (v.is_object() && heap_.get(v.ref()).kind == ObjKind::String) {
    return to_number_str(heap_.get(v.ref()).str());
  }
  return std::nan("");
}

bool Vm::call_builtin(uint32_t builtin_id, JsValue receiver,
                      std::span<const JsValue> args, JsValue& result) {
  ++stats_.host_calls;
  // The pure numeric builtins (Math.*) are the recordable JS boundary:
  // their result depends only on the converted numeric arguments, so the
  // converted-double bit patterns are a complete memo key. Impure
  // builtins (performance.now, console.log, crypto.digest,
  // String.fromCharCode) are never intercepted. Calls with more than 8
  // args skip interception on both sides (record and replay agree, and
  // the computation is pure either way).
  if ((recorder_ || replay_host_) && builtin_id <= kMathImul &&
      args.size() <= 8) {
    uint64_t bits[8];
    for (size_t i = 0; i < args.size(); ++i) {
      bits[i] = std::bit_cast<uint64_t>(arg_number(args[i]));
    }
    const std::span<const uint64_t> arg_bits(bits, args.size());
    if (replay_host_) {
      uint64_t result_bits = 0;
      if (!replay_host_->lookup(builtin_id, arg_bits, result_bits)) {
        fail("replay divergence: no canned response for builtin " +
             std::to_string(builtin_id));
        return false;
      }
      result = JsValue::number(std::bit_cast<double>(result_bits));
      return true;
    }
    if (!call_builtin_impl(builtin_id, receiver, args, result)) return false;
    recorder_->js_builtin_call(builtin_id, arg_bits,
                               std::bit_cast<uint64_t>(result.num()));
    return true;
  }
  return call_builtin_impl(builtin_id, receiver, args, result);
}

bool Vm::call_builtin_impl(uint32_t builtin_id, JsValue receiver,
                           std::span<const JsValue> args, JsValue& result) {
  (void)receiver;
  auto num_arg = [&](size_t i) -> double {
    return i < args.size() ? arg_number(args[i]) : std::nan("");
  };

  switch (builtin_id) {
    case kMathFloor: result = JsValue::number(std::floor(num_arg(0))); return true;
    case kMathCeil: result = JsValue::number(std::ceil(num_arg(0))); return true;
    case kMathSqrt: result = JsValue::number(std::sqrt(num_arg(0))); return true;
    case kMathAbs: result = JsValue::number(std::abs(num_arg(0))); return true;
    case kMathPow: result = JsValue::number(std::pow(num_arg(0), num_arg(1))); return true;
    case kMathExp: result = JsValue::number(std::exp(num_arg(0))); return true;
    case kMathLog: result = JsValue::number(std::log(num_arg(0))); return true;
    case kMathSin: result = JsValue::number(std::sin(num_arg(0))); return true;
    case kMathCos: result = JsValue::number(std::cos(num_arg(0))); return true;
    case kMathRound: result = JsValue::number(std::floor(num_arg(0) + 0.5)); return true;
    case kMathTrunc: result = JsValue::number(std::trunc(num_arg(0))); return true;
    case kMathMin: {
      double m = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < args.size(); ++i) m = std::fmin(m, num_arg(i));
      result = JsValue::number(m);
      return true;
    }
    case kMathMax: {
      double m = -std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < args.size(); ++i) m = std::fmax(m, num_arg(i));
      result = JsValue::number(m);
      return true;
    }
    case kMathImul: {
      const int32_t r = static_cast<int32_t>(
          static_cast<uint32_t>(to_int32(num_arg(0))) *
          static_cast<uint32_t>(to_int32(num_arg(1))));
      result = JsValue::number(r);
      return true;
    }
    case kPerfNow:
      // The virtual clock, in milliseconds — scripts instrumented with
      // performance.now() observe the same time the harness reports.
      result = JsValue::number(static_cast<double>(stats_.cost_ps) / 1e9);
      return true;
    case kConsoleLog:
      result = JsValue::undefined();
      return true;
    case kCryptoDigest: {
      // crypto.digest(data): native SHA-256 over a Uint8Array or string;
      // returns a Uint8Array(32). Stands in for the W3C WebCrypto API.
      std::vector<uint8_t> bytes;
      if (!args.empty() && args[0].is_object()) {
        const GcObject& o = heap_.get(args[0].ref());
        if (o.kind == ObjKind::Uint8Array) {
          bytes.assign(std::get<std::vector<uint8_t>>(o.data).begin(),
                       std::get<std::vector<uint8_t>>(o.data).end());
        } else if (o.kind == ObjKind::String) {
          bytes.assign(o.str().begin(), o.str().end());
        }
      }
      // A host-API crossing: attribute the native digest like a boundary
      // call, not like interpreted JS work.
      const uint64_t digest_ps = kNativeDigestCostPerByte * bytes.size() + 2000;
      stats_.cost_ps += digest_ps;
      attr_.add_direct(attr::Cause::CallOverhead, digest_ps);
      const auto digest = support::sha256(bytes);
      const ObjRef out = heap_.alloc_u8_array(digest.size());
      std::copy(digest.begin(), digest.end(), heap_.get(out).u8().begin());
      result = JsValue::object(out);
      return true;
    }
    case kStringFromCharCode: {
      std::string s;
      for (size_t i = 0; i < args.size(); ++i) {
        s += static_cast<char>(to_int32(num_arg(i)) & 0xff);
      }
      result = JsValue::object(make_string(std::move(s)));
      return true;
    }
    default:
      fail("unknown builtin");
      return false;
  }
}

bool Vm::method_on_primitive(const GcObject& recv_obj, JsValue receiver,
                             std::span<const JsValue> args, uint32_t name_id,
                             JsValue& result, bool& handled) {
  handled = true;
  const std::string& name = code_.names[name_id];
  switch (recv_obj.kind) {
    case ObjKind::Array: {
      heap_.write_barrier(receiver.ref());
      auto& elems = heap_.get(receiver.ref()).elems();
      if (name == "push") {
        for (JsValue a : args) elems.push_back(a);
        result = JsValue::number(static_cast<double>(elems.size()));
        return true;
      }
      if (name == "pop") {
        if (elems.empty()) {
          result = JsValue::undefined();
        } else {
          result = elems.back();
          elems.pop_back();
        }
        return true;
      }
      if (name == "fill") {
        const JsValue v = args.empty() ? JsValue::undefined() : args[0];
        for (auto& e : elems) e = v;
        result = receiver;
        return true;
      }
      if (name == "indexOf") {
        result = JsValue::number(-1);
        if (!args.empty() && args[0].is_number()) {
          for (size_t i = 0; i < elems.size(); ++i) {
            if (elems[i].is_number() && elems[i].num() == args[0].num()) {
              result = JsValue::number(static_cast<double>(i));
              break;
            }
          }
        }
        return true;
      }
      break;
    }
    case ObjKind::String: {
      const std::string& s = recv_obj.str();
      if (name == "charCodeAt") {
        const int32_t i = args.empty() ? 0 : to_int32(args[0].num());
        if (i < 0 || static_cast<size_t>(i) >= s.size()) {
          result = JsValue::number(std::nan(""));
        } else {
          result = JsValue::number(static_cast<unsigned char>(s[static_cast<size_t>(i)]));
        }
        return true;
      }
      if (name == "charAt") {
        const int32_t i = args.empty() ? 0 : to_int32(args[0].num());
        std::string out;
        if (i >= 0 && static_cast<size_t>(i) < s.size()) out = s.substr(static_cast<size_t>(i), 1);
        result = JsValue::object(make_string(std::move(out)));
        return true;
      }
      if (name == "substring" || name == "slice") {
        int32_t from = args.size() > 0 && args[0].is_number() ? to_int32(args[0].num()) : 0;
        int32_t to = args.size() > 1 && args[1].is_number() ? to_int32(args[1].num())
                                                            : static_cast<int32_t>(s.size());
        from = std::clamp(from, 0, static_cast<int32_t>(s.size()));
        to = std::clamp(to, from, static_cast<int32_t>(s.size()));
        result = JsValue::object(
            make_string(s.substr(static_cast<size_t>(from), static_cast<size_t>(to - from))));
        return true;
      }
      if (name == "indexOf") {
        std::string needle;
        if (!args.empty() && args[0].is_object() &&
            heap_.get(args[0].ref()).kind == ObjKind::String) {
          needle = heap_.get(args[0].ref()).str();
        }
        const size_t at = s.find(needle);
        result = JsValue::number(at == std::string::npos ? -1 : static_cast<double>(at));
        return true;
      }
      break;
    }
    case ObjKind::Float64Array:
    case ObjKind::Int32Array:
    case ObjKind::Uint8Array: {
      if (name == "fill") {
        GcObject& o = heap_.get(receiver.ref());
        const double v = args.empty() || !args[0].is_number() ? 0 : args[0].num();
        if (o.kind == ObjKind::Float64Array) {
          std::fill(o.f64().begin(), o.f64().end(), v);
        } else if (o.kind == ObjKind::Int32Array) {
          std::fill(o.i32().begin(), o.i32().end(), to_int32(v));
        } else {
          std::fill(o.u8().begin(), o.u8().end(), static_cast<uint8_t>(to_int32(v)));
        }
        result = receiver;
        return true;
      }
      break;
    }
    default:
      break;
  }
  handled = false;
  return true;
}

// ------------------------------------------------------------------- run

Vm::Result Vm::run(uint32_t proto_index, std::span<const JsValue> args) {
  return quicken_enabled_ ? run_quickened(proto_index, args)
                          : run_classic(proto_index, args);
}

Vm::Result Vm::run_classic(uint32_t proto_index, std::span<const JsValue> args) {
  ok_ = true;
  error_.clear();
  stack_.clear();
  locals_.clear();
  frames_.clear();

  uint64_t ops = 0;
  uint64_t cost = 0;
  auto flush = [&] {
    stats_.ops_executed += ops;
    stats_.cost_ps += cost;
    ops = 0;
    cost = 0;
  };

  const JsInstr* code = nullptr;
  uint32_t code_size = 0;
  const uint64_t* costs = nullptr;
  uint64_t* ccnt = nullptr;  // attribution: per-class counts of the active tier
  const FunctionProto* proto = nullptr;
  uint32_t pc = 0;

  auto cache_frame = [&] {
    const Frame& f = frames_.back();
    proto = &code_.protos[f.proto];
    code = proto->code.data();
    code_size = static_cast<uint32_t>(proto->code.size());
    costs = cost_tables_[func_state_[f.proto].tier].data();
    ccnt = attr_.class_counts[func_state_[f.proto].tier].data();
    pc = f.pc;
  };

  auto enter = [&](uint32_t pidx, std::span<const JsValue> call_args) -> bool {
    if (frames_.size() >= kMaxJsCallDepth) {
      fail("maximum call stack size exceeded");
      return false;
    }
    // Begin the span first so a tier-up compile pause on this entry lands
    // inside the entered function's self time.
    if (tracer_) {
      tracer_->begin(prof::Cat::JsFunc, proto_trace_names_[pidx],
                     stats_.cost_ps + cost);
    }
    maybe_tier_up(pidx, stats_.cost_ps + cost);
    const FunctionProto& p = code_.protos[pidx];
    Frame f;
    f.proto = pidx;
    f.pc = 0;
    f.locals_base = static_cast<uint32_t>(locals_.size());
    f.stack_base = static_cast<uint32_t>(stack_.size());
    locals_.resize(f.locals_base + p.nlocals, JsValue::undefined());
    for (uint32_t i = 0; i < p.nparams && i < call_args.size(); ++i) {
      locals_[f.locals_base + i] = call_args[i];
    }
    frames_.push_back(f);
    cache_frame();
    return true;
  };

  if (!enter(proto_index, args)) {
    flush();
    return {false, error_, {}};
  }

  // GC pauses are observed through the heap's collect hook so every
  // collection — threshold-tripped or explicit — is stamped with the
  // VM's current virtual-clock reading. Uninstalled at `done`.
  if (tracer_) {
    heap_.set_collect_hook([this, &cost](const GcStats& gc) {
      tracer_->instant(prof::Cat::GcPhase, gc_trace_name_, stats_.cost_ps + cost,
                       gc.live_bytes);
    });
  }

  auto pop = [&]() -> JsValue {
    JsValue v = stack_.back();
    stack_.pop_back();
    return v;
  };
  auto to_number = [&](JsValue v) -> double {
    switch (v.tag()) {
      case JsValue::Tag::Number:
        return v.num();
      case JsValue::Tag::Bool:
        return v.boolean() ? 1 : 0;
      case JsValue::Tag::Null:
        return 0;
      case JsValue::Tag::Undefined:
        return std::nan("");
      case JsValue::Tag::Object: {
        const GcObject& o = heap_.get(v.ref());
        if (o.kind == ObjKind::String) return to_number_str(o.str());
        return std::nan("");
      }
    }
    return std::nan("");
  };
  auto is_string = [&](JsValue v) {
    return v.is_object() && heap_.get(v.ref()).kind == ObjKind::String;
  };

  JsValue return_value = JsValue::undefined();

  while (ok_) {
    if (pc >= code_size) {
      // Implicit return undefined.
      if (frames_.size() == 1 && sample_memory_at_exit_) {
        heap_.collect();
      }
      const Frame f = frames_.back();
      if (tracer_) {
        tracer_->end(prof::Cat::JsFunc, proto_trace_names_[f.proto],
                     stats_.cost_ps + cost);
      }
      frames_.pop_back();
      locals_.resize(f.locals_base);
      stack_.resize(f.stack_base);
      if (frames_.empty()) {
        return_value = JsValue::undefined();
        break;
      }
      stack_.push_back(JsValue::undefined());
      cache_frame();
      continue;
    }
    if (ops >= fuel_) {
      fail("fuel exhausted");
      break;
    }

    const JsInstr ins = code[pc];
    ++ops;
    cost += costs[static_cast<size_t>(js_op_class(ins.op))];
    ++ccnt[static_cast<size_t>(js_op_class(ins.op))];
    {
      const JsArithCat cat = js_arith_cat(ins.op);
      if (cat != JsArithCat::None) ++stats_.arith_counts[static_cast<size_t>(cat)];
    }

    switch (ins.op) {
      case JsOp::ConstNum:
        stack_.push_back(JsValue::number(proto->num_consts[ins.a]));
        break;
      case JsOp::ConstStr:
        stack_.push_back(JsValue::object(str_const_refs_[ins.a]));
        break;
      case JsOp::Undef:
        stack_.push_back(JsValue::undefined());
        break;
      case JsOp::Null:
        stack_.push_back(JsValue::null());
        break;
      case JsOp::True:
        stack_.push_back(JsValue::boolean_value(true));
        break;
      case JsOp::False:
        stack_.push_back(JsValue::boolean_value(false));
        break;
      case JsOp::LoadLocal:
        stack_.push_back(locals_[frames_.back().locals_base + ins.a]);
        break;
      case JsOp::StoreLocal:
        locals_[frames_.back().locals_base + ins.a] = pop();
        break;
      case JsOp::LoadGlobal:
        stack_.push_back(globals_[ins.a]);
        break;
      case JsOp::StoreGlobal:
        globals_[ins.a] = pop();
        break;

      case JsOp::Add: {
        const JsValue b = pop();
        const JsValue a = stack_.back();
        if (a.is_number() && b.is_number()) {
          stack_.back() = JsValue::number(a.num() + b.num());
        } else if (is_string(a) || is_string(b)) {
          std::string s = to_display_string(a) + to_display_string(b);
          stack_.back() = JsValue::object(make_string(std::move(s)));
          heap_.maybe_collect();
        } else {
          stack_.back() = JsValue::number(to_number(a) + to_number(b));
        }
        break;
      }
#define WB_JS_NUM_BIN(OP, EXPR)                                   \
  case JsOp::OP: {                                                \
    const double b = to_number(pop());                            \
    const double a = to_number(stack_.back());                    \
    (void)a; (void)b;                                             \
    stack_.back() = JsValue::number(EXPR);                        \
    break;                                                        \
  }
      WB_JS_NUM_BIN(Sub, a - b)
      WB_JS_NUM_BIN(Mul, a * b)
      WB_JS_NUM_BIN(Div, a / b)
      WB_JS_NUM_BIN(Mod, std::fmod(a, b))
#undef WB_JS_NUM_BIN
      case JsOp::Neg:
        stack_.back() = JsValue::number(-to_number(stack_.back()));
        break;
      case JsOp::ToNum:
        stack_.back() = JsValue::number(to_number(stack_.back()));
        break;
#define WB_JS_BIT_BIN(OP, EXPR)                                   \
  case JsOp::OP: {                                                \
    const int32_t b = to_int32(to_number(pop()));                 \
    const int32_t a = to_int32(to_number(stack_.back()));         \
    const uint32_t ua = static_cast<uint32_t>(a);                 \
    const uint32_t ub = static_cast<uint32_t>(b);                 \
    (void)a; (void)b; (void)ua; (void)ub;                         \
    stack_.back() = JsValue::number(EXPR);                        \
    break;                                                        \
  }
      WB_JS_BIT_BIN(BitAnd, a & b)
      WB_JS_BIT_BIN(BitOr, a | b)
      WB_JS_BIT_BIN(BitXor, a ^ b)
      WB_JS_BIT_BIN(Shl, a << (ub & 31))
      WB_JS_BIT_BIN(ShrS, a >> (ub & 31))
      WB_JS_BIT_BIN(ShrU, static_cast<double>(ua >> (ub & 31)))
#undef WB_JS_BIT_BIN
      case JsOp::BitNot:
        stack_.back() = JsValue::number(~to_int32(to_number(stack_.back())));
        break;

      case JsOp::Eq:
      case JsOp::Ne:
      case JsOp::StrictEq:
      case JsOp::StrictNe: {
        const JsValue b = pop();
        const JsValue a = stack_.back();
        const bool loose = ins.op == JsOp::Eq || ins.op == JsOp::Ne;
        const bool a_str = is_string(a);
        const bool b_str = is_string(b);
        auto is_primitive = [&](JsValue v, bool v_str) {
          return v.is_number() || v.is_bool() || v_str;
        };
        bool eq;
        if (a.is_number() && b.is_number()) {
          eq = a.num() == b.num();
        } else if (a_str && b_str) {
          eq = heap_.get(a.ref()).str() == heap_.get(b.ref()).str();
        } else if (a.is_object() && b.is_object()) {
          eq = a.ref() == b.ref();
        } else if (a.tag() == b.tag()) {
          eq = a.is_bool() ? a.boolean() == b.boolean() : true;  // null/undefined
        } else if (loose && ((a.is_null() && b.is_undefined()) ||
                             (a.is_undefined() && b.is_null()))) {
          eq = true;
        } else if (loose && is_primitive(a, a_str) && is_primitive(b, b_str)) {
          eq = to_number(a) == to_number(b);
        } else {
          eq = false;
        }
        const bool want_eq = ins.op == JsOp::Eq || ins.op == JsOp::StrictEq;
        stack_.back() = JsValue::boolean_value(want_eq ? eq : !eq);
        break;
      }
#define WB_JS_CMP(OP, CMP)                                        \
  case JsOp::OP: {                                                \
    const JsValue b = pop();                                      \
    const JsValue a = stack_.back();                              \
    bool r;                                                       \
    if (is_string(a) && is_string(b)) {                           \
      r = heap_.get(a.ref()).str() CMP heap_.get(b.ref()).str();      \
    } else {                                                      \
      r = to_number(a) CMP to_number(b);                          \
    }                                                             \
    stack_.back() = JsValue::boolean_value(r);                    \
    break;                                                        \
  }
      WB_JS_CMP(Lt, <)
      WB_JS_CMP(Le, <=)
      WB_JS_CMP(Gt, >)
      WB_JS_CMP(Ge, >=)
#undef WB_JS_CMP
      case JsOp::Not:
        stack_.back() = JsValue::boolean_value(!truthy(heap_, stack_.back()));
        break;

      case JsOp::Jump:
        if (ins.a <= pc) {  // back-edge: loop hotness
          const uint32_t p = frames_.back().proto;
          const uint8_t before = func_state_[p].tier;
          maybe_tier_up(p, stats_.cost_ps + cost);
          if (func_state_[p].tier != before) {
            costs = cost_tables_[1].data();
            ccnt = attr_.class_counts[1].data();
          }
        }
        pc = ins.a;
        continue;
      case JsOp::JumpIfFalse:
        if (!truthy(heap_, pop())) {
          pc = ins.a;
          continue;
        }
        break;
      case JsOp::JumpIfFalsePeek:
        if (!truthy(heap_, stack_.back())) {
          pc = ins.a;
          continue;
        }
        break;
      case JsOp::JumpIfTruePeek:
        if (truthy(heap_, stack_.back())) {
          pc = ins.a;
          continue;
        }
        break;

      case JsOp::Pop:
        stack_.pop_back();
        break;
      case JsOp::Dup:
        stack_.push_back(stack_.back());
        break;
      case JsOp::Dup2: {
        const JsValue b = stack_[stack_.size() - 1];
        const JsValue a = stack_[stack_.size() - 2];
        stack_.push_back(a);
        stack_.push_back(b);
        break;
      }

      case JsOp::Call: {
        const uint32_t argc = ins.a;
        const size_t callee_at = stack_.size() - argc - 1;
        const JsValue callee = stack_[callee_at];
        if (!callee.is_object()) {
          fail("callee is not a function");
          break;
        }
        const GcObject& fo = heap_.get(callee.ref());
        if (fo.kind == ObjKind::Function) {
          const uint32_t pidx = fo.fn_index();
          frames_.back().pc = pc + 1;
          std::span<const JsValue> call_args(stack_.data() + callee_at + 1, argc);
          // Copy args into locals before truncating the stack.
          if (!enter(pidx, call_args)) break;
          // Remove callee+args from the caller's stack (frame captured
          // stack_base before truncation — adjust).
          frames_.back().stack_base = static_cast<uint32_t>(callee_at);
          stack_.resize(callee_at);
          continue;
        }
        if (fo.kind == ObjKind::Builtin) {
          JsValue result;
          std::vector<JsValue> call_args(stack_.begin() + static_cast<long>(callee_at) + 1,
                                         stack_.end());
          if (!call_builtin(fo.fn_index(), JsValue::undefined(), call_args, result)) break;
          stack_.resize(callee_at);
          stack_.push_back(result);
          break;
        }
        fail("callee is not callable");
        break;
      }
      case JsOp::CallMethod: {
        const uint32_t argc = ins.b;
        const size_t recv_at = stack_.size() - argc - 1;
        const JsValue receiver = stack_[recv_at];
        if (!receiver.is_object()) {
          fail("method call on non-object (" + code_.names[ins.a] + ")");
          break;
        }
        const GcObject& ro = heap_.get(receiver.ref());
        std::vector<JsValue> call_args(stack_.begin() + static_cast<long>(recv_at) + 1,
                                       stack_.end());
        if (ro.kind == ObjKind::Object) {
          JsValue member;
          bool found = false;
          for (const Prop& p : ro.props()) {
            if (p.key == ins.a) {
              member = p.value;
              found = true;
              break;
            }
          }
          if (!found || !member.is_object()) {
            fail("no such method: " + code_.names[ins.a]);
            break;
          }
          const GcObject& fo = heap_.get(member.ref());
          if (fo.kind == ObjKind::Builtin) {
            // Math.* are JIT intrinsics: engines lower them to plain
            // instructions, so re-price the Call charge as arithmetic.
            if (fo.fn_index() <= kMathImul) {
              cost = cost - costs[static_cast<size_t>(JsOpClass::Call)] +
                     costs[static_cast<size_t>(JsOpClass::Arith)];
              --ccnt[static_cast<size_t>(JsOpClass::Call)];
              ++ccnt[static_cast<size_t>(JsOpClass::Arith)];
            }
            JsValue result;
            if (!call_builtin(fo.fn_index(), receiver, call_args, result)) break;
            stack_.resize(recv_at);
            stack_.push_back(result);
            heap_.maybe_collect();
            break;
          }
          if (fo.kind == ObjKind::Function) {
            frames_.back().pc = pc + 1;
            const uint32_t pidx = fo.fn_index();
            if (!enter(pidx, call_args)) break;
            frames_.back().stack_base = static_cast<uint32_t>(recv_at);
            stack_.resize(recv_at);
            continue;
          }
          fail("property is not callable: " + code_.names[ins.a]);
          break;
        }
        JsValue result;
        bool handled = false;
        if (!method_on_primitive(ro, receiver, call_args, ins.a, result, handled)) break;
        if (!handled) {
          fail("no such method: " + code_.names[ins.a]);
          break;
        }
        stack_.resize(recv_at);
        stack_.push_back(result);
        heap_.maybe_collect();
        break;
      }

      case JsOp::Return:
      case JsOp::ReturnUndef: {
        const JsValue result =
            ins.op == JsOp::Return ? pop() : JsValue::undefined();
        if (frames_.size() == 1 && sample_memory_at_exit_) {
          heap_.collect();  // snapshot live bytes while locals are rooted
        }
        const Frame f = frames_.back();
        if (tracer_) {
          tracer_->end(prof::Cat::JsFunc, proto_trace_names_[f.proto],
                       stats_.cost_ps + cost);
        }
        frames_.pop_back();
        locals_.resize(f.locals_base);
        stack_.resize(f.stack_base);
        if (frames_.empty()) {
          return_value = result;
          goto done;
        }
        stack_.push_back(result);
        cache_frame();
        continue;
      }

      case JsOp::NewArray: {
        std::vector<JsValue> elems(stack_.end() - ins.a, stack_.end());
        stack_.resize(stack_.size() - ins.a);
        stack_.push_back(JsValue::object(heap_.alloc_array(std::move(elems))));
        heap_.maybe_collect();
        break;
      }
      case JsOp::NewArrayN: {
        const double n = to_number(pop());
        std::vector<JsValue> elems(static_cast<size_t>(std::max(0.0, n)),
                                   JsValue::undefined());
        stack_.push_back(JsValue::object(heap_.alloc_array(std::move(elems))));
        heap_.maybe_collect();
        break;
      }
      case JsOp::NewObject:
        stack_.push_back(JsValue::object(heap_.alloc_object()));
        heap_.maybe_collect();
        break;

      case JsOp::GetProp: {
        const JsValue obj = stack_.back();
        if (!obj.is_object()) {
          fail("property access on non-object: ." + code_.names[ins.a]);
          break;
        }
        const GcObject& o = heap_.get(obj.ref());
        const std::string& name = code_.names[ins.a];
        if (name == "length") {
          double len = 0;
          switch (o.kind) {
            case ObjKind::Array: len = static_cast<double>(o.elems().size()); break;
            case ObjKind::String: len = static_cast<double>(o.str().size()); break;
            case ObjKind::Float64Array:
              len = static_cast<double>(std::get<std::vector<double>>(o.data).size());
              break;
            case ObjKind::Int32Array:
              len = static_cast<double>(std::get<std::vector<int32_t>>(o.data).size());
              break;
            case ObjKind::Uint8Array:
              len = static_cast<double>(std::get<std::vector<uint8_t>>(o.data).size());
              break;
            default: {
              // fall through to prop lookup on plain objects
              if (o.kind == ObjKind::Object) break;
              fail("no length on this value");
              break;
            }
          }
          if (o.kind != ObjKind::Object) {
            stack_.back() = JsValue::number(len);
            break;
          }
        }
        if (o.kind != ObjKind::Object) {
          fail("property access on non-plain object: ." + name);
          break;
        }
        JsValue value = JsValue::undefined();
        for (const Prop& p : o.props()) {
          if (p.key == ins.a) {
            value = p.value;
            break;
          }
        }
        stack_.back() = value;
        break;
      }
      case JsOp::SetProp: {
        const JsValue value = pop();
        const JsValue obj = pop();
        if (!obj.is_object() || heap_.get(obj.ref()).kind != ObjKind::Object) {
          fail("property store on non-object: ." + code_.names[ins.a]);
          break;
        }
        GcObject& oo = heap_.get(obj.ref());
        heap_.write_barrier(obj.ref());
        auto& props = oo.props();
        bool found = false;
        for (Prop& p : props) {
          if (p.key == ins.a) {
            p.value = value;
            found = true;
            break;
          }
        }
        if (!found) {
          props.push_back(Prop{ins.a, value});
          ++oo.shape;  // layout changed: invalidate cached property slots
        }
        stack_.push_back(value);
        break;
      }

      case JsOp::GetIndex: {
        const JsValue idx = pop();
        const JsValue obj = stack_.back();
        if (!obj.is_object() || !idx.is_number()) {
          fail("bad index expression");
          break;
        }
        const GcObject& o = heap_.get(obj.ref());
        if (o.kind == ObjKind::Array) {
          cost += costs[static_cast<size_t>(JsOpClass::BoxedIndex)];
          ++ccnt[static_cast<size_t>(JsOpClass::BoxedIndex)];
        }
        const int64_t i = static_cast<int64_t>(idx.num());
        switch (o.kind) {
          case ObjKind::Array: {
            const auto& elems = o.elems();
            stack_.back() = (i >= 0 && static_cast<size_t>(i) < elems.size())
                                ? elems[static_cast<size_t>(i)]
                                : JsValue::undefined();
            break;
          }
          case ObjKind::Float64Array: {
            const auto& xs = std::get<std::vector<double>>(o.data);
            stack_.back() = (i >= 0 && static_cast<size_t>(i) < xs.size())
                                ? JsValue::number(xs[static_cast<size_t>(i)])
                                : JsValue::undefined();
            break;
          }
          case ObjKind::Int32Array: {
            const auto& xs = std::get<std::vector<int32_t>>(o.data);
            stack_.back() = (i >= 0 && static_cast<size_t>(i) < xs.size())
                                ? JsValue::number(xs[static_cast<size_t>(i)])
                                : JsValue::undefined();
            break;
          }
          case ObjKind::Uint8Array: {
            const auto& xs = std::get<std::vector<uint8_t>>(o.data);
            stack_.back() = (i >= 0 && static_cast<size_t>(i) < xs.size())
                                ? JsValue::number(xs[static_cast<size_t>(i)])
                                : JsValue::undefined();
            break;
          }
          case ObjKind::String: {
            const std::string& s = o.str();
            std::string out;
            if (i >= 0 && static_cast<size_t>(i) < s.size()) {
              out = s.substr(static_cast<size_t>(i), 1);
            }
            stack_.back() = JsValue::object(make_string(std::move(out)));
            heap_.maybe_collect();
            break;
          }
          default:
            fail("value is not indexable");
            break;
        }
        break;
      }
      case JsOp::SetIndex: {
        const JsValue value = pop();
        const JsValue idx = pop();
        const JsValue obj = pop();
        if (!obj.is_object() || !idx.is_number()) {
          fail("bad index store");
          break;
        }
        GcObject& o = heap_.get(obj.ref());
        if (o.kind == ObjKind::Array) {
          cost += costs[static_cast<size_t>(JsOpClass::BoxedIndex)];
          ++ccnt[static_cast<size_t>(JsOpClass::BoxedIndex)];
        }
        const int64_t i = static_cast<int64_t>(idx.num());
        if (i < 0) {
          fail("negative index store");
          break;
        }
        switch (o.kind) {
          case ObjKind::Array: {
            heap_.write_barrier(obj.ref());
            auto& elems = o.elems();
            if (static_cast<size_t>(i) >= elems.size()) {
              elems.resize(static_cast<size_t>(i) + 1, JsValue::undefined());
            }
            elems[static_cast<size_t>(i)] = value;
            break;
          }
          case ObjKind::Float64Array: {
            auto& xs = o.f64();
            if (static_cast<size_t>(i) < xs.size()) {
              xs[static_cast<size_t>(i)] = value.is_number() ? value.num() : std::nan("");
            }
            break;
          }
          case ObjKind::Int32Array: {
            auto& xs = o.i32();
            if (static_cast<size_t>(i) < xs.size()) {
              xs[static_cast<size_t>(i)] = to_int32(value.is_number() ? value.num() : 0);
            }
            break;
          }
          case ObjKind::Uint8Array: {
            auto& xs = o.u8();
            if (static_cast<size_t>(i) < xs.size()) {
              xs[static_cast<size_t>(i)] =
                  static_cast<uint8_t>(to_int32(value.is_number() ? value.num() : 0));
            }
            break;
          }
          default:
            fail("value is not index-assignable");
            break;
        }
        stack_.push_back(value);
        break;
      }

      case JsOp::NewF64Array: {
        const double n = to_number(pop());
        stack_.push_back(
            JsValue::object(heap_.alloc_f64_array(static_cast<size_t>(std::max(0.0, n)))));
        heap_.maybe_collect();
        break;
      }
      case JsOp::NewI32Array: {
        const double n = to_number(pop());
        stack_.push_back(
            JsValue::object(heap_.alloc_i32_array(static_cast<size_t>(std::max(0.0, n)))));
        heap_.maybe_collect();
        break;
      }
      case JsOp::NewU8Array: {
        const double n = to_number(pop());
        stack_.push_back(
            JsValue::object(heap_.alloc_u8_array(static_cast<size_t>(std::max(0.0, n)))));
        heap_.maybe_collect();
        break;
      }
    }

    if (!ok_) break;
    ++pc;
  }

done:
  if (tracer_) {
    // Error exits leave frames open; close their spans so the trace
    // stays well-nested, then detach the GC hook (it captures locals).
    for (size_t i = frames_.size(); i-- > 0;) {
      tracer_->end(prof::Cat::JsFunc, proto_trace_names_[frames_[i].proto],
                   stats_.cost_ps + cost);
    }
    heap_.set_collect_hook(nullptr);
  }
  flush();
  if (!ok_) return {false, error_, {}};
  return {true, "", return_value};
}

// --- Quickened threaded execution -----------------------------------------
//
// Executes the pre-translated QJsCode stream (quicken.h). Dispatch is
// direct-threaded (computed goto) under GCC/Clang; WB_THREADED_DISPATCH=0
// selects the portable switch fallback. Every QJsInstr is charged from
// its constituent side table (cls/cat, nops) before its handler runs,
// exactly as the classic loop charges each JsInstr before executing it,
// so cost_ps, ops_executed, arith_counts, fuel accounting, tier-up
// timing, GC statistics, and tracer timestamps are bit-identical on
// every program.

#ifndef WB_THREADED_DISPATCH
#if defined(__GNUC__) || defined(__clang__)
#define WB_THREADED_DISPATCH 1
#else
#define WB_THREADED_DISPATCH 0
#endif
#endif

Vm::Result Vm::run_quickened(uint32_t proto_index, std::span<const JsValue> args) {
  ok_ = true;
  error_.clear();
  stack_.clear();
  locals_.clear();
  frames_.clear();

  uint64_t ops = 0;
  uint64_t cost = 0;
  constexpr uint8_t kCatNone = kQJsCatPad;

  // Arith-category accounting: each dispatch adds the QJsInstr's packed
  // per-lane counts (one byte lane per JsArithCat, lane None discarded)
  // into a single u64. Every add contributes exactly 4 across the lanes,
  // so after 63 adds no lane can exceed 252; the budget countdown unpacks
  // into the wide accumulators before any lane could saturate.
  uint64_t cat_acc = 0;
  uint32_t cat_budget = 63;

  // Cause attribution rides the same byte-lane trick: each dispatch adds
  // the QJsInstr's packed per-JsOpClass lane counts (classes 0-7 in the
  // lo word, 8-14 plus the discarded pad lane in the hi word), sharing
  // the 63-dispatch flush budget. Lanes flush into the *active tier's*
  // class counts, so set_costs drains them before switching tables.
  uint64_t cls_acc_lo = 0;
  uint64_t cls_acc_hi = 0;
  uint64_t* ccnt = attr_.class_counts[0].data();

  auto flush_cls = [&] {
    for (size_t i = 0; i < 8; ++i) ccnt[i] += (cls_acc_lo >> (8 * i)) & 0xff;
    for (size_t i = 8; i < kJsOpClassCount; ++i) {
      ccnt[i] += (cls_acc_hi >> (8 * (i - 8))) & 0xff;
    }
    cls_acc_lo = cls_acc_hi = 0;
  };

  // Cold-path adjustments for sites that re-price or refund one already
  // accumulated constituent (Math.* intrinsics, FSetIdxPop's failed-store
  // refund). They apply to the materialized counts, NOT the packed
  // accumulator: the 63-dispatch flush may fire between this dispatch's
  // accumulate and its handler, and subtracting from a drained byte lane
  // would borrow into the neighboring lanes. Adjusting ccnt directly is
  // exact either way — the dispatch's own pending +1 flushes into the
  // same slot of the same tier (set_costs drains before any switch), so
  // a transient wrap of the unobserved counter cancels out.
  auto cls_move = [&](JsOpClass from, JsOpClass to) {
    --ccnt[static_cast<size_t>(from)];
    ++ccnt[static_cast<size_t>(to)];
  };
  // Refund one constituent entirely (classic never executed it).
  auto cls_drop = [&](JsOpClass from) { --ccnt[static_cast<size_t>(from)]; };

  auto flush_cats = [&] {
    for (size_t i = 0; i < kJsArithCatCount; ++i) {
      stats_.arith_counts[i] += (cat_acc >> (8 * i)) & 0xff;
    }
    cat_acc = 0;
    cat_budget = 63;
    flush_cls();
  };
  auto flush_stats = [&] {
    flush_cats();
    stats_.ops_executed += ops;
    stats_.cost_ps += cost;
    ops = 0;
    cost = 0;
  };

  // Cached per-frame execution state. `lcosts` is the active tier's cost
  // table plus a zero-cost pad slot (kQJsClsPad), re-copied only when the
  // active table actually changes (frame switch onto a different tier, or
  // a tier-up on a loop back-edge).
  const QJsInstr* qcode = nullptr;
  const uint64_t* costs = nullptr;
  uint64_t lcosts[kJsOpClassCount + 1];
  lcosts[kJsOpClassCount] = 0;
  uint32_t qpc = 0;
  uint32_t locals_base = 0;
  const QJsInstr* q = nullptr;
  JsValue return_value = JsValue::undefined();
  JsValue ret_tmp = JsValue::undefined();

  auto set_costs = [&](size_t tier) {
    const uint64_t* table = cost_tables_[tier].data();
    if (table == costs) return;
    flush_cls();  // pending lanes were priced from the outgoing tier
    costs = table;
    ccnt = attr_.class_counts[tier].data();
    std::memcpy(lcosts, table, sizeof(uint64_t) * kJsOpClassCount);
  };

  auto cache_frame = [&] {
    const Frame& f = frames_.back();
    qcode = qfuncs_[f.proto].code.data();
    set_costs(func_state_[f.proto].tier);
    qpc = f.pc;
    locals_base = f.locals_base;
  };

  auto enter = [&](uint32_t pidx, std::span<const JsValue> call_args) -> bool {
    if (frames_.size() >= kMaxJsCallDepth) {
      fail("maximum call stack size exceeded");
      return false;
    }
    // Begin the span first so a tier-up compile pause on this entry lands
    // inside the entered function's self time (same order as the classic
    // loop's enter).
    if (tracer_) {
      tracer_->begin(prof::Cat::JsFunc, proto_trace_names_[pidx],
                     stats_.cost_ps + cost);
    }
    maybe_tier_up(pidx, stats_.cost_ps + cost);
    const FunctionProto& p = code_.protos[pidx];
    Frame f;
    f.proto = pidx;
    f.pc = 0;
    f.locals_base = static_cast<uint32_t>(locals_.size());
    f.stack_base = static_cast<uint32_t>(stack_.size());
    locals_.resize(f.locals_base + p.nlocals, JsValue::undefined());
    for (uint32_t i = 0; i < p.nparams && i < call_args.size(); ++i) {
      locals_[f.locals_base + i] = call_args[i];
    }
    frames_.push_back(f);
    cache_frame();
    return true;
  };

  if (!enter(proto_index, args)) {
    flush_stats();
    return {false, error_, {}};
  }

  if (tracer_) {
    heap_.set_collect_hook([this, &cost](const GcStats& gc) {
      tracer_->instant(prof::Cat::GcPhase, gc_trace_name_, stats_.cost_ps + cost,
                       gc.live_bytes);
    });
  }

  auto pop = [&]() -> JsValue {
    JsValue v = stack_.back();
    stack_.pop_back();
    return v;
  };
  auto to_number = [&](JsValue v) -> double {
    switch (v.tag()) {
      case JsValue::Tag::Number:
        return v.num();
      case JsValue::Tag::Bool:
        return v.boolean() ? 1 : 0;
      case JsValue::Tag::Null:
        return 0;
      case JsValue::Tag::Undefined:
        return std::nan("");
      case JsValue::Tag::Object: {
        const GcObject& o = heap_.get(v.ref());
        if (o.kind == ObjKind::String) return to_number_str(o.str());
        return std::nan("");
      }
    }
    return std::nan("");
  };
  auto is_string = [&](JsValue v) {
    return v.is_object() && heap_.get(v.ref()).kind == ObjKind::String;
  };
  auto eq_vals = [&](JsValue a, JsValue b, bool loose) -> bool {
    const bool a_str = is_string(a);
    const bool b_str = is_string(b);
    auto is_primitive = [&](JsValue v, bool v_str) {
      return v.is_number() || v.is_bool() || v_str;
    };
    if (a.is_number() && b.is_number()) return a.num() == b.num();
    if (a_str && b_str) return heap_.get(a.ref()).str() == heap_.get(b.ref()).str();
    if (a.is_object() && b.is_object()) return a.ref() == b.ref();
    if (a.tag() == b.tag()) {
      return a.is_bool() ? a.boolean() == b.boolean() : true;  // null/undefined
    }
    if (loose && ((a.is_null() && b.is_undefined()) ||
                  (a.is_undefined() && b.is_null()))) {
      return true;
    }
    if (loose && is_primitive(a, a_str) && is_primitive(b, b_str)) {
      return to_number(a) == to_number(b);
    }
    return false;
  };
  auto eval_cmp = [&](JsOp op, JsValue a, JsValue b) -> bool {
    switch (op) {
      case JsOp::Eq: return eq_vals(a, b, true);
      case JsOp::Ne: return !eq_vals(a, b, true);
      case JsOp::StrictEq: return eq_vals(a, b, false);
      case JsOp::StrictNe: return !eq_vals(a, b, false);
      case JsOp::Lt:
        if (is_string(a) && is_string(b)) return heap_.get(a.ref()).str() < heap_.get(b.ref()).str();
        return to_number(a) < to_number(b);
      case JsOp::Le:
        if (is_string(a) && is_string(b)) return heap_.get(a.ref()).str() <= heap_.get(b.ref()).str();
        return to_number(a) <= to_number(b);
      case JsOp::Gt:
        if (is_string(a) && is_string(b)) return heap_.get(a.ref()).str() > heap_.get(b.ref()).str();
        return to_number(a) > to_number(b);
      case JsOp::Ge:
        if (is_string(a) && is_string(b)) return heap_.get(a.ref()).str() >= heap_.get(b.ref()).str();
        return to_number(a) >= to_number(b);
      default:
        return false;
    }
  };

  // Inline-cache probes. A hit requires the same ref, the same allocation
  // serial (the free list can recycle refs across a collection), and the
  // same property-layout version. Only the live receiver object is ever
  // dereferenced, so a stale entry is always detected, never followed.
  auto cache_lookup = [](const PropCache& c, ObjRef ref, const GcObject& o) -> int64_t {
    for (uint8_t i = 0; i < c.n; ++i) {
      const PropCacheEntry& e = c.entries[i];
      if (e.ref == ref && e.serial == o.serial && e.shape == o.shape) return e.slot;
    }
    return -1;
  };
  auto cache_insert = [](PropCache& c, ObjRef ref, const GcObject& o, size_t slot) {
    const PropCacheEntry e{ref, o.serial, o.shape, static_cast<uint32_t>(slot)};
    if (c.n < c.entries.size()) {
      c.entries[c.n++] = e;
    } else {
      c.entries[c.victim] = e;  // poly overflow: deterministic round-robin
      c.victim = static_cast<uint8_t>((c.victim + 1) % c.entries.size());
    }
  };

  // Full GetIndex semantics shared by the single op and the fused forms.
  // `replace_top` mirrors the classic stack shape: the single op (and
  // FGetIdx) replace the receiver at stack top, FGetGetIdx pushes. The
  // result is placed on the stack before any collection so it is rooted,
  // exactly like the classic loop.
  auto do_get_index = [&](JsValue obj, JsValue idx, bool replace_top) {
    if (!obj.is_object() || !idx.is_number()) {
      fail("bad index expression");
      return;
    }
    const GcObject& o = heap_.get(obj.ref());
    if (o.kind == ObjKind::Array) {
      cost += lcosts[static_cast<size_t>(JsOpClass::BoxedIndex)];
      ++ccnt[static_cast<size_t>(JsOpClass::BoxedIndex)];
    }
    const int64_t i = static_cast<int64_t>(idx.num());
    JsValue out = JsValue::undefined();
    bool collect = false;
    switch (o.kind) {
      case ObjKind::Array: {
        const auto& elems = o.elems();
        if (i >= 0 && static_cast<size_t>(i) < elems.size()) out = elems[static_cast<size_t>(i)];
        break;
      }
      case ObjKind::Float64Array: {
        const auto& xs = std::get<std::vector<double>>(o.data);
        if (i >= 0 && static_cast<size_t>(i) < xs.size()) out = JsValue::number(xs[static_cast<size_t>(i)]);
        break;
      }
      case ObjKind::Int32Array: {
        const auto& xs = std::get<std::vector<int32_t>>(o.data);
        if (i >= 0 && static_cast<size_t>(i) < xs.size()) out = JsValue::number(xs[static_cast<size_t>(i)]);
        break;
      }
      case ObjKind::Uint8Array: {
        const auto& xs = std::get<std::vector<uint8_t>>(o.data);
        if (i >= 0 && static_cast<size_t>(i) < xs.size()) out = JsValue::number(xs[static_cast<size_t>(i)]);
        break;
      }
      case ObjKind::String: {
        const std::string& s = o.str();
        std::string sub;
        if (i >= 0 && static_cast<size_t>(i) < s.size()) {
          sub = s.substr(static_cast<size_t>(i), 1);
        }
        out = JsValue::object(make_string(std::move(sub)));
        collect = true;
        break;
      }
      default:
        fail("value is not indexable");
        return;
    }
    if (replace_top) {
      stack_.back() = out;
    } else {
      stack_.push_back(out);
    }
    if (collect) heap_.maybe_collect();
  };

  // Full SetIndex semantics (single op, FSetIdxPop, and the fuel-boundary
  // replay). `push_result` matches the classic stack shape; FSetIdxPop
  // skips the push its fused Pop would immediately undo.
  auto do_set_index = [&](bool push_result) {
    const JsValue value = pop();
    const JsValue idx = pop();
    const JsValue obj = pop();
    if (!obj.is_object() || !idx.is_number()) {
      fail("bad index store");
      return;
    }
    GcObject& o = heap_.get(obj.ref());
    if (o.kind == ObjKind::Array) {
      cost += lcosts[static_cast<size_t>(JsOpClass::BoxedIndex)];
      ++ccnt[static_cast<size_t>(JsOpClass::BoxedIndex)];
    }
    const int64_t i = static_cast<int64_t>(idx.num());
    if (i < 0) {
      fail("negative index store");
      return;
    }
    switch (o.kind) {
      case ObjKind::Array: {
        heap_.write_barrier(obj.ref());
        auto& elems = o.elems();
        if (static_cast<size_t>(i) >= elems.size()) {
          elems.resize(static_cast<size_t>(i) + 1, JsValue::undefined());
        }
        elems[static_cast<size_t>(i)] = value;
        break;
      }
      case ObjKind::Float64Array: {
        auto& xs = o.f64();
        if (static_cast<size_t>(i) < xs.size()) {
          xs[static_cast<size_t>(i)] = value.is_number() ? value.num() : std::nan("");
        }
        break;
      }
      case ObjKind::Int32Array: {
        auto& xs = o.i32();
        if (static_cast<size_t>(i) < xs.size()) {
          xs[static_cast<size_t>(i)] = to_int32(value.is_number() ? value.num() : 0);
        }
        break;
      }
      case ObjKind::Uint8Array: {
        auto& xs = o.u8();
        if (static_cast<size_t>(i) < xs.size()) {
          xs[static_cast<size_t>(i)] =
              static_cast<uint8_t>(to_int32(value.is_number() ? value.num() : 0));
        }
        break;
      }
      default:
        fail("value is not index-assignable");
        return;
    }
    if (push_result) stack_.push_back(value);
  };

#if WB_THREADED_DISPATCH
  static const void* kQJsLabels[] = {
#define WB_QJS_LBL(name) &&lbl_##name,
      WB_QJS_OP_LIST(WB_QJS_LBL)
#undef WB_QJS_LBL
  };
#define WB_CASE(name) lbl_##name:
#else
#define WB_CASE(name) case QJsOp::name:
#endif
#define WB_NEXT()  \
  do {             \
    ++qpc;         \
    goto dispatch; \
  } while (0)
#define WB_JUMP(target) \
  do {                  \
    qpc = (target);     \
    goto dispatch;      \
  } while (0)

dispatch:
  q = qcode + qpc;
  if (ops + q->nops > fuel_) goto fuel_out;
  ops += q->nops;
  // Branchless charge: unused slots carry the zero-cost pad class and the
  // discarded None category (see kQJsClsPad/kQJsCatPad in quicken.h).
  cost += lcosts[q->cls[0]] + lcosts[q->cls[1]] + lcosts[q->cls[2]] +
          lcosts[q->cls[3]];
  cat_acc += q->cat_packed;
  cls_acc_lo += q->cls_packed_lo;
  cls_acc_hi += q->cls_packed_hi;
  if (--cat_budget == 0) flush_cats();
#if WB_THREADED_DISPATCH
  goto* kQJsLabels[static_cast<size_t>(q->op)];
#else
  switch (q->op) {
#endif

  // ---- Returns ----
  WB_CASE(FuncReturn) {  // pc ran past the end: implicit `return undefined`
    ret_tmp = JsValue::undefined();
    goto do_return;
  }
  WB_CASE(ReturnUndef) {
    ret_tmp = JsValue::undefined();
    goto do_return;
  }
  WB_CASE(Return) {
    // Classic order: the result is popped (unrooted) before the exit
    // snapshot collection, so GC statistics match exactly.
    ret_tmp = pop();
    goto do_return;
  }
do_return: {
  if (frames_.size() == 1 && sample_memory_at_exit_) {
    heap_.collect();  // snapshot live bytes while locals are rooted
  }
  const Frame f = frames_.back();
  if (tracer_) {
    tracer_->end(prof::Cat::JsFunc, proto_trace_names_[f.proto],
                 stats_.cost_ps + cost);
  }
  frames_.pop_back();
  locals_.resize(f.locals_base);
  stack_.resize(f.stack_base);
  if (frames_.empty()) {
    return_value = ret_tmp;
    goto done;
  }
  stack_.push_back(ret_tmp);
  cache_frame();  // resumes at the caller's saved qpc
  goto dispatch;
}

  // ---- Constants / locals / globals ----
  WB_CASE(ConstNum) {
    stack_.push_back(JsValue::number(q->val));
    WB_NEXT();
  }
  WB_CASE(ConstStr) {
    stack_.push_back(JsValue::object(str_const_refs_[q->a]));
    WB_NEXT();
  }
  WB_CASE(Undef) {
    stack_.push_back(JsValue::undefined());
    WB_NEXT();
  }
  WB_CASE(Null) {
    stack_.push_back(JsValue::null());
    WB_NEXT();
  }
  WB_CASE(True) {
    stack_.push_back(JsValue::boolean_value(true));
    WB_NEXT();
  }
  WB_CASE(False) {
    stack_.push_back(JsValue::boolean_value(false));
    WB_NEXT();
  }
  WB_CASE(LoadLocal) {
    stack_.push_back(locals_[locals_base + q->a]);
    WB_NEXT();
  }
  WB_CASE(StoreLocal) {
    locals_[locals_base + q->a] = pop();
    WB_NEXT();
  }
  WB_CASE(LoadGlobal) {
    stack_.push_back(globals_[q->a]);
    WB_NEXT();
  }
  WB_CASE(StoreGlobal) {
    globals_[q->a] = pop();
    WB_NEXT();
  }

  // ---- Arithmetic ----
  WB_CASE(Add) {
    const JsValue b = pop();
    const JsValue a = stack_.back();
    if (a.is_number() && b.is_number()) {
      stack_.back() = JsValue::number(a.num() + b.num());
    } else if (is_string(a) || is_string(b)) {
      std::string s = to_display_string(a) + to_display_string(b);
      stack_.back() = JsValue::object(make_string(std::move(s)));
      heap_.maybe_collect();
    } else {
      stack_.back() = JsValue::number(to_number(a) + to_number(b));
    }
    WB_NEXT();
  }
#define WB_QJS_NUM_BIN(OP, EXPR)                \
  WB_CASE(OP) {                                 \
    const double b = to_number(pop());          \
    const double a = to_number(stack_.back());  \
    (void)a;                                    \
    (void)b;                                    \
    stack_.back() = JsValue::number(EXPR);      \
    WB_NEXT();                                  \
  }
  WB_QJS_NUM_BIN(Sub, a - b)
  WB_QJS_NUM_BIN(Mul, a * b)
  WB_QJS_NUM_BIN(Div, a / b)
  WB_QJS_NUM_BIN(Mod, std::fmod(a, b))
#undef WB_QJS_NUM_BIN
  WB_CASE(Neg) {
    stack_.back() = JsValue::number(-to_number(stack_.back()));
    WB_NEXT();
  }
  WB_CASE(ToNum) {
    stack_.back() = JsValue::number(to_number(stack_.back()));
    WB_NEXT();
  }
#define WB_QJS_BIT_BIN(OP, EXPR)                          \
  WB_CASE(OP) {                                           \
    const int32_t b = to_int32(to_number(pop()));         \
    const int32_t a = to_int32(to_number(stack_.back())); \
    const uint32_t ua = static_cast<uint32_t>(a);         \
    const uint32_t ub = static_cast<uint32_t>(b);         \
    (void)a;                                              \
    (void)b;                                              \
    (void)ua;                                             \
    (void)ub;                                             \
    stack_.back() = JsValue::number(EXPR);                \
    WB_NEXT();                                            \
  }
  WB_QJS_BIT_BIN(BitAnd, a & b)
  WB_QJS_BIT_BIN(BitOr, a | b)
  WB_QJS_BIT_BIN(BitXor, a ^ b)
  WB_QJS_BIT_BIN(Shl, a << (ub & 31))
  WB_QJS_BIT_BIN(ShrS, a >> (ub & 31))
  WB_QJS_BIT_BIN(ShrU, static_cast<double>(ua >> (ub & 31)))
#undef WB_QJS_BIT_BIN
  WB_CASE(BitNot) {
    stack_.back() = JsValue::number(~to_int32(to_number(stack_.back())));
    WB_NEXT();
  }

  // ---- Comparisons ----
  WB_CASE(Eq)
  WB_CASE(Ne)
  WB_CASE(StrictEq)
  WB_CASE(StrictNe) {
    const JsValue b = pop();
    const JsValue a = stack_.back();
    // Singles mirror JsOp one-to-one, offset by the FuncReturn slot.
    const JsOp op = static_cast<JsOp>(static_cast<uint16_t>(q->op) - 1);
    const bool loose = op == JsOp::Eq || op == JsOp::Ne;
    const bool eq = eq_vals(a, b, loose);
    const bool want_eq = op == JsOp::Eq || op == JsOp::StrictEq;
    stack_.back() = JsValue::boolean_value(want_eq ? eq : !eq);
    WB_NEXT();
  }
  WB_CASE(Lt)
  WB_CASE(Le)
  WB_CASE(Gt)
  WB_CASE(Ge) {
    const JsValue b = pop();
    const JsValue a = stack_.back();
    const JsOp op = static_cast<JsOp>(static_cast<uint16_t>(q->op) - 1);
    stack_.back() = JsValue::boolean_value(eval_cmp(op, a, b));
    WB_NEXT();
  }
  WB_CASE(Not) {
    stack_.back() = JsValue::boolean_value(!truthy(heap_, stack_.back()));
    WB_NEXT();
  }

  // ---- Branches ----
  WB_CASE(Jump) {
    if (q->flags & kQJsFlagBackEdge) {  // loop hotness
      const uint32_t p = frames_.back().proto;
      const uint8_t before = func_state_[p].tier;
      maybe_tier_up(p, stats_.cost_ps + cost);
      if (func_state_[p].tier != before) set_costs(1);
    }
    WB_JUMP(q->a);
  }
  WB_CASE(JumpIfFalse) {
    if (!truthy(heap_, pop())) WB_JUMP(q->a);
    WB_NEXT();
  }
  WB_CASE(JumpIfFalsePeek) {
    if (!truthy(heap_, stack_.back())) WB_JUMP(q->a);
    WB_NEXT();
  }
  WB_CASE(JumpIfTruePeek) {
    if (truthy(heap_, stack_.back())) WB_JUMP(q->a);
    WB_NEXT();
  }

  // ---- Stack ----
  WB_CASE(Pop) {
    stack_.pop_back();
    WB_NEXT();
  }
  WB_CASE(Dup) {
    stack_.push_back(stack_.back());
    WB_NEXT();
  }
  WB_CASE(Dup2) {
    const JsValue b = stack_[stack_.size() - 1];
    const JsValue a = stack_[stack_.size() - 2];
    stack_.push_back(a);
    stack_.push_back(b);
    WB_NEXT();
  }

  // ---- Calls ----
  WB_CASE(Call) {
    const uint32_t argc = q->a;
    const size_t callee_at = stack_.size() - argc - 1;
    const JsValue callee = stack_[callee_at];
    if (!callee.is_object()) {
      fail("callee is not a function");
      goto done;
    }
    const GcObject& fo = heap_.get(callee.ref());
    if (fo.kind == ObjKind::Function) {
      const uint32_t pidx = fo.fn_index();
      frames_.back().pc = qpc + 1;
      std::span<const JsValue> call_args(stack_.data() + callee_at + 1, argc);
      if (!enter(pidx, call_args)) goto done;
      frames_.back().stack_base = static_cast<uint32_t>(callee_at);
      stack_.resize(callee_at);
      goto dispatch;
    }
    if (fo.kind == ObjKind::Builtin) {
      JsValue result;
      std::vector<JsValue> call_args(stack_.begin() + static_cast<long>(callee_at) + 1,
                                     stack_.end());
      if (!call_builtin(fo.fn_index(), JsValue::undefined(), call_args, result)) goto done;
      stack_.resize(callee_at);
      stack_.push_back(result);
      WB_NEXT();
    }
    fail("callee is not callable");
    goto done;
  }
  WB_CASE(CallMethod) {
    const uint32_t argc = q->b;
    const size_t recv_at = stack_.size() - argc - 1;
    const JsValue receiver = stack_[recv_at];
    if (!receiver.is_object()) {
      fail("method call on non-object (" + code_.names[q->a] + ")");
      goto done;
    }
    const GcObject& ro = heap_.get(receiver.ref());
    std::vector<JsValue> call_args(stack_.begin() + static_cast<long>(recv_at) + 1,
                                   stack_.end());
    if (ro.kind == ObjKind::Object) {
      JsValue member;
      bool found = false;
      PropCache& cache = prop_caches_[q->c];
      const int64_t slot = cache_lookup(cache, receiver.ref(), ro);
      if (slot >= 0) {
        member = ro.props()[static_cast<size_t>(slot)].value;
        found = true;
      } else {
        const auto& props = ro.props();
        for (size_t i = 0; i < props.size(); ++i) {
          if (props[i].key == q->a) {
            member = props[i].value;
            found = true;
            cache_insert(cache, receiver.ref(), ro, i);
            break;
          }
        }
      }
      if (!found || !member.is_object()) {
        fail("no such method: " + code_.names[q->a]);
        goto done;
      }
      const GcObject& fo = heap_.get(member.ref());
      if (fo.kind == ObjKind::Builtin) {
        // Math.* are JIT intrinsics: engines lower them to plain
        // instructions, so re-price the Call charge as arithmetic.
        if (fo.fn_index() <= kMathImul) {
          cost = cost - lcosts[static_cast<size_t>(JsOpClass::Call)] +
                 lcosts[static_cast<size_t>(JsOpClass::Arith)];
          cls_move(JsOpClass::Call, JsOpClass::Arith);
        }
        JsValue result;
        if (!call_builtin(fo.fn_index(), receiver, call_args, result)) goto done;
        stack_.resize(recv_at);
        stack_.push_back(result);
        heap_.maybe_collect();
        WB_NEXT();
      }
      if (fo.kind == ObjKind::Function) {
        frames_.back().pc = qpc + 1;
        const uint32_t pidx = fo.fn_index();
        if (!enter(pidx, call_args)) goto done;
        frames_.back().stack_base = static_cast<uint32_t>(recv_at);
        stack_.resize(recv_at);
        goto dispatch;
      }
      fail("property is not callable: " + code_.names[q->a]);
      goto done;
    }
    JsValue result;
    bool handled = false;
    if (!method_on_primitive(ro, receiver, call_args, q->a, result, handled)) goto done;
    if (!handled) {
      fail("no such method: " + code_.names[q->a]);
      goto done;
    }
    stack_.resize(recv_at);
    stack_.push_back(result);
    heap_.maybe_collect();
    WB_NEXT();
  }

  // ---- Allocation ----
  WB_CASE(NewArray) {
    std::vector<JsValue> elems(stack_.end() - q->a, stack_.end());
    stack_.resize(stack_.size() - q->a);
    stack_.push_back(JsValue::object(heap_.alloc_array(std::move(elems))));
    heap_.maybe_collect();
    WB_NEXT();
  }
  WB_CASE(NewArrayN) {
    const double n = to_number(pop());
    std::vector<JsValue> elems(static_cast<size_t>(std::max(0.0, n)),
                               JsValue::undefined());
    stack_.push_back(JsValue::object(heap_.alloc_array(std::move(elems))));
    heap_.maybe_collect();
    WB_NEXT();
  }
  WB_CASE(NewObject) {
    stack_.push_back(JsValue::object(heap_.alloc_object()));
    heap_.maybe_collect();
    WB_NEXT();
  }
  WB_CASE(NewF64Array) {
    const double n = to_number(pop());
    stack_.push_back(
        JsValue::object(heap_.alloc_f64_array(static_cast<size_t>(std::max(0.0, n)))));
    heap_.maybe_collect();
    WB_NEXT();
  }
  WB_CASE(NewI32Array) {
    const double n = to_number(pop());
    stack_.push_back(
        JsValue::object(heap_.alloc_i32_array(static_cast<size_t>(std::max(0.0, n)))));
    heap_.maybe_collect();
    WB_NEXT();
  }
  WB_CASE(NewU8Array) {
    const double n = to_number(pop());
    stack_.push_back(
        JsValue::object(heap_.alloc_u8_array(static_cast<size_t>(std::max(0.0, n)))));
    heap_.maybe_collect();
    WB_NEXT();
  }

  // ---- Properties (inline-cached) ----
  WB_CASE(GetProp) {
    const JsValue obj = stack_.back();
    if (!obj.is_object()) {
      fail("property access on non-object: ." + code_.names[q->a]);
      goto done;
    }
    const GcObject& o = heap_.get(obj.ref());
    if ((q->flags & kQJsFlagLength) && o.kind != ObjKind::Object) {
      double len = 0;
      switch (o.kind) {
        case ObjKind::Array: len = static_cast<double>(o.elems().size()); break;
        case ObjKind::String: len = static_cast<double>(o.str().size()); break;
        case ObjKind::Float64Array:
          len = static_cast<double>(std::get<std::vector<double>>(o.data).size());
          break;
        case ObjKind::Int32Array:
          len = static_cast<double>(std::get<std::vector<int32_t>>(o.data).size());
          break;
        case ObjKind::Uint8Array:
          len = static_cast<double>(std::get<std::vector<uint8_t>>(o.data).size());
          break;
        default:
          fail("no length on this value");
          goto done;
      }
      stack_.back() = JsValue::number(len);
      WB_NEXT();
    }
    if (o.kind != ObjKind::Object) {
      fail("property access on non-plain object: ." + code_.names[q->a]);
      goto done;
    }
    JsValue value = JsValue::undefined();
    PropCache& cache = prop_caches_[q->b];
    const int64_t slot = cache_lookup(cache, obj.ref(), o);
    if (slot >= 0) {
      value = o.props()[static_cast<size_t>(slot)].value;
    } else {
      const auto& props = o.props();
      for (size_t i = 0; i < props.size(); ++i) {
        if (props[i].key == q->a) {
          value = props[i].value;
          cache_insert(cache, obj.ref(), o, i);
          break;
        }
      }
    }
    stack_.back() = value;
    WB_NEXT();
  }
  WB_CASE(SetProp) {
    const JsValue value = pop();
    const JsValue obj = pop();
    if (!obj.is_object() || heap_.get(obj.ref()).kind != ObjKind::Object) {
      fail("property store on non-object: ." + code_.names[q->a]);
      goto done;
    }
    GcObject& oo = heap_.get(obj.ref());
    heap_.write_barrier(obj.ref());
    PropCache& cache = prop_caches_[q->b];
    const int64_t slot = cache_lookup(cache, obj.ref(), oo);
    if (slot >= 0) {
      oo.props()[static_cast<size_t>(slot)].value = value;
    } else {
      auto& props = oo.props();
      bool found = false;
      for (size_t i = 0; i < props.size(); ++i) {
        if (props[i].key == q->a) {
          props[i].value = value;
          found = true;
          cache_insert(cache, obj.ref(), oo, i);
          break;
        }
      }
      if (!found) {
        props.push_back(Prop{q->a, value});
        ++oo.shape;  // layout changed: invalidate cached property slots
        cache_insert(cache, obj.ref(), oo, props.size() - 1);
      }
    }
    stack_.push_back(value);
    WB_NEXT();
  }

  // ---- Indexing ----
  WB_CASE(GetIndex) {
    const JsValue idx = pop();
    do_get_index(stack_.back(), idx, /*replace_top=*/true);
    if (!ok_) goto done;
    WB_NEXT();
  }
  WB_CASE(SetIndex) {
    do_set_index(/*push_result=*/true);
    if (!ok_) goto done;
    WB_NEXT();
  }

  // ---- Fused superinstructions ----
  WB_CASE(FConstSet) {
    locals_[locals_base + q->a] = JsValue::number(q->val);
    WB_NEXT();
  }
  WB_CASE(FSetPop) {
    locals_[locals_base + q->a] = pop();
    stack_.pop_back();
    WB_NEXT();
  }
  WB_CASE(FDupSetPop) {
    locals_[locals_base + q->a] = pop();
    WB_NEXT();
  }
  WB_CASE(FGetNumDup) {
    const JsValue v = JsValue::number(to_number(locals_[locals_base + q->a]));
    stack_.push_back(v);
    stack_.push_back(v);
    WB_NEXT();
  }
  WB_CASE(FGetIdx) {
    do_get_index(stack_.back(), locals_[locals_base + q->a], /*replace_top=*/true);
    if (!ok_) goto done;
    WB_NEXT();
  }
  WB_CASE(FGetGetIdx) {
    do_get_index(locals_[locals_base + q->a], locals_[locals_base + q->b],
                 /*replace_top=*/false);
    if (!ok_) goto done;
    WB_NEXT();
  }
  WB_CASE(FSetIdxPop) {
    do_set_index(/*push_result=*/false);
    if (!ok_) {
      // The classic loop never reaches (or charges) the fused Pop when
      // its SetIndex fails; refund the pre-charged Stack-class op.
      --ops;
      cost -= lcosts[static_cast<size_t>(JsOpClass::Stack)];
      cls_drop(JsOpClass::Stack);
      goto done;
    }
    WB_NEXT();
  }
  WB_CASE(FCmpJf) {
    const JsValue b = pop();
    const JsValue a = pop();
    if (!eval_cmp(static_cast<JsOp>(q->c), a, b)) WB_JUMP(q->a);
    WB_NEXT();
  }
  WB_CASE(FGetConstCmpJf) {
    if (!eval_cmp(static_cast<JsOp>(q->c), locals_[locals_base + q->a],
                  JsValue::number(q->val))) {
      WB_JUMP(q->d);
    }
    WB_NEXT();
  }
  WB_CASE(FGetGetCmpJf) {
    if (!eval_cmp(static_cast<JsOp>(q->c), locals_[locals_base + q->a],
                  locals_[locals_base + q->b])) {
      WB_JUMP(q->d);
    }
    WB_NEXT();
  }

  // Hand-written fused Add family: string concatenation can allocate and
  // collect, so the result must be rooted on the stack before the
  // collection — exactly where the classic loop leaves it — and only then
  // stored to its destination local.
  WB_CASE(FGetGet_Add)
  WB_CASE(FGetConst_Add) {
    const JsValue va = locals_[locals_base + q->a];
    const JsValue vb = q->op == QJsOp::FGetGet_Add ? locals_[locals_base + q->b]
                                                   : JsValue::number(q->val);
    if (va.is_number() && vb.is_number()) {
      stack_.push_back(JsValue::number(va.num() + vb.num()));
    } else if (is_string(va) || is_string(vb)) {
      std::string s = to_display_string(va) + to_display_string(vb);
      stack_.push_back(JsValue::object(make_string(std::move(s))));
      heap_.maybe_collect();
    } else {
      stack_.push_back(JsValue::number(to_number(va) + to_number(vb)));
    }
    WB_NEXT();
  }
  WB_CASE(FGetGetSet_Add)
  WB_CASE(FGetConstSet_Add) {
    const JsValue va = locals_[locals_base + q->a];
    const JsValue vb = q->op == QJsOp::FGetGetSet_Add ? locals_[locals_base + q->b]
                                                      : JsValue::number(q->val);
    if (va.is_number() && vb.is_number()) {
      locals_[locals_base + q->c] = JsValue::number(va.num() + vb.num());
    } else if (is_string(va) || is_string(vb)) {
      std::string s = to_display_string(va) + to_display_string(vb);
      stack_.push_back(JsValue::object(make_string(std::move(s))));
      heap_.maybe_collect();
      locals_[locals_base + q->c] = pop();
    } else {
      locals_[locals_base + q->c] = JsValue::number(to_number(va) + to_number(vb));
    }
    WB_NEXT();
  }

// Generic fused binop families (Add handled above). The expressions
// reproduce the classic handlers' full semantics — to_number coercion,
// string-aware comparisons — so fast and slow paths stay uniform.
#define WB_QJS_FUSE_EXPRS(X)                                                       \
  X(Sub, JsValue::number(to_number(va) - to_number(vb)))                           \
  X(Mul, JsValue::number(to_number(va) * to_number(vb)))                           \
  X(Div, JsValue::number(to_number(va) / to_number(vb)))                           \
  X(Mod, JsValue::number(std::fmod(to_number(va), to_number(vb))))                 \
  X(BitAnd, JsValue::number(to_int32(to_number(va)) & to_int32(to_number(vb))))    \
  X(BitOr, JsValue::number(to_int32(to_number(va)) | to_int32(to_number(vb))))     \
  X(BitXor, JsValue::number(to_int32(to_number(va)) ^ to_int32(to_number(vb))))    \
  X(Shl, JsValue::number(to_int32(to_number(va))                                   \
                         << (static_cast<uint32_t>(to_int32(to_number(vb))) & 31)))\
  X(ShrS, JsValue::number(to_int32(to_number(va)) >>                               \
                          (static_cast<uint32_t>(to_int32(to_number(vb))) & 31)))  \
  X(ShrU, JsValue::number(static_cast<double>(                                     \
             static_cast<uint32_t>(to_int32(to_number(va))) >>                     \
             (static_cast<uint32_t>(to_int32(to_number(vb))) & 31))))              \
  X(Lt, JsValue::boolean_value(eval_cmp(JsOp::Lt, va, vb)))                        \
  X(Le, JsValue::boolean_value(eval_cmp(JsOp::Le, va, vb)))                        \
  X(Gt, JsValue::boolean_value(eval_cmp(JsOp::Gt, va, vb)))                        \
  X(Ge, JsValue::boolean_value(eval_cmp(JsOp::Ge, va, vb)))

#define WB_QGG(name, expr)                          \
  WB_CASE(FGetGet_##name) {                         \
    const JsValue va = locals_[locals_base + q->a]; \
    const JsValue vb = locals_[locals_base + q->b]; \
    stack_.push_back(expr);                         \
    WB_NEXT();                                      \
  }
  WB_QJS_FUSE_EXPRS(WB_QGG)
#undef WB_QGG
#define WB_QGC(name, expr)                          \
  WB_CASE(FGetConst_##name) {                       \
    const JsValue va = locals_[locals_base + q->a]; \
    const JsValue vb = JsValue::number(q->val);     \
    stack_.push_back(expr);                         \
    WB_NEXT();                                      \
  }
  WB_QJS_FUSE_EXPRS(WB_QGC)
#undef WB_QGC
#define WB_QGGS(name, expr)                         \
  WB_CASE(FGetGetSet_##name) {                      \
    const JsValue va = locals_[locals_base + q->a]; \
    const JsValue vb = locals_[locals_base + q->b]; \
    locals_[locals_base + q->c] = expr;             \
    WB_NEXT();                                      \
  }
  WB_QJS_FUSE_EXPRS(WB_QGGS)
#undef WB_QGGS
#define WB_QGCS(name, expr)                         \
  WB_CASE(FGetConstSet_##name) {                    \
    const JsValue va = locals_[locals_base + q->a]; \
    const JsValue vb = JsValue::number(q->val);     \
    locals_[locals_base + q->c] = expr;             \
    WB_NEXT();                                      \
  }
  WB_QJS_FUSE_EXPRS(WB_QGCS)
#undef WB_QGCS
#define WB_QCB(name, expr)                      \
  WB_CASE(FConstBin_##name) {                   \
    const JsValue va = stack_.back();           \
    const JsValue vb = JsValue::number(q->val); \
    stack_.back() = expr;                       \
    WB_NEXT();                                  \
  }
  WB_QJS_FUSE_EXPRS(WB_QCB)
#undef WB_QCB

  // FConstBin_Add: the constant operand is a number, so concatenation
  // triggers only on a string left operand; it replaces the stack top
  // before collecting, like the classic Add.
  WB_CASE(FConstBin_Add) {
    const JsValue a = stack_.back();
    const JsValue b = JsValue::number(q->val);
    if (a.is_number()) {
      stack_.back() = JsValue::number(a.num() + b.num());
    } else if (is_string(a)) {
      std::string s = to_display_string(a) + to_display_string(b);
      stack_.back() = JsValue::object(make_string(std::move(s)));
      heap_.maybe_collect();
    } else {
      stack_.back() = JsValue::number(to_number(a) + to_number(b));
    }
    WB_NEXT();
  }

#if !WB_THREADED_DISPATCH
  default:
    fail("corrupt QJsCode");  // cannot happen
    goto done;
  }  // switch
#endif

fuel_out: {
  // The classic loop charges (and fully executes) each constituent op it
  // still has fuel for, then traps on the first op at the boundary.
  // Charge the same prefix here.
  uint32_t executed = 0;
  for (; executed < q->nops && ops < fuel_; ++executed) {
    ++ops;
    cost += lcosts[q->cls[executed]];
    ++ccnt[q->cls[executed]];
    const uint8_t ct = q->cat[executed];
    if (ct != kCatNone) ++stats_.arith_counts[ct];
  }
  // Most skipped constituents have no effects a trap result can observe
  // (loads and compares only read). Two exceptions, replayed exactly:
  // an indexed store ahead of its fused Pop runs in full (including its
  // own failure modes), and a fused Add ahead of its StoreLocal may
  // concatenate — allocating a string the classic loop left rooted on
  // the stack and collecting at the same allocation debt.
  if (q->op == QJsOp::FSetIdxPop && executed >= 1) {
    do_set_index(/*push_result=*/true);
    if (!ok_) goto done;
  } else if ((q->op == QJsOp::FGetGetSet_Add || q->op == QJsOp::FGetConstSet_Add) &&
             executed >= 3) {
    const JsValue va = locals_[locals_base + q->a];
    const JsValue vb = q->op == QJsOp::FGetGetSet_Add ? locals_[locals_base + q->b]
                                                      : JsValue::number(q->val);
    if (!(va.is_number() && vb.is_number()) && (is_string(va) || is_string(vb))) {
      std::string s = to_display_string(va) + to_display_string(vb);
      stack_.push_back(JsValue::object(make_string(std::move(s))));
      heap_.maybe_collect();
    }
  }
  fail("fuel exhausted");
  goto done;
}

done:
  if (tracer_) {
    // Error exits leave frames open; close their spans so the trace
    // stays well-nested, then detach the GC hook (it captures locals).
    for (size_t i = frames_.size(); i-- > 0;) {
      tracer_->end(prof::Cat::JsFunc, proto_trace_names_[frames_[i].proto],
                   stats_.cost_ps + cost);
    }
    heap_.set_collect_hook(nullptr);
  }
  flush_stats();
  if (!ok_) return {false, error_, {}};
  return {true, "", return_value};

#undef WB_CASE
#undef WB_NEXT
#undef WB_JUMP
}

}  // namespace wb::js
