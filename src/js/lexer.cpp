#include "js/lexer.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace wb::js {

bool is_keyword(std::string_view word) {
  static constexpr std::array<std::string_view, 16> kKeywords = {
      "var", "let", "const", "function", "if", "else", "for", "while",
      "do", "return", "break", "continue", "new", "true", "false", "null"};
  for (auto k : kKeywords) {
    if (k == word) return true;
  }
  return word == "undefined";
}

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool is_ident_char(char c) {
  return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

/// Multi-char punctuators, longest first so maximal munch works.
constexpr std::string_view kPuncts[] = {
    ">>>=", "===", "!==", ">>>", "<<=", ">>=", "**", "&&", "||", "==", "!=",
    "<=",  ">=",  "+=",  "-=",  "*=",  "/=",  "%=", "&=", "|=", "^=", "++",
    "--",  "<<",  ">>",  "+",   "-",   "*",   "/",  "%",  "&",  "|",  "^",
    "~",   "!",   "<",   ">",   "=",   "?",   ":",  ";",  ",",  ".",  "(",
    ")",   "[",   "]",   "{",   "}"};

}  // namespace

bool tokenize(std::string_view src, std::vector<Token>& out, std::string& error) {
  size_t i = 0;
  uint32_t line = 1;
  const size_t n = src.size();

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        error = "unterminated block comment at line " + std::to_string(line);
        return false;
      }
      i += 2;
      continue;
    }
    // Numbers (decimal, hex, floats with exponent).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const size_t start = i;
      double value = 0;
      if (c == '0' && i + 1 < n && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        i += 2;
        uint64_t hex = 0;
        while (i < n && std::isxdigit(static_cast<unsigned char>(src[i]))) {
          hex = hex * 16 + static_cast<uint64_t>(
              std::isdigit(static_cast<unsigned char>(src[i]))
                  ? src[i] - '0'
                  : std::tolower(static_cast<unsigned char>(src[i])) - 'a' + 10);
          ++i;
        }
        value = static_cast<double>(hex);
      } else {
        while (i < n && (std::isdigit(static_cast<unsigned char>(src[i])) ||
                         src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
                         ((src[i] == '+' || src[i] == '-') && i > start &&
                          (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
          ++i;
        }
        const std::string text(src.substr(start, i - start));
        value = std::strtod(text.c_str(), nullptr);
      }
      Token t;
      t.kind = TokKind::Number;
      t.text = src.substr(start, i - start);
      t.num = value;
      t.line = line;
      out.push_back(t);
      continue;
    }
    // Identifiers & keywords.
    if (is_ident_start(c)) {
      const size_t start = i;
      while (i < n && is_ident_char(src[i])) ++i;
      Token t;
      t.text = src.substr(start, i - start);
      t.kind = is_keyword(t.text) ? TokKind::Keyword : TokKind::Identifier;
      t.line = line;
      out.push_back(t);
      continue;
    }
    // Strings.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      const size_t start = i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (src[i] == quote) {
          closed = true;
          break;
        }
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
          switch (src[i]) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            case 'r': value += '\r'; break;
            case '\\': value += '\\'; break;
            case '\'': value += '\''; break;
            case '"': value += '"'; break;
            case '0': value += '\0'; break;
            default: value += src[i]; break;
          }
          ++i;
          continue;
        }
        if (src[i] == '\n') ++line;
        value += src[i];
        ++i;
      }
      if (!closed) {
        error = "unterminated string at line " + std::to_string(line);
        return false;
      }
      ++i;  // closing quote
      Token t;
      t.kind = TokKind::String;
      t.text = src.substr(start, i - 1 - start);  // raw, without quotes
      t.line = line;
      out.push_back(t);
      // Escaped strings need owned storage; stash the cooked value through
      // text only when no escape was present. Parser re-cooks via unescape.
      continue;
    }
    // Punctuation (maximal munch).
    bool matched = false;
    for (std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        Token t;
        t.kind = TokKind::Punct;
        t.text = src.substr(i, p.size());
        t.line = line;
        out.push_back(t);
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      error = std::string("unexpected character '") + c + "' at line " + std::to_string(line);
      return false;
    }
  }

  Token eof;
  eof.kind = TokKind::Eof;
  eof.line = line;
  out.push_back(eof);
  return true;
}

}  // namespace wb::js
