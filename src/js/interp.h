// The JS virtual machine: a bytecode interpreter with a two-tier execution
// model (dynamically-typed interpreter tier vs. optimized/JIT tier) and a
// mark–sweep GC heap. Like the Wasm VM, every executed op charges virtual
// time from per-tier cost tables supplied by the environment; the large
// baseline/optimized gap on arithmetic and indexing is what produces the
// paper's JS JIT speedups (Fig. 10).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "attr/cause.h"
#include "js/bytecode.h"
#include "js/heap.h"
#include "js/quicken.h"

namespace wb::prof {
class Tracer;
}
namespace wb::replay {
class BoundarySink;
class JsHostSource;
}

namespace wb::js {

using JsCostTable = std::array<uint64_t, kJsOpClassCount>;

/// Cause-attribution counters (always maintained; see attr/cause.h).
using JsAttrStats = attr::VmAttr<kJsOpClassCount>;

struct JsTierPolicy {
  bool jit_enabled = true;      ///< false models --no-opt (JIT-less) Chrome
  uint64_t tierup_threshold = 1000;
  uint64_t tierup_cost_per_instr = 600;  ///< optimizing-compile time at tier-up
};

struct JsExecStats {
  uint64_t ops_executed = 0;
  uint64_t cost_ps = 0;
  uint64_t tierups = 0;
  uint64_t host_calls = 0;
  std::array<uint64_t, kJsArithCatCount> arith_counts{};
};

class Vm {
 public:
  /// `code` must outlive the Vm. The heap is shared so the harness can
  /// inspect GC stats after the run.
  Vm(const ScriptCode& code, Heap& heap);
  ~Vm();
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  void set_cost_tables(const JsCostTable& baseline, const JsCostTable& optimized);
  void set_tier_policy(const JsTierPolicy& policy);
  void set_fuel(uint64_t max_ops) { fuel_ = max_ops; }
  /// Selects the quickened threaded engine (default: quicken_default()).
  /// Translation happens once, on first enable. The classic switch loop
  /// remains available as the bisection reference; both must produce
  /// bit-identical results and statistics.
  void set_quicken(bool enabled);
  [[nodiscard]] bool quicken_enabled() const { return quicken_enabled_; }
  /// When set (default), runs a collection just before the outermost
  /// frame returns, so Heap::stats().peak_live_bytes reflects what the
  /// program held while running (the DevTools-snapshot moment).
  void set_sample_memory_at_exit(bool sample) { sample_memory_at_exit_ = sample; }
  /// Selects the heap's collector mode. GcMode::Generational installs a
  /// pause hook that charges the modeled pause cost (base + per-byte *
  /// scanned live bytes) to Cause::GcPause; the default MarkSweep mode
  /// charges nothing and keeps every observable bit-identical to the
  /// pre-generational collector.
  void set_gc_mode(GcMode mode);
  /// Charges one-off virtual time (parse/compile at load, etc.), tagged
  /// with the attribution cause it should decompose to.
  void charge(uint64_t cost_ps, attr::Cause cause = attr::Cause::Startup) {
    stats_.cost_ps += cost_ps;
    attr_.add_direct(cause, cost_ps);
  }

  /// Attaches a profiler sink (nullptr detaches). Emits function spans,
  /// tier-up instants, and GC-pause instants (via the heap's collect
  /// hook); never charges virtual time.
  void set_tracer(prof::Tracer* tracer);

  /// Attaches a boundary recorder (nullptr detaches). Records every pure
  /// numeric builtin call (Math.*) with converted argument and result
  /// bits; never charges virtual time, so all reported metrics are
  /// bit-identical with or without a recorder (the wb::replay
  /// observable-neutrality contract).
  void set_recorder(replay::BoundarySink* recorder) { recorder_ = recorder; }

  /// Attaches a canned-response host (nullptr detaches). When set, pure
  /// numeric builtins are answered from the recorded trace instead of
  /// being computed — how a trace replays standalone. A lookup miss
  /// fails the run (the replay diverged from the recording).
  void set_replay_host(replay::JsHostSource* host) { replay_host_ = host; }

  struct Result {
    bool ok = true;
    std::string error;
    JsValue value;
  };

  /// Runs the top-level script body (binds declared functions first).
  Result run_top_level();
  /// Calls a global function by name.
  Result call_function(std::string_view name, std::span<const JsValue> args);

  /// Sets a global by name (no-op if the script never references it).
  void set_global(std::string_view name, JsValue value);
  [[nodiscard]] JsValue get_global(std::string_view name) const;

  [[nodiscard]] const JsExecStats& stats() const { return stats_; }
  /// What was charged, keyed by (tier, JsOpClass) + direct causes;
  /// together with cost_tables() this reproduces stats().cost_ps exactly.
  [[nodiscard]] const JsAttrStats& attr_stats() const { return attr_; }
  [[nodiscard]] const std::array<JsCostTable, 2>& cost_tables() const {
    return cost_tables_;
  }
  [[nodiscard]] Heap& heap() { return heap_; }
  [[nodiscard]] const ScriptCode& code() const { return code_; }

  /// A deep copy of everything that survives between invokes: the VM-side
  /// half of a `.wbsnap` snapshot (wb::snap owns the byte format).
  /// Captured between invokes, when the value stack, locals, and frames
  /// are empty.
  struct SnapshotState {
    struct FuncSnap {
      uint8_t tier = 0;
      uint64_t hotness = 0;
    };
    std::vector<uint64_t> globals_bits;   ///< NaN-boxed raw bits
    std::vector<ObjRef> str_const_refs;
    std::vector<FuncSnap> funcs;
    /// Inline-cache pool (quickened engine). ICs never charge anything,
    /// but carrying them keeps snapshot->resume->snapshot byte-identical.
    std::vector<PropCache> prop_caches;
    JsExecStats stats;
    JsAttrStats attr;
    Heap::Image heap;
  };
  [[nodiscard]] SnapshotState capture_snapshot() const;
  /// Restores state captured from a Vm over the same ScriptCode. Call
  /// AFTER configuration. `with_stats` restores the virtual clock and
  /// attribution too (exact resume); without it the clock stays at zero
  /// for a modeled warm start. Returns false on shape mismatch.
  bool restore_snapshot(const SnapshotState& s, bool with_stats);

  /// Helpers for host/builtin code.
  ObjRef make_string(std::string s);
  [[nodiscard]] std::string to_display_string(JsValue v) const;

 private:
  struct Frame {
    uint32_t proto;
    uint32_t pc;
    uint32_t locals_base;
    uint32_t stack_base;
  };
  struct FuncState {
    uint8_t tier = 0;
    uint64_t hotness = 0;
  };

  Result run(uint32_t proto_index, std::span<const JsValue> args);
  Result run_classic(uint32_t proto_index, std::span<const JsValue> args);
  Result run_quickened(uint32_t proto_index, std::span<const JsValue> args);
  /// `now_ps` is the current virtual time (stats_.cost_ps plus the run
  /// loop's unflushed cost), used to timestamp the tier-up trace event.
  void maybe_tier_up(uint32_t proto_index, uint64_t now_ps);
  bool call_builtin(uint32_t builtin_id, JsValue receiver,
                    std::span<const JsValue> args, JsValue& result);
  bool call_builtin_impl(uint32_t builtin_id, JsValue receiver,
                         std::span<const JsValue> args, JsValue& result);
  /// The numeric coercion pure builtins apply to each argument.
  [[nodiscard]] double arg_number(JsValue v) const;
  bool method_on_primitive(const GcObject& recv_obj, JsValue receiver,
                           std::span<const JsValue> args, uint32_t name_id,
                           JsValue& result, bool& handled);
  void install_builtins();
  int32_t find_name(std::string_view name) const;
  void fail(std::string message);

  const ScriptCode& code_;
  Heap& heap_;
  std::vector<JsValue> globals_;
  std::vector<ObjRef> str_const_refs_;
  std::array<JsCostTable, 2> cost_tables_;
  JsTierPolicy tier_policy_;
  std::vector<FuncState> func_state_;
  JsExecStats stats_;
  JsAttrStats attr_;
  uint64_t fuel_ = UINT64_MAX;

  // Live interpreter state (rooted during GC).
  std::vector<JsValue> stack_;
  std::vector<JsValue> locals_;
  std::vector<Frame> frames_;

  bool ok_ = true;
  std::string error_;
  bool sample_memory_at_exit_ = true;

  // Quickened engine state: one translated body per proto and the flat
  // inline-cache pool its property-access sites index into.
  bool quicken_enabled_ = false;
  std::vector<QJsFunc> qfuncs_;
  std::vector<PropCache> prop_caches_;

  prof::Tracer* tracer_ = nullptr;
  std::vector<uint32_t> proto_trace_names_;  // per function proto
  uint32_t gc_trace_name_ = 0;

  replay::BoundarySink* recorder_ = nullptr;
  replay::JsHostSource* replay_host_ = nullptr;
};

}  // namespace wb::js
