#include "js/engine.h"

#include "js/compiler.h"
#include "js/parser.h"

namespace wb::js {

std::optional<ScriptCode> compile_script(std::string_view source, std::string& error) {
  auto program = parse(source, error);
  if (!program) return std::nullopt;
  auto code = compile(*program, error);
  if (!code) return std::nullopt;
  code->source_bytes = source.size();
  return code;
}

}  // namespace wb::js
