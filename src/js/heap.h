// The JS engine's garbage-collected heap: a mark–sweep collector over a
// flat object table. The harness reads `peak_live_bytes()` as the JS
// memory-usage metric — mirroring browser DevTools, typed-array *backing
// stores* are accounted separately as "external" bytes (V8 likewise keeps
// ArrayBuffer payloads outside the JS heap snapshot), which is what makes
// compiler-generated (typed-array-based) JS look flat in the paper while
// hand-written (boxed arrays-of-arrays) JS does not.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "js/value.h"

namespace wb::js {

enum class ObjKind : uint8_t {
  String,
  Array,        // boxed JS array of JsValue
  Object,       // property map
  Function,     // user function (proto index)
  Builtin,      // native function (builtin id)
  Float64Array,
  Int32Array,
  Uint8Array,
};

/// A property map entry; keys are interned-string ids.
struct Prop {
  uint32_t key;
  JsValue value;
};

struct GcObject {
  ObjKind kind = ObjKind::String;
  bool mark = false;
  bool pinned = false;  ///< never collected (string constants, builtins)
  /// Allocation serial number, unique per Heap for the lifetime of the
  /// run. Inline caches key on (ref, serial): when a swept slot is reused
  /// by the free list, the new occupant gets a fresh serial, so stale
  /// cache entries can never alias a recycled ObjRef.
  uint32_t serial = 0;
  /// Property-layout version; bumped whenever a new property is appended.
  /// A cached slot is valid only while the shape it was recorded under is
  /// still current.
  uint32_t shape = 0;
  std::variant<std::string,            // String
               std::vector<JsValue>,   // Array
               std::vector<Prop>,      // Object
               uint32_t,               // Function proto index / Builtin id
               std::vector<double>,    // Float64Array
               std::vector<int32_t>,   // Int32Array
               std::vector<uint8_t>>   // Uint8Array
      data;

  [[nodiscard]] std::string& str() { return std::get<std::string>(data); }
  [[nodiscard]] const std::string& str() const { return std::get<std::string>(data); }
  [[nodiscard]] std::vector<JsValue>& elems() { return std::get<std::vector<JsValue>>(data); }
  [[nodiscard]] const std::vector<JsValue>& elems() const {
    return std::get<std::vector<JsValue>>(data);
  }
  [[nodiscard]] std::vector<Prop>& props() { return std::get<std::vector<Prop>>(data); }
  [[nodiscard]] const std::vector<Prop>& props() const {
    return std::get<std::vector<Prop>>(data);
  }
  [[nodiscard]] uint32_t fn_index() const { return std::get<uint32_t>(data); }
  [[nodiscard]] std::vector<double>& f64() { return std::get<std::vector<double>>(data); }
  [[nodiscard]] std::vector<int32_t>& i32() { return std::get<std::vector<int32_t>>(data); }
  [[nodiscard]] std::vector<uint8_t>& u8() { return std::get<std::vector<uint8_t>>(data); }
};

struct GcStats {
  uint64_t collections = 0;
  uint64_t objects_allocated = 0;
  uint64_t objects_freed = 0;
  size_t live_bytes = 0;        ///< GC-heap bytes after the last collection
  size_t peak_live_bytes = 0;   ///< maximum of live_bytes over all collections
  size_t external_bytes = 0;    ///< current typed-array backing-store bytes
  size_t peak_external_bytes = 0;
};

/// Mark–sweep heap. The interpreter provides roots through the callback
/// registered with `set_root_scanner` (called at the start of each
/// collection); constants and builtins are pinned instead.
class Heap {
 public:
  /// GC is triggered when un-collected allocation exceeds this many bytes.
  explicit Heap(size_t gc_threshold_bytes = 4 << 20)
      : gc_threshold_(gc_threshold_bytes) {}

  ObjRef alloc_string(std::string s);
  ObjRef alloc_array(std::vector<JsValue> elems = {});
  ObjRef alloc_object();
  ObjRef alloc_function(uint32_t proto_index);
  ObjRef alloc_builtin(uint32_t builtin_id);
  ObjRef alloc_f64_array(size_t n);
  ObjRef alloc_i32_array(size_t n);
  ObjRef alloc_u8_array(size_t n);

  GcObject& get(ObjRef ref) { return *objects_[ref]; }
  const GcObject& get(ObjRef ref) const { return *objects_[ref]; }

  void pin(ObjRef ref) { objects_[ref]->pinned = true; }

  /// The interpreter's live references (value stack, locals, globals).
  using RootScanner = std::function<void(const std::function<void(JsValue)>& visit)>;
  void set_root_scanner(RootScanner scanner) { root_scanner_ = std::move(scanner); }

  /// Observer called at the end of every collection (after stats are
  /// updated). The VM uses this to emit GC-pause trace events with its
  /// current virtual-clock reading; null (the default) costs nothing.
  using CollectHook = std::function<void(const GcStats&)>;
  void set_collect_hook(CollectHook hook) { collect_hook_ = std::move(hook); }

  /// Runs mark–sweep now. Called automatically when the threshold trips.
  void collect();
  /// Collects if the allocation debt exceeds the threshold.
  void maybe_collect();

  /// Adjusts external (typed-array backing) byte accounting.
  void note_external(ptrdiff_t delta);

  [[nodiscard]] const GcStats& stats() const { return stats_; }
  [[nodiscard]] size_t num_objects() const { return objects_.size() - free_.size(); }

  /// Byte-size estimate of one object (header + payload), used for the
  /// memory metric.
  [[nodiscard]] static size_t object_bytes(const GcObject& o);

 private:
  ObjRef alloc(GcObject obj);
  void mark_value(JsValue v);

  std::vector<std::unique_ptr<GcObject>> objects_;
  std::vector<ObjRef> free_;
  RootScanner root_scanner_;
  CollectHook collect_hook_;
  size_t gc_threshold_;
  size_t allocated_since_gc_ = 0;
  uint32_t next_serial_ = 0;
  GcStats stats_;
  std::vector<ObjRef> mark_stack_;
};

}  // namespace wb::js
