// The JS engine's garbage-collected heap: a mark–sweep collector over a
// flat object table. The harness reads `peak_live_bytes()` as the JS
// memory-usage metric — mirroring browser DevTools, typed-array *backing
// stores* are accounted separately as "external" bytes (V8 likewise keeps
// ArrayBuffer payloads outside the JS heap snapshot), which is what makes
// compiler-generated (typed-array-based) JS look flat in the paper while
// hand-written (boxed arrays-of-arrays) JS does not.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "js/value.h"

namespace wb::js {

enum class ObjKind : uint8_t {
  String,
  Array,        // boxed JS array of JsValue
  Object,       // property map
  Function,     // user function (proto index)
  Builtin,      // native function (builtin id)
  Float64Array,
  Int32Array,
  Uint8Array,
};

/// A property map entry; keys are interned-string ids.
struct Prop {
  uint32_t key;
  JsValue value;
};

struct GcObject {
  ObjKind kind = ObjKind::String;
  bool mark = false;
  bool pinned = false;  ///< never collected (string constants, builtins)
  /// Generation flags (only meaningful under GcMode::Generational): every
  /// object is born young; a minor collection promotes all survivors.
  bool young = true;
  /// Old object recorded in the remembered set (it may hold young refs).
  bool remembered = false;
  /// Allocation serial number, unique per Heap for the lifetime of the
  /// run. Inline caches key on (ref, serial): when a swept slot is reused
  /// by the free list, the new occupant gets a fresh serial, so stale
  /// cache entries can never alias a recycled ObjRef.
  uint32_t serial = 0;
  /// Property-layout version; bumped whenever a new property is appended.
  /// A cached slot is valid only while the shape it was recorded under is
  /// still current.
  uint32_t shape = 0;
  std::variant<std::string,            // String
               std::vector<JsValue>,   // Array
               std::vector<Prop>,      // Object
               uint32_t,               // Function proto index / Builtin id
               std::vector<double>,    // Float64Array
               std::vector<int32_t>,   // Int32Array
               std::vector<uint8_t>>   // Uint8Array
      data;

  [[nodiscard]] std::string& str() { return std::get<std::string>(data); }
  [[nodiscard]] const std::string& str() const { return std::get<std::string>(data); }
  [[nodiscard]] std::vector<JsValue>& elems() { return std::get<std::vector<JsValue>>(data); }
  [[nodiscard]] const std::vector<JsValue>& elems() const {
    return std::get<std::vector<JsValue>>(data);
  }
  [[nodiscard]] std::vector<Prop>& props() { return std::get<std::vector<Prop>>(data); }
  [[nodiscard]] const std::vector<Prop>& props() const {
    return std::get<std::vector<Prop>>(data);
  }
  [[nodiscard]] uint32_t fn_index() const { return std::get<uint32_t>(data); }
  [[nodiscard]] std::vector<double>& f64() { return std::get<std::vector<double>>(data); }
  [[nodiscard]] std::vector<int32_t>& i32() { return std::get<std::vector<int32_t>>(data); }
  [[nodiscard]] std::vector<uint8_t>& u8() { return std::get<std::vector<uint8_t>>(data); }
};

struct GcStats {
  uint64_t collections = 0;
  uint64_t objects_allocated = 0;
  uint64_t objects_freed = 0;
  size_t live_bytes = 0;        ///< GC-heap bytes after the last collection
  size_t peak_live_bytes = 0;   ///< maximum of live_bytes over all collections
  size_t external_bytes = 0;    ///< current typed-array backing-store bytes
  size_t peak_external_bytes = 0;
};

/// Collector mode. MarkSweep (the default) is the original exact
/// stop-the-world collector; Generational adds a nursery + remembered-set
/// minor-collection tier whose pause cost scales with live nursery data.
/// The default mode keeps every GC-stat observable bit-identical to the
/// pre-generational collector (the compatibility contract).
enum class GcMode : uint8_t { MarkSweep = 0, Generational = 1 };

/// Modeled GC pause costs (virtual picoseconds), charged by the Vm's
/// pause hook in Generational mode only: base + per-byte * scanned live
/// bytes (surviving nursery bytes for a minor pause, full live bytes for
/// a major pause).
inline constexpr uint64_t kMinorGcBasePs = 20'000'000;    // 20 us
inline constexpr uint64_t kMajorGcBasePs = 200'000'000;   // 200 us
inline constexpr uint64_t kGcPausePerBytePs = 100;        // 0.1 ns/byte

/// Mark–sweep heap. The interpreter provides roots through the callback
/// registered with `set_root_scanner` (called at the start of each
/// collection); constants and builtins are pinned instead.
class Heap {
 public:
  /// GC is triggered when un-collected allocation exceeds this many bytes.
  explicit Heap(size_t gc_threshold_bytes = 4 << 20)
      : gc_threshold_(gc_threshold_bytes) {}

  ObjRef alloc_string(std::string s);
  ObjRef alloc_array(std::vector<JsValue> elems = {});
  ObjRef alloc_object();
  ObjRef alloc_function(uint32_t proto_index);
  ObjRef alloc_builtin(uint32_t builtin_id);
  ObjRef alloc_f64_array(size_t n);
  ObjRef alloc_i32_array(size_t n);
  ObjRef alloc_u8_array(size_t n);

  GcObject& get(ObjRef ref) { return *objects_[ref]; }
  const GcObject& get(ObjRef ref) const { return *objects_[ref]; }

  void pin(ObjRef ref) { objects_[ref]->pinned = true; }

  /// The interpreter's live references (value stack, locals, globals).
  using RootScanner = std::function<void(const std::function<void(JsValue)>& visit)>;
  void set_root_scanner(RootScanner scanner) { root_scanner_ = std::move(scanner); }

  /// Observer called at the end of every collection (after stats are
  /// updated). The VM uses this to emit GC-pause trace events with its
  /// current virtual-clock reading; null (the default) costs nothing.
  using CollectHook = std::function<void(const GcStats&)>;
  void set_collect_hook(CollectHook hook) { collect_hook_ = std::move(hook); }

  /// Observer called after every minor or major pause in Generational
  /// mode with the bytes the pause scanned; the Vm charges the modeled
  /// pause cost from it. Never called in MarkSweep mode.
  using PauseHook = std::function<void(bool major, size_t scanned_bytes)>;
  void set_pause_hook(PauseHook hook) { pause_hook_ = std::move(hook); }

  /// Switches collector modes. Entering Generational treats every live
  /// object as already promoted (the nursery starts empty).
  void set_gc_mode(GcMode mode);
  [[nodiscard]] GcMode gc_mode() const { return mode_; }

  /// Generational write barrier: call before storing a reference into
  /// `parent`'s elements or properties. No-op in MarkSweep mode and for
  /// young parents; an old parent is added to the remembered set once.
  void write_barrier(ObjRef parent) {
    if (mode_ != GcMode::Generational) return;
    GcObject& p = *objects_[parent];
    if (p.young || p.remembered) return;
    p.remembered = true;
    remset_.push_back(parent);
  }

  /// Runs a full mark–sweep now (the major collection in Generational
  /// mode). Called automatically when the threshold trips in MarkSweep
  /// mode; harnesses call it for the end-of-run memory sample.
  void collect();
  /// Collects if the allocation debt exceeds the threshold: a full
  /// mark–sweep in MarkSweep mode; in Generational mode a minor (nursery)
  /// collection, escalated to a major one when promoted bytes have grown
  /// past 4x the threshold since the last full collection.
  void maybe_collect();
  /// Collection counts by kind (minor is always 0 in MarkSweep mode).
  [[nodiscard]] uint64_t minor_collections() const { return minor_collections_; }

  /// A deep copy of the heap: the JS-side half of a `.wbsnap` snapshot
  /// (wb::snap owns the byte format). Slot indices, free-list order, and
  /// serials are all preserved so a resumed run allocates identically.
  struct Image {
    std::vector<std::optional<GcObject>> objects;  ///< index == ObjRef
    std::vector<ObjRef> free_list;                 ///< exact LIFO order
    std::vector<ObjRef> nursery;                   ///< young refs, alloc order
    std::vector<ObjRef> remset;                    ///< remembered old refs
    uint32_t next_serial = 0;
    uint64_t allocated_since_gc = 0;
    uint64_t old_bytes = 0;
    uint64_t major_baseline_bytes = 0;
    uint64_t minor_collections = 0;
    GcStats stats;
  };
  [[nodiscard]] Image capture_image() const;
  /// Restores a captured image. `with_stats` carries the GC counters and
  /// peaks over verbatim (exact resume); without it they restart at zero
  /// with external bytes recomputed from the restored typed arrays (a
  /// modeled warm start). Returns false if the image is malformed.
  bool restore_image(const Image& image, bool with_stats);

  /// Adjusts external (typed-array backing) byte accounting.
  void note_external(ptrdiff_t delta);

  [[nodiscard]] const GcStats& stats() const { return stats_; }
  [[nodiscard]] size_t num_objects() const { return objects_.size() - free_.size(); }

  /// Byte-size estimate of one object (header + payload), used for the
  /// memory metric.
  [[nodiscard]] static size_t object_bytes(const GcObject& o);

 private:
  ObjRef alloc(GcObject obj);
  void mark_value(JsValue v);
  void mark_value_young(JsValue v);
  void free_slot(ObjRef r);
  void collect_minor();

  std::vector<std::unique_ptr<GcObject>> objects_;
  std::vector<ObjRef> free_;
  RootScanner root_scanner_;
  CollectHook collect_hook_;
  PauseHook pause_hook_;
  GcMode mode_ = GcMode::MarkSweep;
  std::vector<ObjRef> nursery_;  ///< young objects, allocation order
  std::vector<ObjRef> remset_;   ///< old objects that may hold young refs
  uint64_t old_bytes_ = 0;       ///< promoted bytes (recomputed at major GC)
  /// old_bytes_ as of the last major collection; minor collections
  /// escalate to a major once promotion has grown 4x the threshold past
  /// this baseline.
  uint64_t major_baseline_ = 0;
  uint64_t minor_collections_ = 0;
  size_t gc_threshold_;
  size_t allocated_since_gc_ = 0;
  uint32_t next_serial_ = 0;
  GcStats stats_;
  std::vector<ObjRef> mark_stack_;
};

}  // namespace wb::js
