// Bytecode for the JS engine. The source program is parsed and compiled to
// this form when a script "loads" (browsers parse + compile JS at runtime
// — the paper's Sec 2.2.1), then interpreted under the two-tier model.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace wb::js {

enum class JsOp : uint8_t {
  ConstNum,   // a = index into proto num_consts
  ConstStr,   // a = index into program str_consts
  Undef,
  Null,
  True,
  False,
  LoadLocal,   // a = slot
  StoreLocal,  // a = slot (pops)
  LoadGlobal,  // a = global id
  StoreGlobal, // a = global id (pops)
  Add,         // number add or string concat
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  ToNum,       // unary +
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  ShrS,
  ShrU,
  BitNot,
  Eq,
  Ne,
  StrictEq,
  StrictNe,
  Lt,
  Le,
  Gt,
  Ge,
  Not,
  Jump,            // a = target pc
  JumpIfFalse,     // pops condition
  JumpIfFalsePeek, // no pop (for &&)
  JumpIfTruePeek,  // no pop (for ||)
  Pop,
  Dup,
  Dup2,            // duplicates top two values
  Call,        // a = argc; stack: callee, args...
  CallMethod,  // a = interned name id, b = argc; stack: receiver, args...
  Return,      // pops result
  ReturnUndef,
  NewArray,     // a = element count popped from stack
  NewArrayN,    // length on stack (new Array(n))
  NewObject,    // empty object
  GetProp,      // a = interned name id
  SetProp,      // a = name id; stack [obj, value] -> value
  GetIndex,     // stack [obj, index] -> value
  SetIndex,     // stack [obj, index, value] -> value
  NewF64Array,  // length on stack
  NewI32Array,
  NewU8Array,
};

/// Cost classes for the environment's JS cost model. The gulf between the
/// baseline (interpreter) and optimizing (JIT) tier costs of Arith /
/// Compare / Index is where the paper's JS JIT speedups come from.
enum class JsOpClass : uint8_t {
  Const,
  Local,
  Global,
  Arith,
  BitOp,
  Compare,
  Branch,
  Stack,
  Call,
  Return,
  Prop,
  Index,
  Alloc,
  /// Surcharge added on top of Index when the receiver is a boxed Array
  /// (tagged elements, hole checks) rather than a typed array.
  BoxedIndex,
  Misc,
  kCount,
};

inline constexpr size_t kJsOpClassCount = static_cast<size_t>(JsOpClass::kCount);

JsOpClass js_op_class(JsOp op);

/// Arithmetic categories counted for the paper's Table 12 (shared shape
/// with wasm::ArithCat).
enum class JsArithCat : uint8_t { Add, Mul, Div, Rem, Shift, And, Or, None };
inline constexpr size_t kJsArithCatCount = 7;

JsArithCat js_arith_cat(JsOp op);

struct JsInstr {
  JsOp op;
  uint32_t a = 0;
  uint32_t b = 0;
};

struct FunctionProto {
  std::string name;
  uint32_t nparams = 0;
  uint32_t nlocals = 0;  ///< params + hoisted vars
  std::vector<JsInstr> code;
  std::vector<double> num_consts;
};

/// A compiled script.
struct ScriptCode {
  std::vector<FunctionProto> protos;    ///< [0] is the top-level script body
  std::vector<std::string> str_consts;  ///< string constant pool
  std::vector<std::string> names;       ///< interned identifiers (globals & props)
  size_t source_bytes = 0;              ///< used for parse-cost and code-size metrics

  [[nodiscard]] size_t total_code_len() const {
    size_t n = 0;
    for (const auto& p : protos) n += p.code.size();
    return n;
  }
};

}  // namespace wb::js
