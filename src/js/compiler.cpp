#include "js/compiler.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

namespace wb::js {

JsOpClass js_op_class(JsOp op) {
  switch (op) {
    case JsOp::ConstNum:
    case JsOp::ConstStr:
    case JsOp::Undef:
    case JsOp::Null:
    case JsOp::True:
    case JsOp::False:
      return JsOpClass::Const;
    case JsOp::LoadLocal:
    case JsOp::StoreLocal:
      return JsOpClass::Local;
    case JsOp::LoadGlobal:
    case JsOp::StoreGlobal:
      return JsOpClass::Global;
    case JsOp::Add:
    case JsOp::Sub:
    case JsOp::Mul:
    case JsOp::Div:
    case JsOp::Mod:
    case JsOp::Neg:
    case JsOp::ToNum:
      return JsOpClass::Arith;
    case JsOp::BitAnd:
    case JsOp::BitOr:
    case JsOp::BitXor:
    case JsOp::Shl:
    case JsOp::ShrS:
    case JsOp::ShrU:
    case JsOp::BitNot:
      return JsOpClass::BitOp;
    case JsOp::Eq:
    case JsOp::Ne:
    case JsOp::StrictEq:
    case JsOp::StrictNe:
    case JsOp::Lt:
    case JsOp::Le:
    case JsOp::Gt:
    case JsOp::Ge:
    case JsOp::Not:
      return JsOpClass::Compare;
    case JsOp::Jump:
    case JsOp::JumpIfFalse:
    case JsOp::JumpIfFalsePeek:
    case JsOp::JumpIfTruePeek:
      return JsOpClass::Branch;
    case JsOp::Pop:
    case JsOp::Dup:
    case JsOp::Dup2:
      return JsOpClass::Stack;
    case JsOp::Call:
    case JsOp::CallMethod:
      return JsOpClass::Call;
    case JsOp::Return:
    case JsOp::ReturnUndef:
      return JsOpClass::Return;
    case JsOp::GetProp:
    case JsOp::SetProp:
      return JsOpClass::Prop;
    case JsOp::GetIndex:
    case JsOp::SetIndex:
      return JsOpClass::Index;
    case JsOp::NewArray:
    case JsOp::NewArrayN:
    case JsOp::NewObject:
    case JsOp::NewF64Array:
    case JsOp::NewI32Array:
    case JsOp::NewU8Array:
      return JsOpClass::Alloc;
    default:
      break;
  }
  return JsOpClass::Misc;
}

namespace {

class Compiler {
 public:
  explicit Compiler(std::string& error) : error_(error) {}

  std::optional<ScriptCode> run(const JsProgram& program) {
    // Proto 0 is the top-level body; function declarations become globals
    // bound before any top-level statement runs (hoisting).
    code_.protos.emplace_back();
    code_.protos[0].name = "<toplevel>";
    for (const auto& fn : program.functions) {
      FunctionProto proto;
      proto.name = fn.name;
      proto.nparams = static_cast<uint32_t>(fn.params.size());
      code_.protos.push_back(std::move(proto));
      function_ids_[fn.name] = static_cast<uint32_t>(code_.protos.size() - 1);
      name_id(fn.name);  // ensure the VM can bind the function as a global
    }
    for (size_t i = 0; i < program.functions.size(); ++i) {
      compile_function(program.functions[i], static_cast<uint32_t>(i + 1));
      if (!ok_) return std::nullopt;
    }
    // Top-level statements. Top-level `var` creates globals (as in real
    // JS scripts), so nothing is hoisted into locals here.
    begin_function(nullptr);
    finalize_locals();
    for (const auto& s : program.top_level) {
      compile_stmt(*s);
      if (!ok_) return std::nullopt;
    }
    emit(JsOp::ReturnUndef);
    end_function(0);
    if (!ok_) return std::nullopt;
    return std::move(code_);
  }

  std::unordered_map<std::string, uint32_t> function_ids_;

 private:
  void fail(const std::string& message, uint32_t line) {
    if (ok_) {
      error_ = message + " at line " + std::to_string(line);
      ok_ = false;
    }
  }

  // ------------------------------------------------------------- emission
  void emit(JsOp op, uint32_t a = 0, uint32_t b = 0) {
    current_.code.push_back(JsInstr{op, a, b});
  }
  size_t emit_jump(JsOp op) {
    emit(op, 0xdeadbeef);
    return current_.code.size() - 1;
  }
  void patch_jump(size_t at) {
    current_.code[at].a = static_cast<uint32_t>(current_.code.size());
  }
  uint32_t num_const(double v) {
    for (uint32_t i = 0; i < current_.num_consts.size(); ++i) {
      const double c = current_.num_consts[i];
      // Bit-compare so -0.0 and 0.0 stay distinct.
      if (std::memcmp(&c, &v, sizeof v) == 0) return i;
    }
    current_.num_consts.push_back(v);
    return static_cast<uint32_t>(current_.num_consts.size() - 1);
  }
  uint32_t str_const(const std::string& s) {
    for (uint32_t i = 0; i < code_.str_consts.size(); ++i) {
      if (code_.str_consts[i] == s) return i;
    }
    code_.str_consts.push_back(s);
    return static_cast<uint32_t>(code_.str_consts.size() - 1);
  }
  uint32_t name_id(const std::string& s) {
    for (uint32_t i = 0; i < code_.names.size(); ++i) {
      if (code_.names[i] == s) return i;
    }
    code_.names.push_back(s);
    return static_cast<uint32_t>(code_.names.size() - 1);
  }

  // ------------------------------------------------------------ scoping
  void begin_function(const FunctionDecl* fn) {
    current_ = FunctionProto{};
    locals_.clear();
    if (fn) {
      current_.name = fn->name;
      current_.nparams = static_cast<uint32_t>(fn->params.size());
      for (const auto& p : fn->params) declare_local(p);
    }
  }
  void end_function(uint32_t proto_index) {
    code_.protos[proto_index] = std::move(current_);
  }
  void declare_local(const std::string& name) {
    if (locals_.count(name)) return;
    const uint32_t slot = static_cast<uint32_t>(locals_.size());
    locals_[name] = slot;
  }
  void finalize_locals() {
    current_.nlocals = static_cast<uint32_t>(locals_.size());
  }

  /// `var` hoisting: collect every declared name in the function body.
  void hoist_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::VarDecl:
        for (const auto& [name, init] : s.decls) declare_local(name);
        break;
      case Stmt::Kind::If:
        if (s.body) hoist_stmt(*s.body);
        if (s.else_body) hoist_stmt(*s.else_body);
        break;
      case Stmt::Kind::While:
      case Stmt::Kind::DoWhile:
        if (s.body) hoist_stmt(*s.body);
        break;
      case Stmt::Kind::For:
        if (s.init) hoist_stmt(*s.init);
        if (s.body) hoist_stmt(*s.body);
        break;
      case Stmt::Kind::Block:
        for (const auto& inner : s.stmts) hoist_stmt(*inner);
        break;
      default:
        break;
    }
  }

  void compile_function(const FunctionDecl& fn, uint32_t proto_index) {
    begin_function(&fn);
    for (const auto& s : fn.body) hoist_stmt(*s);
    finalize_locals();
    for (const auto& s : fn.body) {
      compile_stmt(*s);
      if (!ok_) return;
    }
    emit(JsOp::ReturnUndef);
    end_function(proto_index);
  }

  // ----------------------------------------------------------- statements
  struct LoopCtx {
    std::vector<size_t> breaks;
    size_t continue_target = 0;
    std::vector<size_t> continue_jumps;  // for `for` loops: patched to update
    bool continue_is_patch = false;
  };

  void compile_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::Expr:
        compile_expr(*s.expr);
        emit(JsOp::Pop);
        break;
      case Stmt::Kind::VarDecl:
        for (const auto& [name, init] : s.decls) {
          if (!init) continue;
          compile_expr(*init);
          const auto it = locals_.find(name);
          if (it != locals_.end()) {
            emit(JsOp::StoreLocal, it->second);
          } else {
            emit(JsOp::StoreGlobal, name_id(name));
          }
        }
        break;
      case Stmt::Kind::If: {
        compile_expr(*s.expr);
        const size_t to_else = emit_jump(JsOp::JumpIfFalse);
        if (s.body) compile_stmt(*s.body);
        if (s.else_body) {
          const size_t to_end = emit_jump(JsOp::Jump);
          patch_jump(to_else);
          compile_stmt(*s.else_body);
          patch_jump(to_end);
        } else {
          patch_jump(to_else);
        }
        break;
      }
      case Stmt::Kind::While: {
        const size_t top = current_.code.size();
        compile_expr(*s.expr);
        const size_t exit = emit_jump(JsOp::JumpIfFalse);
        loops_.push_back(LoopCtx{});
        loops_.back().continue_target = top;
        if (s.body) compile_stmt(*s.body);
        emit(JsOp::Jump, static_cast<uint32_t>(top));
        patch_jump(exit);
        for (size_t j : loops_.back().breaks) patch_jump(j);
        loops_.pop_back();
        break;
      }
      case Stmt::Kind::DoWhile: {
        const size_t top = current_.code.size();
        loops_.push_back(LoopCtx{});
        loops_.back().continue_is_patch = true;
        if (s.body) compile_stmt(*s.body);
        const size_t cond_at = current_.code.size();
        for (size_t j : loops_.back().continue_jumps) current_.code[j].a = static_cast<uint32_t>(cond_at);
        compile_expr(*s.expr);
        const size_t exit = emit_jump(JsOp::JumpIfFalse);
        emit(JsOp::Jump, static_cast<uint32_t>(top));
        patch_jump(exit);
        for (size_t j : loops_.back().breaks) patch_jump(j);
        loops_.pop_back();
        break;
      }
      case Stmt::Kind::For: {
        if (s.init) compile_stmt(*s.init);
        const size_t top = current_.code.size();
        size_t exit = SIZE_MAX;
        if (s.expr) {
          compile_expr(*s.expr);
          exit = emit_jump(JsOp::JumpIfFalse);
        }
        loops_.push_back(LoopCtx{});
        loops_.back().continue_is_patch = true;
        if (s.body) compile_stmt(*s.body);
        const size_t update_at = current_.code.size();
        for (size_t j : loops_.back().continue_jumps) {
          current_.code[j].a = static_cast<uint32_t>(update_at);
        }
        if (s.update) {
          compile_expr(*s.update);
          emit(JsOp::Pop);
        }
        emit(JsOp::Jump, static_cast<uint32_t>(top));
        if (exit != SIZE_MAX) patch_jump(exit);
        for (size_t j : loops_.back().breaks) patch_jump(j);
        loops_.pop_back();
        break;
      }
      case Stmt::Kind::Return:
        if (s.expr) {
          compile_expr(*s.expr);
          emit(JsOp::Return);
        } else {
          emit(JsOp::ReturnUndef);
        }
        break;
      case Stmt::Kind::Break:
        if (loops_.empty()) {
          fail("break outside loop", s.line);
          return;
        }
        loops_.back().breaks.push_back(emit_jump(JsOp::Jump));
        break;
      case Stmt::Kind::Continue:
        if (loops_.empty()) {
          fail("continue outside loop", s.line);
          return;
        }
        if (loops_.back().continue_is_patch) {
          loops_.back().continue_jumps.push_back(emit_jump(JsOp::Jump));
        } else {
          emit(JsOp::Jump, static_cast<uint32_t>(loops_.back().continue_target));
        }
        break;
      case Stmt::Kind::Block:
        for (const auto& inner : s.stmts) {
          compile_stmt(*inner);
          if (!ok_) return;
        }
        break;
      case Stmt::Kind::Empty:
        break;
    }
  }

  // ---------------------------------------------------------- expressions
  static JsOp binary_op(const std::string& op) {
    if (op == "+") return JsOp::Add;
    if (op == "-") return JsOp::Sub;
    if (op == "*") return JsOp::Mul;
    if (op == "/") return JsOp::Div;
    if (op == "%") return JsOp::Mod;
    if (op == "&") return JsOp::BitAnd;
    if (op == "|") return JsOp::BitOr;
    if (op == "^") return JsOp::BitXor;
    if (op == "<<") return JsOp::Shl;
    if (op == ">>") return JsOp::ShrS;
    if (op == ">>>") return JsOp::ShrU;
    if (op == "==") return JsOp::Eq;
    if (op == "!=") return JsOp::Ne;
    if (op == "===") return JsOp::StrictEq;
    if (op == "!==") return JsOp::StrictNe;
    if (op == "<") return JsOp::Lt;
    if (op == "<=") return JsOp::Le;
    if (op == ">") return JsOp::Gt;
    if (op == ">=") return JsOp::Ge;
    return JsOp::Pop;  // unreachable; caller validated
  }

  void compile_ident_load(const std::string& name, uint32_t line) {
    const auto it = locals_.find(name);
    if (it != locals_.end()) {
      emit(JsOp::LoadLocal, it->second);
      return;
    }
    (void)line;
    if (name == "NaN") {
      emit(JsOp::ConstNum, num_const(std::nan("")));
      return;
    }
    if (name == "Infinity") {
      emit(JsOp::ConstNum, num_const(std::numeric_limits<double>::infinity()));
      return;
    }
    emit(JsOp::LoadGlobal, name_id(name));
  }

  void compile_ident_store(const std::string& name) {
    const auto it = locals_.find(name);
    if (it != locals_.end()) {
      emit(JsOp::StoreLocal, it->second);
    } else {
      emit(JsOp::StoreGlobal, name_id(name));
    }
  }

  void compile_expr(const Expr& e) {
    if (!ok_) return;
    switch (e.kind) {
      case Expr::Kind::Number:
        emit(JsOp::ConstNum, num_const(e.num));
        break;
      case Expr::Kind::String:
        emit(JsOp::ConstStr, str_const(e.str));
        break;
      case Expr::Kind::Bool:
        emit(e.boolean ? JsOp::True : JsOp::False);
        break;
      case Expr::Kind::Null:
        emit(JsOp::Null);
        break;
      case Expr::Kind::Undefined:
        emit(JsOp::Undef);
        break;
      case Expr::Kind::Ident:
        compile_ident_load(e.str, e.line);
        break;
      case Expr::Kind::Unary:
        compile_expr(*e.a);
        if (e.op == "-") {
          emit(JsOp::Neg);
        } else if (e.op == "+") {
          emit(JsOp::ToNum);
        } else if (e.op == "!") {
          emit(JsOp::Not);
        } else if (e.op == "~") {
          emit(JsOp::BitNot);
        } else {
          fail("unsupported unary operator " + e.op, e.line);
        }
        break;
      case Expr::Kind::Update: {
        if (e.a->kind != Expr::Kind::Ident) {
          fail("++/-- supported on plain variables only", e.line);
          return;
        }
        const std::string& name = e.a->str;
        compile_ident_load(name, e.line);
        if (e.prefix) {
          emit(JsOp::ConstNum, num_const(1));
          emit(e.op == "++" ? JsOp::Add : JsOp::Sub);
          emit(JsOp::Dup);
          compile_ident_store(name);
        } else {
          emit(JsOp::ToNum);
          emit(JsOp::Dup);
          emit(JsOp::ConstNum, num_const(1));
          emit(e.op == "++" ? JsOp::Add : JsOp::Sub);
          compile_ident_store(name);
        }
        break;
      }
      case Expr::Kind::Binary:
        if (e.op == ",") {
          compile_expr(*e.a);
          emit(JsOp::Pop);
          compile_expr(*e.b);
          break;
        }
        compile_expr(*e.a);
        compile_expr(*e.b);
        emit(binary_op(e.op));
        break;
      case Expr::Kind::Logical: {
        compile_expr(*e.a);
        const size_t skip =
            emit_jump(e.op == "&&" ? JsOp::JumpIfFalsePeek : JsOp::JumpIfTruePeek);
        emit(JsOp::Pop);
        compile_expr(*e.b);
        patch_jump(skip);
        break;
      }
      case Expr::Kind::Assign:
        compile_assign(e);
        break;
      case Expr::Kind::Ternary: {
        compile_expr(*e.a);
        const size_t to_else = emit_jump(JsOp::JumpIfFalse);
        compile_expr(*e.b);
        const size_t to_end = emit_jump(JsOp::Jump);
        patch_jump(to_else);
        compile_expr(*e.c);
        patch_jump(to_end);
        break;
      }
      case Expr::Kind::Call: {
        if (e.a->kind == Expr::Kind::Member) {
          // receiver.method(args)
          compile_expr(*e.a->a);
          for (const auto& arg : e.args) compile_expr(*arg);
          emit(JsOp::CallMethod, name_id(e.a->str),
               static_cast<uint32_t>(e.args.size()));
        } else {
          compile_expr(*e.a);
          for (const auto& arg : e.args) compile_expr(*arg);
          emit(JsOp::Call, static_cast<uint32_t>(e.args.size()));
        }
        break;
      }
      case Expr::Kind::Member:
        compile_expr(*e.a);
        emit(JsOp::GetProp, name_id(e.str));
        break;
      case Expr::Kind::Index:
        compile_expr(*e.a);
        compile_expr(*e.b);
        emit(JsOp::GetIndex);
        break;
      case Expr::Kind::ArrayLit:
        for (const auto& el : e.args) compile_expr(*el);
        emit(JsOp::NewArray, static_cast<uint32_t>(e.args.size()));
        break;
      case Expr::Kind::ObjectLit:
        emit(JsOp::NewObject);
        for (const auto& [key, value] : e.props) {
          emit(JsOp::Dup);
          compile_expr(*value);
          emit(JsOp::SetProp, name_id(key));
          emit(JsOp::Pop);
        }
        break;
      case Expr::Kind::New: {
        if (e.args.size() != 1) {
          fail("constructors take exactly one argument here", e.line);
          return;
        }
        compile_expr(*e.args[0]);
        if (e.str == "Float64Array") {
          emit(JsOp::NewF64Array);
        } else if (e.str == "Int32Array") {
          emit(JsOp::NewI32Array);
        } else if (e.str == "Uint8Array") {
          emit(JsOp::NewU8Array);
        } else if (e.str == "Array") {
          emit(JsOp::NewArrayN);
        } else {
          fail("unsupported constructor " + e.str, e.line);
        }
        break;
      }
    }
  }

  void compile_assign(const Expr& e) {
    const Expr& target = *e.a;
    const bool compound = !e.op.empty();
    switch (target.kind) {
      case Expr::Kind::Ident: {
        if (compound) {
          compile_ident_load(target.str, e.line);
          compile_expr(*e.b);
          emit(binary_op(e.op));
        } else {
          compile_expr(*e.b);
        }
        emit(JsOp::Dup);
        compile_ident_store(target.str);
        break;
      }
      case Expr::Kind::Member: {
        compile_expr(*target.a);
        if (compound) {
          emit(JsOp::Dup);
          emit(JsOp::GetProp, name_id(target.str));
          compile_expr(*e.b);
          emit(binary_op(e.op));
        } else {
          compile_expr(*e.b);
        }
        emit(JsOp::SetProp, name_id(target.str));
        break;
      }
      case Expr::Kind::Index: {
        compile_expr(*target.a);
        compile_expr(*target.b);
        if (compound) {
          emit(JsOp::Dup2);
          emit(JsOp::GetIndex);
          compile_expr(*e.b);
          emit(binary_op(e.op));
        } else {
          compile_expr(*e.b);
        }
        emit(JsOp::SetIndex);
        break;
      }
      default:
        fail("invalid assignment target", e.line);
        break;
    }
  }

  ScriptCode code_;
  FunctionProto current_;
  std::unordered_map<std::string, uint32_t> locals_;
  std::vector<LoopCtx> loops_;
  std::string& error_;
  bool ok_ = true;
};

}  // namespace

std::optional<ScriptCode> compile(const JsProgram& program, std::string& error) {
  Compiler c(error);
  auto code = c.run(program);
  if (!code) return std::nullopt;
  // Bind function declarations as globals in a prologue of the top-level
  // proto — they must exist before any top-level statement runs.
  // We encode this as metadata the VM applies at startup instead of
  // bytecode: name ids parallel to proto indices.
  return code;
}

}  // namespace wb::js
