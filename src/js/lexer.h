// Tokenizer for the JS-like language (the subset real-world numeric JS and
// compiler-generated JS use: functions, loops, arrays/objects, full C-style
// operator set including `>>>` and the `|0` coercion idiom).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wb::js {

enum class TokKind : uint8_t {
  Eof,
  Identifier,
  Number,
  String,
  Keyword,
  Punct,
};

struct Token {
  TokKind kind = TokKind::Eof;
  std::string_view text;  ///< points into the source buffer
  double num = 0;         ///< for Number tokens
  uint32_t line = 1;
};

/// Tokenizes `source`. On success fills `out` (terminated by an Eof token);
/// on failure returns false and sets `error`.
bool tokenize(std::string_view source, std::vector<Token>& out, std::string& error);

/// True if `word` is a reserved keyword of the subset.
bool is_keyword(std::string_view word);

}  // namespace wb::js
