// Facade: source text -> compiled script. Mirrors a browser's load path
// (parse + bytecode compile happen at script load; the environment charges
// parse cost proportional to source size).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "js/bytecode.h"

namespace wb::js {

/// Parses and compiles `source`. Sets `error` on failure.
std::optional<ScriptCode> compile_script(std::string_view source, std::string& error);

}  // namespace wb::js
