// Recursive-descent / Pratt parser for the JS-like language.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "js/ast.h"

namespace wb::js {

/// Parses `source`. Returns nullopt and sets `error` on syntax errors.
std::optional<JsProgram> parse(std::string_view source, std::string& error);

}  // namespace wb::js
