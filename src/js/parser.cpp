#include "js/parser.h"

#include "js/lexer.h"

namespace wb::js {

namespace {

std::string unescape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 1 < raw.size()) {
      ++i;
      switch (raw[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case '0': out += '\0'; break;
        default: out += raw[i]; break;
      }
    } else {
      out += raw[i];
    }
  }
  return out;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string& error)
      : toks_(std::move(tokens)), error_(error) {}

  std::optional<JsProgram> run() {
    JsProgram program;
    while (!at_end() && ok_) {
      if (peek_kw("function")) {
        auto fn = parse_function();
        if (!ok_) return std::nullopt;
        program.functions.push_back(std::move(fn));
      } else {
        StmtPtr s = parse_statement();
        if (!ok_) return std::nullopt;
        if (s) program.top_level.push_back(std::move(s));
      }
    }
    if (!ok_) return std::nullopt;
    return program;
  }

 private:
  // ------------------------------------------------------------- helpers
  const Token& peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at_end() const { return peek().kind == TokKind::Eof; }
  const Token& advance() { return toks_[pos_++]; }

  bool peek_punct(std::string_view p) const {
    return peek().kind == TokKind::Punct && peek().text == p;
  }
  bool peek_kw(std::string_view k) const {
    return peek().kind == TokKind::Keyword && peek().text == k;
  }
  bool match_punct(std::string_view p) {
    if (!peek_punct(p)) return false;
    advance();
    return true;
  }
  bool match_kw(std::string_view k) {
    if (!peek_kw(k)) return false;
    advance();
    return true;
  }
  void expect_punct(std::string_view p) {
    if (!match_punct(p)) fail(std::string("expected '") + std::string(p) + "'");
  }
  void fail(const std::string& message) {
    if (ok_) {
      error_ = message + " at line " + std::to_string(peek().line);
      ok_ = false;
    }
  }

  ExprPtr make(Expr::Kind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = peek().line;
    return e;
  }

  // ----------------------------------------------------------- functions
  FunctionDecl parse_function() {
    advance();  // 'function'
    FunctionDecl fn;
    fn.line = peek().line;
    if (peek().kind != TokKind::Identifier) {
      fail("expected function name");
      return fn;
    }
    fn.name = std::string(advance().text);
    expect_punct("(");
    if (!peek_punct(")")) {
      do {
        if (peek().kind != TokKind::Identifier) {
          fail("expected parameter name");
          return fn;
        }
        fn.params.push_back(std::string(advance().text));
      } while (match_punct(","));
    }
    expect_punct(")");
    expect_punct("{");
    while (ok_ && !peek_punct("}") && !at_end()) {
      StmtPtr s = parse_statement();
      if (s) fn.body.push_back(std::move(s));
    }
    expect_punct("}");
    return fn;
  }

  // ---------------------------------------------------------- statements
  StmtPtr parse_statement() {
    const uint32_t line = peek().line;
    auto stmt = [&](Stmt::Kind kind) {
      auto s = std::make_unique<Stmt>();
      s->kind = kind;
      s->line = line;
      return s;
    };

    if (match_punct(";")) return nullptr;
    if (peek_kw("var") || peek_kw("let") || peek_kw("const")) {
      auto s = parse_var_decl();
      expect_punct(";");
      return s;
    }
    if (match_kw("if")) {
      auto s = stmt(Stmt::Kind::If);
      expect_punct("(");
      s->expr = parse_expression();
      expect_punct(")");
      s->body = parse_statement();
      if (match_kw("else")) s->else_body = parse_statement();
      return s;
    }
    if (match_kw("while")) {
      auto s = stmt(Stmt::Kind::While);
      expect_punct("(");
      s->expr = parse_expression();
      expect_punct(")");
      s->body = parse_statement();
      return s;
    }
    if (match_kw("do")) {
      auto s = stmt(Stmt::Kind::DoWhile);
      s->body = parse_statement();
      if (!match_kw("while")) fail("expected 'while' after do body");
      expect_punct("(");
      s->expr = parse_expression();
      expect_punct(")");
      match_punct(";");
      return s;
    }
    if (match_kw("for")) {
      auto s = stmt(Stmt::Kind::For);
      expect_punct("(");
      if (!peek_punct(";")) {
        if (peek_kw("var") || peek_kw("let") || peek_kw("const")) {
          s->init = parse_var_decl();
        } else {
          auto init = stmt(Stmt::Kind::Expr);
          init->expr = parse_expression();
          s->init = std::move(init);
        }
      }
      expect_punct(";");
      if (!peek_punct(";")) s->expr = parse_expression();
      expect_punct(";");
      if (!peek_punct(")")) s->update = parse_expression();
      expect_punct(")");
      s->body = parse_statement();
      return s;
    }
    if (match_kw("return")) {
      auto s = stmt(Stmt::Kind::Return);
      if (!peek_punct(";")) s->expr = parse_expression();
      expect_punct(";");
      return s;
    }
    if (match_kw("break")) {
      expect_punct(";");
      return stmt(Stmt::Kind::Break);
    }
    if (match_kw("continue")) {
      expect_punct(";");
      return stmt(Stmt::Kind::Continue);
    }
    if (match_punct("{")) {
      auto s = stmt(Stmt::Kind::Block);
      while (ok_ && !peek_punct("}") && !at_end()) {
        StmtPtr inner = parse_statement();
        if (inner) s->stmts.push_back(std::move(inner));
      }
      expect_punct("}");
      return s;
    }
    auto s = stmt(Stmt::Kind::Expr);
    s->expr = parse_expression();
    expect_punct(";");
    return s;
  }

  StmtPtr parse_var_decl() {
    advance();  // var/let/const
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::VarDecl;
    s->line = peek().line;
    do {
      if (peek().kind != TokKind::Identifier) {
        fail("expected variable name");
        return s;
      }
      std::string name(advance().text);
      ExprPtr init;
      if (match_punct("=")) init = parse_assignment();
      s->decls.emplace_back(std::move(name), std::move(init));
    } while (match_punct(","));
    return s;
  }

  // --------------------------------------------------------- expressions
  ExprPtr parse_expression() {
    ExprPtr e = parse_assignment();
    // Comma operator: evaluate both, keep the last (used in for-updates).
    while (ok_ && peek_punct(",")) {
      advance();
      auto seq = make(Expr::Kind::Binary);
      seq->op = ",";
      seq->a = std::move(e);
      seq->b = parse_assignment();
      e = std::move(seq);
    }
    return e;
  }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_ternary();
    static constexpr std::string_view kAssignOps[] = {
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="};
    for (std::string_view op : kAssignOps) {
      if (peek_punct(op)) {
        advance();
        auto e = make(Expr::Kind::Assign);
        e->op = op == "=" ? "" : std::string(op.substr(0, op.size() - 1));
        e->a = std::move(lhs);
        e->b = parse_assignment();  // right-assoc
        return e;
      }
    }
    return lhs;
  }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(0);
    if (!match_punct("?")) return cond;
    auto e = make(Expr::Kind::Ternary);
    e->a = std::move(cond);
    e->b = parse_assignment();
    expect_punct(":");
    e->c = parse_assignment();
    return e;
  }

  struct Level {
    std::string_view ops[6];
    bool logical;
  };

  ExprPtr parse_binary(int level) {
    static const Level kLevels[] = {
        {{"||"}, true},
        {{"&&"}, true},
        {{"|"}, false},
        {{"^"}, false},
        {{"&"}, false},
        {{"===", "!==", "==", "!="}, false},
        {{"<=", ">=", "<", ">"}, false},
        {{"<<", ">>>", ">>"}, false},
        {{"+", "-"}, false},
        {{"*", "/", "%"}, false},
    };
    constexpr int kNumLevels = static_cast<int>(std::size(kLevels));
    if (level >= kNumLevels) return parse_unary();

    ExprPtr lhs = parse_binary(level + 1);
    while (ok_) {
      const Level& lv = kLevels[level];
      bool matched = false;
      for (std::string_view op : lv.ops) {
        if (!op.empty() && peek_punct(op)) {
          advance();
          auto e = make(lv.logical ? Expr::Kind::Logical : Expr::Kind::Binary);
          e->op = op;
          e->a = std::move(lhs);
          e->b = parse_binary(level + 1);
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) break;
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    for (std::string_view op : {"-", "+", "!", "~"}) {
      if (peek_punct(op)) {
        advance();
        auto e = make(Expr::Kind::Unary);
        e->op = op;
        e->a = parse_unary();
        return e;
      }
    }
    if (peek_punct("++") || peek_punct("--")) {
      auto e = make(Expr::Kind::Update);
      e->op = std::string(advance().text);
      e->prefix = true;
      e->a = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (ok_) {
      if (match_punct(".")) {
        if (peek().kind != TokKind::Identifier && peek().kind != TokKind::Keyword) {
          fail("expected property name");
          return e;
        }
        auto m = make(Expr::Kind::Member);
        m->str = std::string(advance().text);
        m->a = std::move(e);
        e = std::move(m);
      } else if (match_punct("[")) {
        auto ix = make(Expr::Kind::Index);
        ix->a = std::move(e);
        ix->b = parse_expression();
        expect_punct("]");
        e = std::move(ix);
      } else if (match_punct("(")) {
        auto call = make(Expr::Kind::Call);
        call->a = std::move(e);
        if (!peek_punct(")")) {
          do {
            call->args.push_back(parse_assignment());
          } while (match_punct(","));
        }
        expect_punct(")");
        e = std::move(call);
      } else if (peek_punct("++") || peek_punct("--")) {
        auto u = make(Expr::Kind::Update);
        u->op = std::string(advance().text);
        u->prefix = false;
        u->a = std::move(e);
        e = std::move(u);
      } else {
        break;
      }
    }
    return e;
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokKind::Number: {
        auto e = make(Expr::Kind::Number);
        e->num = t.num;
        advance();
        return e;
      }
      case TokKind::String: {
        auto e = make(Expr::Kind::String);
        e->str = unescape(t.text);
        advance();
        return e;
      }
      case TokKind::Identifier: {
        auto e = make(Expr::Kind::Ident);
        e->str = std::string(t.text);
        advance();
        return e;
      }
      case TokKind::Keyword: {
        if (t.text == "true" || t.text == "false") {
          auto e = make(Expr::Kind::Bool);
          e->boolean = t.text == "true";
          advance();
          return e;
        }
        if (t.text == "null") {
          advance();
          return make(Expr::Kind::Null);
        }
        if (t.text == "undefined") {
          advance();
          return make(Expr::Kind::Undefined);
        }
        if (t.text == "new") {
          advance();
          auto e = make(Expr::Kind::New);
          if (peek().kind != TokKind::Identifier) {
            fail("expected constructor name");
            return e;
          }
          e->str = std::string(advance().text);
          expect_punct("(");
          if (!peek_punct(")")) {
            do {
              e->args.push_back(parse_assignment());
            } while (match_punct(","));
          }
          expect_punct(")");
          return e;
        }
        fail("unexpected keyword '" + std::string(t.text) + "'");
        return make(Expr::Kind::Undefined);
      }
      case TokKind::Punct: {
        if (t.text == "(") {
          advance();
          ExprPtr e = parse_expression();
          expect_punct(")");
          return e;
        }
        if (t.text == "[") {
          advance();
          auto e = make(Expr::Kind::ArrayLit);
          if (!peek_punct("]")) {
            do {
              e->args.push_back(parse_assignment());
            } while (match_punct(","));
          }
          expect_punct("]");
          return e;
        }
        if (t.text == "{") {
          advance();
          auto e = make(Expr::Kind::ObjectLit);
          if (!peek_punct("}")) {
            do {
              if (peek().kind != TokKind::Identifier && peek().kind != TokKind::String) {
                fail("expected property key");
                return e;
              }
              std::string key = peek().kind == TokKind::String
                                    ? unescape(peek().text)
                                    : std::string(peek().text);
              advance();
              expect_punct(":");
              e->props.emplace_back(std::move(key), parse_assignment());
            } while (match_punct(","));
          }
          expect_punct("}");
          return e;
        }
        break;
      }
      default:
        break;
    }
    fail("unexpected token");
    return make(Expr::Kind::Undefined);
  }

  std::vector<Token> toks_;
  std::string& error_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::optional<JsProgram> parse(std::string_view source, std::string& error) {
  std::vector<Token> tokens;
  if (!tokenize(source, tokens, error)) return std::nullopt;
  Parser p(std::move(tokens), error);
  return p.run();
}

}  // namespace wb::js
