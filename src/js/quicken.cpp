#include "js/quicken.h"

#include <atomic>
#include <cstdlib>

#include "js/interp.h"

namespace wb::js {

namespace {

std::atomic<bool> g_js_quicken_default{true};

/// Index of a binop within WB_QJS_FUSE_NAMES order, or -1 if the op has
/// no fused family member. Family opcodes are laid out contiguously in
/// this order, so `family_base + index` selects the fused opcode.
int fuse_index(JsOp op) {
  switch (op) {
    case JsOp::Add: return 0;
    case JsOp::Sub: return 1;
    case JsOp::Mul: return 2;
    case JsOp::Div: return 3;
    case JsOp::Mod: return 4;
    case JsOp::BitAnd: return 5;
    case JsOp::BitOr: return 6;
    case JsOp::BitXor: return 7;
    case JsOp::Shl: return 8;
    case JsOp::ShrS: return 9;
    case JsOp::ShrU: return 10;
    case JsOp::Lt: return 11;
    case JsOp::Le: return 12;
    case JsOp::Gt: return 13;
    case JsOp::Ge: return 14;
    default: return -1;
  }
}

bool is_cmp(JsOp op) {
  switch (op) {
    case JsOp::Eq:
    case JsOp::Ne:
    case JsOp::StrictEq:
    case JsOp::StrictNe:
    case JsOp::Lt:
    case JsOp::Le:
    case JsOp::Gt:
    case JsOp::Ge:
      return true;
    default:
      return false;
  }
}

QJsOp family_op(QJsOp base, int index) {
  return static_cast<QJsOp>(static_cast<uint16_t>(base) + index);
}

/// Records one constituent classic op in the charge side table: its cost
/// class into the next cls[] slot and its arith category into the packed
/// lane word (moving one count out of the discarded pad lane, so the
/// total across lanes stays 4).
void add_charge(QJsInstr& q, JsOp op) {
  const uint8_t k = q.nops++;
  const uint8_t cls = static_cast<uint8_t>(js_op_class(op));
  q.cls[k] = cls;
  const uint8_t cat = static_cast<uint8_t>(js_arith_cat(op));
  q.cat[k] = cat;
  q.cat_packed += (1ull << (8 * cat)) - (1ull << (8 * kQJsCatPad));
  // Same move for the attribution class lanes: one count leaves the hi
  // word's pad lane for the constituent's class lane.
  q.cls_packed_hi -= 1ull << (8 * (kQJsClsPad - 8));
  if (cls < 8) {
    q.cls_packed_lo += 1ull << (8 * cls);
  } else {
    q.cls_packed_hi += 1ull << (8 * (cls - 8));
  }
}

}  // namespace

void set_quicken_default(bool enabled) { g_js_quicken_default.store(enabled); }

bool quicken_default() {
  static const bool env_off = std::getenv("WB_NO_JS_QUICKEN") != nullptr;
  return !env_off && g_js_quicken_default.load();
}

QJsFunc quicken(const ScriptCode& code, uint32_t proto_index, uint32_t& cache_slots) {
  const FunctionProto& proto = code.protos[proto_index];
  const std::vector<JsInstr>& in = proto.code;
  const uint32_t n = static_cast<uint32_t>(in.size());

  // Pass 1: mark jump targets. Fusion must never swallow one — a group's
  // interior pcs are unreachable in QCode, so a branch landing there
  // would change execution.
  std::vector<uint8_t> is_target(n + 1, 0);
  for (const JsInstr& ins : in) {
    switch (ins.op) {
      case JsOp::Jump:
      case JsOp::JumpIfFalse:
      case JsOp::JumpIfFalsePeek:
      case JsOp::JumpIfTruePeek:
        if (ins.a <= n) is_target[ins.a] = 1;
        break;
      default:
        break;
    }
  }

  QJsFunc qf;
  qf.code.reserve(n + 1);
  std::vector<uint32_t> map(n + 1, 0);
  struct Fix {
    uint32_t qi;
    uint8_t field;  // 0 -> a, 1 -> d
    uint32_t target;
  };
  std::vector<Fix> fixes;

  // Pass 2: emit, matching the longest eligible gram at each pc.
  uint32_t pc = 0;
  while (pc < n) {
    const uint32_t qi = static_cast<uint32_t>(qf.code.size());
    // `clear(len)`: no interior pc is a branch target.
    auto clear = [&](uint32_t len) {
      if (pc + len > n) return false;
      for (uint32_t i = 1; i < len; ++i) {
        if (is_target[pc + i]) return false;
      }
      return true;
    };
    auto op_at = [&](uint32_t i) { return in[pc + i].op; };

    QJsInstr q;
    uint32_t len = 1;

    // --- 4-grams ---
    if (clear(4) && op_at(0) == JsOp::LoadLocal &&
        (op_at(1) == JsOp::LoadLocal || op_at(1) == JsOp::ConstNum)) {
      const bool second_local = op_at(1) == JsOp::LoadLocal;
      const int bi = fuse_index(op_at(2));
      if (bi >= 0 && op_at(3) == JsOp::StoreLocal) {
        q.op = family_op(second_local ? QJsOp::FGetGetSet_Add : QJsOp::FGetConstSet_Add, bi);
        q.a = in[pc].a;
        if (second_local) {
          q.b = in[pc + 1].a;
        } else {
          q.val = proto.num_consts[in[pc + 1].a];
        }
        q.c = in[pc + 3].a;
        len = 4;
      } else if (is_cmp(op_at(2)) && op_at(3) == JsOp::JumpIfFalse) {
        q.op = second_local ? QJsOp::FGetGetCmpJf : QJsOp::FGetConstCmpJf;
        q.a = in[pc].a;
        if (second_local) {
          q.b = in[pc + 1].a;
        } else {
          q.val = proto.num_consts[in[pc + 1].a];
        }
        q.c = static_cast<uint32_t>(op_at(2));
        fixes.push_back({qi, 1, in[pc + 3].a});
        len = 4;
      }
    }
    // --- 3-grams ---
    if (len == 1 && clear(3)) {
      if (op_at(0) == JsOp::LoadLocal && op_at(1) == JsOp::LoadLocal) {
        const int bi = fuse_index(op_at(2));
        if (bi >= 0) {
          q.op = family_op(QJsOp::FGetGet_Add, bi);
          q.a = in[pc].a;
          q.b = in[pc + 1].a;
          len = 3;
        } else if (op_at(2) == JsOp::GetIndex) {
          q.op = QJsOp::FGetGetIdx;
          q.a = in[pc].a;
          q.b = in[pc + 1].a;
          len = 3;
        }
      } else if (op_at(0) == JsOp::LoadLocal && op_at(1) == JsOp::ConstNum) {
        const int bi = fuse_index(op_at(2));
        if (bi >= 0) {
          q.op = family_op(QJsOp::FGetConst_Add, bi);
          q.a = in[pc].a;
          q.val = proto.num_consts[in[pc + 1].a];
          len = 3;
        }
      } else if (op_at(0) == JsOp::LoadLocal && op_at(1) == JsOp::ToNum &&
                 op_at(2) == JsOp::Dup) {
        q.op = QJsOp::FGetNumDup;
        q.a = in[pc].a;
        len = 3;
      } else if (op_at(0) == JsOp::Dup && op_at(1) == JsOp::StoreLocal &&
                 op_at(2) == JsOp::Pop) {
        q.op = QJsOp::FDupSetPop;
        q.a = in[pc + 1].a;
        len = 3;
      }
    }
    // --- 2-grams ---
    if (len == 1 && clear(2)) {
      if (op_at(0) == JsOp::ConstNum && op_at(1) == JsOp::StoreLocal) {
        q.op = QJsOp::FConstSet;
        q.val = proto.num_consts[in[pc].a];
        q.a = in[pc + 1].a;
        len = 2;
      } else if (op_at(0) == JsOp::ConstNum && fuse_index(op_at(1)) >= 0) {
        q.op = family_op(QJsOp::FConstBin_Add, fuse_index(op_at(1)));
        q.val = proto.num_consts[in[pc].a];
        len = 2;
      } else if (is_cmp(op_at(0)) && op_at(1) == JsOp::JumpIfFalse) {
        q.op = QJsOp::FCmpJf;
        q.c = static_cast<uint32_t>(op_at(0));
        fixes.push_back({qi, 0, in[pc + 1].a});
        len = 2;
      } else if (op_at(0) == JsOp::LoadLocal && op_at(1) == JsOp::GetIndex) {
        q.op = QJsOp::FGetIdx;
        q.a = in[pc].a;
        len = 2;
      } else if (op_at(0) == JsOp::StoreLocal && op_at(1) == JsOp::Pop) {
        q.op = QJsOp::FSetPop;
        q.a = in[pc].a;
        len = 2;
      } else if (op_at(0) == JsOp::SetIndex && op_at(1) == JsOp::Pop) {
        q.op = QJsOp::FSetIdxPop;
        len = 2;
      }
    }
    // --- singles ---
    if (len == 1) {
      const JsInstr& ins = in[pc];
      // JsOp names map one-to-one onto the QJsOp singles block, which
      // starts right after the FuncReturn sentinel slot.
      q.op = static_cast<QJsOp>(static_cast<uint16_t>(ins.op) + 1);
      q.a = ins.a;
      q.b = ins.b;
      switch (ins.op) {
        case JsOp::ConstNum:
          q.val = proto.num_consts[ins.a];
          break;
        case JsOp::Jump:
          if (ins.a <= pc) q.flags |= kQJsFlagBackEdge;
          fixes.push_back({qi, 0, ins.a});
          break;
        case JsOp::JumpIfFalse:
        case JsOp::JumpIfFalsePeek:
        case JsOp::JumpIfTruePeek:
          fixes.push_back({qi, 0, ins.a});
          break;
        case JsOp::GetProp:
          if (code.names[ins.a] == "length") q.flags |= kQJsFlagLength;
          q.b = cache_slots++;
          break;
        case JsOp::SetProp:
          q.b = cache_slots++;
          break;
        case JsOp::CallMethod:
          q.c = cache_slots++;
          break;
        default:
          break;
      }
    }

    for (uint32_t i = 0; i < len; ++i) {
      map[pc + i] = qi;
      add_charge(q, in[pc + i].op);
    }
    qf.code.push_back(q);
    pc += len;
  }

  // Implicit-return sentinel: running off the end lands here. nops stays
  // 0 so the sentinel can never trip the fuel check, exactly like the
  // classic loop's pc >= code_size test running before its fuel test.
  map[n] = static_cast<uint32_t>(qf.code.size());
  qf.code.push_back(QJsInstr{});  // op defaults to FuncReturn

  // Pass 3: resolve branch targets to QCode indices.
  for (const Fix& f : fixes) {
    const uint32_t t = map[f.target];
    if (f.field == 0) {
      qf.code[f.qi].a = t;
    } else {
      qf.code[f.qi].d = t;
    }
  }
  return qf;
}

}  // namespace wb::js
