// NaN-boxed runtime values for the JavaScript-like engine. Every value is
// one 8-byte word: numbers are IEEE doubles stored directly; everything
// else (undefined, null, booleans, heap references) lives in the mantissa
// payload of a quiet NaN that no arithmetic result can produce. This is
// the representation real engines use (JSC/SpiderMonkey-style) and it
// shrinks stacks, locals, boxed-array elements, and property entries 3x
// compared to the previous 24-byte tagged struct.
//
// Encoding (upper 16 bits):
//   0x7ffc  Undefined        0x7ffd  Null
//   0x7ffe  Bool (bit 0)     0x7fff  Object (ObjRef in the low 32 bits)
// Any other bit pattern is a number. Hardware NaNs are 0x7ff8... (sign
// bit optional), safely outside the boxed range; `number()` still
// canonicalizes every NaN input so no payload can ever collide with a
// box. JS semantics are preserved: all NaNs are indistinguishable, and
// typed arrays store raw doubles whose values re-enter through number().
#pragma once

#include <bit>
#include <cstdint>

namespace wb::js {

/// Index into the Heap's object table.
using ObjRef = uint32_t;
inline constexpr ObjRef kNullRef = 0xffffffff;

struct JsValue {
  enum class Tag : uint8_t { Undefined, Null, Bool, Number, Object };

  static constexpr uint64_t kBoxMask = 0x7ffc'0000'0000'0000ull;
  static constexpr uint64_t kTopMask = 0xffff'0000'0000'0000ull;
  static constexpr uint64_t kUndefinedBits = 0x7ffc'0000'0000'0000ull;
  static constexpr uint64_t kNullBits = 0x7ffd'0000'0000'0000ull;
  static constexpr uint64_t kBoolBits = 0x7ffe'0000'0000'0000ull;
  static constexpr uint64_t kObjectBits = 0x7fff'0000'0000'0000ull;
  static constexpr uint64_t kCanonicalNaN = 0x7ff8'0000'0000'0000ull;

  uint64_t bits = kUndefinedBits;

  static JsValue undefined() { return {}; }
  static JsValue null() { return from_bits(kNullBits); }
  static JsValue boolean_value(bool b) {
    return from_bits(kBoolBits | (b ? 1u : 0u));
  }
  static JsValue number(double d) {
    // Canonicalize NaN so no propagated payload can alias a boxed value.
    return from_bits(d != d ? kCanonicalNaN : std::bit_cast<uint64_t>(d));
  }
  static JsValue object(ObjRef r) { return from_bits(kObjectBits | r); }

  [[nodiscard]] bool is_undefined() const { return bits == kUndefinedBits; }
  [[nodiscard]] bool is_null() const { return bits == kNullBits; }
  [[nodiscard]] bool is_bool() const { return (bits & kTopMask) == kBoolBits; }
  [[nodiscard]] bool is_number() const { return (bits & kBoxMask) != kBoxMask; }
  [[nodiscard]] bool is_object() const { return (bits & kTopMask) == kObjectBits; }

  [[nodiscard]] double num() const { return std::bit_cast<double>(bits); }
  [[nodiscard]] bool boolean() const { return (bits & 1) != 0; }
  [[nodiscard]] ObjRef ref() const { return static_cast<ObjRef>(bits); }

  [[nodiscard]] Tag tag() const {
    if (is_number()) return Tag::Number;
    switch (bits >> 48) {
      case 0x7ffc: return Tag::Undefined;
      case 0x7ffd: return Tag::Null;
      case 0x7ffe: return Tag::Bool;
      default: return Tag::Object;
    }
  }

 private:
  static JsValue from_bits(uint64_t b) {
    JsValue v;
    v.bits = b;
    return v;
  }
};

static_assert(sizeof(JsValue) == 8, "JsValue must be one NaN-boxed word");

/// ECMAScript ToInt32 (the coercion behind `x | 0` and all bitwise ops).
int32_t to_int32(double d);
/// ECMAScript ToUint32 (behind `>>>`).
uint32_t to_uint32(double d);

}  // namespace wb::js
