// Tagged runtime values for the JavaScript-like engine. Numbers are IEEE
// doubles (JS `Number`); everything heap-allocated (strings, arrays,
// objects, typed arrays, functions) is referenced by heap index.
#pragma once

#include <cstdint>

namespace wb::js {

/// Index into the Heap's object table.
using ObjRef = uint32_t;
inline constexpr ObjRef kNullRef = 0xffffffff;

struct JsValue {
  enum class Tag : uint8_t { Undefined, Null, Bool, Number, Object };

  Tag tag = Tag::Undefined;
  bool boolean = false;
  double num = 0;
  ObjRef ref = kNullRef;

  static JsValue undefined() { return {}; }
  static JsValue null() {
    JsValue v;
    v.tag = Tag::Null;
    return v;
  }
  static JsValue boolean_value(bool b) {
    JsValue v;
    v.tag = Tag::Bool;
    v.boolean = b;
    return v;
  }
  static JsValue number(double d) {
    JsValue v;
    v.tag = Tag::Number;
    v.num = d;
    return v;
  }
  static JsValue object(ObjRef r) {
    JsValue v;
    v.tag = Tag::Object;
    v.ref = r;
    return v;
  }

  [[nodiscard]] bool is_undefined() const { return tag == Tag::Undefined; }
  [[nodiscard]] bool is_null() const { return tag == Tag::Null; }
  [[nodiscard]] bool is_bool() const { return tag == Tag::Bool; }
  [[nodiscard]] bool is_number() const { return tag == Tag::Number; }
  [[nodiscard]] bool is_object() const { return tag == Tag::Object; }
};

/// ECMAScript ToInt32 (the coercion behind `x | 0` and all bitwise ops).
int32_t to_int32(double d);
/// ECMAScript ToUint32 (behind `>>>`).
uint32_t to_uint32(double d);

}  // namespace wb::js
