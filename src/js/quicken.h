// Quickened execution for the JS VM, mirroring the Wasm engine's design
// (src/wasm/quicken.h): at load time each FunctionProto's bytecode is
// pre-translated into a flat QJsCode stream with pre-resolved jump
// targets and superinstructions fused from the corpus-dominant grams
// (local/const operand fetch + binop [+ store], const + store, compare +
// conditional branch, local-indexed array load, indexed store + pop).
// `Vm::run_quickened` executes the stream with computed-goto
// direct-threaded dispatch (interp.cpp).
//
// The hard invariant carries over verbatim from the Wasm engine: the
// quickened loop must be observationally identical to the classic loop —
// cost_ps, ops_executed, arith_counts, tier-up timing, fuel traps, GC
// statistics, and tracer spans all bit-identical. Each QJsInstr therefore
// carries a charge side table describing its constituent classic ops:
// `nops` original instructions, their JsOpClass values in cls[] (padded
// with kQJsClsPad, a zero-cost 16th slot, so the charge is a branchless
// 4-slot sum), and their JsArithCat lanes packed one byte per category in
// cat_packed (the None lane is discarded; every instruction contributes
// exactly 4 across all lanes, so an unpack every 63 dispatches can never
// saturate a byte lane).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "js/bytecode.h"
#include "js/value.h"

namespace wb::js {

// Binops eligible for operand-fusion families. Add is listed for enum
// generation but its handlers are written by hand (string concatenation
// can allocate and collect, which the generic numeric expansion cannot
// express); the rest expand through WB_QJS_FUSE_BINOPS in interp.cpp.
#define WB_QJS_FUSE_NAMES(X) \
  X(Add)                     \
  X(Sub)                     \
  X(Mul)                     \
  X(Div)                     \
  X(Mod)                     \
  X(BitAnd)                  \
  X(BitOr)                   \
  X(BitXor)                  \
  X(Shl)                     \
  X(ShrS)                    \
  X(ShrU)                    \
  X(Lt)                      \
  X(Le)                      \
  X(Gt)                      \
  X(Ge)

// Every op name in QJsOp order. The singles mirror JsOp one-to-one (each
// executes exactly its classic case); FuncReturn is the appended sentinel
// a frame falls into when pc runs past the end (implicit return, nops=0
// so it can never hit the fuel boundary, matching the classic loop's
// pc >= code_size check running before the fuel check). Fused ops follow.
#define WB_QJS_OP_LIST(X)  \
  X(FuncReturn)            \
  X(ConstNum)              \
  X(ConstStr)              \
  X(Undef)                 \
  X(Null)                  \
  X(True)                  \
  X(False)                 \
  X(LoadLocal)             \
  X(StoreLocal)            \
  X(LoadGlobal)            \
  X(StoreGlobal)           \
  X(Add)                   \
  X(Sub)                   \
  X(Mul)                   \
  X(Div)                   \
  X(Mod)                   \
  X(Neg)                   \
  X(ToNum)                 \
  X(BitAnd)                \
  X(BitOr)                 \
  X(BitXor)                \
  X(Shl)                   \
  X(ShrS)                  \
  X(ShrU)                  \
  X(BitNot)                \
  X(Eq)                    \
  X(Ne)                    \
  X(StrictEq)              \
  X(StrictNe)              \
  X(Lt)                    \
  X(Le)                    \
  X(Gt)                    \
  X(Ge)                    \
  X(Not)                   \
  X(Jump)                  \
  X(JumpIfFalse)           \
  X(JumpIfFalsePeek)       \
  X(JumpIfTruePeek)        \
  X(Pop)                   \
  X(Dup)                   \
  X(Dup2)                  \
  X(Call)                  \
  X(CallMethod)            \
  X(Return)                \
  X(ReturnUndef)           \
  X(NewArray)              \
  X(NewArrayN)             \
  X(NewObject)             \
  X(GetProp)               \
  X(SetProp)               \
  X(GetIndex)              \
  X(SetIndex)              \
  X(NewF64Array)           \
  X(NewI32Array)           \
  X(NewU8Array)            \
  X(FConstSet)             \
  X(FSetPop)               \
  X(FDupSetPop)            \
  X(FGetNumDup)            \
  X(FGetIdx)               \
  X(FGetGetIdx)            \
  X(FSetIdxPop)            \
  X(FCmpJf)                \
  X(FGetConstCmpJf)        \
  X(FGetGetCmpJf)          \
  WB_QJS_OP_LIST_FUSED(X)

// Applies X to every fused-family member name (prefix ## binop).
#define WB_QJS_FUSE_NAMES_P(X, P) \
  X(P##Add)                       \
  X(P##Sub)                       \
  X(P##Mul)                       \
  X(P##Div)                       \
  X(P##Mod)                       \
  X(P##BitAnd)                    \
  X(P##BitOr)                     \
  X(P##BitXor)                    \
  X(P##Shl)                       \
  X(P##ShrS)                      \
  X(P##ShrU)                      \
  X(P##Lt)                        \
  X(P##Le)                        \
  X(P##Gt)                        \
  X(P##Ge)
#define WB_QJS_OP_LIST_FUSED(X)            \
  WB_QJS_FUSE_NAMES_P(X, FGetGet_)         \
  WB_QJS_FUSE_NAMES_P(X, FGetConst_)       \
  WB_QJS_FUSE_NAMES_P(X, FGetGetSet_)      \
  WB_QJS_FUSE_NAMES_P(X, FGetConstSet_)    \
  WB_QJS_FUSE_NAMES_P(X, FConstBin_)

enum class QJsOp : uint16_t {
#define WB_QJS_ENUM(name) name,
  WB_QJS_OP_LIST(WB_QJS_ENUM)
#undef WB_QJS_ENUM
      kCount,
};

/// Zero-cost pad slot appended to the per-tier cost table copy; unused
/// cls[] slots point here so the 4-slot charge sum is branchless.
inline constexpr uint8_t kQJsClsPad = static_cast<uint8_t>(kJsOpClassCount);
/// Discarded byte lane (JsArithCat::None) in the packed category word.
inline constexpr uint8_t kQJsCatPad = static_cast<uint8_t>(JsArithCat::None);

inline constexpr uint8_t kQJsFlagBackEdge = 1;  ///< Jump: counts loop hotness
inline constexpr uint8_t kQJsFlagLength = 2;    ///< GetProp: name is "length"

struct QJsInstr {
  QJsOp op = QJsOp::FuncReturn;
  uint8_t nops = 0;   ///< constituent classic-op count (fuel charge)
  uint8_t flags = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  uint32_t d = 0;     ///< second jump target (4-gram compare-and-branch)
  std::array<uint8_t, 4> cls{kQJsClsPad, kQJsClsPad, kQJsClsPad, kQJsClsPad};
  std::array<uint8_t, 4> cat{kQJsCatPad, kQJsCatPad, kQJsCatPad, kQJsCatPad};
  /// One byte lane per JsArithCat; pad lanes carry the balance so every
  /// instruction sums to exactly 4 across lanes.
  uint64_t cat_packed = 4ull << (8 * kQJsCatPad);
  /// The four cls slots the same way, for cause attribution: JsOpClasses
  /// 0-7 as byte lanes of the lo word, 8-14 in the hi word, with hi lane
  /// (kQJsClsPad - 8) as the discard lane for unused slots. Both words
  /// together always sum to 4, sharing the cat accumulator's 63-dispatch
  /// flush budget.
  uint64_t cls_packed_lo = 0;
  uint64_t cls_packed_hi = 4ull << (8 * (kQJsClsPad - 8));
  double val = 0;     ///< resolved numeric constant
};

/// One translated function body. The last instruction is always the
/// FuncReturn sentinel.
struct QJsFunc {
  std::vector<QJsInstr> code;
};

/// Inline-cache entry for property access sites: valid while `ref` still
/// holds the object allocated as `serial` (the heap free-list can recycle
/// refs) and its property layout version is still `shape`.
struct PropCacheEntry {
  ObjRef ref = kNullRef;
  uint32_t serial = 0;
  uint32_t shape = 0;
  uint32_t slot = 0;
};

/// Monomorphic-then-polymorphic cache: entries fill in order, then a
/// round-robin victim keeps replacement deterministic. Caches only ever
/// speed up the host-side lookup; they charge nothing, so the classic
/// loop (which has none) stays bit-identical.
struct PropCache {
  std::array<PropCacheEntry, 4> entries{};
  uint8_t n = 0;
  uint8_t victim = 0;
};

/// Translates one FunctionProto into QJsCode. GetProp/SetProp/CallMethod
/// sites are assigned consecutive cache indices starting at `cache_slots`,
/// which is advanced past them (the Vm sizes its cache vector from the
/// final value).
QJsFunc quicken(const ScriptCode& code, uint32_t proto_index, uint32_t& cache_slots);

/// Process-wide default for whether new Vms quicken (overridden per-Vm
/// with Vm::set_quicken). Always false when WB_NO_JS_QUICKEN is set in
/// the environment.
void set_quicken_default(bool enabled);
bool quicken_default();

}  // namespace wb::js
