// AST for the JS-like language. A deliberately small but real surface:
// everything the paper's hand-written benchmarks, the math.js-style
// library shim, and the compiler-generated (typed-array) style need.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace wb::js {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

struct Expr {
  enum class Kind {
    Number,
    String,
    Bool,
    Null,
    Undefined,
    Ident,
    Unary,     // op a          (-, !, ~, typeof not supported)
    Update,    // ++/-- a (prefix when `prefix`), a ++/-- otherwise
    Binary,    // a op b
    Logical,   // a && b / a || b (short-circuit)
    Assign,    // a op= b (op "" for plain =)
    Ternary,   // a ? b : c
    Call,      // a(args)
    Member,    // a.name
    Index,     // a[b]
    ArrayLit,  // [args...]
    ObjectLit, // {props...}
    New,       // new Ctor(args)
  };

  Kind kind;
  double num = 0;
  bool boolean = false;
  std::string str;   // identifier / string literal / member name / ctor name
  std::string op;    // operator spelling
  bool prefix = false;
  ExprPtr a, b, c;
  std::vector<ExprPtr> args;
  std::vector<std::pair<std::string, ExprPtr>> props;
  uint32_t line = 0;
};

struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  uint32_t line = 0;
};

struct Stmt {
  enum class Kind {
    Expr,
    VarDecl,
    If,
    While,
    DoWhile,
    For,
    Return,
    Break,
    Continue,
    Block,
    Empty,
  };

  Kind kind;
  ExprPtr expr;      // Expr stmt / Return value / If-While-For condition
  ExprPtr update;    // For update clause
  StmtPtr init;      // For init (VarDecl or Expr statement)
  std::vector<std::pair<std::string, ExprPtr>> decls;  // VarDecl
  StmtPtr body;
  StmtPtr else_body;
  std::vector<StmtPtr> stmts;  // Block
  uint32_t line = 0;
};

/// A parsed program: top-level function declarations plus top-level
/// statements (executed in order when the script loads).
struct JsProgram {
  std::vector<FunctionDecl> functions;
  std::vector<StmtPtr> top_level;
};

}  // namespace wb::js
