#include "js/heap.h"

#include <cmath>

namespace wb::js {

int32_t to_int32(double d) {
  if (std::isnan(d) || std::isinf(d)) return 0;
  // ECMAScript ToInt32: modulo 2^32, then reinterpret as signed.
  const double two32 = 4294967296.0;
  double m = std::fmod(std::trunc(d), two32);
  if (m < 0) m += two32;
  const uint32_t u = static_cast<uint32_t>(m);
  return static_cast<int32_t>(u);
}

uint32_t to_uint32(double d) { return static_cast<uint32_t>(to_int32(d)); }

size_t Heap::object_bytes(const GcObject& o) {
  constexpr size_t kHeader = 48;  // rough per-object overhead (tag, map ptr, ...)
  // Element/property sizes model a browser engine's boxed representation
  // (24-byte tagged element, 32-byte property cell) and are deliberately
  // decoupled from our host sizeof: the memory metric must not shift when
  // the interpreter's internal value layout changes (e.g. NaN-boxing).
  constexpr size_t kBoxedElemBytes = 24;
  constexpr size_t kPropBytes = 32;
  switch (o.kind) {
    case ObjKind::String:
      return kHeader + o.str().size();
    case ObjKind::Array:
      return kHeader + o.elems().capacity() * kBoxedElemBytes;
    case ObjKind::Object:
      return kHeader + o.props().capacity() * kPropBytes;
    case ObjKind::Function:
    case ObjKind::Builtin:
      return kHeader;
    // Typed-array *headers* live on the GC heap; their backing stores are
    // counted as external bytes (see note_external).
    case ObjKind::Float64Array:
    case ObjKind::Int32Array:
    case ObjKind::Uint8Array:
      return kHeader + 16;
  }
  return kHeader;
}

ObjRef Heap::alloc(GcObject obj) {
  ++stats_.objects_allocated;
  obj.serial = ++next_serial_;
  allocated_since_gc_ += object_bytes(obj);
  ObjRef ref;
  if (!free_.empty()) {
    ref = free_.back();
    free_.pop_back();
    objects_[ref] = std::make_unique<GcObject>(std::move(obj));
  } else {
    ref = static_cast<ObjRef>(objects_.size());
    objects_.push_back(std::make_unique<GcObject>(std::move(obj)));
  }
  return ref;
}

ObjRef Heap::alloc_string(std::string s) {
  GcObject o;
  o.kind = ObjKind::String;
  o.data = std::move(s);
  return alloc(std::move(o));
}

ObjRef Heap::alloc_array(std::vector<JsValue> elems) {
  GcObject o;
  o.kind = ObjKind::Array;
  o.data = std::move(elems);
  return alloc(std::move(o));
}

ObjRef Heap::alloc_object() {
  GcObject o;
  o.kind = ObjKind::Object;
  o.data = std::vector<Prop>{};
  return alloc(std::move(o));
}

ObjRef Heap::alloc_function(uint32_t proto_index) {
  GcObject o;
  o.kind = ObjKind::Function;
  o.data = proto_index;
  return alloc(std::move(o));
}

ObjRef Heap::alloc_builtin(uint32_t builtin_id) {
  GcObject o;
  o.kind = ObjKind::Builtin;
  o.data = builtin_id;
  return alloc(std::move(o));
}

ObjRef Heap::alloc_f64_array(size_t n) {
  GcObject o;
  o.kind = ObjKind::Float64Array;
  o.data = std::vector<double>(n, 0.0);
  note_external(static_cast<ptrdiff_t>(n * sizeof(double)));
  return alloc(std::move(o));
}

ObjRef Heap::alloc_i32_array(size_t n) {
  GcObject o;
  o.kind = ObjKind::Int32Array;
  o.data = std::vector<int32_t>(n, 0);
  note_external(static_cast<ptrdiff_t>(n * sizeof(int32_t)));
  return alloc(std::move(o));
}

ObjRef Heap::alloc_u8_array(size_t n) {
  GcObject o;
  o.kind = ObjKind::Uint8Array;
  o.data = std::vector<uint8_t>(n, 0);
  note_external(static_cast<ptrdiff_t>(n));
  return alloc(std::move(o));
}

void Heap::note_external(ptrdiff_t delta) {
  if (delta < 0 && static_cast<size_t>(-delta) > stats_.external_bytes) {
    stats_.external_bytes = 0;
  } else {
    stats_.external_bytes = static_cast<size_t>(
        static_cast<ptrdiff_t>(stats_.external_bytes) + delta);
  }
  stats_.peak_external_bytes = std::max(stats_.peak_external_bytes, stats_.external_bytes);
}

void Heap::mark_value(JsValue v) {
  if (!v.is_object() || v.ref() == kNullRef) return;
  GcObject& o = *objects_[v.ref()];
  if (o.mark) return;
  o.mark = true;
  mark_stack_.push_back(v.ref());
}

void Heap::collect() {
  ++stats_.collections;
  allocated_since_gc_ = 0;

  // Mark.
  for (auto& o : objects_) {
    if (o) o->mark = o->pinned;
  }
  mark_stack_.clear();
  for (ObjRef r = 0; r < objects_.size(); ++r) {
    if (objects_[r] && objects_[r]->pinned) mark_stack_.push_back(r);
  }
  if (root_scanner_) {
    root_scanner_([this](JsValue v) { mark_value(v); });
  }
  while (!mark_stack_.empty()) {
    const ObjRef ref = mark_stack_.back();
    mark_stack_.pop_back();
    GcObject& o = *objects_[ref];
    switch (o.kind) {
      case ObjKind::Array:
        for (JsValue v : o.elems()) mark_value(v);
        break;
      case ObjKind::Object:
        for (const Prop& p : o.props()) mark_value(p.value);
        break;
      default:
        break;
    }
  }

  // Sweep; account live bytes.
  size_t live = 0;
  for (ObjRef r = 0; r < objects_.size(); ++r) {
    GcObject* o = objects_[r].get();
    if (!o) continue;
    if (o->mark) {
      live += object_bytes(*o);
      continue;
    }
    // Free: typed arrays release their external bytes.
    switch (o->kind) {
      case ObjKind::Float64Array:
        note_external(-static_cast<ptrdiff_t>(o->f64().size() * sizeof(double)));
        break;
      case ObjKind::Int32Array:
        note_external(-static_cast<ptrdiff_t>(o->i32().size() * sizeof(int32_t)));
        break;
      case ObjKind::Uint8Array:
        note_external(-static_cast<ptrdiff_t>(o->u8().size()));
        break;
      default:
        break;
    }
    objects_[r].reset();
    free_.push_back(r);
    ++stats_.objects_freed;
  }
  stats_.live_bytes = live;
  stats_.peak_live_bytes = std::max(stats_.peak_live_bytes, live);
  if (collect_hook_) collect_hook_(stats_);
}

void Heap::maybe_collect() {
  if (allocated_since_gc_ >= gc_threshold_) collect();
}

}  // namespace wb::js
