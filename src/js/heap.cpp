#include "js/heap.h"

#include <cmath>

namespace wb::js {

int32_t to_int32(double d) {
  if (std::isnan(d) || std::isinf(d)) return 0;
  // ECMAScript ToInt32: modulo 2^32, then reinterpret as signed.
  const double two32 = 4294967296.0;
  double m = std::fmod(std::trunc(d), two32);
  if (m < 0) m += two32;
  const uint32_t u = static_cast<uint32_t>(m);
  return static_cast<int32_t>(u);
}

uint32_t to_uint32(double d) { return static_cast<uint32_t>(to_int32(d)); }

size_t Heap::object_bytes(const GcObject& o) {
  constexpr size_t kHeader = 48;  // rough per-object overhead (tag, map ptr, ...)
  // Element/property sizes model a browser engine's boxed representation
  // (24-byte tagged element, 32-byte property cell) and are deliberately
  // decoupled from our host sizeof: the memory metric must not shift when
  // the interpreter's internal value layout changes (e.g. NaN-boxing).
  constexpr size_t kBoxedElemBytes = 24;
  constexpr size_t kPropBytes = 32;
  switch (o.kind) {
    case ObjKind::String:
      return kHeader + o.str().size();
    case ObjKind::Array:
      return kHeader + o.elems().capacity() * kBoxedElemBytes;
    case ObjKind::Object:
      return kHeader + o.props().capacity() * kPropBytes;
    case ObjKind::Function:
    case ObjKind::Builtin:
      return kHeader;
    // Typed-array *headers* live on the GC heap; their backing stores are
    // counted as external bytes (see note_external).
    case ObjKind::Float64Array:
    case ObjKind::Int32Array:
    case ObjKind::Uint8Array:
      return kHeader + 16;
  }
  return kHeader;
}

ObjRef Heap::alloc(GcObject obj) {
  ++stats_.objects_allocated;
  obj.serial = ++next_serial_;
  allocated_since_gc_ += object_bytes(obj);
  ObjRef ref;
  if (!free_.empty()) {
    ref = free_.back();
    free_.pop_back();
    objects_[ref] = std::make_unique<GcObject>(std::move(obj));
  } else {
    ref = static_cast<ObjRef>(objects_.size());
    objects_.push_back(std::make_unique<GcObject>(std::move(obj)));
  }
  if (mode_ == GcMode::Generational) nursery_.push_back(ref);
  return ref;
}

ObjRef Heap::alloc_string(std::string s) {
  GcObject o;
  o.kind = ObjKind::String;
  o.data = std::move(s);
  return alloc(std::move(o));
}

ObjRef Heap::alloc_array(std::vector<JsValue> elems) {
  GcObject o;
  o.kind = ObjKind::Array;
  o.data = std::move(elems);
  return alloc(std::move(o));
}

ObjRef Heap::alloc_object() {
  GcObject o;
  o.kind = ObjKind::Object;
  o.data = std::vector<Prop>{};
  return alloc(std::move(o));
}

ObjRef Heap::alloc_function(uint32_t proto_index) {
  GcObject o;
  o.kind = ObjKind::Function;
  o.data = proto_index;
  return alloc(std::move(o));
}

ObjRef Heap::alloc_builtin(uint32_t builtin_id) {
  GcObject o;
  o.kind = ObjKind::Builtin;
  o.data = builtin_id;
  return alloc(std::move(o));
}

ObjRef Heap::alloc_f64_array(size_t n) {
  GcObject o;
  o.kind = ObjKind::Float64Array;
  o.data = std::vector<double>(n, 0.0);
  note_external(static_cast<ptrdiff_t>(n * sizeof(double)));
  return alloc(std::move(o));
}

ObjRef Heap::alloc_i32_array(size_t n) {
  GcObject o;
  o.kind = ObjKind::Int32Array;
  o.data = std::vector<int32_t>(n, 0);
  note_external(static_cast<ptrdiff_t>(n * sizeof(int32_t)));
  return alloc(std::move(o));
}

ObjRef Heap::alloc_u8_array(size_t n) {
  GcObject o;
  o.kind = ObjKind::Uint8Array;
  o.data = std::vector<uint8_t>(n, 0);
  note_external(static_cast<ptrdiff_t>(n));
  return alloc(std::move(o));
}

void Heap::note_external(ptrdiff_t delta) {
  if (delta < 0 && static_cast<size_t>(-delta) > stats_.external_bytes) {
    stats_.external_bytes = 0;
  } else {
    stats_.external_bytes = static_cast<size_t>(
        static_cast<ptrdiff_t>(stats_.external_bytes) + delta);
  }
  stats_.peak_external_bytes = std::max(stats_.peak_external_bytes, stats_.external_bytes);
}

void Heap::mark_value(JsValue v) {
  if (!v.is_object() || v.ref() == kNullRef) return;
  GcObject& o = *objects_[v.ref()];
  if (o.mark) return;
  o.mark = true;
  mark_stack_.push_back(v.ref());
}

/// Minor-collection marking: only nursery objects are collectable, so
/// marking stops at the old generation (its young references are covered
/// by the remembered set instead).
void Heap::mark_value_young(JsValue v) {
  if (!v.is_object() || v.ref() == kNullRef) return;
  GcObject& o = *objects_[v.ref()];
  if (!o.young || o.mark) return;
  o.mark = true;
  mark_stack_.push_back(v.ref());
}

void Heap::free_slot(ObjRef r) {
  GcObject* o = objects_[r].get();
  switch (o->kind) {
    case ObjKind::Float64Array:
      note_external(-static_cast<ptrdiff_t>(o->f64().size() * sizeof(double)));
      break;
    case ObjKind::Int32Array:
      note_external(-static_cast<ptrdiff_t>(o->i32().size() * sizeof(int32_t)));
      break;
    case ObjKind::Uint8Array:
      note_external(-static_cast<ptrdiff_t>(o->u8().size()));
      break;
    default:
      break;
  }
  objects_[r].reset();
  free_.push_back(r);
  ++stats_.objects_freed;
}

void Heap::set_gc_mode(GcMode mode) {
  if (mode_ == mode) return;
  mode_ = mode;
  nursery_.clear();
  for (const ObjRef r : remset_) {
    if (objects_[r]) objects_[r]->remembered = false;
  }
  remset_.clear();
  old_bytes_ = 0;
  if (mode == GcMode::Generational) {
    // Everything alive at the switch counts as already promoted.
    for (auto& o : objects_) {
      if (!o) continue;
      o->young = false;
      old_bytes_ += object_bytes(*o);
    }
    major_baseline_ = old_bytes_;
  }
}

/// Minor (nursery-only) collection: marks young objects from the roots,
/// pinned young objects, and the remembered set, frees the dead nursery
/// in allocation order, and promotes every survivor — after which no
/// young object (and hence no old->young edge) remains, so the remembered
/// set resets.
void Heap::collect_minor() {
  ++stats_.collections;
  ++minor_collections_;
  allocated_since_gc_ = 0;

  for (const ObjRef r : nursery_) {
    objects_[r]->mark = objects_[r]->pinned;
  }
  mark_stack_.clear();
  for (const ObjRef r : nursery_) {
    if (objects_[r]->pinned) mark_stack_.push_back(r);
  }
  if (root_scanner_) {
    root_scanner_([this](JsValue v) { mark_value_young(v); });
  }
  const auto trace_children = [this](const GcObject& o) {
    switch (o.kind) {
      case ObjKind::Array:
        for (JsValue v : o.elems()) mark_value_young(v);
        break;
      case ObjKind::Object:
        for (const Prop& p : o.props()) mark_value_young(p.value);
        break;
      default:
        break;
    }
  };
  for (const ObjRef r : remset_) trace_children(*objects_[r]);
  while (!mark_stack_.empty()) {
    const ObjRef ref = mark_stack_.back();
    mark_stack_.pop_back();
    trace_children(*objects_[ref]);
  }

  size_t surviving = 0;
  for (const ObjRef r : nursery_) {
    GcObject* o = objects_[r].get();
    if (o->mark) {
      const size_t bytes = object_bytes(*o);
      surviving += bytes;
      old_bytes_ += bytes;
      o->young = false;
      continue;
    }
    free_slot(r);
  }
  nursery_.clear();
  for (const ObjRef r : remset_) {
    if (objects_[r]) objects_[r]->remembered = false;
  }
  remset_.clear();

  stats_.live_bytes = static_cast<size_t>(old_bytes_);
  stats_.peak_live_bytes = std::max(stats_.peak_live_bytes, stats_.live_bytes);
  if (collect_hook_) collect_hook_(stats_);
  if (pause_hook_) pause_hook_(false, surviving);
}

void Heap::collect() {
  ++stats_.collections;
  allocated_since_gc_ = 0;

  // Mark.
  for (auto& o : objects_) {
    if (o) o->mark = o->pinned;
  }
  mark_stack_.clear();
  for (ObjRef r = 0; r < objects_.size(); ++r) {
    if (objects_[r] && objects_[r]->pinned) mark_stack_.push_back(r);
  }
  if (root_scanner_) {
    root_scanner_([this](JsValue v) { mark_value(v); });
  }
  while (!mark_stack_.empty()) {
    const ObjRef ref = mark_stack_.back();
    mark_stack_.pop_back();
    GcObject& o = *objects_[ref];
    switch (o.kind) {
      case ObjKind::Array:
        for (JsValue v : o.elems()) mark_value(v);
        break;
      case ObjKind::Object:
        for (const Prop& p : o.props()) mark_value(p.value);
        break;
      default:
        break;
    }
  }

  // Sweep; account live bytes. (Typed arrays release their external
  // bytes in free_slot.)
  size_t live = 0;
  for (ObjRef r = 0; r < objects_.size(); ++r) {
    GcObject* o = objects_[r].get();
    if (!o) continue;
    if (o->mark) {
      live += object_bytes(*o);
      continue;
    }
    free_slot(r);
  }
  stats_.live_bytes = live;
  stats_.peak_live_bytes = std::max(stats_.peak_live_bytes, live);

  if (mode_ == GcMode::Generational) {
    // Rebuild the generation structures over the survivors: drop freed
    // entries from the nursery (allocation order preserved) and the
    // remembered set, and recompute promoted bytes exactly.
    size_t kept = 0;
    for (const ObjRef r : nursery_) {
      if (objects_[r] && objects_[r]->young) nursery_[kept++] = r;
    }
    nursery_.resize(kept);
    kept = 0;
    for (const ObjRef r : remset_) {
      if (objects_[r]) remset_[kept++] = r;
    }
    remset_.resize(kept);
    old_bytes_ = 0;
    for (const auto& o : objects_) {
      if (o && !o->young) old_bytes_ += object_bytes(*o);
    }
    major_baseline_ = old_bytes_;
  }

  if (collect_hook_) collect_hook_(stats_);
  if (mode_ == GcMode::Generational && pause_hook_) pause_hook_(true, live);
}

Heap::Image Heap::capture_image() const {
  Image image;
  image.objects.reserve(objects_.size());
  for (const auto& o : objects_) {
    if (!o) {
      image.objects.emplace_back(std::nullopt);
      continue;
    }
    GcObject copy = *o;
    copy.mark = false;  // transient; canonicalize for byte-stable images
    // Copying a vector drops its reserved headroom, but capacity feeds
    // object_bytes (and so live_bytes): carry it explicitly.
    if (copy.kind == ObjKind::Array) {
      copy.elems().reserve(o->elems().capacity());
    } else if (copy.kind == ObjKind::Object) {
      copy.props().reserve(o->props().capacity());
    }
    image.objects.emplace_back(std::move(copy));
  }
  image.free_list = free_;
  image.nursery = nursery_;
  image.remset = remset_;
  image.next_serial = next_serial_;
  image.allocated_since_gc = allocated_since_gc_;
  image.old_bytes = old_bytes_;
  image.major_baseline_bytes = major_baseline_;
  image.minor_collections = minor_collections_;
  image.stats = stats_;
  return image;
}

bool Heap::restore_image(const Image& image, bool with_stats) {
  const auto valid_live = [&](ObjRef r) {
    return r < image.objects.size() && image.objects[r].has_value();
  };
  for (const ObjRef r : image.free_list) {
    if (r >= image.objects.size() || image.objects[r].has_value()) return false;
  }
  for (const ObjRef r : image.nursery) {
    if (!valid_live(r)) return false;
  }
  for (const ObjRef r : image.remset) {
    if (!valid_live(r)) return false;
  }

  objects_.clear();
  objects_.reserve(image.objects.size());
  for (const auto& o : image.objects) {
    if (!o) {
      objects_.push_back(nullptr);
      continue;
    }
    auto copy = std::make_unique<GcObject>(*o);
    // Re-apply the captured capacities (the copy shrank to size).
    if (copy->kind == ObjKind::Array) {
      copy->elems().reserve(o->elems().capacity());
    } else if (copy->kind == ObjKind::Object) {
      copy->props().reserve(o->props().capacity());
    }
    objects_.push_back(std::move(copy));
  }
  free_ = image.free_list;
  nursery_ = image.nursery;
  remset_ = image.remset;
  next_serial_ = image.next_serial;
  allocated_since_gc_ = static_cast<size_t>(image.allocated_since_gc);
  old_bytes_ = image.old_bytes;
  major_baseline_ = image.major_baseline_bytes;
  minor_collections_ = image.minor_collections;
  mark_stack_.clear();

  if (with_stats) {
    stats_ = image.stats;
  } else {
    // Modeled warm start: counters restart at zero; external bytes are
    // state, recomputed from the restored typed-array backing stores.
    stats_ = GcStats{};
    for (const auto& o : objects_) {
      if (!o) continue;
      switch (o->kind) {
        case ObjKind::Float64Array:
          stats_.external_bytes += o->f64().size() * sizeof(double);
          break;
        case ObjKind::Int32Array:
          stats_.external_bytes += o->i32().size() * sizeof(int32_t);
          break;
        case ObjKind::Uint8Array:
          stats_.external_bytes += o->u8().size();
          break;
        default:
          break;
      }
    }
    stats_.peak_external_bytes = stats_.external_bytes;
    minor_collections_ = 0;
  }

  // A snapshot captured under MarkSweep carries no generation structure;
  // resuming it into a Generational heap treats everything alive as
  // already promoted, exactly like switching modes on a live heap.
  if (mode_ == GcMode::Generational && old_bytes_ == 0 && nursery_.empty()) {
    for (auto& o : objects_) {
      if (!o) continue;
      o->young = false;
      old_bytes_ += object_bytes(*o);
    }
    major_baseline_ = old_bytes_;
  }
  return true;
}

void Heap::maybe_collect() {
  if (allocated_since_gc_ < gc_threshold_) return;
  if (mode_ == GcMode::Generational) {
    if (old_bytes_ >= major_baseline_ + 4 * static_cast<uint64_t>(gc_threshold_)) {
      collect();
    } else {
      collect_minor();
    }
    return;
  }
  collect();
}

}  // namespace wb::js
