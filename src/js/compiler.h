// AST -> bytecode compiler. Variables follow `var` (function-scope)
// semantics; unresolved identifiers are globals.
#pragma once

#include <optional>
#include <string>

#include "js/ast.h"
#include "js/bytecode.h"

namespace wb::js {

/// Compiles a parsed program. Returns nullopt and sets `error` on
/// unsupported constructs (e.g. ++ on a non-identifier).
std::optional<ScriptCode> compile(const JsProgram& program, std::string& error);

}  // namespace wb::js
