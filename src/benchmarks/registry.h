// The subject programs of the study (paper Sec. 4.1):
//  - 41 C benchmarks (30 PolyBenchC + 11 CHStone) rewritten in mini-C,
//    each with five input sizes (XS..XL) selected via -D defines;
//  - 9 manually-written JavaScript benchmarks (Table 9), in three styles:
//    plain hand-written, math.js-style generic library, and W3C-API;
//  - 3 real-world application analogs (Table 10): Long.js, Hyphenopoly,
//    FFmpeg.
#pragma once

#include <string>
#include <vector>

#include "core/study.h"

namespace wb::benchmarks {

/// All 41 compiled benchmarks, PolyBenchC first (paper Table 1 order).
const std::vector<core::BenchSource>& all_benchmarks();

/// The two suites separately.
std::vector<const core::BenchSource*> polybench();
std::vector<const core::BenchSource*> chstone();

const core::BenchSource* find_benchmark(std::string_view name);

/// A manually-written JS benchmark (paper Sec. 4.1.2, Table 9): JS source
/// (calls main()) plus which compiled benchmark it reimplements.
struct ManualJs {
  std::string name;        ///< paper row name, e.g. "Heat-3d (math.js)"
  std::string bench_name;  ///< the compiled benchmark it mirrors
  std::string source;
  bool library_style;      ///< math.js/jsSHA-style (boxed, generic) code
};

const std::vector<ManualJs>& manual_js_benchmarks();

}  // namespace wb::benchmarks
