// Real-world application analogs (paper Sec. 4.1.3 / 4.6.2, Tables 10 &
// 12), each reproducing the mechanism the paper identified:
//
//  - Long.js: 64-bit integer arithmetic. The JS implementation uses
//    16-bit limb arithmetic (as the real long.js does to avoid overflow);
//    the Wasm implementation is a hand-built module using native i64 ops
//    plus the lo/hi compose/decompose shifts its WAT shows. Table 12's
//    operation counts come straight from the VMs' arithmetic counters.
//  - Hyphenopoly.js: Knuth–Liang-style pattern hyphenation over an 18 KB
//    text. Both implementations spend most time scanning text — the
//    "I/O-ish" workload where Wasm's edge nearly vanishes.
//  - FFmpeg: a frame-transcode pipeline. The Wasm build fans out to 4
//    simulated WebWorkers (elapsed = slowest worker); the JS build is
//    single-threaded — the parallelism gap behind the paper's 0.275.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"

namespace wb::benchmarks {

struct RealWorldRow {
  std::string benchmark;   ///< "Long.js" / "Hyphenopoly.js" / "FFmpeg"
  std::string experiment;  ///< "multiplication", "en-us", "mp4 to avi", ...
  std::string input;       ///< human-readable input description
  bool ok = true;
  std::string error;
  double wasm_ms = 0;
  double js_ms = 0;
  [[nodiscard]] double ratio() const { return js_ms > 0 ? wasm_ms / js_ms : 0; }
};

/// Runs all six Table-10 experiments in `browser`.
std::vector<RealWorldRow> run_real_world_apps(const env::BrowserEnv& browser);

/// One real-world analog in one implementation language, exposed for the
/// wb::replay corpus: a compiled/hand-built Wasm artifact or a JS source,
/// plus the RunOptions the Table-10 experiment uses (toolchain, extra
/// boundary crossings). The FFmpeg Wasm entry is the single-threaded
/// full-clip module (one worker's view of all 32 frames).
struct RealWorldProgram {
  std::string name;  ///< "longjs-mul-wasm", "hyphen-en-us-js", "ffmpeg-wasm", ...
  bool is_wasm = false;
  backend::WasmArtifact artifact;  ///< valid when is_wasm
  std::string js_source;           ///< valid when !is_wasm
  env::RunOptions options;
  bool ok = true;
  std::string error;
};

/// Builds all 12 programs (3 Long.js ops + 2 Hyphenopoly languages +
/// FFmpeg, each in Wasm and JS). Deterministic.
std::vector<RealWorldProgram> real_world_programs();

/// Table 12: arithmetic-operation counts for the three Long.js programs.
/// Category order: ADD MUL DIV REM SHIFT AND OR.
struct LongOpsRow {
  std::string op;
  std::array<uint64_t, 7> js_counts{};
  std::array<uint64_t, 7> wasm_counts{};
};

std::vector<LongOpsRow> longjs_operation_counts();

}  // namespace wb::benchmarks
