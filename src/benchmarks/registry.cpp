#include "benchmarks/registry.h"

#include "benchmarks/polybench.h"

namespace wb::benchmarks {

const std::vector<core::BenchSource>& all_benchmarks() {
  static const std::vector<core::BenchSource> benchmarks = [] {
    std::vector<core::BenchSource> out;
    add_polybench(out);
    add_chstone(out);
    return out;
  }();
  return benchmarks;
}

std::vector<const core::BenchSource*> polybench() {
  std::vector<const core::BenchSource*> out;
  for (const auto& b : all_benchmarks()) {
    if (b.suite == "PolyBenchC") out.push_back(&b);
  }
  return out;
}

std::vector<const core::BenchSource*> chstone() {
  std::vector<const core::BenchSource*> out;
  for (const auto& b : all_benchmarks()) {
    if (b.suite == "CHStone") out.push_back(&b);
  }
  return out;
}

const core::BenchSource* find_benchmark(std::string_view name) {
  for (const auto& b : all_benchmarks()) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

}  // namespace wb::benchmarks
