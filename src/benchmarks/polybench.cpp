// The 30 PolyBenchC 4.2.1 kernels, rewritten in mini-C (see DESIGN.md for
// the subset). Loop structure follows the originals; dataset sizes are
// scaled so interpreted execution stays laptop-fast, selected XS..XL via
// -D defines exactly as PolyBench selects MINI..EXTRALARGE.
#include <map>

#include "benchmarks/polybench.h"

namespace wb::benchmarks {

namespace {

using core::Defines;

/// The shared measurement harness every benchmark links (excluded from
/// the paper's per-benchmark cLOC, like PolyBench's own harness).
constexpr const char* kPrelude = R"(
double __cs;
void cs_add(double v) { __cs += v - floor(v / 1000.0) * 1000.0; }
int cs_result(void) { return (int)__cs; }
)";

std::array<Defines, 5> sizes(std::initializer_list<std::pair<const char*, std::array<int, 5>>> axes) {
  std::array<Defines, 5> out;
  for (size_t i = 0; i < 5; ++i) {
    for (const auto& [name, values] : axes) {
      out[i].emplace_back(name, std::to_string(values[i]));
    }
  }
  return out;
}

core::BenchSource bench(std::string name, std::string body,
                        std::array<Defines, 5> size_defines) {
  // Paper Table 1 descriptions.
  static const std::map<std::string, std::string> kDescriptions = {
      {"covariance", "Covariance computation"},
      {"correlation", "Normalized covariance computation"},
      {"gemm", "Generalized matrix multiplication"},
      {"gemver", "Multiple matrix-vector multiplication"},
      {"gesummv", "Summed matrix-vector multiplication"},
      {"symm", "Symmetric matrix multiplication"},
      {"syrk", "Symmetric rank k update"},
      {"syr2k", "Symmetric rank 2k update"},
      {"trmm", "Triangular matrix multiplication"},
      {"2mm", "Two matrix multiplications"},
      {"3mm", "Three matrix multiplications"},
      {"atax", "A^T times Ax"},
      {"bicg", "Biconjugate gradient stabilization"},
      {"doitgen", "Numerical scientific simulation"},
      {"mvt", "Matrix vector multiplication"},
      {"cholesky", "Matrix decomposition"},
      {"durbin", "Yule-Walker equations solver"},
      {"gramschmidt", "QR Matrix decomposition"},
      {"lu", "LU Matrix decomposition"},
      {"ludcmp", "Linear equations solver"},
      {"trisolv", "Triangular matrix solver"},
      {"deriche", "Edge detection and smoothing filter"},
      {"floyd-warshall", "Shortest paths in graph solver"},
      {"nussinov", "RNA folding prediction"},
      {"adi", "2D heat diffusion simulation"},
      {"fdtd-2d", "Electric and magnetic fields simulation"},
      {"heat-3d", "Heat equation w/ 3D space simulation"},
      {"jacobi-1d", "Jacobi-style stencil computation (1D)"},
      {"jacobi-2d", "Jacobi-style stencil computation (2D)"},
      {"seidel-2d", "Gauss-Seidel stencil computation (2D)"},
  };
  core::BenchSource b;
  b.name = name;
  b.suite = "PolyBenchC";
  const auto it = kDescriptions.find(name);
  if (it != kDescriptions.end()) b.description = it->second;
  b.source = std::string(kPrelude) + body;
  b.size_defines = std::move(size_defines);
  return b;
}

const std::array<int, 5> kCubic = {8, 16, 32, 48, 64};
const std::array<int, 5> kSquare = {16, 40, 180, 350, 500};
const std::array<int, 5> kLinear = {64, 256, 2000, 10000, 30000};
const std::array<int, 5> kSteps = {2, 3, 4, 6, 8};
const std::array<int, 5> kCube3d = {4, 8, 14, 20, 26};

/// Allocation-dimension axis: tracks the compute dimension at XS/S/M, then
/// jumps to PolyBench's real LARGE/EXTRALARGE footprints at L/XL (compute
/// stays on the N-sized sub-region; see DESIGN.md scale note).
std::array<int, 5> na_axis(std::array<int, 5> n, int l, int xl) {
  return {n[0], n[1], n[2], l, xl};
}


}  // namespace

void add_polybench(std::vector<core::BenchSource>& out) {
  // ---------------------------------------------------------- covariance
  out.push_back(bench("covariance", R"(
#define N 24
#define NA N
double data[NA][NA];
double cov[NA][NA];
double mean[NA];
int main(void) {
  int i, j, k;
  double float_n = (double)N;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      data[i][j] = (double)(i * j % 13) / float_n;
  for (j = 0; j < N; j++) {
    mean[j] = 0.0;
    for (i = 0; i < N; i++) mean[j] += data[i][j];
    mean[j] /= float_n;
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      data[i][j] -= mean[j];
  for (i = 0; i < N; i++)
    for (j = i; j < N; j++) {
      cov[i][j] = 0.0;
      for (k = 0; k < N; k++) cov[i][j] += data[k][i] * data[k][j];
      cov[i][j] /= float_n - 1.0;
      cov[j][i] = cov[i][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(cov[i][j] * 50.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // --------------------------------------------------------- correlation
  out.push_back(bench("correlation", R"(
#define N 24
#define NA N
double data[NA][NA];
double corr[NA][NA];
double mean[NA];
double stddev[NA];
int main(void) {
  int i, j, k;
  double float_n = (double)N;
  double eps = 0.1;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      data[i][j] = (double)(i * j % 17) / float_n + 0.5;
  for (j = 0; j < N; j++) {
    mean[j] = 0.0;
    for (i = 0; i < N; i++) mean[j] += data[i][j];
    mean[j] /= float_n;
  }
  for (j = 0; j < N; j++) {
    stddev[j] = 0.0;
    for (i = 0; i < N; i++)
      stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
    stddev[j] /= float_n;
    stddev[j] = sqrt(stddev[j]);
    stddev[j] = stddev[j] <= eps ? 1.0 : stddev[j];
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      data[i][j] -= mean[j];
      data[i][j] /= sqrt(float_n) * stddev[j];
    }
  for (i = 0; i < N - 1; i++) {
    corr[i][i] = 1.0;
    for (j = i + 1; j < N; j++) {
      corr[i][j] = 0.0;
      for (k = 0; k < N; k++) corr[i][j] += data[k][i] * data[k][j];
      corr[j][i] = corr[i][j];
    }
  }
  corr[N - 1][N - 1] = 1.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(corr[i][j] * 100.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // ---------------------------------------------------------------- gemm
  out.push_back(bench("gemm", R"(
#define N 24
#define NA N
double A[NA][NA];
double B[NA][NA];
double C[NA][NA];
int main(void) {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)(i * (j + 1) % N) / N;
      C[i][j] = (double)((i + j) % N) / N;
    }
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) C[i][j] *= beta;
    for (k = 0; k < N; k++)
      for (j = 0; j < N; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(C[i][j] * 10.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // -------------------------------------------------------------- gemver
  out.push_back(bench("gemver", R"(
#define N 32
#define NA N
double A[NA][NA];
double u1[NA]; double v1[NA]; double u2[NA]; double v2[NA];
double w[NA]; double x[NA]; double y[NA]; double z[NA];
int main(void) {
  int i, j;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++) {
    u1[i] = (double)i / N;
    u2[i] = (double)(i + 1) / N / 2.0;
    v1[i] = (double)(i + 1) / N / 4.0;
    v2[i] = (double)(i + 1) / N / 6.0;
    y[i] = (double)(i + 1) / N / 8.0;
    z[i] = (double)(i + 1) / N / 9.0;
    x[i] = 0.0;
    w[i] = 0.0;
    for (j = 0; j < N; j++) A[i][j] = (double)(i * j % N) / N;
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x[i] = x[i] + beta * A[j][i] * y[j];
  for (i = 0; i < N; i++) x[i] = x[i] + z[i];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      w[i] = w[i] + alpha * A[i][j] * x[j];
  for (i = 0; i < N; i++) cs_add(w[i] * 100.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"NA", na_axis(kSquare, 1024, 2048)}})));

  // ------------------------------------------------------------- gesummv
  out.push_back(bench("gesummv", R"(
#define N 32
#define NA N
double A[NA][NA];
double B[NA][NA];
double tmp[NA]; double x[NA]; double y[NA];
int main(void) {
  int i, j;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++) {
    x[i] = (double)(i % N) / N;
    for (j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)((i * j + 2) % N) / N;
    }
  }
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
  for (i = 0; i < N; i++) cs_add(y[i] * 100.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"NA", na_axis(kSquare, 1024, 2048)}})));

  // ---------------------------------------------------------------- symm
  out.push_back(bench("symm", R"(
#define N 24
#define NA N
double A[NA][NA];
double B[NA][NA];
double C[NA][NA];
int main(void) {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  double temp2;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)((i + j) % 100) / N;
      B[i][j] = (double)((N + i - j) % 100) / N;
      C[i][j] = (double)((i * j + 3) % 100) / N;
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      temp2 = 0.0;
      for (k = 0; k < i; k++) {
        C[k][j] += alpha * B[i][j] * A[i][k];
        temp2 += B[k][j] * A[i][k];
      }
      C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i] + alpha * temp2;
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(C[i][j] * 10.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // ---------------------------------------------------------------- syrk
  out.push_back(bench("syrk", R"(
#define N 24
#define NA N
double A[NA][NA];
double C[NA][NA];
int main(void) {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      C[i][j] = (double)((i + j + 2) % N) / N;
    }
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++) C[i][j] *= beta;
    for (k = 0; k < N; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(C[i][j] * 10.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // --------------------------------------------------------------- syr2k
  out.push_back(bench("syr2k", R"(
#define N 24
#define NA N
double A[NA][NA];
double B[NA][NA];
double C[NA][NA];
int main(void) {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)((i * j + 2) % N) / N;
      C[i][j] = (double)((i + j) % N) / N;
    }
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++) C[i][j] *= beta;
    for (k = 0; k < N; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(C[i][j] * 10.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // ---------------------------------------------------------------- trmm
  out.push_back(bench("trmm", R"(
#define N 24
#define NA N
double A[NA][NA];
double B[NA][NA];
int main(void) {
  int i, j, k;
  double alpha = 1.5;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)((i + j) % N) / N;
      B[i][j] = (double)((N + i - j) % N) / N;
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      for (k = i + 1; k < N; k++)
        B[i][j] += A[k][i] * B[k][j];
      B[i][j] = alpha * B[i][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(B[i][j] * 10.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // ----------------------------------------------------------------- 2mm
  out.push_back(bench("2mm", R"(
#define N 24
#define NA N
double A[NA][NA]; double B[NA][NA]; double C[NA][NA]; double D[NA][NA];
double tmp[NA][NA];
int main(void) {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)(i * (j + 1) % N) / N;
      C[i][j] = (double)((i * (j + 3) + 1) % N) / N;
      D[i][j] = (double)(i * (j + 2) % N) / N;
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < N; k++) tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      D[i][j] *= beta;
      for (k = 0; k < N; k++) D[i][j] += tmp[i][k] * C[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(D[i][j] * 10.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // ----------------------------------------------------------------- 3mm
  out.push_back(bench("3mm", R"(
#define N 24
#define NA N
double A[NA][NA]; double B[NA][NA]; double C[NA][NA]; double D[NA][NA];
double E[NA][NA]; double F[NA][NA]; double G[NA][NA];
int main(void) {
  int i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / (5.0 * N);
      B[i][j] = (double)((i * (j + 1) + 2) % N) / (5.0 * N);
      C[i][j] = (double)(i * (j + 3) % N) / (5.0 * N);
      D[i][j] = (double)((i * (j + 2) + 2) % N) / (5.0 * N);
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      E[i][j] = 0.0;
      for (k = 0; k < N; k++) E[i][j] += A[i][k] * B[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      F[i][j] = 0.0;
      for (k = 0; k < N; k++) F[i][j] += C[i][k] * D[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      G[i][j] = 0.0;
      for (k = 0; k < N; k++) G[i][j] += E[i][k] * F[k][j];
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(G[i][j] * 1000.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 896, 1792)}})));

  // ---------------------------------------------------------------- atax
  out.push_back(bench("atax", R"(
#define N 32
#define NA N
double A[NA][NA];
double x[NA]; double y[NA]; double tmp[NA];
int main(void) {
  int i, j;
  for (i = 0; i < N; i++) {
    x[i] = 1.0 + (double)i / N;
    for (j = 0; j < N; j++)
      A[i][j] = (double)((i + j) % N) / (5.0 * N);
  }
  for (i = 0; i < N; i++) y[i] = 0.0;
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < N; j++) tmp[i] = tmp[i] + A[i][j] * x[j];
    for (j = 0; j < N; j++) y[j] = y[j] + A[i][j] * tmp[i];
  }
  for (i = 0; i < N; i++) cs_add(y[i] * 100.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"NA", na_axis(kSquare, 1024, 2048)}})));

  // ---------------------------------------------------------------- bicg
  out.push_back(bench("bicg", R"(
#define N 32
#define NA N
double A[NA][NA];
double s[NA]; double q[NA]; double p[NA]; double r[NA];
int main(void) {
  int i, j;
  for (i = 0; i < N; i++) {
    p[i] = (double)(i % N) / N;
    r[i] = (double)(i % N) / N;
    for (j = 0; j < N; j++)
      A[i][j] = (double)(i * (j + 1) % N) / N;
  }
  for (i = 0; i < N; i++) s[i] = 0.0;
  for (i = 0; i < N; i++) {
    q[i] = 0.0;
    for (j = 0; j < N; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
  for (i = 0; i < N; i++) cs_add(s[i] * 10.0 + q[i] * 10.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"NA", na_axis(kSquare, 1024, 2048)}})));

  // ------------------------------------------------------------- doitgen
  out.push_back(bench("doitgen", R"(
#define N 14
#define NA N
double A[NA][NA][NA];
double C4[NA][NA];
double sum[NA];
int main(void) {
  int r, q, p, s;
  for (r = 0; r < N; r++)
    for (q = 0; q < N; q++)
      for (p = 0; p < N; p++)
        A[r][q][p] = (double)((r * q + p) % N) / N;
  for (s = 0; s < N; s++)
    for (p = 0; p < N; p++)
      C4[s][p] = (double)(s * p % N) / N;
  for (r = 0; r < N; r++)
    for (q = 0; q < N; q++) {
      for (p = 0; p < N; p++) {
        sum[p] = 0.0;
        for (s = 0; s < N; s++) sum[p] += A[r][q][s] * C4[s][p];
      }
      for (p = 0; p < N; p++) A[r][q][p] = sum[p];
    }
  for (r = 0; r < N; r++)
    for (q = 0; q < N; q++)
      for (p = 0; p < N; p++) cs_add(A[r][q][p] * 10.0);
  return cs_result();
}
)", sizes({{"N", {6, 10, 16, 22, 28}}, {"NA", na_axis({6, 10, 16, 22, 28}, 108, 170)}})));

  // ----------------------------------------------------------------- mvt
  out.push_back(bench("mvt", R"(
#define N 32
#define NA N
double A[NA][NA];
double x1[NA]; double x2[NA]; double y1[NA]; double y2[NA];
int main(void) {
  int i, j;
  for (i = 0; i < N; i++) {
    x1[i] = (double)(i % N) / N;
    x2[i] = (double)((i + 1) % N) / N;
    y1[i] = (double)((i + 3) % N) / N;
    y2[i] = (double)((i + 4) % N) / N;
    for (j = 0; j < N; j++)
      A[i][j] = (double)(i * j % N) / N;
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x1[i] = x1[i] + A[i][j] * y1[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
  for (i = 0; i < N; i++) cs_add(x1[i] * 100.0 + x2[i] * 100.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"NA", na_axis(kSquare, 1024, 2048)}})));

  // ------------------------------------------------------------ cholesky
  out.push_back(bench("cholesky", R"(
#define N 24
#define NA N
double A[NA][NA];
int main(void) {
  int i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = i == j ? (double)N + 2.0 : 1.0 / (double)(i + j + 2);
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[j][k];
      A[i][j] /= A[j][j];
    }
    for (k = 0; k < i; k++)
      A[i][i] -= A[i][k] * A[i][k];
    A[i][i] = sqrt(A[i][i]);
  }
  for (i = 0; i < N; i++)
    for (j = 0; j <= i; j++) cs_add(A[i][j] * 100.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // -------------------------------------------------------------- durbin
  out.push_back(bench("durbin", R"(
#define N 200
#define NA N
double r[NA];
double y[NA];
double z[NA];
int main(void) {
  int i, k;
  double alpha, beta, sum;
  for (i = 0; i < N; i++) r[i] = 0.5 / (double)(i + 2);
  y[0] = -r[0];
  beta = 1.0;
  alpha = -r[0];
  for (k = 1; k < N; k++) {
    beta = (1.0 - alpha * alpha) * beta;
    sum = 0.0;
    for (i = 0; i < k; i++)
      sum += r[k - i - 1] * y[i];
    alpha = -(r[k] + sum) / beta;
    for (i = 0; i < k; i++)
      z[i] = y[i] + alpha * y[k - i - 1];
    for (i = 0; i < k; i++)
      y[i] = z[i];
    y[k] = alpha;
  }
  for (i = 0; i < N; i++) cs_add(y[i] * 1000.0);
  return cs_result();
}
)", sizes({{"N", {32, 64, 300, 700, 1200}}, {"NA", na_axis({32, 64, 300, 700, 1200}, 1500000, 6000000)}})));

  // --------------------------------------------------------- gramschmidt
  out.push_back(bench("gramschmidt", R"(
#define N 24
#define NA N
double A[NA][NA];
double R[NA][NA];
double Q[NA][NA];
int main(void) {
  int i, j, k;
  double nrm;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = ((double)((i * j) % N) / N) * 10.0 + 1.0 + (i == j ? 10.0 : 0.0);
      Q[i][j] = 0.0;
      R[i][j] = 0.0;
    }
  for (k = 0; k < N; k++) {
    nrm = 0.0;
    for (i = 0; i < N; i++)
      nrm += A[i][k] * A[i][k];
    R[k][k] = sqrt(nrm);
    for (i = 0; i < N; i++)
      Q[i][k] = A[i][k] / R[k][k];
    for (j = k + 1; j < N; j++) {
      R[k][j] = 0.0;
      for (i = 0; i < N; i++)
        R[k][j] += Q[i][k] * A[i][j];
      for (i = 0; i < N; i++)
        A[i][j] = A[i][j] - Q[i][k] * R[k][j];
    }
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(R[i][j] * 10.0 + Q[i][j] * 10.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 896, 1792)}})));

  // ------------------------------------------------------------------ lu
  out.push_back(bench("lu", R"(
#define N 24
#define NA N
double A[NA][NA];
int main(void) {
  int i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = i == j ? (double)N * 2.0 : 1.0 / (double)(i + j + 2);
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[k][j];
      A[i][j] /= A[j][j];
    }
    for (j = i; j < N; j++)
      for (k = 0; k < i; k++)
        A[i][j] -= A[i][k] * A[k][j];
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(A[i][j] * 100.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // -------------------------------------------------------------- ludcmp
  out.push_back(bench("ludcmp", R"(
#define N 24
#define NA N
double A[NA][NA];
double b[NA]; double x[NA]; double y[NA];
int main(void) {
  int i, j, k;
  double w;
  for (i = 0; i < N; i++) {
    b[i] = (double)(i + 1) / (double)N / 2.0 + 4.0;
    x[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++)
      A[i][j] = i == j ? (double)N * 2.0 : 1.0 / (double)(i + j + 2);
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      w = A[i][j];
      for (k = 0; k < j; k++) w -= A[i][k] * A[k][j];
      A[i][j] = w / A[j][j];
    }
    for (j = i; j < N; j++) {
      w = A[i][j];
      for (k = 0; k < i; k++) w -= A[i][k] * A[k][j];
      A[i][j] = w;
    }
  }
  for (i = 0; i < N; i++) {
    w = b[i];
    for (j = 0; j < i; j++) w -= A[i][j] * y[j];
    y[i] = w;
  }
  for (i = N - 1; i >= 0; i--) {
    w = y[i];
    for (j = i + 1; j < N; j++) w -= A[i][j] * x[j];
    x[i] = w / A[i][i];
  }
  for (i = 0; i < N; i++) cs_add(x[i] * 1000.0);
  return cs_result();
}
)", sizes({{"N", kCubic}, {"NA", na_axis(kCubic, 1024, 2048)}})));

  // ------------------------------------------------------------- trisolv
  out.push_back(bench("trisolv", R"(
#define N 200
#define NA N
double L[NA][NA];
double x[NA]; double b[NA];
int main(void) {
  int i, j;
  for (i = 0; i < N; i++) {
    b[i] = (double)i / N;
    for (j = 0; j <= i; j++)
      L[i][j] = i == j ? 2.0 : (double)(i + N - j + 1) * 2.0 / N / (double)N;
  }
  for (i = 0; i < N; i++) {
    x[i] = b[i];
    for (j = 0; j < i; j++)
      x[i] -= L[i][j] * x[j];
    x[i] = x[i] / L[i][i];
  }
  for (i = 0; i < N; i++) cs_add(x[i] * 1000.0);
  return cs_result();
}
)", sizes({{"N", {24, 48, 200, 400, 600}}, {"NA", na_axis({24, 48, 200, 400, 600}, 1024, 2048)}})));

  // ------------------------------------------------------------- deriche
  out.push_back(bench("deriche", R"(
#define N 32
#define NA N
double imgIn[NA][NA];
double imgOut[NA][NA];
double y1a[NA][NA];
double y2a[NA][NA];
int main(void) {
  int i, j;
  double alpha = 0.25;
  double k;
  double a1, a2, a3, a4, b1, b2, c1;
  double ym1, ym2, xm1, tp1, tp2;

  k = (1.0 - exp(-alpha)) * (1.0 - exp(-alpha)) /
      (1.0 + 2.0 * alpha * exp(-alpha) - exp(2.0 * alpha));
  a1 = k;
  a2 = k * exp(-alpha) * (alpha - 1.0);
  a3 = k * exp(-alpha) * (alpha + 1.0);
  a4 = -k * exp(-2.0 * alpha);
  b1 = pow(2.0, -alpha);
  b2 = -exp(-2.0 * alpha);
  c1 = 1.0;

  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      imgIn[i][j] = (double)((313 * i + 991 * j) % 65536) / 65535.0;

  for (i = 0; i < N; i++) {
    ym1 = 0.0;
    ym2 = 0.0;
    xm1 = 0.0;
    for (j = 0; j < N; j++) {
      y1a[i][j] = a1 * imgIn[i][j] + a2 * xm1 + b1 * ym1 + b2 * ym2;
      xm1 = imgIn[i][j];
      ym2 = ym1;
      ym1 = y1a[i][j];
    }
  }
  for (i = 0; i < N; i++) {
    tp1 = 0.0;
    tp2 = 0.0;
    ym1 = 0.0;
    ym2 = 0.0;
    for (j = N - 1; j >= 0; j--) {
      y2a[i][j] = a3 * tp1 + a4 * tp2 + b1 * ym1 + b2 * ym2;
      tp2 = tp1;
      tp1 = imgIn[i][j];
      ym2 = ym1;
      ym1 = y2a[i][j];
    }
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      imgOut[i][j] = c1 * (y1a[i][j] + y2a[i][j]);
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(imgOut[i][j] * 1000.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"NA", na_axis(kSquare, 896, 1792)}})));

  // ------------------------------------------------------ floyd-warshall
  out.push_back(bench("floyd-warshall", R"(
#define N 24
#define NA N
int path[NA][NA];
int main(void) {
  int i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      path[i][j] = i * j % 7 + 1;
      if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0)
        path[i][j] = 999;
    }
  for (k = 0; k < N; k++)
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        path[i][j] = path[i][j] < path[i][k] + path[k][j]
                         ? path[i][j]
                         : path[i][k] + path[k][j];
  int s = 0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) s = (s + path[i][j] * (i + j + 1)) % 1000000;
  return s;
}
)", sizes({{"N", {8, 16, 32, 52, 72}}, {"NA", na_axis({8, 16, 32, 52, 72}, 2048, 4096)}})));

  // ------------------------------------------------------------ nussinov
  out.push_back(bench("nussinov", R"(
#define N 32
#define NA N
int seq[NA];
int table[NA][NA];
int main(void) {
  int i, j, k;
  for (i = 0; i < N; i++) seq[i] = (i + 1) % 4;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) table[i][j] = 0;
  for (i = N - 1; i >= 0; i--) {
    for (j = i + 1; j < N; j++) {
      if (j - 1 >= 0)
        table[i][j] = table[i][j] >= table[i][j - 1] ? table[i][j] : table[i][j - 1];
      if (i + 1 < N)
        table[i][j] = table[i][j] >= table[i + 1][j] ? table[i][j] : table[i + 1][j];
      if (j - 1 >= 0 && i + 1 < N) {
        if (i < j - 1) {
          int match = seq[i] + seq[j] == 3 ? 1 : 0;
          int cand = table[i + 1][j - 1] + match;
          table[i][j] = table[i][j] >= cand ? table[i][j] : cand;
        } else {
          table[i][j] = table[i][j] >= table[i + 1][j - 1] ? table[i][j]
                                                           : table[i + 1][j - 1];
        }
      }
      for (k = i + 1; k < j; k++) {
        int cand2 = table[i][k] + table[k + 1][j];
        table[i][j] = table[i][j] >= cand2 ? table[i][j] : cand2;
      }
    }
  }
  int s = 0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) s = (s + table[i][j] * (i + 1)) % 1000000;
  return s;
}
)", sizes({{"N", {12, 24, 48, 80, 112}}, {"NA", na_axis({12, 24, 48, 80, 112}, 2048, 4096)}})));

  // ----------------------------------------------------------------- adi
  out.push_back(bench("adi", R"(
#define N 24
#define NA N
#define TSTEPS 2
double u[NA][NA];
double v[NA][NA];
double p[NA][NA];
double q[NA][NA];
int main(void) {
  int t, i, j;
  double DX, DY, DT, B1, B2, mul1, mul2, a, b, c, d, e, f;
  DX = 1.0 / (double)N;
  DY = 1.0 / (double)N;
  DT = 1.0 / (double)TSTEPS;
  B1 = 2.0;
  B2 = 1.0;
  mul1 = B1 * DT / (DX * DX);
  mul2 = B2 * DT / (DY * DY);
  a = -mul1 / 2.0;
  b = 1.0 + mul1;
  c = a;
  d = -mul2 / 2.0;
  e = 1.0 + mul2;
  f = d;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      u[i][j] = (double)(i + N - j) / N;
  for (t = 1; t <= TSTEPS; t++) {
    for (i = 1; i < N - 1; i++) {
      v[0][i] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = v[0][i];
      for (j = 1; j < N - 1; j++) {
        p[i][j] = -c / (a * p[i][j - 1] + b);
        q[i][j] = (-d * u[j][i - 1] + (1.0 + 2.0 * d) * u[j][i] -
                   f * u[j][i + 1] - a * q[i][j - 1]) /
                  (a * p[i][j - 1] + b);
      }
      v[N - 1][i] = 1.0;
      for (j = N - 2; j >= 1; j--)
        v[j][i] = p[i][j] * v[j + 1][i] + q[i][j];
    }
    for (i = 1; i < N - 1; i++) {
      u[i][0] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = u[i][0];
      for (j = 1; j < N - 1; j++) {
        p[i][j] = -f / (d * p[i][j - 1] + e);
        q[i][j] = (-a * v[i - 1][j] + (1.0 + 2.0 * a) * v[i][j] -
                   c * v[i + 1][j] - d * q[i][j - 1]) /
                  (d * p[i][j - 1] + e);
      }
      u[i][N - 1] = 1.0;
      for (j = N - 2; j >= 1; j--)
        u[i][j] = p[i][j] * u[i][j + 1] + q[i][j];
    }
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(u[i][j] * 100.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"TSTEPS", kSteps}, {"NA", na_axis(kSquare, 896, 1792)}})));

  // ------------------------------------------------------------- fdtd-2d
  out.push_back(bench("fdtd-2d", R"(
#define N 32
#define NA N
#define TSTEPS 3
double ex[NA][NA];
double ey[NA][NA];
double hz[NA][NA];
double fict[TSTEPS];
int main(void) {
  int t, i, j;
  for (t = 0; t < TSTEPS; t++) fict[t] = (double)t;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      ex[i][j] = (double)(i * (j + 1)) / N;
      ey[i][j] = (double)(i * (j + 2)) / N;
      hz[i][j] = (double)(i * (j + 3)) / N;
    }
  for (t = 0; t < TSTEPS; t++) {
    for (j = 0; j < N; j++) ey[0][j] = fict[t];
    for (i = 1; i < N; i++)
      for (j = 0; j < N; j++)
        ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
    for (i = 0; i < N; i++)
      for (j = 1; j < N; j++)
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
    for (i = 0; i < N - 1; i++)
      for (j = 0; j < N - 1; j++)
        hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] +
                                     ey[i + 1][j] - ey[i][j]);
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(hz[i][j] * 10.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"TSTEPS", kSteps}, {"NA", na_axis(kSquare, 1024, 2048)}})));

  // ------------------------------------------------------------- heat-3d
  out.push_back(bench("heat-3d", R"(
#define N 10
#define NA N
#define TSTEPS 3
double A[NA][NA][NA];
double B[NA][NA][NA];
int main(void) {
  int t, i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++) {
        A[i][j][k] = (double)(i + j + (N - k)) * 10.0 / N;
        B[i][j][k] = A[i][j][k];
      }
  for (t = 1; t <= TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++)
          B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k] + A[i - 1][j][k]) +
                       0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k] + A[i][j - 1][k]) +
                       0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k] + A[i][j][k - 1]) +
                       A[i][j][k];
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++)
          A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2.0 * B[i][j][k] + B[i - 1][j][k]) +
                       0.125 * (B[i][j + 1][k] - 2.0 * B[i][j][k] + B[i][j - 1][k]) +
                       0.125 * (B[i][j][k + 1] - 2.0 * B[i][j][k] + B[i][j][k - 1]) +
                       B[i][j][k];
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++) cs_add(A[i][j][k] * 10.0);
  return cs_result();
}
)", sizes({{"N", kCube3d}, {"TSTEPS", kSteps}, {"NA", na_axis(kCube3d, 108, 172)}})));

  // ----------------------------------------------------------- jacobi-1d
  out.push_back(bench("jacobi-1d", R"(
#define N 200
#define NA N
#define TSTEPS 3
double A[NA];
double B[NA];
int main(void) {
  int t, i;
  for (i = 0; i < N; i++) {
    A[i] = ((double)i + 2.0) / N;
    B[i] = ((double)i + 3.0) / N;
  }
  for (t = 0; t < TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    for (i = 1; i < N - 1; i++)
      A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
  }
  for (i = 0; i < N; i++) cs_add(A[i] * 1000.0);
  return cs_result();
}
)", sizes({{"N", kLinear}, {"TSTEPS", {2, 3, 4, 6, 8}}, {"NA", na_axis(kLinear, 1500000, 6000000)}})));

  // ----------------------------------------------------------- jacobi-2d
  out.push_back(bench("jacobi-2d", R"(
#define N 32
#define NA N
#define TSTEPS 3
double A[NA][NA];
double B[NA][NA];
int main(void) {
  int t, i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)i * (j + 2) / N;
      B[i][j] = (double)i * (j + 3) / N;
    }
  for (t = 0; t < TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] +
                         A[i + 1][j] + A[i - 1][j]);
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][j + 1] +
                         B[i + 1][j] + B[i - 1][j]);
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(A[i][j] * 100.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"TSTEPS", kSteps}, {"NA", na_axis(kSquare, 1024, 2048)}})));

  // ----------------------------------------------------------- seidel-2d
  out.push_back(bench("seidel-2d", R"(
#define N 32
#define NA N
#define TSTEPS 3
double A[NA][NA];
int main(void) {
  int t, i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = ((double)i * (j + 2) + 2.0) / N;
  for (t = 0; t < TSTEPS; t++)
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1] +
                   A[i][j - 1] + A[i][j] + A[i][j + 1] +
                   A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(A[i][j] * 100.0);
  return cs_result();
}
)", sizes({{"N", kSquare}, {"TSTEPS", kSteps}, {"NA", na_axis(kSquare, 1448, 2896)}})));
}

}  // namespace wb::benchmarks
