#include "benchmarks/realworld.h"

#include "backend/js_backend.h"
#include "core/study.h"
#include "wasm/codec.h"
#include "backend/wasm_backend.h"
#include "ir/passes.h"
#include "js/engine.h"
#include "minic/minic.h"
#include "wasm/builder.h"

namespace wb::benchmarks {

namespace {

using wasm::Opcode;
using wasm::ValType;

// ========================================================== Long.js

// The JS implementation: 16-bit limb arithmetic, structured like the real
// long.js (makeLong/fromInt/mul with four limb products, division by
// float approximation — the source of Table 12's DIV counts).
constexpr const char* kLongJsLibrary = R"(
function makeLong(lo, hi) { return {lo: lo | 0, hi: hi | 0}; }
function fromInt(v) { return makeLong(v, v < 0 ? -1 : 0); }
function fromNumber(v) {
  if (v < 0) return neg64(fromNumber(-v));
  return makeLong((v % 4294967296) | 0, (v / 4294967296) | 0);
}
function toNumber(a) { return a.hi * 4294967296 + (a.lo >>> 0); }
function isNegative(a) { return a.hi < 0; }
function isZero(a) { return a.lo == 0 && a.hi == 0; }
function neg64(a) {
  var lo = (~a.lo + 1) | 0;
  var hi = (~a.hi + (lo == 0 ? 1 : 0)) | 0;
  return makeLong(lo, hi);
}
function add64(a, b) {
  var a48 = a.hi >>> 16, a32 = a.hi & 0xffff, a16 = a.lo >>> 16, a00 = a.lo & 0xffff;
  var b48 = b.hi >>> 16, b32 = b.hi & 0xffff, b16 = b.lo >>> 16, b00 = b.lo & 0xffff;
  var c00 = a00 + b00;
  var c16 = a16 + b16 + (c00 >>> 16);
  var c32 = a32 + b32 + (c16 >>> 16);
  var c48 = a48 + b48 + (c32 >>> 16);
  return makeLong(((c16 & 0xffff) << 16) | (c00 & 0xffff),
                  ((c48 & 0xffff) << 16) | (c32 & 0xffff));
}
function sub64(a, b) { return add64(a, neg64(b)); }
function mul64(a, b) {
  var a48 = a.hi >>> 16, a32 = a.hi & 0xffff, a16 = a.lo >>> 16, a00 = a.lo & 0xffff;
  var b48 = b.hi >>> 16, b32 = b.hi & 0xffff, b16 = b.lo >>> 16, b00 = b.lo & 0xffff;
  var c48 = 0, c32 = 0, c16 = 0, c00 = 0;
  c00 += a00 * b00;
  c16 += c00 >>> 16;
  c00 &= 0xffff;
  c16 += a16 * b00;
  c32 += c16 >>> 16;
  c16 &= 0xffff;
  c16 += a00 * b16;
  c32 += c16 >>> 16;
  c16 &= 0xffff;
  c32 += a32 * b00;
  c48 += c32 >>> 16;
  c32 &= 0xffff;
  c32 += a16 * b16;
  c48 += c32 >>> 16;
  c32 &= 0xffff;
  c32 += a00 * b32;
  c48 += c32 >>> 16;
  c32 &= 0xffff;
  c48 += a48 * b00 + a32 * b16 + a16 * b32 + a00 * b48;
  c48 &= 0xffff;
  return makeLong(((c16 & 0xffff) << 16) | c00, (c48 << 16) | (c32 & 0xffff));
}
function geU(a, b) { return toNumber(a) >= toNumber(b); }
function gtU(a, b) { return toNumber(a) > toNumber(b); }
function div64(a, b) {
  var negate = isNegative(a) != isNegative(b);
  var ua = isNegative(a) ? neg64(a) : a;
  var ub = isNegative(b) ? neg64(b) : b;
  var rem = ua;
  var res = makeLong(0, 0);
  while (geU(rem, ub)) {
    var approx = Math.floor(toNumber(rem) / toNumber(ub));
    if (approx < 1) approx = 1;
    var approxRes = fromNumber(approx);
    var approxRem = mul64(approxRes, ub);
    while (gtU(approxRem, rem)) {
      approx = approx - 1;
      approxRes = fromNumber(approx);
      approxRem = mul64(approxRes, ub);
    }
    if (isZero(approxRes)) approxRes = makeLong(1, 0);
    res = add64(res, approxRes);
    rem = sub64(rem, approxRem);
  }
  if (negate) return neg64(res);
  return res;
}
function mod64(a, b) { return sub64(a, mul64(div64(a, b), b)); }
)";

std::string longjs_main(const std::string& op, int lhs, int rhs) {
  std::string body;
  if (op == "mul") {
    body = "r = mul64(a, b);";
  } else if (op == "div") {
    body = "r = div64(a, b);";
  } else {
    body = "r = mod64(a, b);";
  }
  return std::string(kLongJsLibrary) + R"(
function main() {
  var cs = 0;
  var r;
  for (var i = 0; i < 10000; i++) {
    var a = fromInt()" + std::to_string(lhs) + R"();
    var b = fromInt()" + std::to_string(rhs) + R"();
    )" + body + R"(
    cs = (cs ^ r.lo ^ r.hi) | 0;
  }
  return cs;
}
)";
}

/// Builds the Wasm Long module for one operation: per iteration it
/// composes both operands from i32 halves (shl+or), applies the native
/// i64 op, and decomposes the result (shr) — the WAT shape that gives the
/// paper's Table 12 Wasm counts (10k op, 30k SHIFT, 20k OR).
wasm::Module longjs_wasm_module(Opcode i64_op, int32_t lhs, int32_t rhs) {
  wasm::ModuleBuilder mb;
  auto init = mb.define(wasm::FuncType{{}, {}}, "__init");
  init.finish("__init");

  auto f = mb.define(wasm::FuncType{{}, {ValType::I32}}, "main");
  const uint32_t i = f.add_local(ValType::I32);
  const uint32_t acc = f.add_local(ValType::I64);
  const uint32_t a = f.add_local(ValType::I64);
  const uint32_t b = f.add_local(ValType::I64);
  f.block().loop();
  // while (i < 10000)
  f.local_get(i).i32(10000).op(Opcode::I32GeS).br_if(1);
  // a = (i64)hi(lhs) << 32 | (u64)lo(lhs)
  f.i32(lhs < 0 ? -1 : 0).op(Opcode::I64ExtendI32S).i64(32).op(Opcode::I64Shl);
  f.i32(lhs).op(Opcode::I64ExtendI32U).op(Opcode::I64Or);
  f.local_set(a);
  f.i32(rhs < 0 ? -1 : 0).op(Opcode::I64ExtendI32S).i64(32).op(Opcode::I64Shl);
  f.i32(rhs).op(Opcode::I64ExtendI32U).op(Opcode::I64Or);
  f.local_set(b);
  // acc ^= (a OP b) >> shifted mix
  f.local_get(acc);
  f.local_get(a).local_get(b).op(i64_op);
  f.op(Opcode::I64Xor);
  f.i64(1).op(Opcode::I64ShrU);
  f.local_set(acc);
  f.local_get(i).i32(1).op(Opcode::I32Add).local_set(i);
  f.br(0);
  f.end().end();
  f.local_get(acc).op(Opcode::I32WrapI64);
  f.finish("main");
  return mb.take();
}

// ====================================================== Hyphenopoly

/// Knuth–Liang-lite hyphenation in mini-C. SEED selects the "language"
/// (pattern set); the text is ~18 KB of synthetic words.
constexpr const char* kHyphenC = R"(
#define SEED 12345
#define TEXTLEN 18432
#define NPAT 96
unsigned char text[TEXTLEN];
unsigned char pat[NPAT][4];
int patlen[NPAT];
int patw[NPAT];
int patpos[NPAT];
int weights[32];
unsigned rng;

unsigned next_rand(void) {
  rng = rng * 1664525 + 1013904223;
  return rng >> 16;
}

int main(void) {
  int i, j, p, k;
  rng = SEED;
  for (p = 0; p < NPAT; p++) {
    patlen[p] = 2 + (int)(next_rand() % 3);
    for (k = 0; k < patlen[p]; k++)
      pat[p][k] = 97 + (next_rand() % 6);
    patw[p] = 1 + (int)(next_rand() % 5);
    patpos[p] = (int)(next_rand() % (unsigned)patlen[p]);
  }
  i = 0;
  while (i < TEXTLEN) {
    int wl = 3 + (int)(next_rand() % 10);
    for (j = 0; j < wl && i < TEXTLEN; j++) {
      text[i] = 97 + (next_rand() % 6);
      i++;
    }
    if (i < TEXTLEN) { text[i] = 32; i++; }
  }
  int hyphens = 0;
  int cs = 0;
  int wstart = 0;
  for (i = 0; i <= TEXTLEN; i++) {
    int at_break = i == TEXTLEN || text[i] == 32;
    if (!at_break) continue;
    int wlen = i - wstart;
    if (wlen >= 4 && wlen < 32) {
      for (k = 0; k < wlen; k++) weights[k] = 0;
      for (p = 0; p < NPAT; p++) {
        int pl = patlen[p];
        for (j = 0; j + pl <= wlen; j++) {
          int match = 1;
          for (k = 0; k < pl; k++) {
            if (text[wstart + j + k] != pat[p][k]) { match = 0; break; }
          }
          if (match) {
            int pos = j + patpos[p];
            if (patw[p] > weights[pos]) weights[pos] = patw[p];
          }
        }
      }
      for (k = 2; k < wlen - 1; k++) {
        if (weights[k] % 2 == 1) {
          hyphens++;
          cs = (cs + k * 31 + hyphens) % 1000000007;
        }
      }
    }
    wstart = i + 1;
  }
  return (cs + hyphens) % 1000000007;
}
)";

/// The hand-written JS implementation (same algorithm, same seeds).
constexpr const char* kHyphenJs = R"(
var TEXTLEN = 18432;
var NPAT = 96;
var rng = 0;
function nextRand() {
  rng = (Math.imul(rng, 1664525) + 1013904223) | 0;
  return (rng >>> 16);
}
function main() {
  rng = SEED_VALUE;
  var pat = [], patlen = [], patw = [], patpos = [];
  var p, k, i, j;
  for (p = 0; p < NPAT; p++) {
    var pl = 2 + (nextRand() % 3);
    patlen.push(pl);
    var cs0 = [];
    for (k = 0; k < pl; k++) cs0.push(97 + (nextRand() % 6));
    pat.push(cs0);
    patw.push(1 + (nextRand() % 5));
    patpos.push(nextRand() % pl);
  }
  var text = new Uint8Array(TEXTLEN);
  i = 0;
  while (i < TEXTLEN) {
    var wl = 3 + (nextRand() % 10);
    for (j = 0; j < wl && i < TEXTLEN; j++) {
      text[i] = 97 + (nextRand() % 6);
      i++;
    }
    if (i < TEXTLEN) { text[i] = 32; i++; }
  }
  var hyphens = 0;
  var cs = 0;
  var wstart = 0;
  var weights = [];
  for (k = 0; k < 32; k++) weights.push(0);
  for (i = 0; i <= TEXTLEN; i++) {
    var atBreak = i == TEXTLEN || text[i] == 32;
    if (!atBreak) continue;
    var wlen = i - wstart;
    if (wlen >= 4 && wlen < 32) {
      for (k = 0; k < wlen; k++) weights[k] = 0;
      for (p = 0; p < NPAT; p++) {
        var pl2 = patlen[p];
        for (j = 0; j + pl2 <= wlen; j++) {
          var match = 1;
          for (k = 0; k < pl2; k++) {
            if (text[wstart + j + k] != pat[p][k]) { match = 0; break; }
          }
          if (match) {
            var pos = j + patpos[p];
            if (patw[p] > weights[pos]) weights[pos] = patw[p];
          }
        }
      }
      for (k = 2; k < wlen - 1; k++) {
        if (weights[k] % 2 == 1) {
          hyphens++;
          cs = (cs + k * 31 + hyphens) % 1000000007;
        }
      }
    }
    wstart = i + 1;
  }
  return (cs + hyphens) % 1000000007;
}
)";

// =========================================================== FFmpeg

/// The transcode kernel in mini-C: per frame, synthesize pixels, 3x3 blur,
/// quantize, and run-length scan. FBEGIN/FEND select a worker's slice.
constexpr const char* kTranscodeC = R"(
#define NFRAMES 32
#define FBEGIN 0
#define FEND NFRAMES
#define W 64
#define H 64
unsigned char frame[H][W];
unsigned char blurred[H][W];
unsigned rng;

unsigned next_rand(void) {
  rng = rng * 1664525 + 1013904223;
  return rng >> 16;
}

int transcode_frame(int f) {
  int x, y;
  rng = (unsigned)f * 2654435761;
  for (y = 0; y < H; y++)
    for (x = 0; x < W; x++)
      frame[y][x] = next_rand() & 0xff;
  for (y = 1; y < H - 1; y++)
    for (x = 1; x < W - 1; x++) {
      int sum = frame[y - 1][x - 1] + frame[y - 1][x] + frame[y - 1][x + 1] +
                frame[y][x - 1] + frame[y][x] + frame[y][x + 1] +
                frame[y + 1][x - 1] + frame[y + 1][x] + frame[y + 1][x + 1];
      blurred[y][x] = (sum / 9) & 0xf0;
    }
  int runs = 0;
  int cs = 0;
  for (y = 1; y < H - 1; y++) {
    int prev = -1;
    for (x = 1; x < W - 1; x++) {
      if (blurred[y][x] != prev) {
        runs++;
        prev = blurred[y][x];
      }
      cs = (cs + blurred[y][x] * (x + y)) % 1000000007;
    }
  }
  return (cs ^ runs) & 0x7fffffff;
}

int main(void) {
  int f;
  int cs = 0;
  for (f = FBEGIN; f < FEND; f++)
    cs = cs ^ transcode_frame(f);
  return cs;
}
)";

/// The single-threaded hand-written JS transcode (the node-ffmpeg role).
constexpr const char* kTranscodeJs = R"(
var NFRAMES = 32;
var W = 64, H = 64;
var rng = 0;
function nextRand() {
  rng = (Math.imul(rng, 1664525) + 1013904223) | 0;
  return rng >>> 16;
}
var frame = new Uint8Array(W * H);
var blurred = new Uint8Array(W * H);
function transcodeFrame(f) {
  var x, y;
  rng = Math.imul(f, 2654435761) | 0;
  for (y = 0; y < H; y++)
    for (x = 0; x < W; x++)
      frame[y * W + x] = nextRand() & 0xff;
  for (y = 1; y < H - 1; y++)
    for (x = 1; x < W - 1; x++) {
      var sum = frame[(y - 1) * W + x - 1] + frame[(y - 1) * W + x] + frame[(y - 1) * W + x + 1] +
                frame[y * W + x - 1] + frame[y * W + x] + frame[y * W + x + 1] +
                frame[(y + 1) * W + x - 1] + frame[(y + 1) * W + x] + frame[(y + 1) * W + x + 1];
      blurred[y * W + x] = ((sum / 9) | 0) & 0xf0;
    }
  var runs = 0;
  var cs = 0;
  for (y = 1; y < H - 1; y++) {
    var prev = -1;
    for (x = 1; x < W - 1; x++) {
      if (blurred[y * W + x] != prev) {
        runs++;
        prev = blurred[y * W + x];
      }
      cs = (cs + blurred[y * W + x] * (x + y)) % 1000000007;
    }
  }
  return (cs ^ runs) & 0x7fffffff;
}
function main() {
  var cs = 0;
  for (var f = 0; f < NFRAMES; f++)
    cs = cs ^ transcodeFrame(f);
  return cs;
}
)";

/// Compiles mini-C at -O2 to a Wasm artifact.
backend::WasmArtifact compile_c(const char* source, core::Defines defines,
                                std::string& error) {
  minic::CompileOptions opts;
  opts.defines = std::move(defines);
  auto m = minic::compile(source, opts, error);
  if (!m) return {};
  const ir::PipelineInfo info = ir::run_pipeline(*m, ir::OptLevel::O2);
  backend::WasmOptions wopts;
  wopts.fast_math = info.fast_math;
  return backend::compile_to_wasm(std::move(*m), wopts);
}

RealWorldRow longjs_row(const env::BrowserEnv& browser, const std::string& op,
                        Opcode wasm_op, int lhs, int rhs, const std::string& input) {
  RealWorldRow row;
  row.benchmark = "Long.js";
  row.experiment = op;
  row.input = input;

  backend::WasmArtifact artifact;
  artifact.module = longjs_wasm_module(wasm_op, lhs, rhs);
  artifact.binary = wasm::encode(artifact.module);
  // The real benchmark's JS driver calls the exported op per iteration:
  // 10,000 boundary crossings.
  env::RunOptions options;
  options.extra_boundary_crossings = 10'000;
  const env::PageMetrics wm = browser.run_wasm(artifact, options);
  const env::PageMetrics jm = browser.run_js(longjs_main(op, lhs, rhs));
  if (!wm.ok || !jm.ok) {
    row.ok = false;
    row.error = wm.ok ? jm.error : wm.error;
    return row;
  }
  row.wasm_ms = wm.time_ms;
  row.js_ms = jm.time_ms;
  return row;
}

}  // namespace

std::vector<RealWorldRow> run_real_world_apps(const env::BrowserEnv& browser) {
  std::vector<RealWorldRow> rows;

  rows.push_back(longjs_row(browser, "multiplication", Opcode::I64Mul, 36, -2,
                            "10,000 mul(36,-2)"));
  rows.push_back(longjs_row(browser, "division", Opcode::I64DivS, -2, -2,
                            "10,000 div(-2,-2)"));
  rows.push_back(longjs_row(browser, "remainder", Opcode::I64RemS, 36, 5,
                            "10,000 mod(36,5)"));

  // Hyphenopoly: en-us and fr are different pattern seeds.
  for (const auto& [lang, seed] : {std::pair<const char*, int>{"en-us", 12345},
                                   std::pair<const char*, int>{"fr", 54321}}) {
    RealWorldRow row;
    row.benchmark = "Hyphenopoly.js";
    row.experiment = lang;
    row.input = std::string("18 KB ") + (std::string(lang) == "en-us" ? "English" : "French") +
                " Text";
    std::string error;
    const auto artifact =
        compile_c(kHyphenC, {{"SEED", std::to_string(seed)}}, error);
    if (!artifact.ok()) {
      row.ok = false;
      row.error = error.empty() ? artifact.error : error;
      rows.push_back(std::move(row));
      continue;
    }
    std::string js = kHyphenJs;
    const std::string placeholder = "SEED_VALUE";
    js.replace(js.find(placeholder), placeholder.size(), std::to_string(seed));
    const env::PageMetrics wm = browser.run_wasm(artifact);
    const env::PageMetrics jm = browser.run_js(js);
    if (!wm.ok || !jm.ok) {
      row.ok = false;
      row.error = wm.ok ? jm.error : wm.error;
    } else if (wm.result != jm.result) {
      row.ok = false;
      row.error = "hyphenation checksums differ";
    } else {
      row.wasm_ms = wm.time_ms;
      row.js_ms = jm.time_ms;
    }
    rows.push_back(std::move(row));
  }

  // FFmpeg: Wasm fans out to 4 workers (elapsed = slowest worker); the JS
  // implementation is single-threaded.
  {
    RealWorldRow row;
    row.benchmark = "FFmpeg";
    row.experiment = "mp4 to avi";
    row.input = "synthetic 32-frame clip";
    constexpr int kFrames = 32;
    constexpr int kWorkers = 4;
    double slowest_worker = 0;
    bool ok = true;
    std::string error;
    int32_t wasm_checksum = 0;
    for (int w = 0; w < kWorkers && ok; ++w) {
      const int begin = w * (kFrames / kWorkers);
      const int end = (w + 1) * (kFrames / kWorkers);
      const auto artifact = compile_c(
          kTranscodeC,
          {{"FBEGIN", std::to_string(begin)}, {"FEND", std::to_string(end)}}, error);
      if (!artifact.ok()) {
        ok = false;
        error = error.empty() ? artifact.error : error;
        break;
      }
      env::RunOptions options;
      options.toolchain = backend::Toolchain::Emscripten;  // FFmpeg.wasm uses emcc
      const env::PageMetrics wm = browser.run_wasm(artifact, options);
      if (!wm.ok) {
        ok = false;
        error = wm.error;
        break;
      }
      slowest_worker = std::max(slowest_worker, wm.time_ms);
      wasm_checksum ^= wm.result;
    }
    const env::PageMetrics jm = browser.run_js(kTranscodeJs);
    if (!ok || !jm.ok) {
      row.ok = false;
      row.error = ok ? jm.error : error;
    } else if (wasm_checksum != jm.result) {
      row.ok = false;
      row.error = "transcode checksums differ";
    } else {
      row.wasm_ms = slowest_worker;
      row.js_ms = jm.time_ms;
    }
    rows.push_back(std::move(row));
  }

  return rows;
}

std::vector<RealWorldProgram> real_world_programs() {
  std::vector<RealWorldProgram> programs;

  struct LongSpec {
    const char* op;
    Opcode wasm_op;
    int lhs, rhs;
  };
  const LongSpec long_specs[] = {{"mul", Opcode::I64Mul, 36, -2},
                                 {"div", Opcode::I64DivS, -2, -2},
                                 {"mod", Opcode::I64RemS, 36, 5}};
  for (const LongSpec& spec : long_specs) {
    RealWorldProgram wasm_prog;
    wasm_prog.name = std::string("longjs-") + spec.op + "-wasm";
    wasm_prog.is_wasm = true;
    wasm_prog.artifact.module = longjs_wasm_module(spec.wasm_op, spec.lhs, spec.rhs);
    wasm_prog.artifact.binary = wasm::encode(wasm_prog.artifact.module);
    wasm_prog.options.extra_boundary_crossings = 10'000;
    programs.push_back(std::move(wasm_prog));

    RealWorldProgram js_prog;
    js_prog.name = std::string("longjs-") + spec.op + "-js";
    js_prog.js_source = longjs_main(spec.op, spec.lhs, spec.rhs);
    programs.push_back(std::move(js_prog));
  }

  for (const auto& [lang, seed] : {std::pair<const char*, int>{"en-us", 12345},
                                   std::pair<const char*, int>{"fr", 54321}}) {
    RealWorldProgram wasm_prog;
    wasm_prog.name = std::string("hyphen-") + lang + "-wasm";
    wasm_prog.is_wasm = true;
    std::string error;
    wasm_prog.artifact = compile_c(kHyphenC, {{"SEED", std::to_string(seed)}}, error);
    if (!wasm_prog.artifact.ok()) {
      wasm_prog.ok = false;
      wasm_prog.error = error.empty() ? wasm_prog.artifact.error : error;
    }
    programs.push_back(std::move(wasm_prog));

    RealWorldProgram js_prog;
    js_prog.name = std::string("hyphen-") + lang + "-js";
    std::string js = kHyphenJs;
    const std::string placeholder = "SEED_VALUE";
    js.replace(js.find(placeholder), placeholder.size(), std::to_string(seed));
    js_prog.js_source = std::move(js);
    programs.push_back(std::move(js_prog));
  }

  {
    RealWorldProgram wasm_prog;
    wasm_prog.name = "ffmpeg-wasm";
    wasm_prog.is_wasm = true;
    std::string error;
    wasm_prog.artifact =
        compile_c(kTranscodeC, {{"FBEGIN", "0"}, {"FEND", "32"}}, error);
    if (!wasm_prog.artifact.ok()) {
      wasm_prog.ok = false;
      wasm_prog.error = error.empty() ? wasm_prog.artifact.error : error;
    }
    wasm_prog.options.toolchain = backend::Toolchain::Emscripten;
    programs.push_back(std::move(wasm_prog));

    RealWorldProgram js_prog;
    js_prog.name = "ffmpeg-js";
    js_prog.js_source = kTranscodeJs;
    programs.push_back(std::move(js_prog));
  }

  return programs;
}

std::vector<LongOpsRow> longjs_operation_counts() {
  std::vector<LongOpsRow> rows;
  struct Spec {
    const char* name;
    Opcode op;
    int lhs, rhs;
  };
  const Spec specs[] = {{"Multiplication", Opcode::I64Mul, 36, -2},
                        {"Division", Opcode::I64DivS, -2, -2},
                        {"Remainder", Opcode::I64RemS, 36, 5}};
  for (const Spec& spec : specs) {
    LongOpsRow row;
    row.op = spec.name;

    // Wasm counts.
    const wasm::Module module = longjs_wasm_module(spec.op, spec.lhs, spec.rhs);
    wasm::Instance inst(module, {});
    inst.set_fuel(100'000'000);
    (void)inst.invoke("main", {});
    for (size_t c = 0; c < wasm::kArithCatCount; ++c) {
      row.wasm_counts[c] = inst.stats().arith_counts[c];
    }

    // JS counts.
    std::string error;
    std::string op_name = spec.name;
    for (char& c : op_name) c = static_cast<char>(std::tolower(c));
    if (op_name == "remainder") op_name = "mod";
    if (op_name == "multiplication") op_name = "mul";
    if (op_name == "division") op_name = "div";
    auto code = js::compile_script(longjs_main(op_name, spec.lhs, spec.rhs), error);
    if (code) {
      js::Heap heap;
      js::Vm vm(*code, heap);
      vm.set_fuel(200'000'000);
      (void)vm.run_top_level();
      (void)vm.call_function("main", {});
      for (size_t c = 0; c < js::kJsArithCatCount; ++c) {
        row.js_counts[c] = vm.stats().arith_counts[c];
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace wb::benchmarks
