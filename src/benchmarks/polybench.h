#pragma once

#include <vector>

#include "core/study.h"

namespace wb::benchmarks {

/// Appends the 30 PolyBenchC kernels (paper Table 1 order).
void add_polybench(std::vector<core::BenchSource>& out);

/// Appends the 11 CHStone kernels.
void add_chstone(std::vector<core::BenchSource>& out);

}  // namespace wb::benchmarks
