// The 11 CHStone kernels, rewritten in mini-C. Faithfulness notes (also
// in DESIGN.md):
//  - DFADD/DFDIV/DFMUL/DFSIN: CHStone implements IEEE-754 *double*
//    arithmetic in software on 64-bit integers. The mini-C subset has no
//    64-bit ints (Cheerp's JS target legalizes i64 into i32 pairs anyway),
//    so these kernels implement soft *binary32* arithmetic on u32 with
//    truncation rounding — the identical operation mix (masks, shifts,
//    multi-word multiplies, restoring division, normalization branches).
//  - BLOWFISH: S-boxes are generated from a deterministic LCG instead of
//    the digits-of-pi tables (same compute shape, table-driven Feistel).
//  - AES computes its S-box from GF(2^8) inversion at init (CHStone
//    embeds the table; the encryption rounds are bit-identical AES-128).
#include <map>

#include "benchmarks/polybench.h"

namespace wb::benchmarks {

namespace {

using core::Defines;

std::array<Defines, 5> scale(const char* name, std::array<int, 5> values) {
  std::array<Defines, 5> out;
  for (size_t i = 0; i < 5; ++i) {
    out[i].emplace_back(name, std::to_string(values[i]));
  }
  return out;
}

core::BenchSource bench(std::string name, std::string source,
                        std::array<Defines, 5> size_defines) {
  static const std::map<std::string, std::string> kDescriptions = {
      {"ADPCM", "Speech signal processing algorithm"},
      {"AES", "Cryptographic algorithm"},
      {"BLOWFISH", "Data encryption standard"},
      {"DFADD", "Addition for double"},
      {"DFDIV", "Division for double"},
      {"DFMUL", "Multiplication for double"},
      {"DFSIN", "Sine function for double"},
      {"GSM", "Speech signal processing algorithm"},
      {"MIPS", "Simplified MIPS processor"},
      {"MOTION", "Motion vector decoding for MPEG-2"},
      {"SHA", "Secure hash algorithm"},
  };
  core::BenchSource b;
  b.name = name;
  b.suite = "CHStone";
  const auto it = kDescriptions.find(name);
  if (it != kDescriptions.end()) b.description = it->second;
  b.source = std::move(source);
  b.size_defines = std::move(size_defines);
  return b;
}

// Soft binary32 arithmetic shared by the DF* kernels.
constexpr const char* kSoftFloat = R"(
unsigned f_pack(unsigned s, unsigned e, unsigned f) {
  return (s << 31) | (e << 23) | (f & 0x7fffff);
}
unsigned f_sign(unsigned a) { return a >> 31; }
unsigned f_exp(unsigned a) { return (a >> 23) & 0xff; }
unsigned f_frac(unsigned a) { return a & 0x7fffff; }
unsigned f_mant(unsigned a) { return (a & 0x7fffff) | 0x800000; }

unsigned f_from_int(int v) {
  unsigned s = 0;
  unsigned m;
  unsigned e = 150;
  if (v == 0) return 0;
  if (v < 0) { s = 1; v = -v; }
  m = (unsigned)v;
  while (m >= 0x1000000) { m = m >> 1; e = e + 1; }
  while (m < 0x800000) { m = m << 1; e = e - 1; }
  return f_pack(s, e, m);
}

int f_to_int_scaled(unsigned a, int k) {
  /* returns (int)(a * 2^k), truncated */
  unsigned e = f_exp(a);
  unsigned m = f_mant(a);
  int shift = (int)e - 150 + k;
  if (e == 0) return 0;
  while (shift > 0 && m < 0x40000000) { m = m << 1; shift = shift - 1; }
  while (shift < 0) { m = m >> 1; shift = shift + 1; }
  if (f_sign(a)) return -(int)m;
  return (int)m;
}

unsigned f_neg(unsigned a) { return a ^ 0x80000000; }

unsigned f_add(unsigned a, unsigned b) {
  unsigned sa, sb, ea, eb, ma, mb, s, e, m, diff, t;
  if (f_exp(a) == 0) return b;
  if (f_exp(b) == 0) return a;
  ea = f_exp(a); eb = f_exp(b);
  if (ea < eb || (ea == eb && f_frac(a) < f_frac(b))) {
    t = a; a = b; b = t;
    ea = f_exp(a); eb = f_exp(b);
  }
  sa = f_sign(a); sb = f_sign(b);
  ma = f_mant(a) << 3;  /* 3 guard bits */
  mb = f_mant(b) << 3;
  diff = ea - eb;
  if (diff > 26) return a;
  mb = mb >> diff;
  s = sa;
  e = ea;
  if (sa == sb) {
    m = ma + mb;
    if (m >= 0x8000000) { m = m >> 1; e = e + 1; }
  } else {
    m = ma - mb;
    if (m == 0) return 0;
    while (m < 0x4000000) { m = m << 1; e = e - 1; }
  }
  m = m >> 3;
  return f_pack(s, e, m);
}

unsigned f_sub(unsigned a, unsigned b) { return f_add(a, f_neg(b)); }

unsigned f_mul(unsigned a, unsigned b) {
  unsigned s, e, ma, mb, ah, al, bh, bl, p0, p1, p2, mid, hi;
  if (f_exp(a) == 0 || f_exp(b) == 0) return 0;
  s = f_sign(a) ^ f_sign(b);
  e = f_exp(a) + f_exp(b) - 127;
  ma = f_mant(a);
  mb = f_mant(b);
  /* 24x24 -> 48-bit product via 12-bit limbs (the multi-word shape the
     paper's Table 12 counts in Long.js) */
  ah = ma >> 12; al = ma & 0xfff;
  bh = mb >> 12; bl = mb & 0xfff;
  p0 = al * bl;
  p1 = ah * bl + al * bh;
  p2 = ah * bh;
  mid = p1 + (p0 >> 12);
  hi = p2 + (mid >> 12);   /* bits 47..24 */
  if (hi & 0x800000) {
    /* product in [2^47, 2^48): already 24 significant bits */
  } else {
    hi = (hi << 1) | ((mid >> 11) & 1);
    e = e - 1;
  }
  return f_pack(s, e, hi);
}

unsigned f_div(unsigned a, unsigned b) {
  unsigned s, ma, mb, q, rem;
  int e, i;
  if (f_exp(a) == 0) return 0;
  s = f_sign(a) ^ f_sign(b);
  e = (int)f_exp(a) - (int)f_exp(b) + 127;
  ma = f_mant(a);
  mb = f_mant(b);
  if (ma < mb) { ma = ma << 1; e = e - 1; }
  /* restoring division, 24 quotient bits */
  q = 0;
  rem = ma;
  for (i = 0; i < 24; i++) {
    q = q << 1;
    if (rem >= mb) { rem = rem - mb; q = q | 1; }
    rem = rem << 1;
  }
  return f_pack(s, (unsigned)e, q);
}
)";

}  // namespace

void add_chstone(std::vector<core::BenchSource>& out) {
  // ---------------------------------------------------------------- ADPCM
  // IMA ADPCM encode+decode. Includes the never-read `result` global from
  // the paper's Fig. 7 — under -Ofast the Wasm/JS backends keep these dead
  // stores (the replicated LLVM bug).
  out.push_back(bench("ADPCM", R"(
#define NSAMPLES 512
int step_table[16] = {7, 9, 11, 13, 16, 19, 23, 28,
                      34, 41, 49, 59, 71, 85, 102, 122};
int index_table[8] = {-1, -1, 1, 2, 4, 6, 8, 12};
int samples[NSAMPLES];
int compressed[NSAMPLES];
int decoded[NSAMPLES];
int result[NSAMPLES];
int enc_pred; int enc_index;
int dec_pred; int dec_index;

int clamp_index(int v) {
  if (v < 0) return 0;
  if (v > 15) return 15;
  return v;
}

int encode(int sample) {
  int step = step_table[enc_index];
  int diff = sample - enc_pred;
  int code = 0;
  if (diff < 0) { code = 8; diff = -diff; }
  if (diff >= step) { code = code | 4; diff = diff - step; }
  if (diff >= step / 2) { code = code | 2; diff = diff - step / 2; }
  if (diff >= step / 4) { code = code | 1; }
  int delta = step / 8 + ((code & 1) != 0 ? step / 4 : 0) +
              ((code & 2) != 0 ? step / 2 : 0) + ((code & 4) != 0 ? step : 0);
  if ((code & 8) != 0) enc_pred = enc_pred - delta;
  else enc_pred = enc_pred + delta;
  if (enc_pred > 32767) enc_pred = 32767;
  if (enc_pred < -32768) enc_pred = -32768;
  enc_index = clamp_index(enc_index + index_table[code & 7]);
  return code;
}

int decode(int code) {
  int step = step_table[dec_index];
  int delta = step / 8 + ((code & 1) != 0 ? step / 4 : 0) +
              ((code & 2) != 0 ? step / 2 : 0) + ((code & 4) != 0 ? step : 0);
  if ((code & 8) != 0) dec_pred = dec_pred - delta;
  else dec_pred = dec_pred + delta;
  if (dec_pred > 32767) dec_pred = 32767;
  if (dec_pred < -32768) dec_pred = -32768;
  dec_index = clamp_index(dec_index + index_table[code & 7]);
  return dec_pred;
}

int main(void) {
  int i;
  enc_pred = 0; enc_index = 0; dec_pred = 0; dec_index = 0;
  for (i = 0; i < NSAMPLES; i++)
    samples[i] = ((i * 37) % 255 - 127) * 64;
  for (i = 0; i < NSAMPLES; i++)
    compressed[i] = encode(samples[i]);
  for (i = 0; i < NSAMPLES; i++) {
    decoded[i] = decode(compressed[i]);
    result[i] = decoded[i];       /* never read: the Fig. 7 dead store */
    result[i] = decoded[i] + 1;   /* (two stores, as in the paper) */
  }
  int s = 0;
  for (i = 0; i < NSAMPLES; i++) s = (s + decoded[i] * (i + 1)) % 1000000007;
  return s;
}
)", scale("NSAMPLES", {256, 512, 2048, 8192, 16384})));

  // ------------------------------------------------------------------ AES
  out.push_back(bench("AES", R"(
#define NBLOCKS 8
unsigned char sbox[256];
unsigned char state[16];
unsigned char round_key[176];
unsigned char key[16] = {43, 126, 21, 22, 40, 174, 210, 166,
                         171, 247, 21, 136, 9, 207, 79, 60};
int checksum;

unsigned gmul2(unsigned a) {
  unsigned r = a << 1;
  if (a & 0x80) r = r ^ 0x1b;
  return r & 0xff;
}
unsigned gmul(unsigned a, unsigned b) {
  unsigned p = 0;
  int i;
  for (i = 0; i < 8; i++) {
    if (b & 1) p = p ^ a;
    a = gmul2(a);
    b = b >> 1;
  }
  return p & 0xff;
}
void build_sbox(void) {
  int x, y;
  unsigned inv, s;
  sbox[0] = 0x63;
  for (x = 1; x < 256; x++) {
    inv = 0;
    for (y = 1; y < 256; y++) {
      if (gmul((unsigned)x, (unsigned)y) == 1) { inv = (unsigned)y; break; }
    }
    s = inv;
    s = s ^ ((inv << 1) | (inv >> 7));
    s = s ^ ((inv << 2) | (inv >> 6));
    s = s ^ ((inv << 3) | (inv >> 5));
    s = s ^ ((inv << 4) | (inv >> 4));
    s = (s ^ 0x63) & 0xff;
    sbox[x] = s;
  }
}
void expand_key(void) {
  int i, k;
  unsigned t0, t1, t2, t3, tmp;
  unsigned rcon = 1;
  for (i = 0; i < 16; i++) round_key[i] = key[i];
  for (i = 4; i < 44; i++) {
    k = i * 4;
    t0 = round_key[k - 4]; t1 = round_key[k - 3];
    t2 = round_key[k - 2]; t3 = round_key[k - 1];
    if (i % 4 == 0) {
      tmp = t0;
      t0 = sbox[t1] ^ rcon;
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[tmp];
      rcon = gmul2(rcon);
    }
    round_key[k] = round_key[k - 16] ^ t0;
    round_key[k + 1] = round_key[k - 15] ^ t1;
    round_key[k + 2] = round_key[k - 14] ^ t2;
    round_key[k + 3] = round_key[k - 13] ^ t3;
  }
}
void add_round_key(int round) {
  int i;
  for (i = 0; i < 16; i++)
    state[i] = state[i] ^ round_key[round * 16 + i];
}
void sub_bytes(void) {
  int i;
  for (i = 0; i < 16; i++) state[i] = sbox[state[i]];
}
void shift_rows(void) {
  unsigned char t;
  t = state[1]; state[1] = state[5]; state[5] = state[9];
  state[9] = state[13]; state[13] = t;
  t = state[2]; state[2] = state[10]; state[10] = t;
  t = state[6]; state[6] = state[14]; state[14] = t;
  t = state[15]; state[15] = state[11]; state[11] = state[7];
  state[7] = state[3]; state[3] = t;
}
void mix_columns(void) {
  int c;
  unsigned a0, a1, a2, a3;
  for (c = 0; c < 4; c++) {
    a0 = state[c * 4]; a1 = state[c * 4 + 1];
    a2 = state[c * 4 + 2]; a3 = state[c * 4 + 3];
    state[c * 4] = gmul2(a0) ^ (gmul2(a1) ^ a1) ^ a2 ^ a3;
    state[c * 4 + 1] = a0 ^ gmul2(a1) ^ (gmul2(a2) ^ a2) ^ a3;
    state[c * 4 + 2] = a0 ^ a1 ^ gmul2(a2) ^ (gmul2(a3) ^ a3);
    state[c * 4 + 3] = (gmul2(a0) ^ a0) ^ a1 ^ a2 ^ gmul2(a3);
  }
}
void encrypt_block(void) {
  int round;
  add_round_key(0);
  for (round = 1; round < 10; round++) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}
int main(void) {
  int b, i;
  build_sbox();
  expand_key();
  checksum = 0;
  for (b = 0; b < NBLOCKS; b++) {
    for (i = 0; i < 16; i++) state[i] = (b * 16 + i * 7) & 0xff;
    encrypt_block();
    for (i = 0; i < 16; i++)
      checksum = ((checksum << 5) - checksum + state[i]) & 0x7fffffff;
  }
  return checksum;
}
)", scale("NBLOCKS", {2, 8, 32, 128, 512})));

  // ------------------------------------------------------------- BLOWFISH
  out.push_back(bench("BLOWFISH", std::string(R"(
#define NBLOCKS 16
unsigned P[18];
unsigned S0[256]; unsigned S1[256]; unsigned S2[256]; unsigned S3[256];
unsigned xl; unsigned xr;

unsigned bf_f(unsigned x) {
  unsigned a = (x >> 24) & 0xff;
  unsigned b = (x >> 16) & 0xff;
  unsigned c = (x >> 8) & 0xff;
  unsigned d = x & 0xff;
  return ((S0[a] + S1[b]) ^ S2[c]) + S3[d];
}

void bf_encrypt(void) {
  int i;
  unsigned t;
  for (i = 0; i < 16; i++) {
    xl = xl ^ P[i];
    xr = bf_f(xl) ^ xr;
    t = xl; xl = xr; xr = t;
  }
  t = xl; xl = xr; xr = t;
  xr = xr ^ P[16];
  xl = xl ^ P[17];
}

int main(void) {
  int i, b;
  unsigned seed = 0x12345678;
  /* synthetic pi-digit tables via an LCG (see header note) */
  for (i = 0; i < 18; i++) {
    seed = seed * 1664525 + 1013904223;
    P[i] = seed;
  }
  for (i = 0; i < 256; i++) {
    seed = seed * 1664525 + 1013904223; S0[i] = seed;
    seed = seed * 1664525 + 1013904223; S1[i] = seed;
    seed = seed * 1664525 + 1013904223; S2[i] = seed;
    seed = seed * 1664525 + 1013904223; S3[i] = seed;
  }
  /* key schedule: fold a key into P */
  for (i = 0; i < 18; i++) P[i] = P[i] ^ (0x55aa55aa + (unsigned)i * 0x01010101);
  xl = 0; xr = 0;
  for (i = 0; i < 18; i = i + 2) {
    bf_encrypt();
    P[i] = xl;
    P[i + 1] = xr;
  }
  unsigned cs = 0;
  for (b = 0; b < NBLOCKS; b++) {
    xl = (unsigned)b * 0x9e3779b9;
    xr = (unsigned)b * 0x7f4a7c15 + 1;
    bf_encrypt();
    cs = (cs ^ xl) * 16777619;
    cs = (cs ^ xr) * 16777619;
  }
  return (int)(cs & 0x7fffffff);
}
)"), scale("NBLOCKS", {8, 32, 128, 512, 2048})));

  // ---------------------------------------------------------------- DFADD
  out.push_back(bench("DFADD", std::string(kSoftFloat) + R"(
#define NTESTS 256
unsigned inputs[NTESTS];
int main(void) {
  int i;
  unsigned cs = 0;
  for (i = 0; i < NTESTS; i++)
    inputs[i] = f_from_int((i * 7919) % 20011 - 10005);
  for (i = 0; i + 1 < NTESTS; i++) {
    unsigned r = f_add(inputs[i], inputs[i + 1]);
    unsigned d = f_sub(inputs[i + 1], inputs[i]);
    cs = (cs ^ r) * 16777619;
    cs = (cs ^ d) * 16777619;
  }
  return (int)(cs & 0x7fffffff);
}
)", scale("NTESTS", {64, 256, 1024, 4096, 16384})));

  // ---------------------------------------------------------------- DFDIV
  out.push_back(bench("DFDIV", std::string(kSoftFloat) + R"(
#define NTESTS 128
int main(void) {
  int i;
  unsigned cs = 0;
  for (i = 1; i < NTESTS; i++) {
    unsigned a = f_from_int(i * 12347 % 30011 + 17);
    unsigned b = f_from_int(i * 331 % 991 + 3);
    unsigned q = f_div(a, b);
    cs = (cs ^ q) * 16777619;
  }
  return (int)(cs & 0x7fffffff);
}
)", scale("NTESTS", {32, 128, 512, 2048, 8192})));

  // ---------------------------------------------------------------- DFMUL
  out.push_back(bench("DFMUL", std::string(kSoftFloat) + R"(
#define NTESTS 256
int main(void) {
  int i;
  unsigned cs = 0;
  for (i = 0; i < NTESTS; i++) {
    unsigned a = f_from_int(i * 7919 % 10007 - 5003);
    unsigned b = f_from_int(i * 104729 % 331 + 2);
    unsigned p = f_mul(a, b);
    cs = (cs ^ p) * 16777619;
  }
  return (int)(cs & 0x7fffffff);
}
)", scale("NTESTS", {64, 256, 1024, 4096, 16384})));

  // ---------------------------------------------------------------- DFSIN
  out.push_back(bench("DFSIN", std::string(kSoftFloat) + R"(
#define NTESTS 36
unsigned soft_sin(unsigned x) {
  /* Taylor series: x - x^3/3! + x^5/5! - x^7/7! + x^9/9! */
  unsigned x2 = f_mul(x, x);
  unsigned term = x;
  unsigned sum = x;
  unsigned f3 = f_from_int(6);
  unsigned f5 = f_from_int(20);
  unsigned f7 = f_from_int(42);
  unsigned f9 = f_from_int(72);
  term = f_div(f_mul(term, x2), f3);
  sum = f_sub(sum, term);
  term = f_div(f_mul(term, x2), f5);
  sum = f_add(sum, term);
  term = f_div(f_mul(term, x2), f7);
  sum = f_sub(sum, term);
  term = f_div(f_mul(term, x2), f9);
  sum = f_add(sum, term);
  return sum;
}
int main(void) {
  int i;
  unsigned cs = 0;
  unsigned hundred = f_from_int(100);
  for (i = 0; i < NTESTS; i++) {
    /* x in (-1.6, 1.6) as (i%320 - 160)/100 */
    unsigned x = f_div(f_from_int((i * 37) % 320 - 160), hundred);
    unsigned s = soft_sin(x);
    cs = (cs ^ s) * 16777619;
    cs = (cs + (unsigned)f_to_int_scaled(s, 10)) * 31;
  }
  return (int)(cs & 0x7fffffff);
}
)", scale("NTESTS", {16, 64, 256, 1024, 4096})));

  // ------------------------------------------------------------------ GSM
  out.push_back(bench("GSM", R"(
#define NFRAMES 4
int frame[160];
int lar[8];
int acf[9];

int gsm_abs(int x) { return x < 0 ? -x : x; }

void autocorrelation(void) {
  int k, i;
  int smax = 0;
  int scale = 0;
  for (k = 0; k < 160; k++) {
    int a = gsm_abs(frame[k]);
    if (a > smax) smax = a;
  }
  if (smax == 0) scale = 0;
  else {
    scale = 4;
    while (scale > 0 && smax < 16384) { smax = smax << 1; scale = scale - 1; }
  }
  for (k = 0; k < 160; k++) frame[k] = frame[k] >> scale;
  for (k = 0; k <= 8; k++) {
    acf[k] = 0;
    for (i = k; i < 160; i++)
      acf[k] = acf[k] + frame[i] * frame[i - k];
  }
}

void reflection_to_lar(void) {
  int i;
  int r[9];
  if (acf[0] == 0) {
    for (i = 0; i < 8; i++) lar[i] = 0;
    return;
  }
  for (i = 1; i <= 8; i++) {
    /* scaled reflection estimate acf[i]/acf[0] in Q12 */
    r[i] = (acf[i] / (acf[0] / 4096 + 1));
    if (r[i] > 4095) r[i] = 4095;
    if (r[i] < -4095) r[i] = -4095;
  }
  for (i = 0; i < 8; i++) {
    int ri = r[i + 1];
    int a = gsm_abs(ri);
    if (a < 2048) lar[i] = ri;
    else if (a < 3584) lar[i] = ri < 0 ? -(a * 2 - 2048) : a * 2 - 2048;
    else lar[i] = ri < 0 ? -(a * 4 - 9216) : a * 4 - 9216;
  }
}

int main(void) {
  int f, k;
  int cs = 0;
  for (f = 0; f < NFRAMES; f++) {
    for (k = 0; k < 160; k++)
      frame[k] = ((k * (f + 3) * 131) % 8192) - 4096;
    autocorrelation();
    reflection_to_lar();
    for (k = 0; k < 8; k++) cs = (cs + lar[k] * (k + 1) + f) % 1000000007;
  }
  return cs;
}
)", scale("NFRAMES", {2, 8, 32, 128, 256})));

  // ----------------------------------------------------------------- MIPS
  out.push_back(bench("MIPS", R"(
#define NITER 8
/* Simplified MIPS: opcode(8) | rd(4) | rs(4) | rt(4)/imm(12) */
unsigned prog[32];
int reg[16];
int dmem[32];

int run_program(void) {
  int pc = 0;
  int steps = 0;
  while (pc >= 0 && pc < 32 && steps < 4000) {
    unsigned ins = prog[pc];
    unsigned op = ins >> 24;
    int rd = (int)((ins >> 20) & 15);
    int rs = (int)((ins >> 16) & 15);
    int imm = (int)(ins & 0xffff);
    if (imm >= 32768) imm = imm - 65536;
    steps++;
    pc++;
    switch (op) {
      case 0: break;                                       /* nop */
      case 1: reg[rd] = reg[rs] + reg[imm & 15]; break;    /* add */
      case 2: reg[rd] = reg[rs] - reg[imm & 15]; break;    /* sub */
      case 3: reg[rd] = reg[rs] * reg[imm & 15]; break;    /* mul */
      case 4: reg[rd] = imm; break;                        /* li  */
      case 5: reg[rd] = reg[rs] + imm; break;              /* addi */
      case 6: reg[rd] = dmem[(reg[rs] + imm) & 31]; break; /* lw  */
      case 7: dmem[(reg[rs] + imm) & 31] = reg[rd]; break; /* sw  */
      case 8: if (reg[rd] < reg[rs]) pc = pc + imm; break; /* blt */
      case 9: if (reg[rd] != reg[rs]) pc = pc + imm; break;/* bne */
      case 10: pc = imm; break;                            /* j   */
      case 11: return reg[rd];                             /* halt*/
      default: return -1;
    }
  }
  return -2;
}

int main(void) {
  int it, i;
  int cs = 0;
  /* program: sum integers 0..r2-1 into r1, then halt */
  for (i = 0; i < 32; i++) prog[i] = 11u << 24;  /* halt */
  prog[0] = (4u << 24) | (1u << 20);                    /* li r1, 0 */
  prog[1] = (4u << 24) | (3u << 20);                    /* li r3, 0 */
  prog[2] = (4u << 24) | (2u << 20) | 25;               /* li r2, 25 */
  prog[3] = (1u << 24) | (1u << 20) | (1u << 16) | 3;   /* add r1, r1, r3 */
  prog[4] = (5u << 24) | (3u << 20) | (3u << 16) | 1;   /* addi r3, r3, 1 */
  prog[5] = (8u << 24) | (3u << 20) | (2u << 16) |
            ((unsigned)(-3) & 0xffff);                  /* blt r3, r2, -3 */
  prog[6] = (7u << 24) | (1u << 20) | (0u << 16) | 4;   /* sw r1, 4(r0) */
  prog[7] = (6u << 24) | (4u << 20) | (0u << 16) | 4;   /* lw r4, 4(r0) */
  prog[8] = (11u << 24) | (4u << 20);                   /* halt r4 */
  for (it = 0; it < NITER; it++) {
    for (i = 0; i < 16; i++) reg[i] = 0;
    for (i = 0; i < 32; i++) dmem[i] = i * it;
    cs = (cs + run_program() * (it + 1)) % 1000000007;
  }
  return cs;
}
)", scale("NITER", {4, 16, 64, 256, 1024})));

  // --------------------------------------------------------------- MOTION
  out.push_back(bench("MOTION", R"(
#define NVECTORS 64
unsigned char stream[4096];
int bitpos;
int pmv0; int pmv1;

unsigned getbits(int n) {
  unsigned v = 0;
  int i;
  for (i = 0; i < n; i++) {
    int byte = bitpos >> 3;
    int bit = 7 - (bitpos & 7);
    v = (v << 1) | ((stream[byte] >> bit) & 1);
    bitpos++;
  }
  return v;
}

int decode_mv(int pred, int r_size) {
  int code, residual, delta;
  int limit = 16 << r_size;
  code = (int)getbits(4);
  if (code == 0) return pred;
  residual = (int)getbits(r_size);
  delta = ((code - 1) << r_size) + residual + 1;
  if (getbits(1) != 0) delta = -delta;
  pred = pred + delta;
  if (pred >= limit) pred = pred - 2 * limit;
  if (pred < -limit) pred = pred + 2 * limit;
  return pred;
}

int main(void) {
  int v, i;
  int cs = 0;
  unsigned seed = 0xbeef;
  for (i = 0; i < 4096; i++) {
    seed = seed * 1103515245 + 12345;
    stream[i] = (seed >> 16);
  }
  bitpos = 0;
  pmv0 = 0;
  pmv1 = 0;
  for (v = 0; v < NVECTORS; v++) {
    pmv0 = decode_mv(pmv0, 2);
    pmv1 = decode_mv(pmv1, 3);
    cs = (cs + pmv0 * 7 + pmv1 * 13 + v) % 1000000007;
    if (bitpos > 4096 * 8 - 64) bitpos = 0;
  }
  return cs;
}
)", scale("NVECTORS", {64, 256, 1024, 4096, 16384})));

  // ------------------------------------------------------------------ SHA
  // CHStone's SHA is SHA-1; full implementation over a synthetic message.
  out.push_back(bench("SHA", R"(
#define MSGLEN 1024
unsigned char message[MSGLEN];
unsigned w[80];
unsigned h0; unsigned h1; unsigned h2; unsigned h3; unsigned h4;

unsigned rol(unsigned x, int n) { return (x << n) | (x >> (32 - n)); }

void sha1_block(int offset) {
  int t;
  unsigned a, b, c, d, e, f, k, temp;
  for (t = 0; t < 16; t++) {
    w[t] = ((unsigned)message[offset + t * 4] << 24) |
           ((unsigned)message[offset + t * 4 + 1] << 16) |
           ((unsigned)message[offset + t * 4 + 2] << 8) |
           (unsigned)message[offset + t * 4 + 3];
  }
  for (t = 16; t < 80; t++)
    w[t] = rol(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  a = h0; b = h1; c = h2; d = h3; e = h4;
  for (t = 0; t < 80; t++) {
    if (t < 20) { f = (b & c) | ((~b) & d); k = 0x5a827999; }
    else if (t < 40) { f = b ^ c ^ d; k = 0x6ed9eba1; }
    else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8f1bbcdc; }
    else { f = b ^ c ^ d; k = 0xca62c1d6; }
    temp = rol(a, 5) + f + e + k + w[t];
    e = d; d = c; c = rol(b, 30); b = a; a = temp;
  }
  h0 = h0 + a; h1 = h1 + b; h2 = h2 + c; h3 = h3 + d; h4 = h4 + e;
}

int main(void) {
  int i;
  for (i = 0; i < MSGLEN; i++)
    message[i] = (i * 211 + 17) & 0xff;
  h0 = 0x67452301; h1 = 0xefcdab89; h2 = 0x98badcfe;
  h3 = 0x10325476; h4 = 0xc3d2e1f0;
  /* whole blocks only; length padding folded into the synthetic input */
  for (i = 0; i + 64 <= MSGLEN; i = i + 64)
    sha1_block(i);
  unsigned cs = h0 ^ h1 ^ h2 ^ h3 ^ h4;
  return (int)(cs & 0x7fffffff);
}
)", scale("MSGLEN", {512, 2048, 8192, 32768, 131072})));
}

}  // namespace wb::benchmarks
