// The manually-written JavaScript benchmarks of paper Sec. 4.1.2 /
// Table 9. Three implementation styles, as in the paper:
//  - idiomatic hand-written JS (arrays of arrays, plain numbers);
//  - math.js-style: a generic matrix library (boxed, bounds-checked,
//    allocation-happy) — the paper linked the real math.js;
//  - W3C-API style: typed arrays / the WebCrypto digest builtin.
// Each implementation mirrors its compiled benchmark's M-size input and
// (except SHA (W3C), which computes a different hash by design) returns
// the same checksum, so tests can cross-validate.
#include "benchmarks/registry.h"

namespace wb::benchmarks {

namespace {

// Generic matrix helpers standing in for math.js (boxed rows, per-access
// function calls — the expensive-but-convenient style).
constexpr const char* kMathJsShim = R"(
// ---- mini math.js ----
function mat_zeros(r, c) {
  var m = [];
  for (var i = 0; i < r; i++) {
    var row = [];
    for (var j = 0; j < c; j++) row.push(0);
    m.push(row);
  }
  return m;
}
function mat_zeros3(a, b, c) {
  var m = [];
  for (var i = 0; i < a; i++) m.push(mat_zeros(b, c));
  return m;
}
function mat_get(m, i, j) {
  if (i < 0 || i >= m.length) return 0;
  var row = m[i];
  if (j < 0 || j >= row.length) return 0;
  return row[j];
}
function mat_set(m, i, j, v) {
  if (i < 0 || i >= m.length) return;
  var row = m[i];
  if (j < 0 || j >= row.length) return;
  row[j] = v;
}
function mat_get3(m, i, j, k) { return mat_get(m[i], j, k); }
function mat_set3(m, i, j, k, v) { mat_set(m[i], j, k, v); }
// ---- end mini math.js ----
)";

constexpr const char* kChecksum = R"(
var __cs = 0;
function cs_add(v) { __cs += v - Math.floor(v / 1000.0) * 1000.0; }
function cs_result() { return __cs | 0; }
)";

ManualJs manual(std::string name, std::string bench_name, std::string source,
                bool library_style) {
  ManualJs m;
  m.name = std::move(name);
  m.bench_name = std::move(bench_name);
  m.source = std::move(source);
  m.library_style = library_style;
  return m;
}

}  // namespace

const std::vector<ManualJs>& manual_js_benchmarks() {
  static const std::vector<ManualJs> all = [] {
    std::vector<ManualJs> out;

    // ------------------------------------------------------------- 3mm
    out.push_back(manual("3mm", "3mm", std::string(kChecksum) + R"(
var N = 32;
function zeros(n) {
  var m = [];
  for (var i = 0; i < n; i++) {
    var row = [];
    for (var j = 0; j < n; j++) row.push(0);
    m.push(row);
  }
  return m;
}
function matmul(dst, a, b, n) {
  for (var i = 0; i < n; i++)
    for (var j = 0; j < n; j++) {
      var acc = 0;
      for (var k = 0; k < n; k++) acc += a[i][k] * b[k][j];
      dst[i][j] = acc;
    }
}
function main() {
  var A = zeros(N), B = zeros(N), C = zeros(N), D = zeros(N);
  var E = zeros(N), F = zeros(N), G = zeros(N);
  for (var i = 0; i < N; i++)
    for (var j = 0; j < N; j++) {
      A[i][j] = ((i * j + 1) % N) / (5.0 * N);
      B[i][j] = ((i * (j + 1) + 2) % N) / (5.0 * N);
      C[i][j] = (i * (j + 3) % N) / (5.0 * N);
      D[i][j] = ((i * (j + 2) + 2) % N) / (5.0 * N);
    }
  matmul(E, A, B, N);
  matmul(F, C, D, N);
  matmul(G, E, F, N);
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(G[i][j] * 1000.0);
  return cs_result();
}
)", false));

    // ------------------------------------------------------ Covariance
    out.push_back(manual("Covariance", "covariance", std::string(kChecksum) + R"(
var N = 32;
function main() {
  var data = [], cov = [], mean = [];
  for (var i = 0; i < N; i++) {
    data.push([]);
    cov.push([]);
    for (var j = 0; j < N; j++) {
      data[i].push((i * j % 13) / N);
      cov[i].push(0);
    }
  }
  for (var j2 = 0; j2 < N; j2++) {
    var m = 0;
    for (i = 0; i < N; i++) m += data[i][j2];
    mean.push(m / N);
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) data[i][j] -= mean[j];
  for (i = 0; i < N; i++)
    for (j = i; j < N; j++) {
      var acc = 0;
      for (var k = 0; k < N; k++) acc += data[k][i] * data[k][j];
      acc /= N - 1.0;
      cov[i][j] = acc;
      cov[j][i] = acc;
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(cov[i][j] * 50.0);
  return cs_result();
}
)", false));

    // ----------------------------------------------------------- Syr2k
    out.push_back(manual("Syr2k", "syr2k", std::string(kChecksum) + R"(
var N = 32;
var alpha = 1.5, beta = 1.2;
function main() {
  var A = [], B = [], C = [];
  for (var i = 0; i < N; i++) {
    A.push([]); B.push([]); C.push([]);
    for (var j = 0; j < N; j++) {
      A[i].push(((i * j + 1) % N) / N);
      B[i].push(((i * j + 2) % N) / N);
      C[i].push(((i + j) % N) / N);
    }
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++) C[i][j] *= beta;
    for (var k = 0; k < N; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) cs_add(C[i][j] * 10.0);
  return cs_result();
}
)", false));

    // ---------------------------------------------------------- Ludcmp
    out.push_back(manual("Ludcmp", "ludcmp", std::string(kChecksum) + R"(
var N = 32;
function main() {
  var A = [], b = [], x = [], y = [];
  for (var i = 0; i < N; i++) {
    b.push((i + 1) / N / 2.0 + 4.0);
    x.push(0);
    y.push(0);
    A.push([]);
    for (var j = 0; j < N; j++)
      A[i].push(i == j ? N * 2.0 : 1.0 / (i + j + 2));
  }
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      var w = A[i][j];
      for (var k = 0; k < j; k++) w -= A[i][k] * A[k][j];
      A[i][j] = w / A[j][j];
    }
    for (j = i; j < N; j++) {
      var w2 = A[i][j];
      for (k = 0; k < i; k++) w2 -= A[i][k] * A[k][j];
      A[i][j] = w2;
    }
  }
  for (i = 0; i < N; i++) {
    var w3 = b[i];
    for (j = 0; j < i; j++) w3 -= A[i][j] * y[j];
    y[i] = w3;
  }
  for (i = N - 1; i >= 0; i--) {
    var w4 = y[i];
    for (j = i + 1; j < N; j++) w4 -= A[i][j] * x[j];
    x[i] = w4 / A[i][i];
  }
  for (i = 0; i < N; i++) cs_add(x[i] * 1000.0);
  return cs_result();
}
)", false));

    // -------------------------------------------------- Floyd-warshall
    out.push_back(manual("Floyd-warshall", "floyd-warshall", R"(
var N = 32;
function main() {
  var path = [];
  for (var i = 0; i < N; i++) {
    path.push([]);
    for (var j = 0; j < N; j++) {
      var v = i * j % 7 + 1;
      if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0) v = 999;
      path[i].push(v);
    }
  }
  for (var k = 0; k < N; k++)
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++) {
        var through = path[i][k] + path[k][j];
        if (through < path[i][j]) path[i][j] = through;
      }
  var s = 0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) s = (s + path[i][j] * (i + j + 1)) % 1000000;
  return s;
}
)", false));

    // ---------------------------------------------------- Heat-3d (W3C)
    // Typed-array implementation — the closest JS gets to a native API.
    out.push_back(manual("Heat-3d (W3C)", "heat-3d", std::string(kChecksum) + R"(
var N = 14, TSTEPS = 4;
var NN = N * N;
function main() {
  var A = new Float64Array(N * N * N);
  var B = new Float64Array(N * N * N);
  var i, j, k, t;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++) {
        A[i * NN + j * N + k] = (i + j + (N - k)) * 10.0 / N;
        B[i * NN + j * N + k] = A[i * NN + j * N + k];
      }
  for (t = 1; t <= TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++) {
          var c = i * NN + j * N + k;
          B[c] = 0.125 * (A[c + NN] - 2.0 * A[c] + A[c - NN]) +
                 0.125 * (A[c + N] - 2.0 * A[c] + A[c - N]) +
                 0.125 * (A[c + 1] - 2.0 * A[c] + A[c - 1]) + A[c];
        }
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++) {
          var c2 = i * NN + j * N + k;
          A[c2] = 0.125 * (B[c2 + NN] - 2.0 * B[c2] + B[c2 - NN]) +
                  0.125 * (B[c2 + N] - 2.0 * B[c2] + B[c2 - N]) +
                  0.125 * (B[c2 + 1] - 2.0 * B[c2] + B[c2 - 1]) + B[c2];
        }
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++) cs_add(A[i * NN + j * N + k] * 10.0);
  return cs_result();
}
)", false));

    // ------------------------------------------------ Heat-3d (math.js)
    out.push_back(manual("Heat-3d (math.js)", "heat-3d",
                         std::string(kChecksum) + kMathJsShim + R"(
var N = 14, TSTEPS = 4;
function main() {
  var A = mat_zeros3(N, N, N);
  var B = mat_zeros3(N, N, N);
  var i, j, k, t;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++) {
        mat_set3(A, i, j, k, (i + j + (N - k)) * 10.0 / N);
        mat_set3(B, i, j, k, mat_get3(A, i, j, k));
      }
  for (t = 1; t <= TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++)
          mat_set3(B, i, j, k,
              0.125 * (mat_get3(A, i + 1, j, k) - 2.0 * mat_get3(A, i, j, k) + mat_get3(A, i - 1, j, k)) +
              0.125 * (mat_get3(A, i, j + 1, k) - 2.0 * mat_get3(A, i, j, k) + mat_get3(A, i, j - 1, k)) +
              0.125 * (mat_get3(A, i, j, k + 1) - 2.0 * mat_get3(A, i, j, k) + mat_get3(A, i, j, k - 1)) +
              mat_get3(A, i, j, k));
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++)
          mat_set3(A, i, j, k,
              0.125 * (mat_get3(B, i + 1, j, k) - 2.0 * mat_get3(B, i, j, k) + mat_get3(B, i - 1, j, k)) +
              0.125 * (mat_get3(B, i, j + 1, k) - 2.0 * mat_get3(B, i, j, k) + mat_get3(B, i, j - 1, k)) +
              0.125 * (mat_get3(B, i, j, k + 1) - 2.0 * mat_get3(B, i, j, k) + mat_get3(B, i, j, k - 1)) +
              mat_get3(B, i, j, k));
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++) cs_add(mat_get3(A, i, j, k) * 10.0);
  return cs_result();
}
)", true));

    // -------------------------------------------------------------- AES
    // Hand-tuned typed-array AES: the case where careful JS beats the
    // compiler-generated version (paper: 2.405ms vs 3.210ms).
    out.push_back(manual("AES", "AES", R"(
var NBLOCKS = 32;
var sbox = new Uint8Array(256);
var roundKey = new Uint8Array(176);
var state = new Uint8Array(16);
var keyBytes = [43, 126, 21, 22, 40, 174, 210, 166, 171, 247, 21, 136, 9, 207, 79, 60];

function gmul2(a) {
  var r = (a << 1) & 0xff;
  if (a & 0x80) r = r ^ 0x1b;
  return r & 0xff;
}
function gmul(a, b) {
  var p = 0;
  for (var i = 0; i < 8; i++) {
    if (b & 1) p ^= a;
    a = gmul2(a);
    b >>= 1;
  }
  return p & 0xff;
}
function buildSbox() {
  sbox[0] = 0x63;
  for (var x = 1; x < 256; x++) {
    var inv = 0;
    for (var y = 1; y < 256; y++) {
      if (gmul(x, y) == 1) { inv = y; break; }
    }
    var s = inv;
    s ^= (inv << 1) | (inv >> 7);
    s ^= (inv << 2) | (inv >> 6);
    s ^= (inv << 3) | (inv >> 5);
    s ^= (inv << 4) | (inv >> 4);
    sbox[x] = (s ^ 0x63) & 0xff;
  }
}
function expandKey() {
  for (var i = 0; i < 16; i++) roundKey[i] = keyBytes[i];
  var rcon = 1;
  for (i = 4; i < 44; i++) {
    var k = i * 4;
    var t0 = roundKey[k - 4], t1 = roundKey[k - 3];
    var t2 = roundKey[k - 2], t3 = roundKey[k - 1];
    if (i % 4 == 0) {
      var tmp = t0;
      t0 = sbox[t1] ^ rcon;
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[tmp];
      rcon = gmul2(rcon);
    }
    roundKey[k] = roundKey[k - 16] ^ t0;
    roundKey[k + 1] = roundKey[k - 15] ^ t1;
    roundKey[k + 2] = roundKey[k - 14] ^ t2;
    roundKey[k + 3] = roundKey[k - 13] ^ t3;
  }
}
function encryptBlock() {
  var r, i, c, t;
  for (i = 0; i < 16; i++) state[i] ^= roundKey[i];
  for (r = 1; r <= 10; r++) {
    for (i = 0; i < 16; i++) state[i] = sbox[state[i]];
    t = state[1];
    state[1] = state[5]; state[5] = state[9]; state[9] = state[13]; state[13] = t;
    t = state[2]; state[2] = state[10]; state[10] = t;
    t = state[6]; state[6] = state[14]; state[14] = t;
    t = state[15]; state[15] = state[11]; state[11] = state[7];
    state[7] = state[3]; state[3] = t;
    if (r < 10) {
      for (c = 0; c < 4; c++) {
        var a0 = state[c * 4], a1 = state[c * 4 + 1];
        var a2 = state[c * 4 + 2], a3 = state[c * 4 + 3];
        state[c * 4] = gmul2(a0) ^ (gmul2(a1) ^ a1) ^ a2 ^ a3;
        state[c * 4 + 1] = a0 ^ gmul2(a1) ^ (gmul2(a2) ^ a2) ^ a3;
        state[c * 4 + 2] = a0 ^ a1 ^ gmul2(a2) ^ (gmul2(a3) ^ a3);
        state[c * 4 + 3] = (gmul2(a0) ^ a0) ^ a1 ^ a2 ^ gmul2(a3);
      }
    }
    for (i = 0; i < 16; i++) state[i] ^= roundKey[r * 16 + i];
  }
}
function main() {
  buildSbox();
  expandKey();
  var checksum = 0;
  for (var b = 0; b < NBLOCKS; b++) {
    for (var i = 0; i < 16; i++) state[i] = (b * 16 + i * 7) & 0xff;
    encryptBlock();
    for (i = 0; i < 16; i++)
      checksum = ((checksum << 5) - checksum + state[i]) & 0x7fffffff;
  }
  return checksum;
}
)", false));

    // --------------------------------------------------------- BLOWFISH
    // Idiomatic (boxed-array) implementation — slower than the compiled
    // version, as in the paper (36.7ms vs 12.0ms).
    out.push_back(manual("BLOWFISH", "BLOWFISH", R"(
var NBLOCKS = 128;
var P = [], S = [[], [], [], []];
var xl = 0, xr = 0;
function u32(x) { return x >>> 0; }
function bfF(x) {
  var a = (x >>> 24) & 0xff;
  var b = (x >>> 16) & 0xff;
  var c = (x >>> 8) & 0xff;
  var d = x & 0xff;
  return u32(u32(u32(u32(S[0][a] + S[1][b]) ^ S[2][c])) + S[3][d]);
}
function encrypt() {
  for (var i = 0; i < 16; i++) {
    xl = u32(xl ^ P[i]);
    xr = u32(bfF(xl) ^ xr);
    var t = xl; xl = xr; xr = t;
  }
  var t2 = xl; xl = xr; xr = t2;
  xr = u32(xr ^ P[16]);
  xl = u32(xl ^ P[17]);
}
var seed = 0;
function lcg() {
  seed = u32(Math.imul(seed, 1664525) + 1013904223);
  return seed;
}
function main() {
  var i;
  seed = 0x12345678;
  P = [];
  S = [[], [], [], []];
  for (i = 0; i < 18; i++) P.push(lcg());
  for (i = 0; i < 256; i++) {
    S[0].push(lcg()); S[1].push(lcg()); S[2].push(lcg()); S[3].push(lcg());
  }
  for (i = 0; i < 18; i++) P[i] = u32(P[i] ^ u32(0x55aa55aa + Math.imul(i, 0x01010101)));
  xl = 0; xr = 0;
  for (i = 0; i < 18; i += 2) {
    encrypt();
    P[i] = xl;
    P[i + 1] = xr;
  }
  var cs = 0;
  for (var b = 0; b < NBLOCKS; b++) {
    xl = u32(Math.imul(b, 0x9e3779b9));
    xr = u32(Math.imul(b, 0x7f4a7c15) + 1);
    encrypt();
    cs = u32(Math.imul(u32(cs ^ xl), 16777619));
    cs = u32(Math.imul(u32(cs ^ xr), 16777619));
  }
  return cs & 0x7fffffff;
}
)", false));

    // -------------------------------------------------------- SHA (W3C)
    // The Web Cryptography API: native digest, minimal JS (the paper's
    // fastest JS row). Computes SHA-256 of the same synthetic message.
    out.push_back(manual("SHA (W3C)", "SHA", R"(
var MSGLEN = 8192;
function main() {
  var message = new Uint8Array(MSGLEN);
  for (var i = 0; i < MSGLEN; i++) message[i] = (i * 211 + 17) & 0xff;
  var digest = crypto.digest(message);
  var cs = 0;
  for (i = 0; i < 32; i++) cs = (cs * 31 + digest[i]) % 1000000007;
  return cs;
}
)", false));

    // ------------------------------------------------------ SHA (jsSHA)
    // Library-style pure-JS SHA-1 mirroring the jsSHA package: generic
    // byte accessors, per-block scratch allocation, boxed word arrays —
    // the indirection that makes library JS slower than compiled JS.
    out.push_back(manual("SHA (jsSHA)", "SHA", R"(
var MSGLEN = 8192;
function u32(x) { return x >>> 0; }
function rol(x, n) { return ((x << n) | (x >>> (32 - n))) >>> 0; }
function byteAt(msg, i) {
  if (i < 0 || i >= msg.length) return 0;
  return msg[i] & 0xff;
}
function wordAt(msg, off) {
  return ((byteAt(msg, off) << 24) | (byteAt(msg, off + 1) << 16) |
          (byteAt(msg, off + 2) << 8) | byteAt(msg, off + 3)) >>> 0;
}
function newSchedule() {
  var w = [];
  for (var i = 0; i < 80; i++) w.push(0);
  return w;
}
function sha1Blocks(message, len) {
  var h = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];
  for (var off = 0; off + 64 <= len; off += 64) {
    var w = newSchedule();
    for (var t = 0; t < 16; t++) w[t] = wordAt(message, off + t * 4);
    for (t = 16; t < 80; t++)
      w[t] = rol(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    var a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (t = 0; t < 80; t++) {
      var f, k;
      if (t < 20) { f = (b & c) | ((~b) & d); k = 0x5a827999; }
      else if (t < 40) { f = b ^ c ^ d; k = 0x6ed9eba1; }
      else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8f1bbcdc; }
      else { f = b ^ c ^ d; k = 0xca62c1d6; }
      var temp = (rol(a, 5) + u32(f) + e + k + w[t]) >>> 0;
      e = d; d = c; c = rol(b, 30); b = a; a = temp;
    }
    h[0] = u32(h[0] + a);
    h[1] = u32(h[1] + b);
    h[2] = u32(h[2] + c);
    h[3] = u32(h[3] + d);
    h[4] = u32(h[4] + e);
  }
  return h;
}
function main() {
  var message = [];
  for (var i = 0; i < MSGLEN; i++) message.push((i * 211 + 17) & 0xff);
  var h = sha1Blocks(message, MSGLEN);
  var cs = (h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]) >>> 0;
  return cs & 0x7fffffff;
}
)", true));

    return out;
  }();
  return all;
}

}  // namespace wb::benchmarks
