// Seeded program generator for the mini-C subset. Every program it emits
// is UB-free by construction so the differential harness can demand exact
// agreement across backends, tiers, and optimization levels:
//  - array indices are power-of-two masked, never out of bounds;
//  - integer division/modulo denominators are generated strictly positive
//    and small (no div-by-zero, no INT_MIN/-1 overflow trap);
//  - every f64 store wraps its value into (-256, 256) via the floor-mod
//    idiom and intrinsic arguments are range-guarded, so no Inf/NaN can
//    arise and the final (int) cast of the checksum cannot trap;
//  - loops are bounded counted loops (continue only inside for, where the
//    increment always runs), so fuel never differs by engine.
// The same seed always yields byte-identical source.
#pragma once

#include <cstdint>
#include <string>

namespace wb::fuzz {

struct GenOptions {
  int min_arrays = 2;       ///< always at least one int and one f64 array
  int max_arrays = 5;
  int max_helpers = 3;      ///< helper functions besides main
  int max_statements = 5;   ///< top-level compute statements in main
  int max_stmt_depth = 2;   ///< loop/if nesting below a top-level statement
  int max_expr_depth = 3;
};

/// Generates one program. Deterministic in (seed, options).
std::string generate_program(uint64_t seed, const GenOptions& options = {});

}  // namespace wb::fuzz
