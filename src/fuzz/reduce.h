// Greedy reproducer minimization (ddmin-lite): removes chunks from a
// diverging input while the divergence persists, halving the chunk size
// down to single elements. The predicate is "still compiles and still
// diverges", so the result is always a valid, still-failing input.
//
// The core works over index sets so it composes with any element type:
// `reduce_source` (line-wise program shrinking) and wb::replay's trace
// reducer are both built on `reduce_indices`.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace wb::fuzz {

/// Returns true when `source` still reproduces the failure being reduced.
using StillFails = std::function<bool(const std::string&)>;

/// Returns true when the subsequence selected by the (sorted) kept
/// indices still satisfies the reduction oracle.
using KeepPredicate = std::function<bool(const std::vector<size_t>&)>;

/// Minimizes an index set {0, ..., count-1} with the ddmin-lite chunk
/// loop: drops chunks of kept indices while `still_ok` holds, halving
/// the chunk size down to single elements. Deterministic; the result is
/// always a sorted subsequence of the input for which `still_ok` held
/// (at worst, all of it).
std::vector<size_t> reduce_indices(size_t count, const KeepPredicate& still_ok);

/// Minimizes `source` line-wise. Deterministic; returns the smallest
/// variant found (at worst, `source` itself).
std::string reduce_source(const std::string& source, const StillFails& still_fails);

}  // namespace wb::fuzz
