// Greedy reproducer minimization (ddmin-lite): removes line chunks from a
// diverging program while the divergence persists, halving the chunk size
// down to single lines. The predicate is "still compiles and still
// diverges", so the result is always a valid, still-failing program.
#pragma once

#include <functional>
#include <string>

namespace wb::fuzz {

/// Returns true when `source` still reproduces the failure being reduced.
using StillFails = std::function<bool(const std::string&)>;

/// Minimizes `source` line-wise. Deterministic; returns the smallest
/// variant found (at worst, `source` itself).
std::string reduce_source(const std::string& source, const StillFails& still_fails);

}  // namespace wb::fuzz
