#include "fuzz/fuzz.h"

#include <sstream>
#include <utility>

#include "backend/wasm_backend.h"
#include "fuzz/reduce.h"
#include "ir/passes.h"
#include "minic/minic.h"
#include "support/rng.h"
#include "support/sha256.h"
#include "support/thread_pool.h"

namespace wb::fuzz {

namespace {

/// Everything one case produced; kept index-ordered for the digest.
struct CaseRecord {
  std::string line;  ///< digest input
  bool divergent = false;
  std::string source;  ///< retained only for divergent cases
  std::string brief;
  bool ran_mutation = false;
  MutationOutcome mutation;
};

/// Compiles the case's program at -O2 and returns the Wasm binary, or
/// empty when compilation fails (the differential run reports that).
std::vector<uint8_t> o2_binary(const std::string& source) {
  std::string error;
  auto m = minic::compile(source, {}, error);
  if (!m) return {};
  const ir::PipelineInfo info = ir::run_pipeline(*m, ir::OptLevel::O2);
  backend::WasmOptions opts;
  opts.fast_math = info.fast_math;
  const backend::WasmArtifact artifact = backend::compile_to_wasm(std::move(*m), opts);
  if (!artifact.ok()) return {};
  return artifact.binary;
}

}  // namespace

std::string FuzzSummary::report() const {
  std::ostringstream out;
  out << "runs=" << runs << " divergent=" << divergent
      << " mutation_cases=" << mutation_cases
      << " mutants_rejected=" << mutants_rejected
      << " mutants_executed=" << mutants_executed << "\n";
  for (const auto& r : reproducers) {
    out << "reproducer case=" << r.case_index << " seed=0x" << std::hex << r.case_seed
        << std::dec << ": " << r.brief << "\n";
  }
  out << "digest=" << digest << "\n";
  return out.str();
}

FuzzSummary run_fuzz(const FuzzOptions& options) {
  // Per-case seeds are derived serially from the master stream so the
  // schedule is a pure function of --seed, whatever --jobs is.
  support::Rng master(options.seed);
  std::vector<uint64_t> case_seeds(options.runs);
  for (auto& seed : case_seeds) seed = master.split().next_u64();

  std::vector<CaseRecord> records(options.runs);
  support::parallel_for(options.runs, options.jobs, [&](size_t i) {
    CaseRecord& rec = records[i];
    const uint64_t seed = case_seeds[i];
    const std::string source = generate_program(seed, options.gen);
    const CaseResult result = run_case(source, options.harness);

    std::ostringstream line;
    line << "case=" << i << " seed=0x" << std::hex << seed << std::dec;
    if (result.ok()) {
      line << " status=ok ref=";
      for (size_t v = 0; v < result.reference_values.size(); ++v) {
        line << (v ? "," : "") << result.reference_values[v];
      }
    } else {
      line << " status=divergent " << result.brief();
      rec.divergent = true;
      rec.source = source;
      rec.brief = result.brief();
    }

    if (options.mutation_every != 0 && i % options.mutation_every == 0) {
      const std::vector<uint8_t> binary = o2_binary(source);
      if (!binary.empty()) {
        rec.ran_mutation = true;
        rec.mutation = run_mutation_oracle(binary, seed ^ 0x6d75746174696f6eull,
                                           options.mutations_per_case);
        line << " mutants=" << rec.mutation.decode_rejected << "/"
             << rec.mutation.validate_rejected << "/" << rec.mutation.executed << "/"
             << rec.mutation.skipped;
        if (!rec.mutation.ok()) {
          line << " MUTATION-ERROR " << rec.mutation.error;
          rec.divergent = true;
          rec.source = source;
          rec.brief = "mutation oracle: " + rec.mutation.error;
        }
      }
    }
    rec.line = line.str();
  });

  FuzzSummary summary;
  summary.runs = options.runs;
  std::string digest_input;
  for (size_t i = 0; i < records.size(); ++i) {
    const CaseRecord& rec = records[i];
    digest_input += rec.line;
    digest_input += '\n';
    if (rec.ran_mutation) {
      ++summary.mutation_cases;
      summary.mutants_rejected += static_cast<size_t>(rec.mutation.decode_rejected) +
                                  static_cast<size_t>(rec.mutation.validate_rejected);
      summary.mutants_executed += static_cast<size_t>(rec.mutation.executed);
    }
    if (!rec.divergent) continue;
    ++summary.divergent;
    if (summary.reproducers.size() >= 3) continue;  // keep the report bounded
    Reproducer repro;
    repro.case_seed = case_seeds[i];
    repro.case_index = i;
    repro.brief = rec.brief;
    repro.source = rec.source;
    if (options.minimize) {
      // Reduction probes run with tight fuel: deleting a loop increment can
      // turn a candidate into a runaway, and engine-dependent fuel traps
      // must not masquerade as the divergence being reduced (nor should a
      // runaway probe cost seconds).
      HarnessOptions probe = options.harness;
      probe.fuel = std::min<uint64_t>(probe.fuel, 20'000'000);
      const auto still_fails = [&](const std::string& candidate) {
        const CaseResult r = run_case(candidate, probe);
        if (!r.frontend_error.empty() || r.divergences.empty()) return false;
        for (const auto& d : r.divergences) {
          if (d.detail.find("fuel exhausted") != std::string::npos) return false;
          if (d.detail.find("stack") != std::string::npos) return false;
        }
        return true;
      };
      if (still_fails(rec.source)) {  // not reducible for frontend errors
        repro.source = reduce_source(rec.source, still_fails);
      }
    }
    summary.reproducers.push_back(std::move(repro));
  }
  summary.digest =
      "sha256:" + support::sha256_hex(std::span<const uint8_t>(
                      reinterpret_cast<const uint8_t*>(digest_input.data()),
                      digest_input.size()));
  return summary;
}

CaseResult replay_source(const std::string& source, const HarnessOptions& options) {
  return run_case(source, options);
}

}  // namespace wb::fuzz
