// Differential harness: compiles one mini-C program through the real
// pipeline at every optimization level and runs it on every engine —
// native IR execution (the per-level reference), the Wasm VM pinned to
// the baseline tier, the Wasm VM pinned to the optimizing tier, and the
// JS backend on the JS engine — demanding bit-identical i32 results.
// Results are additionally compared across levels against -O0, except at
// -Ofast where fast-math reassociation legitimately changes float results
// (the carve-out: within-level agreement is still required there, since
// all engines consume the same post-fast-math IR).
//
// Three structural oracles ride along on every compiled artifact:
//  - validator-accepts: generated modules must validate;
//  - roundtrip: encode(decode(binary)) must be byte-identical;
//  - mutation (run_mutation_oracle): corrupted binaries must be rejected
//    by the decoder or validator, or execute without memory-unsafety.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wb::fuzz {

struct HarnessOptions {
  /// Instruction fuel per engine run; generated programs are tiny, so a
  /// trap on fuel indicates a generator bound failure, not a backend bug.
  uint64_t fuel = 200'000'000;
  /// Mutation-tests the harness itself: nudges the first i32.const in the
  /// compiled Wasm main by +1 at -O2, which the differential check must
  /// then report as a divergence.
  bool plant_wasm_bug = false;
  /// Re-runs both Wasm tiers on the classic (unquickened) loop and demands
  /// the quickened engine's result AND virtual metrics (cost_ps,
  /// ops_executed, arith_counts, calls, tierups, ...) match exactly.
  /// No-op when quickening is already off process-wide (--no-quicken).
  bool quicken_oracle = true;
  /// Same oracle for the JS VM: re-runs the compiled-JS artifact on the
  /// classic switch loop, on both JS tiers (JIT on and off), and demands
  /// the quickened threaded engine's result, JsExecStats, and GC stats
  /// match exactly. No-op when JS quickening is off (--no-quicken-js).
  bool js_quicken_oracle = true;
  /// Re-runs both Wasm tiers on quickened dispatch with the copy-and-patch
  /// JIT disabled and demands the JIT engine's result AND virtual metrics
  /// match exactly. No-op when the JIT is off process-wide (--no-jit /
  /// WB_NO_JIT) or unavailable on this host.
  bool jit_oracle = true;
};

/// One disagreement (or pipeline failure) found while running a program.
struct Divergence {
  std::string level;   ///< optimization level name ("O2", ...)
  std::string engine;  ///< engine that disagreed with the reference
  std::string detail;  ///< expected vs got / trap / compile error
};

struct CaseResult {
  /// One entry per opt level: the native reference result at that level.
  std::vector<int32_t> reference_values;
  std::vector<Divergence> divergences;
  /// Non-empty when the program failed to compile at some level — a
  /// generator bug, reported separately from engine divergence.
  std::string frontend_error;

  [[nodiscard]] bool ok() const {
    return divergences.empty() && frontend_error.empty();
  }
  /// Compact one-line description of the first problem (for logs).
  [[nodiscard]] std::string brief() const;
};

/// Compiles and runs `source` through the full matrix. Deterministic.
CaseResult run_case(const std::string& source, const HarnessOptions& options = {});

/// Aggregate outcome of byte-mutation runs over one compiled binary.
struct MutationOutcome {
  int decode_rejected = 0;   ///< decoder refused the corrupted bytes
  int validate_rejected = 0; ///< decoded but failed validation
  int executed = 0;          ///< validated and ran (result/trap both fine)
  int skipped = 0;           ///< validated but unreasonable to run (huge memory)
  std::string error;         ///< non-empty if the VM itself misbehaved

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Applies `count` independent single-point corruptions (bit flip, byte
/// substitution, truncation, insertion) to `binary`, each derived from
/// `seed`, and checks every corrupted module is either rejected cleanly
/// or executes within the sandbox. Deterministic in (binary, seed, count).
MutationOutcome run_mutation_oracle(const std::vector<uint8_t>& binary, uint64_t seed,
                                    int count);

}  // namespace wb::fuzz
