#include "fuzz/gen.h"

#include <sstream>
#include <vector>

#include "support/rng.h"

namespace wb::fuzz {

namespace {

using support::Rng;

struct ArrayInfo {
  std::string name;
  int len = 16;      // always a power of two, so indices mask cleanly
  bool is_double = false;
  bool is_uchar = false;  // reads are 0..255; stores truncate identically everywhere
};

struct HelperInfo {
  std::string name;
  enum Kind { IntBin, DoubleBin, Recursive } kind = IntBin;
  bool emitted = false;  // callable only after its definition (declare-before-use)
};

/// Emits one program. Holds the rng, the symbol tables, and the output.
class Generator {
 public:
  Generator(uint64_t seed, const GenOptions& options) : rng_(seed), opt_(options) {}

  std::string run() {
    plan_globals();
    std::ostringstream out;
    out << "/* wb_fuzz generated program, seed stream " << std::hex << seed_snapshot_
        << std::dec << " */\n";
    emit_globals(out);
    emit_helpers(out);
    emit_main(out);
    return out.str();
  }

 private:
  // ------------------------------------------------------------- planning

  void plan_globals() {
    seed_snapshot_ = rng_.next_u64();  // stamp the header deterministically
    static const int kLens[] = {8, 16, 32, 64};
    const int span = opt_.max_arrays - opt_.min_arrays + 1;
    const int narrays =
        opt_.min_arrays + static_cast<int>(rng_.next_below(span > 0 ? span : 1));
    for (int i = 0; i < narrays; ++i) {
      ArrayInfo a;
      a.name = "g" + std::to_string(i);
      a.len = kLens[rng_.next_below(4)];
      if (i == 0) {
        a.is_double = false;  // checksum wants at least one of each kind
      } else if (i == 1) {
        a.is_double = true;
      } else {
        const uint64_t k = rng_.next_below(5);
        a.is_double = k >= 3;
        a.is_uchar = k == 2;
      }
      arrays_.push_back(a);
    }
    use_unsigned_hash_ = rng_.next_below(2) == 0;

    const int nhelpers =
        static_cast<int>(rng_.next_below(static_cast<uint64_t>(opt_.max_helpers) + 1));
    for (int i = 0; i < nhelpers; ++i) {
      HelperInfo h;
      h.name = "h" + std::to_string(i);
      h.kind = static_cast<HelperInfo::Kind>(rng_.next_below(3));
      helpers_.push_back(h);
    }
  }

  // ----------------------------------------------------------- expressions

  const ArrayInfo* pick_array(bool want_double) {
    std::vector<const ArrayInfo*> match;
    for (const auto& a : arrays_) {
      if (a.is_double == want_double) match.push_back(&a);
    }
    if (match.empty()) return nullptr;
    return match[rng_.next_below(match.size())];
  }

  /// A masked, always-in-bounds index expression for `a`.
  std::string index_expr(const ArrayInfo& a, int depth) {
    std::string inner;
    if (!int_atoms_.empty() && rng_.next_below(4) != 0) {
      inner = int_atoms_[rng_.next_below(int_atoms_.size())];
      if (rng_.next_below(2) == 0) {
        inner = "(" + inner + " + " + std::to_string(rng_.next_below(8)) + ")";
      }
    } else {
      inner = int_expr(depth > 0 ? depth - 1 : 0);
    }
    return "((" + inner + ") & " + std::to_string(a.len - 1) + ")";
  }

  std::string int_array_read(int depth) {
    const ArrayInfo* a = pick_array(false);
    if (!a) return std::to_string(1 + rng_.next_below(16));
    return a->name + "[" + index_expr(*a, depth) + "]";
  }

  /// f64 array reads are raw leaves: every f64 store is wrapped into
  /// (-256, 256), so reads are bounded by construction.
  std::string double_array_read(int depth) {
    const ArrayInfo* a = pick_array(true);
    if (!a) return "1.5";
    return a->name + "[" + index_expr(*a, depth) + "]";
  }

  std::string int_leaf(int depth) {
    switch (rng_.next_below(4)) {
      case 0:
        return std::to_string(static_cast<int64_t>(rng_.next_below(33)) - 16);
      case 1:
        if (!int_atoms_.empty()) return int_atoms_[rng_.next_below(int_atoms_.size())];
        return std::to_string(1 + rng_.next_below(7));
      default:
        return int_array_read(depth);
    }
  }

  std::string int_binop(int depth) {
    static const char* kOps[] = {"+", "-", "*", "&", "|", "^"};
    return "((" + int_expr(depth - 1) + ") " + kOps[rng_.next_below(6)] + " (" +
           int_expr(depth - 1) + "))";
  }

  std::string int_expr(int depth) {
    if (depth <= 0 || rng_.next_below(5) == 0) return int_leaf(depth);
    switch (rng_.next_below(10)) {
      case 0:
        return "(-(" + int_expr(depth - 1) + "))";
      case 1:  // shift by a small constant
        return "((" + int_expr(depth - 1) + ") " +
               (rng_.next_below(2) ? "<<" : ">>") + " " +
               std::to_string(1 + rng_.next_below(4)) + ")";
      case 2: {  // guarded division / modulo: denominator in [1, 16]
        const char* op = rng_.next_below(2) ? "/" : "%";
        return "((" + int_expr(depth - 1) + ") " + op + " (1 + ((" +
               int_expr(depth - 1) + ") & 15)))";
      }
      case 3:  // comparison (yields 0/1)
        return "((" + int_expr(depth - 1) + ") " + pick_cmp() + " (" +
               int_expr(depth - 1) + "))";
      case 4:  // ternary
        return "(((" + int_expr(depth - 1) + ") " + pick_cmp() + " (" +
               int_expr(depth - 1) + ")) ? (" + int_expr(depth - 1) + ") : (" +
               int_expr(depth - 1) + "))";
      case 5: {  // helper call, or a binop when no int helper is in scope yet
        const std::string call = int_helper_call(depth);
        return call.empty() ? int_binop(depth) : call;
      }
      default:
        return int_binop(depth);
    }
  }

  const char* pick_cmp() {
    static const char* kCmps[] = {"<", ">", "<=", ">=", "==", "!="};
    return kCmps[rng_.next_below(6)];
  }

  std::string int_helper_call(int depth) {
    std::vector<const HelperInfo*> cands;
    for (const auto& h : helpers_) {
      if (h.kind != HelperInfo::DoubleBin && h.emitted) cands.push_back(&h);
    }
    if (cands.empty()) return "";
    const HelperInfo& h = *cands[rng_.next_below(cands.size())];
    if (h.kind == HelperInfo::Recursive) {
      // Bounded recursion: the argument is masked to [0, 15].
      return h.name + "(((" + int_expr(depth - 1) + ") & 15))";
    }
    return h.name + "((" + int_expr(depth - 1) + "), (" + int_expr(depth - 1) + "))";
  }

  std::string double_leaf(int depth) {
    switch (rng_.next_below(5)) {
      case 0: {  // small mixed-sign constant with a fractional part
        const int64_t num = static_cast<int64_t>(rng_.next_below(65)) - 32;
        const int den = 2 + static_cast<int>(rng_.next_below(7));
        return "((double)" + std::to_string(num) + " / " + std::to_string(den) + ".0)";
      }
      case 1:  // masked int cast: magnitude <= 255
        return "((double)((" + int_expr(depth > 0 ? depth - 1 : 0) + ") & 255))";
      case 2:
        if (!double_atoms_.empty()) {
          return double_atoms_[rng_.next_below(double_atoms_.size())];
        }
        return double_array_read(depth);
      default:
        return double_array_read(depth);
    }
  }

  std::string double_binop(int depth) {
    static const char* kOps[] = {"+", "-", "*"};
    return "((" + double_expr(depth - 1) + ") " + kOps[rng_.next_below(3)] + " (" +
           double_expr(depth - 1) + "))";
  }

  std::string double_expr(int depth) {
    if (depth <= 0 || rng_.next_below(5) == 0) return double_leaf(depth);
    switch (rng_.next_below(11)) {
      case 0:
        return "sqrt(fabs(" + double_expr(depth - 1) + "))";
      case 1:
        return "sin(" + double_expr(depth - 1) + ")";
      case 2:
        return "cos(" + double_expr(depth - 1) + ")";
      case 3:
        return (rng_.next_below(2) ? "floor(" : "ceil(") + double_expr(depth - 1) + ")";
      case 4:  // log of a value >= 1
        return "log(1.0 + fabs(" + double_expr(depth - 1) + "))";
      case 5:  // pow with a bounded base: |sin| + 2 is in [1, 3]
        return "pow(sin(" + double_expr(depth - 1) + ") + 2.0, 2.0)";
      case 6:  // exp of a value in [-1, 1]
        return "exp(cos(" + double_expr(depth - 1) + "))";
      case 7:  // guarded division: denominator >= 1
        return "((" + double_expr(depth - 1) + ") / (1.0 + fabs(" +
               double_expr(depth - 1) + ")))";
      case 8: {  // helper call, or a binop when no f64 helper is in scope yet
        const std::string call = double_helper_call(depth);
        return call.empty() ? double_binop(depth) : call;
      }
      default:
        return double_binop(depth);
    }
  }

  std::string double_helper_call(int depth) {
    std::vector<const HelperInfo*> cands;
    for (const auto& h : helpers_) {
      if (h.kind == HelperInfo::DoubleBin && h.emitted) cands.push_back(&h);
    }
    if (cands.empty()) return "";
    const HelperInfo& h = *cands[rng_.next_below(cands.size())];
    return h.name + "((" + double_expr(depth - 1) + "), (" + double_expr(depth - 1) +
           "))";
  }

  /// Wraps an f64 value into (-256, 256) — the only form ever stored,
  /// which is what keeps every double in the program finite.
  static std::string wrap_double(const std::string& e) {
    return "(" + e + ") - floor((" + e + ") / 256.0) * 256.0";
  }

  // ------------------------------------------------------------ statements

  void stmt_store(std::ostringstream& out, const std::string& ind, int expr_depth) {
    const ArrayInfo* a = pick_array(rng_.next_below(2) == 1);
    if (!a) a = &arrays_[rng_.next_below(arrays_.size())];
    if (a->is_double) {
      const std::string rhs = double_expr(expr_depth);
      out << ind << a->name << "[" << index_expr(*a, expr_depth)
          << "] = " << wrap_double(rhs) << ";\n";
    } else {
      static const char* kAssign[] = {"=", "+=", "^="};
      out << ind << a->name << "[" << index_expr(*a, expr_depth) << "] "
          << kAssign[rng_.next_below(3)] << " " << int_expr(expr_depth) << ";\n";
    }
  }

  void stmt_scalar(std::ostringstream& out, const std::string& ind, int expr_depth) {
    if (rng_.next_below(2) == 0) {
      out << ind << "t" << rng_.next_below(2) << " = " << int_expr(expr_depth) << ";\n";
    } else {
      const std::string rhs = double_expr(expr_depth);
      out << ind << "d" << rng_.next_below(2) << " = " << wrap_double(rhs) << ";\n";
    }
  }

  void gen_stmt(std::ostringstream& out, int depth, int indent) {
    const std::string ind(static_cast<size_t>(indent) * 2, ' ');
    const int expr_depth = opt_.max_expr_depth;
    if (depth >= opt_.max_stmt_depth) {
      if (rng_.next_below(3) == 0) {
        stmt_scalar(out, ind, expr_depth);
      } else {
        stmt_store(out, ind, expr_depth);
      }
      return;
    }
    switch (rng_.next_below(8)) {
      case 0: {  // counted for loop, possibly with continue/break
        const std::string iv = "i" + std::to_string(depth);
        const ArrayInfo& a = arrays_[rng_.next_below(arrays_.size())];
        const int lo = static_cast<int>(rng_.next_below(2));
        out << ind << "for (" << iv << " = " << lo << "; " << iv << " < " << a.len
            << "; " << iv << "++) {\n";
        int_atoms_.push_back(iv);
        if (rng_.next_below(4) == 0) {
          // continue is safe only in for loops: the increment always runs.
          out << ind << "  if (" << iv << " == "
              << (2 + rng_.next_below(static_cast<uint64_t>(a.len) - 2)) << ") "
              << (rng_.next_below(2) ? "continue" : "break") << ";\n";
        }
        const int body = 1 + static_cast<int>(rng_.next_below(2));
        for (int s = 0; s < body; ++s) gen_stmt(out, depth + 1, indent + 1);
        int_atoms_.pop_back();
        out << ind << "}\n";
        return;
      }
      case 1: {  // if / else
        out << ind << "if ((" << int_expr(expr_depth - 1) << ") " << pick_cmp()
            << " (" << int_expr(expr_depth - 1) << ")) {\n";
        gen_stmt(out, depth + 1, indent + 1);
        if (rng_.next_below(2) == 0) {
          out << ind << "} else {\n";
          gen_stmt(out, depth + 1, indent + 1);
        }
        out << ind << "}\n";
        return;
      }
      case 2: {  // switch with break-terminated cases
        out << ind << "switch ((" << int_expr(expr_depth - 1) << ") & 3) {\n";
        for (int c = 0; c < 3; ++c) {
          out << ind << "  case " << c << ":\n";
          gen_stmt(out, depth + 1, indent + 2);
          out << ind << "    break;\n";
        }
        out << ind << "  default:\n";
        gen_stmt(out, depth + 1, indent + 2);
        out << ind << "    break;\n";
        out << ind << "}\n";
        return;
      }
      case 3:
      case 4: {  // bounded while / do-while (no continue: the counter must step)
        if (nwhile_ >= kWhilePool) {
          stmt_store(out, ind, expr_depth);
          return;
        }
        const std::string wv = "w" + std::to_string(nwhile_++);
        const int trips = 2 + static_cast<int>(rng_.next_below(10));
        out << ind << wv << " = 0;\n";
        const bool do_while = rng_.next_below(2) == 0;
        out << ind << (do_while ? "do {\n" : "while (" + wv + " < " +
                                                 std::to_string(trips) + ") {\n");
        int_atoms_.push_back(wv);
        gen_stmt(out, depth + 1, indent + 1);
        int_atoms_.pop_back();
        out << ind << "  " << wv << " = " << wv << " + 1;\n";
        if (do_while) {
          out << ind << "} while (" << wv << " < " << trips << ");\n";
        } else {
          out << ind << "}\n";
        }
        return;
      }
      default:
        stmt_store(out, ind, expr_depth);
        return;
    }
  }

  // -------------------------------------------------------------- emission

  void emit_globals(std::ostringstream& out) {
    for (const auto& a : arrays_) {
      const char* type = a.is_double ? "double" : (a.is_uchar ? "unsigned char" : "int");
      out << type << " " << a.name << "[" << a.len << "];\n";
    }
    if (use_unsigned_hash_) out << "unsigned uh;\n";
    out << "\n";
  }

  void emit_helpers(std::ostringstream& out) {
    for (auto& h : helpers_) {
      switch (h.kind) {
        case HelperInfo::IntBin: {
          int_atoms_ = {"a", "b"};
          out << "int " << h.name << "(int a, int b) {\n  return "
              << int_expr(opt_.max_expr_depth - 1) << ";\n}\n";
          int_atoms_.clear();
          break;
        }
        case HelperInfo::DoubleBin: {
          double_atoms_ = {"x", "y"};
          // The body is wrapped, so helper results are bounded leaves.
          const std::string e = double_expr(opt_.max_expr_depth - 1);
          out << "double " << h.name << "(double x, double y) {\n  return "
              << wrap_double(e) << ";\n}\n";
          double_atoms_.clear();
          break;
        }
        case HelperInfo::Recursive: {
          const int step = 1 + static_cast<int>(rng_.next_below(6));
          out << "int " << h.name << "(int n) {\n"
              << "  if (n <= 0) return 1;\n"
              << "  return ((n & 7) + " << step << " * " << h.name
              << "(n - 1)) % 9973;\n}\n";
          break;
        }
      }
      h.emitted = true;
    }
    out << "\n";
  }

  void emit_main(std::ostringstream& out) {
    out << "int main(void) {\n";
    // All locals up front (the kernels' C89-flavoured style). Unused
    // while-counters are just dead locals.
    out << "  int i0; int i1; int t0; int t1;\n";
    out << "  double d0; double d1;\n";
    out << "  int w0; int w1; int w2; int w3; int w4; int w5; int w6; int w7;\n";
    out << "  int cs = 0;\n  double fs = 0.0;\n";
    out << "  t0 = 0; t1 = 0; d0 = 0.0; d1 = 0.0;\n";
    out << "  w0 = 0; w1 = 0; w2 = 0; w3 = 0; w4 = 0; w5 = 0; w6 = 0; w7 = 0;\n\n";

    int_atoms_ = {"t0", "t1"};
    double_atoms_ = {"d0", "d1"};

    // Deterministic initialization of every array.
    for (const auto& a : arrays_) {
      out << "  for (i0 = 0; i0 < " << a.len << "; i0++) " << a.name << "[i0] = ";
      if (a.is_double) {
        const int mul = 1 + static_cast<int>(rng_.next_below(9));
        const int den = 2 + static_cast<int>(rng_.next_below(7));
        out << "(double)(i0 * " << mul << " % 97) / " << den << ".0;\n";
      } else {
        const int mul = 1 + static_cast<int>(rng_.next_below(13));
        const int add = static_cast<int>(rng_.next_below(17));
        out << "(i0 * " << mul << " + " << add << ") % 251;\n";
      }
    }
    out << "\n";

    // Compute statements.
    const int nstmts = 2 + static_cast<int>(rng_.next_below(
                               static_cast<uint64_t>(opt_.max_statements) - 1));
    for (int s = 0; s < nstmts; ++s) gen_stmt(out, 0, 1);
    out << "\n";

    // Optional unsigned FNV-style mix over an int array.
    if (use_unsigned_hash_) {
      const ArrayInfo* a = pick_array(false);
      if (a) {
        out << "  uh = 2166136261;\n";
        out << "  for (i0 = 0; i0 < " << a->len << "; i0++) uh = (uh ^ (unsigned)"
            << a->name << "[i0]) * 16777619;\n";
        out << "  uh = uh ^ (uh >> " << (1 + rng_.next_below(15)) << ");\n";
        out << "  cs = cs ^ (int)(uh & 0x7fffffff);\n\n";
      }
    }

    // Checksum epilogue: every array feeds the result, so a wrong value
    // anywhere in memory changes the returned i32. The floor-mod keeps fs
    // small enough that the final (int) cast cannot trap.
    for (const auto& a : arrays_) {
      if (a.is_double) {
        out << "  for (i0 = 0; i0 < " << a.len << "; i0++) fs += " << a.name
            << "[i0] - floor(" << a.name << "[i0] / 100.0) * 100.0;\n";
      } else {
        out << "  for (i0 = 0; i0 < " << a.len << "; i0++) cs = cs ^ (" << a.name
            << "[i0] * (i0 + 1));\n";
      }
    }
    out << "  cs = cs ^ (t0 + 3 * t1);\n";
    out << "  fs += d0 - floor(d0 / 100.0) * 100.0;\n";
    out << "  fs += d1 - floor(d1 / 100.0) * 100.0;\n";
    out << "  return (cs % 1000003) + (int)(fs * 8.0);\n";
    out << "}\n";
  }

  static constexpr int kWhilePool = 8;

  Rng rng_;
  GenOptions opt_;
  uint64_t seed_snapshot_ = 0;
  std::vector<ArrayInfo> arrays_;
  std::vector<HelperInfo> helpers_;
  bool use_unsigned_hash_ = false;
  int nwhile_ = 0;
  std::vector<std::string> int_atoms_;     ///< in-scope int atom names
  std::vector<std::string> double_atoms_;  ///< in-scope f64 atom names
};

}  // namespace

std::string generate_program(uint64_t seed, const GenOptions& options) {
  return Generator(seed, options).run();
}

}  // namespace wb::fuzz
