// The fuzzing loop: derives one independent rng stream per case from the
// master seed (serially, via Rng::split, so the schedule is identical at
// any --jobs count), generates a program, runs the differential harness,
// and digests the index-ordered outcomes into a summary hash — the same
// (seed, runs) always produces the same digest, byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/gen.h"
#include "fuzz/harness.h"

namespace wb::fuzz {

struct FuzzOptions {
  uint64_t seed = 1;
  size_t runs = 100;
  unsigned jobs = 1;
  /// Every Nth case additionally runs the byte-mutation oracle on its
  /// compiled -O2 binary (0 disables).
  size_t mutation_every = 10;
  int mutations_per_case = 16;
  /// Greedily minimize the first diverging program (off for smoke runs
  /// where wall-clock matters more than reproducer size).
  bool minimize = true;
  GenOptions gen;
  HarnessOptions harness;
};

/// A minimized (or raw, when minimization is off) failing program.
struct Reproducer {
  uint64_t case_seed = 0;  ///< seed to regenerate the unreduced program
  size_t case_index = 0;
  std::string source;      ///< minimized source
  std::string brief;       ///< first divergence, one line
};

struct FuzzSummary {
  size_t runs = 0;
  size_t divergent = 0;
  size_t mutation_cases = 0;
  size_t mutants_rejected = 0;  ///< decode- or validate-rejected mutants
  size_t mutants_executed = 0;  ///< survived to sandboxed execution
  /// sha256 over the index-ordered per-case outcome lines; independent of
  /// --jobs, so two runs are comparable with a string equality check.
  std::string digest;
  std::vector<Reproducer> reproducers;

  [[nodiscard]] bool ok() const { return divergent == 0; }
  /// Human-readable multi-line report (ends with the digest line).
  [[nodiscard]] std::string report() const;
};

/// Runs the loop. Deterministic in `options` (including jobs-invariance
/// of the digest and of every reproducer).
FuzzSummary run_fuzz(const FuzzOptions& options);

/// Replays one program (e.g. a corpus file or a reproducer) through the
/// harness; returns its result. Used by --replay and the corpus gate.
CaseResult replay_source(const std::string& source, const HarnessOptions& options = {});

}  // namespace wb::fuzz
