#include "fuzz/harness.h"

#include <optional>
#include <utility>

#include "backend/js_backend.h"
#include "backend/native_backend.h"
#include "backend/wasm_backend.h"
#include "ir/exec.h"
#include "ir/passes.h"
#include "js/engine.h"
#include "js/interp.h"
#include "minic/minic.h"
#include "support/rng.h"
#include "wasm/codec.h"
#include "wasm/interp.h"
#include "wasm/jit/jit.h"
#include "wasm/validator.h"

namespace wb::fuzz {

namespace {

constexpr ir::OptLevel kLevels[] = {ir::OptLevel::O0, ir::OptLevel::O1,
                                    ir::OptLevel::O2, ir::OptLevel::O3,
                                    ir::OptLevel::Ofast, ir::OptLevel::Os,
                                    ir::OptLevel::Oz};

/// What one engine produced: either a value or an error string.
struct Outcome {
  bool ok = false;
  int32_t value = 0;
  std::string error;

  static Outcome of(int32_t v) { return {true, v, {}}; }
  static Outcome fail(std::string e) { return {false, 0, std::move(e)}; }

  [[nodiscard]] std::string describe() const {
    return ok ? std::to_string(value) : ("<" + error + ">");
  }
};

bool same(const Outcome& a, const Outcome& b) {
  if (a.ok != b.ok) return false;
  return a.ok ? a.value == b.value : a.error == b.error;
}

/// Frontend + mid-end at one level. Recompiles from source per engine
/// because backends consume the module.
std::optional<ir::Module> compile_at(const std::string& source, ir::OptLevel level,
                                     bool& fast_math, std::string& error) {
  auto m = minic::compile(source, {}, error);
  if (!m) return std::nullopt;
  const ir::PipelineInfo info = ir::run_pipeline(*m, level);
  fast_math = info.fast_math;
  return m;
}

Outcome run_native(ir::Module m, uint64_t fuel) {
  backend::NativeArtifact native = backend::compile_to_native(std::move(m));
  ir::Executor exec(native.module);
  exec.set_fuel(fuel);
  const ir::ExecResult r = exec.run("main");
  if (!r.ok) return Outcome::fail("native: " + r.error);
  return Outcome::of(r.as_i32());
}

Outcome run_wasm_tier(const backend::WasmArtifact& artifact, bool optimizing,
                      uint64_t fuel, bool quicken, bool jit,
                      wasm::ExecStats* stats_out = nullptr) {
  wasm::Instance inst(artifact.module, backend::make_import_bindings(artifact));
  inst.set_quicken(quicken);
  inst.set_jit(jit);
  wasm::TierPolicy policy;
  policy.baseline_enabled = !optimizing;
  policy.optimizing_enabled = optimizing;
  inst.set_tier_policy(policy);
  inst.set_fuel(fuel);
  Outcome out;
  const wasm::InvokeResult init = inst.invoke("__init", {});
  if (!init.ok()) {
    out = Outcome::fail(std::string("__init trapped: ") + wasm::to_string(init.trap));
  } else {
    const wasm::InvokeResult r = inst.invoke("main", {});
    out = r.ok() ? Outcome::of(r.value.as_i32())
                 : Outcome::fail(std::string("main trapped: ") +
                                 wasm::to_string(r.trap));
  }
  if (stats_out) *stats_out = inst.stats();
  return out;
}

/// First virtual-metric mismatch between two runs, or "" if bit-identical.
std::string stats_diff(const wasm::ExecStats& a, const wasm::ExecStats& b) {
  const auto field = [](const char* name, uint64_t x, uint64_t y) {
    return std::string(name) + " " + std::to_string(x) + " vs " + std::to_string(y);
  };
  if (a.ops_executed != b.ops_executed)
    return field("ops_executed", a.ops_executed, b.ops_executed);
  if (a.cost_ps != b.cost_ps) return field("cost_ps", a.cost_ps, b.cost_ps);
  for (size_t i = 0; i < a.arith_counts.size(); ++i) {
    if (a.arith_counts[i] != b.arith_counts[i])
      return field("arith_counts", a.arith_counts[i], b.arith_counts[i]) +
             " at cat " + std::to_string(i);
  }
  if (a.calls != b.calls) return field("calls", a.calls, b.calls);
  if (a.host_calls != b.host_calls)
    return field("host_calls", a.host_calls, b.host_calls);
  if (a.memory_grows != b.memory_grows)
    return field("memory_grows", a.memory_grows, b.memory_grows);
  if (a.tierups != b.tierups) return field("tierups", a.tierups, b.tierups);
  return {};
}

/// Runs one compiled-JS artifact on a fresh heap+VM with the given engine
/// (quickened or classic) and tier policy, capturing the VM and GC stats.
Outcome run_js_vm(const js::ScriptCode& code, bool jit, bool quicken, uint64_t fuel,
                  js::JsExecStats* stats_out = nullptr,
                  js::GcStats* gc_out = nullptr) {
  js::Heap heap;
  js::Vm vm(code, heap);
  vm.set_quicken(quicken);
  js::JsTierPolicy policy;
  policy.jit_enabled = jit;
  vm.set_tier_policy(policy);
  vm.set_fuel(fuel);
  Outcome out;
  const js::Vm::Result top = vm.run_top_level();
  if (!top.ok) {
    out = Outcome::fail("js top-level: " + top.error);
  } else {
    const js::Vm::Result r = vm.call_function("main", {});
    if (!r.ok) {
      out = Outcome::fail("js main: " + r.error);
    } else if (!r.value.is_number()) {
      out = Outcome::fail("js main returned non-number");
    } else {
      out = Outcome::of(js::to_int32(r.value.num()));
    }
  }
  if (stats_out) *stats_out = vm.stats();
  if (gc_out) *gc_out = heap.stats();
  return out;
}

/// First virtual-metric or GC-stat mismatch between two JS runs, or "".
std::string js_stats_diff(const js::JsExecStats& a, const js::JsExecStats& b,
                          const js::GcStats& ga, const js::GcStats& gb) {
  const auto field = [](const char* name, uint64_t x, uint64_t y) {
    return std::string(name) + " " + std::to_string(x) + " vs " + std::to_string(y);
  };
  if (a.ops_executed != b.ops_executed)
    return field("ops_executed", a.ops_executed, b.ops_executed);
  if (a.cost_ps != b.cost_ps) return field("cost_ps", a.cost_ps, b.cost_ps);
  for (size_t i = 0; i < a.arith_counts.size(); ++i) {
    if (a.arith_counts[i] != b.arith_counts[i])
      return field("arith_counts", a.arith_counts[i], b.arith_counts[i]) +
             " at cat " + std::to_string(i);
  }
  if (a.tierups != b.tierups) return field("tierups", a.tierups, b.tierups);
  if (a.host_calls != b.host_calls)
    return field("host_calls", a.host_calls, b.host_calls);
  if (ga.collections != gb.collections)
    return field("gc collections", ga.collections, gb.collections);
  if (ga.objects_allocated != gb.objects_allocated)
    return field("gc objects_allocated", ga.objects_allocated, gb.objects_allocated);
  if (ga.objects_freed != gb.objects_freed)
    return field("gc objects_freed", ga.objects_freed, gb.objects_freed);
  if (ga.live_bytes != gb.live_bytes)
    return field("gc live_bytes", ga.live_bytes, gb.live_bytes);
  if (ga.peak_live_bytes != gb.peak_live_bytes)
    return field("gc peak_live_bytes", ga.peak_live_bytes, gb.peak_live_bytes);
  if (ga.peak_external_bytes != gb.peak_external_bytes)
    return field("gc peak_external_bytes", ga.peak_external_bytes,
                 gb.peak_external_bytes);
  return {};
}

/// Mutation-testing hook: bumps the first i32.const in the defined "main"
/// so the harness's divergence detection can itself be tested.
void plant_bug(wasm::Module& module) {
  const wasm::Export* e = module.find_export("main");
  if (!e || e->kind != wasm::ExportKind::Func) return;
  const uint32_t defined = e->index - static_cast<uint32_t>(module.imports.size());
  if (defined >= module.functions.size()) return;
  for (auto& ins : module.functions[defined].body) {
    if (ins.op == wasm::Opcode::I32Const) {
      ins.ival += 1;
      return;
    }
  }
}

}  // namespace

std::string CaseResult::brief() const {
  if (!frontend_error.empty()) return "frontend: " + frontend_error;
  if (!divergences.empty()) {
    const Divergence& d = divergences.front();
    return d.level + " " + d.engine + ": " + d.detail;
  }
  return "ok";
}

CaseResult run_case(const std::string& source, const HarnessOptions& options) {
  CaseResult result;
  std::optional<int32_t> o0_value;
  for (const ir::OptLevel level : kLevels) {
    const char* lname = ir::to_string(level);
    bool fast_math = false;
    std::string error;

    auto diverge = [&](const char* engine, const std::string& detail) {
      result.divergences.push_back(Divergence{lname, engine, detail});
    };

    // Native IR execution is the per-level reference.
    auto m_native = compile_at(source, level, fast_math, error);
    if (!m_native) {
      result.frontend_error = error;
      return result;  // same frontend, same failure at every level
    }
    const Outcome ref = run_native(std::move(*m_native), options.fuel);
    if (!ref.ok) {
      diverge("native", ref.error);
      continue;  // no reference to compare the other engines against
    }
    result.reference_values.push_back(ref.value);
    if (level == ir::OptLevel::O0) o0_value = ref.value;

    // Cross-level: every level must match -O0, except -Ofast whose
    // fast-math reassociation legitimately changes float rounding.
    if (level != ir::OptLevel::O0 && level != ir::OptLevel::Ofast &&
        o0_value.has_value() && ref.value != *o0_value) {
      diverge("native-cross-level", "O0=" + std::to_string(*o0_value) + " " + lname +
                                        "=" + std::to_string(ref.value));
    }

    // Wasm: one artifact, both tiers + the structural oracles.
    auto m_wasm = compile_at(source, level, fast_math, error);
    backend::WasmOptions wopts;
    wopts.fast_math = fast_math;
    backend::WasmArtifact artifact =
        backend::compile_to_wasm(std::move(*m_wasm), wopts);
    if (!artifact.ok()) {
      diverge("wasm backend", artifact.error);
      continue;
    }

    // Oracle: the generator's output must validate.
    if (const auto verr = wasm::validate(artifact.module)) {
      diverge("oracle:validate", verr->message);
    }
    // Oracle: encode -> decode -> re-encode must be byte-identical.
    {
      std::string derr;
      const auto decoded = wasm::decode(artifact.binary, &derr);
      if (!decoded) {
        diverge("oracle:roundtrip", "decode failed: " + derr);
      } else if (wasm::encode(*decoded) != artifact.binary) {
        diverge("oracle:roundtrip", "re-encoded bytes differ");
      }
    }

    if (options.plant_wasm_bug && level == ir::OptLevel::O2) {
      plant_bug(artifact.module);
    }

    const bool quicken = wasm::quicken_default();
    const bool jit = quicken && wasm::jit::jit_default() && wasm::jit::available();
    wasm::ExecStats base_stats;
    const Outcome base = run_wasm_tier(artifact, /*optimizing=*/false,
                                       options.fuel, quicken, jit, &base_stats);
    if (!same(base, ref)) {
      diverge("wasm-baseline", "expected " + ref.describe() + " got " + base.describe());
    }
    wasm::ExecStats opt_stats;
    const Outcome opt = run_wasm_tier(artifact, /*optimizing=*/true,
                                      options.fuel, quicken, jit, &opt_stats);
    if (!same(opt, ref)) {
      diverge("wasm-optimizing", "expected " + ref.describe() + " got " + opt.describe());
    }

    // Oracles: the primary engine (quickened, and JIT when available) must
    // agree with each slower engine on the result and on every virtual
    // metric, bit for bit. The quickened-dispatch (JIT off) run is both
    // the jit oracle's reference and the quicken oracle's subject.
    if ((options.quicken_oracle || options.jit_oracle) && quicken) {
      for (const bool optimizing : {false, true}) {
        const Outcome& primary = optimizing ? opt : base;
        const wasm::ExecStats& primary_stats = optimizing ? opt_stats : base_stats;
        wasm::ExecStats nojit_stats = primary_stats;
        Outcome nojit = primary;
        if (jit) {
          nojit = run_wasm_tier(artifact, optimizing, options.fuel,
                                /*quicken=*/true, /*jit=*/false, &nojit_stats);
        }
        if (options.jit_oracle && jit) {
          const char* engine =
              optimizing ? "oracle:jit-optimizing" : "oracle:jit-baseline";
          if (!same(primary, nojit)) {
            diverge(engine, "quickened " + nojit.describe() + " jit " +
                                primary.describe());
          } else if (const std::string d = stats_diff(nojit_stats, primary_stats);
                     !d.empty()) {
            diverge(engine, "metrics differ (quickened vs jit): " + d);
          }
        }
        if (options.quicken_oracle) {
          wasm::ExecStats classic_stats;
          const Outcome classic =
              run_wasm_tier(artifact, optimizing, options.fuel,
                            /*quicken=*/false, /*jit=*/false, &classic_stats);
          const char* engine =
              optimizing ? "oracle:quicken-optimizing" : "oracle:quicken-baseline";
          if (!same(nojit, classic)) {
            diverge(engine, "classic " + classic.describe() + " quickened " +
                                nojit.describe());
          } else if (const std::string d = stats_diff(classic_stats, nojit_stats);
                     !d.empty()) {
            diverge(engine, "metrics differ (classic vs quickened): " + d);
          }
        }
      }
    }

    // JS backend on the JS VM: compile once per level, then run the
    // differential check plus (when quickening is on) the classic-vs-
    // quickened oracle across both JS tiers.
    auto m_js = compile_at(source, level, fast_math, error);
    backend::JsOptions jsopts;
    jsopts.fast_math = fast_math;
    const backend::JsArtifact jsart = backend::compile_to_js(std::move(*m_js), jsopts);
    if (!jsart.ok()) {
      diverge("js backend", jsart.error);
      continue;
    }
    std::string jserr;
    const auto jscode = js::compile_script(jsart.source, jserr);
    if (!jscode) {
      diverge("js compile", jserr);
      continue;
    }
    const bool js_quicken = js::quicken_default();
    js::JsExecStats js_stats;
    js::GcStats js_gc;
    const Outcome js = run_js_vm(*jscode, /*jit=*/true, js_quicken, options.fuel,
                                 &js_stats, &js_gc);
    if (!same(js, ref)) {
      diverge("js", "expected " + ref.describe() + " got " + js.describe());
    }

    // Oracle: the quickened JS engine must agree with the classic switch
    // loop on the result and on every virtual metric and GC stat.
    if (options.js_quicken_oracle && js_quicken) {
      for (const bool jit : {true, false}) {
        js::JsExecStats quick_stats, classic_stats;
        js::GcStats quick_gc, classic_gc;
        const Outcome quick = jit ? js
                                  : run_js_vm(*jscode, jit, /*quicken=*/true,
                                              options.fuel, &quick_stats, &quick_gc);
        if (jit) {
          quick_stats = js_stats;
          quick_gc = js_gc;
        }
        const Outcome classic = run_js_vm(*jscode, jit, /*quicken=*/false,
                                          options.fuel, &classic_stats, &classic_gc);
        const char* engine =
            jit ? "oracle:js-quicken-jit" : "oracle:js-quicken-nojit";
        if (!same(quick, classic)) {
          diverge(engine, "classic " + classic.describe() + " quickened " +
                              quick.describe());
        } else if (const std::string d = js_stats_diff(classic_stats, quick_stats,
                                                       classic_gc, quick_gc);
                   !d.empty()) {
          diverge(engine, "metrics differ (classic vs quickened): " + d);
        }
      }
    }
  }
  return result;
}

MutationOutcome run_mutation_oracle(const std::vector<uint8_t>& binary, uint64_t seed,
                                    int count) {
  MutationOutcome outcome;
  support::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    std::vector<uint8_t> bytes = binary;
    const size_t pos = rng.next_below(bytes.size());
    switch (rng.next_below(4)) {
      case 0:
        bytes[pos] ^= static_cast<uint8_t>(1u << rng.next_below(8));
        break;
      case 1:
        bytes[pos] = static_cast<uint8_t>(rng.next_u64() & 0xff);
        break;
      case 2:
        bytes.resize(pos + 1);
        break;
      default:
        bytes.insert(bytes.begin() + static_cast<ptrdiff_t>(pos),
                     static_cast<uint8_t>(rng.next_u64() & 0xff));
        break;
    }

    std::string error;
    const auto decoded = wasm::decode(bytes, &error);
    if (!decoded) {
      ++outcome.decode_rejected;
      continue;
    }
    if (wasm::validate(*decoded)) {
      ++outcome.validate_rejected;
      continue;
    }
    // A corrupted module slipped through decode+validate: it must still
    // execute without memory-unsafety. Skip only absurd memory requests.
    if (decoded->memory && decoded->memory->min_pages > 256) {
      ++outcome.skipped;
      continue;
    }
    std::vector<wasm::HostFn> host_fns;
    for (const auto& imp : decoded->imports) {
      const wasm::FuncType& type = decoded->types[imp.type_index];
      const bool has_result = !type.results.empty();
      const wasm::ValType rt = has_result ? type.results[0] : wasm::ValType::I32;
      host_fns.push_back([has_result, rt](std::span<const wasm::Value>,
                                          wasm::Value* result) {
        if (has_result && result) {
          *result = rt == wasm::ValType::F64   ? wasm::Value::from_f64(0.0)
                    : rt == wasm::ValType::F32 ? wasm::Value::from_f32(0.0f)
                    : rt == wasm::ValType::I64 ? wasm::Value::from_i64(0)
                                               : wasm::Value::from_i32(0);
        }
        return wasm::Trap::None;
      });
    }
    wasm::Instance inst(*decoded, std::move(host_fns));
    inst.set_fuel(2'000'000);
    for (const auto& e : decoded->exports) {
      if (e.kind != wasm::ExportKind::Func) continue;
      if (!decoded->func_type(e.index).params.empty()) continue;
      (void)inst.invoke(e.name, {});  // result or trap: both acceptable
    }
    ++outcome.executed;
  }
  return outcome;
}

}  // namespace wb::fuzz
