#include "fuzz/reduce.h"

#include <sstream>
#include <vector>

namespace wb::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<size_t> without(const std::vector<size_t>& kept, size_t from,
                            size_t count) {
  std::vector<size_t> out;
  out.reserve(kept.size() - count);
  for (size_t i = 0; i < kept.size(); ++i) {
    if (i >= from && i < from + count) continue;
    out.push_back(kept[i]);
  }
  return out;
}

}  // namespace

std::vector<size_t> reduce_indices(size_t count, const KeepPredicate& still_ok) {
  std::vector<size_t> kept(count);
  for (size_t i = 0; i < count; ++i) kept[i] = i;
  // Chunk sizes n/2, n/4, ..., 1; restart a pass whenever a removal lands
  // (classic ddmin greediness, without the subset-complement bookkeeping).
  for (size_t chunk = kept.size() / 2; chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (size_t from = 0; from + chunk <= kept.size();) {
        const std::vector<size_t> candidate = without(kept, from, chunk);
        if (still_ok(candidate)) {
          kept = candidate;
          removed_any = true;
          // keep `from`: the next chunk slid into place
        } else {
          from += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }
  return kept;
}

std::string reduce_source(const std::string& source, const StillFails& still_fails) {
  const std::vector<std::string> lines = split_lines(source);
  const auto join = [&](const std::vector<size_t>& kept) {
    std::string out;
    for (const size_t i : kept) {
      out += lines[i];
      out += '\n';
    }
    return out;
  };
  const std::vector<size_t> kept = reduce_indices(
      lines.size(),
      [&](const std::vector<size_t>& candidate) { return still_fails(join(candidate)); });
  return join(kept);
}

}  // namespace wb::fuzz
