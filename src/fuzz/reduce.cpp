#include "fuzz/reduce.h"

#include <sstream>
#include <vector>

namespace wb::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::istringstream in(source);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string join_without(const std::vector<std::string>& lines, size_t from,
                         size_t count) {
  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i >= from && i < from + count) continue;
    out += lines[i];
    out += '\n';
  }
  return out;
}

}  // namespace

std::string reduce_source(const std::string& source, const StillFails& still_fails) {
  std::vector<std::string> lines = split_lines(source);
  // Chunk sizes n/2, n/4, ..., 1; restart a pass whenever a removal lands
  // (classic ddmin greediness, without the subset-complement bookkeeping).
  for (size_t chunk = lines.size() / 2; chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (size_t from = 0; from + chunk <= lines.size();) {
        const std::string candidate = join_without(lines, from, chunk);
        if (still_fails(candidate)) {
          lines.erase(lines.begin() + static_cast<ptrdiff_t>(from),
                      lines.begin() + static_cast<ptrdiff_t>(from + chunk));
          removed_any = true;
          // keep `from`: the next chunk slid into place
        } else {
          from += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace wb::fuzz
