// Optimization passes over the structured IR, mirroring the LLVM pass
// groups the paper discusses (Sec. 2.1.2): -globalopt, function inlining,
// loop-invariant code motion, -vectorize-loops (SIMD lane-stamping of
// counted innermost loops; lanes amortize on native, scalarize on Wasm/JS), fast-math, and
// -libcalls-shrinkwrap's libcall cleanup. Pipelines for each -O level are
// in run_pipeline(); backend-specific late passes (dead-global-store
// elimination and unused-global removal) are exposed separately because
// the paper's central counter-intuitive result — -Ofast Wasm keeping
// stores to never-read globals (Fig. 7) — is a *backend* bug we replicate.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"

namespace wb::ir {

/// Folds constant subexpressions and algebraic identities (x+0, x*1, ...).
void pass_constfold(Module& module);

/// Removes assignments to registers that are never read (pure RHS only).
void pass_dce(Module& module);

/// -globalopt: removes globals that are referenced nowhere.
void pass_globalopt(Module& module);

/// Deletes statement-position calls to pure math intrinsics whose results
/// are unused (the useful half of -libcalls-shrinkwrap).
void pass_libcall_dce(Module& module);

/// Inlines small callees. `threshold` is an IR-node budget.
void pass_inline(Module& module, int threshold);

/// Loop-invariant code motion: hoists sizable pure invariant subtrees.
void pass_licm(Module& module);

/// Interprocedural constant propagation: when every call site passes the
/// same constant, the constant is propagated into the callee body (the
/// signature stays — this reproduces the paper's Fig. 8, where the Wasm
/// backend re-materializes the constant at each use instead of reading a
/// parameter local).
void pass_ipconstprop(Module& module);

/// -vectorize-loops: stamps simple counted innermost loops (and their
/// arithmetic) with a `factor`-lane SIMD width. Semantics are unchanged;
/// the native target amortizes lanes while the Wasm/JS backends must
/// scalarize with extra data movement — the paper's core mechanism.
void pass_vectorize(Module& module, int factor);

/// Fast-math: float div-by-constant becomes multiply by reciprocal, and
/// float constants reassociate. Returns the module to a state the
/// backends must treat as fast-math-compiled (see wasm DGSE bug).
void pass_fastmath(Module& module);

// ---------------------------------------------------------- late passes

/// Dead-global-store elimination: removes stores to globals that are never
/// loaded. Run per-backend; the wasm/js (Cheerp-style) backends *skip* it
/// under fast-math, replicating the LLVM bug the paper found in ADPCM.
void pass_dead_global_stores(Module& module);

/// Removes globals no longer referenced (run after DGSE; shrinks the data
/// segment and therefore memory and code size).
void pass_remove_unused_globals(Module& module);

// ------------------------------------------------------------ pipelines

enum class OptLevel : uint8_t { O0, O1, O2, O3, Ofast, Os, Oz };
const char* to_string(OptLevel level);

struct PipelineInfo {
  bool fast_math = false;
  std::vector<std::string> passes_run;
};

/// Runs the mid-end pipeline for `level` (backend-independent part).
PipelineInfo run_pipeline(Module& module, OptLevel level);

}  // namespace wb::ir
