#include "ir/ir.h"

#include <cstring>
#include <sstream>

namespace wb::ir {

const char* to_string(Ty t) {
  switch (t) {
    case Ty::Void: return "void";
    case Ty::I32: return "i32";
    case Ty::I64: return "i64";
    case Ty::F32: return "f32";
    case Ty::F64: return "f64";
  }
  return "?";
}

size_t size_of(Ty t) {
  switch (t) {
    case Ty::Void: return 0;
    case Ty::I32: return 4;
    case Ty::I64: return 8;
    case Ty::F32: return 4;
    case Ty::F64: return 8;
  }
  return 0;
}

Ty mem_value_ty(MemTy m) {
  switch (m) {
    case MemTy::U8: return Ty::I32;
    case MemTy::I32: return Ty::I32;
    case MemTy::I64: return Ty::I64;
    case MemTy::F32: return Ty::F32;
    case MemTy::F64: return Ty::F64;
  }
  return Ty::I32;
}

size_t mem_size(MemTy m) {
  switch (m) {
    case MemTy::U8: return 1;
    case MemTy::I32: return 4;
    case MemTy::I64: return 8;
    case MemTy::F32: return 4;
    case MemTy::F64: return 8;
  }
  return 4;
}

size_t GlobalVar::byte_size() const { return count * mem_size(elem); }

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::Add: return "add";
    case BinOp::Sub: return "sub";
    case BinOp::Mul: return "mul";
    case BinOp::DivS: return "div_s";
    case BinOp::DivU: return "div_u";
    case BinOp::RemS: return "rem_s";
    case BinOp::RemU: return "rem_u";
    case BinOp::And: return "and";
    case BinOp::Or: return "or";
    case BinOp::Xor: return "xor";
    case BinOp::Shl: return "shl";
    case BinOp::ShrS: return "shr_s";
    case BinOp::ShrU: return "shr_u";
    case BinOp::Eq: return "eq";
    case BinOp::Ne: return "ne";
    case BinOp::LtS: return "lt_s";
    case BinOp::LtU: return "lt_u";
    case BinOp::LeS: return "le_s";
    case BinOp::LeU: return "le_u";
    case BinOp::GtS: return "gt_s";
    case BinOp::GtU: return "gt_u";
    case BinOp::GeS: return "ge_s";
    case BinOp::GeU: return "ge_u";
  }
  return "?";
}

const char* to_string(Intrinsic i) {
  switch (i) {
    case Intrinsic::Sqrt: return "sqrt";
    case Intrinsic::Fabs: return "fabs";
    case Intrinsic::Floor: return "floor";
    case Intrinsic::Ceil: return "ceil";
    case Intrinsic::Pow: return "pow";
    case Intrinsic::Exp: return "exp";
    case Intrinsic::Log: return "log";
    case Intrinsic::Sin: return "sin";
    case Intrinsic::Cos: return "cos";
    default: return "?";
  }
}

Ty cast_result(CastOp op) {
  switch (op) {
    case CastOp::I32ToI64S:
    case CastOp::I32ToI64U:
    case CastOp::F64ToI64S:
      return Ty::I64;
    case CastOp::I64ToI32:
    case CastOp::F64ToI32S:
    case CastOp::F32ToI32S:
      return Ty::I32;
    case CastOp::I32ToF64S:
    case CastOp::I32ToF64U:
    case CastOp::I64ToF64S:
    case CastOp::I64ToF64U:
    case CastOp::F32ToF64:
      return Ty::F64;
    case CastOp::F64ToF32:
    case CastOp::I32ToF32S:
      return Ty::F32;
  }
  return Ty::I32;
}

Ty cast_operand(CastOp op) {
  switch (op) {
    case CastOp::I32ToI64S:
    case CastOp::I32ToI64U:
    case CastOp::I32ToF64S:
    case CastOp::I32ToF64U:
    case CastOp::I32ToF32S:
      return Ty::I32;
    case CastOp::I64ToI32:
    case CastOp::I64ToF64S:
    case CastOp::I64ToF64U:
      return Ty::I64;
    case CastOp::F64ToI32S:
    case CastOp::F64ToI64S:
    case CastOp::F64ToF32:
      return Ty::F64;
    case CastOp::F32ToF64:
    case CastOp::F32ToI32S:
      return Ty::F32;
  }
  return Ty::I32;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->ty = ty;
  e->imm = imm;
  e->reg = reg;
  e->bin = bin;
  e->un = un;
  e->cast = cast;
  e->func = func;
  e->intrinsic = intrinsic;
  e->mem_offset = mem_offset;
  e->mem = mem;
  e->vec = vec;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->reg = reg;
  s->store_ty = store_ty;
  s->mem = mem;
  s->mem_offset = mem_offset;
  s->vec = vec;
  if (e0) s->e0 = e0->clone();
  if (e1) s->e1 = e1->clone();
  s->body.reserve(body.size());
  for (const auto& b : body) s->body.push_back(b->clone());
  s->else_body.reserve(else_body.size());
  for (const auto& b : else_body) s->else_body.push_back(b->clone());
  return s;
}

ExprPtr make_const(Ty ty, uint64_t bits) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Const;
  e->ty = ty;
  e->imm = bits;
  return e;
}

ExprPtr make_const_i32(int32_t v) {
  return make_const(Ty::I32, static_cast<uint64_t>(static_cast<uint32_t>(v)));
}

ExprPtr make_const_i64(int64_t v) { return make_const(Ty::I64, static_cast<uint64_t>(v)); }

ExprPtr make_const_f32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return make_const(Ty::F32, bits);
}

ExprPtr make_const_f64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return make_const(Ty::F64, bits);
}

ExprPtr make_reg(Ty ty, uint32_t reg) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Reg;
  e->ty = ty;
  e->reg = reg;
  return e;
}

ExprPtr make_global_addr(uint32_t global_index) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::GlobalAddr;
  e->ty = Ty::I32;
  e->reg = global_index;
  return e;
}

ExprPtr make_bin(BinOp op, Ty ty, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Bin;
  e->ty = is_cmp(op) ? Ty::I32 : ty;
  e->bin = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

ExprPtr make_un(UnOp op, Ty ty, ExprPtr a) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Un;
  e->ty = op == UnOp::LNot ? Ty::I32 : ty;
  e->un = op;
  e->args.push_back(std::move(a));
  return e;
}

ExprPtr make_cast(CastOp op, ExprPtr a) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Cast;
  e->ty = cast_result(op);
  e->cast = op;
  e->args.push_back(std::move(a));
  return e;
}

ExprPtr make_load(MemTy mem, ExprPtr addr, uint32_t offset) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::Load;
  e->ty = mem_value_ty(mem);
  e->mem = mem;
  e->mem_offset = offset;
  e->args.push_back(std::move(addr));
  return e;
}

StmtPtr make_assign(uint32_t reg, ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Assign;
  s->reg = reg;
  s->e0 = std::move(value);
  return s;
}

StmtPtr make_store(MemTy mem, ExprPtr addr, ExprPtr value, uint32_t offset) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::Store;
  s->store_ty = mem_value_ty(mem);
  s->mem = mem;
  s->mem_offset = offset;
  s->e0 = std::move(addr);
  s->e1 = std::move(value);
  return s;
}

uint32_t layout_static_globals(Module& module, uint32_t base) {
  uint32_t at = base;
  for (auto& g : module.globals) {
    if (g.dynamic_alloc) continue;
    const uint32_t align = static_cast<uint32_t>(mem_size(g.elem));
    at = (at + align - 1) & ~(align - 1);
    g.address = at;
    at += static_cast<uint32_t>(g.byte_size());
  }
  return at;
}

// ------------------------------------------------------------- printing

namespace {

void print_expr(std::ostringstream& out, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Const:
      if (e.ty == Ty::F64) {
        double d;
        std::memcpy(&d, &e.imm, sizeof d);
        out << d;
      } else if (e.ty == Ty::F32) {
        float f;
        uint32_t bits = static_cast<uint32_t>(e.imm);
        std::memcpy(&f, &bits, sizeof f);
        out << f;
      } else {
        out << static_cast<int64_t>(e.imm);
      }
      break;
    case Expr::Kind::Reg:
      out << "%" << e.reg;
      break;
    case Expr::Kind::GlobalAddr:
      out << "&g" << e.reg;
      break;
    case Expr::Kind::Bin:
      out << "(" << to_string(e.bin) << "." << to_string(e.args[0]->ty) << " ";
      print_expr(out, *e.args[0]);
      out << " ";
      print_expr(out, *e.args[1]);
      out << ")";
      break;
    case Expr::Kind::Un:
      out << "(" << (e.un == UnOp::Neg ? "neg" : e.un == UnOp::BitNot ? "bitnot" : "lnot")
          << " ";
      print_expr(out, *e.args[0]);
      out << ")";
      break;
    case Expr::Kind::Cast:
      out << "(cast." << to_string(e.ty) << " ";
      print_expr(out, *e.args[0]);
      out << ")";
      break;
    case Expr::Kind::Load:
      out << "(load." << to_string(e.ty) << "+" << e.mem_offset << " ";
      print_expr(out, *e.args[0]);
      out << ")";
      break;
    case Expr::Kind::Call:
      out << "(call f" << e.func;
      for (const auto& a : e.args) {
        out << " ";
        print_expr(out, *a);
      }
      out << ")";
      break;
    case Expr::Kind::IntrinsicCall:
      out << "(" << to_string(e.intrinsic);
      for (const auto& a : e.args) {
        out << " ";
        print_expr(out, *a);
      }
      out << ")";
      break;
  }
}

void print_stmt(std::ostringstream& out, const Stmt& s, int indent) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case Stmt::Kind::Assign:
      out << pad << "%" << s.reg << " = ";
      print_expr(out, *s.e0);
      out << "\n";
      break;
    case Stmt::Kind::Store:
      out << pad << "store." << to_string(s.store_ty) << "+" << s.mem_offset << " ";
      print_expr(out, *s.e0);
      out << " <- ";
      print_expr(out, *s.e1);
      out << "\n";
      break;
    case Stmt::Kind::ExprStmt:
      out << pad;
      print_expr(out, *s.e0);
      out << "\n";
      break;
    case Stmt::Kind::If:
      out << pad << "if ";
      print_expr(out, *s.e0);
      out << " {\n";
      for (const auto& b : s.body) print_stmt(out, *b, indent + 1);
      if (!s.else_body.empty()) {
        out << pad << "} else {\n";
        for (const auto& b : s.else_body) print_stmt(out, *b, indent + 1);
      }
      out << pad << "}\n";
      break;
    case Stmt::Kind::While:
      out << pad << "while ";
      print_expr(out, *s.e0);
      out << " {\n";
      for (const auto& b : s.body) print_stmt(out, *b, indent + 1);
      out << pad << "}\n";
      break;
    case Stmt::Kind::DoWhile:
      out << pad << "do {\n";
      for (const auto& b : s.body) print_stmt(out, *b, indent + 1);
      out << pad << "} while ";
      print_expr(out, *s.e0);
      out << "\n";
      break;
    case Stmt::Kind::Break:
      out << pad << "break\n";
      break;
    case Stmt::Kind::Continue:
      out << pad << "continue\n";
      break;
    case Stmt::Kind::Return:
      out << pad << "return";
      if (s.e0) {
        out << " ";
        print_expr(out, *s.e0);
      }
      out << "\n";
      break;
  }
}

}  // namespace

std::string to_text(const Function& fn) {
  std::ostringstream out;
  out << "func " << fn.name << "(";
  for (size_t i = 0; i < fn.params.size(); ++i) {
    if (i) out << ", ";
    out << "%" << i << ":" << to_string(fn.params[i]);
  }
  out << ") -> " << to_string(fn.ret) << " {\n";
  for (const auto& s : fn.body) print_stmt(out, *s, 1);
  out << "}\n";
  return out.str();
}

std::string to_text(const Module& module) {
  std::ostringstream out;
  for (const auto& g : module.globals) {
    out << "global " << g.name << " : " << to_string(mem_value_ty(g.elem))
        << "/" << mem_size(g.elem) << "B";
    if (g.count > 1) out << "[" << g.count << "]";
    if (g.dynamic_alloc) out << " (dynamic)";
    out << " @" << g.address << "\n";
  }
  for (const auto& fn : module.functions) out << to_text(fn);
  return out.str();
}

}  // namespace wb::ir
