#include "ir/passes.h"

#include <cmath>
#include <cstring>
#include <unordered_set>

namespace wb::ir {

namespace {

// ------------------------------------------------------------ traversal

/// Applies `f` to every statement in `body`, recursively (pre-order).
template <typename F>
void for_each_stmt(std::vector<StmtPtr>& body, const F& f) {
  for (auto& s : body) {
    f(*s);
    for_each_stmt(s->body, f);
    for_each_stmt(s->else_body, f);
  }
}

/// Applies `f` to each top-level ExprPtr slot of a statement.
template <typename F>
void for_each_expr_slot(Stmt& s, const F& f) {
  if (s.e0) f(s.e0);
  if (s.e1) f(s.e1);
}

/// Post-order walk over an expression tree; `f` may replace the node.
template <typename F>
void walk_expr(ExprPtr& e, const F& f) {
  for (auto& a : e->args) walk_expr(a, f);
  f(e);
}

template <typename F>
void walk_exprs_in_body(std::vector<StmtPtr>& body, const F& f) {
  for_each_stmt(body, [&](Stmt& s) {
    for_each_expr_slot(s, [&](ExprPtr& e) { walk_expr(e, f); });
  });
}

size_t node_count(const Expr& e) {
  size_t n = 1;
  for (const auto& a : e.args) n += node_count(*a);
  return n;
}

size_t node_count(const Stmt& s) {
  size_t n = 1;
  if (s.e0) n += node_count(*s.e0);
  if (s.e1) n += node_count(*s.e1);
  for (const auto& b : s.body) n += node_count(*b);
  for (const auto& b : s.else_body) n += node_count(*b);
  return n;
}

bool expr_contains(const Expr& e, Expr::Kind kind) {
  if (e.kind == kind) return true;
  for (const auto& a : e.args) {
    if (expr_contains(*a, kind)) return true;
  }
  return false;
}

/// No calls, loads, or division (division may trap, so it is not safe to
/// speculate or delete).
bool is_speculatable(const Expr& e) {
  if (e.kind == Expr::Kind::Call || e.kind == Expr::Kind::Load) return false;
  if (e.kind == Expr::Kind::Bin && is_div_or_rem(e.bin)) return false;
  if (e.kind == Expr::Kind::Cast &&
      (e.cast == CastOp::F64ToI32S || e.cast == CastOp::F64ToI64S ||
       e.cast == CastOp::F32ToI32S)) {
    return false;  // may trap on out-of-range
  }
  for (const auto& a : e.args) {
    if (!is_speculatable(*a)) return false;
  }
  return true;
}

/// No calls (loads allowed): evaluating has no side effect, though the
/// value may depend on memory.
bool is_pure(const Expr& e) {
  if (e.kind == Expr::Kind::Call) return false;
  for (const auto& a : e.args) {
    if (!is_pure(*a)) return false;
  }
  return true;
}

void collect_reg_reads(const Expr& e, std::unordered_set<uint32_t>& reads) {
  if (e.kind == Expr::Kind::Reg) reads.insert(e.reg);
  for (const auto& a : e.args) collect_reg_reads(*a, reads);
}

// ------------------------------------------------------- const folding

double const_f64(const Expr& e) {
  if (e.ty == Ty::F32) {
    float f;
    uint32_t bits = static_cast<uint32_t>(e.imm);
    std::memcpy(&f, &bits, sizeof f);
    return f;
  }
  double d;
  std::memcpy(&d, &e.imm, sizeof d);
  return d;
}

ExprPtr make_float_const(Ty ty, double v) {
  return ty == Ty::F32 ? make_const_f32(static_cast<float>(v)) : make_const_f64(v);
}

/// Folds a Bin over two constants. Returns nullptr when not foldable
/// (would trap or change semantics).
ExprPtr fold_bin(const Expr& e) {
  const Expr& a = *e.args[0];
  const Expr& b = *e.args[1];
  const Ty ty = a.ty;

  if (is_float(ty)) {
    const double x = const_f64(a);
    const double y = const_f64(b);
    switch (e.bin) {
      case BinOp::Add: return make_float_const(ty, x + y);
      case BinOp::Sub: return make_float_const(ty, x - y);
      case BinOp::Mul: return make_float_const(ty, x * y);
      case BinOp::DivS: return make_float_const(ty, x / y);
      case BinOp::Eq: return make_const_i32(x == y);
      case BinOp::Ne: return make_const_i32(x != y);
      case BinOp::LtS: return make_const_i32(x < y);
      case BinOp::LeS: return make_const_i32(x <= y);
      case BinOp::GtS: return make_const_i32(x > y);
      case BinOp::GeS: return make_const_i32(x >= y);
      default: return nullptr;
    }
  }

  const bool w64 = ty == Ty::I64;
  const uint64_t ua = w64 ? a.imm : static_cast<uint32_t>(a.imm);
  const uint64_t ub = w64 ? b.imm : static_cast<uint32_t>(b.imm);
  const int64_t sa = w64 ? static_cast<int64_t>(ua)
                         : static_cast<int64_t>(static_cast<int32_t>(ua));
  const int64_t sb = w64 ? static_cast<int64_t>(ub)
                         : static_cast<int64_t>(static_cast<int32_t>(ub));
  auto wrap = [&](uint64_t v) {
    return make_const(ty, w64 ? v : static_cast<uint32_t>(v));
  };
  const uint64_t shift_mask = w64 ? 63 : 31;
  switch (e.bin) {
    case BinOp::Add: return wrap(ua + ub);
    case BinOp::Sub: return wrap(ua - ub);
    case BinOp::Mul: return wrap(ua * ub);
    case BinOp::DivS:
      if (sb == 0 || (sb == -1 && sa == (w64 ? INT64_MIN : INT32_MIN))) return nullptr;
      return wrap(static_cast<uint64_t>(sa / sb));
    case BinOp::DivU:
      if (ub == 0) return nullptr;
      return wrap(ua / ub);
    case BinOp::RemS:
      if (sb == 0) return nullptr;
      return wrap(sb == -1 ? 0 : static_cast<uint64_t>(sa % sb));
    case BinOp::RemU:
      if (ub == 0) return nullptr;
      return wrap(ua % ub);
    case BinOp::And: return wrap(ua & ub);
    case BinOp::Or: return wrap(ua | ub);
    case BinOp::Xor: return wrap(ua ^ ub);
    case BinOp::Shl: return wrap(ua << (ub & shift_mask));
    case BinOp::ShrS: return wrap(static_cast<uint64_t>(sa >> (ub & shift_mask)));
    case BinOp::ShrU: return wrap(ua >> (ub & shift_mask));
    case BinOp::Eq: return make_const_i32(ua == ub);
    case BinOp::Ne: return make_const_i32(ua != ub);
    case BinOp::LtS: return make_const_i32(sa < sb);
    case BinOp::LtU: return make_const_i32(ua < ub);
    case BinOp::LeS: return make_const_i32(sa <= sb);
    case BinOp::LeU: return make_const_i32(ua <= ub);
    case BinOp::GtS: return make_const_i32(sa > sb);
    case BinOp::GtU: return make_const_i32(ua > ub);
    case BinOp::GeS: return make_const_i32(sa >= sb);
    case BinOp::GeU: return make_const_i32(ua >= ub);
  }
  return nullptr;
}

ExprPtr fold_cast(const Expr& e) {
  const Expr& a = *e.args[0];
  switch (e.cast) {
    case CastOp::I32ToI64S:
      return make_const_i64(static_cast<int32_t>(a.imm));
    case CastOp::I32ToI64U:
      return make_const_i64(static_cast<int64_t>(static_cast<uint32_t>(a.imm)));
    case CastOp::I64ToI32:
      return make_const_i32(static_cast<int32_t>(a.imm));
    case CastOp::I32ToF64S:
      return make_const_f64(static_cast<double>(static_cast<int32_t>(a.imm)));
    case CastOp::I32ToF64U:
      return make_const_f64(static_cast<double>(static_cast<uint32_t>(a.imm)));
    case CastOp::I64ToF64S:
      return make_const_f64(static_cast<double>(static_cast<int64_t>(a.imm)));
    case CastOp::I64ToF64U:
      return make_const_f64(static_cast<double>(a.imm));
    case CastOp::F32ToF64:
      return make_const_f64(const_f64(a));
    case CastOp::F64ToF32:
      return make_const_f32(static_cast<float>(const_f64(a)));
    case CastOp::I32ToF32S:
      return make_const_f32(static_cast<float>(static_cast<int32_t>(a.imm)));
    default:
      return nullptr;  // trapping float->int folds left alone
  }
}

bool is_const_val(const Expr& e, uint64_t bits) {
  return e.kind == Expr::Kind::Const && e.imm == bits;
}

}  // namespace

const char* to_string(OptLevel level) {
  switch (level) {
    case OptLevel::O0: return "O0";
    case OptLevel::O1: return "O1";
    case OptLevel::O2: return "O2";
    case OptLevel::O3: return "O3";
    case OptLevel::Ofast: return "Ofast";
    case OptLevel::Os: return "Os";
    case OptLevel::Oz: return "Oz";
  }
  return "?";
}

void pass_constfold(Module& module) {
  for (auto& fn : module.functions) {
    walk_exprs_in_body(fn.body, [](ExprPtr& e) {
      if (e->kind == Expr::Kind::Bin) {
        Expr& a = *e->args[0];
        Expr& b = *e->args[1];
        if (a.kind == Expr::Kind::Const && b.kind == Expr::Kind::Const) {
          if (ExprPtr folded = fold_bin(*e)) e = std::move(folded);
          return;
        }
        // Integer identities (safe; float identities are not, e.g. x+0
        // with x = -0.0).
        if (is_int(e->ty) && !is_cmp(e->bin)) {
          if (b.kind == Expr::Kind::Const) {
            const uint64_t zero = 0, one = 1;
            if ((e->bin == BinOp::Add || e->bin == BinOp::Sub ||
                 e->bin == BinOp::Or || e->bin == BinOp::Xor ||
                 e->bin == BinOp::Shl || e->bin == BinOp::ShrS ||
                 e->bin == BinOp::ShrU) &&
                is_const_val(b, zero)) {
              e = std::move(e->args[0]);
              return;
            }
            if ((e->bin == BinOp::Mul || e->bin == BinOp::DivS ||
                 e->bin == BinOp::DivU) &&
                is_const_val(b, one)) {
              e = std::move(e->args[0]);
              return;
            }
            if (e->bin == BinOp::Mul && is_const_val(b, zero) &&
                is_speculatable(a)) {
              e = make_const(e->ty, 0);
              return;
            }
            if (e->bin == BinOp::And && is_const_val(b, zero) &&
                is_speculatable(a)) {
              e = make_const(e->ty, 0);
              return;
            }
          }
          if (a.kind == Expr::Kind::Const &&
              (e->bin == BinOp::Add || e->bin == BinOp::Or ||
               e->bin == BinOp::Xor) &&
              is_const_val(a, 0)) {
            e = std::move(e->args[1]);
            return;
          }
        }
        return;
      }
      if (e->kind == Expr::Kind::Cast && e->args[0]->kind == Expr::Kind::Const) {
        if (ExprPtr folded = fold_cast(*e)) e = std::move(folded);
        return;
      }
      if (e->kind == Expr::Kind::Un && e->args[0]->kind == Expr::Kind::Const) {
        const Expr& a = *e->args[0];
        switch (e->un) {
          case UnOp::Neg:
            if (e->ty == Ty::I32) {
              e = make_const_i32(-static_cast<int32_t>(a.imm));
            } else if (e->ty == Ty::I64) {
              e = make_const_i64(-static_cast<int64_t>(a.imm));
            } else {
              e = make_float_const(e->ty, -const_f64(a));
            }
            break;
          case UnOp::BitNot:
            e = e->ty == Ty::I64 ? make_const_i64(~static_cast<int64_t>(a.imm))
                                 : make_const_i32(~static_cast<int32_t>(a.imm));
            break;
          case UnOp::LNot:
            e = make_const_i32(a.imm == 0);
            break;
        }
      }
    });
  }
}

void pass_dce(Module& module) {
  for (auto& fn : module.functions) {
    for (int iter = 0; iter < 10; ++iter) {
      std::unordered_set<uint32_t> reads;
      walk_exprs_in_body(fn.body, [&](ExprPtr& e) {
        if (e->kind == Expr::Kind::Reg) reads.insert(e->reg);
      });

      bool changed = false;
      const auto prune = [&](std::vector<StmtPtr>& body, const auto& self) -> void {
        for (auto it = body.begin(); it != body.end();) {
          Stmt& s = **it;
          self(s.body, self);
          self(s.else_body, self);
          const bool dead_assign = s.kind == Stmt::Kind::Assign &&
                                   !reads.count(s.reg) && is_pure(*s.e0);
          const bool dead_expr =
              s.kind == Stmt::Kind::ExprStmt && is_pure(*s.e0);
          if (dead_assign || dead_expr) {
            it = body.erase(it);
            changed = true;
          } else {
            ++it;
          }
        }
      };
      prune(fn.body, prune);
      if (!changed) break;
    }
  }
}

namespace {

void remap_globals(Module& module, const std::vector<int>& remap) {
  for (auto& fn : module.functions) {
    walk_exprs_in_body(fn.body, [&](ExprPtr& e) {
      if (e->kind == Expr::Kind::GlobalAddr) {
        e->reg = static_cast<uint32_t>(remap[e->reg]);
      }
    });
  }
}

std::vector<bool> referenced_globals(Module& module) {
  std::vector<bool> used(module.globals.size(), false);
  for (auto& fn : module.functions) {
    walk_exprs_in_body(fn.body, [&](ExprPtr& e) {
      if (e->kind == Expr::Kind::GlobalAddr) used[e->reg] = true;
    });
  }
  return used;
}

void drop_unused_globals(Module& module) {
  const std::vector<bool> used = referenced_globals(module);
  std::vector<int> remap(module.globals.size(), -1);
  std::vector<GlobalVar> kept;
  for (size_t i = 0; i < module.globals.size(); ++i) {
    if (used[i]) {
      remap[i] = static_cast<int>(kept.size());
      kept.push_back(std::move(module.globals[i]));
    }
  }
  module.globals = std::move(kept);
  remap_globals(module, remap);
}

}  // namespace

void pass_globalopt(Module& module) { drop_unused_globals(module); }

void pass_remove_unused_globals(Module& module) { drop_unused_globals(module); }

void pass_libcall_dce(Module& module) {
  for (auto& fn : module.functions) {
    const auto prune = [&](std::vector<StmtPtr>& body, const auto& self) -> void {
      for (auto it = body.begin(); it != body.end();) {
        Stmt& s = **it;
        self(s.body, self);
        self(s.else_body, self);
        if (s.kind == Stmt::Kind::ExprStmt &&
            s.e0->kind == Expr::Kind::IntrinsicCall && is_pure(*s.e0)) {
          it = body.erase(it);
        } else {
          ++it;
        }
      }
    };
    prune(fn.body, prune);
  }
}

// ------------------------------------------------------------- inlining

namespace {

bool body_has_kind(const std::vector<StmtPtr>& body, Stmt::Kind kind) {
  for (const auto& s : body) {
    if (s->kind == kind) return true;
    if (body_has_kind(s->body, kind) || body_has_kind(s->else_body, kind)) return true;
  }
  return false;
}

bool body_has_call(const std::vector<StmtPtr>& body) {
  bool found = false;
  for (const auto& s : body) {
    const auto check = [&](const ExprPtr& e) {
      if (e && expr_contains(*e, Expr::Kind::Call)) found = true;
    };
    check(s->e0);
    check(s->e1);
    if (body_has_call(s->body) || body_has_call(s->else_body)) return true;
  }
  return found;
}

void count_param_uses(const Expr& e, std::vector<int>& uses) {
  if (e.kind == Expr::Kind::Reg && e.reg < uses.size()) ++uses[e.reg];
  for (const auto& a : e.args) count_param_uses(*a, uses);
}

/// Substitutes Reg(i) for params[i] in a cloned expression.
void subst_params(Expr& e, const std::vector<const Expr*>& args) {
  for (auto& a : e.args) subst_params(*a, args);
  if (e.kind == Expr::Kind::Reg && e.reg < args.size()) {
    ExprPtr repl = args[e.reg]->clone();
    e = std::move(*repl);
  }
}

/// Remaps every register id in a cloned statement tree.
void remap_regs_stmt(Stmt& s, const std::vector<uint32_t>& map) {
  const auto remap_expr = [&](ExprPtr& slot) {
    walk_expr(slot, [&](ExprPtr& e) {
      if (e->kind == Expr::Kind::Reg) e->reg = map[e->reg];
    });
  };
  if (s.kind == Stmt::Kind::Assign) s.reg = map[s.reg];
  if (s.e0) remap_expr(s.e0);
  if (s.e1) remap_expr(s.e1);
  for (auto& b : s.body) remap_regs_stmt(*b, map);
  for (auto& b : s.else_body) remap_regs_stmt(*b, map);
}

}  // namespace

void pass_inline(Module& module, int threshold) {
  for (size_t caller_idx = 0; caller_idx < module.functions.size(); ++caller_idx) {
    // 1. Expression inlining: callee is a single `return <pure expr>`.
    walk_exprs_in_body(module.functions[caller_idx].body, [&](ExprPtr& e) {
      if (e->kind != Expr::Kind::Call || e->func == caller_idx) return;
      const Function& callee = module.functions[e->func];
      if (callee.body.size() != 1 || callee.body[0]->kind != Stmt::Kind::Return ||
          !callee.body[0]->e0) {
        return;
      }
      const Expr& ret = *callee.body[0]->e0;
      if (!is_pure(ret) || node_count(ret) > static_cast<size_t>(threshold)) return;
      std::vector<int> uses(callee.params.size(), 0);
      count_param_uses(ret, uses);
      for (size_t i = 0; i < uses.size(); ++i) {
        const bool simple = e->args[i]->kind == Expr::Kind::Const ||
                            e->args[i]->kind == Expr::Kind::Reg ||
                            e->args[i]->kind == Expr::Kind::GlobalAddr;
        if (uses[i] > 1 && !simple) return;  // would duplicate side effects/work
        if (!is_pure(*e->args[i]) && uses[i] != 1) return;
      }
      ExprPtr body = ret.clone();
      std::vector<const Expr*> arg_ptrs;
      for (const auto& a : e->args) arg_ptrs.push_back(a.get());
      subst_params(*body, arg_ptrs);
      e = std::move(body);
    });

    // 2. Statement inlining: `f(...);` where f is void, small, and has no
    //    calls or returns.
    Function& caller = module.functions[caller_idx];
    const auto splice = [&](std::vector<StmtPtr>& body, const auto& self) -> void {
      for (size_t i = 0; i < body.size(); ++i) {
        Stmt& s = *body[i];
        self(s.body, self);
        self(s.else_body, self);
        if (s.kind != Stmt::Kind::ExprStmt || s.e0->kind != Expr::Kind::Call) continue;
        if (s.e0->func == caller_idx) continue;
        const Function& callee = module.functions[s.e0->func];
        if (callee.ret != Ty::Void) continue;
        if (body_has_kind(callee.body, Stmt::Kind::Return)) continue;
        if (body_has_call(callee.body)) continue;
        size_t sz = 0;
        for (const auto& cs : callee.body) sz += node_count(*cs);
        if (sz > static_cast<size_t>(threshold)) continue;

        // Map callee regs to fresh caller regs; bind params to args.
        std::vector<uint32_t> map(callee.reg_types.size());
        for (size_t r = 0; r < callee.reg_types.size(); ++r) {
          map[r] = caller.new_reg(callee.reg_types[r]);
        }
        std::vector<StmtPtr> spliced;
        for (size_t p = 0; p < callee.params.size(); ++p) {
          spliced.push_back(make_assign(map[p], s.e0->args[p]->clone()));
        }
        for (const auto& cs : callee.body) {
          StmtPtr cloned = cs->clone();
          remap_regs_stmt(*cloned, map);
          spliced.push_back(std::move(cloned));
        }
        body.erase(body.begin() + static_cast<ptrdiff_t>(i));
        body.insert(body.begin() + static_cast<ptrdiff_t>(i),
                    std::make_move_iterator(spliced.begin()),
                    std::make_move_iterator(spliced.end()));
        i += spliced.size() - 1;
      }
    };
    splice(caller.body, splice);
  }
}

// ----------------------------------------------------------------- LICM

namespace {

void collect_assigned_regs(const std::vector<StmtPtr>& body,
                           std::unordered_set<uint32_t>& regs) {
  for (const auto& s : body) {
    if (s->kind == Stmt::Kind::Assign) regs.insert(s->reg);
    collect_assigned_regs(s->body, regs);
    collect_assigned_regs(s->else_body, regs);
  }
}

bool invariant_expr(const Expr& e, const std::unordered_set<uint32_t>& loop_regs) {
  if (e.kind == Expr::Kind::Call || e.kind == Expr::Kind::Load) return false;
  // GlobalAddr stays in place so backends can pattern-match address bases
  // (the JS backend recovers typed-array names from them).
  if (e.kind == Expr::Kind::GlobalAddr) return false;
  if (e.kind == Expr::Kind::Reg && loop_regs.count(e.reg)) return false;
  if (e.kind == Expr::Kind::Bin && is_div_or_rem(e.bin)) return false;
  for (const auto& a : e.args) {
    if (!invariant_expr(*a, loop_regs)) return false;
  }
  return true;
}

/// Hoists sizable invariant subtrees from one loop. Returns assigns to
/// place before the loop.
void hoist_from_loop(Function& fn, Stmt& loop, std::vector<StmtPtr>& hoisted) {
  std::unordered_set<uint32_t> loop_regs;
  collect_assigned_regs(loop.body, loop_regs);

  const auto try_hoist = [&](ExprPtr& e) {
    // Post-order: children first, so we hoist maximal subtrees bottom-up
    // is wrong — we want top-down maximal. Do a manual pre-order.
    const auto visit = [&](ExprPtr& node, const auto& self) -> void {
      if ((node->kind == Expr::Kind::Bin || node->kind == Expr::Kind::Cast ||
           node->kind == Expr::Kind::IntrinsicCall) &&
          node->ty != Ty::Void && node_count(*node) >= 4 &&
          invariant_expr(*node, loop_regs)) {
        const uint32_t r = fn.new_reg(node->ty);
        hoisted.push_back(make_assign(r, std::move(node)));
        node = make_reg(hoisted.back()->e0->ty, r);
        return;
      }
      for (auto& a : node->args) self(a, self);
    };
    visit(e, visit);
  };

  // The loop condition is evaluated every iteration too.
  if (loop.e0) try_hoist(loop.e0);
  for_each_stmt(loop.body, [&](Stmt& s) { for_each_expr_slot(s, try_hoist); });
}

void licm_body(Function& fn, std::vector<StmtPtr>& body) {
  for (size_t i = 0; i < body.size(); ++i) {
    Stmt& s = *body[i];
    // Inner loops first.
    licm_body(fn, s.body);
    licm_body(fn, s.else_body);
    if (s.kind != Stmt::Kind::While && s.kind != Stmt::Kind::DoWhile) continue;
    std::vector<StmtPtr> hoisted;
    hoist_from_loop(fn, s, hoisted);
    if (hoisted.empty()) continue;
    body.insert(body.begin() + static_cast<ptrdiff_t>(i),
                std::make_move_iterator(hoisted.begin()),
                std::make_move_iterator(hoisted.end()));
    i += hoisted.size();
  }
}

}  // namespace

void pass_licm(Module& module) {
  for (auto& fn : module.functions) licm_body(fn, fn.body);
}

// --------------------------------------------------------- ipconstprop

void pass_ipconstprop(Module& module) {
  struct ParamState {
    bool seen = false;
    bool constant = true;
    uint64_t bits = 0;
  };
  std::vector<std::vector<ParamState>> states(module.functions.size());
  for (size_t f = 0; f < module.functions.size(); ++f) {
    states[f].resize(module.functions[f].params.size());
  }

  for (auto& fn : module.functions) {
    walk_exprs_in_body(fn.body, [&](ExprPtr& e) {
      if (e->kind != Expr::Kind::Call) return;
      auto& st = states[e->func];
      for (size_t i = 0; i < st.size() && i < e->args.size(); ++i) {
        if (e->args[i]->kind != Expr::Kind::Const) {
          st[i].constant = false;
        } else if (!st[i].seen) {
          st[i].seen = true;
          st[i].bits = e->args[i]->imm;
        } else if (st[i].bits != e->args[i]->imm) {
          st[i].constant = false;
        }
      }
    });
  }

  for (size_t f = 0; f < module.functions.size(); ++f) {
    Function& fn = module.functions[f];
    // Skip params that are reassigned inside the callee.
    std::unordered_set<uint32_t> assigned;
    collect_assigned_regs(fn.body, assigned);
    for (size_t p = 0; p < fn.params.size(); ++p) {
      const ParamState& st = states[f][p];
      if (!st.seen || !st.constant || assigned.count(static_cast<uint32_t>(p))) continue;
      const Ty ty = fn.params[p];
      walk_exprs_in_body(fn.body, [&](ExprPtr& e) {
        if (e->kind == Expr::Kind::Reg && e->reg == p) {
          e = make_const(ty, st.bits);
        }
      });
    }
  }
}

// ----------------------------------------------------------- vectorize

namespace {

bool body_is_vectorizable(const std::vector<StmtPtr>& body) {
  for (const auto& s : body) {
    if (s->kind == Stmt::Kind::Break || s->kind == Stmt::Kind::Continue ||
        s->kind == Stmt::Kind::Return) {
      return false;
    }
    // Innermost loops only: vectorization does not apply to loop nests.
    if (s->kind == Stmt::Kind::While || s->kind == Stmt::Kind::DoWhile) return false;
    if (!body_is_vectorizable(s->body) || !body_is_vectorizable(s->else_body)) return false;
  }
  return true;
}

void count_assignments(const std::vector<StmtPtr>& body, uint32_t reg, int& count) {
  for (const auto& s : body) {
    if (s->kind == Stmt::Kind::Assign && s->reg == reg) ++count;
    count_assignments(s->body, reg, count);
    count_assignments(s->else_body, reg, count);
  }
}

/// Stamps arithmetic as `factor`-lane vector ops.
void mark_vectorized_expr(Expr& e, uint8_t lanes) {
  if (e.kind == Expr::Kind::Bin && !is_cmp(e.bin) && !is_div_or_rem(e.bin)) {
    e.vec = lanes;
  }
  for (auto& a : e.args) mark_vectorized_expr(*a, lanes);
}

void mark_vectorized(Stmt& s, uint8_t lanes) {
  if (s.e0) mark_vectorized_expr(*s.e0, lanes);
  if (s.e1) mark_vectorized_expr(*s.e1, lanes);
  for (auto& b : s.body) mark_vectorized(*b, lanes);
  for (auto& b : s.else_body) mark_vectorized(*b, lanes);
}

void vectorize_body(Function& fn, std::vector<StmtPtr>& body, int factor) {
  for (size_t i = 0; i < body.size(); ++i) {
    Stmt& s = *body[i];
    vectorize_body(fn, s.body, factor);
    vectorize_body(fn, s.else_body, factor);
    if (s.kind != Stmt::Kind::While || !s.e0) continue;

    // Pattern: while (i <s E) { ...; i = i + step; } with i: I32, E pure
    // & invariant, i assigned exactly once (the trailing increment).
    const Expr& cond = *s.e0;
    if (cond.kind != Expr::Kind::Bin || cond.bin != BinOp::LtS) continue;
    if (cond.args[0]->kind != Expr::Kind::Reg || cond.args[0]->ty != Ty::I32) continue;
    const uint32_t ivar = cond.args[0]->reg;
    const Expr& bound = *cond.args[1];
    if (s.body.empty()) continue;
    const Stmt& last = *s.body.back();
    if (last.kind != Stmt::Kind::Assign || last.reg != ivar) continue;
    const Expr& inc = *last.e0;
    if (inc.kind != Expr::Kind::Bin || inc.bin != BinOp::Add) continue;
    if (inc.args[0]->kind != Expr::Kind::Reg || inc.args[0]->reg != ivar) continue;
    if (inc.args[1]->kind != Expr::Kind::Const) continue;
    const int32_t step = static_cast<int32_t>(inc.args[1]->imm);
    if (step <= 0 || step > 1024) continue;
    int ivar_assigns = 0;
    count_assignments(s.body, ivar, ivar_assigns);
    if (ivar_assigns != 1) continue;
    if (!body_is_vectorizable(s.body)) continue;
    std::unordered_set<uint32_t> loop_regs;
    collect_assigned_regs(s.body, loop_regs);
    if (!invariant_expr(bound, loop_regs)) continue;
    size_t body_nodes = 0;
    for (const auto& bs : s.body) body_nodes += node_count(*bs);
    if (body_nodes > 160) continue;  // vectorizer skips huge bodies

    // Vectorize in place: the loop now processes `factor` lanes per
    // "instruction". Semantics are untouched; the cost domain differs per
    // target (native amortizes lanes; Wasm/JS scalarize with overhead).
    s.vec = static_cast<uint8_t>(factor);
    for (auto& bs : s.body) mark_vectorized(*bs, static_cast<uint8_t>(factor));
    (void)fn;
  }
}

}  // namespace

void pass_vectorize(Module& module, int factor) {
  for (auto& fn : module.functions) vectorize_body(fn, fn.body, factor);
}

// ------------------------------------------------------------ fast-math

void pass_fastmath(Module& module) {
  for (auto& fn : module.functions) {
    walk_exprs_in_body(fn.body, [&](ExprPtr& e) {
      if (e->kind != Expr::Kind::Bin || !is_float(e->ty)) return;
      // x / c  ->  x * (1/c)
      if (e->bin == BinOp::DivS && e->args[1]->kind == Expr::Kind::Const) {
        const double c = const_f64(*e->args[1]);
        if (c != 0 && std::isfinite(c) && std::isfinite(1.0 / c)) {
          e->bin = BinOp::Mul;
          e->args[1] = make_float_const(e->ty, 1.0 / c);
        }
        return;
      }
      // (x op c1) op c2 -> x op (c1 op c2) for float add/mul (reassociate).
      if ((e->bin == BinOp::Add || e->bin == BinOp::Mul) &&
          e->args[1]->kind == Expr::Kind::Const &&
          e->args[0]->kind == Expr::Kind::Bin && e->args[0]->bin == e->bin &&
          e->args[0]->args[1]->kind == Expr::Kind::Const) {
        const double c1 = const_f64(*e->args[0]->args[1]);
        const double c2 = const_f64(*e->args[1]);
        const double c = e->bin == BinOp::Add ? c1 + c2 : c1 * c2;
        ExprPtr x = std::move(e->args[0]->args[0]);
        e->args[0] = std::move(x);
        e->args[1] = make_float_const(e->ty, c);
      }
    });
  }
}

// ---------------------------------------------- dead global stores (late)

namespace {

void mark_reads(const Expr& e, bool in_store_address, std::vector<bool>& read) {
  if (e.kind == Expr::Kind::GlobalAddr && !in_store_address) read[e.reg] = true;
  for (const auto& a : e.args) {
    // Inside a Load, everything is a read context even within a store
    // address computation.
    const bool child_in_store_addr = in_store_address && e.kind != Expr::Kind::Load;
    mark_reads(*a, e.kind == Expr::Kind::Load ? false : child_in_store_addr, read);
  }
}

void collect_store_bases(const Expr& addr, std::vector<uint32_t>& bases) {
  if (addr.kind == Expr::Kind::GlobalAddr) {
    bases.push_back(addr.reg);
    return;
  }
  if (addr.kind == Expr::Kind::Load) return;  // inner loads are reads, not bases
  for (const auto& a : addr.args) collect_store_bases(*a, bases);
}

}  // namespace

void pass_dead_global_stores(Module& module) {
  std::vector<bool> read(module.globals.size(), false);
  for (auto& fn : module.functions) {
    for_each_stmt(fn.body, [&](Stmt& s) {
      if (s.kind == Stmt::Kind::Store) {
        mark_reads(*s.e0, /*in_store_address=*/true, read);
        mark_reads(*s.e1, false, read);
      } else {
        if (s.e0) mark_reads(*s.e0, false, read);
        if (s.e1) mark_reads(*s.e1, false, read);
      }
    });
  }
  // Registers may carry global addresses; if a GlobalAddr flowed into a
  // register (it would appear in an Assign RHS, which we marked as a
  // read), we already treated it as read. Remove stores whose address is
  // rooted at exactly one never-read global.
  for (auto& fn : module.functions) {
    const auto prune = [&](std::vector<StmtPtr>& body, const auto& self) -> void {
      for (auto it = body.begin(); it != body.end();) {
        Stmt& s = **it;
        self(s.body, self);
        self(s.else_body, self);
        bool removable = false;
        if (s.kind == Stmt::Kind::Store && is_pure(*s.e0) && is_pure(*s.e1)) {
          std::vector<uint32_t> bases;
          collect_store_bases(*s.e0, bases);
          removable = bases.size() == 1 && !read[bases[0]];
        }
        if (removable) {
          it = body.erase(it);
        } else {
          ++it;
        }
      }
    };
    prune(fn.body, prune);
  }
}

// ------------------------------------------------------------ pipelines

PipelineInfo run_pipeline(Module& module, OptLevel level) {
  PipelineInfo info;
  const auto run = [&](const char* name, auto&& pass) {
    pass();
    info.passes_run.push_back(name);
  };

  if (level == OptLevel::O0) return info;

  run("constfold", [&] { pass_constfold(module); });
  run("dce", [&] { pass_dce(module); });
  run("globalopt", [&] { pass_globalopt(module); });
  run("libcalls-shrinkwrap", [&] { pass_libcall_dce(module); });
  if (level == OptLevel::O1) return info;

  if (level != OptLevel::Oz) {
    const int inline_threshold = level == OptLevel::O3 || level == OptLevel::Ofast
                                     ? 120
                                     : level == OptLevel::Os ? 24 : 48;
    run("inline", [&] { pass_inline(module, inline_threshold); });
  }
  run("licm", [&] { pass_licm(module); });
  if (level != OptLevel::Oz) {
    run("ipconstprop", [&] { pass_ipconstprop(module); });
  }
  if (level == OptLevel::O2 || level == OptLevel::O3 || level == OptLevel::Ofast) {
    run("vectorize-loops", [&] { pass_vectorize(module, 2); });
  }
  if (level == OptLevel::Ofast) {
    run("fast-math", [&] { pass_fastmath(module); });
    info.fast_math = true;
  }
  run("constfold", [&] { pass_constfold(module); });
  run("dce", [&] { pass_dce(module); });
  return info;
}

}  // namespace wb::ir
