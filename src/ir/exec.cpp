#include "ir/exec.h"

#include <cmath>
#include <cstring>

namespace wb::ir {

double ExecResult::as_f64() const {
  double d;
  std::memcpy(&d, &value, sizeof d);
  return d;
}

namespace {

double bits_to_f64(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}
uint64_t f64_to_bits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}
float bits_to_f32(uint64_t bits) {
  float f;
  uint32_t b32 = static_cast<uint32_t>(bits);
  std::memcpy(&f, &b32, sizeof f);
  return f;
}
uint64_t f32_to_bits(float f) {
  uint32_t b32;
  std::memcpy(&b32, &f, sizeof b32);
  return b32;
}

}  // namespace

Executor::Executor(const Module& module) : module_(module) {
  // Static layout, then bump-allocate dynamic arrays right after.
  Module& m = const_cast<Module&>(module_);  // addresses are layout metadata
  uint32_t end = layout_static_globals(m);
  for (auto& g : m.globals) {
    if (!g.dynamic_alloc) continue;
    const uint32_t align = static_cast<uint32_t>(mem_size(g.elem));
    end = (end + align - 1) & ~(align - 1);
    g.address = end;
    end += static_cast<uint32_t>(g.byte_size());
  }
  memory_.assign(end + 64, 0);
  stats_.memory_bytes = memory_.size();
  // Apply initializers.
  for (const auto& g : module_.globals) {
    const size_t esz = mem_size(g.elem);
    for (size_t i = 0; i < g.init.size() && i < g.count; ++i) {
      std::memcpy(memory_.data() + g.address + i * esz, &g.init[i], esz);
    }
  }
}

uint32_t Executor::global_address(std::string_view name) const {
  const int gi = module_.find_global(name);
  return gi < 0 ? 0 : module_.globals[static_cast<size_t>(gi)].address;
}

namespace {
constexpr uint32_t kMaxDepth = 400;
}

/// Recursive evaluator with explicit control-flow signals.
class ExecImpl {
 public:
  ExecImpl(Executor& exec) : x_(exec) {}

  enum class Flow : uint8_t { Normal, Break, Continue, Return };

  ExecResult call(const Function& fn, std::vector<uint64_t> args) {
    if (x_.call_depth_ >= kMaxDepth) return fail("call stack exhausted");
    ++x_.call_depth_;
    std::vector<uint64_t> regs(fn.reg_types.size(), 0);
    for (size_t i = 0; i < args.size() && i < fn.params.size(); ++i) regs[i] = args[i];
    uint64_t result = 0;
    const Flow flow = exec_body(fn.body, regs, result);
    --x_.call_depth_;
    if (!ok_) return {false, error_, 0};
    (void)flow;
    return {true, "", result};
  }

  bool ok_ = true;
  std::string error_;

 private:
  ExecResult fail(std::string message) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(message);
    }
    return {false, error_, 0};
  }
  uint64_t err(std::string message) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(message);
    }
    return 0;
  }

  void charge(uint64_t c) {
    ++x_.stats_.ops;
    x_.stats_.cost_ps += c;
  }

  Flow exec_body(const std::vector<StmtPtr>& body, std::vector<uint64_t>& regs,
                 uint64_t& result) {
    for (const auto& s : body) {
      const Flow f = exec_stmt(*s, regs, result);
      if (f != Flow::Normal || !ok_) return f;
    }
    return Flow::Normal;
  }

  Flow exec_stmt(const Stmt& s, std::vector<uint64_t>& regs, uint64_t& result) {
    if (x_.stats_.ops >= x_.fuel_) {
      err("fuel exhausted");
      return Flow::Return;
    }
    switch (s.kind) {
      case Stmt::Kind::Assign:
        regs[s.reg] = eval(*s.e0, regs);
        charge(x_.cost_.reg_op);
        return Flow::Normal;
      case Stmt::Kind::Store: {
        const uint64_t addr = eval(*s.e0, regs);
        const uint64_t value = eval(*s.e1, regs);
        if (!ok_) return Flow::Return;
        const uint64_t ea = (addr & 0xffffffffull) + s.mem_offset;
        const size_t esz = mem_size(s.mem);
        if (ea + esz > x_.memory_.size()) {
          err("store out of bounds");
          return Flow::Return;
        }
        std::memcpy(x_.memory_.data() + ea, &value, esz);
        charge(x_.cost_.store);
        return Flow::Normal;
      }
      case Stmt::Kind::ExprStmt:
        eval(*s.e0, regs);
        return Flow::Normal;
      case Stmt::Kind::If: {
        const uint64_t cond = eval(*s.e0, regs);
        charge(x_.cost_.branch);
        if (!ok_) return Flow::Return;
        return exec_body(static_cast<int32_t>(cond) != 0 ? s.body : s.else_body, regs,
                         result);
      }
      case Stmt::Kind::While:
        while (ok_) {
          const uint64_t cond = eval(*s.e0, regs);
          charge(x_.cost_.branch / s.vec);  // vectorized loops branch per lane-group
          if (!ok_ || static_cast<int32_t>(cond) == 0) break;
          const Flow f = exec_body(s.body, regs, result);
          if (f == Flow::Break) break;
          if (f == Flow::Return) return f;
          if (x_.stats_.ops >= x_.fuel_) {
            err("fuel exhausted");
            return Flow::Return;
          }
        }
        return Flow::Normal;
      case Stmt::Kind::DoWhile:
        while (ok_) {
          const Flow f = exec_body(s.body, regs, result);
          if (f == Flow::Break) break;
          if (f == Flow::Return) return f;
          const uint64_t cond = eval(*s.e0, regs);
          charge(x_.cost_.branch);
          if (!ok_ || static_cast<int32_t>(cond) == 0) break;
          if (x_.stats_.ops >= x_.fuel_) {
            err("fuel exhausted");
            return Flow::Return;
          }
        }
        return Flow::Normal;
      case Stmt::Kind::Break:
        return Flow::Break;
      case Stmt::Kind::Continue:
        return Flow::Continue;
      case Stmt::Kind::Return:
        if (s.e0) result = eval(*s.e0, regs);
        return Flow::Return;
    }
    return Flow::Normal;
  }

  uint64_t eval(const Expr& e, std::vector<uint64_t>& regs) {
    if (!ok_) return 0;
    switch (e.kind) {
      case Expr::Kind::Const:
        charge(x_.cost_.const_op);
        return e.imm;
      case Expr::Kind::Reg:
        charge(x_.cost_.reg_op);
        return regs[e.reg];
      case Expr::Kind::GlobalAddr:
        charge(x_.cost_.const_op);
        return x_.module_.globals[e.reg].address;
      case Expr::Kind::Bin:
        return eval_bin(e, regs);
      case Expr::Kind::Un: {
        const uint64_t a = eval(*e.args[0], regs);
        charge(is_float(e.args[0]->ty) ? x_.cost_.float_arith : x_.cost_.int_arith);
        switch (e.un) {
          case UnOp::Neg:
            switch (e.ty) {
              case Ty::I32: return static_cast<uint32_t>(-static_cast<int32_t>(a));
              case Ty::I64: return static_cast<uint64_t>(-static_cast<int64_t>(a));
              case Ty::F32: return f32_to_bits(-bits_to_f32(a));
              case Ty::F64: return f64_to_bits(-bits_to_f64(a));
              default: return 0;
            }
          case UnOp::BitNot:
            return e.ty == Ty::I64 ? ~a : static_cast<uint32_t>(~static_cast<uint32_t>(a));
          case UnOp::LNot:
            if (e.args[0]->ty == Ty::I64) return a == 0;
            return static_cast<uint32_t>(a) == 0;
        }
        return 0;
      }
      case Expr::Kind::Cast: {
        const uint64_t a = eval(*e.args[0], regs);
        charge(x_.cost_.cast);
        switch (e.cast) {
          case CastOp::I32ToI64S:
            return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(a)));
          case CastOp::I32ToI64U:
            return static_cast<uint32_t>(a);
          case CastOp::I64ToI32:
            return static_cast<uint32_t>(a);
          case CastOp::I32ToF64S:
            return f64_to_bits(static_cast<double>(static_cast<int32_t>(a)));
          case CastOp::I32ToF64U:
            return f64_to_bits(static_cast<double>(static_cast<uint32_t>(a)));
          case CastOp::I64ToF64S:
            return f64_to_bits(static_cast<double>(static_cast<int64_t>(a)));
          case CastOp::I64ToF64U:
            return f64_to_bits(static_cast<double>(a));
          case CastOp::F64ToI32S: {
            const double d = bits_to_f64(a);
            if (std::isnan(d) || d < -2147483648.0 || d > 2147483647.0) {
              return err("float->int out of range");
            }
            return static_cast<uint32_t>(static_cast<int32_t>(d));
          }
          case CastOp::F64ToI64S: {
            const double d = bits_to_f64(a);
            if (std::isnan(d) || d < -9223372036854775808.0 ||
                d >= 9223372036854775808.0) {
              return err("float->int64 out of range");
            }
            return static_cast<uint64_t>(static_cast<int64_t>(d));
          }
          case CastOp::F32ToF64:
            return f64_to_bits(static_cast<double>(bits_to_f32(a)));
          case CastOp::F64ToF32:
            return f32_to_bits(static_cast<float>(bits_to_f64(a)));
          case CastOp::I32ToF32S:
            return f32_to_bits(static_cast<float>(static_cast<int32_t>(a)));
          case CastOp::F32ToI32S: {
            const float f = bits_to_f32(a);
            if (std::isnan(f) || f < -2147483648.0f || f > 2147483520.0f) {
              return err("float->int out of range");
            }
            return static_cast<uint32_t>(static_cast<int32_t>(f));
          }
        }
        return 0;
      }
      case Expr::Kind::Load: {
        const uint64_t addr = eval(*e.args[0], regs);
        if (!ok_) return 0;
        const uint64_t ea = (addr & 0xffffffffull) + e.mem_offset;
        const size_t esz = mem_size(e.mem);
        if (ea + esz > x_.memory_.size()) return err("load out of bounds");
        uint64_t out = 0;
        std::memcpy(&out, x_.memory_.data() + ea, esz);  // U8 zero-extends
        charge(x_.cost_.load);
        return out;
      }
      case Expr::Kind::Call: {
        const Function& callee = x_.module_.functions[e.func];
        std::vector<uint64_t> args;
        args.reserve(e.args.size());
        for (const auto& a : e.args) args.push_back(eval(*a, regs));
        if (!ok_) return 0;
        charge(x_.cost_.call);
        const ExecResult r = call(callee, std::move(args));
        if (!r.ok) return 0;
        return r.value;
      }
      case Expr::Kind::IntrinsicCall: {
        std::vector<double> args;
        for (const auto& a : e.args) args.push_back(bits_to_f64(eval(*a, regs)));
        if (!ok_) return 0;
        charge(intrinsic_is_native(e.intrinsic) ? x_.cost_.intrinsic_native
                                                : x_.cost_.intrinsic_libm);
        double r = 0;
        switch (e.intrinsic) {
          case Intrinsic::Sqrt: r = std::sqrt(args[0]); break;
          case Intrinsic::Fabs: r = std::fabs(args[0]); break;
          case Intrinsic::Floor: r = std::floor(args[0]); break;
          case Intrinsic::Ceil: r = std::ceil(args[0]); break;
          case Intrinsic::Pow: r = std::pow(args[0], args[1]); break;
          case Intrinsic::Exp: r = std::exp(args[0]); break;
          case Intrinsic::Log: r = std::log(args[0]); break;
          case Intrinsic::Sin: r = std::sin(args[0]); break;
          case Intrinsic::Cos: r = std::cos(args[0]); break;
          default: break;
        }
        return f64_to_bits(r);
      }
    }
    return 0;
  }

  uint64_t eval_bin(const Expr& e, std::vector<uint64_t>& regs) {
    const uint64_t a = eval(*e.args[0], regs);
    const uint64_t b = eval(*e.args[1], regs);
    if (!ok_) return 0;
    const Ty opty = e.args[0]->ty;

    // Cost by operation family. SIMD-stamped ops amortize across lanes
    // on this target (x86 has the vector units the pass was written for).
    uint64_t c;
    if (is_cmp(e.bin)) {
      c = x_.cost_.cmp;
    } else if (e.bin == BinOp::Mul) {
      c = is_float(opty) ? x_.cost_.float_arith : x_.cost_.int_mul;
    } else if (is_div_or_rem(e.bin)) {
      c = is_float(opty) ? x_.cost_.float_div : x_.cost_.int_div;
    } else {
      c = is_float(opty) ? x_.cost_.float_arith : x_.cost_.int_arith;
    }
    if (e.vec > 1) c = (c + e.vec - 1) / e.vec;  // SIMD lane amortization
    charge(c);

    if (opty == Ty::F64 || opty == Ty::F32) {
      const bool f32 = opty == Ty::F32;
      const double x = f32 ? bits_to_f32(a) : bits_to_f64(a);
      const double y = f32 ? bits_to_f32(b) : bits_to_f64(b);
      double r = 0;
      bool cmp_result = false;
      bool is_cmp_op = true;
      switch (e.bin) {
        case BinOp::Add: r = x + y; is_cmp_op = false; break;
        case BinOp::Sub: r = x - y; is_cmp_op = false; break;
        case BinOp::Mul: r = x * y; is_cmp_op = false; break;
        case BinOp::DivS: r = x / y; is_cmp_op = false; break;
        case BinOp::Eq: cmp_result = x == y; break;
        case BinOp::Ne: cmp_result = x != y; break;
        case BinOp::LtS: cmp_result = x < y; break;
        case BinOp::LeS: cmp_result = x <= y; break;
        case BinOp::GtS: cmp_result = x > y; break;
        case BinOp::GeS: cmp_result = x >= y; break;
        default:
          return err("bad float binop");
      }
      if (is_cmp_op) return cmp_result ? 1 : 0;
      if (f32) return f32_to_bits(static_cast<float>(r));
      return f64_to_bits(r);
    }

    if (opty == Ty::I64) {
      const int64_t sa = static_cast<int64_t>(a);
      const int64_t sb = static_cast<int64_t>(b);
      switch (e.bin) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::DivS:
          if (sb == 0) return err("division by zero");
          if (sa == INT64_MIN && sb == -1) return err("division overflow");
          return static_cast<uint64_t>(sa / sb);
        case BinOp::DivU:
          if (b == 0) return err("division by zero");
          return a / b;
        case BinOp::RemS:
          if (sb == 0) return err("division by zero");
          if (sb == -1) return 0;
          return static_cast<uint64_t>(sa % sb);
        case BinOp::RemU:
          if (b == 0) return err("division by zero");
          return a % b;
        case BinOp::And: return a & b;
        case BinOp::Or: return a | b;
        case BinOp::Xor: return a ^ b;
        case BinOp::Shl: return a << (b & 63);
        case BinOp::ShrS: return static_cast<uint64_t>(sa >> (b & 63));
        case BinOp::ShrU: return a >> (b & 63);
        case BinOp::Eq: return a == b;
        case BinOp::Ne: return a != b;
        case BinOp::LtS: return sa < sb;
        case BinOp::LtU: return a < b;
        case BinOp::LeS: return sa <= sb;
        case BinOp::LeU: return a <= b;
        case BinOp::GtS: return sa > sb;
        case BinOp::GtU: return a > b;
        case BinOp::GeS: return sa >= sb;
        case BinOp::GeU: return a >= b;
      }
      return 0;
    }

    // I32.
    const uint32_t ua = static_cast<uint32_t>(a);
    const uint32_t ub = static_cast<uint32_t>(b);
    const int32_t sa = static_cast<int32_t>(ua);
    const int32_t sb = static_cast<int32_t>(ub);
    switch (e.bin) {
      case BinOp::Add: return ua + ub;
      case BinOp::Sub: return ua - ub;
      case BinOp::Mul: return ua * ub;
      case BinOp::DivS:
        if (sb == 0) return err("division by zero");
        if (sa == INT32_MIN && sb == -1) return err("division overflow");
        return static_cast<uint32_t>(sa / sb);
      case BinOp::DivU:
        if (ub == 0) return err("division by zero");
        return ua / ub;
      case BinOp::RemS:
        if (sb == 0) return err("division by zero");
        if (sb == -1) return 0;
        return static_cast<uint32_t>(sa % sb);
      case BinOp::RemU:
        if (ub == 0) return err("division by zero");
        return ua % ub;
      case BinOp::And: return ua & ub;
      case BinOp::Or: return ua | ub;
      case BinOp::Xor: return ua ^ ub;
      case BinOp::Shl: return ua << (ub & 31);
      case BinOp::ShrS: return static_cast<uint32_t>(sa >> (ub & 31));
      case BinOp::ShrU: return ua >> (ub & 31);
      case BinOp::Eq: return ua == ub;
      case BinOp::Ne: return ua != ub;
      case BinOp::LtS: return sa < sb;
      case BinOp::LtU: return ua < ub;
      case BinOp::LeS: return sa <= sb;
      case BinOp::LeU: return ua <= ub;
      case BinOp::GtS: return sa > sb;
      case BinOp::GtU: return ua > ub;
      case BinOp::GeS: return sa >= sb;
      case BinOp::GeU: return ua >= ub;
    }
    return 0;
  }

  Executor& x_;
};

ExecResult Executor::run(std::string_view name, std::vector<uint64_t> args) {
  const int fi = module_.find_function(name);
  if (fi < 0) return {false, "no such function: " + std::string(name), 0};
  ExecImpl impl(*this);
  return impl.call(module_.functions[static_cast<size_t>(fi)], std::move(args));
}

}  // namespace wb::ir
