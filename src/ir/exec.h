// IR evaluator. Two roles:
//  1. Reference semantics for the differential tests (wasm / JS / native
//     backends must all agree with it).
//  2. The "x86" execution target of the study: evaluated under a native
//     cost model (no tiers — ahead-of-time machine code), standing in for
//     the paper's LLVM-to-x86 runs (Fig. 6, Table 2's x86 column).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace wb::ir {

/// Per-operation-kind costs in picoseconds for the native target.
/// Defaults approximate a modern OoO x86 core: cheap ALU, expensive
/// divides and mispredicted branches.
struct NativeCostModel {
  uint64_t const_op = 30;
  uint64_t reg_op = 30;
  uint64_t int_arith = 60;
  uint64_t int_mul = 180;
  uint64_t int_div = 1500;
  uint64_t float_arith = 180;
  uint64_t float_div = 1100;
  uint64_t float_div_fast = 350;  ///< after fast-math div->mul strength reduction
  uint64_t cmp = 60;
  uint64_t cast = 120;
  uint64_t load = 250;
  uint64_t store = 250;
  uint64_t branch = 450;   ///< loop/if control transfer
  uint64_t call = 1200;
  uint64_t intrinsic_native = 900;   ///< sqrt/fabs/floor/ceil
  uint64_t intrinsic_libm = 6000;    ///< pow/exp/log/sin/cos
};

struct ExecResult {
  bool ok = true;
  std::string error;
  uint64_t value = 0;  ///< bit pattern of the function result
  [[nodiscard]] int32_t as_i32() const { return static_cast<int32_t>(value); }
  [[nodiscard]] double as_f64() const;
};

struct ExecStats {
  uint64_t ops = 0;
  uint64_t cost_ps = 0;
  size_t memory_bytes = 0;  ///< flat memory footprint (static + dynamic)
};

/// Executes IR functions against a flat memory image.
class Executor {
 public:
  /// Lays out globals, allocates memory, and applies initializers.
  explicit Executor(const Module& module);

  void set_cost_model(const NativeCostModel& model) { cost_ = model; }
  void set_fuel(uint64_t max_ops) { fuel_ = max_ops; }

  /// Calls a function by name. `args` are bit patterns matching the
  /// parameter types.
  ExecResult run(std::string_view name, std::vector<uint64_t> args = {});

  [[nodiscard]] const ExecStats& stats() const { return stats_; }
  [[nodiscard]] std::vector<uint8_t>& memory() { return memory_; }
  [[nodiscard]] uint32_t global_address(std::string_view name) const;

 private:
  struct Signal;  // break/continue/return control flow
  class Frame;

  const Module& module_;
  NativeCostModel cost_;
  std::vector<uint8_t> memory_;
  ExecStats stats_;
  uint64_t fuel_ = 4'000'000'000;
  uint32_t call_depth_ = 0;

  friend class ExecImpl;
};

}  // namespace wb::ir
