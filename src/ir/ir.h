// The compiler's mid-level IR: a typed, structured (loop/if tree)
// representation, analogous to the mid-level form LLVM-based Wasm
// compilers (Cheerp, Emscripten) optimize before code generation. The
// optimization passes in passes.h transform this IR; the three backends
// (wasm, JS, native/x86-stand-in) lower it.
//
// Memory model: one flat 32-bit address space per module (globals and
// arrays at static or bump-allocated addresses), matching Wasm linear
// memory and the typed-array heap of compiler-generated JS. Local scalars
// live in virtual registers.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace wb::ir {

enum class Ty : uint8_t { Void, I32, I64, F32, F64 };

const char* to_string(Ty t);
size_t size_of(Ty t);
inline bool is_float(Ty t) { return t == Ty::F32 || t == Ty::F64; }
inline bool is_int(Ty t) { return t == Ty::I32 || t == Ty::I64; }

enum class BinOp : uint8_t {
  Add, Sub, Mul, DivS, DivU, RemS, RemU,
  And, Or, Xor, Shl, ShrS, ShrU,
  // Comparisons (result type I32). Unsigned variants are int-only.
  Eq, Ne, LtS, LtU, LeS, LeU, GtS, GtU, GeS, GeU,
};

inline bool is_cmp(BinOp op) { return op >= BinOp::Eq; }
inline bool is_div_or_rem(BinOp op) {
  return op == BinOp::DivS || op == BinOp::DivU || op == BinOp::RemS ||
         op == BinOp::RemU;
}
const char* to_string(BinOp op);

enum class UnOp : uint8_t {
  Neg,   // arithmetic negate (int or float)
  BitNot,
  LNot,  // logical not: x == 0 (int), result I32
};

enum class CastOp : uint8_t {
  I32ToI64S,
  I32ToI64U,
  I64ToI32,
  I32ToF64S,
  I32ToF64U,
  I64ToF64S,
  I64ToF64U,
  F64ToI32S,
  F64ToI64S,
  F32ToF64,
  F64ToF32,
  I32ToF32S,
  F32ToI32S,
};

Ty cast_result(CastOp op);
Ty cast_operand(CastOp op);

/// Memory access widths. U8 loads zero-extend into an I32 value; U8
/// stores truncate. The others access full-width values of the matching
/// register type.
enum class MemTy : uint8_t { U8, I32, I64, F32, F64 };

Ty mem_value_ty(MemTy m);
size_t mem_size(MemTy m);

/// Math intrinsics. The wasm backend lowers the first group to native
/// opcodes and the second group to host imports (as real toolchains link
/// libm shims); the JS backend uses Math.*.
enum class Intrinsic : uint8_t {
  Sqrt,   // f64
  Fabs,
  Floor,
  Ceil,
  // Host-call group:
  Pow,
  Exp,
  Log,
  Sin,
  Cos,
  kCount,
};
const char* to_string(Intrinsic i);
inline bool intrinsic_is_native(Intrinsic i) { return i <= Intrinsic::Ceil; }

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

struct Expr {
  enum class Kind : uint8_t {
    Const,      // imm (bit pattern of `ty`)
    Reg,        // reg
    GlobalAddr, // reg = global index; value = the global's address (I32)
    Bin,        // bin, args[0], args[1]
    Un,         // un, args[0]
    Cast,       // cast, args[0]
    Load,       // ty = loaded type; args[0] = address (I32); mem_offset
    Call,       // func, args
    IntrinsicCall,  // intrinsic, args
  };

  Kind kind = Kind::Const;
  Ty ty = Ty::I32;
  uint64_t imm = 0;
  uint32_t reg = 0;
  BinOp bin = BinOp::Add;
  UnOp un = UnOp::Neg;
  CastOp cast = CastOp::I32ToI64S;
  uint32_t func = 0;
  Intrinsic intrinsic = Intrinsic::Sqrt;
  uint32_t mem_offset = 0;
  MemTy mem = MemTy::I32;  ///< Load access width
  /// SIMD lane count stamped by -vectorize-loops (1 = scalar). Semantics
  /// are unchanged; targets price it differently: native amortizes lanes,
  /// the Wasm/JS backends must scalarize with extra data movement (the
  /// paper's "optimizations not designed for Wasm" mechanism).
  uint8_t vec = 1;
  std::vector<ExprPtr> args;

  [[nodiscard]] ExprPtr clone() const;
};

ExprPtr make_const(Ty ty, uint64_t bits);
ExprPtr make_const_i32(int32_t v);
ExprPtr make_const_i64(int64_t v);
ExprPtr make_const_f32(float v);
ExprPtr make_const_f64(double v);
ExprPtr make_reg(Ty ty, uint32_t reg);
ExprPtr make_global_addr(uint32_t global_index);
ExprPtr make_bin(BinOp op, Ty ty, ExprPtr a, ExprPtr b);
ExprPtr make_un(UnOp op, Ty ty, ExprPtr a);
ExprPtr make_cast(CastOp op, ExprPtr a);
ExprPtr make_load(MemTy mem, ExprPtr addr, uint32_t offset = 0);

struct Stmt {
  enum class Kind : uint8_t {
    Assign,    // reg = e0
    Store,     // store store_ty, addr=e0, value=e1, mem_offset
    ExprStmt,  // evaluate e0 for side effects (calls), drop result
    If,        // e0 cond; body / else_body
    While,     // e0 cond; body
    DoWhile,   // body; e0 cond
    Break,
    Continue,
    Return,    // e0 optional
  };

  Kind kind = Kind::Assign;
  uint32_t reg = 0;
  Ty store_ty = Ty::I32;       ///< value type of the stored operand
  MemTy mem = MemTy::I32;      ///< access width
  uint32_t mem_offset = 0;
  uint8_t vec = 1;             ///< While: SIMD lane count after vectorization
  ExprPtr e0, e1;
  std::vector<StmtPtr> body, else_body;

  [[nodiscard]] StmtPtr clone() const;
};

StmtPtr make_assign(uint32_t reg, ExprPtr value);
StmtPtr make_store(MemTy mem, ExprPtr addr, ExprPtr value, uint32_t offset = 0);

struct Function {
  std::string name;
  Ty ret = Ty::Void;
  std::vector<Ty> params;     ///< registers 0..n-1
  std::vector<Ty> reg_types;  ///< all registers incl. params
  std::vector<StmtPtr> body;

  uint32_t new_reg(Ty ty) {
    reg_types.push_back(ty);
    return static_cast<uint32_t>(reg_types.size() - 1);
  }
};

/// A module-level variable. Scalars and arrays share one address space;
/// `dynamic_alloc` arrays are bump-allocated by the generated runtime at
/// startup (this is where Cheerp/Emscripten memory-growth behaviour comes
/// from); the rest live in the data segment.
struct GlobalVar {
  std::string name;
  MemTy elem = MemTy::I32;
  size_t count = 1;  ///< number of elements (1 = scalar)
  std::vector<uint64_t> init;  ///< element bit patterns (may be shorter than count)
  bool dynamic_alloc = false;
  uint32_t address = 0;  ///< assigned by layout (static) or runtime (dynamic)

  [[nodiscard]] size_t byte_size() const;
};

struct Module {
  std::vector<Function> functions;
  std::vector<GlobalVar> globals;

  [[nodiscard]] int find_function(std::string_view name) const {
    for (size_t i = 0; i < functions.size(); ++i) {
      if (functions[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
  [[nodiscard]] int find_global(std::string_view name) const {
    for (size_t i = 0; i < globals.size(); ++i) {
      if (globals[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Assigns static addresses to non-dynamic globals (data segment starting
/// at `base`) and returns the end of the static data region. Dynamic
/// arrays get addresses later, at runtime bump allocation.
uint32_t layout_static_globals(Module& module, uint32_t base = 64);

/// Textual dump for debugging and golden tests.
std::string to_text(const Module& module);
std::string to_text(const Function& fn);

}  // namespace wb::ir
