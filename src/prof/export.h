// Trace exporters: Chrome trace_event JSON (loadable in chrome://tracing
// or https://ui.perfetto.dev) and folded-stack text (flamegraph.pl /
// speedscope input).
#pragma once

#include <cstdint>
#include <string>

#include "prof/prof.h"
#include "prof/profile.h"

namespace wb::prof {

/// Serializes every event as a Chrome trace_event ("JSON Array with
/// metadata" flavor). Tracks become threads of one process; timestamps
/// are virtual microseconds with picosecond precision kept in the
/// fractional digits.
std::string chrome_trace_json(const Tracer& tracer);

/// Folded-stack lines ("root;caller;callee <self_ps>") for one track,
/// sorted lexicographically; feed straight into flamegraph.pl.
std::string folded_stacks(const Tracer& tracer, uint8_t track = kWasmTrack);

/// Same, but from an already-built profile (avoids a second aggregation
/// pass when the caller needs both the table and the flamegraph).
std::string folded_stacks(const Profile& profile);

}  // namespace wb::prof
