// wb::prof — deterministic profiling & tracing on the virtual clock.
//
// The paper's methodology leans on browser profilers (Chrome DevTools,
// Sec. 3.3/4.4): execution time is *attributed* — to functions, tier
// transitions, GC pauses, and JS<->Wasm context switches — not just
// totalled. This subsystem brings the same capability to the
// reproduction's deterministic virtual clock: the two VMs and the
// browser-environment model emit span/instant events into a Tracer sink,
// and the aggregation + exporters (profile.h, export.h) turn the event
// stream into per-function cost profiles, Chrome trace_event JSON, and
// folded stacks for flamegraphs.
//
// Design rules:
//  - Zero overhead when disabled: instrumented components hold a plain
//    `Tracer*` (null by default) and events are emitted only from cold
//    paths (function enter/exit, tier-up, memory.grow, GC), never from
//    the per-op dispatch loop.
//  - Observation only: emitting events never charges virtual time, so
//    every reported metric is bit-identical with tracing on or off.
//  - Bounded memory: events land in a fixed-capacity ring buffer; on
//    overflow the *oldest* events are overwritten (the tail of a run is
//    what explains its cost) and a drop counter records the loss.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wb::prof {

/// Event categories, mirroring what the paper's profiler timelines show.
enum class Cat : uint8_t {
  WasmFunc,   ///< Wasm function execution span
  JsFunc,     ///< JS function execution span
  HostCall,   ///< Wasm calling an imported (JS) function
  Boundary,   ///< JS<->Wasm context-switch accounting
  TierUp,     ///< baseline -> optimizing tier transition
  MemoryGrow, ///< a memory.grow request
  GcPhase,    ///< a mark-sweep collection
  Page,       ///< page-level phases (load/parse, instantiate, teardown)
  Attr,       ///< per-cause attribution summary (wb::attr), one instant per cause
};
const char* to_string(Cat c);

enum class EventKind : uint8_t { Begin, End, Instant, Counter };

/// Logical timelines. One Tracer can hold several (e.g. the Wasm and JS
/// runs of one `core::measure()` cell); exporters map them to threads.
inline constexpr uint8_t kWasmTrack = 0;
inline constexpr uint8_t kJsTrack = 1;
const char* track_name(uint8_t track);

/// One trace event. Timestamps are virtual picoseconds (the same clock
/// as ExecStats::cost_ps). `value` carries a payload for instants and
/// counters (bytes grown, compile cost, live bytes, ...).
struct Event {
  uint64_t t_ps = 0;
  uint64_t value = 0;
  uint32_t name = 0;  ///< interned-name id
  Cat cat = Cat::WasmFunc;
  EventKind kind = EventKind::Instant;
  uint8_t track = kWasmTrack;
};

struct TracerStats {
  uint64_t emitted = 0;  ///< total events ever emitted
  uint64_t dropped = 0;  ///< oldest events overwritten by ring wrap
};

/// The event sink. Fixed-capacity ring buffer + string interner.
/// Not thread-safe (the VMs are single-threaded, like the browsers'
/// main-thread execution the paper measures).
class Tracer {
 public:
  /// Default capacity fits a full (benchmark x size<=M) cell; pass a
  /// larger one for XL cells or a tiny one to test overflow behavior.
  explicit Tracer(size_t capacity = 1u << 20);

  /// Interns `name`, returning a stable id. Instrumentation interns once
  /// at setup (set_tracer), never per event.
  uint32_t intern(std::string_view name);
  [[nodiscard]] const std::string& name(uint32_t id) const { return names_[id]; }
  [[nodiscard]] size_t num_names() const { return names_.size(); }

  /// The track tagged onto subsequently emitted events.
  void set_track(uint8_t track) { track_ = track; }
  [[nodiscard]] uint8_t track() const { return track_; }

  void begin(Cat cat, uint32_t name, uint64_t t_ps) {
    push(Event{t_ps, 0, name, cat, EventKind::Begin, track_});
  }
  void end(Cat cat, uint32_t name, uint64_t t_ps) {
    push(Event{t_ps, 0, name, cat, EventKind::End, track_});
  }
  void instant(Cat cat, uint32_t name, uint64_t t_ps, uint64_t value = 0) {
    push(Event{t_ps, value, name, cat, EventKind::Instant, track_});
  }
  void counter(Cat cat, uint32_t name, uint64_t t_ps, uint64_t value) {
    push(Event{t_ps, value, name, cat, EventKind::Counter, track_});
  }

  [[nodiscard]] size_t size() const { return count_; }
  [[nodiscard]] size_t capacity() const { return ring_.size(); }
  [[nodiscard]] const TracerStats& stats() const { return stats_; }

  /// Events oldest-to-newest (linearizes the ring).
  [[nodiscard]] std::vector<Event> events() const;

  /// Drops all events (names stay interned).
  void clear();

 private:
  void push(const Event& e);

  std::vector<Event> ring_;
  size_t head_ = 0;   ///< index of the oldest event
  size_t count_ = 0;  ///< live events in the ring
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> name_ids_;
  TracerStats stats_;
  uint8_t track_ = kWasmTrack;
};

}  // namespace wb::prof
