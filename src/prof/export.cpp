#include "prof/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace wb::prof {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Virtual ps -> trace_event µs. 1 ps == 1e-6 µs, so six fractional
/// digits keep the timestamp exact.
void append_ts(std::string& out, uint64_t t_ps) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64, t_ps / 1'000'000,
                t_ps % 1'000'000);
  out += buf;
}

void append_event_common(std::string& out, const Tracer& tracer, const Event& e,
                         char ph) {
  out += "{\"ph\":\"";
  out += ph;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(e.track);
  out += ",\"ts\":";
  append_ts(out, e.t_ps);
  out += ",\"cat\":\"";
  out += to_string(e.cat);
  out += "\",\"name\":\"";
  append_json_escaped(out, tracer.name(e.name));
  out += "\"";
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  std::string out = "{\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"wasmbench\"}}";

  // Thread-name metadata for every track that appears.
  bool track_seen[256] = {};
  const std::vector<Event> events = tracer.events();
  for (const Event& e : events) {
    if (track_seen[e.track]) continue;
    track_seen[e.track] = true;
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(e.track);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    out += track_name(e.track);
    out += "\"}}";
  }

  for (const Event& e : events) {
    out += ",\n";
    switch (e.kind) {
      case EventKind::Begin:
        append_event_common(out, tracer, e, 'B');
        out += "}";
        break;
      case EventKind::End:
        append_event_common(out, tracer, e, 'E');
        out += "}";
        break;
      case EventKind::Instant:
        append_event_common(out, tracer, e, 'i');
        out += ",\"s\":\"t\",\"args\":{\"value\":";
        out += std::to_string(e.value);
        out += "}}";
        break;
      case EventKind::Counter:
        append_event_common(out, tracer, e, 'C');
        out += ",\"args\":{\"value\":";
        out += std::to_string(e.value);
        out += "}}";
        break;
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

namespace {

void fold_node(const CallNode& node, std::string prefix,
               std::vector<std::string>& lines) {
  prefix += node.name;
  if (node.self_ps > 0) {
    lines.push_back(prefix + " " + std::to_string(node.self_ps));
  }
  prefix += ";";
  for (const CallNode& c : node.children) fold_node(c, prefix, lines);
}

}  // namespace

std::string folded_stacks(const Profile& profile) {
  std::vector<std::string> lines;
  for (const CallNode& c : profile.root.children) fold_node(c, "", lines);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

std::string folded_stacks(const Tracer& tracer, uint8_t track) {
  return folded_stacks(build_profile(tracer, track));
}

}  // namespace wb::prof
