// Aggregation of a trace-event stream into per-function cost profiles
// and a call tree — the "bottom-up" and "call tree" views of a browser
// profiler, computed over virtual time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/prof.h"

namespace wb::prof {

/// One function's aggregated costs (the profiler's bottom-up view).
/// `self_ps` excludes time spent in callees; `total_ps` includes it and
/// counts recursive re-entries only once per outermost activation.
struct FuncCost {
  std::string name;
  Cat cat = Cat::WasmFunc;
  uint64_t calls = 0;
  uint64_t self_ps = 0;
  uint64_t total_ps = 0;
};

/// One node of the call tree; children keyed by callee, in first-call
/// order. The root is synthetic ("(root)") and spans the whole timeline.
struct CallNode {
  std::string name;
  Cat cat = Cat::Page;
  uint64_t calls = 0;
  uint64_t self_ps = 0;
  uint64_t total_ps = 0;
  std::vector<CallNode> children;
};

struct Profile {
  /// Bottom-up costs, sorted by self_ps descending (ties by name).
  std::vector<FuncCost> functions;
  CallNode root;
  /// Sum of all span self costs == total virtual time covered by spans.
  uint64_t span_total_ps = 0;
  /// Instants seen, by category (tier-ups, grows, GC pauses, ...).
  uint64_t tierup_events = 0;
  uint64_t memory_grow_events = 0;
  uint64_t gc_events = 0;
  uint64_t host_call_events = 0;
  /// End events whose Begin was lost to ring overflow (ignored), and
  /// Begin events never closed (auto-closed at the last timestamp).
  uint64_t unmatched_ends = 0;
  uint64_t unclosed_begins = 0;
};

/// Aggregates one track of `tracer` into a profile. Events from other
/// tracks are ignored, so the Wasm and JS runs of one measure() cell can
/// share a tracer and still be profiled separately.
Profile build_profile(const Tracer& tracer, uint8_t track = kWasmTrack);

/// Renders the bottom-up table ("self ms | total ms | calls | name"),
/// top `max_rows` rows, for terminal output.
std::string format_profile(const Profile& profile, size_t max_rows = 20);

}  // namespace wb::prof
