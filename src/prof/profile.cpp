#include "prof/profile.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace wb::prof {

namespace {

struct OpenSpan {
  uint32_t name = 0;
  Cat cat = Cat::WasmFunc;
  uint64_t t0 = 0;
  uint64_t child_ps = 0;  ///< time already attributed to callees
  CallNode* node = nullptr;
};

struct Accum {
  Cat cat = Cat::WasmFunc;
  uint64_t calls = 0;
  uint64_t self_ps = 0;
  uint64_t total_ps = 0;
  uint64_t active = 0;  ///< open activations (recursion guard for total)
};

/// Finds or appends `name` among `parent`'s children. Appending to the
/// *current* stack top's children never moves any node still on the open
/// stack (ancestors live in vectors that are not appended to while one of
/// their elements is open), so raw child pointers stay valid.
CallNode* child_node(CallNode* parent, const std::string& name, Cat cat) {
  for (auto& c : parent->children) {
    if (c.name == name && c.cat == cat) return &c;
  }
  CallNode node;
  node.name = name;
  node.cat = cat;
  parent->children.push_back(std::move(node));
  return &parent->children.back();
}

}  // namespace

Profile build_profile(const Tracer& tracer, uint8_t track) {
  Profile p;
  p.root.name = "(root)";
  p.root.cat = Cat::Page;
  p.root.calls = 1;

  std::vector<OpenSpan> stack;
  std::unordered_map<uint32_t, Accum> accum;
  uint64_t last_t = 0;

  auto close_top = [&](uint64_t t) {
    OpenSpan span = stack.back();
    stack.pop_back();
    const uint64_t dur = t >= span.t0 ? t - span.t0 : 0;
    const uint64_t self = dur >= span.child_ps ? dur - span.child_ps : 0;
    Accum& a = accum[span.name];
    a.self_ps += self;
    --a.active;
    if (a.active == 0) a.total_ps += dur;
    span.node->self_ps += self;
    span.node->total_ps += dur;
    if (stack.empty()) {
      p.span_total_ps += dur;
    } else {
      stack.back().child_ps += dur;
    }
  };

  for (const Event& e : tracer.events()) {
    if (e.track != track) continue;
    last_t = std::max(last_t, e.t_ps);
    switch (e.kind) {
      case EventKind::Begin: {
        CallNode* parent = stack.empty() ? &p.root : stack.back().node;
        CallNode* node = child_node(parent, tracer.name(e.name), e.cat);
        ++node->calls;
        Accum& a = accum[e.name];
        a.cat = e.cat;
        ++a.calls;
        ++a.active;
        stack.push_back(OpenSpan{e.name, e.cat, e.t_ps, 0, node});
        break;
      }
      case EventKind::End: {
        // An End whose Begin was lost to ring overflow arrives with an
        // empty stack (surviving events are a suffix of a well-nested
        // stream); attribute nothing.
        if (stack.empty()) {
          ++p.unmatched_ends;
          break;
        }
        close_top(e.t_ps);
        break;
      }
      case EventKind::Instant:
        switch (e.cat) {
          case Cat::TierUp: ++p.tierup_events; break;
          case Cat::MemoryGrow: ++p.memory_grow_events; break;
          case Cat::GcPhase: ++p.gc_events; break;
          case Cat::HostCall: ++p.host_call_events; break;
          default: break;
        }
        break;
      case EventKind::Counter:
        break;
    }
  }

  // Auto-close spans still open at stream end (trap, fuel-out, or a
  // tracer snapshot taken mid-run) at the last seen timestamp.
  p.unclosed_begins = stack.size();
  while (!stack.empty()) close_top(last_t);

  p.root.total_ps = p.span_total_ps;

  p.functions.reserve(accum.size());
  for (const auto& [name_id, a] : accum) {
    FuncCost fc;
    fc.name = tracer.name(name_id);
    fc.cat = a.cat;
    fc.calls = a.calls;
    fc.self_ps = a.self_ps;
    fc.total_ps = a.total_ps;
    p.functions.push_back(std::move(fc));
  }
  std::sort(p.functions.begin(), p.functions.end(),
            [](const FuncCost& a, const FuncCost& b) {
              if (a.self_ps != b.self_ps) return a.self_ps > b.self_ps;
              return a.name < b.name;
            });
  return p;
}

std::string format_profile(const Profile& profile, size_t max_rows) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%12s %12s %10s  %s\n", "self ms", "total ms",
                "calls", "function");
  out += line;
  const size_t n = std::min(max_rows, profile.functions.size());
  for (size_t i = 0; i < n; ++i) {
    const FuncCost& f = profile.functions[i];
    std::snprintf(line, sizeof(line), "%12.3f %12.3f %10llu  [%s] %s\n",
                  static_cast<double>(f.self_ps) / 1e9,
                  static_cast<double>(f.total_ps) / 1e9,
                  static_cast<unsigned long long>(f.calls), to_string(f.cat),
                  f.name.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "%12.3f %12s %10s  (span total)\n",
                static_cast<double>(profile.span_total_ps) / 1e9, "", "");
  out += line;
  return out;
}

}  // namespace wb::prof
