#include "prof/prof.h"

namespace wb::prof {

const char* to_string(Cat c) {
  switch (c) {
    case Cat::WasmFunc: return "wasm";
    case Cat::JsFunc: return "js";
    case Cat::HostCall: return "host";
    case Cat::Boundary: return "boundary";
    case Cat::TierUp: return "tierup";
    case Cat::MemoryGrow: return "memory";
    case Cat::GcPhase: return "gc";
    case Cat::Page: return "page";
    case Cat::Attr: return "attr";
  }
  return "?";
}

const char* track_name(uint8_t track) {
  switch (track) {
    case kWasmTrack: return "wasm-vm";
    case kJsTrack: return "js-vm";
    default: return "aux";
  }
}

Tracer::Tracer(size_t capacity) { ring_.resize(capacity ? capacity : 1); }

uint32_t Tracer::intern(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void Tracer::push(const Event& e) {
  ++stats_.emitted;
  if (count_ < ring_.size()) {
    ring_[(head_ + count_) % ring_.size()] = e;
    ++count_;
  } else {
    // Full: overwrite the oldest event.
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    ++stats_.dropped;
  }
}

std::vector<Event> Tracer::events() const {
  std::vector<Event> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

void Tracer::clear() {
  head_ = 0;
  count_ = 0;
}

}  // namespace wb::prof
