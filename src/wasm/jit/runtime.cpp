// Slow-path helpers the generated code calls at block boundaries, plus the
// process-wide JIT availability/default switches. The fuel helper is a
// mini-interpreter over the straight-line eligible QOps: when a block's
// bulk fuel check fails, it re-runs the block QInstr-by-QInstr with the
// quickened loop's exact per-QInstr checks, charges, and side effects, so
// the trap point and every observable match quickened dispatch bit for bit.
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "wasm/jit/cache.h"
#include "wasm/jit/jit.h"
#include "wasm/types.h"

namespace wb::wasm::jit {

// The stencils bake these offsets in (stencil.cpp / compile.cpp).
static_assert(offsetof(JitContext, ops) == 0);
static_assert(offsetof(JitContext, fuel) == 8);
static_assert(offsetof(JitContext, mem_size) == 16);
static_assert(offsetof(JitContext, mem_base) == 24);
static_assert(offsetof(JitContext, stack_base) == 32);
static_assert(offsetof(JitContext, locals) == 40);
static_assert(offsetof(JitContext, globals) == 48);
static_assert(offsetof(JitContext, block_exec) == 56);
static_assert(offsetof(JitContext, result_bits) == 64);
static_assert(offsetof(JitContext, trap) == 72);

namespace {

std::atomic<bool> g_jit_default{true};

/// One constituent's worth of direct (non-block-table) charge, priced from
/// the optimizing cost row like the quickened loop's fuel_out prefix.
void charge(JitContext* ctx, uint8_t cls, uint8_t cat) {
  ctx->direct_cost_ps += ctx->opt_costs[cls];
  ++ctx->direct_cls[cls];
  if (cat != kQCatPad) ++ctx->direct_cat[cat];
}

bool mem_load(const JitContext* ctx, uint32_t addr, uint32_t offset,
              void* out, size_t size) {
  const uint64_t ea = static_cast<uint64_t>(addr) + offset;
  if (ea + size > ctx->mem_size) return false;
  std::memcpy(out, ctx->mem_base + ea, size);
  return true;
}

bool mem_store(JitContext* ctx, uint32_t addr, uint32_t offset,
               const void* val, size_t size) {
  const uint64_t ea = static_cast<uint64_t>(addr) + offset;
  if (ea + size > ctx->mem_size) return false;
  std::memcpy(ctx->mem_base + ea, val, size);
  return true;
}

/// Executes one straight-line QInstr with full side effects (stack in the
/// caller's scratch via `top`, locals/globals/memory via ctx). Control ops
/// are provably never reached here (the failing QInstr precedes or is the
/// block-ending control op, and a control op that passes its own fuel
/// check contradicts the failed block check). Returns false when the
/// QInstr trapped (ctx->trap set).
bool exec_qinstr(JitContext* ctx, const QInstr& q, uint64_t*& top) {
  uint64_t* locals = ctx->locals;
  auto push = [&](Value v) { *top++ = v.bits; };
  auto pop = [&]() -> Value { return Value{*--top}; };
  auto peek = [&]() -> Value { return Value{top[-1]}; };
  auto replace = [&](Value v) { top[-1] = v.bits; };

  switch (q.qop()) {
    case QOp::ChargeOnly:
      return true;
    case QOp::Const:
      push(q.val);
      return true;
    case QOp::Drop:
      --top;
      return true;
    case QOp::Select: {
      const int32_t cond = pop().as_i32();
      const Value b = pop();
      const Value a = pop();
      push(cond != 0 ? a : b);
      return true;
    }
    case QOp::LocalGet:
      push(Value{locals[q.a]});
      return true;
    case QOp::LocalSet:
      locals[q.a] = pop().bits;
      return true;
    case QOp::LocalTee:
      locals[q.a] = peek().bits;
      return true;
    case QOp::GlobalGet:
      push(Value{ctx->globals[q.a]});
      return true;
    case QOp::GlobalSet:
      ctx->globals[q.a] = pop().bits;
      return true;

#define WB_JLOAD(name, CTYPE, PUSH)                      \
  case QOp::name: {                                      \
    const uint32_t addr = pop().as_u32();                \
    CTYPE v;                                             \
    if (!mem_load(ctx, addr, q.b, &v, sizeof v)) {       \
      ctx->trap = static_cast<uint32_t>(Trap::MemoryOutOfBounds); \
      return false;                                      \
    }                                                    \
    push(PUSH);                                          \
    return true;                                         \
  }
      WB_JLOAD(I32Load, int32_t, Value::from_i32(v))
      WB_JLOAD(I64Load, int64_t, Value::from_i64(v))
      WB_JLOAD(F32Load, float, Value::from_f32(v))
      WB_JLOAD(F64Load, double, Value::from_f64(v))
      WB_JLOAD(I32Load8S, int8_t, Value::from_i32(v))
      WB_JLOAD(I32Load8U, uint8_t, Value::from_i32(static_cast<int32_t>(v)))
      WB_JLOAD(I32Load16S, int16_t, Value::from_i32(v))
      WB_JLOAD(I32Load16U, uint16_t, Value::from_i32(static_cast<int32_t>(v)))
#undef WB_JLOAD

#define WB_JSTORE(name, CTYPE, GET)                      \
  case QOp::name: {                                      \
    const Value val = pop();                             \
    const uint32_t addr = pop().as_u32();                \
    const CTYPE v = GET;                                 \
    if (!mem_store(ctx, addr, q.b, &v, sizeof v)) {      \
      ctx->trap = static_cast<uint32_t>(Trap::MemoryOutOfBounds); \
      return false;                                      \
    }                                                    \
    return true;                                         \
  }
      WB_JSTORE(I32Store, int32_t, val.as_i32())
      WB_JSTORE(I64Store, int64_t, val.as_i64())
      WB_JSTORE(F32Store, float, val.as_f32())
      WB_JSTORE(F64Store, double, val.as_f64())
      WB_JSTORE(I32Store8, uint8_t, static_cast<uint8_t>(val.as_u32()))
      WB_JSTORE(I32Store16, uint16_t, static_cast<uint16_t>(val.as_u32()))
#undef WB_JSTORE

    case QOp::MemorySize:
      push(Value::from_i32(static_cast<int32_t>(ctx->mem_size / 65536)));
      return true;

    case QOp::I32Eqz:
      replace(Value::from_i32(peek().as_i32() == 0));
      return true;
    case QOp::I64Eqz:
      replace(Value::from_i32(peek().as_i64() == 0));
      return true;

#define WB_JCMP(name, TA, SUFFIX, OPR)                             \
  case QOp::name: {                                                \
    const TA b = pop().as_##SUFFIX();                              \
    const TA a = peek().as_##SUFFIX();                             \
    replace(Value::from_i32((a OPR b) ? 1 : 0));                   \
    return true;                                                   \
  }
      WB_JCMP(I32Eq, int32_t, i32, ==)
      WB_JCMP(I32Ne, int32_t, i32, !=)
      WB_JCMP(I32LtS, int32_t, i32, <)
      WB_JCMP(I32LtU, uint32_t, u32, <)
      WB_JCMP(I32GtS, int32_t, i32, >)
      WB_JCMP(I32GtU, uint32_t, u32, >)
      WB_JCMP(I32LeS, int32_t, i32, <=)
      WB_JCMP(I32LeU, uint32_t, u32, <=)
      WB_JCMP(I32GeS, int32_t, i32, >=)
      WB_JCMP(I32GeU, uint32_t, u32, >=)
      WB_JCMP(I64Eq, int64_t, i64, ==)
      WB_JCMP(I64Ne, int64_t, i64, !=)
      WB_JCMP(I64LtS, int64_t, i64, <)
      WB_JCMP(I64LtU, uint64_t, u64, <)
      WB_JCMP(I64GtS, int64_t, i64, >)
      WB_JCMP(I64GtU, uint64_t, u64, >)
      WB_JCMP(I64LeS, int64_t, i64, <=)
      WB_JCMP(I64LeU, uint64_t, u64, <=)
      WB_JCMP(I64GeS, int64_t, i64, >=)
      WB_JCMP(I64GeU, uint64_t, u64, >=)
      WB_JCMP(F32Eq, float, f32, ==)
      WB_JCMP(F32Ne, float, f32, !=)
      WB_JCMP(F32Lt, float, f32, <)
      WB_JCMP(F32Gt, float, f32, >)
      WB_JCMP(F32Le, float, f32, <=)
      WB_JCMP(F32Ge, float, f32, >=)
      WB_JCMP(F64Eq, double, f64, ==)
      WB_JCMP(F64Ne, double, f64, !=)
      WB_JCMP(F64Lt, double, f64, <)
      WB_JCMP(F64Gt, double, f64, >)
      WB_JCMP(F64Le, double, f64, <=)
      WB_JCMP(F64Ge, double, f64, >=)
#undef WB_JCMP

#define WB_JBIN32(name, EXPR)                                        \
  case QOp::name: {                                                  \
    const uint32_t ub = pop().as_u32();                              \
    const uint32_t ua = peek().as_u32();                             \
    (void)ua; (void)ub;                                              \
    replace(Value::from_i32(static_cast<int32_t>(EXPR)));            \
    return true;                                                     \
  }
      WB_JBIN32(I32Add, ua + ub)
      WB_JBIN32(I32Sub, ua - ub)
      WB_JBIN32(I32Mul, ua * ub)
      WB_JBIN32(I32And, ua & ub)
      WB_JBIN32(I32Or, ua | ub)
      WB_JBIN32(I32Xor, ua ^ ub)
      WB_JBIN32(I32Shl, ua << (ub & 31))
      WB_JBIN32(I32ShrU, ua >> (ub & 31))
      WB_JBIN32(I32Rotl, (ua << (ub & 31)) | (ua >> ((32 - ub) & 31)))
      WB_JBIN32(I32Rotr, (ua >> (ub & 31)) | (ua << ((32 - ub) & 31)))
#undef WB_JBIN32
    case QOp::I32ShrS: {
      const uint32_t b = pop().as_u32();
      const int32_t a = peek().as_i32();
      replace(Value::from_i32(a >> (b & 31)));
      return true;
    }
    case QOp::I32DivS: {
      const int32_t b = pop().as_i32();
      const int32_t a = peek().as_i32();
      if (b == 0) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerDivideByZero);
        return false;
      }
      if (a == INT32_MIN && b == -1) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerOverflow);
        return false;
      }
      replace(Value::from_i32(a / b));
      return true;
    }
    case QOp::I32DivU: {
      const uint32_t b = pop().as_u32();
      const uint32_t a = peek().as_u32();
      if (b == 0) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerDivideByZero);
        return false;
      }
      replace(Value::from_i32(static_cast<int32_t>(a / b)));
      return true;
    }
    case QOp::I32RemS: {
      const int32_t b = pop().as_i32();
      const int32_t a = peek().as_i32();
      if (b == 0) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerDivideByZero);
        return false;
      }
      replace(Value::from_i32(b == -1 ? 0 : a % b));
      return true;
    }
    case QOp::I32RemU: {
      const uint32_t b = pop().as_u32();
      const uint32_t a = peek().as_u32();
      if (b == 0) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerDivideByZero);
        return false;
      }
      replace(Value::from_i32(static_cast<int32_t>(a % b)));
      return true;
    }

#define WB_JBIN64(name, EXPR)                                        \
  case QOp::name: {                                                  \
    const uint64_t ub = pop().as_u64();                              \
    const uint64_t ua = peek().as_u64();                             \
    (void)ua; (void)ub;                                              \
    replace(Value::from_i64(static_cast<int64_t>(EXPR)));            \
    return true;                                                     \
  }
      WB_JBIN64(I64Add, ua + ub)
      WB_JBIN64(I64Sub, ua - ub)
      WB_JBIN64(I64Mul, ua * ub)
      WB_JBIN64(I64And, ua & ub)
      WB_JBIN64(I64Or, ua | ub)
      WB_JBIN64(I64Xor, ua ^ ub)
      WB_JBIN64(I64Shl, ua << (ub & 63))
      WB_JBIN64(I64ShrU, ua >> (ub & 63))
      WB_JBIN64(I64Rotl, (ua << (ub & 63)) | (ua >> ((64 - ub) & 63)))
      WB_JBIN64(I64Rotr, (ua >> (ub & 63)) | (ua << ((64 - ub) & 63)))
#undef WB_JBIN64
    case QOp::I64ShrS: {
      const uint64_t b = pop().as_u64();
      const int64_t a = peek().as_i64();
      replace(Value::from_i64(a >> (b & 63)));
      return true;
    }
    case QOp::I64DivS: {
      const int64_t b = pop().as_i64();
      const int64_t a = peek().as_i64();
      if (b == 0) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerDivideByZero);
        return false;
      }
      if (a == INT64_MIN && b == -1) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerOverflow);
        return false;
      }
      replace(Value::from_i64(a / b));
      return true;
    }
    case QOp::I64DivU: {
      const uint64_t b = pop().as_u64();
      const uint64_t a = peek().as_u64();
      if (b == 0) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerDivideByZero);
        return false;
      }
      replace(Value::from_i64(static_cast<int64_t>(a / b)));
      return true;
    }
    case QOp::I64RemS: {
      const int64_t b = pop().as_i64();
      const int64_t a = peek().as_i64();
      if (b == 0) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerDivideByZero);
        return false;
      }
      replace(Value::from_i64(b == -1 ? 0 : a % b));
      return true;
    }
    case QOp::I64RemU: {
      const uint64_t b = pop().as_u64();
      const uint64_t a = peek().as_u64();
      if (b == 0) {
        ctx->trap = static_cast<uint32_t>(Trap::IntegerDivideByZero);
        return false;
      }
      replace(Value::from_i64(static_cast<int64_t>(a % b)));
      return true;
    }

    case QOp::F32Abs:
      replace(Value::from_f32(std::fabs(peek().as_f32())));
      return true;
    case QOp::F32Neg:
      replace(Value::from_f32(-peek().as_f32()));
      return true;
    case QOp::F32Sqrt:
      replace(Value::from_f32(std::sqrt(peek().as_f32())));
      return true;
    case QOp::F64Abs:
      replace(Value::from_f64(std::fabs(peek().as_f64())));
      return true;
    case QOp::F64Neg:
      replace(Value::from_f64(-peek().as_f64()));
      return true;
    case QOp::F64Sqrt:
      replace(Value::from_f64(std::sqrt(peek().as_f64())));
      return true;

#define WB_JFBIN(name, CTYPE, SUFFIX, FROM, OPR)                     \
  case QOp::name: {                                                  \
    const CTYPE b = pop().as_##SUFFIX();                             \
    const CTYPE a = peek().as_##SUFFIX();                            \
    replace(Value::FROM(a OPR b));                                   \
    return true;                                                     \
  }
      WB_JFBIN(F32Add, float, f32, from_f32, +)
      WB_JFBIN(F32Sub, float, f32, from_f32, -)
      WB_JFBIN(F32Mul, float, f32, from_f32, *)
      WB_JFBIN(F32Div, float, f32, from_f32, /)
      WB_JFBIN(F64Add, double, f64, from_f64, +)
      WB_JFBIN(F64Sub, double, f64, from_f64, -)
      WB_JFBIN(F64Mul, double, f64, from_f64, *)
      WB_JFBIN(F64Div, double, f64, from_f64, /)
#undef WB_JFBIN

    case QOp::I32WrapI64:
      replace(Value::from_i32(static_cast<int32_t>(peek().as_i64())));
      return true;
    case QOp::I64ExtendI32S:
      replace(Value::from_i64(peek().as_i32()));
      return true;
    case QOp::I64ExtendI32U:
      replace(Value::from_i64(static_cast<int64_t>(peek().as_u32())));
      return true;
    case QOp::F32ConvertI32S:
      replace(Value::from_f32(static_cast<float>(peek().as_i32())));
      return true;
    case QOp::F32ConvertI32U:
      replace(Value::from_f32(static_cast<float>(peek().as_u32())));
      return true;
    case QOp::F32ConvertI64S:
      replace(Value::from_f32(static_cast<float>(peek().as_i64())));
      return true;
    case QOp::F64ConvertI32S:
      replace(Value::from_f64(static_cast<double>(peek().as_i32())));
      return true;
    case QOp::F64ConvertI32U:
      replace(Value::from_f64(static_cast<double>(peek().as_u32())));
      return true;
    case QOp::F64ConvertI64S:
      replace(Value::from_f64(static_cast<double>(peek().as_i64())));
      return true;
    case QOp::F32DemoteF64:
      replace(Value::from_f32(static_cast<float>(peek().as_f64())));
      return true;
    case QOp::F64PromoteF32:
      replace(Value::from_f64(static_cast<double>(peek().as_f32())));
      return true;

    case QOp::FConstSet:
      locals[q.a] = q.val.bits;
      return true;

#define WB_JGETLOAD(name, CTYPE, PUSH)                   \
  case QOp::name: {                                      \
    const uint32_t addr = Value{locals[q.a]}.as_u32();   \
    CTYPE v;                                             \
    if (!mem_load(ctx, addr, q.b, &v, sizeof v)) {       \
      ctx->trap = static_cast<uint32_t>(Trap::MemoryOutOfBounds); \
      return false;                                      \
    }                                                    \
    push(PUSH);                                          \
    return true;                                         \
  }
      WB_JGETLOAD(FGetLoadI32, int32_t, Value::from_i32(v))
      WB_JGETLOAD(FGetLoadI64, int64_t, Value::from_i64(v))
      WB_JGETLOAD(FGetLoadF32, float, Value::from_f32(v))
      WB_JGETLOAD(FGetLoadF64, double, Value::from_f64(v))
      WB_JGETLOAD(FGetLoadI32U8, uint8_t, Value::from_i32(static_cast<int32_t>(v)))
#undef WB_JGETLOAD

#define WB_JGG(name, expr)                     \
  case QOp::FGetGet_##name: {                  \
    const Value va = Value{locals[q.a]};       \
    const Value vb = Value{locals[q.b]};       \
    push(expr);                                \
    return true;                               \
  }
      WB_QFUSE_BINOPS(WB_JGG)
#undef WB_JGG
#define WB_JGC(name, expr)                     \
  case QOp::FGetConst_##name: {                \
    const Value va = Value{locals[q.a]};       \
    const Value vb = q.val;                    \
    push(expr);                                \
    return true;                               \
  }
      WB_QFUSE_BINOPS(WB_JGC)
#undef WB_JGC
#define WB_JGGS(name, expr)                    \
  case QOp::FGetGetSet_##name: {               \
    const Value va = Value{locals[q.a]};       \
    const Value vb = Value{locals[q.b]};       \
    locals[q.c] = (expr).bits;                 \
    return true;                               \
  }
      WB_QFUSE_BINOPS(WB_JGGS)
#undef WB_JGGS
#define WB_JGCS(name, expr)                    \
  case QOp::FGetConstSet_##name: {             \
    const Value va = Value{locals[q.a]};       \
    const Value vb = q.val;                    \
    locals[q.c] = (expr).bits;                 \
    return true;                               \
  }
      WB_QFUSE_BINOPS(WB_JGCS)
#undef WB_JGCS

    default:
      // Control or non-eligible op: cannot be reached by the fuel helper
      // (see exec_qinstr's contract). Fail closed rather than misexecute.
      ctx->trap = static_cast<uint32_t>(Trap::HostError);
      return false;
  }
}

}  // namespace

extern "C" void wb_jit_fuel_trap(JitContext* ctx, uint32_t block,
                                 uint64_t* top) {
  const BlockCharge& blk = ctx->fn->blocks()[block];
  const QInstr* qcode = ctx->fn->qcode();
  for (uint32_t i = 0; i < blk.count; ++i) {
    const QInstr& q = qcode[blk.first + i];
    if (ctx->ops + q.nops > ctx->fuel) {
      // The quickened loop's fuel_out prefix: charge constituents up to
      // the fuel line, execute nothing.
      for (uint32_t k = 0; k < q.nops && ctx->ops < ctx->fuel; ++k) {
        ++ctx->ops;
        charge(ctx, q.cls[k], q.cat[k]);
      }
      ctx->trap = static_cast<uint32_t>(Trap::FuelExhausted);
      return;
    }
    ctx->ops += q.nops;
    for (uint32_t k = 0; k < q.nops; ++k) charge(ctx, q.cls[k], q.cat[k]);
    if (!exec_qinstr(ctx, q, top)) return;  // div/OOB trap mid-block
  }
  // Unreachable: if every QInstr fit, the block check could not have
  // failed. Fail closed.
  ctx->trap = static_cast<uint32_t>(Trap::HostError);
}

extern "C" void wb_jit_partial_trap(JitContext* ctx, uint32_t block,
                                    uint32_t qi, uint32_t trap) {
  const BlockCharge& blk = ctx->fn->blocks()[block];
  const QInstr* qcode = ctx->fn->qcode();
  // The block header already counted a full run and charged all its ops;
  // back out the bulk count and re-charge exactly the executed prefix
  // [0..qi] (the trapping QInstr is fully charged, like the quickened
  // loop, which charges before executing).
  --ctx->block_exec[block];
  uint64_t prefix_nops = 0;
  for (uint32_t i = 0; i <= qi; ++i) {
    const QInstr& q = qcode[blk.first + i];
    prefix_nops += q.nops;
    for (uint32_t k = 0; k < q.nops; ++k) charge(ctx, q.cls[k], q.cat[k]);
  }
  ctx->ops -= blk.nops - prefix_nops;
  ctx->trap = trap;
}

bool available() {
#if defined(__x86_64__)
  return probe_executable_memory();
#else
  return false;
#endif
}

void set_jit_default(bool enabled) {
  g_jit_default.store(enabled, std::memory_order_relaxed);
}

bool jit_default() {
  static const bool env_off = std::getenv("WB_NO_JIT") != nullptr;
  return !env_off && g_jit_default.load(std::memory_order_relaxed);
}

}  // namespace wb::wasm::jit
