// A small mmap'd W^X code cache: chunked bump allocation, with whole-chunk
// RW<->RX protection flips so writable and executable are never held
// simultaneously. One cache per Instance; chunks are freed with the cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wb::wasm::jit {

class CodeCache {
 public:
  CodeCache() = default;
  ~CodeCache();
  CodeCache(const CodeCache&) = delete;
  CodeCache& operator=(const CodeCache&) = delete;

  /// Copies `n` bytes of finished machine code into executable memory and
  /// returns the (RX) entry pointer, or nullptr on failure. The chunk is
  /// flipped to RW for the copy and back to RX before returning.
  const uint8_t* install(const uint8_t* bytes, size_t n);

  [[nodiscard]] size_t bytes_used() const { return used_; }

 private:
  struct Chunk {
    uint8_t* base = nullptr;
    size_t size = 0;
    size_t used = 0;
  };
  std::vector<Chunk> chunks_;
  size_t used_ = 0;
};

/// One-shot probe: can this process mmap anonymous memory and mprotect it
/// executable? (False on W^X-restricted hosts, e.g. hardened kernels or
/// no-exec sandboxes; the JIT then never engages.)
bool probe_executable_memory();

}  // namespace wb::wasm::jit
