#include "wasm/jit/asm_x64.h"

#include <cassert>
#include <cstring>

namespace wb::wasm::jit {

void Asm::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
}

void Asm::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<uint8_t>(v >> (8 * i)));
}

void Asm::patch32(size_t at, uint32_t v) {
  assert(at + 4 <= code.size());
  std::memcpy(code.data() + at, &v, 4);
}

void Asm::patch64(size_t at, uint64_t v) {
  assert(at + 8 <= code.size());
  std::memcpy(code.data() + at, &v, 8);
}

void Asm::rex(bool w, uint8_t reg, uint8_t rm, uint8_t index) {
  uint8_t b = 0x40;
  if (w) b |= 0x08;
  if (reg & 8) b |= 0x04;
  if (index & 8) b |= 0x02;
  if (rm & 8) b |= 0x01;
  if (b != 0x40) u8(b);
}

// mod=10 (disp32) ModRM; base==RSP/R12 needs a SIB byte.
size_t Asm::modrm_disp32(uint8_t reg, Reg base, int32_t disp) {
  u8(static_cast<uint8_t>(0x80 | ((reg & 7) << 3) | (base & 7)));
  if ((base & 7) == 4) u8(0x24);  // SIB: scale=1, no index, base
  const size_t at = size();
  u32(static_cast<uint32_t>(disp));
  return at;
}

// mod=00, rm=100 (SIB), scale=1, [base + idx]. base&7 must not be 5
// (RBP/R13) and idx must not be RSP; the JIT only uses r14 as base.
void Asm::modrm_sib_idx(uint8_t reg, Reg base, Reg idx) {
  assert((base & 7) != 5 && idx != RSP);
  u8(static_cast<uint8_t>(((reg & 7) << 3) | 4));
  u8(static_cast<uint8_t>(((idx & 7) << 3) | (base & 7)));
}

void Asm::mov_rr(bool w, Reg dst, Reg src) {
  rex(w, src, dst);
  u8(0x89);
  u8(static_cast<uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void Asm::mov_ri32(Reg dst, uint32_t imm) {
  rex(false, 0, dst);
  u8(static_cast<uint8_t>(0xB8 | (dst & 7)));
  u32(imm);
}

size_t Asm::mov_ri64(Reg dst, uint64_t imm) {
  rex(true, 0, dst);
  u8(static_cast<uint8_t>(0xB8 | (dst & 7)));
  const size_t at = size();
  u64(imm);
  return at;
}

size_t Asm::mov_r_m(bool w, Reg dst, Reg base, int32_t disp) {
  rex(w, dst, base);
  u8(0x8B);
  return modrm_disp32(dst, base, disp);
}

size_t Asm::mov_m_r(bool w, Reg base, int32_t disp, Reg src) {
  rex(w, src, base);
  u8(0x89);
  return modrm_disp32(src, base, disp);
}

void Asm::mov_m_i32(Reg base, int32_t disp, uint32_t imm) {
  rex(false, 0, base);
  u8(0xC7);
  modrm_disp32(0, base, disp);
  u32(imm);
}

size_t Asm::movsxd_r_m(Reg dst, Reg base, int32_t disp) {
  rex(true, dst, base);
  u8(0x63);
  return modrm_disp32(dst, base, disp);
}

size_t Asm::lea(Reg dst, Reg base, int32_t disp) {
  rex(true, dst, base);
  u8(0x8D);
  return modrm_disp32(dst, base, disp);
}

void Asm::ld_idx(int size_log2, bool sign, Reg dst, Reg base, Reg idx) {
  switch (size_log2) {
    case 0:
      rex(false, dst, base, idx);
      u8(0x0F);
      u8(sign ? 0xBE : 0xB6);  // movsx/movzx r32, m8
      break;
    case 1:
      rex(false, dst, base, idx);
      u8(0x0F);
      u8(sign ? 0xBF : 0xB7);  // movsx/movzx r32, m16
      break;
    case 2:
      rex(false, dst, base, idx);
      u8(0x8B);  // mov r32, m32 (zero-extends)
      break;
    default:
      rex(true, dst, base, idx);
      u8(0x8B);  // mov r64, m64
      break;
  }
  modrm_sib_idx(dst, base, idx);
}

void Asm::st_idx(int size_log2, Reg base, Reg idx, Reg src) {
  switch (size_log2) {
    case 0:
      assert(src < RSP);  // AL/CL/DL/BL without REX
      rex(false, src, base, idx);
      u8(0x88);
      break;
    case 1:
      u8(0x66);
      rex(false, src, base, idx);
      u8(0x89);
      break;
    case 2:
      rex(false, src, base, idx);
      u8(0x89);
      break;
    default:
      rex(true, src, base, idx);
      u8(0x89);
      break;
  }
  modrm_sib_idx(src, base, idx);
}

void Asm::alu_rr(bool w, AluExt op, Reg dst, Reg src) {
  rex(w, src, dst);
  u8(static_cast<uint8_t>(8 * op + 1));  // op r/m, r
  u8(static_cast<uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void Asm::alu_ri8(bool w, AluExt op, Reg r, int8_t imm) {
  rex(w, 0, r);
  u8(0x83);
  u8(static_cast<uint8_t>(0xC0 | (op << 3) | (r & 7)));
  u8(static_cast<uint8_t>(imm));
}

void Asm::alu_ri32(bool w, AluExt op, Reg r, uint32_t imm) {
  rex(w, 0, r);
  u8(0x81);
  u8(static_cast<uint8_t>(0xC0 | (op << 3) | (r & 7)));
  u32(imm);
}

void Asm::imul_rr(bool w, Reg dst, Reg src) {
  rex(w, dst, src);
  u8(0x0F);
  u8(0xAF);
  u8(static_cast<uint8_t>(0xC0 | ((dst & 7) << 3) | (src & 7)));
}

void Asm::test_rr(bool w, Reg a, Reg b) {
  rex(w, b, a);
  u8(0x85);
  u8(static_cast<uint8_t>(0xC0 | ((b & 7) << 3) | (a & 7)));
}

void Asm::shift_cl(bool w, ShiftExt op, Reg r) {
  rex(w, 0, r);
  u8(0xD3);
  u8(static_cast<uint8_t>(0xC0 | (op << 3) | (r & 7)));
}

void Asm::shift_ri(bool w, ShiftExt op, Reg r, uint8_t imm) {
  rex(w, 0, r);
  u8(0xC1);
  u8(static_cast<uint8_t>(0xC0 | (op << 3) | (r & 7)));
  u8(imm);
}

void Asm::idiv(bool w, Reg r) {
  rex(w, 0, r);
  u8(0xF7);
  u8(static_cast<uint8_t>(0xC0 | (7 << 3) | (r & 7)));
}

void Asm::div(bool w, Reg r) {
  rex(w, 0, r);
  u8(0xF7);
  u8(static_cast<uint8_t>(0xC0 | (6 << 3) | (r & 7)));
}

void Asm::setcc_al(CC cc) {
  u8(0x0F);
  u8(static_cast<uint8_t>(0x90 | cc));
  u8(0xC0);  // /0, rm=AL
}

void Asm::movzx_r32_al(Reg dst) {
  rex(false, dst, RAX);
  u8(0x0F);
  u8(0xB6);
  u8(static_cast<uint8_t>(0xC0 | ((dst & 7) << 3)));
}

void Asm::cmov(bool w, CC cc, Reg dst, Reg src) {
  rex(w, dst, src);
  u8(0x0F);
  u8(static_cast<uint8_t>(0x40 | cc));
  u8(static_cast<uint8_t>(0xC0 | ((dst & 7) << 3) | (src & 7)));
}

void Asm::inc_m64(Reg base, int32_t disp) {
  rex(true, 0, base);
  u8(0xFF);
  modrm_disp32(0, base, disp);
}

size_t Asm::jcc32(CC cc) {
  u8(0x0F);
  u8(static_cast<uint8_t>(0x80 | cc));
  const size_t at = size();
  u32(0);
  return at;
}

size_t Asm::jmp32() {
  u8(0xE9);
  const size_t at = size();
  u32(0);
  return at;
}

size_t Asm::jcc8(CC cc) {
  u8(static_cast<uint8_t>(0x70 | cc));
  const size_t at = size();
  u8(0);
  return at;
}

size_t Asm::jmp8() {
  u8(0xEB);
  const size_t at = size();
  u8(0);
  return at;
}

void Asm::bind8(size_t at) {
  const ptrdiff_t rel = static_cast<ptrdiff_t>(size()) - static_cast<ptrdiff_t>(at + 1);
  assert(rel >= -128 && rel <= 127);
  code[at] = static_cast<uint8_t>(rel);
}

void Asm::push(Reg r) {
  rex(false, 0, r);
  u8(static_cast<uint8_t>(0x50 | (r & 7)));
}

void Asm::pop(Reg r) {
  rex(false, 0, r);
  u8(static_cast<uint8_t>(0x58 | (r & 7)));
}

void Asm::movd_x_r(uint8_t x, Reg r) {
  u8(0x66);
  rex(false, x, r);
  u8(0x0F);
  u8(0x6E);
  u8(static_cast<uint8_t>(0xC0 | ((x & 7) << 3) | (r & 7)));
}

void Asm::movq_x_r(uint8_t x, Reg r) {
  u8(0x66);
  rex(true, x, r);
  u8(0x0F);
  u8(0x6E);
  u8(static_cast<uint8_t>(0xC0 | ((x & 7) << 3) | (r & 7)));
}

void Asm::movd_r_x(Reg r, uint8_t x) {
  u8(0x66);
  rex(false, x, r);
  u8(0x0F);
  u8(0x7E);
  u8(static_cast<uint8_t>(0xC0 | ((x & 7) << 3) | (r & 7)));
}

void Asm::movq_r_x(Reg r, uint8_t x) {
  u8(0x66);
  rex(true, x, r);
  u8(0x0F);
  u8(0x7E);
  u8(static_cast<uint8_t>(0xC0 | ((x & 7) << 3) | (r & 7)));
}

void Asm::sse(uint8_t prefix, uint8_t op, uint8_t xdst, uint8_t xsrc) {
  if (prefix) u8(prefix);
  u8(0x0F);
  u8(op);
  u8(static_cast<uint8_t>(0xC0 | ((xdst & 7) << 3) | (xsrc & 7)));
}

void Asm::cmps(bool dbl, uint8_t xdst, uint8_t xsrc, uint8_t pred) {
  u8(dbl ? 0xF2 : 0xF3);
  u8(0x0F);
  u8(0xC2);
  u8(static_cast<uint8_t>(0xC0 | ((xdst & 7) << 3) | (xsrc & 7)));
  u8(pred);
}

void Asm::cvtsi2(bool dbl, bool w, uint8_t xdst, Reg src) {
  u8(dbl ? 0xF2 : 0xF3);
  rex(w, xdst, src);
  u8(0x0F);
  u8(0x2A);
  u8(static_cast<uint8_t>(0xC0 | ((xdst & 7) << 3) | (src & 7)));
}

}  // namespace wb::wasm::jit
