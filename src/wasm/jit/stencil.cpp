// Builds the process-wide stencil table. Every stencil follows the fixed
// register model:
//   r15 = JitContext*        rbx = value-stack top (next free slot)
//   r13 = locals base        r14 = linear-memory base
//   r12 = block-exec base    rbp = ops counter
// scratch: rax rcx rdx rsi rdi, xmm0 xmm1. Stack slots are raw u64 Value
// bits; [rbx-8] is the top of stack and a push is `mov [rbx], X; add rbx,8`.
// All memory operands use disp32 so the patch holes have fixed width.
#include "wasm/jit/stencil.h"

#include <cstring>

#include "wasm/jit/asm_x64.h"
#include "wasm/opcode.h"
#include "wasm/types.h"

namespace wb::wasm::jit {

namespace {

// JitContext field offsets baked into the stencils (asserted against the
// struct layout in runtime.cpp).
constexpr int32_t kCtxOps = 0;
constexpr int32_t kCtxMemSize = 16;
constexpr int32_t kCtxStackBase = 32;
constexpr int32_t kCtxGlobals = 48;
constexpr int32_t kCtxTrap = 72;

struct B {
  Asm a;
  std::vector<Hole> holes;

  void hole(HoleKind k, size_t off) {
    holes.push_back({static_cast<uint32_t>(off), k});
  }

  Stencil take() {
    Stencil s;
    s.bytes = std::move(a.code);
    s.holes = std::move(holes);
    s.valid = true;
    return s;
  }

  // push rax: mov [rbx], rax; add rbx, 8
  void push_rax() {
    a.mov_m_r(true, RBX, 0, RAX);
    a.alu_ri8(true, ALU_ADD, RBX, 8);
  }
  void drop(int n) { a.alu_ri8(true, ALU_SUB, RBX, static_cast<int8_t>(8 * n)); }

  // Store rax over the value `slot` entries below the current top (slot 1 =
  // top), optionally popping afterwards via drop().
  void store_slot(int slot) { a.mov_m_r(true, RBX, -8 * slot, RAX); }
  void load_slot(bool w, Reg r, int slot) { a.mov_r_m(w, r, RBX, -8 * slot); }

  void load_local(bool w, Reg r, HoleKind k) {
    hole(k, a.mov_r_m(w, r, R13, 0));
  }
  void store_local(Reg r, HoleKind k) {
    hole(k, a.mov_m_r(true, R13, 0, r));
  }
};

// ---------------------------------------------------------------------------
// Straight-line singles
// ---------------------------------------------------------------------------

Stencil make_charge_only() {
  B b;
  return b.take();  // no code: the block header does all the accounting
}

Stencil make_unreachable() {
  B b;
  // The block header already charged this op, so just spill ops and trap.
  b.a.mov_m_r(true, R15, kCtxOps, RBP);
  b.a.mov_m_i32(R15, kCtxTrap, static_cast<uint32_t>(Trap::Unreachable));
  b.hole(HoleKind::TrapExit, b.a.jmp32());
  return b.take();
}

Stencil make_const() {
  B b;
  b.hole(HoleKind::Val64, b.a.mov_ri64(RAX, 0));
  b.push_rax();
  return b.take();
}

Stencil make_drop() {
  B b;
  b.drop(1);
  return b.take();
}

Stencil make_select() {
  B b;
  b.load_slot(false, RAX, 1);  // cond
  b.load_slot(true, RCX, 3);   // va
  b.load_slot(true, RDX, 2);   // vb
  b.a.test_rr(false, RAX, RAX);
  b.a.cmov(true, CC_E, RCX, RDX);  // cond == 0 -> vb
  b.a.mov_m_r(true, RBX, -24, RCX);
  b.drop(2);
  return b.take();
}

Stencil make_local_get() {
  B b;
  b.load_local(true, RAX, HoleKind::DispA);
  b.push_rax();
  return b.take();
}

Stencil make_local_set() {
  B b;
  b.load_slot(true, RAX, 1);
  b.drop(1);
  b.store_local(RAX, HoleKind::DispA);
  return b.take();
}

Stencil make_local_tee() {
  B b;
  b.load_slot(true, RAX, 1);
  b.store_local(RAX, HoleKind::DispA);
  return b.take();
}

Stencil make_global_get() {
  B b;
  b.a.mov_r_m(true, RCX, R15, kCtxGlobals);
  b.hole(HoleKind::DispA, b.a.mov_r_m(true, RAX, RCX, 0));
  b.push_rax();
  return b.take();
}

Stencil make_global_set() {
  B b;
  b.a.mov_r_m(true, RCX, R15, kCtxGlobals);
  b.load_slot(true, RAX, 1);
  b.drop(1);
  b.hole(HoleKind::DispA, b.a.mov_m_r(true, RCX, 0, RAX));
  return b.take();
}

// Shared load shape. `from_local`: address comes from locals[a] (FGetLoad*)
// and the result is pushed; otherwise the address is the stack top and the
// result replaces it.
Stencil make_load(int size_log2, bool sign, bool from_local) {
  B b;
  if (from_local) {
    b.load_local(false, RAX, HoleKind::DispA);  // 32-bit read = as_u32
  } else {
    b.load_slot(false, RAX, 1);
  }
  b.hole(HoleKind::ImmB, b.a.lea(RCX, RAX, 0));         // ea = addr + offset
  b.a.lea(RDX, RCX, 1 << size_log2);                    // end = ea + size
  b.a.mov_r_m(true, RSI, R15, kCtxMemSize);
  b.a.alu_rr(true, ALU_CMP, RDX, RSI);
  b.hole(HoleKind::TrapOob, b.a.jcc32(CC_A));
  b.a.ld_idx(size_log2, sign, RAX, R14, RCX);
  if (from_local) {
    b.push_rax();
  } else {
    b.store_slot(1);
  }
  return b.take();
}

Stencil make_store(int size_log2) {
  B b;
  b.load_slot(false, RAX, 2);  // addr
  b.hole(HoleKind::ImmB, b.a.lea(RCX, RAX, 0));
  b.a.lea(RSI, RCX, 1 << size_log2);
  b.a.mov_r_m(true, RDI, R15, kCtxMemSize);
  b.a.alu_rr(true, ALU_CMP, RSI, RDI);
  b.hole(HoleKind::TrapOob, b.a.jcc32(CC_A));
  b.load_slot(true, RDX, 1);  // value bits (dl/dx/edx/rdx per width)
  b.a.st_idx(size_log2, R14, RCX, RDX);
  b.drop(2);
  return b.take();
}

Stencil make_memory_size() {
  B b;
  b.a.mov_r_m(true, RAX, R15, kCtxMemSize);
  b.a.shift_ri(true, SH_SHR, RAX, 16);  // bytes -> 64 KiB pages
  b.push_rax();
  return b.take();
}

// Integer compare: top = (second CC top) ? 1 : 0, pop one.
Stencil make_icmp(bool w, CC cc) {
  B b;
  b.load_slot(w, RCX, 1);
  b.load_slot(w, RAX, 2);
  b.a.alu_rr(w, ALU_CMP, RAX, RCX);
  b.a.setcc_al(cc);
  b.a.movzx_r32_al(RAX);
  b.store_slot(2);
  b.drop(1);
  return b.take();
}

Stencil make_eqz(bool w) {
  B b;
  b.load_slot(w, RAX, 1);
  b.a.test_rr(w, RAX, RAX);
  b.a.setcc_al(CC_E);
  b.a.movzx_r32_al(RAX);
  b.store_slot(1);
  return b.take();
}

// Float compare via cmpss/cmpsd. `swap` reverses the operand order (Gt/Ge
// become Lt/Le with swapped operands, matching the C++ comparison exactly,
// NaNs included).
Stencil make_fcmp(bool dbl, uint8_t pred, bool swap) {
  B b;
  auto load = [&](uint8_t x, int slot) {
    if (dbl) {
      b.load_slot(true, RAX, slot);
      b.a.movq_x_r(x, RAX);
    } else {
      b.load_slot(false, RAX, slot);
      b.a.movd_x_r(x, RAX);
    }
  };
  load(0, swap ? 1 : 2);  // lhs of the predicate
  load(1, swap ? 2 : 1);
  b.a.cmps(dbl, 0, 1, pred);
  b.a.movd_r_x(RAX, 0);  // mask low 32 bits (zero-extends)
  b.a.alu_ri8(false, ALU_AND, RAX, 1);
  b.store_slot(2);
  b.drop(1);
  return b.take();
}

enum class IBin { Alu, Mul, Shift, Rot };

Stencil make_ibin(bool w, IBin kind, uint8_t ext) {
  B b;
  b.load_slot(w, RCX, 1);
  b.load_slot(w, RAX, 2);
  switch (kind) {
    case IBin::Alu:
      b.a.alu_rr(w, static_cast<AluExt>(ext), RAX, RCX);
      break;
    case IBin::Mul:
      b.a.imul_rr(w, RAX, RCX);
      break;
    case IBin::Shift:
    case IBin::Rot:
      // Count already in cl; hardware masks by 31/63 like the interpreter.
      b.a.shift_cl(w, static_cast<ShiftExt>(ext), RAX);
      break;
  }
  b.store_slot(2);
  b.drop(1);
  return b.take();
}

Stencil make_idiv(bool w, bool is_signed, bool is_rem) {
  B b;
  b.load_slot(w, RCX, 1);  // divisor
  b.load_slot(w, RAX, 2);  // dividend
  b.a.test_rr(w, RCX, RCX);
  b.hole(HoleKind::TrapDivZero, b.a.jcc32(CC_E));
  if (is_signed) {
    if (is_rem) {
      // rem(INT_MIN, -1) == 0: pre-zero rdx and skip the divide on -1.
      b.a.alu_rr(false, ALU_XOR, RDX, RDX);
      b.a.alu_ri8(w, ALU_CMP, RCX, -1);
      const size_t store = b.a.jcc8(CC_E);
      if (w) {
        b.a.cqo();
      } else {
        b.a.cdq();
      }
      b.a.idiv(w, RCX);
      b.a.bind8(store);
    } else {
      b.a.alu_ri8(w, ALU_CMP, RCX, -1);
      const size_t do_div = b.a.jcc8(CC_NE);
      if (w) {
        b.a.mov_ri64(RDX, 0x8000000000000000ull);
        b.a.alu_rr(true, ALU_CMP, RAX, RDX);
      } else {
        b.a.alu_ri32(false, ALU_CMP, RAX, 0x80000000u);
      }
      b.hole(HoleKind::TrapOverflow, b.a.jcc32(CC_E));
      b.a.bind8(do_div);
      if (w) {
        b.a.cqo();
      } else {
        b.a.cdq();
      }
      b.a.idiv(w, RCX);
    }
  } else {
    b.a.alu_rr(false, ALU_XOR, RDX, RDX);
    b.a.div(w, RCX);
  }
  // idiv's 32-bit forms zero-extend eax/edx into rax/rdx, so a plain
  // 64-bit store writes canonical Value bits for both widths.
  if (is_rem) {
    b.a.mov_m_r(true, RBX, -16, RDX);
  } else {
    b.store_slot(2);
  }
  b.drop(1);
  return b.take();
}

// Float binop (add/sub/mul/div): pop two, push one.
Stencil make_fbin(bool dbl, uint8_t op) {
  B b;
  auto load = [&](uint8_t x, int slot) {
    if (dbl) {
      b.load_slot(true, RAX, slot);
      b.a.movq_x_r(x, RAX);
    } else {
      b.load_slot(false, RAX, slot);
      b.a.movd_x_r(x, RAX);
    }
  };
  load(0, 2);
  load(1, 1);
  b.a.sse(dbl ? 0xF2 : 0xF3, op, 0, 1);
  if (dbl) {
    b.a.movq_r_x(RAX, 0);
  } else {
    b.a.movd_r_x(RAX, 0);
  }
  b.store_slot(2);
  b.drop(1);
  return b.take();
}

// abs/neg via bit masks (sign-bit games, exactly what the C++ helpers do).
Stencil make_fbit(bool dbl, bool is_abs) {
  B b;
  const AluExt op = is_abs ? ALU_AND : ALU_XOR;
  if (dbl) {
    b.load_slot(true, RAX, 1);
    b.a.mov_ri64(RCX, is_abs ? 0x7fffffffffffffffull : 0x8000000000000000ull);
    b.a.alu_rr(true, op, RAX, RCX);
  } else {
    b.load_slot(false, RAX, 1);
    b.a.alu_ri32(false, op, RAX, is_abs ? 0x7fffffffu : 0x80000000u);
  }
  b.store_slot(1);
  return b.take();
}

Stencil make_fsqrt(bool dbl) {
  B b;
  if (dbl) {
    b.load_slot(true, RAX, 1);
    b.a.movq_x_r(0, RAX);
  } else {
    b.load_slot(false, RAX, 1);
    b.a.movd_x_r(0, RAX);
  }
  b.a.sse(dbl ? 0xF2 : 0xF3, 0x51, 0, 0);  // sqrtss/sqrtsd == std::sqrt
  if (dbl) {
    b.a.movq_r_x(RAX, 0);
  } else {
    b.a.movd_r_x(RAX, 0);
  }
  b.store_slot(1);
  return b.take();
}

Stencil make_wrap_or_extend_u() {
  B b;
  // mov eax, [..] zero-extends: both i32.wrap_i64 and i64.extend_i32_u.
  b.load_slot(false, RAX, 1);
  b.store_slot(1);
  return b.take();
}

Stencil make_extend_s() {
  B b;
  b.a.movsxd_r_m(RAX, RBX, -8);
  b.store_slot(1);
  return b.take();
}

// int -> float conversions. `w`: source is read as 64-bit (either a real
// i64, or a zero-extended u32 so cvtsi2 sees the unsigned value).
Stencil make_cvt_if(bool dbl, bool w, bool src32) {
  B b;
  b.load_slot(src32 ? false : true, RAX, 1);
  b.a.cvtsi2(dbl, w, 0, RAX);
  if (dbl) {
    b.a.movq_r_x(RAX, 0);
  } else {
    b.a.movd_r_x(RAX, 0);
  }
  b.store_slot(1);
  return b.take();
}

Stencil make_demote() {
  B b;
  b.load_slot(true, RAX, 1);
  b.a.movq_x_r(0, RAX);
  b.a.sse(0xF2, 0x5A, 0, 0);  // cvtsd2ss
  b.a.movd_r_x(RAX, 0);
  b.store_slot(1);
  return b.take();
}

Stencil make_promote() {
  B b;
  b.load_slot(false, RAX, 1);
  b.a.movd_x_r(0, RAX);
  b.a.sse(0xF3, 0x5A, 0, 0);  // cvtss2sd
  b.a.movq_r_x(RAX, 0);
  b.store_slot(1);
  return b.take();
}

Stencil make_fconst_set() {
  B b;
  b.hole(HoleKind::Val64, b.a.mov_ri64(RAX, 0));
  b.store_local(RAX, HoleKind::DispA);
  return b.take();
}

// ---------------------------------------------------------------------------
// Fused GetGet/GetConst[Set] superinstructions
// ---------------------------------------------------------------------------

enum class FK { I32Alu, I32Mul, I32Shift, I32Cmp, I64Alu, I64Mul, F32, F64 };
struct FuseSpec {
  FK kind;
  uint8_t arg;  // AluExt / ShiftExt / CC / SSE op, per kind
};

// Order must match WB_QFUSE_BINOPS exactly.
constexpr FuseSpec kFuse[28] = {
    {FK::I32Alu, ALU_ADD},  {FK::I32Alu, ALU_SUB},  {FK::I32Mul, 0},
    {FK::I32Alu, ALU_AND},  {FK::I32Alu, ALU_OR},   {FK::I32Alu, ALU_XOR},
    {FK::I32Shift, SH_SHL}, {FK::I32Shift, SH_SAR}, {FK::I32Shift, SH_SHR},
    {FK::I32Cmp, CC_E},     {FK::I32Cmp, CC_NE},    {FK::I32Cmp, CC_L},
    {FK::I32Cmp, CC_B},     {FK::I32Cmp, CC_G},     {FK::I32Cmp, CC_A},
    {FK::I32Cmp, CC_LE},    {FK::I32Cmp, CC_BE},    {FK::I32Cmp, CC_GE},
    {FK::I32Cmp, CC_AE},    {FK::I64Alu, ALU_ADD},  {FK::I64Alu, ALU_SUB},
    {FK::I64Mul, 0},        {FK::F32, 0x58},        {FK::F32, 0x5C},
    {FK::F32, 0x59},        {FK::F64, 0x58},        {FK::F64, 0x5C},
    {FK::F64, 0x59},
};

Stencil make_fused(const FuseSpec& spec, bool vb_const, bool out_set) {
  B b;
  const bool f32 = spec.kind == FK::F32;
  const bool f64 = spec.kind == FK::F64;
  const bool w64 = spec.kind == FK::I64Alu || spec.kind == FK::I64Mul;

  // va from locals[a].
  if (f64) {
    b.load_local(true, RAX, HoleKind::DispA);
    b.a.movq_x_r(0, RAX);
  } else if (f32) {
    b.load_local(false, RAX, HoleKind::DispA);
    b.a.movd_x_r(0, RAX);
  } else {
    b.load_local(w64, RAX, HoleKind::DispA);
  }
  // vb from locals[b] or the inline constant.
  if (vb_const) {
    if (f64 || w64) {
      b.hole(HoleKind::Val64, b.a.mov_ri64(RCX, 0));
    } else {
      // mov ecx, imm32: the low Value word (i32 operand or f32 bits).
      b.hole(HoleKind::Val32, b.a.size() + 1);
      b.a.mov_ri32(RCX, 0);
    }
  } else {
    b.load_local((f64 || w64), RCX, HoleKind::DispB);
  }
  if (f32) b.a.movd_x_r(1, RCX);
  if (f64) b.a.movq_x_r(1, RCX);

  switch (spec.kind) {
    case FK::I32Alu:
    case FK::I64Alu:
      b.a.alu_rr(w64, static_cast<AluExt>(spec.arg), RAX, RCX);
      break;
    case FK::I32Mul:
    case FK::I64Mul:
      b.a.imul_rr(w64, RAX, RCX);
      break;
    case FK::I32Shift:
      b.a.shift_cl(false, static_cast<ShiftExt>(spec.arg), RAX);
      break;
    case FK::I32Cmp:
      b.a.alu_rr(false, ALU_CMP, RAX, RCX);
      b.a.setcc_al(static_cast<CC>(spec.arg));
      b.a.movzx_r32_al(RAX);
      break;
    case FK::F32:
    case FK::F64:
      b.a.sse(f64 ? 0xF2 : 0xF3, spec.arg, 0, 1);
      if (f64) {
        b.a.movq_r_x(RAX, 0);
      } else {
        b.a.movd_r_x(RAX, 0);
      }
      break;
  }

  if (out_set) {
    b.store_local(RAX, HoleKind::DispC);
  } else {
    b.push_rax();
  }
  return b.take();
}

// ---------------------------------------------------------------------------
// Control
// ---------------------------------------------------------------------------

// Branch body: reset the stack top to the pre-resolved height, optionally
// carrying the current top value down, then jump to the target block.
void emit_branch_part(B& b, int variant) {
  if (variant == 2) {
    b.load_slot(true, RCX, 1);
    b.a.mov_r_m(true, RAX, R15, kCtxStackBase);
    b.hole(HoleKind::DispB, b.a.mov_m_r(true, RAX, 0, RCX));
    b.hole(HoleKind::DispB8, b.a.lea(RBX, RAX, 0));
  } else {
    b.a.mov_r_m(true, RAX, R15, kCtxStackBase);
    b.hole(HoleKind::DispB, b.a.lea(RBX, RAX, 0));
  }
  b.hole(HoleKind::BranchA, b.a.jmp32());
}

Stencil make_if() {
  B b;
  b.drop(1);
  b.a.mov_r_m(false, RAX, RBX, 0);
  b.a.test_rr(false, RAX, RAX);
  const size_t skip = b.a.jcc8(CC_NE);
  b.hole(HoleKind::BranchA, b.a.jmp32());
  b.a.bind8(skip);
  return b.take();
}

Stencil make_jump() {
  B b;
  b.hole(HoleKind::BranchA, b.a.jmp32());
  return b.take();
}

Stencil make_br(int variant) {
  B b;
  emit_branch_part(b, variant);
  return b.take();
}

Stencil make_br_if(int variant) {
  B b;
  b.drop(1);
  b.a.mov_r_m(false, RAX, RBX, 0);
  b.a.test_rr(false, RAX, RAX);
  const size_t skip = b.a.jcc8(CC_E);
  emit_branch_part(b, variant);
  b.a.bind8(skip);
  return b.take();
}

Stencil make_cmp_br(CC cc, int variant) {
  B b;
  b.load_slot(false, RCX, 1);  // vb
  b.load_slot(false, RAX, 2);  // va
  b.drop(2);
  b.a.alu_rr(false, ALU_CMP, RAX, RCX);
  // Fall through (skip the branch) on the inverse condition.
  const size_t skip = b.a.jcc8(static_cast<CC>(cc ^ 1));
  emit_branch_part(b, variant);
  b.a.bind8(skip);
  return b.take();
}

Stencil make_return(int arity) {
  B b;
  if (arity == 1) {
    b.load_slot(true, RCX, 1);
    b.a.mov_r_m(true, RAX, R15, kCtxStackBase);
    b.a.mov_m_r(true, RAX, 0, RCX);
    b.a.lea(RBX, RAX, 8);
  } else {
    b.a.mov_r_m(true, RBX, R15, kCtxStackBase);
  }
  b.hole(HoleKind::BranchB, b.a.jmp32());
  return b.take();
}

// ---------------------------------------------------------------------------
// Table assembly
// ---------------------------------------------------------------------------

void set_op(StencilTable& t, QOp op, Stencil s) {
  t.ops[static_cast<size_t>(op)] = std::move(s);
}

void build(StencilTable& t) {
  set_op(t, QOp::ChargeOnly, make_charge_only());
  set_op(t, QOp::Unreachable, make_unreachable());
  set_op(t, QOp::If, make_if());
  set_op(t, QOp::Jump, make_jump());
  set_op(t, QOp::Const, make_const());
  set_op(t, QOp::Drop, make_drop());
  set_op(t, QOp::Select, make_select());

  set_op(t, QOp::LocalGet, make_local_get());
  set_op(t, QOp::LocalSet, make_local_set());
  set_op(t, QOp::LocalTee, make_local_tee());
  set_op(t, QOp::GlobalGet, make_global_get());
  set_op(t, QOp::GlobalSet, make_global_set());

  set_op(t, QOp::I32Load, make_load(2, false, false));
  set_op(t, QOp::I64Load, make_load(3, false, false));
  set_op(t, QOp::F32Load, make_load(2, false, false));
  set_op(t, QOp::F64Load, make_load(3, false, false));
  set_op(t, QOp::I32Load8S, make_load(0, true, false));
  set_op(t, QOp::I32Load8U, make_load(0, false, false));
  set_op(t, QOp::I32Load16S, make_load(1, true, false));
  set_op(t, QOp::I32Load16U, make_load(1, false, false));
  set_op(t, QOp::I32Store, make_store(2));
  set_op(t, QOp::I64Store, make_store(3));
  set_op(t, QOp::F32Store, make_store(2));
  set_op(t, QOp::F64Store, make_store(3));
  set_op(t, QOp::I32Store8, make_store(0));
  set_op(t, QOp::I32Store16, make_store(1));
  set_op(t, QOp::MemorySize, make_memory_size());

  set_op(t, QOp::I32Eqz, make_eqz(false));
  set_op(t, QOp::I64Eqz, make_eqz(true));
  struct CmpRow {
    QOp op32, op64;
    CC cc;
  };
  const CmpRow cmps[] = {
      {QOp::I32Eq, QOp::I64Eq, CC_E},   {QOp::I32Ne, QOp::I64Ne, CC_NE},
      {QOp::I32LtS, QOp::I64LtS, CC_L}, {QOp::I32LtU, QOp::I64LtU, CC_B},
      {QOp::I32GtS, QOp::I64GtS, CC_G}, {QOp::I32GtU, QOp::I64GtU, CC_A},
      {QOp::I32LeS, QOp::I64LeS, CC_LE}, {QOp::I32LeU, QOp::I64LeU, CC_BE},
      {QOp::I32GeS, QOp::I64GeS, CC_GE}, {QOp::I32GeU, QOp::I64GeU, CC_AE},
  };
  for (const CmpRow& r : cmps) {
    set_op(t, r.op32, make_icmp(false, r.cc));
    set_op(t, r.op64, make_icmp(true, r.cc));
  }
  struct FCmpRow {
    QOp op32, op64;
    uint8_t pred;
    bool swap;
  };
  const FCmpRow fcmps[] = {
      {QOp::F32Eq, QOp::F64Eq, 0, false}, {QOp::F32Ne, QOp::F64Ne, 4, false},
      {QOp::F32Lt, QOp::F64Lt, 1, false}, {QOp::F32Gt, QOp::F64Gt, 1, true},
      {QOp::F32Le, QOp::F64Le, 2, false}, {QOp::F32Ge, QOp::F64Ge, 2, true},
  };
  for (const FCmpRow& r : fcmps) {
    set_op(t, r.op32, make_fcmp(false, r.pred, r.swap));
    set_op(t, r.op64, make_fcmp(true, r.pred, r.swap));
  }

  struct BinRow {
    QOp op32, op64;
    IBin kind;
    uint8_t ext;
  };
  const BinRow bins[] = {
      {QOp::I32Add, QOp::I64Add, IBin::Alu, ALU_ADD},
      {QOp::I32Sub, QOp::I64Sub, IBin::Alu, ALU_SUB},
      {QOp::I32Mul, QOp::I64Mul, IBin::Mul, 0},
      {QOp::I32And, QOp::I64And, IBin::Alu, ALU_AND},
      {QOp::I32Or, QOp::I64Or, IBin::Alu, ALU_OR},
      {QOp::I32Xor, QOp::I64Xor, IBin::Alu, ALU_XOR},
      {QOp::I32Shl, QOp::I64Shl, IBin::Shift, SH_SHL},
      {QOp::I32ShrS, QOp::I64ShrS, IBin::Shift, SH_SAR},
      {QOp::I32ShrU, QOp::I64ShrU, IBin::Shift, SH_SHR},
      {QOp::I32Rotl, QOp::I64Rotl, IBin::Rot, SH_ROL},
      {QOp::I32Rotr, QOp::I64Rotr, IBin::Rot, SH_ROR},
  };
  for (const BinRow& r : bins) {
    set_op(t, r.op32, make_ibin(false, r.kind, r.ext));
    set_op(t, r.op64, make_ibin(true, r.kind, r.ext));
  }
  set_op(t, QOp::I32DivS, make_idiv(false, true, false));
  set_op(t, QOp::I32DivU, make_idiv(false, false, false));
  set_op(t, QOp::I32RemS, make_idiv(false, true, true));
  set_op(t, QOp::I32RemU, make_idiv(false, false, true));
  set_op(t, QOp::I64DivS, make_idiv(true, true, false));
  set_op(t, QOp::I64DivU, make_idiv(true, false, false));
  set_op(t, QOp::I64RemS, make_idiv(true, true, true));
  set_op(t, QOp::I64RemU, make_idiv(true, false, true));

  set_op(t, QOp::F32Abs, make_fbit(false, true));
  set_op(t, QOp::F32Neg, make_fbit(false, false));
  set_op(t, QOp::F64Abs, make_fbit(true, true));
  set_op(t, QOp::F64Neg, make_fbit(true, false));
  set_op(t, QOp::F32Sqrt, make_fsqrt(false));
  set_op(t, QOp::F64Sqrt, make_fsqrt(true));
  const struct {
    QOp op32, op64;
    uint8_t sse;
  } fbins[] = {
      {QOp::F32Add, QOp::F64Add, 0x58},
      {QOp::F32Sub, QOp::F64Sub, 0x5C},
      {QOp::F32Mul, QOp::F64Mul, 0x59},
      {QOp::F32Div, QOp::F64Div, 0x5E},
  };
  for (const auto& r : fbins) {
    set_op(t, r.op32, make_fbin(false, r.sse));
    set_op(t, r.op64, make_fbin(true, r.sse));
  }

  set_op(t, QOp::I32WrapI64, make_wrap_or_extend_u());
  set_op(t, QOp::I64ExtendI32S, make_extend_s());
  set_op(t, QOp::I64ExtendI32U, make_wrap_or_extend_u());
  set_op(t, QOp::F32ConvertI32S, make_cvt_if(false, false, true));
  set_op(t, QOp::F32ConvertI32U, make_cvt_if(false, true, true));
  set_op(t, QOp::F32ConvertI64S, make_cvt_if(false, true, false));
  set_op(t, QOp::F64ConvertI32S, make_cvt_if(true, false, true));
  set_op(t, QOp::F64ConvertI32U, make_cvt_if(true, true, true));
  set_op(t, QOp::F64ConvertI64S, make_cvt_if(true, true, false));
  set_op(t, QOp::F32DemoteF64, make_demote());
  set_op(t, QOp::F64PromoteF32, make_promote());

  set_op(t, QOp::FConstSet, make_fconst_set());
  set_op(t, QOp::FGetLoadI32, make_load(2, false, true));
  set_op(t, QOp::FGetLoadI64, make_load(3, false, true));
  set_op(t, QOp::FGetLoadF32, make_load(2, false, true));
  set_op(t, QOp::FGetLoadF64, make_load(3, false, true));
  set_op(t, QOp::FGetLoadI32U8, make_load(0, false, true));

  const size_t gg = static_cast<size_t>(QOp::FGetGet_I32Add);
  const size_t gc = static_cast<size_t>(QOp::FGetConst_I32Add);
  const size_t ggs = static_cast<size_t>(QOp::FGetGetSet_I32Add);
  const size_t gcs = static_cast<size_t>(QOp::FGetConstSet_I32Add);
  for (size_t i = 0; i < 28; ++i) {
    t.ops[gg + i] = make_fused(kFuse[i], false, false);
    t.ops[gc + i] = make_fused(kFuse[i], true, false);
    t.ops[ggs + i] = make_fused(kFuse[i], false, true);
    t.ops[gcs + i] = make_fused(kFuse[i], true, true);
  }

  for (int v = 0; v < kBranchVariants; ++v) {
    t.br[v] = make_br(v);
    t.br_if[v] = make_br_if(v);
  }
  t.ret[0] = make_return(0);
  t.ret[1] = make_return(1);
  const CC cmp_br_ccs[10] = {CC_E, CC_NE, CC_L, CC_B, CC_G,
                             CC_A, CC_LE, CC_BE, CC_GE, CC_AE};
  for (int c = 0; c < 10; ++c) {
    for (int v = 0; v < kBranchVariants; ++v) {
      t.cmp_br[c][v] = make_cmp_br(cmp_br_ccs[c], v);
    }
  }
}

}  // namespace

int cmp_br_cond_index(uint32_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::I32Eq: return 0;
    case Opcode::I32Ne: return 1;
    case Opcode::I32LtS: return 2;
    case Opcode::I32LtU: return 3;
    case Opcode::I32GtS: return 4;
    case Opcode::I32GtU: return 5;
    case Opcode::I32LeS: return 6;
    case Opcode::I32LeU: return 7;
    case Opcode::I32GeS: return 8;
    case Opcode::I32GeU: return 9;
    default: return -1;
  }
}

const StencilTable& stencils() {
  static StencilTable* table = [] {
    auto* t = new StencilTable();
    build(*t);
    return t;
  }();
  return *table;
}

void patch_immediate(uint8_t* code, const Hole& hole, const QInstr& q) {
  auto put32 = [&](uint32_t v) { std::memcpy(code + hole.offset, &v, 4); };
  switch (hole.kind) {
    case HoleKind::DispA:
      put32(8 * q.a);
      break;
    case HoleKind::DispB:
      put32(8 * q.b);
      break;
    case HoleKind::DispB8:
      put32(8 * q.b + 8);
      break;
    case HoleKind::DispC:
      put32(8 * q.c);
      break;
    case HoleKind::ImmB:
      put32(q.b);
      break;
    case HoleKind::Val32:
      put32(static_cast<uint32_t>(q.val.bits));
      break;
    case HoleKind::Val64:
      std::memcpy(code + hole.offset, &q.val.bits, 8);
      break;
    default:
      break;  // layout holes: patched by compile()
  }
}

}  // namespace wb::wasm::jit
