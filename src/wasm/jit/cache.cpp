#include "wasm/jit/cache.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define WB_JIT_HAVE_MMAP 1
#else
#define WB_JIT_HAVE_MMAP 0
#endif

namespace wb::wasm::jit {

namespace {
constexpr size_t kChunkSize = 64 * 1024;

size_t round_up(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }
}  // namespace

CodeCache::~CodeCache() {
#if WB_JIT_HAVE_MMAP
  for (Chunk& c : chunks_) {
    if (c.base) ::munmap(c.base, c.size);
  }
#endif
}

const uint8_t* CodeCache::install(const uint8_t* bytes, size_t n) {
#if !WB_JIT_HAVE_MMAP
  (void)bytes;
  (void)n;
  return nullptr;
#else
  const size_t need = round_up(n, 16);
  Chunk* chunk = nullptr;
  for (Chunk& c : chunks_) {
    if (c.size - c.used >= need) {
      chunk = &c;
      break;
    }
  }
  if (!chunk) {
    const size_t size = round_up(need > kChunkSize ? need : kChunkSize,
                                 static_cast<size_t>(::sysconf(_SC_PAGESIZE)));
    void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) return nullptr;
    chunks_.push_back({static_cast<uint8_t*>(base), size, 0});
    chunk = &chunks_.back();
    // Fresh chunks are RW; established chunks are RX and flipped below.
  } else {
    if (::mprotect(chunk->base, chunk->size, PROT_READ | PROT_WRITE) != 0) {
      return nullptr;
    }
  }
  uint8_t* dst = chunk->base + chunk->used;
  std::memcpy(dst, bytes, n);
  chunk->used += need;
  used_ += need;
  if (::mprotect(chunk->base, chunk->size, PROT_READ | PROT_EXEC) != 0) {
    return nullptr;  // W^X-restricted host: caller falls back to quickened
  }
  return dst;
#endif
}

bool probe_executable_memory() {
#if !WB_JIT_HAVE_MMAP || !defined(__x86_64__)
  return false;
#else
  static const bool ok = [] {
    const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
    void* mem = ::mmap(nullptr, page, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) return false;
    static_cast<uint8_t*>(mem)[0] = 0xC3;  // ret
    bool good = ::mprotect(mem, page, PROT_READ | PROT_EXEC) == 0;
    if (good) {
      reinterpret_cast<void (*)()>(mem)();  // execute the ret
    }
    ::munmap(mem, page);
    return good;
  }();
  return ok;
#endif
}

}  // namespace wb::wasm::jit
