// A minimal x86-64 instruction emitter for building copy-and-patch stencils
// (stencil.cpp) and stitching them into function bodies (compile.cpp). Only
// the encodings the template JIT needs are implemented; memory operands are
// always emitted with a full disp32 so immediate patch holes have a fixed
// width and position.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wb::wasm::jit {

enum Reg : uint8_t {
  RAX = 0, RCX, RDX, RBX, RSP, RBP, RSI, RDI,
  R8, R9, R10, R11, R12, R13, R14, R15,
};

/// Condition codes (the low nibble of jcc/setcc/cmovcc opcodes).
enum CC : uint8_t {
  CC_O = 0x0, CC_NO = 0x1, CC_B = 0x2, CC_AE = 0x3,
  CC_E = 0x4, CC_NE = 0x5, CC_BE = 0x6, CC_A = 0x7,
  CC_S = 0x8, CC_NS = 0x9, CC_P = 0xA, CC_NP = 0xB,
  CC_L = 0xC, CC_GE = 0xD, CC_LE = 0xE, CC_G = 0xF,
};

/// ALU /ext values (and the MR opcode family 8*ext+1).
enum AluExt : uint8_t {
  ALU_ADD = 0, ALU_OR = 1, ALU_AND = 4, ALU_SUB = 5, ALU_XOR = 6, ALU_CMP = 7,
};

/// Shift-group /ext values (D3 /ext with count in CL).
enum ShiftExt : uint8_t {
  SH_ROL = 0, SH_ROR = 1, SH_SHL = 4, SH_SHR = 5, SH_SAR = 7,
};

class Asm {
 public:
  std::vector<uint8_t> code;

  [[nodiscard]] size_t size() const { return code.size(); }

  void u8(uint8_t v) { code.push_back(v); }
  void u32(uint32_t v);
  void u64(uint64_t v);
  void patch32(size_t at, uint32_t v);
  void patch64(size_t at, uint64_t v);

  // --- Moves ---
  void mov_rr(bool w, Reg dst, Reg src);
  void mov_ri32(Reg dst, uint32_t imm);        ///< mov r32, imm32 (zero-extends)
  size_t mov_ri64(Reg dst, uint64_t imm);      ///< movabs; returns imm64 offset
  /// mov r32/r64, [base+disp32]; returns the disp32 offset (patch hole).
  size_t mov_r_m(bool w, Reg dst, Reg base, int32_t disp);
  /// mov [base+disp32], r32/r64; returns the disp32 offset.
  size_t mov_m_r(bool w, Reg base, int32_t disp, Reg src);
  /// mov dword [base+disp32], imm32.
  void mov_m_i32(Reg base, int32_t disp, uint32_t imm);
  /// movsxd r64, dword [base+disp32]; returns the disp32 offset.
  size_t movsxd_r_m(Reg dst, Reg base, int32_t disp);
  /// lea r64, [base+disp32]; returns the disp32 offset.
  size_t lea(Reg dst, Reg base, int32_t disp);

  // --- Linear-memory operands: [base + index], mod=00 with a SIB byte.
  // size_log2: 0/1/2/3 bytes; narrow loads select movzx/movsx by `sign`.
  void ld_idx(int size_log2, bool sign, Reg dst, Reg base, Reg idx);
  void st_idx(int size_log2, Reg base, Reg idx, Reg src);

  // --- ALU ---
  void alu_rr(bool w, AluExt op, Reg dst, Reg src);
  void alu_ri8(bool w, AluExt op, Reg r, int8_t imm);
  void alu_ri32(bool w, AluExt op, Reg r, uint32_t imm);
  void imul_rr(bool w, Reg dst, Reg src);
  void test_rr(bool w, Reg a, Reg b);
  void shift_cl(bool w, ShiftExt op, Reg r);
  void shift_ri(bool w, ShiftExt op, Reg r, uint8_t imm);
  void cdq() { u8(0x99); }
  void cqo() { u8(0x48); u8(0x99); }
  void idiv(bool w, Reg r);
  void div(bool w, Reg r);
  void setcc_al(CC cc);
  void movzx_r32_al(Reg dst);
  void cmov(bool w, CC cc, Reg dst, Reg src);
  void inc_m64(Reg base, int32_t disp);

  // --- Control ---
  size_t jcc32(CC cc);   ///< returns the rel32 offset
  size_t jmp32();        ///< returns the rel32 offset
  size_t jcc8(CC cc);    ///< returns the rel8 offset
  size_t jmp8();         ///< returns the rel8 offset
  void bind8(size_t at); ///< patch a rel8 to jump here
  void call_rax() { u8(0xFF); u8(0xD0); }
  void push(Reg r);
  void pop(Reg r);
  void ret() { u8(0xC3); }

  // --- SSE scalar (xmm0-xmm7 only) ---
  void movd_x_r(uint8_t x, Reg r);   ///< movd xmm, r32
  void movq_x_r(uint8_t x, Reg r);   ///< movq xmm, r64
  void movd_r_x(Reg r, uint8_t x);   ///< movd r32, xmm
  void movq_r_x(Reg r, uint8_t x);   ///< movq r64, xmm
  /// prefix F3 (ss) / F2 (sd), then 0F <op> /r. op: 58 add, 5C sub,
  /// 59 mul, 5E div, 51 sqrt, 5A cvt(ss2sd/sd2ss).
  void sse(uint8_t prefix, uint8_t op, uint8_t xdst, uint8_t xsrc);
  /// cmpss/cmpsd xdst, xsrc, pred (result mask in xdst).
  void cmps(bool dbl, uint8_t xdst, uint8_t xsrc, uint8_t pred);
  /// cvtsi2ss/cvtsi2sd xdst, r32/r64.
  void cvtsi2(bool dbl, bool w, uint8_t xdst, Reg src);

 private:
  void rex(bool w, uint8_t reg, uint8_t rm, uint8_t index = 0);
  size_t modrm_disp32(uint8_t reg, Reg base, int32_t disp);
  void modrm_sib_idx(uint8_t reg, Reg base, Reg idx);
};

}  // namespace wb::wasm::jit
