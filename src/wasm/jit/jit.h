// wb::jit — a copy-and-patch template JIT: the third Wasm execution tier.
//
// Hot (Optimizing-tier) leaf functions are lowered from the flat QCode
// stream (quicken.h) to native x86-64 by stitching prebuilt per-
// superinstruction byte stencils (stencil.h) into an mmap'd W^X code cache
// (cache.h). Virtual observables stay bit-identical to the classic and
// quickened loops via a per-stencil charge side table: QInstrs are grouped
// into basic blocks, native code maintains only an ops counter and per-
// block execution counters plus a fuel check per block, and the host
// derives cost_ps / per-(tier,OpClass) attribution counts / arith_counts
// as sum(exec[b] * block_table[b]) after the native run. Traps that stop a
// block mid-way (fuel, div, OOB) divert to C++ helpers (runtime.cpp) that
// re-charge the exact constituent prefix the quickened loop would have
// charged. Hosts without x86-64 or W^X executable memory simply never
// compile and fall back to quickened dispatch (same observables by
// construction).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "wasm/quicken.h"

namespace wb::wasm::jit {

class CodeCache;
class CompiledFunction;

/// Per-basic-block charge side table entry: what executing the block once
/// contributes to every virtual observable, priced from the optimizing
/// cost table at compile time.
struct BlockCharge {
  uint32_t first = 0;  ///< first qpc of the block
  uint32_t count = 0;  ///< number of QInstrs
  uint64_t nops = 0;   ///< total original constituent ops
  uint64_t cost_ps = 0;
  std::array<uint64_t, kOpClassCount> cls_counts{};
  std::array<uint64_t, kArithCatCount> cat_counts{};
};

/// The register context a compiled function runs against. Field offsets up
/// to `trap` are baked into the stencils (static_asserted in runtime.cpp);
/// everything after is host-only state for the slow-path helpers.
struct JitContext {
  uint64_t ops = 0;                // [r15+0]  ops executed so far (rbp)
  uint64_t fuel = 0;               // [r15+8]
  uint64_t mem_size = 0;           // [r15+16] linear memory bytes
  uint8_t* mem_base = nullptr;     // [r15+24] (r14)
  uint64_t* stack_base = nullptr;  // [r15+32] value-stack scratch base
  uint64_t* locals = nullptr;      // [r15+40] (r13)
  uint64_t* globals = nullptr;     // [r15+48]
  uint64_t* block_exec = nullptr;  // [r15+56] (r12) per-block counters
  uint64_t result_bits = 0;        // [r15+64]
  uint32_t trap = 0;               // [r15+72] wasm::Trap
  uint32_t pad_ = 0;

  // Host-only: slow-path charge accumulators (constituent-prefix charges
  // at fuel/trap boundaries, merged with the block tables by the caller).
  const CompiledFunction* fn = nullptr;
  const uint64_t* opt_costs = nullptr;  ///< optimizing-tier cost row
  uint64_t direct_cost_ps = 0;
  std::array<uint64_t, kOpClassCount> direct_cls{};
  std::array<uint64_t, kArithCatCount> direct_cat{};
};

/// A function compiled into the code cache: the native entry point, the
/// charge side table, and the per-activation scratch buffers (leaf
/// functions cannot re-enter, so per-function scratch is safe).
class CompiledFunction {
 public:
  using Entry = void (*)(JitContext*);

  CompiledFunction(const uint8_t* entry, size_t code_size,
                   std::vector<BlockCharge> blocks, const QInstr* qcode,
                   uint32_t num_locals, uint32_t result_count,
                   size_t max_stack);

  void run(JitContext& ctx) const {
    reinterpret_cast<Entry>(const_cast<uint8_t*>(entry_))(&ctx);
  }

  [[nodiscard]] const std::vector<BlockCharge>& blocks() const { return blocks_; }
  [[nodiscard]] const QInstr* qcode() const { return qcode_; }
  [[nodiscard]] uint32_t num_locals() const { return num_locals_; }
  [[nodiscard]] uint32_t result_count() const { return result_count_; }
  [[nodiscard]] std::span<const uint8_t> code() const { return {entry_, code_size_}; }

  [[nodiscard]] uint64_t* stack_scratch() { return stack_scratch_.data(); }
  [[nodiscard]] uint64_t* locals_scratch() { return locals_scratch_.data(); }
  [[nodiscard]] uint64_t* block_exec() { return block_exec_.data(); }
  [[nodiscard]] std::span<uint64_t> block_exec_span() {
    return {block_exec_.data(), block_exec_.size()};
  }

 private:
  const uint8_t* entry_;
  size_t code_size_;
  std::vector<BlockCharge> blocks_;
  const QInstr* qcode_;
  uint32_t num_locals_;
  uint32_t result_count_;
  std::vector<uint64_t> stack_scratch_;
  std::vector<uint64_t> locals_scratch_;
  std::vector<uint64_t> block_exec_;
};

/// Compiles one quickened function body, or returns nullptr when the body
/// is not JIT-eligible (contains calls, br_table, memory.grow, or another
/// unsupported op) — the caller falls back to quickened dispatch. `qf`
/// must outlive the returned function (its QInstrs back the charge side
/// table and the trap helpers).
std::unique_ptr<CompiledFunction> compile(
    const QFunc& qf, uint32_t num_locals, uint32_t result_count,
    const std::array<uint64_t, kOpClassCount>& opt_costs, CodeCache& cache);

/// True when this host can run JIT code (x86-64 and mmap'd memory can be
/// flipped to executable). Probed once per process.
bool available();

/// Process-wide default for new Instances (tools' --no-jit flag). The
/// WB_NO_JIT environment variable forces it off regardless.
void set_jit_default(bool enabled);
bool jit_default();

}  // namespace wb::wasm::jit
