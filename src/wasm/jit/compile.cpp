// Stitches one quickened function body into native code: splits the QCode
// stream into basic blocks, prices each block against the optimizing cost
// table (the charge side table), then memcpy's per-QInstr stencils and
// patches their holes. Native code carries only the ops counter, a fuel
// check + execution counter per block, and per-site trap stubs that divert
// to the C++ helpers in runtime.cpp.
#include <cstring>

#include "wasm/jit/asm_x64.h"
#include "wasm/jit/cache.h"
#include "wasm/jit/jit.h"
#include "wasm/jit/stencil.h"
#include "wasm/types.h"

namespace wb::wasm::jit {

extern "C" {
void wb_jit_fuel_trap(JitContext* ctx, uint32_t block, uint64_t* top);
void wb_jit_partial_trap(JitContext* ctx, uint32_t block, uint32_t qi,
                         uint32_t trap);
}

namespace {

// JitContext offsets (mirrored in stencil.cpp, asserted in runtime.cpp).
constexpr int32_t kCtxOps = 0;
constexpr int32_t kCtxFuel = 8;
constexpr int32_t kCtxMemBase = 24;
constexpr int32_t kCtxStackBase = 32;
constexpr int32_t kCtxLocals = 40;
constexpr int32_t kCtxBlockExec = 56;
constexpr int32_t kCtxResult = 64;

bool is_control(QOp op) {
  switch (op) {
    case QOp::Unreachable:
    case QOp::If:
    case QOp::Jump:
    case QOp::Br:
    case QOp::BrIf:
    case QOp::Return:
    case QOp::FuncReturn:
    case QOp::FCmpBrIf:
      return true;
    default:
      return false;
  }
}

/// The stencil for a control QInstr (branch shape depends on flags), or for
/// a straight-line op from the per-QOp table. Returns nullptr if the op has
/// no JIT lowering.
const Stencil* stencil_for(const StencilTable& t, const QInstr& q) {
  const QOp op = q.qop();
  switch (op) {
    case QOp::Br:
      return &t.br[(q.flags & 2) ? 2 : (q.flags & 1)];
    case QOp::BrIf:
      return &t.br_if[(q.flags & 2) ? 2 : (q.flags & 1)];
    case QOp::Return:
      return q.a <= 1 ? &t.ret[q.a] : nullptr;
    case QOp::FCmpBrIf: {
      const int cond = cmp_br_cond_index(q.c);
      if (cond < 0) return nullptr;
      return &t.cmp_br[cond][(q.flags & 2) ? 2 : (q.flags & 1)];
    }
    case QOp::FuncReturn:
      return nullptr;  // emitted inline as the epilogue
    default: {
      const Stencil& s = t.ops[q.op];
      return s.valid ? &s : nullptr;
    }
  }
}

/// +1-delta ops for the stack-scratch upper bound; everything else only
/// holds or shrinks the stack.
bool pushes_net(const QInstr& q) {
  switch (q.qop()) {
    case QOp::Const:
    case QOp::LocalGet:
    case QOp::GlobalGet:
    case QOp::MemorySize:
    case QOp::FGetLoadI32:
    case QOp::FGetLoadI64:
    case QOp::FGetLoadF32:
    case QOp::FGetLoadF64:
    case QOp::FGetLoadI32U8:
      return true;
    default: {
      const size_t i = q.op;
      return (i >= static_cast<size_t>(QOp::FGetGet_I32Add) &&
              i <= static_cast<size_t>(QOp::FGetConst_F64Mul));
    }
  }
}

struct PendingRel32 {
  size_t at = 0;        ///< offset of the rel32 in the code buffer
  uint32_t target_qpc;  ///< leader qpc to resolve (branch rel32s)
};

struct TrapSite {
  size_t at = 0;  ///< rel32 offset
  uint32_t block = 0;
  uint32_t qi = 0;  ///< QInstr index within the block
  uint32_t trap = 0;
};

}  // namespace

CompiledFunction::CompiledFunction(const uint8_t* entry, size_t code_size,
                                   std::vector<BlockCharge> blocks,
                                   const QInstr* qcode, uint32_t num_locals,
                                   uint32_t result_count, size_t max_stack)
    : entry_(entry),
      code_size_(code_size),
      blocks_(std::move(blocks)),
      qcode_(qcode),
      num_locals_(num_locals),
      result_count_(result_count),
      stack_scratch_(max_stack, 0),
      locals_scratch_(num_locals, 0),
      block_exec_(blocks_.size(), 0) {}

std::unique_ptr<CompiledFunction> compile(
    const QFunc& qf, uint32_t num_locals, uint32_t result_count,
    const std::array<uint64_t, kOpClassCount>& opt_costs, CodeCache& cache) {
  if (!available()) return nullptr;
  if (!qf.br_tables.empty() || result_count > 1) return nullptr;

  const StencilTable& table = stencils();
  const size_t n = qf.code.size();
  if (n == 0) return nullptr;

  // --- Eligibility + stencil lookup ---------------------------------------
  std::vector<const Stencil*> chosen(n, nullptr);
  size_t max_stack = result_count + 8;
  for (size_t i = 0; i < n; ++i) {
    const QInstr& q = qf.code[i];
    if (q.qop() == QOp::FuncReturn) continue;  // inline epilogue
    const Stencil* s = stencil_for(table, q);
    if (!s) return nullptr;
    // lea sign-extends its disp32: huge memory offsets can't be encoded.
    for (const Hole& h : s->holes) {
      if (h.kind == HoleKind::ImmB && q.b >= 0x80000000u) return nullptr;
    }
    chosen[i] = s;
    if (pushes_net(q)) ++max_stack;
  }

  // --- Basic blocks --------------------------------------------------------
  std::vector<uint8_t> leader(n, 0);
  leader[0] = 1;
  for (size_t i = 0; i < n; ++i) {
    const QInstr& q = qf.code[i];
    if (!is_control(q.qop())) continue;
    if (i + 1 < n) leader[i + 1] = 1;
    switch (q.qop()) {
      case QOp::If:
      case QOp::Jump:
      case QOp::Br:
      case QOp::BrIf:
      case QOp::FCmpBrIf:
        if (q.a >= n) return nullptr;
        leader[q.a] = 1;
        break;
      case QOp::Return:
        if (q.b >= n) return nullptr;
        leader[q.b] = 1;
        break;
      default:
        break;
    }
  }

  std::vector<BlockCharge> blocks;
  std::vector<uint32_t> block_of(n, 0);
  for (size_t i = 0; i < n;) {
    BlockCharge blk;
    blk.first = static_cast<uint32_t>(i);
    size_t j = i;
    for (;;) {
      const QInstr& q = qf.code[j];
      block_of[j] = static_cast<uint32_t>(blocks.size());
      blk.nops += q.nops;
      for (uint8_t k = 0; k < q.nops; ++k) {
        blk.cost_ps += opt_costs[q.cls[k]];
        ++blk.cls_counts[q.cls[k]];
        if (q.cat[k] != kQCatPad) ++blk.cat_counts[q.cat[k]];
      }
      ++j;
      if (is_control(q.qop()) || j >= n || leader[j]) break;
    }
    blk.count = static_cast<uint32_t>(j - i);
    blocks.push_back(std::move(blk));
    i = j;
  }

  // --- Emit ----------------------------------------------------------------
  Asm a;
  std::vector<PendingRel32> branches;
  std::vector<size_t> trap_exit_uses;      // rel32s -> shared trap epilogue
  std::vector<size_t> fuel_jumps;          // rel32 per headered block
  std::vector<uint32_t> fuel_blocks;       // block id per fuel_jumps entry
  std::vector<TrapSite> trap_sites;

  // Prologue: spill callee-saved, load the register context.
  a.push(RBX);
  a.push(RBP);
  a.push(R12);
  a.push(R13);
  a.push(R14);
  a.push(R15);
  a.alu_ri8(true, ALU_SUB, RSP, 8);  // 16-byte alignment at helper calls
  a.mov_rr(true, R15, RDI);
  a.mov_r_m(true, RBP, R15, kCtxOps);
  a.mov_r_m(true, R14, R15, kCtxMemBase);
  a.mov_r_m(true, RBX, R15, kCtxStackBase);
  a.mov_r_m(true, R13, R15, kCtxLocals);
  a.mov_r_m(true, R12, R15, kCtxBlockExec);

  auto emit_exit_pops = [&] {
    a.alu_ri8(true, ALU_ADD, RSP, 8);
    a.pop(R15);
    a.pop(R14);
    a.pop(R13);
    a.pop(R12);
    a.pop(RBP);
    a.pop(RBX);
    a.ret();
  };

  std::vector<size_t> block_off(blocks.size(), 0);
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BlockCharge& blk = blocks[b];
    block_off[b] = a.size();
    if (blk.nops > 0) {
      // Fuel check for the whole block, then commit ops and count the run.
      a.lea(RAX, RBP, static_cast<int32_t>(blk.nops));
      a.mov_r_m(true, RSI, R15, kCtxFuel);
      a.alu_rr(true, ALU_CMP, RAX, RSI);
      fuel_jumps.push_back(a.jcc32(CC_A));
      fuel_blocks.push_back(static_cast<uint32_t>(b));
      a.mov_rr(true, RBP, RAX);
      a.inc_m64(R12, static_cast<int32_t>(8 * b));
    }
    for (uint32_t qi = 0; qi < blk.count; ++qi) {
      const size_t qpc = blk.first + qi;
      const QInstr& q = qf.code[qpc];
      if (q.qop() == QOp::FuncReturn) {
        // Inline epilogue: spill the result and the ops counter.
        if (result_count > 0) {
          a.mov_r_m(true, RAX, RBX, -8);
          a.mov_m_r(true, R15, kCtxResult, RAX);
        }
        a.mov_m_r(true, R15, kCtxOps, RBP);
        emit_exit_pops();
        continue;
      }
      const Stencil* s = chosen[qpc];
      const size_t base = a.size();
      a.code.insert(a.code.end(), s->bytes.begin(), s->bytes.end());
      for (const Hole& h : s->holes) {
        const size_t at = base + h.offset;
        switch (h.kind) {
          case HoleKind::BranchA:
            branches.push_back({at, q.a});
            break;
          case HoleKind::BranchB:
            branches.push_back({at, q.b});
            break;
          case HoleKind::TrapExit:
            trap_exit_uses.push_back(at);
            break;
          case HoleKind::TrapOob:
            trap_sites.push_back({at, static_cast<uint32_t>(b), qi,
                                  static_cast<uint32_t>(Trap::MemoryOutOfBounds)});
            break;
          case HoleKind::TrapDivZero:
            trap_sites.push_back({at, static_cast<uint32_t>(b), qi,
                                  static_cast<uint32_t>(Trap::IntegerDivideByZero)});
            break;
          case HoleKind::TrapOverflow:
            trap_sites.push_back({at, static_cast<uint32_t>(b), qi,
                                  static_cast<uint32_t>(Trap::IntegerOverflow)});
            break;
          default:
            patch_immediate(a.code.data() + base, h, q);
            break;
        }
      }
    }
  }

  // Shared trap epilogue: ctx->ops was already fixed up by the stencil or
  // helper, so just restore and return.
  const size_t trap_exit = a.size();
  emit_exit_pops();

  // Fuel stubs: one per headered block. The helper re-runs the block
  // QInstr-by-QInstr with exact per-QInstr fuel checks and side effects.
  std::vector<size_t> fuel_stub_off(fuel_jumps.size(), 0);
  for (size_t i = 0; i < fuel_jumps.size(); ++i) {
    fuel_stub_off[i] = a.size();
    a.mov_m_r(true, R15, kCtxOps, RBP);
    a.mov_rr(true, RDI, R15);
    a.mov_ri32(RSI, fuel_blocks[i]);
    a.mov_rr(true, RDX, RBX);
    a.mov_ri64(RAX, reinterpret_cast<uint64_t>(&wb_jit_fuel_trap));
    a.call_rax();
    trap_exit_uses.push_back(a.jmp32());
  }

  // Per-site trap stubs (div-by-zero / overflow / OOB): undo the block's
  // bulk charge down to the trapping QInstr, then exit.
  std::vector<size_t> trap_stub_off(trap_sites.size(), 0);
  for (size_t i = 0; i < trap_sites.size(); ++i) {
    const TrapSite& site = trap_sites[i];
    trap_stub_off[i] = a.size();
    a.mov_m_r(true, R15, kCtxOps, RBP);
    a.mov_rr(true, RDI, R15);
    a.mov_ri32(RSI, site.block);
    a.mov_ri32(RDX, site.qi);
    a.mov_ri32(RCX, site.trap);
    a.mov_ri64(RAX, reinterpret_cast<uint64_t>(&wb_jit_partial_trap));
    a.call_rax();
    trap_exit_uses.push_back(a.jmp32());
  }

  // --- Resolve rel32s ------------------------------------------------------
  auto link = [&](size_t at, size_t target) {
    a.patch32(at, static_cast<uint32_t>(target - (at + 4)));
  };
  for (const PendingRel32& p : branches) {
    link(p.at, block_off[block_of[p.target_qpc]]);
  }
  for (size_t at : trap_exit_uses) link(at, trap_exit);
  for (size_t i = 0; i < fuel_jumps.size(); ++i) {
    link(fuel_jumps[i], fuel_stub_off[i]);
  }
  for (size_t i = 0; i < trap_sites.size(); ++i) {
    link(trap_sites[i].at, trap_stub_off[i]);
  }

  const uint8_t* entry = cache.install(a.code.data(), a.code.size());
  if (!entry) return nullptr;
  return std::make_unique<CompiledFunction>(
      entry, a.code.size(), std::move(blocks), qf.code.data(), num_locals,
      result_count, max_stack);
}

}  // namespace wb::wasm::jit
