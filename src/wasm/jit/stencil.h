// Prebuilt per-superinstruction byte templates ("stencils") with patch
// holes. The table is generated once per process with the asm_x64 emitter;
// compile.cpp stitches a function by memcpy'ing stencil bytes and patching
// each hole from the QInstr's fields (immediates, local slots) or from the
// final code layout (branch targets, trap stubs).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "wasm/quicken.h"

namespace wb::wasm::jit {

enum class HoleKind : uint8_t {
  DispA,    ///< disp32 = 8 * q->a (locals or globals slot)
  DispB,    ///< disp32 = 8 * q->b (branch target stack height)
  DispB8,   ///< disp32 = 8 * q->b + 8
  DispC,    ///< disp32 = 8 * q->c
  ImmB,     ///< imm32/disp32 = q->b (memory offset)
  Val64,    ///< imm64 = q->val.bits
  Val32,    ///< imm32 = low 32 bits of q->val.bits
  BranchA,  ///< rel32 -> native offset of the block starting at qpc q->a
  BranchB,  ///< rel32 -> native offset of the block starting at qpc q->b
  TrapExit,     ///< rel32 -> the shared trap epilogue
  TrapOob,      ///< rel32 -> this site's MemoryOutOfBounds stub
  TrapDivZero,  ///< rel32 -> this site's IntegerDivideByZero stub
  TrapOverflow, ///< rel32 -> this site's IntegerOverflow stub
};

struct Hole {
  uint32_t offset = 0;  ///< byte offset of the imm32/imm64/rel32 in `bytes`
  HoleKind kind = HoleKind::DispA;
};

struct Stencil {
  std::vector<uint8_t> bytes;
  std::vector<Hole> holes;
  bool valid = false;
};

/// FCmpBrIf condition index (order of the Opcode switch in run_quickened):
/// Eq, Ne, LtS, LtU, GtS, GtU, LeS, LeU, GeS, GeU. Returns -1 for an
/// unsupported compare opcode.
int cmp_br_cond_index(uint32_t opcode);

/// Branch-shape variants for Br / BrIf / FCmpBrIf, selected by the QInstr
/// flags: 0 = plain (resize, no value), 1 = loop back-edge (same native
/// shape), 2 = resize carrying the top value. Return uses index 0/1 for
/// arity 0/1 instead.
inline constexpr int kBranchVariants = 3;

struct StencilTable {
  /// Straight-line ops (one shape per QOp). Invalid entries mark ops the
  /// JIT does not support: the function falls back to quickened dispatch.
  std::array<Stencil, kQOpCount> ops;
  /// Br / BrIf variants, indexed by flags&3; Return variants by arity.
  std::array<Stencil, kBranchVariants> br;
  std::array<Stencil, kBranchVariants> br_if;
  std::array<Stencil, 2> ret;
  /// FCmpBrIf: [condition index][variant].
  std::array<std::array<Stencil, kBranchVariants>, 10> cmp_br;
};

/// The process-wide table, built on first use.
const StencilTable& stencils();

/// Patches one immediate hole (DispA/B/B8/C, ImmB, Val64, Val32) in a
/// stencil copy from the QInstr's fields. Layout-dependent holes (Branch*,
/// Trap*) are patched by compile() and are not valid here.
void patch_immediate(uint8_t* code, const Hole& hole, const QInstr& q);

}  // namespace wb::wasm::jit
