#include <cstring>

#include "support/leb128.h"
#include "wasm/codec.h"

namespace wb::wasm {

namespace {

using support::write_sleb128;
using support::write_uleb128;

void write_name(std::vector<uint8_t>& out, const std::string& name) {
  write_uleb128(out, name.size());
  out.insert(out.end(), name.begin(), name.end());
}

void write_valtype(std::vector<uint8_t>& out, ValType t) {
  out.push_back(static_cast<uint8_t>(t));
}

void write_limits(std::vector<uint8_t>& out, uint32_t min, std::optional<uint32_t> max) {
  out.push_back(max.has_value() ? 0x01 : 0x00);
  write_uleb128(out, min);
  if (max) write_uleb128(out, *max);
}

void write_f32(std::vector<uint8_t>& out, float v) {
  uint8_t raw[4];
  std::memcpy(raw, &v, 4);
  out.insert(out.end(), raw, raw + 4);
}

void write_f64(std::vector<uint8_t>& out, double v) {
  uint8_t raw[8];
  std::memcpy(raw, &v, 8);
  out.insert(out.end(), raw, raw + 8);
}

void write_instr(std::vector<uint8_t>& out, const Module& module, const Instr& ins) {
  out.push_back(static_cast<uint8_t>(ins.op));
  switch (ins.op) {
    case Opcode::Block:
    case Opcode::Loop:
    case Opcode::If:
      out.push_back(static_cast<uint8_t>(ins.a));
      break;
    case Opcode::Br:
    case Opcode::BrIf:
    case Opcode::Call:
    case Opcode::LocalGet:
    case Opcode::LocalSet:
    case Opcode::LocalTee:
    case Opcode::GlobalGet:
    case Opcode::GlobalSet:
      write_uleb128(out, ins.a);
      break;
    case Opcode::CallIndirect:
      write_uleb128(out, ins.a);  // type index
      out.push_back(0x00);        // table index
      break;
    case Opcode::BrTable: {
      const auto& targets = module.br_tables.at(ins.a);
      // Last entry is the default target.
      write_uleb128(out, targets.size() - 1);
      for (uint32_t t : targets) write_uleb128(out, t);
      break;
    }
    case Opcode::MemorySize:
    case Opcode::MemoryGrow:
      out.push_back(0x00);  // memory index
      break;
    case Opcode::I32Const:
      write_sleb128(out, static_cast<int32_t>(ins.ival));
      break;
    case Opcode::I64Const:
      write_sleb128(out, ins.ival);
      break;
    case Opcode::F32Const:
      write_f32(out, static_cast<float>(ins.fval));
      break;
    case Opcode::F64Const:
      write_f64(out, ins.fval);
      break;
    default:
      if (op_class(ins.op) == OpClass::Load || op_class(ins.op) == OpClass::Store) {
        write_uleb128(out, ins.a);  // align
        write_uleb128(out, ins.b);  // offset
      }
      break;
  }
}

void write_section(std::vector<uint8_t>& out, uint8_t id, const std::vector<uint8_t>& body) {
  if (body.empty()) return;
  out.push_back(id);
  write_uleb128(out, body.size());
  out.insert(out.end(), body.begin(), body.end());
}

void write_const_expr_i32(std::vector<uint8_t>& out, int32_t v) {
  out.push_back(static_cast<uint8_t>(Opcode::I32Const));
  write_sleb128(out, v);
  out.push_back(static_cast<uint8_t>(Opcode::End));
}

}  // namespace

size_t encoded_instr_offset(const Module& module, const Function& fn, size_t instr_index) {
  std::vector<uint8_t> scratch;
  // Locals run-length prefix, exactly as the code section writes it.
  std::vector<std::pair<uint32_t, ValType>> runs;
  for (ValType t : fn.locals) {
    if (!runs.empty() && runs.back().second == t) {
      ++runs.back().first;
    } else {
      runs.emplace_back(1, t);
    }
  }
  write_uleb128(scratch, runs.size());
  for (const auto& [count, type] : runs) {
    write_uleb128(scratch, count);
    write_valtype(scratch, type);
  }
  for (size_t i = 0; i < instr_index && i < fn.body.size(); ++i) {
    write_instr(scratch, module, fn.body[i]);
  }
  return scratch.size();
}

std::vector<uint8_t> encode(const Module& module) {
  std::vector<uint8_t> out = {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};

  // Type section (1).
  {
    std::vector<uint8_t> body;
    write_uleb128(body, module.types.size());
    for (const auto& type : module.types) {
      body.push_back(0x60);
      write_uleb128(body, type.params.size());
      for (ValType t : type.params) write_valtype(body, t);
      write_uleb128(body, type.results.size());
      for (ValType t : type.results) write_valtype(body, t);
    }
    if (!module.types.empty()) write_section(out, 1, body);
  }

  // Import section (2).
  if (!module.imports.empty()) {
    std::vector<uint8_t> body;
    write_uleb128(body, module.imports.size());
    for (const auto& imp : module.imports) {
      write_name(body, imp.module);
      write_name(body, imp.name);
      body.push_back(0x00);  // func import
      write_uleb128(body, imp.type_index);
    }
    write_section(out, 2, body);
  }

  // Function section (3).
  if (!module.functions.empty()) {
    std::vector<uint8_t> body;
    write_uleb128(body, module.functions.size());
    for (const auto& fn : module.functions) write_uleb128(body, fn.type_index);
    write_section(out, 3, body);
  }

  // Table section (4).
  if (module.table_size) {
    std::vector<uint8_t> body;
    write_uleb128(body, 1);
    body.push_back(0x70);  // funcref
    write_limits(body, *module.table_size, *module.table_size);
    write_section(out, 4, body);
  }

  // Memory section (5).
  if (module.memory) {
    std::vector<uint8_t> body;
    write_uleb128(body, 1);
    write_limits(body, module.memory->min_pages, module.memory->max_pages);
    write_section(out, 5, body);
  }

  // Global section (6).
  if (!module.globals.empty()) {
    std::vector<uint8_t> body;
    write_uleb128(body, module.globals.size());
    for (const auto& g : module.globals) {
      write_valtype(body, g.type);
      body.push_back(g.mutable_ ? 0x01 : 0x00);
      switch (g.type) {
        case ValType::I32:
          body.push_back(static_cast<uint8_t>(Opcode::I32Const));
          write_sleb128(body, g.init.as_i32());
          break;
        case ValType::I64:
          body.push_back(static_cast<uint8_t>(Opcode::I64Const));
          write_sleb128(body, g.init.as_i64());
          break;
        case ValType::F32:
          body.push_back(static_cast<uint8_t>(Opcode::F32Const));
          write_f32(body, g.init.as_f32());
          break;
        case ValType::F64:
          body.push_back(static_cast<uint8_t>(Opcode::F64Const));
          write_f64(body, g.init.as_f64());
          break;
      }
      body.push_back(static_cast<uint8_t>(Opcode::End));
    }
    write_section(out, 6, body);
  }

  // Export section (7).
  if (!module.exports.empty()) {
    std::vector<uint8_t> body;
    write_uleb128(body, module.exports.size());
    for (const auto& e : module.exports) {
      write_name(body, e.name);
      body.push_back(static_cast<uint8_t>(e.kind));
      write_uleb128(body, e.index);
    }
    write_section(out, 7, body);
  }

  // Element section (9).
  if (!module.elems.empty()) {
    std::vector<uint8_t> body;
    write_uleb128(body, module.elems.size());
    for (const auto& seg : module.elems) {
      write_uleb128(body, 0);  // table index
      write_const_expr_i32(body, static_cast<int32_t>(seg.offset));
      write_uleb128(body, seg.func_indices.size());
      for (uint32_t f : seg.func_indices) write_uleb128(body, f);
    }
    write_section(out, 9, body);
  }

  // Code section (10).
  if (!module.functions.empty()) {
    std::vector<uint8_t> body;
    write_uleb128(body, module.functions.size());
    for (const auto& fn : module.functions) {
      std::vector<uint8_t> code;
      // Locals as run-length (count, type) pairs.
      std::vector<std::pair<uint32_t, ValType>> runs;
      for (ValType t : fn.locals) {
        if (!runs.empty() && runs.back().second == t) {
          ++runs.back().first;
        } else {
          runs.emplace_back(1, t);
        }
      }
      write_uleb128(code, runs.size());
      for (const auto& [count, type] : runs) {
        write_uleb128(code, count);
        write_valtype(code, type);
      }
      for (const auto& ins : fn.body) write_instr(code, module, ins);
      write_uleb128(body, code.size());
      body.insert(body.end(), code.begin(), code.end());
    }
    write_section(out, 10, body);
  }

  // Data section (11).
  if (!module.data.empty()) {
    std::vector<uint8_t> body;
    write_uleb128(body, module.data.size());
    for (const auto& seg : module.data) {
      write_uleb128(body, 0);  // memory index
      write_const_expr_i32(body, static_cast<int32_t>(seg.offset));
      write_uleb128(body, seg.bytes.size());
      body.insert(body.end(), seg.bytes.begin(), seg.bytes.end());
    }
    write_section(out, 11, body);
  }

  return out;
}

}  // namespace wb::wasm
