#include "wasm/validator.h"

#include <optional>
#include <vector>

#include "wasm/codec.h"

namespace wb::wasm {

namespace {

// nullopt stands for the "unknown" type produced in unreachable code.
using StackType = std::optional<ValType>;

struct CtrlFrame {
  Opcode opcode = Opcode::Block;            // Block / Loop / If
  std::vector<ValType> end_types;           // result types
  size_t height = 0;                        // value stack height at entry
  bool unreachable = false;
  bool saw_else = false;
};

/// Per-function type checker.
class FuncValidator {
 public:
  FuncValidator(const Module& module, const Function& fn, std::string& error)
      : module_(module), fn_(fn), error_(error) {
    const FuncType& type = module.types[fn.type_index];
    locals_ = type.params;
    locals_.insert(locals_.end(), fn.locals.begin(), fn.locals.end());
    results_ = type.results;
  }

  bool run() {
    // The implicit function-body frame.
    push_ctrl(Opcode::Block, results_);
    for (pc_ = 0; pc_ < fn_.body.size(); ++pc_) {
      if (!check(fn_.body[pc_])) return false;
      if (ctrls_.empty()) {
        // The outermost frame was popped by the final `end`.
        if (pc_ + 1 != fn_.body.size()) return fail("code after function end");
        return true;
      }
    }
    // Point past-the-end: the body ran out, no single opcode is at fault.
    pc_ = fn_.body.empty() ? 0 : fn_.body.size() - 1;
    return fail("missing end at function end");
  }

  /// Instruction index the last failure occurred at.
  [[nodiscard]] size_t pc() const { return pc_; }

 private:
  bool fail(const std::string& message) {
    error_ = message;
    return false;
  }

  void push(ValType t) { stack_.push_back(t); }
  void push_unknown() { stack_.push_back(std::nullopt); }

  bool pop(StackType& out) {
    CtrlFrame& frame = ctrls_.back();
    if (stack_.size() == frame.height) {
      if (frame.unreachable) {
        out = std::nullopt;
        return true;
      }
      return fail("value stack underflow");
    }
    out = stack_.back();
    stack_.pop_back();
    return true;
  }

  bool pop_expect(ValType expect) {
    StackType t;
    if (!pop(t)) return false;
    if (t && *t != expect) {
      return fail(std::string("type mismatch: expected ") + to_string(expect) +
                  ", got " + to_string(*t));
    }
    return true;
  }

  void push_ctrl(Opcode opcode, std::vector<ValType> end_types) {
    CtrlFrame frame;
    frame.opcode = opcode;
    frame.end_types = std::move(end_types);
    frame.height = stack_.size();
    ctrls_.push_back(std::move(frame));
  }

  bool pop_ctrl(CtrlFrame& out) {
    if (ctrls_.empty()) return fail("control stack underflow");
    CtrlFrame frame = ctrls_.back();
    // The block's results must be on the stack.
    for (auto it = frame.end_types.rbegin(); it != frame.end_types.rend(); ++it) {
      if (!pop_expect(*it)) return false;
    }
    if (stack_.size() != frame.height) return fail("values left on stack at end of block");
    ctrls_.pop_back();
    out = frame;
    return true;
  }

  void mark_unreachable() {
    CtrlFrame& frame = ctrls_.back();
    stack_.resize(frame.height);
    frame.unreachable = true;
  }

  /// Types a branch to relative depth `depth` must provide.
  /// For loops that is nothing (branch to loop start); otherwise the results.
  bool br_types(uint32_t depth, std::vector<ValType>& out) {
    if (depth >= ctrls_.size()) return fail("branch depth out of range");
    const CtrlFrame& frame = ctrls_[ctrls_.size() - 1 - depth];
    out = frame.opcode == Opcode::Loop ? std::vector<ValType>{} : frame.end_types;
    return true;
  }

  bool check_branch(uint32_t depth) {
    std::vector<ValType> types;
    if (!br_types(depth, types)) return false;
    for (auto it = types.rbegin(); it != types.rend(); ++it) {
      if (!pop_expect(*it)) return false;
    }
    // br_if pushes the values back; handled by the caller.
    for (ValType t : types) push(t);
    return true;
  }

  static std::vector<ValType> block_results(uint32_t block_type_byte) {
    if (block_type_byte == kVoidBlockType) return {};
    return {static_cast<ValType>(block_type_byte)};
  }

  bool check(const Instr& ins);

  const Module& module_;
  const Function& fn_;
  std::string& error_;
  std::vector<ValType> locals_;
  std::vector<ValType> results_;
  std::vector<StackType> stack_;
  std::vector<CtrlFrame> ctrls_;
  size_t pc_ = 0;
};

struct OpSig {
  std::vector<ValType> params;
  std::optional<ValType> result;
};

/// Signature of a simple (non-control, non-variable) operator.
std::optional<OpSig> simple_sig(Opcode op) {
  using V = ValType;
  const uint8_t b = static_cast<uint8_t>(op);
  // Comparisons.
  if (op == Opcode::I32Eqz) return OpSig{{V::I32}, V::I32};
  if (op == Opcode::I64Eqz) return OpSig{{V::I64}, V::I32};
  if (b >= 0x46 && b <= 0x4f) return OpSig{{V::I32, V::I32}, V::I32};
  if (b >= 0x51 && b <= 0x5a) return OpSig{{V::I64, V::I64}, V::I32};
  if (b >= 0x5b && b <= 0x60) return OpSig{{V::F32, V::F32}, V::I32};
  if (b >= 0x61 && b <= 0x66) return OpSig{{V::F64, V::F64}, V::I32};
  // Unary int.
  if (op == Opcode::I32Clz || op == Opcode::I32Ctz || op == Opcode::I32Popcnt)
    return OpSig{{V::I32}, V::I32};
  if (op == Opcode::I64Clz || op == Opcode::I64Ctz || op == Opcode::I64Popcnt)
    return OpSig{{V::I64}, V::I64};
  // Binary int.
  if (b >= 0x6a && b <= 0x78) return OpSig{{V::I32, V::I32}, V::I32};
  if (b >= 0x7c && b <= 0x8a) return OpSig{{V::I64, V::I64}, V::I64};
  // Float unary.
  if (b >= 0x8b && b <= 0x91) return OpSig{{V::F32}, V::F32};
  if (b >= 0x99 && b <= 0x9f) return OpSig{{V::F64}, V::F64};
  // Float binary.
  if (b >= 0x92 && b <= 0x98) return OpSig{{V::F32, V::F32}, V::F32};
  if (b >= 0xa0 && b <= 0xa6) return OpSig{{V::F64, V::F64}, V::F64};
  // Conversions.
  switch (op) {
    case Opcode::I32WrapI64: return OpSig{{V::I64}, V::I32};
    case Opcode::I32TruncF32S:
    case Opcode::I32TruncF32U: return OpSig{{V::F32}, V::I32};
    case Opcode::I32TruncF64S:
    case Opcode::I32TruncF64U: return OpSig{{V::F64}, V::I32};
    case Opcode::I64ExtendI32S:
    case Opcode::I64ExtendI32U: return OpSig{{V::I32}, V::I64};
    case Opcode::I64TruncF32S:
    case Opcode::I64TruncF32U: return OpSig{{V::F32}, V::I64};
    case Opcode::I64TruncF64S:
    case Opcode::I64TruncF64U: return OpSig{{V::F64}, V::I64};
    case Opcode::F32ConvertI32S:
    case Opcode::F32ConvertI32U: return OpSig{{V::I32}, V::F32};
    case Opcode::F32ConvertI64S:
    case Opcode::F32ConvertI64U: return OpSig{{V::I64}, V::F32};
    case Opcode::F32DemoteF64: return OpSig{{V::F64}, V::F32};
    case Opcode::F64ConvertI32S:
    case Opcode::F64ConvertI32U: return OpSig{{V::I32}, V::F64};
    case Opcode::F64ConvertI64S:
    case Opcode::F64ConvertI64U: return OpSig{{V::I64}, V::F64};
    case Opcode::F64PromoteF32: return OpSig{{V::F32}, V::F64};
    case Opcode::I32ReinterpretF32: return OpSig{{V::F32}, V::I32};
    case Opcode::I64ReinterpretF64: return OpSig{{V::F64}, V::I64};
    case Opcode::F32ReinterpretI32: return OpSig{{V::I32}, V::F32};
    case Opcode::F64ReinterpretI64: return OpSig{{V::I64}, V::F64};
    default: return std::nullopt;
  }
}

/// Memory access type and natural alignment for load/store opcodes.
struct MemSig {
  ValType type;
  uint32_t natural_align_log2;
  bool is_store;
};

std::optional<MemSig> mem_sig(Opcode op) {
  using V = ValType;
  switch (op) {
    case Opcode::I32Load: return MemSig{V::I32, 2, false};
    case Opcode::I64Load: return MemSig{V::I64, 3, false};
    case Opcode::F32Load: return MemSig{V::F32, 2, false};
    case Opcode::F64Load: return MemSig{V::F64, 3, false};
    case Opcode::I32Load8S:
    case Opcode::I32Load8U: return MemSig{V::I32, 0, false};
    case Opcode::I32Load16S:
    case Opcode::I32Load16U: return MemSig{V::I32, 1, false};
    case Opcode::I32Store: return MemSig{V::I32, 2, true};
    case Opcode::I64Store: return MemSig{V::I64, 3, true};
    case Opcode::F32Store: return MemSig{V::F32, 2, true};
    case Opcode::F64Store: return MemSig{V::F64, 3, true};
    case Opcode::I32Store8: return MemSig{V::I32, 0, true};
    case Opcode::I32Store16: return MemSig{V::I32, 1, true};
    default: return std::nullopt;
  }
}

bool FuncValidator::check(const Instr& ins) {
  switch (ins.op) {
    case Opcode::Nop:
      return true;
    case Opcode::Unreachable:
      mark_unreachable();
      return true;
    case Opcode::Block:
    case Opcode::Loop:
      push_ctrl(ins.op, block_results(ins.a));
      return true;
    case Opcode::If:
      if (!pop_expect(ValType::I32)) return false;
      push_ctrl(Opcode::If, block_results(ins.a));
      return true;
    case Opcode::Else: {
      if (ctrls_.empty() || ctrls_.back().opcode != Opcode::If) {
        return fail("else without if");
      }
      if (ctrls_.back().saw_else) return fail("duplicate else");
      std::vector<ValType> results = ctrls_.back().end_types;
      CtrlFrame frame;
      if (!pop_ctrl(frame)) return false;
      push_ctrl(Opcode::If, std::move(results));
      ctrls_.back().saw_else = true;
      return true;
    }
    case Opcode::End: {
      CtrlFrame frame;
      if (!pop_ctrl(frame)) return false;
      if (frame.opcode == Opcode::If && !frame.saw_else && !frame.end_types.empty()) {
        return fail("if with result type requires else");
      }
      for (ValType t : frame.end_types) push(t);
      return true;
    }
    case Opcode::Br: {
      std::vector<ValType> types;
      if (!br_types(ins.a, types)) return false;
      for (auto it = types.rbegin(); it != types.rend(); ++it) {
        if (!pop_expect(*it)) return false;
      }
      mark_unreachable();
      return true;
    }
    case Opcode::BrIf:
      if (!pop_expect(ValType::I32)) return false;
      return check_branch(ins.a);
    case Opcode::BrTable: {
      if (!pop_expect(ValType::I32)) return false;
      if (ins.a >= module_.br_tables.size()) return fail("bad br_table index");
      const auto& targets = module_.br_tables[ins.a];
      std::vector<ValType> expect;
      if (!br_types(targets.back(), expect)) return false;
      for (uint32_t t : targets) {
        std::vector<ValType> got;
        if (!br_types(t, got)) return false;
        if (got != expect) return fail("br_table target arity mismatch");
      }
      for (auto it = expect.rbegin(); it != expect.rend(); ++it) {
        if (!pop_expect(*it)) return false;
      }
      mark_unreachable();
      return true;
    }
    case Opcode::Return:
      for (auto it = results_.rbegin(); it != results_.rend(); ++it) {
        if (!pop_expect(*it)) return false;
      }
      mark_unreachable();
      return true;
    case Opcode::Call: {
      if (ins.a >= module_.num_func_index_space()) return fail("call index out of range");
      const FuncType& type = module_.func_type(ins.a);
      for (auto it = type.params.rbegin(); it != type.params.rend(); ++it) {
        if (!pop_expect(*it)) return false;
      }
      for (ValType t : type.results) push(t);
      return true;
    }
    case Opcode::CallIndirect: {
      if (!module_.table_size) return fail("call_indirect without table");
      if (ins.a >= module_.types.size()) return fail("call_indirect type out of range");
      if (!pop_expect(ValType::I32)) return false;
      const FuncType& type = module_.types[ins.a];
      for (auto it = type.params.rbegin(); it != type.params.rend(); ++it) {
        if (!pop_expect(*it)) return false;
      }
      for (ValType t : type.results) push(t);
      return true;
    }
    case Opcode::Drop: {
      StackType t;
      return pop(t);
    }
    case Opcode::Select: {
      if (!pop_expect(ValType::I32)) return false;
      StackType a, b;
      if (!pop(a) || !pop(b)) return false;
      if (a && b && *a != *b) return fail("select operand types differ");
      if (a) {
        push(*a);
      } else if (b) {
        push(*b);
      } else {
        push_unknown();
      }
      return true;
    }
    case Opcode::LocalGet:
      if (ins.a >= locals_.size()) return fail("local index out of range");
      push(locals_[ins.a]);
      return true;
    case Opcode::LocalSet:
      if (ins.a >= locals_.size()) return fail("local index out of range");
      return pop_expect(locals_[ins.a]);
    case Opcode::LocalTee:
      if (ins.a >= locals_.size()) return fail("local index out of range");
      if (!pop_expect(locals_[ins.a])) return false;
      push(locals_[ins.a]);
      return true;
    case Opcode::GlobalGet:
      if (ins.a >= module_.globals.size()) return fail("global index out of range");
      push(module_.globals[ins.a].type);
      return true;
    case Opcode::GlobalSet:
      if (ins.a >= module_.globals.size()) return fail("global index out of range");
      if (!module_.globals[ins.a].mutable_) return fail("assignment to immutable global");
      return pop_expect(module_.globals[ins.a].type);
    case Opcode::MemorySize:
      if (!module_.memory) return fail("memory.size without memory");
      push(ValType::I32);
      return true;
    case Opcode::MemoryGrow:
      if (!module_.memory) return fail("memory.grow without memory");
      if (!pop_expect(ValType::I32)) return false;
      push(ValType::I32);
      return true;
    case Opcode::I32Const:
      push(ValType::I32);
      return true;
    case Opcode::I64Const:
      push(ValType::I64);
      return true;
    case Opcode::F32Const:
      push(ValType::F32);
      return true;
    case Opcode::F64Const:
      push(ValType::F64);
      return true;
    default:
      break;
  }

  if (auto m = mem_sig(ins.op)) {
    if (!module_.memory) return fail("memory access without memory");
    if (ins.a > m->natural_align_log2) return fail("alignment exceeds natural alignment");
    if (m->is_store) {
      if (!pop_expect(m->type)) return false;
      if (!pop_expect(ValType::I32)) return false;  // address
      return true;
    }
    if (!pop_expect(ValType::I32)) return false;  // address
    push(m->type);
    return true;
  }

  if (auto sig = simple_sig(ins.op)) {
    for (auto it = sig->params.rbegin(); it != sig->params.rend(); ++it) {
      if (!pop_expect(*it)) return false;
    }
    if (sig->result) push(*sig->result);
    return true;
  }

  return fail(std::string("unhandled opcode in validator: ") + to_string(ins.op));
}

}  // namespace

std::optional<ValidationError> validate(const Module& module) {
  auto module_error = [](std::string message) {
    return ValidationError{std::move(message), UINT32_MAX};
  };

  for (const auto& imp : module.imports) {
    if (imp.type_index >= module.types.size()) {
      return module_error("import type index out of range");
    }
  }
  for (const auto& fn : module.functions) {
    if (fn.type_index >= module.types.size()) {
      return module_error("function type index out of range");
    }
  }
  for (const auto& type : module.types) {
    if (type.results.size() > 1) return module_error("multi-value not supported");
  }
  if (module.memory && module.memory->max_pages &&
      *module.memory->max_pages < module.memory->min_pages) {
    return module_error("memory max < min");
  }
  for (const auto& e : module.exports) {
    switch (e.kind) {
      case ExportKind::Func:
        if (e.index >= module.num_func_index_space()) {
          return module_error("export func index out of range");
        }
        break;
      case ExportKind::Memory:
        if (!module.memory || e.index != 0) return module_error("export memory out of range");
        break;
      case ExportKind::Global:
        if (e.index >= module.globals.size()) {
          return module_error("export global index out of range");
        }
        break;
    }
  }
  for (const auto& seg : module.elems) {
    if (!module.table_size) return module_error("elem segment without table");
    if (seg.offset + seg.func_indices.size() > *module.table_size) {
      return module_error("elem segment out of table bounds");
    }
    for (uint32_t f : seg.func_indices) {
      if (f >= module.num_func_index_space()) {
        return module_error("elem func index out of range");
      }
    }
  }
  for (const auto& seg : module.data) {
    if (!module.memory) return module_error("data segment without memory");
    const uint64_t end = static_cast<uint64_t>(seg.offset) + seg.bytes.size();
    if (end > static_cast<uint64_t>(module.memory->min_pages) * 65536) {
      return module_error("data segment out of initial memory bounds");
    }
  }

  for (uint32_t i = 0; i < module.functions.size(); ++i) {
    const Function& fn = module.functions[i];
    std::string error;
    FuncValidator v(module, fn, error);
    if (!v.run()) {
      const uint32_t combined = static_cast<uint32_t>(module.imports.size()) + i;
      const size_t pc = v.pc();
      const size_t offset = encoded_instr_offset(module, fn, pc);
      std::string where = "func #" + std::to_string(combined);
      if (!fn.debug_name.empty()) where += " ($" + fn.debug_name + ")";
      where += " instr #" + std::to_string(pc);
      if (pc < fn.body.size()) {
        where += " (" + std::string(to_string(fn.body[pc].op)) + ")";
      }
      where += " at body offset " + std::to_string(offset);
      return ValidationError{where + ": " + error, combined, static_cast<uint32_t>(pc),
                             offset};
    }
  }
  return std::nullopt;
}

}  // namespace wb::wasm
