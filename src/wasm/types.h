// Core WebAssembly value and function types, runtime values, and traps.
// This follows the Wasm MVP spec's type grammar
// (https://webassembly.github.io/spec/core/syntax/types.html).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace wb::wasm {

/// Wasm value types, with their binary-format encodings.
enum class ValType : uint8_t {
  I32 = 0x7f,
  I64 = 0x7e,
  F32 = 0x7d,
  F64 = 0x7c,
};

/// Binary encoding of the empty block type.
inline constexpr uint8_t kVoidBlockType = 0x40;

const char* to_string(ValType t);

/// A function signature. Wasm MVP allows at most one result.
struct FuncType {
  std::vector<ValType> params;
  std::vector<ValType> results;

  bool operator==(const FuncType&) const = default;
};

/// An untyped 64-bit value slot. Validation guarantees that producers and
/// consumers agree on the type, so the interpreter reads/writes raw bits.
struct Value {
  uint64_t bits = 0;

  static Value from_i32(int32_t v) {
    return {static_cast<uint64_t>(static_cast<uint32_t>(v))};
  }
  static Value from_i64(int64_t v) { return {static_cast<uint64_t>(v)}; }
  static Value from_f32(float v) {
    uint32_t raw;
    std::memcpy(&raw, &v, sizeof raw);
    return {raw};
  }
  static Value from_f64(double v) {
    uint64_t raw;
    std::memcpy(&raw, &v, sizeof raw);
    return {raw};
  }

  [[nodiscard]] int32_t as_i32() const { return static_cast<int32_t>(bits); }
  [[nodiscard]] uint32_t as_u32() const { return static_cast<uint32_t>(bits); }
  [[nodiscard]] int64_t as_i64() const { return static_cast<int64_t>(bits); }
  [[nodiscard]] uint64_t as_u64() const { return bits; }
  [[nodiscard]] float as_f32() const {
    float v;
    uint32_t raw = static_cast<uint32_t>(bits);
    std::memcpy(&v, &raw, sizeof v);
    return v;
  }
  [[nodiscard]] double as_f64() const {
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  bool operator==(const Value&) const = default;
};

/// Runtime traps, mirroring the spec's trap conditions plus resource limits
/// used by the measurement harness.
enum class Trap : uint8_t {
  None = 0,
  Unreachable,
  MemoryOutOfBounds,
  IntegerDivideByZero,
  IntegerOverflow,
  InvalidConversion,
  CallStackExhausted,
  FuelExhausted,
  UndefinedElement,
  IndirectCallTypeMismatch,
  HostError,
};

const char* to_string(Trap t);

}  // namespace wb::wasm
