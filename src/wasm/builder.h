// Convenience builder for constructing Wasm modules programmatically.
// Used by the compiler backend, the real-world application analogs, and
// tests. Imports must be declared before any function is defined (Wasm
// function index space places imports first).
#pragma once

#include <cassert>
#include <string>
#include <utility>

#include "wasm/module.h"

namespace wb::wasm {

class FunctionBuilder;

class ModuleBuilder {
 public:
  Module& module() { return module_; }
  Module take() { return std::move(module_); }

  uint32_t add_import(std::string mod, std::string name, const FuncType& type) {
    assert(module_.functions.empty() && "imports must precede definitions");
    module_.imports.push_back(Import{std::move(mod), std::move(name),
                                     module_.intern_type(type)});
    return static_cast<uint32_t>(module_.imports.size() - 1);
  }

  void set_memory(uint32_t min_pages, std::optional<uint32_t> max_pages = {}) {
    module_.memory = MemoryDecl{min_pages, max_pages};
  }

  uint32_t add_global(ValType type, bool mutable_, Value init) {
    module_.globals.push_back(Global{type, mutable_, init});
    return static_cast<uint32_t>(module_.globals.size() - 1);
  }

  void export_memory(std::string name) {
    module_.exports.push_back(Export{std::move(name), ExportKind::Memory, 0});
  }

  void add_data(uint32_t offset, std::vector<uint8_t> bytes) {
    module_.data.push_back(DataSegment{offset, std::move(bytes)});
  }

  /// Defines a function; fill its body through the returned builder.
  FunctionBuilder define(const FuncType& type, std::string debug_name = "");

  /// Reserves a function slot (for forward references) without a body.
  uint32_t declare(const FuncType& type, std::string debug_name = "") {
    Function fn;
    fn.type_index = module_.intern_type(type);
    fn.debug_name = std::move(debug_name);
    module_.functions.push_back(std::move(fn));
    return static_cast<uint32_t>(module_.imports.size() + module_.functions.size() - 1);
  }

  FunctionBuilder body_of(uint32_t func_index);

 private:
  Module module_;
};

/// Emits instructions into one function. All emit methods return *this so
/// bodies can be written fluently.
class FunctionBuilder {
 public:
  FunctionBuilder(Module& module, uint32_t func_index)
      : module_(module), func_index_(func_index) {}

  [[nodiscard]] uint32_t index() const { return func_index_; }

  uint32_t add_local(ValType type) {
    Function& f = fn();
    f.locals.push_back(type);
    const auto& params = module_.types[f.type_index].params;
    return static_cast<uint32_t>(params.size() + f.locals.size() - 1);
  }

  FunctionBuilder& op(Opcode o, uint32_t a = 0, uint32_t b = 0) {
    fn().body.push_back(Instr::make(o, a, b));
    return *this;
  }
  FunctionBuilder& i32(int32_t v) {
    fn().body.push_back(Instr::i32_const(v));
    return *this;
  }
  FunctionBuilder& i64(int64_t v) {
    fn().body.push_back(Instr::i64_const(v));
    return *this;
  }
  FunctionBuilder& f32(float v) {
    fn().body.push_back(Instr::f32_const(v));
    return *this;
  }
  FunctionBuilder& f64(double v) {
    fn().body.push_back(Instr::f64_const(v));
    return *this;
  }
  FunctionBuilder& block(uint32_t block_type = kVoidBlockType) {
    return op(Opcode::Block, block_type);
  }
  FunctionBuilder& loop(uint32_t block_type = kVoidBlockType) {
    return op(Opcode::Loop, block_type);
  }
  FunctionBuilder& if_(uint32_t block_type = kVoidBlockType) {
    return op(Opcode::If, block_type);
  }
  FunctionBuilder& else_() { return op(Opcode::Else); }
  FunctionBuilder& end() { return op(Opcode::End); }
  FunctionBuilder& br(uint32_t depth) { return op(Opcode::Br, depth); }
  FunctionBuilder& br_if(uint32_t depth) { return op(Opcode::BrIf, depth); }
  FunctionBuilder& br_table(std::vector<uint32_t> depths_with_default) {
    module_.br_tables.push_back(std::move(depths_with_default));
    return op(Opcode::BrTable, static_cast<uint32_t>(module_.br_tables.size() - 1));
  }
  FunctionBuilder& call(uint32_t func_index) { return op(Opcode::Call, func_index); }
  FunctionBuilder& local_get(uint32_t i) { return op(Opcode::LocalGet, i); }
  FunctionBuilder& local_set(uint32_t i) { return op(Opcode::LocalSet, i); }
  FunctionBuilder& local_tee(uint32_t i) { return op(Opcode::LocalTee, i); }
  FunctionBuilder& global_get(uint32_t i) { return op(Opcode::GlobalGet, i); }
  FunctionBuilder& global_set(uint32_t i) { return op(Opcode::GlobalSet, i); }
  FunctionBuilder& load(Opcode o, uint32_t offset = 0, uint32_t align = 0) {
    return op(o, align, offset);
  }
  FunctionBuilder& store(Opcode o, uint32_t offset = 0, uint32_t align = 0) {
    return op(o, align, offset);
  }

  /// Appends the final End and optionally exports the function.
  uint32_t finish(std::string export_name = "") {
    end();
    if (!export_name.empty()) {
      module_.exports.push_back(
          Export{std::move(export_name), ExportKind::Func, func_index_});
    }
    return func_index_;
  }

 private:
  Function& fn() {
    return module_.functions[func_index_ - module_.imports.size()];
  }

  Module& module_;
  uint32_t func_index_;
};

inline FunctionBuilder ModuleBuilder::define(const FuncType& type,
                                             std::string debug_name) {
  return FunctionBuilder(module_, declare(type, std::move(debug_name)));
}

inline FunctionBuilder ModuleBuilder::body_of(uint32_t func_index) {
  return FunctionBuilder(module_, func_index);
}

}  // namespace wb::wasm
