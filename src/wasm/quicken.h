// Quickening: pre-translation of decoded function bodies into a flat
// internal "QCode" stream the interpreter can execute with direct-threaded
// dispatch. Translation happens once per Instance (at instantiation) and
//  - resolves every structured branch (Block/If/Else/End, br, br_if,
//    br_table, return) to an absolute QCode pc plus a precomputed operand
//    stack height, so no control frames are pushed or popped at runtime
//    (only loops keep live state: the tier-up hotness counter);
//  - fuses the dominant bigram/trigram/4-gram patterns of the
//    PolyBenchC/CHStone bodies into superinstructions
//    (local.get+local.get+binop[+local.set],
//    local.get+const+binop[+local.set], const+local.set, local.get+load,
//    cmp+br_if);
//  - carries a per-QInstr side table with the original constituents'
//    OpClass and ArithCat so cost_ps, ops_executed, arith_counts, fuel
//    accounting, and tier-up timing stay bit-identical to the classic
//    one-Instr-at-a-time loop (the invariant the golden-result gate and
//    the fuzz harness's quickened-vs-classic oracle enforce).
//
// The QCode stream is purely an execution artifact: it is never
// serialized, and the classic loop remains available (--no-quicken /
// WB_NO_QUICKEN) as the bisection reference.
#pragma once

#include <cstdint>
#include <vector>

#include "wasm/module.h"

namespace wb::wasm {

// Single-Instr quickened ops: same semantics as the classic switch case of
// the like-named Opcode, with immediates copied into the QInstr.
#define WB_QOP_SINGLES(X)                                                     \
  X(Drop) X(Select)                                                           \
  X(LocalGet) X(LocalSet) X(LocalTee) X(GlobalGet) X(GlobalSet)               \
  X(I32Load) X(I64Load) X(F32Load) X(F64Load)                                 \
  X(I32Load8S) X(I32Load8U) X(I32Load16S) X(I32Load16U)                       \
  X(I32Store) X(I64Store) X(F32Store) X(F64Store) X(I32Store8) X(I32Store16)  \
  X(MemorySize) X(MemoryGrow)                                                 \
  X(I32Eqz) X(I32Eq) X(I32Ne) X(I32LtS) X(I32LtU) X(I32GtS) X(I32GtU)         \
  X(I32LeS) X(I32LeU) X(I32GeS) X(I32GeU)                                     \
  X(I64Eqz) X(I64Eq) X(I64Ne) X(I64LtS) X(I64LtU) X(I64GtS) X(I64GtU)         \
  X(I64LeS) X(I64LeU) X(I64GeS) X(I64GeU)                                     \
  X(F32Eq) X(F32Ne) X(F32Lt) X(F32Gt) X(F32Le) X(F32Ge)                       \
  X(F64Eq) X(F64Ne) X(F64Lt) X(F64Gt) X(F64Le) X(F64Ge)                       \
  X(I32Clz) X(I32Ctz) X(I32Popcnt)                                            \
  X(I32Add) X(I32Sub) X(I32Mul) X(I32DivS) X(I32DivU) X(I32RemS) X(I32RemU)   \
  X(I32And) X(I32Or) X(I32Xor) X(I32Shl) X(I32ShrS) X(I32ShrU)                \
  X(I32Rotl) X(I32Rotr)                                                       \
  X(I64Clz) X(I64Ctz) X(I64Popcnt)                                            \
  X(I64Add) X(I64Sub) X(I64Mul) X(I64DivS) X(I64DivU) X(I64RemS) X(I64RemU)   \
  X(I64And) X(I64Or) X(I64Xor) X(I64Shl) X(I64ShrS) X(I64ShrU)                \
  X(I64Rotl) X(I64Rotr)                                                       \
  X(F32Abs) X(F32Neg) X(F32Ceil) X(F32Floor) X(F32Trunc) X(F32Nearest)        \
  X(F32Sqrt) X(F32Add) X(F32Sub) X(F32Mul) X(F32Div) X(F32Min) X(F32Max)      \
  X(F32Copysign)                                                              \
  X(F64Abs) X(F64Neg) X(F64Ceil) X(F64Floor) X(F64Trunc) X(F64Nearest)        \
  X(F64Sqrt) X(F64Add) X(F64Sub) X(F64Mul) X(F64Div) X(F64Min) X(F64Max)      \
  X(F64Copysign)                                                              \
  X(I32WrapI64)                                                               \
  X(I32TruncF32S) X(I32TruncF32U) X(I32TruncF64S) X(I32TruncF64U)             \
  X(I64ExtendI32S) X(I64ExtendI32U)                                           \
  X(I64TruncF32S) X(I64TruncF32U) X(I64TruncF64S) X(I64TruncF64U)             \
  X(F32ConvertI32S) X(F32ConvertI32U) X(F32ConvertI64S) X(F32ConvertI64U)     \
  X(F32DemoteF64)                                                             \
  X(F64ConvertI32S) X(F64ConvertI32U) X(F64ConvertI64S) X(F64ConvertI64U)     \
  X(F64PromoteF32)

// Binary ops eligible for GetGet/GetConst superinstruction fusion: the
// integer/float add/sub/mul, i32 bitops and shifts, and the i32 compares
// that dominate PolyBenchC/CHStone bodies. `expr` computes the result
// Value from operand Values `va` (first pushed) and `vb` (second pushed),
// with exactly the classic case's semantics.
#define WB_QFUSE_BINOPS(X)                                                    \
  X(I32Add, Value::from_i32(static_cast<int32_t>(va.as_u32() + vb.as_u32()))) \
  X(I32Sub, Value::from_i32(static_cast<int32_t>(va.as_u32() - vb.as_u32()))) \
  X(I32Mul, Value::from_i32(static_cast<int32_t>(va.as_u32() * vb.as_u32()))) \
  X(I32And, Value::from_i32(static_cast<int32_t>(va.as_u32() & vb.as_u32()))) \
  X(I32Or, Value::from_i32(static_cast<int32_t>(va.as_u32() | vb.as_u32())))  \
  X(I32Xor, Value::from_i32(static_cast<int32_t>(va.as_u32() ^ vb.as_u32()))) \
  X(I32Shl,                                                                   \
    Value::from_i32(static_cast<int32_t>(va.as_u32() << (vb.as_u32() & 31)))) \
  X(I32ShrS, Value::from_i32(va.as_i32() >> (vb.as_u32() & 31)))              \
  X(I32ShrU,                                                                  \
    Value::from_i32(static_cast<int32_t>(va.as_u32() >> (vb.as_u32() & 31)))) \
  X(I32Eq, Value::from_i32(va.as_i32() == vb.as_i32() ? 1 : 0))               \
  X(I32Ne, Value::from_i32(va.as_i32() != vb.as_i32() ? 1 : 0))               \
  X(I32LtS, Value::from_i32(va.as_i32() < vb.as_i32() ? 1 : 0))               \
  X(I32LtU, Value::from_i32(va.as_u32() < vb.as_u32() ? 1 : 0))               \
  X(I32GtS, Value::from_i32(va.as_i32() > vb.as_i32() ? 1 : 0))               \
  X(I32GtU, Value::from_i32(va.as_u32() > vb.as_u32() ? 1 : 0))               \
  X(I32LeS, Value::from_i32(va.as_i32() <= vb.as_i32() ? 1 : 0))              \
  X(I32LeU, Value::from_i32(va.as_u32() <= vb.as_u32() ? 1 : 0))              \
  X(I32GeS, Value::from_i32(va.as_i32() >= vb.as_i32() ? 1 : 0))              \
  X(I32GeU, Value::from_i32(va.as_u32() >= vb.as_u32() ? 1 : 0))              \
  X(I64Add, Value::from_i64(static_cast<int64_t>(va.as_u64() + vb.as_u64()))) \
  X(I64Sub, Value::from_i64(static_cast<int64_t>(va.as_u64() - vb.as_u64()))) \
  X(I64Mul, Value::from_i64(static_cast<int64_t>(va.as_u64() * vb.as_u64()))) \
  X(F32Add, Value::from_f32(va.as_f32() + vb.as_f32()))                       \
  X(F32Sub, Value::from_f32(va.as_f32() - vb.as_f32()))                       \
  X(F32Mul, Value::from_f32(va.as_f32() * vb.as_f32()))                       \
  X(F64Add, Value::from_f64(va.as_f64() + vb.as_f64()))                       \
  X(F64Sub, Value::from_f64(va.as_f64() - vb.as_f64()))                       \
  X(F64Mul, Value::from_f64(va.as_f64() * vb.as_f64()))

// Names of the fused forms (kept textually in sync with WB_QFUSE_BINOPS;
// a mismatch is a compile error, because the handlers and the translation
// map are generated from WB_QFUSE_BINOPS against these enumerators).
#define WB_QOP_FUSED_GG(X)                                                    \
  X(FGetGet_I32Add) X(FGetGet_I32Sub) X(FGetGet_I32Mul) X(FGetGet_I32And)     \
  X(FGetGet_I32Or) X(FGetGet_I32Xor) X(FGetGet_I32Shl) X(FGetGet_I32ShrS)     \
  X(FGetGet_I32ShrU) X(FGetGet_I32Eq) X(FGetGet_I32Ne) X(FGetGet_I32LtS)      \
  X(FGetGet_I32LtU) X(FGetGet_I32GtS) X(FGetGet_I32GtU) X(FGetGet_I32LeS)     \
  X(FGetGet_I32LeU) X(FGetGet_I32GeS) X(FGetGet_I32GeU) X(FGetGet_I64Add)     \
  X(FGetGet_I64Sub) X(FGetGet_I64Mul) X(FGetGet_F32Add) X(FGetGet_F32Sub)     \
  X(FGetGet_F32Mul) X(FGetGet_F64Add) X(FGetGet_F64Sub) X(FGetGet_F64Mul)
#define WB_QOP_FUSED_GC(X)                                                    \
  X(FGetConst_I32Add) X(FGetConst_I32Sub) X(FGetConst_I32Mul)                 \
  X(FGetConst_I32And) X(FGetConst_I32Or) X(FGetConst_I32Xor)                  \
  X(FGetConst_I32Shl) X(FGetConst_I32ShrS) X(FGetConst_I32ShrU)               \
  X(FGetConst_I32Eq) X(FGetConst_I32Ne) X(FGetConst_I32LtS)                   \
  X(FGetConst_I32LtU) X(FGetConst_I32GtS) X(FGetConst_I32GtU)                 \
  X(FGetConst_I32LeS) X(FGetConst_I32LeU) X(FGetConst_I32GeS)                 \
  X(FGetConst_I32GeU) X(FGetConst_I64Add) X(FGetConst_I64Sub)                 \
  X(FGetConst_I64Mul) X(FGetConst_F32Add) X(FGetConst_F32Sub)                 \
  X(FGetConst_F32Mul) X(FGetConst_F64Add) X(FGetConst_F64Sub)                 \
  X(FGetConst_F64Mul)
// 4-grams: the trigram plus a trailing local.set of the result — the
// dominant statement shape of the PolyBenchC loop bodies (x = a OP b).
#define WB_QOP_FUSED_GGS(X)                                                   \
  X(FGetGetSet_I32Add) X(FGetGetSet_I32Sub) X(FGetGetSet_I32Mul)              \
  X(FGetGetSet_I32And) X(FGetGetSet_I32Or) X(FGetGetSet_I32Xor)               \
  X(FGetGetSet_I32Shl) X(FGetGetSet_I32ShrS) X(FGetGetSet_I32ShrU)            \
  X(FGetGetSet_I32Eq) X(FGetGetSet_I32Ne) X(FGetGetSet_I32LtS)                \
  X(FGetGetSet_I32LtU) X(FGetGetSet_I32GtS) X(FGetGetSet_I32GtU)              \
  X(FGetGetSet_I32LeS) X(FGetGetSet_I32LeU) X(FGetGetSet_I32GeS)              \
  X(FGetGetSet_I32GeU) X(FGetGetSet_I64Add) X(FGetGetSet_I64Sub)              \
  X(FGetGetSet_I64Mul) X(FGetGetSet_F32Add) X(FGetGetSet_F32Sub)              \
  X(FGetGetSet_F32Mul) X(FGetGetSet_F64Add) X(FGetGetSet_F64Sub)              \
  X(FGetGetSet_F64Mul)
#define WB_QOP_FUSED_GCS(X)                                                   \
  X(FGetConstSet_I32Add) X(FGetConstSet_I32Sub) X(FGetConstSet_I32Mul)        \
  X(FGetConstSet_I32And) X(FGetConstSet_I32Or) X(FGetConstSet_I32Xor)         \
  X(FGetConstSet_I32Shl) X(FGetConstSet_I32ShrS) X(FGetConstSet_I32ShrU)      \
  X(FGetConstSet_I32Eq) X(FGetConstSet_I32Ne) X(FGetConstSet_I32LtS)          \
  X(FGetConstSet_I32LtU) X(FGetConstSet_I32GtS) X(FGetConstSet_I32GtU)        \
  X(FGetConstSet_I32LeS) X(FGetConstSet_I32LeU) X(FGetConstSet_I32GeS)        \
  X(FGetConstSet_I32GeU) X(FGetConstSet_I64Add) X(FGetConstSet_I64Sub)        \
  X(FGetConstSet_I64Mul) X(FGetConstSet_F32Add) X(FGetConstSet_F32Sub)        \
  X(FGetConstSet_F32Mul) X(FGetConstSet_F64Add) X(FGetConstSet_F64Sub)        \
  X(FGetConstSet_F64Mul)

// The master op list: enum order == dispatch-table order. Specials first,
// then the single-Instr ops, then the fused superinstructions.
//   ChargeOnly  1..3 merged no-effect ops (Nop/Block/Loop/End/reinterpret)
//   If          a = QCode pc when the condition is false
//   Jump        Else reached from the then branch: a = pc of matching End
//   Br/BrIf     a = target pc, b = stack height, flags = arity/is_loop
//   BrTable     a = index into QFunc::br_tables
//   Return      a = result count, b = pc of FuncReturn
//   FuncReturn  frame unwind; nops = 0 (never charged, like pc==code_size)
//   Call        a = callee in combined import+defined index space
//   CallIndirect a = expected type index
//   Const       val = the constant, pre-encoded as raw Value bits
//   FConstSet   const+local.set: locals[a] = val
//   FGetLoad*   local.get+load: a = local, b = memory offset
//   FCmpBrIf    i32 compare (c = Opcode) + br_if, branch fields as Br
//   FGetGetSet_*   locals[c] = locals[a] <binop> locals[b]
//   FGetConstSet_* locals[c] = locals[a] <binop> val
#define WB_QOP_LIST(X)                                                        \
  X(ChargeOnly) X(Unreachable) X(If) X(Jump) X(Br) X(BrIf) X(BrTable)         \
  X(Return) X(FuncReturn) X(Call) X(CallIndirect) X(Const)                    \
  WB_QOP_SINGLES(X)                                                           \
  X(FConstSet)                                                                \
  X(FGetLoadI32) X(FGetLoadI64) X(FGetLoadF32) X(FGetLoadF64)                 \
  X(FGetLoadI32U8)                                                            \
  X(FCmpBrIf)                                                                 \
  WB_QOP_FUSED_GG(X)                                                          \
  WB_QOP_FUSED_GC(X)                                                          \
  WB_QOP_FUSED_GGS(X)                                                         \
  WB_QOP_FUSED_GCS(X)

enum class QOp : uint16_t {
#define WB_QOP_ENUM(name) name,
  WB_QOP_LIST(WB_QOP_ENUM)
#undef WB_QOP_ENUM
      kCount,
};

inline constexpr size_t kQOpCount = static_cast<size_t>(QOp::kCount);

/// Charge-slot padding: unused `cls` entries index a zero-cost slot one
/// past the real cost table, and unused `cat` entries hit the discarded
/// ArithCat::None bucket, so the interpreter charges all three slots
/// branchlessly and still matches the classic per-Instr accounting.
inline constexpr uint8_t kQClsPad = static_cast<uint8_t>(kOpClassCount);
inline constexpr uint8_t kQCatPad = static_cast<uint8_t>(ArithCat::None);

/// One quickened instruction. `cls`/`cat` carry the OpClass/ArithCat of
/// each original constituent (in original program order, padded as above)
/// so charging is bit-identical to executing the constituents one at a
/// time; `nops` is the constituent count (0 for FuncReturn, which the
/// classic loop also never charges).
struct QInstr {
  uint16_t op = 0;   ///< QOp
  uint8_t nops = 1;  ///< original ops merged into this QInstr (0..4)
  uint8_t flags = 0; ///< branches: bit0 = is_loop, bit1 = arity
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  uint8_t cls[4] = {kQClsPad, kQClsPad, kQClsPad, kQClsPad};
  uint8_t cat[4] = {kQCatPad, kQCatPad, kQCatPad, kQCatPad};
  /// The four cat slots as one add: byte lane `c` carries how many
  /// constituents have ArithCat `c` (lane 7 = the None/pad discard lane).
  /// Always sums to 4 across lanes, so a single u64 accumulator can absorb
  /// 63 dispatches before any lane can reach 255 (see run_quickened).
  uint64_t cat_packed = 4ull << (8 * kQCatPad);
  /// The four cls slots the same way, for cause attribution: OpClasses
  /// 0-7 as byte lanes of the lo word, 8-14 in the hi word, with hi lane
  /// (kQClsPad - 8) as the discard lane for unused slots. The two words
  /// together always sum to 4, so both share the cat accumulator's
  /// 63-dispatch flush budget.
  uint64_t cls_packed_lo = 0;
  uint64_t cls_packed_hi = 4ull << (8 * (kQClsPad - 8));
  Value val;

  [[nodiscard]] QOp qop() const { return static_cast<QOp>(op); }
};

/// One pre-resolved br_table entry (same fields a/b/flags encode on Br).
struct QBrTarget {
  uint32_t qpc = 0;
  uint32_t height = 0;  ///< stack height relative to the frame's stack base
  uint8_t arity = 0;
  bool is_loop = false;
};

/// A quickened function body.
struct QFunc {
  std::vector<QInstr> code;  ///< ends with FuncReturn
  std::vector<std::vector<QBrTarget>> br_tables;
};

/// Translates one defined function (validated module) into QCode.
QFunc quicken(const Module& module, uint32_t defined_index);

/// Process-wide default for new Instances (tools' --no-quicken flag).
/// The WB_NO_QUICKEN environment variable forces it off regardless.
void set_quicken_default(bool enabled);
bool quicken_default();

}  // namespace wb::wasm
